package main

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/mats"
	"repro/internal/multigrid"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// MethodScenario is one update-rule row of the snapshot, covering the
// three method claims the seam has to keep honest:
//
//   - momentum rows ("momentum"): iterations to tolerance of the
//     second-order Richardson rule against plain damped Jacobi on a paper
//     matrix, seeded simulated engine (deterministic, so the counts are
//     exact). The gate is collective: richardson2 must win on at least 2
//     of the 3 paper matrices (fv3's σ = 0.5·10⁻⁸ keeps both rules from
//     converging, so it is not a momentum row).
//   - the multigrid row ("multigrid"): modeled seconds per residual digit
//     of async-smoothed V-cycles against single-level damped Jacobi on
//     the five-point Poisson operator, costing every level of the
//     hierarchy with the calibrated per-iteration GPU model. Gated:
//     multigrid must be cheaper per digit.
//   - the delay row ("delay"): cluster.DelaySweep ticks to tolerance for
//     both rules at MaxDelay ∈ {0, 2, 4} on the bounded-delay ring.
//     Gated loosely: wherever jacobi converges, momentum must too —
//     bounded staleness may slow the momentum term but must not break it.
type MethodScenario struct {
	Name   string `json:"name"`
	Matrix string `json:"matrix"`
	Kind   string `json:"kind"` // momentum | multigrid | delay
	N      int    `json:"n"`

	// Momentum rows.
	Beta          float64 `json:"beta,omitempty"`
	JacobiIters   int     `json:"jacobi_iters,omitempty"`
	MomentumIters int     `json:"momentum_iters,omitempty"`
	MomentumWins  bool    `json:"momentum_wins,omitempty"`

	// Multigrid row (modeled seconds per residual digit; Cycles is the
	// V-cycle count to tolerance).
	Cycles            int     `json:"cycles,omitempty"`
	JacobiSecPerDigit float64 `json:"jacobi_sec_per_digit,omitempty"`
	MGSecPerDigit     float64 `json:"multigrid_sec_per_digit,omitempty"`

	// Delay row: ticks to tolerance per MaxDelay entry (0 = not reached).
	Delays        []int `json:"delays,omitempty"`
	JacobiTicks   []int `json:"jacobi_ticks,omitempty"`
	MomentumTicks []int `json:"momentum_ticks,omitempty"`
}

// momentumCase declares one richardson2-vs-jacobi row. The β values are
// the service default (0.3) — the gate measures the rule users get, not a
// per-matrix oracle.
type momentumCase struct {
	matrix string
	beta   float64
}

func momentumCases() []momentumCase {
	return []momentumCase{
		{"Chem97ZtZ", 0.3},
		{"fv1", 0.3},
		{"Trefethen_2000", 0.3},
	}
}

// runMethodSuite measures the update-rule rows and returns them with the
// count of gate violations.
func runMethodSuite(quick bool, out io.Writer) ([]MethodScenario, int) {
	var rows []MethodScenario
	problems := 0

	wins := 0
	momRows := 0
	for _, mc := range momentumCases() {
		row, err := measureMomentumCase(mc)
		if err != nil {
			fmt.Fprintf(out, "benchgate: REGRESSION method/momentum-%s: %v\n", mc.matrix, err)
			problems++
			continue
		}
		momRows++
		if row.MomentumWins {
			wins++
		}
		verdict := "jacobi wins"
		if row.MomentumWins {
			verdict = "momentum wins"
		}
		fmt.Fprintf(out, "benchgate: %s  jacobi %d iters  richardson2(β=%.1f) %d iters  (%s)\n",
			row.Name, row.JacobiIters, row.Beta, row.MomentumIters, verdict)
		rows = append(rows, row)
	}
	if momRows > 0 && wins < 2 {
		fmt.Fprintf(out, "benchgate: REGRESSION method/momentum: richardson2 wins on %d/%d paper matrices (need ≥2)\n",
			wins, momRows)
		problems++
	}

	mgWidth := 63
	if quick {
		mgWidth = 31
	}
	mgRow, err := measureMultigridCase(mgWidth)
	if err != nil {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: %v\n", mgRow.Name, err)
		problems++
	} else {
		fmt.Fprintf(out, "benchgate: %s  %d cycles  mg %.4fs/digit  jacobi %.4fs/digit (modeled)\n",
			mgRow.Name, mgRow.Cycles, mgRow.MGSecPerDigit, mgRow.JacobiSecPerDigit)
		if !(mgRow.MGSecPerDigit < mgRow.JacobiSecPerDigit) {
			fmt.Fprintf(out, "benchgate: REGRESSION %s: multigrid (%.4fs/digit) must beat damped Jacobi (%.4fs/digit)\n",
				mgRow.Name, mgRow.MGSecPerDigit, mgRow.JacobiSecPerDigit)
			problems++
		}
		rows = append(rows, mgRow)
	}

	delayRow, err := measureDelayCase()
	if err != nil {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: %v\n", delayRow.Name, err)
		problems++
	} else {
		fmt.Fprintf(out, "benchgate: %s  delays %v  jacobi ticks %v  richardson2 ticks %v\n",
			delayRow.Name, delayRow.Delays, delayRow.JacobiTicks, delayRow.MomentumTicks)
		for i := range delayRow.Delays {
			if delayRow.JacobiTicks[i] > 0 && delayRow.MomentumTicks[i] == 0 {
				fmt.Fprintf(out, "benchgate: REGRESSION %s: momentum failed at MaxDelay=%d where jacobi converged\n",
					delayRow.Name, delayRow.Delays[i])
				problems++
			}
		}
		rows = append(rows, delayRow)
	}

	return rows, problems
}

// methodRHS is the suite's b = A·1 right-hand side: the exact solution is
// the ones vector on every system, so iteration counts compare like for
// like across rules and matrices.
func methodRHS(a *sparse.CSR) []float64 {
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	return b
}

// measureMomentumCase solves one paper matrix to 1e-10 under both rules on
// the seeded simulated engine and compares iteration counts.
func measureMomentumCase(mc momentumCase) (MethodScenario, error) {
	a := mats.MustGenerate(mc.matrix).A
	row := MethodScenario{
		Name: "method/momentum-" + mc.matrix, Matrix: mc.matrix,
		Kind: "momentum", N: a.Rows, Beta: mc.beta,
	}
	b := methodRHS(a)
	opt := core.Options{
		BlockSize: 448, LocalIters: 5, MaxGlobalIters: 2000,
		Tolerance: 1e-10, Seed: 7,
	}
	jac, err := core.Solve(a, b, opt)
	if err != nil {
		return row, fmt.Errorf("jacobi: %w", err)
	}
	opt.Method, opt.Beta = core.RuleRichardson2, mc.beta
	mom, err := core.Solve(a, b, opt)
	if err != nil {
		return row, fmt.Errorf("richardson2: %w", err)
	}
	if !jac.Converged || !mom.Converged {
		return row, fmt.Errorf("convergence: jacobi %v, richardson2 %v (both must reach 1e-10)",
			jac.Converged, mom.Converged)
	}
	row.JacobiIters = jac.GlobalIterations
	row.MomentumIters = mom.GlobalIterations
	row.MomentumWins = mom.GlobalIterations < jac.GlobalIterations
	return row, nil
}

// measureMultigridCase compares async-smoothed V-cycles against
// single-level damped Jacobi on Poisson2D(w,w), in modeled GPU seconds per
// residual digit. The multigrid cost model charges every level of the
// hierarchy its pre- and post-smoothing applications at the calibrated
// per-iteration rate (the coarse direct solve is negligible and charged
// nothing, which only flatters the single-level baseline).
func measureMultigridCase(w int) (MethodScenario, error) {
	row := MethodScenario{
		Name:   fmt.Sprintf("method/multigrid-poisson2d_%d", w),
		Matrix: fmt.Sprintf("poisson2d_%d", w), Kind: "multigrid", N: w * w,
	}
	a := mats.Poisson2D(w, w)
	b := methodRHS(a)
	model := gpusim.CalibratedModel()
	const tol = 1e-8
	r0 := vecmath.Nrm2(b) // x₀ = 0, so the initial residual is ‖b‖

	jres, err := core.Solve(a, b, core.Options{
		BlockSize: 448, LocalIters: 5, MaxGlobalIters: 20000,
		Tolerance: tol, Seed: 7,
	})
	if err != nil {
		return row, fmt.Errorf("single-level jacobi: %w", err)
	}
	jDigits := math.Log10(r0 / jres.Residual)
	if !jres.Converged || jDigits <= 0 {
		return row, fmt.Errorf("single-level jacobi did not converge (%d iters, residual %.3e)",
			jres.GlobalIterations, jres.Residual)
	}
	jTime := model.AsyncIterTime(a.Rows, a.NNZ(), 5) * float64(jres.GlobalIterations)
	row.JacobiSecPerDigit = jTime / jDigits

	// ω = 0.8 is the classical smoothing weight for the five-point
	// stencil; one async-(2) global iteration per application keeps the
	// per-cycle cost minimal while the cycle count stays mesh-independent.
	const smGlobal, smLocal = 1, 2
	sm := &multigrid.AsyncSmoother{BlockSize: 448, LocalIters: smLocal, GlobalIters: smGlobal, Omega: 0.8}
	mg, err := multigrid.New(multigrid.Options{Width: w, Height: w, Smoother: sm})
	if err != nil {
		return row, err
	}
	mres, err := mg.Solve(b, tol, 200)
	if err != nil {
		return row, fmt.Errorf("multigrid: %w", err)
	}
	mDigits := math.Log10(r0 / mres.Residual)
	if !mres.Converged || mDigits <= 0 {
		return row, fmt.Errorf("multigrid did not converge (%d cycles, residual %.3e)",
			mres.Cycles, mres.Residual)
	}
	var perCycle float64
	for l := 0; l < mg.NumLevels(); l++ {
		n, nnz := mg.LevelShape(l)
		// Pre- and post-smoothing, each smGlobal global iterations.
		perCycle += 2 * smGlobal * model.AsyncIterTime(n, nnz, smLocal)
	}
	row.Cycles = mres.Cycles
	row.MGSecPerDigit = perCycle * float64(mres.Cycles) / mDigits
	return row, nil
}

// measureDelayCase sweeps the bounded-delay ring over MaxDelay ∈ {0, 2, 4}
// for both rules on Trefethen_2000. Every sweep point is deterministic
// (seeded network, seeded dispatch), so the tick counts gate exactly.
func measureDelayCase() (MethodScenario, error) {
	a := mats.Trefethen(2000)
	row := MethodScenario{
		Name: "method/delay-Trefethen_2000", Matrix: "Trefethen_2000",
		Kind: "delay", N: a.Rows, Beta: 0.3,
		Delays: []int{0, 2, 4},
	}
	b := methodRHS(a)
	base := cluster.Options{
		Nodes: 8, LocalIters: 2, MaxTicks: 4000, Seed: 3,
	}
	jTicks, err := cluster.DelaySweep(a, b, base, row.Delays, 1e-8)
	if err != nil {
		return row, fmt.Errorf("jacobi sweep: %w", err)
	}
	mBase := base
	mBase.Method, mBase.Beta = core.RuleRichardson2, row.Beta
	mTicks, err := cluster.DelaySweep(a, b, mBase, row.Delays, 1e-8)
	if err != nil {
		return row, fmt.Errorf("richardson2 sweep: %w", err)
	}
	row.JacobiTicks, row.MomentumTicks = jTicks, mTicks
	return row, nil
}

// compareMethods gates the method rows against the baseline: every
// baseline row must still run, and the deterministic iteration-family
// counts (momentum iterations, V-cycles, delay ticks) gate with the
// iteration allowance in same-mode comparisons. The method-vs-method
// verdicts themselves are enforced at measurement time, baseline or not.
func compareMethods(base, current Report, lim Limits) []Problem {
	if len(base.Methods) == 0 {
		return nil
	}
	now := make(map[string]MethodScenario, len(current.Methods))
	for _, r := range current.Methods {
		now[r.Name] = r
	}
	var out []Problem
	sameMode := base.Quick == current.Quick
	for _, b := range base.Methods {
		c, ok := now[b.Name]
		if !ok {
			if sameMode {
				out = append(out, Problem{Case: b.Name, Metric: "coverage (method row missing from current run)"})
			}
			continue
		}
		if !sameMode {
			continue
		}
		check := func(metric string, baseV, nowV float64) {
			if baseV > 0 && nowV > baseV*(1+lim.MaxIterRegress) {
				out = append(out, Problem{Case: b.Name, Metric: metric,
					Base: baseV, Now: nowV, Limit: lim.MaxIterRegress})
			}
		}
		check("momentum_iters", float64(b.MomentumIters), float64(c.MomentumIters))
		check("cycles", float64(b.Cycles), float64(c.Cycles))
		for i := range b.JacobiTicks {
			if i < len(c.JacobiTicks) {
				check(fmt.Sprintf("jacobi_ticks[delay=%d]", b.Delays[i]),
					float64(b.JacobiTicks[i]), float64(c.JacobiTicks[i]))
			}
			if i < len(c.MomentumTicks) {
				check(fmt.Sprintf("momentum_ticks[delay=%d]", b.Delays[i]),
					float64(b.MomentumTicks[i]), float64(c.MomentumTicks[i]))
			}
		}
	}
	return out
}
