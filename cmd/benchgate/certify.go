package main

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/service"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// CertifyScenario is one certifier benchmark row of the snapshot. The
// convergent rows measure admission latency and the predicted-vs-actual
// iteration ratio (gated inside the PredictedFactor band of
// docs/CERTIFY.md); the doomed row measures what enforcement buys — a
// cached certificate rejection against running the divergent solve to its
// iteration cap.
type CertifyScenario struct {
	Name    string `json:"name"`
	Matrix  string `json:"matrix"`
	N       int    `json:"n"`
	Class   string `json:"class"`
	Verdict string `json:"verdict"`
	// CertifySeconds is the cold, uncached certify.Certify latency (the
	// first admission of a fingerprint pays this once).
	CertifySeconds float64 `json:"certify_seconds"`
	// PredictedIters and ActualIters compare the certificate's priced
	// budget against the seeded simulated solve it admitted;
	// PredictedVsActual is actual/predicted (convergent rows only).
	PredictedIters    int     `json:"predicted_iters,omitempty"`
	ActualIters       int     `json:"actual_iters,omitempty"`
	PredictedVsActual float64 `json:"predicted_vs_actual,omitempty"`
	// RejectSeconds is the steady-state enforce answer: a certificate-cache
	// hit refusing the matrix (doomed row only; min over repetitions).
	RejectSeconds float64 `json:"reject_seconds,omitempty"`
	// SolveSeconds is the cost enforcement avoids: the divergent solve run
	// warn-style to its iteration cap (doomed row only).
	SolveSeconds float64 `json:"solve_seconds,omitempty"`
	// RejectSpeedup is SolveSeconds / RejectSeconds (gated ≥ 100).
	RejectSpeedup float64 `json:"reject_speedup,omitempty"`
}

// certifyLatencyBudget bounds a cold certification. The certifier's work is
// bounded by Options (≤ MaxPowerIters sparse multiplies plus the
// Collatz–Wielandt sweeps), so even the full-size paper matrices must
// answer well under a second; the budget is loose for shared CI machines.
const certifyLatencyBudget = 2.0

// rejectSpeedupFloor is the doomed-row gate: answering from the resident
// certificate cache must beat running the divergent solve to its iteration
// cap by at least this factor.
const rejectSpeedupFloor = 100.0

// certifyCase is one convergent certifier row's configuration.
type certifyCase struct {
	Name   string
	Matrix string
	Gen    func() *sparse.CSR
}

// runCertifySuite measures the certifier rows and returns them with the
// count of gate violations (out-of-band ratios, blown latency budgets, a
// doomed rejection that is not dramatically cheaper than the solve).
func runCertifySuite(quick bool, out io.Writer) ([]CertifyScenario, int) {
	fv := func() *sparse.CSR { return mats.FV(40, 40, 1.368) }
	chem := func() *sparse.CSR { return mats.Chem97ZtZ(600) }
	fvName, chemName := "fv_40x40", "Chem97ZtZ_600"
	if !quick {
		fv = func() *sparse.CSR { return mats.FVTiled(98, 98, 1.368) }
		chem = func() *sparse.CSR { return mats.Chem97ZtZ(2541) }
		fvName, chemName = "fv1", "Chem97ZtZ"
	}
	cases := []certifyCase{
		{Name: "certify/Trefethen_2000", Matrix: "Trefethen_2000",
			Gen: func() *sparse.CSR { return mats.Trefethen(2000) }},
		{Name: "certify/" + fvName, Matrix: fvName, Gen: fv},
		{Name: "certify/" + chemName, Matrix: chemName, Gen: chem},
	}

	var rows []CertifyScenario
	problems := 0
	for _, c := range cases {
		row, probs := runCertifyCase(c, out)
		rows = append(rows, row)
		problems += probs
	}
	doomed, probs := runDoomedCase(quick, out)
	rows = append(rows, doomed)
	problems += probs
	return rows, problems
}

// runCertifyCase certifies one convergent paper matrix and replays the
// solve the certificate admitted, gating the predicted-vs-actual ratio
// inside [1/PredictedFactor, PredictedFactor].
func runCertifyCase(c certifyCase, out io.Writer) (CertifyScenario, int) {
	a := c.Gen()
	row := CertifyScenario{Name: c.Name, Matrix: c.Matrix, N: a.Rows}
	problems := 0

	start := time.Now()
	cert, err := certify.Certify(a, certify.Options{Seed: 1})
	row.CertifySeconds = time.Since(start).Seconds()
	if err != nil {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: certify error: %v\n", c.Name, err)
		return row, problems + 1
	}
	row.Class, row.Verdict = cert.Class.String(), cert.Verdict.String()
	row.PredictedIters = cert.PredictedIters
	fmt.Fprintf(out, "benchgate: %s  %-9s %6.2fms  predicted %d iters",
		c.Name, cert.Verdict, 1e3*row.CertifySeconds, cert.PredictedIters)
	if cert.Verdict != certify.VerdictConverges || cert.PredictedIters <= 0 {
		fmt.Fprintf(out, "\nbenchgate: REGRESSION %s: paper matrix not certified convergent (%s)\n", c.Name, cert)
		return row, problems + 1
	}
	if row.CertifySeconds > certifyLatencyBudget {
		fmt.Fprintf(out, "\nbenchgate: REGRESSION %s: certification took %.2fs (budget %.2fs)\n",
			c.Name, row.CertifySeconds, certifyLatencyBudget)
		problems++
	}

	// Replay the admitted solve: the tolerance matches the certificate's
	// TargetDigits of reduction from the zero initial guess, the budget is
	// the documented slack times the priced iterations.
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	budget := cert.PredictedIters
	if budget <= (1<<30)/certify.PredictedFactor {
		budget *= certify.PredictedFactor
	}
	res, err := core.Solve(a, b, core.Options{
		BlockSize: 128, LocalIters: 1,
		MaxGlobalIters: budget,
		Tolerance:      math.Pow(10, -cert.TargetDigits) * vecmath.Nrm2(b),
		Seed:           1,
	})
	if err != nil || !res.Converged {
		fmt.Fprintf(out, "\nbenchgate: REGRESSION %s: admitted solve missed %g digits within %d×predicted (%v)\n",
			c.Name, cert.TargetDigits, certify.PredictedFactor, err)
		return row, problems + 1
	}
	row.ActualIters = res.GlobalIterations
	row.PredictedVsActual = float64(res.GlobalIterations) / float64(cert.PredictedIters)
	fmt.Fprintf(out, "  actual %d  ratio %.2f\n", row.ActualIters, row.PredictedVsActual)
	if row.PredictedVsActual > certify.PredictedFactor ||
		row.PredictedVsActual < 1.0/certify.PredictedFactor {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: predicted-vs-actual %.2f outside [1/%d, %d]\n",
			c.Name, row.PredictedVsActual, certify.PredictedFactor, certify.PredictedFactor)
		problems++
	}
	return row, problems
}

// runDoomedCase measures the enforcement payoff on the s1rmt3m1 analog:
// a steady-state (cached) certificate rejection against the divergent
// solve an unguarded submission would burn, run warn-style to the
// iteration cap.
func runDoomedCase(quick bool, out io.Writer) (CertifyScenario, int) {
	n, iterCap := 1000, 600
	if quick {
		n, iterCap = 200, 300
	}
	a := mats.S1RMT3M1(n)
	row := CertifyScenario{Name: "certify/doomed-s1rmt3m1", Matrix: "s1rmt3m1", N: a.Rows}
	problems := 0

	cache := service.NewPlanCache(service.CacheConfig{})
	fp := service.Fingerprint(a)
	start := time.Now()
	cert, _, err := cache.GetOrCertify(a, fp, certify.Options{})
	row.CertifySeconds = time.Since(start).Seconds()
	if err != nil {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: certify error: %v\n", row.Name, err)
		return row, 1
	}
	row.Class, row.Verdict = cert.Class.String(), cert.Verdict.String()
	if cert.Verdict != certify.VerdictDiverges {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: verdict %s, want diverges\n", row.Name, cert.Verdict)
		problems++
	}
	if row.CertifySeconds > certifyLatencyBudget {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: cold certification took %.2fs (budget %.2fs)\n",
			row.Name, row.CertifySeconds, certifyLatencyBudget)
		problems++
	}

	// Steady state: every further enforce admission of this fingerprint is
	// a cache hit answering the rejection. Min over repetitions.
	for i := 0; i < 10; i++ {
		start = time.Now()
		if _, hit, err := cache.GetOrCertify(a, fp, certify.Options{}); err != nil || !hit {
			fmt.Fprintf(out, "benchgate: REGRESSION %s: warm lookup hit=%v err=%v\n", row.Name, hit, err)
			return row, problems + 1
		}
		if d := time.Since(start).Seconds(); i == 0 || d < row.RejectSeconds {
			row.RejectSeconds = d
		}
	}

	// What enforcement avoids: the divergent solve burning its iteration
	// cap (warn mode — the cap is low enough that the residual stays
	// finite, so no early non-finite bailout shortens the burn).
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	start = time.Now()
	res, err := core.Solve(a, b, core.Options{
		BlockSize: 32, LocalIters: 1, MaxGlobalIters: iterCap, Tolerance: 1e-8, Seed: 1,
	})
	row.SolveSeconds = time.Since(start).Seconds()
	if err != nil || res.Converged {
		// err stays nil for a cap-bounded non-convergent run; Converged (or
		// any error, e.g. an early non-finite bailout that would shorten
		// the burn) breaks the row's premise.
		fmt.Fprintf(out, "benchgate: REGRESSION %s: doomed solve converged=%v err=%v, want a full-cap burn\n",
			row.Name, res.Converged, err)
		problems++
	}
	if row.RejectSeconds > 0 {
		row.RejectSpeedup = row.SolveSeconds / row.RejectSeconds
	}
	fmt.Fprintf(out, "benchgate: %s  %-9s %6.2fms cold  reject %.1fµs  doomed solve %.2fms  speedup ×%.0f\n",
		row.Name, row.Verdict, 1e3*row.CertifySeconds, 1e6*row.RejectSeconds,
		1e3*row.SolveSeconds, row.RejectSpeedup)
	if row.RejectSpeedup < rejectSpeedupFloor {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: rejection only ×%.1f faster than the doomed solve (floor ×%.0f)\n",
			row.Name, row.RejectSpeedup, rejectSpeedupFloor)
		problems++
	}
	return row, problems
}

// compareCertify gates the certify rows against the baseline: every
// baseline row must still run, and cold-certification latency gates with
// the wall-time allowance (the in-band ratio check runs live every time,
// so Compare only needs coverage and latency).
func compareCertify(base, current Report, lim Limits) []Problem {
	if len(base.Certify) == 0 {
		return nil
	}
	now := make(map[string]CertifyScenario, len(current.Certify))
	for _, r := range current.Certify {
		now[r.Name] = r
	}
	var out []Problem
	sameMode := base.Quick == current.Quick
	for _, b := range base.Certify {
		c, ok := now[b.Name]
		if !ok {
			if sameMode {
				out = append(out, Problem{Case: b.Name, Metric: "coverage (certify row missing from current run)"})
			}
			continue
		}
		if b.CertifySeconds > 0 && c.CertifySeconds > b.CertifySeconds*(1+lim.MaxTimeRegress) {
			out = append(out, Problem{Case: b.Name, Metric: "certify_seconds",
				Base: b.CertifySeconds, Now: c.CertifySeconds, Limit: lim.MaxTimeRegress})
		}
	}
	return out
}
