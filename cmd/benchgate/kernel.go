package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// KernelScenario is one sweep-kernel speedup row of the snapshot: the same
// fixed-sweep solve (Tolerance 0, fixed global iterations, seeded simulated
// engine — pure kernel wall time, no convergence variance) run through the
// packed-CSR baseline and one dispatch kernel, reported as the wall-time
// ratio. Floor is the enforced minimum speedup (0 = recorded, not gated):
// the stencil kernel must hold ≥1.5× on the Poisson/s1rmt3m1 stencil rows
// and the SELL kernel ≥1.1×, per docs/KERNELS.md. The fv1 stencil row
// gates looser — its 63% interior fraction Amdahl-caps the win (the other
// 37% of rows run the same packed CSR the baseline runs).
type KernelScenario struct {
	Name       string  `json:"name"`
	Matrix     string  `json:"matrix"`
	Kernel     string  `json:"kernel"`
	N          int     `json:"n"`
	BlockSize  int     `json:"block_size"`
	LocalIters int     `json:"local_iters"`
	Iterations int     `json:"iterations"`
	// CSRSeconds and KernelSeconds are interleaved best-of-reps wall times
	// (one rep of each kernel per round, so load bursts hit both alike).
	CSRSeconds    float64 `json:"csr_seconds"`
	KernelSeconds float64 `json:"kernel_seconds"`
	Speedup       float64 `json:"speedup"`
	Floor         float64 `json:"floor,omitempty"`
	// InteriorFraction (stencil rows) and SlotRatio (sell rows) describe
	// the structure the speedup depends on.
	InteriorFraction float64 `json:"interior_fraction,omitempty"`
	SlotRatio        float64 `json:"slot_ratio,omitempty"`
}

// kernelCase declares one speedup row of the kernel suite.
type kernelCase struct {
	name   string
	matrix string
	gen    func() *sparse.CSR
	kernel core.KernelKind
	bs     int
	floor  float64
}

func kernelCases(quick bool) []kernelCase {
	poisson := func(w, h int) func() *sparse.CSR {
		return func() *sparse.CSR { return mats.Poisson2D(w, h) }
	}
	named := func(name string) func() *sparse.CSR {
		return func() *sparse.CSR { return mats.MustGenerate(name).A }
	}
	if quick {
		return []kernelCase{
			{"kernel/stencil-poisson", "poisson_64x64", poisson(64, 64), core.KernelStencil, 1024, 1.5},
			{"kernel/sell-s1rmt3m1", "s1rmt3m1", named("s1rmt3m1"), core.KernelSELL, 256, 1.1},
		}
	}
	return []kernelCase{
		{"kernel/stencil-poisson", "poisson_120x120", poisson(120, 120), core.KernelStencil, 1024, 1.5},
		{"kernel/stencil-s1rmt3m1", "s1rmt3m1", named("s1rmt3m1"), core.KernelStencil, 256, 1.5},
		{"kernel/stencil-fv1", "fv1", named("fv1"), core.KernelStencil, 512, 1.2},
		{"kernel/sell-s1rmt3m1", "s1rmt3m1", named("s1rmt3m1"), core.KernelSELL, 256, 1.1},
		{"kernel/sell-trefethen", "Trefethen_2000", func() *sparse.CSR { return mats.Trefethen(2000) }, core.KernelSELL, 128, 0},
	}
}

// runKernelSuite measures the kernel speedup rows and returns them with
// the count of floor violations. A row that lands under its floor gets one
// re-measurement before it counts as a violation — the floors sit well
// under the quiet-machine ratios, so a miss is almost always a load burst
// the interleaving could not fully cancel.
func runKernelSuite(quick bool, out io.Writer) ([]KernelScenario, int) {
	const localIters, sweeps = 8, 12
	reps := 13
	if quick {
		reps = 9
	}
	var rows []KernelScenario
	problems := 0
	for _, kc := range kernelCases(quick) {
		row, err := measureKernelCase(kc, localIters, sweeps, reps)
		if err == nil && row.Floor > 0 && row.Speedup < row.Floor {
			row, err = measureKernelCase(kc, localIters, sweeps, reps)
		}
		if err != nil {
			fmt.Fprintf(out, "benchgate: REGRESSION %s: %v\n", kc.name, err)
			problems++
			continue
		}
		gateNote := "recorded"
		if row.Floor > 0 {
			gateNote = fmt.Sprintf("floor ×%.1f", row.Floor)
		}
		fmt.Fprintf(out, "benchgate: %s  %s  csr %.1fms  %s %.1fms  speedup ×%.2f (%s)\n",
			row.Name, row.Matrix, 1e3*row.CSRSeconds, row.Kernel, 1e3*row.KernelSeconds,
			row.Speedup, gateNote)
		if row.Floor > 0 && row.Speedup < row.Floor {
			fmt.Fprintf(out, "benchgate: REGRESSION %s: %s only ×%.2f over packed CSR (floor ×%.1f)\n",
				row.Name, row.Kernel, row.Speedup, row.Floor)
			problems++
		}
		rows = append(rows, row)
	}
	return rows, problems
}

// measureKernelCase times the fixed-sweep solve through the CSR plan and
// the case's kernel plan, interleaved, best-of-reps each.
func measureKernelCase(kc kernelCase, localIters, sweeps, reps int) (KernelScenario, error) {
	a := kc.gen()
	row := KernelScenario{
		Name: kc.name, Matrix: kc.matrix, Kernel: kc.kernel.String(),
		N: a.Rows, BlockSize: kc.bs, LocalIters: localIters,
		Iterations: sweeps, Floor: kc.floor,
	}
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	opt := core.Options{
		BlockSize: kc.bs, LocalIters: localIters, MaxGlobalIters: sweeps,
		Tolerance: 0, Seed: 7, Engine: core.EngineSimulated,
	}
	csrPlan, err := core.NewPlanWithConfig(a, kc.bs, false, core.PlanConfig{Kernel: core.KernelCSR})
	if err != nil {
		return row, fmt.Errorf("csr plan: %w", err)
	}
	kernPlan, err := core.NewPlanWithConfig(a, kc.bs, false, core.PlanConfig{Kernel: kc.kernel})
	if err != nil {
		return row, fmt.Errorf("%s plan: %w", kc.kernel, err)
	}
	if si := kernPlan.StencilInfo(); si != nil {
		row.InteriorFraction = si.InteriorFraction()
	}
	if sr := kernPlan.SELLSlotRatio(); sr > 0 {
		row.SlotRatio = sr
	}
	for r := 0; r < reps; r++ {
		for _, m := range []struct {
			plan *core.Plan
			best *float64
		}{{csrPlan, &row.CSRSeconds}, {kernPlan, &row.KernelSeconds}} {
			start := time.Now()
			if _, err := core.SolveWithPlan(m.plan, b, opt); err != nil {
				return row, err
			}
			if el := time.Since(start).Seconds(); r == 0 || el < *m.best {
				*m.best = el
			}
		}
	}
	if row.KernelSeconds > 0 {
		row.Speedup = row.CSRSeconds / row.KernelSeconds
	}
	return row, nil
}

// compareKernels gates the kernel rows against the baseline: every
// baseline row must still run (the floors themselves are enforced at
// measurement time, baseline or not), and the wall times gate with the
// wall-time allowance in same-mode comparisons.
func compareKernels(base, current Report, lim Limits) []Problem {
	if len(base.Kernels) == 0 {
		return nil
	}
	now := make(map[string]KernelScenario, len(current.Kernels))
	for _, r := range current.Kernels {
		now[r.Name] = r
	}
	var out []Problem
	sameMode := base.Quick == current.Quick
	for _, b := range base.Kernels {
		c, ok := now[b.Name]
		if !ok {
			if sameMode {
				out = append(out, Problem{Case: b.Name, Metric: "coverage (kernel row missing from current run)"})
			}
			continue
		}
		if sameMode && b.KernelSeconds > 0 && c.KernelSeconds > b.KernelSeconds*(1+lim.MaxTimeRegress) {
			out = append(out, Problem{Case: b.Name, Metric: "kernel_seconds",
				Base: b.KernelSeconds, Now: c.KernelSeconds, Limit: lim.MaxTimeRegress})
		}
	}
	return out
}
