package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

// FleetScenario is one fleet load-test row of the benchmark report: an
// in-process gateway + solver nodes driven by the open-loop harness.
// Additive schema field — baselines predating it simply lack fleet rows.
type FleetScenario struct {
	Name            string  `json:"name"`
	Nodes           int     `json:"nodes"`
	RatePerSec      float64 `json:"rate_per_sec"`
	DurationSeconds float64 `json:"duration_seconds"`

	Offered int `json:"offered"`
	// Accepted is how many submissions were admitted (202) fleet-wide —
	// the slot-capacity number the burst scenarios gate on.
	Accepted  int `json:"accepted"`
	Completed int `json:"completed"`
	Shed      int `json:"shed"`
	Errors    int `json:"errors"`
	Throughput float64 `json:"throughput_jobs_per_sec"`
	ShedRate   float64 `json:"shed_rate"`
	E2EP50     float64 `json:"e2e_p50_seconds"`
	E2EP99     float64 `json:"e2e_p99_seconds"`

	// PlanHitRate aggregates plan-cache hits/(hits+misses) across every
	// node — the cache-affinity payoff consistent hashing exists for.
	PlanHitRate float64 `json:"plan_hit_rate"`
	// AffinityViolations counts accepted jobs whose matrix had already
	// been served by a different node (nonzero only across rebalances).
	AffinityViolations int `json:"affinity_violations"`
	// RingRestored reports whether, after the kill/revive cycle of a
	// rebalance scenario, every corpus key routed to its original owner
	// again (always true for steady-state scenarios).
	RingRestored bool `json:"ring_restored"`
}

// fleetParams sizes the fleet scenarios per suite mode.
type fleetParams struct {
	corpusSize   int
	minN, maxN   int
	duration     time.Duration
	workers      int
	queueDepth   int
	maxIters     int
	rateFactor   float64 // arrival rate as a multiple of one node's capacity
	probeEvery   time.Duration
	pollInterval time.Duration
}

func fleetSuiteParams(quick bool) fleetParams {
	// pollInterval is deliberately coarse: poll traffic scales with the
	// number of in-flight accepted jobs, which is 3× larger for the 3-node
	// fleet — tight polling taxes exactly the scenario under test.
	p := fleetParams{
		corpusSize:   18,
		minN:         32,
		maxN:         96,
		duration:     4 * time.Second,
		workers:      2,
		queueDepth:   16,
		maxIters:     400,
		rateFactor:   2.0,
		probeEvery:   15 * time.Millisecond,
		pollInterval: 20 * time.Millisecond,
	}
	if quick {
		p.corpusSize = 10
		p.maxN = 64
		p.duration = 2 * time.Second
	}
	return p
}

// fleetNode is one in-process solver behind a kill switch: while down,
// every request (probes included) answers 503 without reaching the
// service, the HTTP shape of a dead-but-port-bound node.
type fleetNode struct {
	name string
	svc  *service.Service
	ts   *httptest.Server
	down atomic.Bool
}

func bootFleet(p fleetParams, count int) (*fleet.Gateway, *httptest.Server, []*fleetNode, func(), error) {
	g := fleet.NewGateway(fleet.GatewayConfig{Membership: fleet.MembershipConfig{
		ProbeInterval: p.probeEvery,
		FailAfter:     2,
		ReviveAfter:   2,
	}})
	nodes := make([]*fleetNode, count)
	var closers []func()
	cleanup := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	for i := range nodes {
		n := &fleetNode{name: fmt.Sprintf("n%d", i)}
		n.svc = service.New(service.Config{
			Workers:    p.workers,
			QueueDepth: p.queueDepth,
			Cache:      service.CacheConfig{AnalyzeSpectrum: false},
		})
		inner := service.NewHandler(n.svc)
		n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if n.down.Load() {
				http.Error(w, "node down", http.StatusServiceUnavailable)
				return
			}
			inner.ServeHTTP(w, r)
		}))
		nodes[i] = n
		closers = append(closers, func() {
			n.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = n.svc.Shutdown(ctx)
		})
		if err := g.Membership().Register(n.name, n.ts.URL); err != nil {
			cleanup()
			return nil, nil, nil, nil, err
		}
	}
	g.Start()
	gw := httptest.NewServer(g.Handler())
	closers = append(closers, gw.Close, g.Close)
	return g, gw, nodes, cleanup, nil
}

// calibrateRate measures one solve end to end on a scratch node and sizes
// the open-loop arrival rate as rateFactor × one node's worker capacity,
// so the same scenario saturates a single node but not a 3-node fleet on
// any machine benchgate runs on.
func calibrateRate(p fleetParams, corpus []fleet.CorpusEntry) (float64, error) {
	_, gw, _, cleanup, err := bootFleet(p, 1)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	start := time.Now()
	rep, err := fleet.RunLoad(context.Background(), fleet.LoadConfig{
		BaseURL:        gw.URL,
		Rate:           6,
		Duration:       800 * time.Millisecond,
		Corpus:         corpus,
		BlockSize:      16,
		LocalIters:     2,
		MaxGlobalIters: p.maxIters,
		Tolerance:      1e-6,
		// Calibration wants the true per-job time, so poll finely here;
		// the scenarios themselves poll coarsely (see fleetSuiteParams).
		PollInterval: 2 * time.Millisecond,
		Seed:         7,
	})
	if err != nil {
		return 0, err
	}
	if rep.Completed == 0 {
		return 0, fmt.Errorf("calibration run completed no jobs in %s", time.Since(start))
	}
	perJob := rep.E2EP50
	if perJob <= 0 {
		perJob = 0.001
	}
	capacity := float64(p.workers) / perJob
	rate := p.rateFactor * capacity
	if rate < 25 {
		rate = 25
	}
	if rate > 1500 {
		rate = 1500
	}
	return rate, nil
}

func runFleetScenario(name string, p fleetParams, nodeCount int, rate float64,
	corpus []fleet.CorpusEntry, chaos func(nodes []*fleetNode)) (FleetScenario, error) {
	g, gw, nodes, cleanup, err := bootFleet(p, nodeCount)
	if err != nil {
		return FleetScenario{}, err
	}
	defer cleanup()

	ownerBefore := make(map[string]string, len(corpus))
	for _, e := range corpus {
		ownerBefore[e.Fingerprint], _ = g.Membership().Ring().Owner(e.Fingerprint)
	}

	chaosDone := make(chan struct{})
	if chaos != nil {
		go func() { defer close(chaosDone); chaos(nodes) }()
	} else {
		close(chaosDone)
	}

	rep, err := fleet.RunLoad(context.Background(), fleet.LoadConfig{
		BaseURL:        gw.URL,
		Rate:           rate,
		Duration:       p.duration,
		Corpus:         corpus,
		BlockSize:      16,
		LocalIters:     2,
		MaxGlobalIters: p.maxIters,
		Tolerance:      1e-6,
		PollInterval:   p.pollInterval,
		Seed:           7,
	})
	if err != nil {
		return FleetScenario{}, err
	}
	<-chaosDone

	// After chaos, give the probe loop a beat to re-admit, then check the
	// ring returned to its pre-chaos placement.
	restored := true
	deadline := time.Now().Add(5 * time.Second)
	for {
		restored = true
		for fp, want := range ownerBefore {
			if got, _ := g.Membership().Ring().Owner(fp); got != want {
				restored = false
				break
			}
		}
		if restored || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	var hits, misses uint64
	for _, n := range nodes {
		cs := n.svc.Stats().PlanCache
		hits += cs.Hits
		misses += cs.Misses
	}
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}

	return FleetScenario{
		Name:               name,
		Nodes:              nodeCount,
		RatePerSec:         rate,
		DurationSeconds:    rep.DurationSeconds,
		Offered:            rep.Offered,
		Accepted:           rep.Accepted,
		Completed:          rep.Completed,
		Shed:               rep.Shed,
		Errors:             rep.Errors,
		Throughput:         rep.Throughput,
		ShedRate:           rep.ShedRate,
		E2EP50:             rep.E2EP50,
		E2EP99:             rep.E2EP99,
		PlanHitRate:        hitRate,
		AffinityViolations: rep.AffinityViolations,
		RingRestored:       restored,
	}, nil
}

// runBurst fires burst concurrent submissions at a freshly booted fleet
// and counts admissions. This is the machine-independent scaling
// measurement: admission capacity is worker + queue slots, which a 3-node
// fleet has 3× of regardless of how many CPU cores back the nodes (a
// single shared core caps *compute* scaling, but never slot scaling).
// Accepted jobs are then polled to a terminal state so the row's
// Completed/Errors columns gate like the others.
func runBurst(name string, p fleetParams, nodeCount, burst int, corpus []fleet.CorpusEntry) (FleetScenario, error) {
	_, gw, nodes, cleanup, err := bootFleet(p, nodeCount)
	if err != nil {
		return FleetScenario{}, err
	}
	defer cleanup()

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}
	type outcome struct {
		status    int
		statusURL string
	}
	results := make(chan outcome, burst)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		e := corpus[i%len(corpus)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			// No tolerance: the job runs its full iteration budget and still
			// finishes "done". Sized so every job far outlasts burst
			// delivery — otherwise slots recycle mid-burst and a single
			// node's admission count inflates past its slot capacity.
			body, _ := json.Marshal(map[string]any{
				"matrix_market":    e.MatrixMarket,
				"block_size":       16,
				"local_iters":      2,
				"max_global_iters": 30000,
			})
			resp, err := client.Post(gw.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- outcome{status: -1}
				return
			}
			var sv struct {
				StatusURL string `json:"status_url"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&sv)
			resp.Body.Close()
			results <- outcome{status: resp.StatusCode, statusURL: sv.StatusURL}
		}()
	}
	wg.Wait()
	close(results)

	row := FleetScenario{Name: name, Nodes: nodeCount, Offered: burst, RingRestored: true}
	var statusURLs []string
	for r := range results {
		switch r.status {
		case http.StatusAccepted:
			row.Accepted++
			statusURLs = append(statusURLs, r.statusURL)
		case http.StatusTooManyRequests:
			row.Shed++
		default:
			row.Errors++
		}
	}
	row.DurationSeconds = time.Since(start).Seconds()
	row.ShedRate = float64(row.Shed) / float64(burst)

	var pollWG sync.WaitGroup
	var completed atomic.Int64
	for _, su := range statusURLs {
		pollWG.Add(1)
		go func(su string) {
			defer pollWG.Done()
			deadline := time.Now().Add(60 * time.Second)
			for time.Now().Before(deadline) {
				resp, err := client.Get(gw.URL + su)
				if err != nil {
					return
				}
				var v struct {
					State string `json:"state"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				if v.State == "done" {
					completed.Add(1)
					return
				}
				if v.State == "failed" || v.State == "canceled" {
					return
				}
				time.Sleep(p.pollInterval)
			}
		}(su)
	}
	pollWG.Wait()
	row.Completed = int(completed.Load())

	var hits, misses uint64
	for _, n := range nodes {
		cs := n.svc.Stats().PlanCache
		hits += cs.Hits
		misses += cs.Misses
	}
	if hits+misses > 0 {
		row.PlanHitRate = float64(hits) / float64(hits+misses)
	}
	return row, nil
}

// runFleetSuite measures the fleet scenarios and applies the
// baseline-independent gates (the scaling acceptance the subsystem was
// built for): a 3-node fleet must admit a strictly larger burst than one
// node (slot scaling — machine-independent), and with enough CPU cores to
// actually back the nodes it must also complete strictly more jobs per
// second under the identical open-loop arrival process (compute scaling).
// Cache affinity must not degrade with fleet size, and a mid-run node
// kill/revive must shed rather than error and leave the ring exactly as
// it found it. Returns the rows and the number of gate violations.
func runFleetSuite(quick bool, out io.Writer) ([]FleetScenario, int) {
	p := fleetSuiteParams(quick)
	corpus := fleet.BuildCorpus(p.corpusSize, p.minN, p.maxN)

	rate, err := calibrateRate(p, corpus)
	if err != nil {
		fmt.Fprintf(out, "benchgate: fleet calibration ERROR: %v\n", err)
		return nil, 1
	}
	fmt.Fprintf(out, "benchgate: fleet arrival rate %.0f req/s (%.1f× one node's capacity)\n", rate, p.rateFactor)

	killRevive := func(nodes []*fleetNode) {
		victim := nodes[len(nodes)-1]
		time.Sleep(p.duration / 3)
		victim.down.Store(true)
		time.Sleep(p.duration / 3)
		victim.down.Store(false)
	}

	type spec struct {
		name  string
		count int
		chaos func([]*fleetNode)
	}
	specs := []spec{
		{"fleet/1node", 1, nil},
		{"fleet/3node", 3, nil},
		{"fleet/3node-rebalance", 3, killRevive},
	}
	measure := func() ([]FleetScenario, error) {
		var rows []FleetScenario
		for _, s := range specs {
			row, err := runFleetScenario(s.name, p, s.count, rate, corpus, s.chaos)
			if err != nil {
				return rows, fmt.Errorf("fleet %s: %w", s.name, err)
			}
			fmt.Fprintf(out, "benchgate: %-22s %5.1f jobs/s  shed %4.1f%%  hit %4.1f%%  p99 %6.1fms  errors %d\n",
				s.name, row.Throughput, 100*row.ShedRate, 100*row.PlanHitRate, 1e3*row.E2EP99, row.Errors)
			rows = append(rows, row)
		}
		return rows, nil
	}
	// The throughput comparison is a measurement of a loaded system on a
	// shared machine; one re-measure on failure keeps the strict gate from
	// flaking without weakening it (a real scaling regression fails twice).
	scalingGateHolds := func(rows []FleetScenario) bool {
		byName := map[string]FleetScenario{}
		for _, r := range rows {
			byName[r.Name] = r
		}
		one, three := byName["fleet/1node"], byName["fleet/3node"]
		return three.Throughput > one.Throughput && three.PlanHitRate >= one.PlanHitRate-0.05
	}

	rows, err := measure()
	if err != nil {
		fmt.Fprintf(out, "benchgate: fleet ERROR: %v\n", err)
		return rows, 1
	}
	// The compute-scaling gate needs CPUs for the nodes to actually run
	// on: with fewer than 4 cores the harness, gateway and all nodes share
	// one execution resource and completion rate measures that resource,
	// not the fleet. The burst (slot-capacity) gate below holds on any
	// machine and carries the scaling acceptance there.
	gateCompute := runtime.NumCPU() >= 4
	if gateCompute && !scalingGateHolds(rows) {
		fmt.Fprintf(out, "benchgate: fleet scaling gate failed, re-measuring once\n")
		rerun, err := measure()
		if err != nil {
			fmt.Fprintf(out, "benchgate: fleet ERROR: %v\n", err)
			return rows, 1
		}
		rows = rerun
	}

	// Burst scenarios: one instantaneous burst sized to overrun a single
	// node's slots (workers + queue) threefold.
	burst := 3*(p.workers+p.queueDepth) + 12
	for _, bs := range []struct {
		name  string
		count int
	}{{"fleet/1node-burst", 1}, {"fleet/3node-burst", 3}} {
		row, err := runBurst(bs.name, p, bs.count, burst, corpus)
		if err != nil {
			fmt.Fprintf(out, "benchgate: fleet ERROR: %v\n", err)
			return rows, 1
		}
		fmt.Fprintf(out, "benchgate: %-22s admitted %d/%d  shed %4.1f%%  errors %d\n",
			bs.name, row.Accepted, row.Offered, 100*row.ShedRate, row.Errors)
		rows = append(rows, row)
	}

	byName := map[string]FleetScenario{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	one, three, reb := byName["fleet/1node"], byName["fleet/3node"], byName["fleet/3node-rebalance"]
	oneBurst, threeBurst := byName["fleet/1node-burst"], byName["fleet/3node-burst"]

	problems := 0
	if !(threeBurst.Accepted > oneBurst.Accepted) {
		fmt.Fprintf(out, "benchgate: REGRESSION fleet: 3 nodes admitted %d of a %d burst, 1 node admitted %d — slot capacity did not scale\n",
			threeBurst.Accepted, burst, oneBurst.Accepted)
		problems++
	}
	if gateCompute {
		if !(three.Throughput > one.Throughput) {
			fmt.Fprintf(out, "benchgate: REGRESSION fleet: 3 nodes (%.1f jobs/s) must out-complete 1 node (%.1f jobs/s)\n",
				three.Throughput, one.Throughput)
			problems++
		}
		if three.PlanHitRate < one.PlanHitRate-0.05 {
			fmt.Fprintf(out, "benchgate: REGRESSION fleet: 3-node plan-cache hit rate %.2f fell below 1-node %.2f — affinity broken\n",
				three.PlanHitRate, one.PlanHitRate)
			problems++
		}
	} else {
		fmt.Fprintf(out, "benchgate: fleet compute-scaling gate skipped (%d CPUs; needs >= 4 to back 3 nodes) — burst gate covers scaling\n",
			runtime.NumCPU())
	}
	for _, r := range rows {
		if r.Errors > 0 {
			fmt.Fprintf(out, "benchgate: REGRESSION fleet: %s had %d errors (shed is fine, errors are not)\n", r.Name, r.Errors)
			problems++
		}
		if r.Completed == 0 {
			fmt.Fprintf(out, "benchgate: REGRESSION fleet: %s completed nothing\n", r.Name)
			problems++
		}
	}
	if !reb.RingRestored {
		fmt.Fprintf(out, "benchgate: REGRESSION fleet: ring placement not restored after kill/revive\n")
		problems++
	}
	return rows, problems
}

// compareFleet gates current fleet rows against the baseline's. The
// scenarios measure a deliberately saturated system on a shared machine,
// so the time-like allowances are double the solver cases' (observed
// run-to-run spread under contention approaches 2×): p99 and (inverted)
// throughput tolerate 2×MaxTimeRegress, shed rate 30 points of absolute
// drift, and the plan-cache hit rate may not fall more than 10 points.
// Baselines without fleet rows gate nothing.
func compareFleet(base, current Report, lim Limits) []Problem {
	if base.SchemaVersion != current.SchemaVersion || base.Quick != current.Quick {
		return nil
	}
	now := map[string]FleetScenario{}
	for _, r := range current.Fleet {
		now[r.Name] = r
	}
	timeLimit := 2 * lim.MaxTimeRegress
	var out []Problem
	for _, b := range base.Fleet {
		c, ok := now[b.Name]
		if !ok {
			out = append(out, Problem{Case: b.Name, Metric: "coverage (fleet scenario missing from current run)"})
			continue
		}
		if b.E2EP99 > 0 && c.E2EP99 > b.E2EP99*(1+timeLimit) {
			out = append(out, Problem{Case: b.Name, Metric: "fleet e2e_p99_seconds",
				Base: b.E2EP99, Now: c.E2EP99, Limit: timeLimit})
		}
		if b.Throughput > 0 && c.Throughput > 0 &&
			b.Throughput/c.Throughput > 1+timeLimit {
			out = append(out, Problem{Case: b.Name, Metric: "fleet throughput (inverse)",
				Base: b.Throughput, Now: c.Throughput, Limit: timeLimit})
		}
		if c.ShedRate > b.ShedRate+0.30 {
			out = append(out, Problem{Case: b.Name, Metric: "fleet shed_rate",
				Base: b.ShedRate, Now: c.ShedRate, Limit: 0.30})
		}
		if c.PlanHitRate < b.PlanHitRate-0.10 {
			out = append(out, Problem{Case: b.Name, Metric: "fleet plan_hit_rate (floor)",
				Base: b.PlanHitRate, Now: c.PlanHitRate, Limit: 0.10})
		}
	}
	return out
}
