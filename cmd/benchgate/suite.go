package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/mats"
	"repro/internal/multigpu"
	"repro/internal/sparse"
	"repro/internal/tune"
	"repro/internal/vecmath"
)

// benchCase is one suite entry: a matrix, an engine, and an async-(k)
// configuration that converges to Tolerance.
type benchCase struct {
	Name       string
	Matrix     string
	Gen        func() *sparse.CSR
	Engine     string // "simulated" | "goroutine" | "freerunning" | "multigpu"
	BlockSize  int
	LocalIters int
	Omega      float64 // 0 means 1
	Tolerance  float64
	MaxIters   int
	Seed       int64 // simulated engine: fixes the schedule, so runs are exact
	Reps       int
	// Tuned replaces BlockSize/LocalIters/Omega with the auto-tuner's
	// choice before measuring (the search itself is not timed).
	Tuned bool
	// Devices and Strategy configure a "multigpu" engine row: the live
	// multi-device executor with that many GPUs exchanging via Strategy.
	Devices  int
	Strategy multigpu.Strategy
}

// suite returns the benchmark cases. The quick suite keeps the paper's
// Trefethen_2000 (the matrix the satellite tests anchor on) and shrinks
// the stencil/statistical analogs so a CI run finishes in seconds; the
// full suite uses the paper's Table 1 sizes. Case names are stable across
// modes only where the configuration is identical, because the gate
// matches baselines by name.
func suite(quick bool) []benchCase {
	reps := 5
	if quick {
		reps = 3
	}
	tref := func() *sparse.CSR { return mats.Trefethen(2000) }
	fv := func() *sparse.CSR { return mats.FV(40, 40, 1.368) }
	chem := func() *sparse.CSR { return mats.Chem97ZtZ(600) }
	if !quick {
		fv = func() *sparse.CSR { return mats.FVTiled(98, 98, 1.368) }
		chem = func() *sparse.CSR { return mats.Chem97ZtZ(2541) }
	}
	fvName, chemName := "fv_40x40", "Chem97ZtZ_600"
	if !quick {
		fvName, chemName = "fv1", "Chem97ZtZ"
	}

	cases := []benchCase{
		{Name: "Trefethen_2000/simulated/k5", Matrix: "Trefethen_2000", Gen: tref,
			Engine: "simulated", BlockSize: 128, LocalIters: 5, Tolerance: 1e-6, MaxIters: 200, Seed: 1, Reps: reps},
		{Name: "Trefethen_2000/goroutine/k5", Matrix: "Trefethen_2000", Gen: tref,
			Engine: "goroutine", BlockSize: 128, LocalIters: 5, Tolerance: 1e-6, MaxIters: 200, Reps: reps},
		{Name: "Trefethen_2000/freerunning/k5", Matrix: "Trefethen_2000", Gen: tref,
			Engine: "freerunning", BlockSize: 128, LocalIters: 5, Tolerance: 1e-6, MaxIters: 400, Reps: reps},
		{Name: fvName + "/simulated/k5", Matrix: fvName, Gen: fv,
			Engine: "simulated", BlockSize: 128, LocalIters: 5, Tolerance: 1e-6, MaxIters: 2000, Seed: 1, Reps: reps},
		{Name: chemName + "/simulated/k5", Matrix: chemName, Gen: chem,
			Engine: "simulated", BlockSize: 128, LocalIters: 5, Tolerance: 1e-6, MaxIters: 2000, Seed: 1, Reps: reps},
		// Tuned counterparts of the three paper matrices: the auto-tuner
		// picks (block size, k, ω); the tuned-vs-default summary in the
		// snapshot compares each against its /k5 default row.
		{Name: "Trefethen_2000/simulated/tuned", Matrix: "Trefethen_2000", Gen: tref,
			Engine: "simulated", Tuned: true, Tolerance: 1e-6, MaxIters: 200, Seed: 1, Reps: reps},
		{Name: fvName + "/simulated/tuned", Matrix: fvName, Gen: fv,
			Engine: "simulated", Tuned: true, Tolerance: 1e-6, MaxIters: 2000, Seed: 1, Reps: reps},
		{Name: chemName + "/simulated/tuned", Matrix: chemName, Gen: chem,
			Engine: "simulated", Tuned: true, Tolerance: 1e-6, MaxIters: 2000, Seed: 1, Reps: reps},
	}
	// Multi-device rows over the AMC device sweep of Figure 11: the modeled
	// seconds must reproduce its shape (2 GPUs beat 1, 3 GPUs — crossing
	// QPI — cost more than 2), which main gates explicitly after the run.
	// The 1-device row executes sequentially and is seeded, so it is exact.
	for _, g := range []int{1, 2, 3} {
		cases = append(cases, benchCase{
			Name: fmt.Sprintf("Trefethen_2000/multigpu-amc/g%d", g), Matrix: "Trefethen_2000", Gen: tref,
			Engine: "multigpu", BlockSize: 128, LocalIters: 5, Tolerance: 1e-6, MaxIters: 400,
			Seed: 1, Reps: reps, Devices: g, Strategy: multigpu.AMC,
		})
	}
	if !quick {
		cases = append(cases,
			benchCase{Name: fvName + "/goroutine/k5", Matrix: fvName, Gen: fv,
				Engine: "goroutine", BlockSize: 448, LocalIters: 5, Tolerance: 1e-6, MaxIters: 2000, Reps: reps},
			benchCase{Name: "Trefethen_2000/simulated/exact", Matrix: "Trefethen_2000", Gen: tref,
				Engine: "simulated", BlockSize: 128, LocalIters: 0, Tolerance: 1e-6, MaxIters: 200, Seed: 1, Reps: reps},
		)
	}
	return cases
}

// runCase executes one case Reps times against a pre-built plan (setup is
// excluded: time-to-tolerance measures the iteration phase the paper's
// Table 5 times) and reports the fastest repetition, with the heap
// allocation delta of a single solve.
func runCase(c benchCase) (CaseResult, error) {
	a := c.Gen()
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))

	if c.Tuned {
		// The search runs outside the timed region: a warm daemon serves
		// it from the fingerprint cache, so the measured solve is what a
		// repeat customer pays.
		tr, err := tune.Tune(a, b, tune.Config{Seed: c.Seed})
		if err != nil {
			return CaseResult{Name: c.Name}, fmt.Errorf("auto-tune: %w", err)
		}
		c.BlockSize, c.LocalIters, c.Omega = tr.BlockSize, tr.LocalIters, tr.Omega
	}

	res := CaseResult{
		Name: c.Name, Matrix: c.Matrix, Engine: c.Engine, N: a.Rows,
		BlockSize: c.BlockSize, LocalIters: c.LocalIters, Tolerance: c.Tolerance,
		// A seeded simulated run is exact; so is a seeded 1-device multigpu
		// run (a single shard executes sequentially in dispatch order).
		Deterministic: c.Seed != 0 && (c.Engine == "simulated" ||
			(c.Engine == "multigpu" && c.Devices == 1)),
		Tuned:   c.Tuned,
		Devices: c.Devices,
	}
	if c.Engine == "multigpu" {
		res.Strategy = c.Strategy.String()
	}
	if c.Omega != 0 && c.Omega != 1 {
		res.Omega = c.Omega
	}

	exact := c.LocalIters == 0
	plan, err := core.NewPlan(a, c.BlockSize, exact)
	if err != nil {
		return res, err
	}

	best := -1.0
	for rep := 0; rep < c.Reps; rep++ {
		iters, elapsed, allocB, allocN, err := runOnce(plan, a, b, c)
		if err != nil {
			return res, err
		}
		if best < 0 || elapsed < best {
			best = elapsed
			res.Iterations = iters
		}
		// Allocations are gated on the minimum across reps: concurrent GC
		// and goroutine-stack reuse add run-to-run noise that the fastest
		// rep does not necessarily avoid.
		if rep == 0 || allocB < res.AllocBytes {
			res.AllocBytes = allocB
		}
		if rep == 0 || allocN < res.Allocs {
			res.Allocs = allocN
		}
	}
	res.TimeToTolerance = best
	if best > 0 {
		res.ItersPerSec = float64(res.Iterations) / best
	}
	if !exact {
		model := gpusim.CalibratedModel()
		if c.Engine == "multigpu" {
			perIter, err := multigpu.IterTime(model, multigpu.Supermicro(), c.Strategy,
				c.Devices, a.Rows, a.NNZ(), c.LocalIters)
			if err != nil {
				return res, err
			}
			res.ModeledSeconds = perIter * float64(res.Iterations)
		} else {
			res.ModeledSeconds = model.AsyncIterTime(a.Rows, a.NNZ(), c.LocalIters) * float64(res.Iterations)
		}
	}
	return res, nil
}

func runOnce(plan *core.Plan, a *sparse.CSR, b []float64, c benchCase) (int, float64, uint64, uint64, error) {
	// Settle the heap so the measured delta is this solve's allocations,
	// not a concurrent background sweep's.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	var iters int
	var converged bool
	switch c.Engine {
	case "simulated", "goroutine":
		engine := core.EngineSimulated
		if c.Engine == "goroutine" {
			engine = core.EngineGoroutine
		}
		opt := core.Options{
			BlockSize: c.BlockSize, LocalIters: c.LocalIters, ExactLocal: c.LocalIters == 0,
			Omega:          c.Omega,
			MaxGlobalIters: c.MaxIters, Tolerance: c.Tolerance, Engine: engine, Seed: c.Seed,
		}
		r, err := core.SolveWithPlan(plan, b, opt)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		iters, converged = r.GlobalIterations, r.Converged
	case "multigpu":
		opt := core.Options{
			BlockSize: c.BlockSize, LocalIters: c.LocalIters,
			Omega:          c.Omega,
			MaxGlobalIters: c.MaxIters, Tolerance: c.Tolerance, Seed: c.Seed,
		}
		r, err := multigpu.SolveWithPlan(plan, b, opt, gpusim.CalibratedModel(),
			multigpu.Supermicro(), c.Strategy, c.Devices)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		iters, converged = r.GlobalIterations, r.Converged
	case "freerunning":
		nb := plan.NumBlocks()
		r, err := core.SolveFreeRunningWithPlan(plan, b, core.FreeRunningOptions{
			BlockSize: c.BlockSize, LocalIters: c.LocalIters,
			MaxBlockUpdates: int64(c.MaxIters) * int64(nb), Tolerance: c.Tolerance,
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		iters = int(r.EquivalentGlobalIters + 0.5)
		converged = r.Converged
	default:
		return 0, 0, 0, 0, fmt.Errorf("unknown engine %q", c.Engine)
	}

	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if !converged {
		return 0, 0, 0, 0, fmt.Errorf("%s did not reach %g within the budget", c.Name, c.Tolerance)
	}
	return iters, elapsed, after.TotalAlloc - before.TotalAlloc, after.Mallocs - before.Mallocs, nil
}
