// Command benchgate is the repository's benchmark regression gate: it runs
// the paper-matrix suite (Trefethen, fv stencil, Chem97ZtZ analog) across
// the three execution engines, writes a schema-versioned BENCH_<date>.json
// snapshot (iterations and wall time to tolerance, iterations/second,
// allocations), compares the run against the newest committed BENCH_*.json
// baseline, and exits nonzero when a metric regressed beyond its threshold.
// The snapshot also carries the fleet scenarios — an in-process
// consistent-hash gateway over 1 and 3 solver nodes under calibrated
// open-loop load, plus a kill/revive rebalance — gating that 3 nodes
// out-complete 1, that cache affinity survives fleet scale, and that node
// churn sheds rather than errors (see fleet.go) — and the admission-
// certifier rows: certification latency, the predicted-vs-actual iteration
// ratios of the paper matrices (inside the PredictedFactor band of
// docs/CERTIFY.md), and the doomed-matrix row where a cached certificate
// rejection must beat the divergent solve by ≥100× (see certify.go) — and
// the session rows: the deterministic warm-vs-cold comparison (a k-step
// session must out-iterate k cold solves of the same slowly-varying
// sequence) and the batch-vs-sequential wall-time speedup, enforced on
// ≥4-core machines (see session.go) — and the sweep-kernel rows: the
// matrix-free stencil and sliced-ELL kernels against the packed-CSR
// baseline on fixed-sweep solves, with enforced speedup floors (stencil
// ≥1.5×, SELL ≥1.1×; see kernel.go and docs/KERNELS.md) — and the
// update-rule rows: second-order Richardson (momentum) against damped
// Jacobi in iterations to tolerance on the paper matrices (richardson2
// must win on ≥2 of 3), async-smoothed multigrid against single-level
// damped Jacobi in modeled seconds per residual digit (multigrid must be
// cheaper), and the bounded-delay ring's tick counts per rule at
// MaxDelay ∈ {0, 2, 4} (momentum must converge wherever jacobi does; see
// method.go and docs/METHODS.md).
//
// The paper's claims are performance claims — convergence per second, not
// just per iteration — so the repo's trajectory needs a measured baseline
// before any optimization can be trusted. Deterministic cases (the seeded
// simulated engine) gate tightly on iteration counts, which are exact;
// wall-time and allocation thresholds are loose enough for shared CI
// machines, and the non-deterministic engines get an extra iteration
// allowance (the paper's own 1000-run study shows their spread).
//
// Usage:
//
//	benchgate               # full suite, compare, write snapshot
//	benchgate -quick        # CI suite: small matrices, fewer repetitions
//	benchgate -dir .        # where baselines live and the snapshot is written
//
// Exit codes: 0 pass, 1 regression (or missing coverage), 2 error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "small-matrix suite with fewer repetitions (CI)")
		dir      = fs.String("dir", ".", "directory holding BENCH_*.json baselines; the snapshot is written there")
		baseline = fs.String("baseline", "", "explicit baseline file (default: newest BENCH_*.json in -dir)")
		noWrite  = fs.Bool("no-write", false, "compare only; do not write a snapshot")
		limits   = defaultLimits()
	)
	fs.Float64Var(&limits.MaxTimeRegress, "max-time-regress", limits.MaxTimeRegress,
		"tolerated fractional wall-time increase (loose: machine variance)")
	fs.Float64Var(&limits.MaxIterRegress, "max-iter-regress", limits.MaxIterRegress,
		"tolerated fractional iteration-count increase for deterministic cases")
	fs.Float64Var(&limits.MaxAllocRegress, "max-alloc-regress", limits.MaxAllocRegress,
		"tolerated fractional allocated-bytes increase")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	base, basePath, err := loadBaseline(*baseline, *dir)
	if err != nil {
		fmt.Fprintf(out, "benchgate: %v\n", err)
		return 2
	}

	report := Report{
		SchemaVersion: schemaVersion,
		Date:          time.Now().UTC().Format("2006-01-02"),
		GoVersion:     runtime.Version(),
		Quick:         *quick,
	}
	for _, c := range suite(*quick) {
		fmt.Fprintf(out, "benchgate: running %-40s", c.Name)
		r, err := runCase(c)
		if err != nil {
			fmt.Fprintf(out, " ERROR: %v\n", err)
			return 2
		}
		fmt.Fprintf(out, " %4d iters  %8.1f iters/s  %9.2fms\n",
			r.Iterations, r.ItersPerSec, 1e3*r.TimeToTolerance)
		report.Cases = append(report.Cases, r)
	}
	report.TunedVsDefault = tunedVsDefault(report.Cases)
	for _, d := range report.TunedVsDefault {
		verdict := "tuned wins"
		if !d.TunedWins {
			verdict = "default wins"
		}
		fmt.Fprintf(out, "benchgate: tuned-vs-default %-16s iters ×%.2f  modeled ×%.2f  (%s)\n",
			d.Matrix, d.IterRatio, d.ModeledRatio, verdict)
	}
	figProblems := figure11(report.Cases, out)
	fleetRows, fleetProblems := runFleetSuite(*quick, out)
	report.Fleet = fleetRows
	certifyRows, certifyProblems := runCertifySuite(*quick, out)
	report.Certify = certifyRows
	sessionRows, sessionProblems := runSessionSuite(*quick, out)
	report.Sessions = sessionRows
	kernelRows, kernelProblems := runKernelSuite(*quick, out)
	report.Kernels = kernelRows
	methodRows, methodProblems := runMethodSuite(*quick, out)
	report.Methods = methodRows

	if !*noWrite {
		path := filepath.Join(*dir, "BENCH_"+report.Date+".json")
		if err := writeReport(path, report); err != nil {
			fmt.Fprintf(out, "benchgate: %v\n", err)
			return 2
		}
		fmt.Fprintf(out, "benchgate: wrote %s\n", path)
	}

	if base == nil {
		fmt.Fprintf(out, "benchgate: no baseline found; snapshot becomes the baseline\n")
		if figProblems+fleetProblems+certifyProblems+sessionProblems+kernelProblems+methodProblems > 0 {
			return 1
		}
		return 0
	}
	code := verdict(*base, basePath, report, limits, out)
	if figProblems+fleetProblems+certifyProblems+sessionProblems+kernelProblems+methodProblems > 0 && code == 0 {
		code = 1
	}
	return code
}

// figure11 gates the AMC device sweep against the shape of the paper's
// Figure 11, which is baseline-independent physics of the modeled topology
// coupled to the live iteration counts: two devices must beat one on
// modeled time, and three devices — whose exchanges cross the QPI socket
// bridge — must cost more than two. It prints one line per sweep row plus
// any violations, and returns the violation count.
func figure11(cases []CaseResult, out io.Writer) int {
	byDev := map[int]CaseResult{}
	for _, c := range cases {
		if c.Engine == "multigpu" && c.Strategy == "AMC" {
			byDev[c.Devices] = c
		}
	}
	g1, ok1 := byDev[1]
	g2, ok2 := byDev[2]
	g3, ok3 := byDev[3]
	if !ok1 || !ok2 || !ok3 {
		return 0 // sweep not in this suite
	}
	for _, c := range []CaseResult{g1, g2, g3} {
		fmt.Fprintf(out, "benchgate: figure11 AMC g%d  %4d iters  modeled %.4fs\n",
			c.Devices, c.Iterations, c.ModeledSeconds)
	}
	problems := 0
	if !(g2.ModeledSeconds < g1.ModeledSeconds) {
		fmt.Fprintf(out, "benchgate: REGRESSION figure11: 2 devices (%.4fs) must beat 1 (%.4fs)\n",
			g2.ModeledSeconds, g1.ModeledSeconds)
		problems++
	}
	if !(g3.ModeledSeconds > g2.ModeledSeconds) {
		fmt.Fprintf(out, "benchgate: REGRESSION figure11: 3 devices (%.4fs) must cost more than 2 (%.4fs) — QPI\n",
			g3.ModeledSeconds, g2.ModeledSeconds)
		problems++
	}
	return problems
}

// verdict prints the gate outcome and returns the process exit code.
func verdict(base Report, basePath string, current Report, lim Limits, out io.Writer) int {
	fmt.Fprintf(out, "benchgate: comparing against %s\n", basePath)
	problems := Compare(base, current, lim)
	if len(problems) == 0 {
		fmt.Fprintf(out, "benchgate: PASS (%d cases gated)\n", len(current.Cases))
		return 0
	}
	for _, p := range problems {
		fmt.Fprintf(out, "benchgate: REGRESSION %s\n", p)
	}
	fmt.Fprintf(out, "benchgate: FAIL (%d regressions)\n", len(problems))
	return 1
}

// gate loads the baseline at basePath and runs the verdict against an
// already-measured report — the path the tests drive without re-running
// the suite.
func gate(basePath string, current Report, lim Limits, out io.Writer) int {
	base, err := readReport(basePath)
	if err != nil {
		fmt.Fprintf(out, "benchgate: %v\n", err)
		return 2
	}
	return verdict(*base, basePath, current, lim, out)
}

// loadBaseline resolves the comparison baseline: an explicit path, or the
// lexically newest BENCH_*.json in dir (the names embed ISO dates, so
// lexical order is date order). It must run before the snapshot is
// written, so a same-day rerun still compares against the committed state.
func loadBaseline(explicit, dir string) (*Report, string, error) {
	path := explicit
	if path == "" {
		matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return nil, "", err
		}
		if len(matches) == 0 {
			return nil, "", nil
		}
		sort.Strings(matches)
		path = matches[len(matches)-1]
	}
	r, err := readReport(path)
	if err != nil {
		return nil, "", fmt.Errorf("reading baseline %s: %w", path, err)
	}
	return r, path, nil
}
