package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// schemaVersion identifies the BENCH_*.json layout. Bump it on any
// incompatible change; Compare refuses to gate across versions (a schema
// change is a human decision, not a regression).
const schemaVersion = 1

// Report is one benchmark snapshot — the BENCH_<date>.json payload.
type Report struct {
	SchemaVersion int          `json:"schema_version"`
	Date          string       `json:"date"`
	GoVersion     string       `json:"go_version"`
	Quick         bool         `json:"quick"`
	Cases         []CaseResult `json:"cases"`
	// TunedVsDefault summarizes each tuned suite row against its
	// default-configuration counterpart (additive field; older baselines
	// simply lack it).
	TunedVsDefault []TunedDelta `json:"tuned_vs_default,omitempty"`
	// Fleet holds the in-process fleet load-test scenarios (additive
	// field; older baselines simply lack it and gate nothing there).
	Fleet []FleetScenario `json:"fleet,omitempty"`
	// Certify holds the admission-certifier rows: latency, the
	// predicted-vs-actual iteration ratios of the paper matrices, and the
	// doomed-matrix rejection speedup (additive field; older baselines
	// simply lack it and gate nothing there).
	Certify []CertifyScenario `json:"certify,omitempty"`
	// Sessions holds the streaming-session and batch rows: the
	// deterministic warm-vs-cold iteration comparison and the
	// batch-vs-sequential wall-time speedup (additive field; older
	// baselines simply lack it and gate nothing there).
	Sessions []SessionScenario `json:"sessions,omitempty"`
	// Kernels holds the sweep-kernel speedup rows: stencil and SELL wall
	// time against the packed-CSR baseline on fixed-sweep solves, with
	// enforced speedup floors (additive field; older baselines simply lack
	// it and gate nothing there).
	Kernels []KernelScenario `json:"kernels,omitempty"`
	// Methods holds the update-rule rows: momentum-vs-jacobi iteration
	// counts on the paper matrices, the multigrid-vs-damped-Jacobi modeled
	// seconds per digit, and the bounded-delay ring's per-rule tick counts
	// (additive field; older baselines simply lack it and gate nothing
	// there).
	Methods []MethodScenario `json:"methods,omitempty"`
}

// CaseResult is one benchmark case's measurements. Iteration counts of
// deterministic cases are exact (seeded simulated engine); wall times are
// the minimum over the case's repetitions.
type CaseResult struct {
	Name          string  `json:"name"`
	Matrix        string  `json:"matrix"`
	Engine        string  `json:"engine"`
	N             int     `json:"n"`
	BlockSize     int     `json:"block_size"`
	LocalIters    int     `json:"local_iters"`
	Tolerance     float64 `json:"tolerance"`
	Deterministic bool    `json:"deterministic"`

	// Omega is the relaxation weight when it differs from 1, and Tuned
	// marks rows whose (block size, k, ω) came from the auto-tuner rather
	// than the suite table. Additive fields: absent in older baselines.
	Omega float64 `json:"omega,omitempty"`
	Tuned bool    `json:"tuned,omitempty"`
	// Devices and Strategy describe a multi-device row ("multigpu" engine):
	// device count and communication strategy of the live executor.
	// Additive fields: absent in older baselines.
	Devices  int    `json:"devices,omitempty"`
	Strategy string `json:"strategy,omitempty"`

	Iterations      int     `json:"iterations"` // global iterations to tolerance
	TimeToTolerance float64 `json:"time_to_tolerance_seconds"`
	ItersPerSec     float64 `json:"iters_per_sec"`
	AllocBytes      uint64  `json:"alloc_bytes"` // heap bytes allocated by one solve
	Allocs          uint64  `json:"allocs"`      // heap objects allocated by one solve
	// ModeledSeconds is the modeled GPU wall time to tolerance: the
	// calibrated per-iteration cost × iterations (0 for exact-local rows,
	// and absent in older baselines).
	ModeledSeconds float64 `json:"modeled_seconds,omitempty"`
}

// TunedDelta compares a tuned suite row against the default-configuration
// row of the same matrix and engine. Ratios below 1 mean the tuner won.
type TunedDelta struct {
	Matrix       string  `json:"matrix"`
	DefaultCase  string  `json:"default_case"`
	TunedCase    string  `json:"tuned_case"`
	IterRatio    float64 `json:"iterations_ratio"`      // tuned / default
	ModeledRatio float64 `json:"modeled_seconds_ratio"` // tuned / default
	TunedWins    bool    `json:"tuned_wins"`            // on iterations or modeled time
}

// tunedVsDefault pairs every tuned case with the default row of the same
// matrix and engine.
func tunedVsDefault(cases []CaseResult) []TunedDelta {
	var out []TunedDelta
	for _, tc := range cases {
		if !tc.Tuned {
			continue
		}
		for _, dc := range cases {
			if dc.Tuned || dc.Matrix != tc.Matrix || dc.Engine != tc.Engine || dc.LocalIters == 0 {
				continue
			}
			d := TunedDelta{Matrix: tc.Matrix, DefaultCase: dc.Name, TunedCase: tc.Name}
			if dc.Iterations > 0 {
				d.IterRatio = float64(tc.Iterations) / float64(dc.Iterations)
			}
			if dc.ModeledSeconds > 0 {
				d.ModeledRatio = tc.ModeledSeconds / dc.ModeledSeconds
			}
			d.TunedWins = (d.IterRatio > 0 && d.IterRatio < 1) || (d.ModeledRatio > 0 && d.ModeledRatio < 1)
			out = append(out, d)
			break
		}
	}
	return out
}

func (r Report) byName() map[string]CaseResult {
	m := make(map[string]CaseResult, len(r.Cases))
	for _, c := range r.Cases {
		m[c.Name] = c
	}
	return m
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.SchemaVersion == 0 {
		return nil, fmt.Errorf("%s: missing schema_version", path)
	}
	return &r, nil
}

func writeReport(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Limits are the per-metric regression thresholds, expressed as tolerated
// fractional increase over the baseline.
type Limits struct {
	// MaxIterRegress gates iteration counts of deterministic cases; the
	// non-deterministic engines get NondetIterFactor times the allowance
	// (run-to-run spread is physical, per the paper's §4.1 study).
	MaxIterRegress   float64
	NondetIterFactor float64
	// MaxTimeRegress gates time-to-tolerance and (inverted) iters/sec.
	// Loose by default: CI machines are noisy and shared.
	MaxTimeRegress float64
	// MaxAllocRegress gates allocated bytes and object counts.
	MaxAllocRegress float64
}

func defaultLimits() Limits {
	return Limits{
		MaxIterRegress:   0.10,
		NondetIterFactor: 5,
		MaxTimeRegress:   1.00,
		MaxAllocRegress:  0.50,
	}
}

// Problem is one gate violation.
type Problem struct {
	Case   string
	Metric string
	Base   float64
	Now    float64
	Limit  float64 // tolerated fractional increase
}

func (p Problem) String() string {
	if p.Base == 0 {
		return fmt.Sprintf("%s: %s", p.Case, p.Metric)
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%+.0f%%, limit +%.0f%%)",
		p.Case, p.Metric, p.Base, p.Now, 100*(p.Now/p.Base-1), 100*p.Limit)
}

// Compare gates current against base: every baseline case must still
// exist, and no metric may regress beyond its limit. Reports from
// different schema versions or suite modes (quick vs full) are not
// comparable case-by-case, so only the intersection gates in the
// cross-mode case and nothing gates across schema versions.
func Compare(base, current Report, lim Limits) []Problem {
	if base.SchemaVersion != current.SchemaVersion {
		return nil
	}
	var out []Problem
	now := current.byName()
	sameMode := base.Quick == current.Quick
	for _, b := range base.Cases {
		c, ok := now[b.Name]
		if !ok {
			if sameMode {
				out = append(out, Problem{Case: b.Name, Metric: "coverage (case missing from current run)"})
			}
			continue
		}
		iterLimit := lim.MaxIterRegress
		if !b.Deterministic {
			iterLimit *= lim.NondetIterFactor
		}
		check := func(metric string, baseV, nowV, limit float64) {
			if baseV > 0 && nowV > baseV*(1+limit) {
				out = append(out, Problem{Case: b.Name, Metric: metric, Base: baseV, Now: nowV, Limit: limit})
			}
		}
		check("iterations", float64(b.Iterations), float64(c.Iterations), iterLimit)
		// Modeled time is iterations × a constant per-iteration cost, so it
		// gates with the iteration allowance; baselines predating the field
		// hold 0 there and are skipped by the baseV > 0 guard.
		check("modeled_seconds", b.ModeledSeconds, c.ModeledSeconds, iterLimit)
		check("time_to_tolerance_seconds", b.TimeToTolerance, c.TimeToTolerance, lim.MaxTimeRegress)
		check("alloc_bytes", float64(b.AllocBytes), float64(c.AllocBytes), lim.MaxAllocRegress)
		check("allocs", float64(b.Allocs), float64(c.Allocs), lim.MaxAllocRegress)
		// iters/sec regresses downward; gate the inverse ratio so one
		// threshold covers both time metrics.
		if b.ItersPerSec > 0 && c.ItersPerSec > 0 &&
			b.ItersPerSec/c.ItersPerSec > 1+lim.MaxTimeRegress {
			out = append(out, Problem{Case: b.Name, Metric: "iters_per_sec (inverse)",
				Base: b.ItersPerSec, Now: c.ItersPerSec, Limit: lim.MaxTimeRegress})
		}
	}
	out = append(out, compareFleet(base, current, lim)...)
	out = append(out, compareCertify(base, current, lim)...)
	out = append(out, compareSessions(base, current, lim)...)
	out = append(out, compareKernels(base, current, lim)...)
	out = append(out, compareMethods(base, current, lim)...)
	return out
}
