package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// SessionScenario is one streaming-session / batch benchmark row of the
// snapshot. The warm-vs-cold row is fully deterministic (seeded simulated
// engine) and gates the point of sessions: a k-step session over a
// slowly-varying right-hand-side sequence must spend strictly fewer total
// iterations than k cold solves of the same sequence. The batch row
// measures what one batched submission buys over the sequential loop a
// caller would otherwise write; its wall-time speedup gates only on
// machines with enough cores for the comparison to mean anything.
type SessionScenario struct {
	Name   string `json:"name"`
	Matrix string `json:"matrix"`
	N      int    `json:"n"`
	// Steps / WarmIters / ColdIters describe the warm-vs-cold row: total
	// global iterations of the k-step session against the k chained cold
	// solves. WarmSavings is 1 - warm/cold.
	Steps       int     `json:"steps,omitempty"`
	WarmIters   int     `json:"warm_iters,omitempty"`
	ColdIters   int     `json:"cold_iters,omitempty"`
	WarmSavings float64 `json:"warm_savings,omitempty"`
	// Systems / Workers / BatchSeconds / SequentialSeconds describe the
	// batch row: wall time of one SolveBatch call against the equivalent
	// sequential per-system loop (identical seeds, so identical work).
	// BatchSpeedup is sequential/batch; SpeedupGated records whether the
	// machine had enough cores for the speedup to be enforced.
	Systems           int     `json:"systems,omitempty"`
	Workers           int     `json:"workers,omitempty"`
	BatchSeconds      float64 `json:"batch_seconds,omitempty"`
	SequentialSeconds float64 `json:"sequential_seconds,omitempty"`
	BatchSpeedup      float64 `json:"batch_speedup,omitempty"`
	SpeedupGated      bool    `json:"speedup_gated,omitempty"`
}

// batchSpeedupFloor is the enforced batch-vs-sequential wall-time ratio on
// gated (≥4 core) machines: with 4 cross-system workers on independent
// small systems, anything under this means the batch path serialized.
const batchSpeedupFloor = 1.3

// runSessionSuite measures the session and batch rows and returns them
// with the count of gate violations.
func runSessionSuite(quick bool, out io.Writer) ([]SessionScenario, int) {
	var rows []SessionScenario
	problems := 0

	row, probs := runWarmVsCold(quick, out)
	rows = append(rows, row)
	problems += probs

	row, probs = runBatchVsSequential(quick, out)
	rows = append(rows, row)
	problems += probs
	return rows, problems
}

// stepRHS builds the k-th right-hand side of the slowly-varying sequence:
// b_k = A·x_k for a target drifting 2% per step, the parameter-sweep
// shape sessions exist for (each step's solution is close to the last).
func stepRHS(a *sparse.CSR, k int) []float64 {
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + 0.02*float64(k)*float64(i%3)
	}
	b := make([]float64, a.Rows)
	a.MulVec(b, x)
	return b
}

// runWarmVsCold runs the same K-step right-hand-side sequence twice on
// one plan — through a warm-starting session, and as K independent cold
// solves — on the seeded simulated engine, so both iteration totals are
// exact. The session must win strictly: that saving is the entire reason
// the /v1/sessions API exists, and it holds deterministically, so it is
// gated on every machine.
func runWarmVsCold(quick bool, out io.Writer) (SessionScenario, int) {
	const steps = 4
	a := mats.Trefethen(2000)
	row := SessionScenario{
		Name: "session/warm-vs-cold", Matrix: "Trefethen_2000", N: a.Rows, Steps: steps,
	}
	opt := core.Options{
		BlockSize: 128, LocalIters: 5, MaxGlobalIters: 400,
		Tolerance: 1e-6, Engine: core.EngineSimulated, Seed: 1,
	}
	plan, err := core.NewPlan(a, opt.BlockSize, false)
	if err != nil {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: plan: %v\n", row.Name, err)
		return row, 1
	}

	sess := core.NewSession(plan)
	for k := 1; k <= steps; k++ {
		r, err := sess.Step(stepRHS(a, k), opt)
		if err != nil || !r.Converged {
			fmt.Fprintf(out, "benchgate: REGRESSION %s: warm step %d converged=%v err=%v\n",
				row.Name, k, r.Converged, err)
			return row, 1
		}
		row.WarmIters += r.GlobalIterations
	}
	for k := 1; k <= steps; k++ {
		r, err := core.SolveWithPlan(plan, stepRHS(a, k), opt)
		if err != nil || !r.Converged {
			fmt.Fprintf(out, "benchgate: REGRESSION %s: cold solve %d converged=%v err=%v\n",
				row.Name, k, r.Converged, err)
			return row, 1
		}
		row.ColdIters += r.GlobalIterations
	}
	row.WarmSavings = 1 - float64(row.WarmIters)/float64(row.ColdIters)
	fmt.Fprintf(out, "benchgate: %s  %d steps  warm %d iters  cold %d iters  saving %.0f%%\n",
		row.Name, steps, row.WarmIters, row.ColdIters, 100*row.WarmSavings)
	if row.WarmIters >= row.ColdIters {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: session spent %d iters, cold chain %d — warm start must win\n",
			row.Name, row.WarmIters, row.ColdIters)
		return row, 1
	}
	return row, 0
}

// runBatchVsSequential times one SolveBatch call with cross-system
// workers against the sequential per-system loop it replaces, seeded
// identically (BatchSeed per system), best of 3 repetitions each. The
// wall-time speedup is recorded always and enforced only on ≥4-core
// machines, where the 4 workers actually have somewhere to run.
func runBatchVsSequential(quick bool, out io.Writer) (SessionScenario, int) {
	systems := 16
	if quick {
		systems = 8
	}
	a := mats.FV(40, 40, 1.368)
	row := SessionScenario{
		Name: "batch/vs-sequential", Matrix: "fv_40x40", N: a.Rows,
		Systems: systems, Workers: 4,
	}
	opt := core.Options{
		BlockSize: 128, LocalIters: 5, MaxGlobalIters: 2000,
		Tolerance: 1e-6, Seed: 1,
	}
	plan, err := core.NewPlan(a, opt.BlockSize, false)
	if err != nil {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: plan: %v\n", row.Name, err)
		return row, 1
	}
	rhs := make([][]float64, systems)
	for j := range rhs {
		rhs[j] = make([]float64, a.Rows)
		a.MulVec(rhs[j], vecmath.Ones(a.Cols))
		for i := range rhs[j] {
			rhs[j][i] *= 1 + 0.01*float64(j)
		}
	}

	const reps = 3
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		br, err := core.SolveBatch(plan, rhs, opt, core.BatchOptions{Workers: row.Workers})
		elapsed := time.Since(start).Seconds()
		if err != nil || br.Converged != systems {
			fmt.Fprintf(out, "benchgate: REGRESSION %s: batch converged %d/%d err=%v\n",
				row.Name, br.Converged, systems, err)
			return row, 1
		}
		if rep == 0 || elapsed < row.BatchSeconds {
			row.BatchSeconds = elapsed
		}
	}
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for j := range rhs {
			o := opt
			o.Seed = core.BatchSeed(opt.Seed, j)
			r, err := core.SolveWithPlan(plan, rhs[j], o)
			if err != nil || !r.Converged {
				fmt.Fprintf(out, "benchgate: REGRESSION %s: sequential system %d converged=%v err=%v\n",
					row.Name, j, r.Converged, err)
				return row, 1
			}
		}
		elapsed := time.Since(start).Seconds()
		if rep == 0 || elapsed < row.SequentialSeconds {
			row.SequentialSeconds = elapsed
		}
	}
	if row.BatchSeconds > 0 {
		row.BatchSpeedup = row.SequentialSeconds / row.BatchSeconds
	}
	row.SpeedupGated = runtime.NumCPU() >= 4
	gateNote := "gated"
	if !row.SpeedupGated {
		gateNote = fmt.Sprintf("not gated: %d cores", runtime.NumCPU())
	}
	fmt.Fprintf(out, "benchgate: %s  %d systems  batch %.1fms  sequential %.1fms  speedup ×%.2f (%s)\n",
		row.Name, systems, 1e3*row.BatchSeconds, 1e3*row.SequentialSeconds, row.BatchSpeedup, gateNote)
	if row.SpeedupGated && row.BatchSpeedup < batchSpeedupFloor {
		fmt.Fprintf(out, "benchgate: REGRESSION %s: batch only ×%.2f over sequential (floor ×%.1f on %d cores)\n",
			row.Name, row.BatchSpeedup, batchSpeedupFloor, runtime.NumCPU())
		return row, 1
	}
	return row, 0
}

// compareSessions gates the session rows against the baseline: every
// baseline row must still run, the deterministic warm-iteration total
// gates exactly like other deterministic iteration counts, and the batch
// wall times gate with the wall-time allowance.
func compareSessions(base, current Report, lim Limits) []Problem {
	if len(base.Sessions) == 0 {
		return nil
	}
	now := make(map[string]SessionScenario, len(current.Sessions))
	for _, r := range current.Sessions {
		now[r.Name] = r
	}
	var out []Problem
	sameMode := base.Quick == current.Quick
	for _, b := range base.Sessions {
		c, ok := now[b.Name]
		if !ok {
			if sameMode {
				out = append(out, Problem{Case: b.Name, Metric: "coverage (session row missing from current run)"})
			}
			continue
		}
		if b.WarmIters > 0 && float64(c.WarmIters) > float64(b.WarmIters)*(1+lim.MaxIterRegress) {
			out = append(out, Problem{Case: b.Name, Metric: "warm_iters",
				Base: float64(b.WarmIters), Now: float64(c.WarmIters), Limit: lim.MaxIterRegress})
		}
		if sameMode && b.BatchSeconds > 0 && c.BatchSeconds > b.BatchSeconds*(1+lim.MaxTimeRegress) {
			out = append(out, Problem{Case: b.Name, Metric: "batch_seconds",
				Base: b.BatchSeconds, Now: c.BatchSeconds, Limit: lim.MaxTimeRegress})
		}
	}
	return out
}
