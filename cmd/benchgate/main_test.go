package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goodReport is a healthy snapshot; degradedReport is the same suite run
// with every gated metric pushed past its threshold. The pair drives the
// verdict assertions in both directions.
func goodReport() Report {
	return Report{
		SchemaVersion: schemaVersion,
		Date:          "2026-08-01",
		GoVersion:     "go1.24",
		Quick:         true,
		Cases: []CaseResult{
			{Name: "Trefethen_2000/simulated/k5", Matrix: "Trefethen_2000", Engine: "simulated",
				N: 2000, BlockSize: 128, LocalIters: 5, Tolerance: 1e-6, Deterministic: true,
				Iterations: 25, TimeToTolerance: 0.012, ItersPerSec: 2083, AllocBytes: 400_000, Allocs: 120},
			{Name: "Trefethen_2000/goroutine/k5", Matrix: "Trefethen_2000", Engine: "goroutine",
				N: 2000, BlockSize: 128, LocalIters: 5, Tolerance: 1e-6, Deterministic: false,
				Iterations: 25, TimeToTolerance: 0.011, ItersPerSec: 2270, AllocBytes: 500_000, Allocs: 300},
		},
	}
}

func degradedReport() Report {
	r := goodReport()
	r.Date = "2026-08-02"
	// Deterministic case: +60% iterations (limit +10%), 3x time (limit
	// +100%), 2x allocations (limit +50%).
	r.Cases[0].Iterations = 40
	r.Cases[0].TimeToTolerance = 0.040
	r.Cases[0].ItersPerSec = 1000
	r.Cases[0].AllocBytes = 900_000
	r.Cases[0].Allocs = 280
	// Non-deterministic case: within its 5x-widened iteration allowance,
	// so it must NOT be flagged for iterations.
	r.Cases[1].Iterations = 30
	return r
}

func TestCompareFlagsDegradation(t *testing.T) {
	problems := Compare(goodReport(), degradedReport(), defaultLimits())
	byMetric := map[string]bool{}
	for _, p := range problems {
		if p.Case != "Trefethen_2000/simulated/k5" {
			t.Errorf("unexpected problem on %s: %s", p.Case, p)
			continue
		}
		byMetric[p.Metric] = true
	}
	for _, want := range []string{
		"iterations", "time_to_tolerance_seconds", "alloc_bytes", "allocs", "iters_per_sec (inverse)",
	} {
		if !byMetric[want] {
			t.Errorf("degraded run: metric %q not flagged; got %v", want, problems)
		}
	}
}

// TestCompareImprovementPasses is the other direction: a run that got
// *better* than the baseline must gate clean.
func TestCompareImprovementPasses(t *testing.T) {
	if problems := Compare(degradedReport(), goodReport(), defaultLimits()); len(problems) != 0 {
		t.Errorf("improved run flagged: %v", problems)
	}
	if problems := Compare(goodReport(), goodReport(), defaultLimits()); len(problems) != 0 {
		t.Errorf("identical run flagged: %v", problems)
	}
}

func TestCompareNondetAllowance(t *testing.T) {
	base, cur := goodReport(), goodReport()
	cur.Cases[1].Iterations = 30 // +20%: over 10% but under the 5x-widened 50%
	if problems := Compare(base, cur, defaultLimits()); len(problems) != 0 {
		t.Errorf("non-deterministic +20%% iterations flagged: %v", problems)
	}
	cur.Cases[1].Iterations = 40 // +60%: past even the widened allowance
	problems := Compare(base, cur, defaultLimits())
	if len(problems) != 1 || problems[0].Metric != "iterations" {
		t.Errorf("non-deterministic +60%% iterations: got %v, want one iterations problem", problems)
	}
}

func TestCompareCoverageAndSchema(t *testing.T) {
	base, cur := goodReport(), goodReport()
	cur.Cases = cur.Cases[:1]
	problems := Compare(base, cur, defaultLimits())
	if len(problems) != 1 || !strings.Contains(problems[0].Metric, "coverage") {
		t.Errorf("dropped case: got %v, want one coverage problem", problems)
	}

	// Quick baseline vs full run: intersection only, no coverage failure.
	cur.Quick = false
	if problems := Compare(base, cur, defaultLimits()); len(problems) != 0 {
		t.Errorf("cross-mode comparison flagged missing coverage: %v", problems)
	}

	// Schema bump: nothing gates.
	cur = degradedReport()
	cur.SchemaVersion = schemaVersion + 1
	if problems := Compare(goodReport(), cur, defaultLimits()); len(problems) != 0 {
		t.Errorf("cross-schema comparison gated: %v", problems)
	}
}

// TestRunVerdicts drives run() end to end against canned BENCH files in a
// temp dir and asserts the exit code in both directions. The current
// measurements are not rerun — the canned files exercise only the
// baseline-selection and gating paths, so -baseline points the comparison
// at a degraded (FAIL) and an older healthy (PASS) snapshot. A real
// measured run is too machine-dependent to assert here; the gating logic
// is what this test owns.
func TestRunVerdicts(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r Report) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := writeReport(path, r); err != nil {
			t.Fatal(err)
		}
		return path
	}
	goodPath := write("BENCH_2026-08-01.json", goodReport())
	degradedPath := write("BENCH_2026-08-02.json", degradedReport())

	// Degraded current vs healthy baseline → regressions, exit 1.
	out := &strings.Builder{}
	if code := gate(goodPath, degradedReport(), defaultLimits(), out); code != 1 {
		t.Fatalf("degraded vs good: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "FAIL") {
		t.Errorf("degraded vs good: output lacks REGRESSION/FAIL lines:\n%s", out)
	}

	// Healthy current vs degraded baseline (an improvement) → exit 0.
	out.Reset()
	if code := gate(degradedPath, goodReport(), defaultLimits(), out); code != 0 {
		t.Fatalf("good vs degraded: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("good vs degraded: output lacks PASS line:\n%s", out)
	}
}

func TestLoadBaselinePicksNewest(t *testing.T) {
	dir := t.TempDir()
	old, recent := goodReport(), degradedReport()
	for _, f := range []struct {
		name string
		r    Report
	}{{"BENCH_2026-08-01.json", old}, {"BENCH_2026-08-02.json", recent}} {
		if err := writeReport(filepath.Join(dir, f.name), f.r); err != nil {
			t.Fatal(err)
		}
	}
	base, path, err := loadBaseline("", dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_2026-08-02.json" || base.Date != "2026-08-02" {
		t.Errorf("picked %s (date %s), want the lexically newest BENCH_2026-08-02.json", path, base.Date)
	}

	if base, _, err := loadBaseline("", t.TempDir()); err != nil || base != nil {
		t.Errorf("empty dir: base=%v err=%v, want nil/nil", base, err)
	}
}

func TestReadReportRejectsMissingSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := os.WriteFile(path, []byte(`{"date":"2026-08-01","cases":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readReport(path); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Errorf("missing schema_version accepted: err=%v", err)
	}
}

// TestCommittedBaselineLoads guards the repo's own baseline: the committed
// BENCH_*.json at the repository root must parse, carry the current schema
// version, and cover the quick suite the CI gate runs.
func TestCommittedBaselineLoads(t *testing.T) {
	base, path, err := loadBaseline("", "../..")
	if err != nil {
		t.Fatal(err)
	}
	if base == nil {
		t.Fatal("no committed BENCH_*.json baseline at the repository root")
	}
	if base.SchemaVersion != schemaVersion {
		t.Fatalf("%s: schema %d, current is %d — regenerate the baseline", path, base.SchemaVersion, schemaVersion)
	}
	have := base.byName()
	for _, c := range suite(true) {
		if _, ok := have[c.Name]; !ok {
			t.Errorf("%s: quick-suite case %q missing — regenerate the baseline", path, c.Name)
		}
	}
}
