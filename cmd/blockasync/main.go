// Command blockasync solves a linear system with the block-asynchronous
// relaxation method or one of the paper's baselines, printing convergence
// progress and (for GPU methods) the modeled hardware time.
//
// Usage:
//
//	blockasync [-matrix name | -mm file.mtx] [-method m] [flags]
//
// Methods: async (default), richardson2 (async with second-order momentum,
// see -beta), multigrid (async-smoothed V-cycles; five-point Poisson
// operators only), jacobi, scaled-jacobi, gauss-seidel, sor, cg, freerun.
// The right-hand side is b = A·1 (exact solution: ones), the paper's
// convention.
//
// With -devices N (async only) the solve runs on the live multi-device
// executor: one shard per GPU of the modeled topology, exchanging boundary
// components via the -strategy scheme (amc, dc or dk), with the modeled
// multi-GPU wall time reported alongside the convergence result.
//
// Mutually inconsistent flag combinations are rejected up front rather
// than silently ignored: -tune computes block size, local sweeps and ω
// itself, so combining it with explicit -block/-local/-omega (or with a
// non-async -method, or -devices) is an error, as are -matrix together
// with -mm, -strategy without -devices, and -devices with -goroutines.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/mats"
	"repro/internal/multigpu"
	"repro/internal/multigrid"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/spectral"
	"repro/internal/tune"
	"repro/internal/vecmath"
)

// config is the parsed command line. set records which flags the user
// passed explicitly, so defaults can be distinguished from choices (the
// default -omega 1.5 is for SOR and must not leak into async, where ω=1 is
// the paper's baseline unless the user asks otherwise).
type config struct {
	matrix, mmfile, method string
	block, local, iters    int
	tol, omega, beta       float64
	seed                   int64
	gor, history, tuned    bool
	devices                int
	strategy               string
	kernel, precision      string
	set                    map[string]bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.matrix, "matrix", "Trefethen_2000", "generated test matrix name")
	flag.StringVar(&cfg.mmfile, "mm", "", "read the system matrix from a Matrix Market file instead")
	flag.StringVar(&cfg.method, "method", "async", "solver: async | richardson2 | multigrid | jacobi | scaled-jacobi | gauss-seidel | sor | cg | freerun")
	flag.IntVar(&cfg.block, "block", 448, "block (subdomain) size for async methods")
	flag.IntVar(&cfg.local, "local", 5, "local Jacobi sweeps per block (k in async-(k))")
	flag.IntVar(&cfg.iters, "iters", 1000, "maximum (global) iterations")
	flag.Float64Var(&cfg.tol, "tol", 1e-10, "absolute l2 residual tolerance")
	flag.Float64Var(&cfg.omega, "omega", 1.5, "relaxation factor (sor; async methods when set explicitly)")
	flag.Float64Var(&cfg.beta, "beta", 0.3, "momentum coefficient β in [0,1) (method richardson2)")
	flag.Int64Var(&cfg.seed, "seed", 1, "chaos seed for the async engines")
	flag.BoolVar(&cfg.gor, "goroutines", false, "use the truly asynchronous goroutine engine")
	flag.BoolVar(&cfg.history, "history", false, "print the residual after every iteration")
	flag.BoolVar(&cfg.tuned, "tune", false, "auto-tune block size, local sweeps and ω before solving (async only)")
	flag.IntVar(&cfg.devices, "devices", 0, "run on the live multi-GPU executor with this many devices (async only)")
	flag.StringVar(&cfg.strategy, "strategy", "amc", "inter-GPU communication strategy: amc | dc | dk (requires -devices)")
	flag.StringVar(&cfg.kernel, "kernel", "auto", "sweep-kernel dispatch: auto | csr | stencil | sell (async and freerun)")
	flag.StringVar(&cfg.precision, "precision", "f64", "iterate storage precision: f64 | f32 (async and freerun)")
	flag.Parse()

	cfg.set = make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { cfg.set[f.Name] = true })

	if err := cfg.check(); err != nil {
		fmt.Fprintln(os.Stderr, "blockasync:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "blockasync:", err)
		os.Exit(1)
	}
}

// check rejects flag combinations where one flag would silently override
// or ignore another.
func (c config) check() error {
	isSet := func(name string) bool { return c.set[name] }
	async := c.method == "async" || c.method == "richardson2"
	mgrid := c.method == "multigrid"
	switch {
	case isSet("matrix") && isSet("mm"):
		return errors.New("-matrix and -mm both select the system; pass exactly one")
	case c.tuned && !async && !mgrid:
		return fmt.Errorf("-tune only applies to -method async, richardson2 or multigrid, have %q", c.method)
	case c.tuned && (isSet("block") || isSet("local") || isSet("omega")):
		return errors.New("-tune computes block size, local sweeps and ω itself; drop the explicit -block/-local/-omega overrides")
	case c.tuned && c.devices > 0:
		return errors.New("-tune searches the single-device engines; it cannot be combined with -devices")
	case c.devices < 0:
		return fmt.Errorf("-devices must be nonnegative, have %d", c.devices)
	case c.devices > 0 && !async:
		return fmt.Errorf("-devices only applies to -method async or richardson2, have %q", c.method)
	case c.devices > 0 && c.gor:
		return errors.New("-devices runs on the sharded executor; it cannot be combined with -goroutines")
	case isSet("strategy") && c.devices == 0:
		return errors.New("-strategy requires -devices")
	case isSet("omega") && !async && !mgrid && c.method != "sor":
		return fmt.Errorf("-omega only applies to the async methods or sor, have %q", c.method)
	case isSet("beta") && c.method != "richardson2":
		return fmt.Errorf("-beta only applies to -method richardson2, have %q", c.method)
	case c.beta < 0 || c.beta >= 1:
		return fmt.Errorf("-beta must lie in [0,1), have %g", c.beta)
	case isSet("goroutines") && !async:
		return fmt.Errorf("-goroutines only applies to -method async or richardson2, have %q", c.method)
	case isSet("kernel") && !async && c.method != "freerun":
		return fmt.Errorf("-kernel only applies to -method async, richardson2 or freerun, have %q", c.method)
	case isSet("precision") && !async && c.method != "freerun":
		return fmt.Errorf("-precision only applies to -method async, richardson2 or freerun, have %q", c.method)
	}
	if _, err := core.ParseKernel(c.kernel); err != nil {
		return err
	}
	switch c.precision {
	case "", core.PrecF64, core.PrecF32:
	default:
		return fmt.Errorf("unknown precision %q (want f64 or f32)", c.precision)
	}
	if c.devices > 0 {
		if _, err := parseStrategy(c.strategy); err != nil {
			return err
		}
	}
	return nil
}

func parseStrategy(s string) (multigpu.Strategy, error) {
	switch strings.ToLower(s) {
	case "", "amc":
		return multigpu.AMC, nil
	case "dc":
		return multigpu.DC, nil
	case "dk":
		return multigpu.DK, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want amc, dc or dk)", s)
	}
}

func run(c config) error {
	var a *sparse.CSR
	name := c.matrix
	if c.mmfile != "" {
		f, err := os.Open(c.mmfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if a, err = sparse.ReadMatrixMarket(f); err != nil {
			return err
		}
		name = c.mmfile
	} else {
		tm, err := experiments.Matrix(c.matrix)
		if err != nil {
			return err
		}
		a = tm.A
	}
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	fmt.Printf("system: %s  n=%d  nnz=%d  method=%s\n", name, a.Rows, a.NNZ(), c.method)

	printHistory := func(h []float64) {
		if !c.history {
			return
		}
		for i, r := range h {
			fmt.Printf("  iter %4d  residual %.6e\n", i+1, r)
		}
	}
	model := gpusim.CalibratedModel()

	switch c.method {
	case "async", "richardson2":
		var asyncOmega float64
		if c.set["omega"] {
			asyncOmega = c.omega
		}
		method, beta := core.RuleJacobi, 0.0
		if c.method == "richardson2" {
			method, beta = core.RuleRichardson2, c.beta
		}
		if c.tuned {
			tr, err := tune.Tune(a, b, tune.Config{Seed: c.seed})
			if err != nil {
				return fmt.Errorf("auto-tune: %w", err)
			}
			c.block, c.local, asyncOmega = tr.BlockSize, tr.LocalIters, tr.Omega
			if c.method == "async" {
				// -method async lets the tuner's method stage pick the rule;
				// -method richardson2 pins it (with the -beta coefficient).
				method, beta = tr.Method, tr.Beta
			}
			fmt.Printf("tuned: block=%d local=%d omega=%.3f method=%s beta=%.2f  (rate %.4f/iter, modeled %.5f s/digit, %d probe solves)\n",
				c.block, c.local, asyncOmega, method, beta, tr.Rate, tr.SecondsPerDigit, tr.ProbeSolves)
		}
		opt := core.Options{
			BlockSize: c.block, LocalIters: c.local, Omega: asyncOmega, Precision: c.precision,
			Method: method, Beta: beta,
			MaxGlobalIters: c.iters, Tolerance: c.tol, RecordHistory: c.history, Seed: c.seed,
		}
		plan, err := buildPlan(a, c.block, c.kernel)
		if err != nil {
			return err
		}
		if c.devices > 0 {
			strat, err := parseStrategy(c.strategy)
			if err != nil {
				return err
			}
			res, err := multigpu.SolveWithPlan(plan, b, opt, model, multigpu.Supermicro(), strat, c.devices)
			if err != nil && !errors.Is(err, core.ErrDiverged) {
				return err
			}
			printHistory(res.History)
			report(res.Converged, res.GlobalIterations, res.Residual, err)
			fmt.Printf("modeled GPU time: %.4f s (%.6f s/iter, %d devices, %s, %d blocks)\n",
				res.ModeledSeconds, res.PerIterSeconds, res.NumGPUs, res.Strategy, res.NumBlocks)
			ex := res.Exchanges
			fmt.Printf("exchanges: %d uploads (%d B), %d downloads (%d B), %d remote loads (%d B)\n",
				ex.Uploads, ex.BytesUp, ex.Downloads, ex.BytesDown, ex.RemoteLoads, ex.RemoteBytes)
			return nil
		}
		if c.gor {
			opt.Engine = core.EngineGoroutine
		}
		res, err := core.SolveWithPlan(plan, b, opt)
		if err != nil && !errors.Is(err, core.ErrDiverged) {
			return err
		}
		printHistory(res.History)
		modelT := model.AsyncIterTime(a.Rows, a.NNZ(), c.local) * float64(res.GlobalIterations)
		report(res.Converged, res.GlobalIterations, res.Residual, err)
		fmt.Printf("modeled GPU time: %.4f s (%d blocks, engine %s)\n", modelT, res.NumBlocks, opt.Engine)

	case "freerun":
		plan, err := buildPlan(a, c.block, c.kernel)
		if err != nil {
			return err
		}
		res, err := core.SolveFreeRunningWithPlan(plan, b, core.FreeRunningOptions{
			BlockSize: c.block, LocalIters: c.local, Precision: c.precision,
			MaxBlockUpdates: int64(c.iters) * int64((a.Rows+c.block-1)/c.block),
			Tolerance:       c.tol,
		})
		if err != nil && !errors.Is(err, core.ErrDiverged) {
			return err
		}
		report(res.Converged, int(res.EquivalentGlobalIters), res.Residual, err)
		fmt.Printf("block updates: %d\n", res.BlockUpdates)

	case "multigrid":
		w := int(math.Round(math.Sqrt(float64(a.Rows))))
		if w*w != a.Rows || w < 5 || w%2 == 0 {
			return fmt.Errorf("-method multigrid needs an odd square grid (n = W×W, odd W ≥ 5), have n=%d", a.Rows)
		}
		if !sameCSR(a, mats.Poisson2D(w, w)) {
			return fmt.Errorf("-method multigrid supports the five-point Poisson operator on the %dx%d grid; the selected matrix differs", w, w)
		}
		var sm *multigrid.AsyncSmoother
		if c.tuned {
			tuned, tr, err := multigrid.TunedAsyncSmoother(a, b, 2, tune.Config{Seed: c.seed})
			if err != nil {
				return fmt.Errorf("auto-tune: %w", err)
			}
			sm = tuned
			fmt.Printf("tuned smoother: block=%d local=%d omega=%.3f method=%s beta=%.2f  (%d probe solves)\n",
				sm.BlockSize, sm.LocalIters, sm.Omega, sm.Method, sm.Beta, tr.ProbeSolves)
		} else {
			var asyncOmega float64
			if c.set["omega"] {
				asyncOmega = c.omega
			}
			sm = &multigrid.AsyncSmoother{BlockSize: c.block, LocalIters: c.local, GlobalIters: 2, Omega: asyncOmega}
		}
		mg, err := multigrid.New(multigrid.Options{Width: w, Height: w, Smoother: sm})
		if err != nil {
			return err
		}
		fmt.Printf("hierarchy: %d levels, smoother %s\n", mg.NumLevels(), mg.SmootherName())
		res, err := mg.Solve(b, c.tol, c.iters)
		if err != nil && !errors.Is(err, multigrid.ErrDiverged) {
			return err
		}
		printHistory(res.History)
		report(res.Converged, res.Cycles, res.Residual, err)

	case "jacobi", "gauss-seidel", "sor", "cg", "scaled-jacobi":
		opt := solver.Options{MaxIterations: c.iters, Tolerance: c.tol, RecordHistory: c.history}
		var res solver.Result
		var err error
		switch c.method {
		case "jacobi":
			res, err = solver.Jacobi(a, b, opt)
		case "gauss-seidel":
			res, err = solver.GaussSeidel(a, b, opt)
		case "sor":
			res, err = solver.SOR(a, b, c.omega, opt)
		case "cg":
			res, err = solver.CG(a, b, opt)
		case "scaled-jacobi":
			tau, terr := spectral.TauScaling(a, 200, c.seed)
			if terr != nil {
				return terr
			}
			fmt.Printf("tau = %.6f\n", tau)
			res, err = solver.ScaledJacobi(a, b, tau, opt)
		}
		if err != nil && !errors.Is(err, solver.ErrDiverged) {
			return err
		}
		printHistory(res.History)
		report(res.Converged, res.Iterations, res.Residual, err)
		if c.method == "gauss-seidel" {
			fmt.Printf("modeled CPU time: %.4f s\n",
				model.GaussSeidelIterTime(a.Rows, a.NNZ())*float64(res.Iterations))
		}

	default:
		return fmt.Errorf("unknown method %q", c.method)
	}
	return nil
}

// buildPlan resolves the -kernel dispatch into a solve plan and prints
// what it resolved to (under auto, the detector's decision).
func buildPlan(a *sparse.CSR, block int, kernel string) (*core.Plan, error) {
	kk, err := core.ParseKernel(kernel)
	if err != nil {
		return nil, err
	}
	p, err := core.NewPlanWithConfig(a, block, false, core.PlanConfig{Kernel: kk})
	if err != nil {
		return nil, err
	}
	switch p.Kernel() {
	case core.KernelStencil:
		si := p.StencilInfo()
		fmt.Printf("kernel: stencil (%d-point, offsets %v, %d interior / %d boundary rows)\n",
			len(si.Spec.Offsets), si.Spec.Offsets, si.InteriorRows, si.BoundaryRows)
	case core.KernelSELL:
		fmt.Printf("kernel: sell (slot ratio %.3f)\n", p.SELLSlotRatio())
	default:
		fmt.Println("kernel: csr")
	}
	return p, nil
}

// sameCSR reports structural and numerical equality of two CSR matrices —
// the multigrid admission check (the hierarchy rediscretizes the Poisson
// family, so the finest operator must actually be that operator).
func sameCSR(a, b *sparse.CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.Val {
		if a.ColIdx[i] != b.ColIdx[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

func report(converged bool, iters int, residual float64, err error) {
	switch {
	case converged:
		fmt.Printf("converged in %d iterations, residual %.6e\n", iters, residual)
	case err != nil:
		fmt.Printf("DIVERGED after %d iterations (%v)\n", iters, err)
	default:
		fmt.Printf("not converged after %d iterations, residual %.6e\n", iters, residual)
	}
}
