// Command blockasync solves a linear system with the block-asynchronous
// relaxation method or one of the paper's baselines, printing convergence
// progress and (for GPU methods) the modeled hardware time.
//
// Usage:
//
//	blockasync [-matrix name | -mm file.mtx] [-method m] [flags]
//
// Methods: async (default), jacobi, scaled-jacobi, gauss-seidel, sor, cg,
// freerun. The right-hand side is b = A·1 (exact solution: ones), the
// paper's convention.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/spectral"
	"repro/internal/tune"
	"repro/internal/vecmath"
)

func main() {
	var (
		matrix  = flag.String("matrix", "Trefethen_2000", "generated test matrix name")
		mmfile  = flag.String("mm", "", "read the system matrix from a Matrix Market file instead")
		method  = flag.String("method", "async", "solver: async | jacobi | scaled-jacobi | gauss-seidel | sor | cg | freerun")
		block   = flag.Int("block", 448, "block (subdomain) size for async methods")
		local   = flag.Int("local", 5, "local Jacobi sweeps per block (k in async-(k))")
		iters   = flag.Int("iters", 1000, "maximum (global) iterations")
		tol     = flag.Float64("tol", 1e-10, "absolute l2 residual tolerance")
		omega   = flag.Float64("omega", 1.5, "SOR relaxation factor")
		seed    = flag.Int64("seed", 1, "chaos seed for the async engines")
		gor     = flag.Bool("goroutines", false, "use the truly asynchronous goroutine engine")
		history = flag.Bool("history", false, "print the residual after every iteration")
		tuned   = flag.Bool("tune", false, "auto-tune block size, local sweeps and ω before solving (async only)")
	)
	flag.Parse()

	if err := run(*matrix, *mmfile, *method, *block, *local, *iters, *tol, *omega, *seed, *gor, *history, *tuned); err != nil {
		fmt.Fprintln(os.Stderr, "blockasync:", err)
		os.Exit(1)
	}
}

func run(matrix, mmfile, method string, block, local, iters int,
	tol, omega float64, seed int64, gor, history, tuned bool) error {

	var a *sparse.CSR
	name := matrix
	if mmfile != "" {
		f, err := os.Open(mmfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if a, err = sparse.ReadMatrixMarket(f); err != nil {
			return err
		}
		name = mmfile
	} else {
		tm, err := experiments.Matrix(matrix)
		if err != nil {
			return err
		}
		a = tm.A
	}
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	fmt.Printf("system: %s  n=%d  nnz=%d  method=%s\n", name, a.Rows, a.NNZ(), method)

	printHistory := func(h []float64) {
		if !history {
			return
		}
		for i, r := range h {
			fmt.Printf("  iter %4d  residual %.6e\n", i+1, r)
		}
	}
	model := gpusim.CalibratedModel()

	switch method {
	case "async":
		var tuneOmega float64
		if tuned {
			tr, err := tune.Tune(a, b, tune.Config{Seed: seed})
			if err != nil {
				return fmt.Errorf("auto-tune: %w", err)
			}
			block, local, tuneOmega = tr.BlockSize, tr.LocalIters, tr.Omega
			fmt.Printf("tuned: block=%d local=%d omega=%.3f  (rate %.4f/iter, modeled %.5f s/digit, %d probe solves)\n",
				block, local, tuneOmega, tr.Rate, tr.SecondsPerDigit, tr.ProbeSolves)
		}
		opt := core.Options{
			BlockSize: block, LocalIters: local, Omega: tuneOmega,
			MaxGlobalIters: iters, Tolerance: tol, RecordHistory: history, Seed: seed,
		}
		if gor {
			opt.Engine = core.EngineGoroutine
		}
		res, err := core.Solve(a, b, opt)
		if err != nil && !errors.Is(err, core.ErrDiverged) {
			return err
		}
		printHistory(res.History)
		modelT := model.AsyncIterTime(a.Rows, a.NNZ(), local) * float64(res.GlobalIterations)
		report(res.Converged, res.GlobalIterations, res.Residual, err)
		fmt.Printf("modeled GPU time: %.4f s (%d blocks, engine %s)\n", modelT, res.NumBlocks, opt.Engine)

	case "freerun":
		res, err := core.SolveFreeRunning(a, b, core.FreeRunningOptions{
			BlockSize: block, LocalIters: local,
			MaxBlockUpdates: int64(iters) * int64((a.Rows+block-1)/block),
			Tolerance:       tol,
		})
		if err != nil && !errors.Is(err, core.ErrDiverged) {
			return err
		}
		report(res.Converged, int(res.EquivalentGlobalIters), res.Residual, err)
		fmt.Printf("block updates: %d\n", res.BlockUpdates)

	case "jacobi", "gauss-seidel", "sor", "cg", "scaled-jacobi":
		opt := solver.Options{MaxIterations: iters, Tolerance: tol, RecordHistory: history}
		var res solver.Result
		var err error
		switch method {
		case "jacobi":
			res, err = solver.Jacobi(a, b, opt)
		case "gauss-seidel":
			res, err = solver.GaussSeidel(a, b, opt)
		case "sor":
			res, err = solver.SOR(a, b, omega, opt)
		case "cg":
			res, err = solver.CG(a, b, opt)
		case "scaled-jacobi":
			tau, terr := spectral.TauScaling(a, 200, seed)
			if terr != nil {
				return terr
			}
			fmt.Printf("tau = %.6f\n", tau)
			res, err = solver.ScaledJacobi(a, b, tau, opt)
		}
		if err != nil && !errors.Is(err, solver.ErrDiverged) {
			return err
		}
		printHistory(res.History)
		report(res.Converged, res.Iterations, res.Residual, err)
		if method == "gauss-seidel" {
			fmt.Printf("modeled CPU time: %.4f s\n",
				model.GaussSeidelIterTime(a.Rows, a.NNZ())*float64(res.Iterations))
		}

	default:
		return fmt.Errorf("unknown method %q", method)
	}
	return nil
}

func report(converged bool, iters int, residual float64, err error) {
	switch {
	case converged:
		fmt.Printf("converged in %d iterations, residual %.6e\n", iters, residual)
	case err != nil:
		fmt.Printf("DIVERGED after %d iterations (%v)\n", iters, err)
	default:
		fmt.Printf("not converged after %d iterations, residual %.6e\n", iters, residual)
	}
}
