package main

import (
	"os"
	"path/filepath"
	"testing"
)

// base returns the flag defaults, overridable per test; set marks flags as
// explicitly passed for the consistency checks.
func base(set ...string) config {
	c := config{
		matrix: "Trefethen_2000", method: "async",
		block: 448, local: 5, iters: 1000,
		tol: 1e-10, omega: 1.5, seed: 1, strategy: "amc",
		set: make(map[string]bool),
	}
	for _, s := range set {
		c.set[s] = true
	}
	return c
}

func TestRunAsync(t *testing.T) {
	c := base()
	c.block, c.iters, c.tol = 448, 100, 1e-8
	if err := run(c); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaselines(t *testing.T) {
	for _, m := range []string{"jacobi", "gauss-seidel", "sor", "cg", "scaled-jacobi", "freerun"} {
		c := base()
		c.method, c.block, c.local, c.iters, c.tol, c.omega = m, 128, 2, 200, 1e-6, 1.2
		if err := run(c); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestRunUnknownMethod(t *testing.T) {
	c := base()
	c.method = "nope"
	if err := run(c); err == nil {
		t.Error("expected error for unknown method")
	}
}

func TestRunMatrixMarketInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	content := "%%MatrixMarket matrix coordinate real symmetric\n3 3 5\n1 1 4.0\n2 2 4.0\n3 3 4.0\n2 1 -1.0\n3 2 -1.0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	c := base()
	c.matrix, c.mmfile, c.block, c.local, c.iters, c.history = "", path, 2, 2, 200, true
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	c.mmfile, c.history = filepath.Join(dir, "missing.mtx"), false
	c.iters = 10
	if err := run(c); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestRunGoroutineEngine(t *testing.T) {
	c := base()
	c.block, c.local, c.iters, c.tol, c.seed, c.gor = 256, 3, 100, 1e-8, 2, true
	if err := run(c); err != nil {
		t.Fatal(err)
	}
}

func TestRunAutoTuned(t *testing.T) {
	// -tune overrides block/local/ω with the search result before solving.
	c := base()
	c.iters, c.tol, c.tuned = 100, 1e-8, true
	if err := run(c); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiDevice(t *testing.T) {
	for _, tc := range []struct {
		devices  int
		strategy string
	}{
		{1, "amc"}, {2, "amc"}, {3, "amc"}, {2, "dk"},
	} {
		c := base()
		c.block, c.local, c.iters, c.tol = 128, 3, 200, 1e-8
		c.devices, c.strategy = tc.devices, tc.strategy
		if err := run(c); err != nil {
			t.Fatalf("devices=%d strategy=%s: %v", tc.devices, tc.strategy, err)
		}
	}
}

func TestRunMultiDeviceUnsupported(t *testing.T) {
	c := base()
	c.iters, c.devices, c.strategy = 10, 3, "dc"
	if err := run(c); err == nil {
		t.Error("expected ErrUnsupported for DC with 3 devices")
	}
}

func TestCheckRejectsInconsistentFlags(t *testing.T) {
	cases := []struct {
		name string
		cfg  config
	}{
		{"matrix and mm", func() config { c := base("matrix", "mm"); c.mmfile = "x.mtx"; return c }()},
		{"tune with block", func() config { c := base("block"); c.tuned = true; return c }()},
		{"tune with local", func() config { c := base("local"); c.tuned = true; return c }()},
		{"tune with omega", func() config { c := base("omega"); c.tuned = true; return c }()},
		{"tune with non-async", func() config { c := base(); c.tuned = true; c.method = "jacobi"; return c }()},
		{"tune with devices", func() config { c := base(); c.tuned = true; c.devices = 2; return c }()},
		{"negative devices", func() config { c := base(); c.devices = -1; return c }()},
		{"devices with non-async", func() config { c := base(); c.devices = 2; c.method = "cg"; return c }()},
		{"devices with goroutines", func() config { c := base(); c.devices = 2; c.gor = true; return c }()},
		{"strategy without devices", base("strategy")},
		{"unknown strategy", func() config { c := base(); c.devices = 2; c.strategy = "nvlink"; return c }()},
		{"omega with jacobi", func() config { c := base("omega"); c.method = "jacobi"; return c }()},
		{"goroutines with cg", func() config { c := base("goroutines"); c.method = "cg"; c.gor = true; return c }()},
	}
	for _, tc := range cases {
		if err := tc.cfg.check(); err == nil {
			t.Errorf("%s: expected a consistency error", tc.name)
		}
	}

	// The valid shapes must pass.
	for _, ok := range []config{
		base(),
		base("omega"), // explicit ω for async is the satellite fix
		func() config { c := base(); c.tuned = true; return c }(),
		func() config { c := base("strategy"); c.devices = 2; return c }(),
		func() config { c := base("omega"); c.method = "sor"; return c }(),
	} {
		if err := ok.check(); err != nil {
			t.Errorf("valid config rejected: %v", err)
		}
	}
}

// TestExplicitOmegaReachesAsync pins the satellite fix: an explicitly set
// -omega must flow into the async solve instead of being silently dropped
// (while the unset default 1.5 must NOT leak in — async defaults to ω=1).
func TestExplicitOmegaReachesAsync(t *testing.T) {
	c := base("omega")
	c.block, c.local, c.iters, c.tol, c.omega = 448, 5, 100, 1e-8, 1.2
	if err := run(c); err != nil {
		t.Fatal(err)
	}
}
