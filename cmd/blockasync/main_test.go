package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAsync(t *testing.T) {
	if err := run("Trefethen_2000", "", "async", 448, 5, 100, 1e-8, 1.5, 1, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaselines(t *testing.T) {
	for _, m := range []string{"jacobi", "gauss-seidel", "sor", "cg", "scaled-jacobi", "freerun"} {
		if err := run("Trefethen_2000", "", m, 128, 2, 200, 1e-6, 1.2, 1, false, false, false); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestRunUnknownMethod(t *testing.T) {
	if err := run("Trefethen_2000", "", "nope", 128, 1, 1, 1e-6, 1.5, 1, false, false, false); err == nil {
		t.Error("expected error for unknown method")
	}
}

func TestRunMatrixMarketInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	content := "%%MatrixMarket matrix coordinate real symmetric\n3 3 5\n1 1 4.0\n2 2 4.0\n3 3 4.0\n2 1 -1.0\n3 2 -1.0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, "async", 2, 2, 200, 1e-10, 1.5, 1, false, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run("", filepath.Join(dir, "missing.mtx"), "async", 2, 2, 10, 1e-10, 1.5, 1, false, false, false); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestRunGoroutineEngine(t *testing.T) {
	if err := run("Trefethen_2000", "", "async", 256, 3, 100, 1e-8, 1.5, 2, true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunAutoTuned(t *testing.T) {
	// -tune overrides block/local/ω with the search result before solving.
	if err := run("Trefethen_2000", "", "async", 448, 5, 100, 1e-8, 1.0, 1, false, false, true); err != nil {
		t.Fatal(err)
	}
}
