// Command matgen writes the generated test systems to disk so they can be
// used outside this repository: Matrix Market files for the matrices
// (optionally RCM-reordered), the b = A·1 right-hand sides, and PGM
// sparsity images (the file analog of Figure 1).
//
// Usage:
//
//	matgen -out DIR [-matrix name] [-rcm] [-pgm] [-short]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/mats"
	"repro/internal/sparse"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	matrix := flag.String("matrix", "", "single matrix name (default: all)")
	rcm := flag.Bool("rcm", false, "also write the RCM-reordered variant")
	pgm := flag.Bool("pgm", false, "also write a PGM sparsity image")
	short := flag.Bool("short", false, "skip Trefethen_20000")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "matgen: -out is required")
		os.Exit(2)
	}
	if err := run(*out, *matrix, *rcm, *pgm, *short); err != nil {
		fmt.Fprintln(os.Stderr, "matgen:", err)
		os.Exit(1)
	}
}

func run(outDir, matrix string, rcm, pgm, short bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	names := mats.Names
	if matrix != "" {
		names = []string{matrix}
	}
	for _, name := range names {
		if short && name == "Trefethen_20000" {
			continue
		}
		tm, err := experiments.Matrix(name)
		if err != nil {
			return err
		}
		if err := writeSystem(outDir, name, tm.A, pgm); err != nil {
			return err
		}
		if rcm {
			perm, err := sparse.RCM(tm.A)
			if err != nil {
				return err
			}
			p, err := sparse.PermuteSym(tm.A, perm)
			if err != nil {
				return err
			}
			if err := writeSystem(outDir, name+"_rcm", p, pgm); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %s (n=%d, nnz=%d)\n", name, tm.A.Rows, tm.A.NNZ())
	}
	return nil
}

// writeSystem writes NAME.mtx, NAME_rhs.mtx and optionally NAME.pgm.
func writeSystem(dir, name string, a *sparse.CSR, pgm bool) error {
	mf, err := os.Create(filepath.Join(dir, name+".mtx"))
	if err != nil {
		return err
	}
	defer mf.Close()
	if err := sparse.WriteMatrixMarket(mf, a); err != nil {
		return err
	}

	// Right-hand side b = A·1 as an n×1 coordinate matrix.
	b := experiments.OnesRHS(a)
	rhs := sparse.NewCOO(a.Rows, 1)
	for i, v := range b {
		if v != 0 {
			rhs.Add(i, 0, v)
		}
	}
	rf, err := os.Create(filepath.Join(dir, name+"_rhs.mtx"))
	if err != nil {
		return err
	}
	defer rf.Close()
	if err := sparse.WriteMatrixMarket(rf, rhs.ToCSR()); err != nil {
		return err
	}

	if pgm {
		pf, err := os.Create(filepath.Join(dir, name+".pgm"))
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := sparse.SpyPGM(pf, a, 256, 256); err != nil {
			return err
		}
	}
	return nil
}
