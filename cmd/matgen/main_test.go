package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sparse"
)

func TestRunWritesReadableFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "Trefethen_2000", true, true, false); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"Trefethen_2000.mtx", "Trefethen_2000_rhs.mtx", "Trefethen_2000.pgm",
		"Trefethen_2000_rcm.mtx", "Trefethen_2000_rcm_rhs.mtx", "Trefethen_2000_rcm.pgm",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}
	// Round trip: read the matrix back and check basic identity.
	mf, err := os.Open(filepath.Join(dir, "Trefethen_2000.mtx"))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	a, err := sparse.ReadMatrixMarket(mf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 2000 || a.NNZ() != 41906 {
		t.Errorf("round trip: n=%d nnz=%d", a.Rows, a.NNZ())
	}
}

func TestRunUnknownMatrix(t *testing.T) {
	if err := run(t.TempDir(), "bogus", false, false, false); err == nil {
		t.Error("expected error")
	}
}
