// Command loadgen drives an open-loop load run against a fleet gateway
// (or a single solverd node): arrivals are generated on a fixed clock at
// -rate and never wait for completions — the regime of very many
// uncoordinated clients — with matrix popularity following a Zipf
// distribution over a generated corpus, so a few hot matrices dominate
// and exercise the fleet's cache affinity while a long tail churns it.
//
// The request mix is controlled by -blend
// solve:tune:devices[:doomed[:session[:batch]]] weights. "Doomed"
// submissions post certified-divergent matrices with "certify": "enforce"
// — the fleet must answer each with a fast 422 carrying the certificate.
// "Session" arrivals create a solve session, drive -session-steps
// warm-started steps through its sticky owner and close it; a 410
// "session-lost" answer is counted, not errored (it is the honest
// response across node churn). "Batch" arrivals pack -batch-systems
// right-hand sides into one submission occupying one queue slot. Each
// accepted job is polled to a terminal state; the run reports
// accepted/shed/error counts, p50/p99/p999 submit and end-to-end
// latencies, 422 rejection latencies, session step latencies,
// completed-jobs-per-second throughput, per-node routing counts and
// cache-affinity violations, as JSON on stdout (or -out).
//
// With -strict the exit code is nonzero if any request failed with a
// status other than 202/429 (or 422 for doomed submissions, 410 for
// session traffic), any accepted job failed, any doomed submission was
// silently admitted, or doomed rejections were slower than 2s at p99 —
// the CI smoke gate's contract: under overload and node churn the fleet
// may shed, but it must not error, and certified-divergent work must be
// refused in milliseconds, never burned. -fail-on-session-lost
// additionally gates sessions_lost to zero — the assertion for a no-kill
// phase, where a lost session means the fleet dropped state without any
// node dying.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:9090 -rate 200 -duration 10s \
//	        -corpus 64 -zipf 1.1 -blend 8:1:1:2:2:1 -strict
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func parseBlend(s string) (fleet.Blend, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 6 {
		return fleet.Blend{}, fmt.Errorf("want solve:tune:devices[:doomed[:session[:batch]]], have %q", s)
	}
	vals := make([]float64, 6)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return fleet.Blend{}, fmt.Errorf("blend weight %q invalid", p)
		}
		vals[i] = v
	}
	return fleet.Blend{
		Solve: vals[0], Tune: vals[1], Devices: vals[2],
		Doomed: vals[3], Session: vals[4], Batch: vals[5],
	}, nil
}

func main() {
	var (
		target     = flag.String("target", "http://127.0.0.1:9090", "gateway or solverd base URL")
		rate       = flag.Float64("rate", 50, "open-loop arrival rate (requests/second)")
		duration   = flag.Duration("duration", 5*time.Second, "arrival window")
		corpusSize = flag.Int("corpus", 32, "generated corpus size (distinct matrices)")
		minN       = flag.Int("min-n", 64, "smallest corpus matrix dimension")
		maxN       = flag.Int("max-n", 256, "largest corpus matrix dimension")
		zipfS      = flag.Float64("zipf", 1.1, "Zipf popularity exponent over the corpus")
		blendStr   = flag.String("blend", "1:0:0", "request mix as solve:tune:devices[:doomed[:session[:batch]]] weights")
		seed       = flag.Int64("seed", 1, "arrival-sequence seed")
		blockSize  = flag.Int("block-size", 64, "solver block size per submission")
		localIters = flag.Int("local-iters", 4, "local sweeps per submission")
		maxIters   = flag.Int("max-iters", 1000, "global iteration budget per submission")
		tolerance  = flag.Float64("tolerance", 1e-6, "convergence tolerance per submission")
		sessSteps  = flag.Int("session-steps", 3, "warm-started steps per session blend arrival")
		batchSys   = flag.Int("batch-systems", 4, "right-hand sides per batch blend arrival")
		out        = flag.String("out", "", "write the JSON report here instead of stdout")
		scrape     = flag.Bool("scrape", true, "attach the target's /metricsz snapshot to the report")
		strict     = flag.Bool("strict", false, "exit nonzero on any error (non-202/429 response or failed job)")
		failOnLost = flag.Bool("fail-on-session-lost", false, "exit nonzero if any session was lost (no-kill phase assertion)")
	)
	flag.Parse()

	blend, err := parseBlend(*blendStr)
	if err != nil {
		log.Fatalf("loadgen: -blend: %v", err)
	}

	log.Printf("loadgen: building corpus (%d matrices, n in [%d, %d])", *corpusSize, *minN, *maxN)
	corpus := fleet.BuildCorpus(*corpusSize, *minN, *maxN)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("loadgen: %s for %s at %.0f req/s (zipf %.2f, blend %s)",
		*target, *duration, *rate, *zipfS, *blendStr)
	rep, err := fleet.RunLoad(ctx, fleet.LoadConfig{
		BaseURL:        strings.TrimRight(*target, "/"),
		Rate:           *rate,
		Duration:       *duration,
		Corpus:         corpus,
		ZipfS:          *zipfS,
		Blend:          blend,
		Seed:           *seed,
		BlockSize:      *blockSize,
		LocalIters:     *localIters,
		MaxGlobalIters: *maxIters,
		Tolerance:      *tolerance,
		SessionSteps:   *sessSteps,
		BatchSystems:   *batchSys,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if *scrape {
		if m, err := fleet.ScrapeMetrics(nil, strings.TrimRight(*target, "/")+"/metricsz"); err == nil {
			rep.Metrics = m
		} else {
			log.Printf("loadgen: metrics scrape failed (report continues without): %v", err)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: encoding report: %v", err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatalf("loadgen: writing %s: %v", *out, err)
		}
	} else {
		os.Stdout.Write(enc)
	}

	log.Printf("loadgen: offered %d, accepted %d, shed %d (%.1f%%), errors %d, completed %d (%.1f jobs/s), e2e p50 %.3fs p99 %.3fs",
		rep.Offered, rep.Accepted, rep.Shed, 100*rep.ShedRate, rep.Errors, rep.Completed, rep.Throughput, rep.E2EP50, rep.E2EP99)
	if rep.ByKind["doomed"] > 0 {
		log.Printf("loadgen: doomed: %d offered, %d rejected (422), %d admitted, reject p50 %.1fms p99 %.1fms",
			rep.ByKind["doomed"], rep.CertRejected, rep.DoomedAdmitted, 1e3*rep.RejectP50, 1e3*rep.RejectP99)
	}
	if rep.ByKind["session"] > 0 {
		log.Printf("loadgen: sessions: %d created, %d steps, %d lost, step p50 %.1fms p99 %.1fms",
			rep.Sessions, rep.SessionSteps, rep.SessionsLost, 1e3*rep.StepP50, 1e3*rep.StepP99)
	}
	if rep.ByKind["batch"] > 0 {
		log.Printf("loadgen: batches: %d accepted, %d system failures", rep.BatchJobs, rep.BatchSystemFailures)
	}
	if *failOnLost && rep.SessionsLost > 0 {
		log.Printf("loadgen: -fail-on-session-lost: %d sessions lost with no node killed", rep.SessionsLost)
		os.Exit(1)
	}
	if *strict {
		// A doomed submission may be shed (429) under overload, but a node
		// that admits one burns a provably divergent iteration budget, and a
		// slow 422 means admission stopped answering from the certificate
		// cache.
		const rejectBudget = 2.0
		slowReject := rep.CertRejected > 0 && rep.RejectP99 > rejectBudget
		if rep.Errors > 0 || rep.FailedJobs > 0 || rep.DoomedAdmitted > 0 || rep.BatchSystemFailures > 0 || slowReject {
			log.Printf("loadgen: strict mode: %d errors, %d failed jobs, %d doomed admitted, %d batch system failures, reject p99 %.3fs (budget %.1fs)",
				rep.Errors, rep.FailedJobs, rep.DoomedAdmitted, rep.BatchSystemFailures, rep.RejectP99, rejectBudget)
			for _, s := range rep.ErrorSamples {
				log.Printf("loadgen:   %s", s)
			}
			os.Exit(1)
		}
	}
}
