// Command benchtables regenerates every table and figure of the paper's
// evaluation section and prints them as aligned text tables and ASCII
// charts. This is the reproduction's one-stop harness: run it with no
// arguments for the full sweep, or select experiments with -only.
//
// Usage:
//
//	benchtables [-quick] [-runs n] [-only list]
//
// -quick shrinks the expensive studies (fewer repeated runs, the fv3
// 25000-iteration panel capped) so the sweep finishes in well under a
// minute; -only takes a comma-separated subset of:
// table1,fig5,fig6,fig7,table4,fig8,table5,fig9,fig10,table6,fig11,
// scaled,ablation,reorder,silent,mgrid,precond,exascale,cluster,tune,align.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/multigpu"
	"repro/internal/plot"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sizes for a fast sweep")
	runs := flag.Int("runs", 0, "runs for the non-determinism study (default 100, paper 1000)")
	only := flag.String("only", "", "comma-separated experiment subset")
	seed := flag.Int64("seed", 1, "base seed")
	jsonPath := flag.String("json", "", "also write machine-readable results to this file")
	flag.Parse()

	sel := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			sel[strings.TrimSpace(s)] = true
		}
	}
	want := func(name string) bool { return len(sel) == 0 || sel[name] }

	if err := run(os.Stdout, *quick, *runs, *seed, want, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, quick bool, runs int, seed int64, want func(string) bool, jsonPath string) error {
	model := gpusim.CalibratedModel()
	results := map[string]any{}
	record := func(name string, v any) { results[name] = v }
	defer func() {
		if jsonPath == "" {
			return
		}
		f, err := os.Create(jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables: json:", err)
			return
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables: json:", err)
		}
	}()
	if runs == 0 {
		runs = 100
		if quick {
			runs = 20
		}
	}
	section := func(title string) {
		fmt.Fprintf(out, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
	}

	if want("table1") {
		section("Table 1 — test matrix properties")
		lanczos := 200
		if quick {
			lanczos = 80
		}
		tab, err := experiments.Table1(quick, lanczos, seed)
		if err != nil {
			return err
		}
		if err := tab.Render(out); err != nil {
			return err
		}
		record("table1", tab)
	}

	if want("fig5") {
		section("Figure 5 / Tables 2–3 — non-determinism of async-(5), block size 128")
		cfgs := []experiments.NonDetConfig{
			{Matrix: "fv1", Runs: runs, Iters: 150, CheckpointStep: 10, BaseSeed: seed},
			{Matrix: "Trefethen_2000", Runs: runs, Iters: 50, CheckpointStep: 5, BaseSeed: seed},
		}
		if quick {
			cfgs[0].Iters, cfgs[0].CheckpointStep = 60, 10
		}
		for _, cfg := range cfgs {
			res, err := experiments.Fig5NonDeterminism(cfg)
			if err != nil {
				return err
			}
			vt := res.VariationTable()
			if err := vt.Render(out); err != nil {
				return err
			}
			record("fig5_"+cfg.Matrix, vt)
			avg, _, relVar := res.Series()
			if err := plot.Lines(out, plot.Config{
				Title: fmt.Sprintf("Figure 5: average convergence, %s", cfg.Matrix),
				LogY:  true, XLabel: "# global iterations", YLabel: "relative residual",
			}, avg); err != nil {
				return err
			}
			if err := plot.Lines(out, plot.Config{
				Title:  fmt.Sprintf("Figure 5: relative variation, %s", cfg.Matrix),
				XLabel: "# global iterations", YLabel: "(max-min)/avg",
			}, relVar); err != nil {
				return err
			}
		}
	}

	if want("fig6") {
		section("Figure 6 — convergence: Gauss-Seidel vs Jacobi vs async-(1)")
		for _, m := range []string{"Chem97ZtZ", "fv1", "fv2", "fv3", "s1rmt3m1", "Trefethen_2000"} {
			iters := experiments.Fig6Iters(m)
			if quick {
				if m == "fv3" {
					iters = 2000
				}
				if m == "fv2" {
					continue // duplicates fv1
				}
			}
			series, err := experiments.Fig6Convergence(m, iters, seed)
			if err != nil {
				return err
			}
			if err := plot.Lines(out, plot.Config{
				Title: fmt.Sprintf("Figure 6: %s", m), LogY: true,
				XLabel: "# iters", YLabel: "residual",
			}, series...); err != nil {
				return err
			}
		}
	}

	if want("fig7") {
		section("Figure 7 — convergence: Gauss-Seidel vs async-(5)")
		for _, m := range []string{"Chem97ZtZ", "fv1", "fv2", "fv3", "s1rmt3m1", "Trefethen_2000"} {
			iters := experiments.Fig6Iters(m)
			if quick {
				if m == "fv3" {
					iters = 2000
				}
				if m == "fv2" {
					continue
				}
			}
			series, err := experiments.Fig7Convergence(m, iters, seed)
			if err != nil {
				return err
			}
			if err := plot.Lines(out, plot.Config{
				Title: fmt.Sprintf("Figure 7: %s", m), LogY: true,
				XLabel: "# iters", YLabel: "residual",
			}, series...); err != nil {
				return err
			}
		}
	}

	if want("table4") {
		section("Table 4 — cost of local iterations (fv3, modeled)")
		tab, err := experiments.Table4LocalIterOverhead(model)
		if err != nil {
			return err
		}
		if err := tab.Render(out); err != nil {
			return err
		}
		record("table4", tab)
	}

	if want("fig8") {
		section("Figure 8 — average iteration time vs total iterations (fv3, modeled)")
		series, err := experiments.Fig8AvgIterTime(model, nil)
		if err != nil {
			return err
		}
		if err := plot.Lines(out, plot.Config{
			Title:  "Figure 8: average time per iteration, fv3",
			XLabel: "total number of iterations", YLabel: "avg time per iteration [s]",
		}, series...); err != nil {
			return err
		}
	}

	if want("table5") {
		section("Table 5 — average iteration timings (modeled)")
		tab, err := experiments.Table5AvgIterTimings(model, quick)
		if err != nil {
			return err
		}
		if err := tab.Render(out); err != nil {
			return err
		}
		record("table5", tab)
	}

	if want("fig9") {
		section("Figure 9 — relative residual vs solver runtime (modeled time)")
		for _, m := range []string{"Chem97ZtZ", "fv1", "fv3", "Trefethen_2000"} {
			iters := 300
			if m == "fv3" {
				iters = 4000
				if quick {
					iters = 1500
				}
			}
			series, err := experiments.Fig9ResidualVsTime(model, m, iters, seed)
			if err != nil {
				return err
			}
			if err := plot.Lines(out, plot.Config{
				Title: fmt.Sprintf("Figure 9: %s", m), LogY: true,
				XLabel: "time [s]", YLabel: "relative residual",
			}, series...); err != nil {
				return err
			}
		}
	}

	if want("fig10") {
		section("Figure 10 — convergence under hardware failure (async-(5))")
		for _, m := range []string{"fv1", "Trefethen_2000"} {
			iters := 100
			if m == "Trefethen_2000" {
				iters = 60
			}
			outcomes, err := experiments.Fig10Fault(experiments.FaultConfig{
				Matrix: m, Iters: iters, Seed: seed,
			})
			if err != nil {
				return err
			}
			if err := plot.Lines(out, plot.Config{
				Title: fmt.Sprintf("Figure 10: %s (25%% cores fail at iter 10)", m), LogY: true,
				XLabel: "# global iters", YLabel: "relative residual",
			}, experiments.FaultSeries(outcomes)...); err != nil {
				return err
			}
		}
	}

	if want("table6") {
		section("Table 6 — additional iterations to recover (async-(5))")
		tab, err := experiments.Table6RecoveryOverhead([]experiments.FaultConfig{
			{Matrix: "fv1", Iters: 150, Seed: seed},
			{Matrix: "Trefethen_2000", Iters: 90, Seed: seed},
		}, 1e-10)
		if err != nil {
			return err
		}
		if err := tab.Render(out); err != nil {
			return err
		}
		record("table6", tab)
	}

	if want("fig11") {
		section("Figure 11 — multi-GPU time-to-convergence (Trefethen_20000, modeled)")
		cfg := experiments.Fig11Config{}
		if quick {
			cfg.Matrix = "Trefethen_2000"
			cfg.BlockSize = 128
		}
		bars, err := experiments.Fig11MultiGPU(model, multigpu.Supermicro(), cfg)
		if err != nil {
			return err
		}
		if err := plot.Bars(out, "time to convergence [s]", 50, bars); err != nil {
			return err
		}
		record("fig11", bars)
	}

	if want("scaled") {
		section("Extension — τ-scaled Jacobi rescues s1rmt3m1 (paper §4.2)")
		series, tau, err := experiments.ScaledJacobiRescue(400, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "tau = %.6f\n", tau)
		if err := plot.Lines(out, plot.Config{
			Title: "scaled Jacobi on s1rmt3m1", LogY: true,
			XLabel: "# iters", YLabel: "relative residual",
		}, series...); err != nil {
			return err
		}
		aseries, atau, err := experiments.ScaledAsyncRescue(300, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "async variant: tau = %.6f\n", atau)
		if err := plot.Lines(out, plot.Config{
			Title: "ω=τ block-asynchronous iteration on s1rmt3m1", LogY: true,
			XLabel: "# global iters", YLabel: "relative residual",
		}, aseries...); err != nil {
			return err
		}
	}

	if want("reorder") {
		section("Extension — RCM reordering restores local-iteration gains (paper §4.3)")
		tab, err := experiments.ReorderingRescue(1e-8, 2000, 128, seed)
		if err != nil {
			return err
		}
		if err := tab.Render(out); err != nil {
			return err
		}
	}

	if want("silent") {
		section("Extension — silent-error detection from convergence delay (paper §4.5)")
		series, injectAt, flagged, err := experiments.SilentErrorDetection("fv1", 25, 60, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "bit flip injected after global iteration %d; detector flagged at iteration %d\n",
			injectAt, flagged)
		if err := plot.Lines(out, plot.Config{
			Title: "async-(5) on fv1 with a silent bit flip", LogY: true,
			XLabel: "# global iters", YLabel: "relative residual",
		}, series); err != nil {
			return err
		}
	}

	if want("mgrid") {
		section("Extension — async-(k) as a multigrid smoother (paper §5)")
		grid := 63
		if quick {
			grid = 31
		}
		tab, err := experiments.MultigridSmootherComparison(grid, 1e-8)
		if err != nil {
			return err
		}
		if err := tab.Render(out); err != nil {
			return err
		}
	}

	if want("exascale") {
		section("Extension — checkpoint/restart vs asynchronous recovery (paper §4.5)")
		tab, err := experiments.ExascaleArgument(model, seed)
		if err != nil {
			return err
		}
		if err := tab.Render(out); err != nil {
			return err
		}
		record("exascale", tab)
	}

	if want("align") {
		section("Extension — subdomain alignment on an anisotropic operator (paper §5)")
		tab, err := experiments.BlockAlignmentAblation(40, 0.01, 1e-8, 20000, seed)
		if err != nil {
			return err
		}
		if err := tab.Render(out); err != nil {
			return err
		}
		record("align", tab)
	}

	if want("tune") {
		section("Extension — empirically tuned parameters (paper §3.2/§5)")
		names := []string{"Chem97ZtZ", "fv1", "Trefethen_2000", "s1rmt3m1"}
		tab, err := experiments.TunedParameters(names, seed)
		if err != nil {
			return err
		}
		if err := tab.Render(out); err != nil {
			return err
		}
		record("tune", tab)
	}

	if want("cluster") {
		section("Extension — distributed bounded-delay asynchronous iteration (conclusions)")
		tab, err := experiments.ClusterDelaySweep("Trefethen_2000", 8, []int{1, 2, 4, 8, 16, 32}, 1e-8, seed)
		if err != nil {
			return err
		}
		if err := tab.Render(out); err != nil {
			return err
		}
		record("cluster", tab)
	}

	if want("precond") {
		section("Extension — async-(k) as a GMRES preconditioner (paper §5)")
		tab, err := experiments.AsyncPreconditionedGMRES("fv1", 1e-9, 500, seed)
		if err != nil {
			return err
		}
		if err := tab.Render(out); err != nil {
			return err
		}
	}

	if want("ablation") {
		section("Ablations — block size and local sweeps (async-(5) on fv1)")
		bs, err := experiments.BlockSizeAblation("fv1", []int{32, 128, 448, 1024, 4096}, 1e-8, 600, seed)
		if err != nil {
			return err
		}
		if err := bs.Render(out); err != nil {
			return err
		}
		ks, err := experiments.LocalItersAblation("fv1", []int{1, 2, 3, 5, 7, 9}, 1e-8, 2000, 448, seed)
		if err != nil {
			return err
		}
		if err := ks.Render(out); err != nil {
			return err
		}
		// Engine cross-check: the goroutine engine reaches the same answer.
		tm, err := experiments.Matrix("Trefethen_2000")
		if err != nil {
			return err
		}
		b := experiments.OnesRHS(tm.A)
		res, err := core.Solve(tm.A, b, core.Options{
			BlockSize: 448, LocalIters: 5, MaxGlobalIters: 300,
			Tolerance: 1e-10, Engine: core.EngineGoroutine,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "goroutine engine on Trefethen_2000: converged=%v iters=%d residual=%.3e\n",
			res.Converged, res.GlobalIterations, res.Residual)
	}

	return nil
}
