package main

import "testing"

// TestRunQuickSubset exercises the harness plumbing on the cheapest
// sections. The full sweep is covered by the checked-in
// benchtables_output.txt run.
func TestRunQuickSubset(t *testing.T) {
	want := func(name string) bool {
		switch name {
		case "table4", "fig8", "table5", "precond",
			"fig10", "table6", "fig11", "silent", "exascale", "cluster", "mgrid":
			return true
		}
		return false
	}
	if err := run(true, 5, 1, want, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunScaledAndReorder(t *testing.T) {
	if testing.Short() {
		t.Skip("slow section")
	}
	want := func(name string) bool { return name == "reorder" }
	if err := run(true, 5, 1, want, ""); err != nil {
		t.Fatal(err)
	}
}
