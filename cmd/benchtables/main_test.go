package main

import (
	"bufio"
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file from the current output")

// TestRunQuickSubset exercises the harness plumbing on the cheapest
// sections. The full sweep is covered by the checked-in
// benchtables_output.txt run.
func TestRunQuickSubset(t *testing.T) {
	want := func(name string) bool {
		switch name {
		case "precond", "fig10", "table6", "silent", "cluster", "mgrid":
			return true
		}
		return false
	}
	if err := run(io.Discard, true, 5, 1, want, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunScaledAndReorder(t *testing.T) {
	if testing.Short() {
		t.Skip("slow section")
	}
	want := func(name string) bool { return name == "reorder" }
	if err := run(io.Discard, true, 5, 1, want, ""); err != nil {
		t.Fatal(err)
	}
}

// goldenSections are the purely modeled experiments: their output depends
// only on the calibrated performance model and the seeded simulated
// engine, never on wall clock or scheduling, so it is byte-stable.
var goldenSections = map[string]bool{
	"table4": true, "fig8": true, "table5": true, "fig11": true, "exascale": true,
}

// TestGoldenModeledSections renders the deterministic modeled sections and
// compares them byte-for-byte against testdata/modeled.golden. Regenerate
// with `go test ./cmd/benchtables -run Golden -update` after an intended
// change to the tables, the plot renderer, or the performance model.
func TestGoldenModeledSections(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, true, 5, 1, func(n string) bool { return goldenSections[n] }, ""); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "modeled.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotLines, wantLines := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("modeled output drifted from %s at line %d:\n got: %q\nwant: %q\n(-update regenerates after an intended change)",
				path, i+1, g, w)
		}
	}
	t.Fatalf("modeled output drifted from %s (same lines, different bytes)", path)
}

// fullSweepSections is every section title the no-flag sweep emits, in
// order. TestCommittedOutputStructure pins the committed
// benchtables_output.txt against this list, so adding, removing or
// renaming a section forces a regeneration of the committed run.
var fullSweepSections = []string{
	"Table 1 — test matrix properties",
	"Figure 5 / Tables 2–3 — non-determinism of async-(5), block size 128",
	"Figure 6 — convergence: Gauss-Seidel vs Jacobi vs async-(1)",
	"Figure 7 — convergence: Gauss-Seidel vs async-(5)",
	"Table 4 — cost of local iterations (fv3, modeled)",
	"Figure 8 — average iteration time vs total iterations (fv3, modeled)",
	"Table 5 — average iteration timings (modeled)",
	"Figure 9 — relative residual vs solver runtime (modeled time)",
	"Figure 10 — convergence under hardware failure (async-(5))",
	"Table 6 — additional iterations to recover (async-(5))",
	"Figure 11 — multi-GPU time-to-convergence (Trefethen_20000, modeled)",
	"Extension — τ-scaled Jacobi rescues s1rmt3m1 (paper §4.2)",
	"Extension — RCM reordering restores local-iteration gains (paper §4.3)",
	"Extension — silent-error detection from convergence delay (paper §4.5)",
	"Extension — async-(k) as a multigrid smoother (paper §5)",
	"Extension — checkpoint/restart vs asynchronous recovery (paper §4.5)",
	"Extension — subdomain alignment on an anisotropic operator (paper §5)",
	"Extension — empirically tuned parameters (paper §3.2/§5)",
	"Extension — distributed bounded-delay asynchronous iteration (conclusions)",
	"Extension — async-(k) as a GMRES preconditioner (paper §5)",
	"Ablations — block size and local sweeps (async-(5) on fv1)",
}

// TestCommittedOutputStructure is the drift check on the committed full
// sweep: benchtables_output.txt must contain exactly the current section
// set, in harness order. It catches a stale committed run after the
// harness gains or loses an experiment.
func TestCommittedOutputStructure(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "benchtables_output.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// A section header is a line whose successor is an = rule of the same
	// width (the section() helper's format).
	var headers []string
	var prev string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// section() sizes the rule with len(title) — bytes, not runes.
		if prev != "" && line == strings.Repeat("=", len(prev)) {
			headers = append(headers, prev)
		}
		prev = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(headers) != len(fullSweepSections) {
		t.Errorf("committed output has %d sections, harness emits %d — regenerate benchtables_output.txt",
			len(headers), len(fullSweepSections))
	}
	for i, want := range fullSweepSections {
		if i >= len(headers) {
			t.Errorf("section %d missing from committed output: %q", i, want)
			continue
		}
		if headers[i] != want {
			t.Errorf("section %d: committed %q, harness emits %q", i, headers[i], want)
		}
	}
}
