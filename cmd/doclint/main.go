// Command doclint enforces the repository's documentation contract:
//
//   - every Go package (root, internal/..., cmd/...) must carry a
//     package-level doc comment, and
//   - every exported identifier of the root package — the library façade
//     downstream code imports — must have a doc comment.
//
// Usage:
//
//	doclint [-dir .]
//
// It prints one line per violation and exits 1 when any exist, 0 when the
// tree is clean, 2 on I/O or parse errors. CI runs it in the docs job next
// to go vet (which checks doc-comment *form*; doclint checks presence).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("doclint", flag.ContinueOnError)
	dir := fs.String("dir", ".", "module root to lint")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	problems, err := lint(*dir)
	if err != nil {
		fmt.Fprintf(out, "doclint: %v\n", err)
		return 2
	}
	for _, p := range problems {
		fmt.Fprintf(out, "doclint: %s\n", p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(out, "doclint: %d problems\n", len(problems))
		return 1
	}
	fmt.Fprintln(out, "doclint: ok")
	return 0
}

// lint walks every Go package under root and returns the violations in
// deterministic order.
func lint(root string) ([]string, error) {
	dirs, err := goPackageDirs(root)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, d := range dirs {
		rel, _ := filepath.Rel(root, d)
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, d, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", rel, err)
		}
		for name, pkg := range pkgs {
			if !hasPackageDoc(pkg) {
				problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", rel, name))
			}
			if rel == "." {
				problems = append(problems, undocumentedExports(fset, pkg)...)
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// goPackageDirs returns every directory under root holding non-test Go
// files, skipping hidden directories and testdata.
func goPackageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasPackageDoc reports whether any file of the package carries a
// package-level doc comment.
func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && len(f.Doc.List) > 0 {
			return true
		}
	}
	return false
}

// undocumentedExports lists every exported top-level identifier without a
// doc comment. For grouped const/var/type declarations a comment on the
// group covers its members (the factored-declaration idiom).
func undocumentedExports(fset *token.FileSet, pkg *ast.Package) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil && !isExportedMethodOfUnexported(d) {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				}
			case *ast.GenDecl:
				if d.Tok == token.IMPORT || d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && s.Doc == nil && s.Comment == nil {
								report(n.Pos(), d.Tok.String(), n.Name)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// isExportedMethodOfUnexported reports whether the declaration is a method
// on an unexported receiver type — not part of the package's documented
// surface even when the method name is exported (interface satisfaction).
func isExportedMethodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return !x.IsExported()
		default:
			return false
		}
	}
}
