package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintCleanTree(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "doc.go"), "// Package root is documented.\npackage root\n")
	write(t, filepath.Join(dir, "root.go"), "package root\n\n// Exported is documented.\nfunc Exported() {}\n")
	write(t, filepath.Join(dir, "internal/sub/sub.go"), "// Package sub is documented.\npackage sub\n\nfunc Undocumented() {}\n")
	problems, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Undocumented exports outside the root package are allowed; only the
	// façade's surface is contract.
	if len(problems) != 0 {
		t.Fatalf("expected clean, got %v", problems)
	}
}

func TestLintMissingPackageDoc(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "doc.go"), "// Package root is documented.\npackage root\n")
	write(t, filepath.Join(dir, "internal/sub/sub.go"), "package sub\n")
	problems, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "package sub has no package doc") {
		t.Fatalf("expected one missing-package-doc problem, got %v", problems)
	}
}

func TestLintUndocumentedRootExports(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "root.go"), `// Package root is documented.
package root

func Documented() {} // no doc comment above — flagged

// Fine has a doc comment.
func Fine() {}

type Thing struct{}

// Grouped constants share the group comment.
const (
	A = 1
	B = 2
)

var Loose = 3

type hidden struct{}

// String satisfies fmt.Stringer; exported method on unexported type is
// not part of the documented surface.
func (hidden) String() string { return "" }
`)
	problems, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"function Documented", "type Thing", "var Loose"}
	if len(problems) != len(want) {
		t.Fatalf("expected %d problems, got %v", len(want), problems)
	}
	for _, w := range want {
		found := false
		for _, p := range problems {
			if strings.Contains(p, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("expected a problem mentioning %q in %v", w, problems)
		}
	}
}

func TestRunExitCodes(t *testing.T) {
	clean := t.TempDir()
	write(t, filepath.Join(clean, "doc.go"), "// Package x.\npackage x\n")
	var sb strings.Builder
	if code := run([]string{"-dir", clean}, &sb); code != 0 {
		t.Fatalf("clean tree: exit %d, output %q", code, sb.String())
	}

	dirty := t.TempDir()
	write(t, filepath.Join(dirty, "x.go"), "package x\n")
	sb.Reset()
	if code := run([]string{"-dir", dirty}, &sb); code != 1 {
		t.Fatalf("dirty tree: exit %d, output %q", code, sb.String())
	}
	if !strings.Contains(sb.String(), "1 problems") {
		t.Fatalf("missing summary line: %q", sb.String())
	}
}

// TestRepoIsClean is the same check CI runs: the repository itself must
// satisfy the documentation contract.
func TestRepoIsClean(t *testing.T) {
	problems, err := lint("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("repository violates the documentation contract:\n%s", strings.Join(problems, "\n"))
	}
}
