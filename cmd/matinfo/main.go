// Command matinfo regenerates the paper's Table 1 (dimensions, condition
// numbers and iteration-matrix spectral radii of the test systems) and, on
// request, the sparsity plots of Figure 1.
//
// Usage:
//
//	matinfo [-short] [-spy] [-certify] [-lanczos n] [-matrix name]
//
// With -matrix, only that system is reported; -spy adds an ASCII sparsity
// plot; -certify prints each system's admission certificate (convergence
// class, ρ(|B|) evidence, verdict, predicted iterations — see
// docs/CERTIFY.md); -short skips Trefethen_20000.
//
// Every report also states the detected sweep-kernel structure: for
// constant-coefficient stencil matrices the offset set, coefficient count
// and interior/boundary row split that the matrix-free fast path uses (see
// docs/KERNELS.md), or "none" when the general sliced-ELL/CSR path
// applies — plus the SELL-8 slot-padding ratio (padded slots per stored
// entry) the sliced-ELL layout would pay on that matrix.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mats"
	"repro/internal/sparse"
)

func main() {
	short := flag.Bool("short", false, "skip Trefethen_20000")
	spy := flag.Bool("spy", false, "print ASCII sparsity plots (Figure 1)")
	cert := flag.Bool("certify", false, "print admission certificates (class, rho bounds, verdict, predicted iterations)")
	lanczos := flag.Int("lanczos", 200, "Lanczos steps for eigenvalue estimation")
	matrix := flag.String("matrix", "", "report a single matrix instead of the full table")
	seed := flag.Int64("seed", 1, "seed for randomized estimators")
	flag.Parse()

	if err := run(*short, *spy, *cert, *lanczos, *matrix, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "matinfo:", err)
		os.Exit(1)
	}
}

func run(short, spy, cert bool, lanczos int, matrix string, seed int64) error {
	if matrix != "" {
		p, err := experiments.Table1Properties(matrix, lanczos, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%s (%s)\n  n=%d nnz=%d\n  cond(A)=%.3e cond(D^-1 A)=%.4g\n  rho(M)=%.4f rho(|M|)=%.4f\n",
			p.Name, p.Description, p.N, p.NNZ, p.CondA, p.CondDA, p.RhoM, p.RhoAbsM)
		if err := stencilOne(matrix, "  "); err != nil {
			return err
		}
		if cert {
			if err := certifyOne(matrix, seed); err != nil {
				return err
			}
		}
		if spy {
			return spyOne(matrix)
		}
		return nil
	}

	tab, err := experiments.Table1(short, lanczos, seed)
	if err != nil {
		return err
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nStencil structure (sparse.DetectStencil; docs/KERNELS.md):")
	for _, name := range mats.Names {
		if short && name == "Trefethen_20000" {
			continue
		}
		fmt.Printf("  %-16s", name)
		if err := stencilOne(name, " "); err != nil {
			return err
		}
	}
	if cert {
		fmt.Printf("\nAdmission certificates (certify.Certify, seed %d):\n", seed)
		for _, name := range mats.Names {
			if short && name == "Trefethen_20000" {
				continue
			}
			if err := certifyOne(name, seed); err != nil {
				return err
			}
		}
	}
	if spy {
		names := []string{"Chem97ZtZ", "fv1", "s1rmt3m1", "Trefethen_2000"}
		for _, n := range names {
			fmt.Printf("\nFigure 1: sparsity of %s\n", n)
			if err := spyOne(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// stencilOne reports whether a system has the constant-coefficient stencil
// structure the matrix-free kernel dispatches on, and if so its shape.
func stencilOne(name, indent string) error {
	tm, err := experiments.Matrix(name)
	if err != nil {
		return err
	}
	si, ok := sparse.DetectStencil(tm.A)
	if !ok {
		fmt.Printf("%sstencil: none (general sliced-ELL/CSR path); sell-8 slot ratio %s\n",
			indent, sellRatio(tm.A))
		return nil
	}
	fmt.Printf("%sstencil: %d-point, offsets %v, %d coeffs, %d interior / %d boundary rows (%.1f%% interior); sell-8 slot ratio %s\n",
		indent, len(si.Spec.Offsets), si.Spec.Offsets, len(si.Spec.Coeffs),
		si.InteriorRows, si.BoundaryRows, 100*si.InteriorFraction(), sellRatio(tm.A))
	return nil
}

// sellRatio reports the SELL-8 slot-padding overhead of a matrix: padded
// slots divided by stored entries when the blocks are laid out in the
// sliced-ELL format the SELL kernel sweeps (1.000 = no padding; large
// ratios mean irregular row lengths make the layout wasteful there).
func sellRatio(a *sparse.CSR) string {
	block := 448
	if block > a.Rows {
		block = a.Rows
	}
	p, err := core.NewPlanWithConfig(a, block, false, core.PlanConfig{Kernel: core.KernelSELL})
	if err != nil {
		return fmt.Sprintf("unavailable (%v)", err)
	}
	return fmt.Sprintf("%.3f", p.SELLSlotRatio())
}

// certifyOne prints one system's admission certificate.
func certifyOne(name string, seed int64) error {
	tm, err := experiments.Matrix(name)
	if err != nil {
		return err
	}
	c, err := certify.Certify(tm.A, certify.Options{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("  %-16s %s\n", name, c)
	return nil
}

func spyOne(name string) error {
	tm, err := experiments.Matrix(name)
	if err != nil {
		return err
	}
	return sparse.Spy(os.Stdout, tm.A, 64, 32)
}
