package main

import "testing"

func TestRunSingleMatrix(t *testing.T) {
	if err := run(true, false, false, 40, "Trefethen_2000", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSpy(t *testing.T) {
	if err := run(true, true, false, 30, "Chem97ZtZ", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCertificate(t *testing.T) {
	if err := run(true, false, true, 30, "fv1", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownMatrix(t *testing.T) {
	if err := run(true, false, false, 30, "nope", 1); err == nil {
		t.Error("expected error for unknown matrix")
	}
}

func TestRunFullTableShort(t *testing.T) {
	if testing.Short() {
		t.Skip("generates all short-mode matrices")
	}
	if err := run(true, false, false, 30, "", 1); err != nil {
		t.Fatal(err)
	}
}
