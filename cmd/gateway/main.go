// Command gateway fronts a fleet of solverd nodes: it routes every
// /v1/solve to the node the consistent-hash ring names for the request's
// matrix fingerprint, so each matrix's plan and tune caches stay hot on
// exactly one node. Membership is health-checked — nodes are probed on
// /readyz, ejected from the ring after consecutive failures and
// re-admitted on recovery — and the ring rebalance is deterministic, so a
// recovered node gets exactly its old keys back.
//
// Admission control composes: a node's 429 (queue full) is propagated
// upstream with the node's computed Retry-After and never failed over
// (the owner is alive — spilling its keys elsewhere would wreck cache
// affinity), while transport failures and 503s fail over to the next ring
// owner. When the gateway itself is saturated it sheds with its own 429.
//
// Endpoints:
//
//	POST   /v1/solve        route a solve to its ring owner (job IDs come
//	                        back namespaced "node~id")
//	GET    /v1/jobs/{id}    proxy a namespaced job status to its node
//	DELETE /v1/jobs/{id}    proxy a cancellation
//	GET    /v1/nodes        membership with health state
//	POST   /v1/nodes        register a node {"name": ..., "url": ...}
//	DELETE /v1/nodes/{name} deregister a node
//	GET    /healthz         gateway liveness
//	GET    /readyz          200 while at least one node is in the ring
//	GET    /statsz          routing/health/shed summary (JSON)
//	GET    /metricsz        per-node routing, health and shed counters
//	                        (Prometheus text exposition)
//
// Usage:
//
//	gateway -addr :9090 -node n0=http://127.0.0.1:8080 -node n1=http://127.0.0.1:8081
//
// Nodes can also join later via POST /v1/nodes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

// nodeFlags collects repeated -node name=url flags.
type nodeFlags []string

func (n *nodeFlags) String() string { return strings.Join(*n, ",") }

func (n *nodeFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=url, have %q", v)
	}
	*n = append(*n, v)
	return nil
}

func main() {
	var nodes nodeFlags
	var (
		addr          = flag.String("addr", ":9090", "HTTP listen address")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "readiness probe period")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "bound on one readiness probe")
		failAfter     = flag.Int("fail-after", 2, "consecutive probe failures before a node is ejected")
		reviveAfter   = flag.Int("revive-after", 2, "consecutive probe successes before an ejected node is re-admitted")
		replicas      = flag.Int("replicas", fleet.DefaultReplicas, "virtual nodes per member on the hash ring")
		maxInflight   = flag.Int("max-inflight", 256, "concurrent forwarded solves before the gateway sheds with 429")
		failoverTries = flag.Int("failover-tries", 2, "distinct ring owners tried when forwarding fails")
	)
	flag.Var(&nodes, "node", "fleet member as name=url (repeatable)")
	flag.Parse()

	g := fleet.NewGateway(fleet.GatewayConfig{
		Membership: fleet.MembershipConfig{
			ProbeInterval: *probeInterval,
			ProbeTimeout:  *probeTimeout,
			FailAfter:     *failAfter,
			ReviveAfter:   *reviveAfter,
			Replicas:      *replicas,
		},
		MaxInflight:   *maxInflight,
		FailoverTries: *failoverTries,
	})
	for _, nv := range nodes {
		name, url, _ := strings.Cut(nv, "=")
		if err := g.Membership().Register(name, url); err != nil {
			log.Fatalf("gateway: registering node %s: %v", name, err)
		}
		log.Printf("gateway: registered node %s at %s", name, url)
	}
	g.Start()
	defer g.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("gateway: listening on %s (%d nodes, %d replicas, max inflight %d)",
			*addr, len(nodes), *replicas, *maxInflight)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Printf("gateway: signal received, shutting down")
	case err := <-errCh:
		log.Printf("gateway: server error: %v", err)
		os.Exit(1)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("gateway: http shutdown: %v", err)
	}
}
