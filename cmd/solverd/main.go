// Command solverd serves block-asynchronous solves over HTTP: a bounded
// job queue drained by a solver worker pool, with a per-matrix plan cache
// that amortizes setup (block partition, block views, inverse diagonal,
// subdomain LU factors, spectral pre-flight analysis) across requests.
//
// Endpoints:
//
//	POST   /v1/solve     submit a solve (JSON body; see service.SolveRequest).
//	                     "tune": "auto" runs the per-matrix parameter search;
//	                     "devices" + "strategy" (amc|dc|dk) route the job onto
//	                     the live multi-device executor, validated against the
//	                     modeled topology at submit time
//	POST   /v1/batch     submit N right-hand sides sharing one matrix as a
//	                     single job occupying one queue slot, solved with
//	                     bounded cross-system parallelism and per-system
//	                     convergence reporting (see service.BatchRequest)
//	GET    /v1/jobs      list jobs
//	GET    /v1/jobs/{id} job status / progress / result
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	POST   /v1/sessions  create a streaming solve session: one plan +
//	                     tuning + certificate resolved once, then each
//	                     POST /v1/sessions/{id}/step solves a new
//	                     right-hand side warm-started from the previous
//	                     iterate ("stream": "sse" or "json" streams live
//	                     residual progress); idle sessions expire after
//	                     -session-ttl (see docs/SESSIONS.md)
//	GET    /v1/sessions  list sessions; GET/DELETE /v1/sessions/{id}
//	                     inspect / close one
//	GET    /healthz      liveness
//	GET    /readyz       readiness: 503 the moment a drain begins, so a
//	                     fleet gateway stops routing here while in-flight
//	                     jobs finish
//	GET    /statsz       queue depth, worker utilization, plan-cache hit rate
//	GET    /metricsz     Prometheus text exposition of the same counters,
//	                     plus per-engine solver counters, residual tracing
//	                     and modeled-device gauges
//
// With -pprof the standard net/http/pprof profiling handlers are mounted
// under /debug/pprof/ (off by default: profiles expose internals).
//
// On SIGINT/SIGTERM the daemon stops accepting work and drains in-flight
// solves, canceling whatever is still running when -drain-timeout expires.
//
// Usage:
//
//	solverd -addr :8080 -workers 4 -queue-depth 64
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		workers      = flag.Int("workers", 4, "solver worker pool size")
		queueDepth   = flag.Int("queue-depth", 64, "bounded job queue depth")
		cacheEntries = flag.Int("cache-entries", 64, "plan cache entry bound (negative: unlimited)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "plan cache byte bound (0: unlimited)")
		analyze      = flag.Bool("analyze", true, "compute the spectral pre-flight report per plan")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job wall-time bound (0: none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain bound before canceling jobs")
		maxAttempts  = flag.Int("max-attempts", 1, "runs per job before a divergent/non-converged failure is terminal")
		retryBase    = flag.Duration("retry-base", 100*time.Millisecond, "backoff before the first retry (doubles per attempt)")
		retryMax     = flag.Duration("retry-max", 5*time.Second, "backoff cap")
		chaos        = flag.Bool("chaos", false, "admit chaos-injection requests (X-Chaos header / chaos JSON block)")
		enablePprof  = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		sessionTTL   = flag.Duration("session-ttl", 5*time.Minute, "idle lifetime of a solve session before the reaper expires it")
		maxSessions  = flag.Int("max-sessions", 256, "bound on concurrently active solve sessions")
		maxBatchSys  = flag.Int("max-batch-systems", 1024, "bound on right-hand sides per batch request")
		maxBatchWork = flag.Int("max-batch-workers", 8, "cap on per-batch cross-system solver parallelism")
	)
	flag.Parse()

	svc := service.New(service.Config{
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		DefaultTimeout:  *jobTimeout,
		MaxAttempts:     *maxAttempts,
		RetryBaseDelay:  *retryBase,
		RetryMaxDelay:   *retryMax,
		EnableChaos:     *chaos,
		SessionTTL:      *sessionTTL,
		MaxSessions:     *maxSessions,
		MaxBatchSystems: *maxBatchSys,
		MaxBatchWorkers: *maxBatchWork,
		Cache: service.CacheConfig{
			MaxEntries:      *cacheEntries,
			MaxBytes:        *cacheBytes,
			AnalyzeSpectrum: *analyze,
		},
	})
	handler := service.NewHandler(svc)
	if *enablePprof {
		// Mount the pprof handlers explicitly rather than through the
		// package's DefaultServeMux side effects, so the profiling surface
		// exists only behind the flag.
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
		log.Printf("solverd: pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(handler),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("solverd: listening on %s (%d workers, queue depth %d)", *addr, *workers, *queueDepth)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Printf("solverd: signal received, draining (bound %s)", *drainTimeout)
	case err := <-errCh:
		log.Printf("solverd: server error: %v", err)
		os.Exit(1)
	}

	// Flip readiness first and keep the listener up while the queue
	// drains: a routing gateway probing /readyz sees the 503 and stops
	// sending work here, while status polls for already-accepted jobs
	// keep being answered. Only then tear the HTTP server down.
	svc.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("solverd: drain incomplete, in-flight jobs canceled: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("solverd: http shutdown: %v", err)
	}
	st := svc.Stats()
	log.Printf("solverd: exiting — %d submitted, %d done, %d failed, %d canceled, plan-cache hit rate %.0f%%",
		st.Submitted, st.Done, st.Failed, st.Canceled, 100*st.PlanHitRate)
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
