package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section (run the cmd/benchtables binary for the
// fully rendered output), plus kernel micro-benchmarks and the ablation
// benches called out in DESIGN.md §5.
//
// Experiment benches use reduced-but-representative configurations so a
// default `go test -bench=.` sweep completes in minutes; key shape ratios
// (who wins, by what factor) are attached to the benchmark output via
// b.ReportMetric.

import (
	"strconv"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/multigpu"
	"repro/internal/multigrid"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/tune"
	"repro/internal/vecmath"
)

// --- Experiment benches: one per table/figure ---------------------------

func BenchmarkTable1MatrixProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1Properties("fv1", 60, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5NonDeterminism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5NonDeterminism(experiments.NonDetConfig{
			Matrix: "Trefethen_2000", Runs: 8, Iters: 30, CheckpointStep: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			peak := 0.0
			for _, v := range res.RelVariation {
				if v > peak {
					peak = v
				}
			}
			b.ReportMetric(peak, "peak-rel-variation")
		}
	}
}

func BenchmarkFig6Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6Convergence("Trefethen_2000", 120, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig7Convergence("fv1", 150, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			gs, a5 := series[0].Y, series[1].Y
			tol := gs[len(gs)-1] * 1.0000001
			gsIt := experiments.IterationsToReach(gs, tol)
			a5It := experiments.IterationsToReach(a5, tol)
			if a5It > 0 {
				b.ReportMetric(float64(gsIt)/float64(a5It), "async5-vs-gs-speedup")
			}
		}
	}
}

func BenchmarkTable4LocalIterOverhead(b *testing.B) {
	m := gpusim.CalibratedModel()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4LocalIterOverhead(m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.AsyncIterTime(9801, 87025, 9)/m.AsyncIterTime(9801, 87025, 1)-1, "async9-overhead-frac")
}

func BenchmarkFig8AvgIterTime(b *testing.B) {
	m := gpusim.CalibratedModel()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8AvgIterTime(m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5AvgIterTimings(b *testing.B) {
	m := gpusim.CalibratedModel()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5AvgIterTimings(m, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.GaussSeidelIterTime(9604, 85264)/m.AsyncIterTime(9604, 85264, 5), "fv1-gs-vs-async5-ratio")
}

func BenchmarkFig9ResidualVsTime(b *testing.B) {
	m := gpusim.CalibratedModel()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig9ResidualVsTime(m, "fv1", 200, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var tJ, tA5 float64
			for _, s := range series {
				switch s.Name {
				case "Jacobi":
					tJ = experiments.TimeToResidual(s, 1e-6)
				case "async-(5)":
					tA5 = experiments.TimeToResidual(s, 1e-6)
				}
			}
			if tA5 > 0 {
				b.ReportMetric(tJ/tA5, "jacobi-vs-async5-time-ratio")
			}
		}
	}
}

func BenchmarkFig10FaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10Fault(experiments.FaultConfig{
			Matrix: "Trefethen_2000", Iters: 60, Seed: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6RecoveryOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6RecoveryOverhead([]experiments.FaultConfig{
			{Matrix: "Trefethen_2000", Iters: 90, Seed: 3},
		}, 1e-10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11MultiGPU(b *testing.B) {
	m := gpusim.CalibratedModel()
	topo := multigpu.Supermicro()
	for i := 0; i < b.N; i++ {
		bars, err := experiments.Fig11MultiGPU(m, topo, experiments.Fig11Config{
			Matrix: "Trefethen_2000", RelTolerance: 1e-10, BlockSize: 128,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var amc1, amc2 float64
			for _, bar := range bars {
				if bar.Group == "AMC" && bar.Label == "1 GPU" {
					amc1 = bar.Value
				}
				if bar.Group == "AMC" && bar.Label == "2 GPUs" {
					amc2 = bar.Value
				}
			}
			if amc2 > 0 {
				b.ReportMetric(amc1/amc2, "amc-2gpu-speedup")
			}
		}
	}
}

func BenchmarkScaledJacobiRescue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.ScaledJacobiRescue(150, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Kernel micro-benchmarks --------------------------------------------

func benchMatrix(b *testing.B, name string) (*sparse.CSR, []float64) {
	b.Helper()
	tm, err := experiments.Matrix(name)
	if err != nil {
		b.Fatal(err)
	}
	return tm.A, experiments.OnesRHS(tm.A)
}

func BenchmarkSpMVfv1(b *testing.B) {
	a, x := benchMatrix(b, "fv1")
	y := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
	b.SetBytes(int64(a.NNZ() * 12))
}

func BenchmarkSpMVTrefethen2000(b *testing.B) {
	a, x := benchMatrix(b, "Trefethen_2000")
	y := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
	b.SetBytes(int64(a.NNZ() * 12))
}

func BenchmarkJacobiSweep(b *testing.B) {
	a, rhs := benchMatrix(b, "fv1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Jacobi(a, rhs, solver.Options{MaxIterations: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGaussSeidelSweep(b *testing.B) {
	a, rhs := benchMatrix(b, "fv1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.GaussSeidel(a, rhs, solver.Options{MaxIterations: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCGIteration(b *testing.B) {
	a, rhs := benchMatrix(b, "fv1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.CG(a, rhs, solver.Options{MaxIterations: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsyncGlobalIteration(b *testing.B) {
	a, rhs := benchMatrix(b, "fv1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(a, rhs, core.Options{
			BlockSize: 448, LocalIters: 5, MaxGlobalIters: 1, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGoroutineEngineIteration(b *testing.B) {
	a, rhs := benchMatrix(b, "fv1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(a, rhs, core.Options{
			BlockSize: 448, LocalIters: 5, MaxGlobalIters: 1,
			Engine: core.EngineGoroutine, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFreeRunningSolve(b *testing.B) {
	a := Poisson2D(32, 32)
	rhs := OnesRHS(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveFreeRunning(a, rhs, core.FreeRunningOptions{
			BlockSize: 128, LocalIters: 3, MaxBlockUpdates: 10_000_000, Tolerance: 1e-8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ------------------------------------

func BenchmarkAblationLocalIters(b *testing.B) {
	a, rhs := benchMatrix(b, "fv1")
	for _, k := range []int{1, 2, 5, 9} {
		b.Run(benchName("k", k), func(b *testing.B) {
			iters := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(a, rhs, core.Options{
					BlockSize: 448, LocalIters: k, MaxGlobalIters: 2000,
					Tolerance: 1e-8, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				iters = res.GlobalIterations
			}
			b.ReportMetric(float64(iters), "global-iters-to-1e-8")
		})
	}
}

func BenchmarkAblationBlockSize(b *testing.B) {
	a, rhs := benchMatrix(b, "fv1")
	for _, bs := range []int{64, 128, 448, 1024} {
		b.Run(benchName("bs", bs), func(b *testing.B) {
			iters := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(a, rhs, core.Options{
					BlockSize: bs, LocalIters: 5, MaxGlobalIters: 2000,
					Tolerance: 1e-8, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				iters = res.GlobalIterations
			}
			b.ReportMetric(float64(iters), "global-iters-to-1e-8")
		})
	}
}

func BenchmarkAblationSchedulerRecurrence(b *testing.B) {
	a, rhs := benchMatrix(b, "Trefethen_2000")
	for _, rec := range []float64{0.01, 0.5, 0.99} {
		b.Run(benchName("rec", int(rec*100)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(a, rhs, core.Options{
					BlockSize: 128, LocalIters: 5, MaxGlobalIters: 50,
					Recurrence: rec, Seed: int64(i + 1),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationStaleness(b *testing.B) {
	a, rhs := benchMatrix(b, "Trefethen_2000")
	for _, sp := range []float64{0.001, 0.5, 0.999} {
		b.Run(benchName("stale", int(sp*1000)), func(b *testing.B) {
			iters := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(a, rhs, core.Options{
					BlockSize: 128, LocalIters: 5, MaxGlobalIters: 500,
					Tolerance: 1e-8, StaleProb: sp, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				iters = res.GlobalIterations
			}
			b.ReportMetric(float64(iters), "global-iters-to-1e-8")
		})
	}
}

func BenchmarkVecmathDot(b *testing.B) {
	x := vecmath.Ones(1 << 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vecmath.Dot(x, x)
	}
	b.SetBytes(int64(16 << 15))
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

// --- Extension benches ----------------------------------------------------

func BenchmarkGMRESSolve(b *testing.B) {
	a, rhs := benchMatrix(b, "Trefethen_2000")
	// The Trefethen system is badly scaled (prime diagonal up to 17389),
	// so plain restarted GMRES crawls; Jacobi preconditioning is the
	// realistic configuration.
	prec, err := solver.NewJacobiPreconditioner(a)
	if err != nil {
		b.Fatal(err)
	}
	tol := 1e-9 * vecmath.Nrm2(rhs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.GMRES(a, rhs, 30, prec, solver.Options{MaxIterations: 500, Tolerance: tol})
		if err != nil || !res.Converged {
			b.Fatalf("gmres: err=%v residual=%g", err, res.Residual)
		}
	}
}

func BenchmarkAsyncPreconditionedGMRES(b *testing.B) {
	a, rhs := benchMatrix(b, "fv1")
	prec, err := core.NewAsyncPreconditioner(a, 448, 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		res, err := solver.GMRES(a, rhs, 30, prec, solver.Options{MaxIterations: 500, Tolerance: 1e-8 * vecmath.Nrm2(rhs)})
		if err != nil || !res.Converged {
			b.Fatalf("gmres: err=%v residual=%g", err, res.Residual)
		}
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "gmres-iterations")
}

func BenchmarkMultigridVCycle(b *testing.B) {
	mg, err := multigrid.New(multigrid.Options{Width: 63, Height: 63})
	if err != nil {
		b.Fatal(err)
	}
	rhs := OnesRHS(Poisson2D(63, 63))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mg.Solve(rhs, 1e-9, 60)
		if err != nil || !res.Converged {
			b.Fatal("v-cycle failed")
		}
	}
}

func BenchmarkMultigridAsyncSmoother(b *testing.B) {
	rhs := OnesRHS(Poisson2D(63, 63))
	b.ResetTimer()
	cycles := 0
	for i := 0; i < b.N; i++ {
		mg, err := multigrid.New(multigrid.Options{
			Width: 63, Height: 63,
			Smoother: &multigrid.AsyncSmoother{BlockSize: 64, LocalIters: 2, GlobalIters: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := mg.Solve(rhs, 1e-9, 100)
		if err != nil || !res.Converged {
			b.Fatal("async-smoothed v-cycle failed")
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "v-cycles")
}

func BenchmarkRCMReordering(b *testing.B) {
	a, _ := benchMatrix(b, "Chem97ZtZ")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.RCM(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSilentErrorDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, flagged, err := experiments.SilentErrorDetection("fv1", 25, 60, 3)
		if err != nil {
			b.Fatal(err)
		}
		if flagged == 0 {
			b.Fatal("detector missed")
		}
	}
}

func BenchmarkSpMVELLfv1(b *testing.B) {
	a, x := benchMatrix(b, "fv1")
	e, err := sparse.ToELL(a)
	if err != nil {
		b.Fatal(err)
	}
	y := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MulVec(y, x)
	}
	b.SetBytes(int64(a.NNZ() * 12))
	b.ReportMetric(e.PaddingRatio(), "padding-ratio")
}

func BenchmarkExascaleArgument(b *testing.B) {
	m := gpusim.CalibratedModel()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExascaleArgument(m, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterSolve(b *testing.B) {
	a, rhs := benchMatrix(b, "Trefethen_2000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Solve(a, rhs, cluster.Options{
			Nodes: 8, LocalIters: 3, MaxDelay: 4, MaxTicks: 2000,
			Tolerance: 1e-8, Seed: int64(i),
		})
		if err != nil || !res.Converged {
			b.Fatalf("cluster: %v", err)
		}
	}
}

func BenchmarkClusterDelaySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ClusterDelaySweep("Trefethen_2000", 8, []int{1, 8, 32}, 1e-8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTuneAsync(b *testing.B) {
	a, rhs := benchMatrix(b, "Trefethen_2000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tune.Tune(a, rhs, tune.Config{
			BlockSizes: []int{128, 448}, LocalIters: []int{1, 5}, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactLocalSolve(b *testing.B) {
	a := Poisson2D(40, 40)
	rhs := OnesRHS(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(a, rhs, core.Options{
			BlockSize: 100, ExactLocal: true, MaxGlobalIters: 2000,
			Tolerance: 1e-9, Seed: 1,
		})
		if err != nil || !res.Converged {
			b.Fatal("exact local failed")
		}
	}
}

func BenchmarkChebyshevJacobi(b *testing.B) {
	a := Poisson2D(40, 40)
	rhs := OnesRHS(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.ChebyshevJacobi(a, rhs, 0.005, 2.0,
			solver.Options{MaxIterations: 5000, Tolerance: 1e-9})
		if err != nil || !res.Converged {
			b.Fatal("chebyshev failed")
		}
	}
}
