package repro

import (
	"math"
	"testing"
)

// The façade tests exercise the re-exported public API end to end the way
// a downstream user would.

func TestQuickstartFlow(t *testing.T) {
	a := GenerateMatrix("Trefethen_2000").A
	b := OnesRHS(a)
	res, err := SolveAsync(a, b, AsyncOptions{
		BlockSize:      448,
		LocalIters:     5,
		MaxGlobalIters: 200,
		Tolerance:      1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %g", res.Residual)
	}
	for i, v := range res.X {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %g, want 1", i, v)
		}
	}
}

func TestBaselinesAccessible(t *testing.T) {
	a := Poisson2D(10, 10)
	b := OnesRHS(a)
	if _, err := Jacobi(a, b, SolverOptions{MaxIterations: 500, Tolerance: 1e-8}); err != nil {
		t.Fatal(err)
	}
	if _, err := GaussSeidel(a, b, SolverOptions{MaxIterations: 500, Tolerance: 1e-8}); err != nil {
		t.Fatal(err)
	}
	if _, err := CG(a, b, SolverOptions{MaxIterations: 200, Tolerance: 1e-8}); err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, b, make([]float64, a.Rows)); r <= 0 {
		t.Error("Residual helper broken")
	}
}

func TestSpectralAccessible(t *testing.T) {
	a := Trefethen(300)
	rho, err := JacobiSpectralRadius(a, 1)
	if err != nil && rho == 0 {
		t.Fatal(err)
	}
	if rho <= 0 || rho >= 1 {
		t.Errorf("ρ(B) = %g for Trefethen(300), want in (0,1)", rho)
	}
	abs, err := AbsJacobiSpectralRadius(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if abs < rho-1e-9 {
		t.Errorf("ρ(|B|)=%g must be ≥ ρ(B)=%g", abs, rho)
	}
}

func TestMultiGPUAccessible(t *testing.T) {
	a := Trefethen(1000)
	b := OnesRHS(a)
	res, err := SolveMultiGPU(a, b, AsyncOptions{
		BlockSize: 128, LocalIters: 5, MaxGlobalIters: 200, Tolerance: 1e-8,
	}, CalibratedModel(), Supermicro(), AMC, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.ModeledSeconds <= 0 {
		t.Errorf("multi-GPU solve broken: %+v", res)
	}
}

func TestFaultInjectorAccessible(t *testing.T) {
	inj, err := NewFaultInjector(16, 0.25, 10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := GenerateMatrix("fv1").A
	b := OnesRHS(a)
	res, err := SolveAsync(a, b, AsyncOptions{
		BlockSize: 448, LocalIters: 5, MaxGlobalIters: 80,
		RecordHistory: true, SkipBlock: inj.SkipBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Error("no history")
	}
}

func TestHardwarePresets(t *testing.T) {
	if FermiC2070().NumSM != 14 {
		t.Error("Fermi preset wrong")
	}
	if Supermicro().MaxGPUs != 4 {
		t.Error("Supermicro preset wrong")
	}
	m := CalibratedModel()
	if !(m.AsyncIterTime(1000, 9000, 5) > 0) {
		t.Error("model broken")
	}
}

func TestGMRESFacade(t *testing.T) {
	a := Poisson2D(12, 12)
	b := OnesRHS(a)
	res, err := GMRES(a, b, 20, nil, SolverOptions{MaxIterations: 200, Tolerance: 1e-9})
	if err != nil || !res.Converged {
		t.Fatalf("GMRES: %v converged=%v", err, res.Converged)
	}
	p, err := NewAsyncPreconditioner(a, 36, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := GMRES(a, b, 20, p, SolverOptions{MaxIterations: 200, Tolerance: 1e-9})
	if err != nil || !pres.Converged {
		t.Fatalf("preconditioned GMRES: %v", err)
	}
	if pres.Iterations >= res.Iterations {
		t.Errorf("async preconditioner should cut iterations: %d vs %d", pres.Iterations, res.Iterations)
	}
}

func TestReorderingFacade(t *testing.T) {
	a := GenerateMatrix("Chem97ZtZ").A
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PermuteSym(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	if Bandwidth(p) >= Bandwidth(a) {
		t.Errorf("RCM should shrink bandwidth: %d -> %d", Bandwidth(a), Bandwidth(p))
	}
}

func TestMultigridFacade(t *testing.T) {
	mg, err := NewMultigrid(MultigridOptions{Width: 15, Height: 15})
	if err != nil {
		t.Fatal(err)
	}
	b := OnesRHS(Poisson2D(15, 15))
	res, err := mg.Solve(b, 1e-8, 40)
	if err != nil || !res.Converged {
		t.Fatalf("multigrid façade: %v", err)
	}
}

func TestSilentErrorFacade(t *testing.T) {
	// A fast-converging system, corrupted once the residual is tiny so the
	// bit flip dominates it (slowly converging runs hide small flips —
	// the "serious damage" regime the paper warns about needs contrast).
	a := Trefethen(400)
	b := OnesRHS(a)
	sc, err := NewSilentCorruptor([]int{15}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveAsync(a, b, AsyncOptions{
		BlockSize: 64, LocalIters: 3, MaxGlobalIters: 30,
		RecordHistory: true, AfterIteration: sc.Corrupt, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := NewAnomalyDetector(5, 10)
	flagged := false
	for _, r := range res.History {
		if det.Observe(r) {
			flagged = true
		}
	}
	if !flagged {
		t.Error("façade detector missed the corruption")
	}
}

func TestChebyshevFacade(t *testing.T) {
	a := Poisson2D(12, 12)
	b := OnesRHS(a)
	res, err := ChebyshevJacobi(a, b, 0.01, 2.0, SolverOptions{MaxIterations: 3000, Tolerance: 1e-8})
	if err != nil || !res.Converged {
		t.Fatalf("chebyshev façade: %v", err)
	}
}

func TestELLFacade(t *testing.T) {
	a := Trefethen(200)
	e, err := ToELL(a)
	if err != nil {
		t.Fatal(err)
	}
	if e.NNZ() != a.NNZ() {
		t.Errorf("ELL nnz %d vs CSR %d", e.NNZ(), a.NNZ())
	}
}

func TestClusterFacade(t *testing.T) {
	a := Poisson2D(14, 14)
	b := OnesRHS(a)
	res, err := SolveCluster(a, b, ClusterOptions{
		Nodes: 4, LocalIters: 2, MaxDelay: 2, MaxTicks: 5000, Tolerance: 1e-8, Seed: 1,
	})
	if err != nil || !res.Converged {
		t.Fatalf("cluster façade: %v", err)
	}
}

func TestExactLocalFacade(t *testing.T) {
	a := Poisson2D(14, 14)
	b := OnesRHS(a)
	res, err := SolveAsync(a, b, AsyncOptions{
		BlockSize: 49, ExactLocal: true, MaxGlobalIters: 2000, Tolerance: 1e-8, Seed: 1,
	})
	if err != nil || !res.Converged {
		t.Fatalf("exact-local façade: %v", err)
	}
}

func TestTuneFacade(t *testing.T) {
	a := GenerateMatrix("Trefethen_2000").A
	b := OnesRHS(a)
	res, err := TuneAsync(a, b, TuneConfig{
		BlockSizes: []int{128, 448}, LocalIters: []int{1, 3, 5}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockSize == 0 || res.Rate <= 0 || res.Rate >= 1 {
		t.Errorf("tune façade result: %+v", res)
	}
}
