package metrics

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
)

// numShards is the counter shard count: enough to spread the worker pools
// used in this repository (≤ 14 simulated multiprocessors, small HTTP
// worker pools) across distinct cache lines, small enough that summing on
// read stays trivial. Must be a power of two.
const numShards = 16

// paddedUint64 occupies a full cache line so neighbouring shards never
// false-share.
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing counter. Increments go to one of
// numShards cache-line-padded cells chosen via the runtime's per-thread
// random stream; Value sums the cells. The counter therefore scales across
// the goroutine engine's worker pool without a shared contended word.
type Counter struct {
	shards [numShards]paddedUint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.shards[rand.Uint32()&(numShards-1)].v.Add(n)
}

// Value returns the current total.
func (c *Counter) Value() uint64 {
	var s uint64
	for i := range c.shards {
		s += c.shards[i].v.Load()
	}
	return s
}

// Gauge is a settable instantaneous value (a float64 behind one atomic
// word).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram of float64 observations. Bucket
// bounds are upper bounds in increasing order; observations above the last
// bound land only in the implicit +Inf bucket. All methods are safe for
// concurrent use.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper): per-bucket (non-cumulative) counts
	count  atomic.Uint64
	sum    Gauge
}

// DefBuckets is the default latency bucket layout (seconds), spanning the
// sub-millisecond kernel sweeps through multi-second full solves.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not strictly increasing at %d: %g <= %g",
				i, buckets[i], buckets[i-1]))
		}
	}
	return &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// interpolating linearly inside the winning bucket (Prometheus
// histogram_quantile semantics). Observations beyond the last bound clamp
// the estimate to that bound; an empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if float64(cum+n) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.upper[i-1]
			}
			if n == 0 {
				return h.upper[i]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + frac*(h.upper[i]-lower)
		}
		cum += n
	}
	// The quantile falls in the +Inf bucket: the last finite bound is the
	// best (conservative) estimate available.
	return h.upper[len(h.upper)-1]
}

// Buckets returns the upper bounds and the *cumulative* counts per bucket
// (Prometheus le semantics, excluding the +Inf bucket, whose cumulative
// count is Count).
func (h *Histogram) Buckets() ([]float64, []uint64) {
	cum := make([]uint64, len(h.upper))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return append([]float64(nil), h.upper...), cum
}

// Ring is a bounded ring buffer of float64 samples — the residual-history
// store behind core.Options.Metrics. Unlike Result.History (which grows
// with the iteration count), a Ring keeps only the most recent Cap samples,
// so a long-running daemon can retain recent convergence behaviour with a
// hard memory bound.
type Ring struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	full  bool
	total uint64
}

// NewRing creates a ring holding up to capacity samples (capacity must be
// positive).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("metrics: ring capacity must be positive, have %d", capacity))
	}
	return &Ring{buf: make([]float64, capacity)}
}

// Push appends a sample, evicting the oldest once full.
func (r *Ring) Push(v float64) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained samples oldest-first.
func (r *Ring) Snapshot() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]float64(nil), r.buf[:r.next]...)
	}
	out := make([]float64, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns the number of retained samples.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Total returns the number of samples ever pushed (≥ Len).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Last returns the most recent sample, or false when empty.
func (r *Ring) Last() (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		return 0, false
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.buf) - 1
	}
	return r.buf[i], true
}
