package metrics

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterTable(t *testing.T) {
	cases := []struct {
		name string
		ops  []uint64 // one Add per element; 0 means Inc
		want uint64
	}{
		{"zero", nil, 0},
		{"incs", []uint64{0, 0, 0}, 3},
		{"adds", []uint64{5, 7}, 12},
		{"mixed", []uint64{0, 10, 0, 3}, 15},
		{"large", []uint64{1 << 40, 1 << 40}, 1 << 41},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c Counter
			for _, n := range tc.ops {
				if n == 0 {
					c.Inc()
				} else {
					c.Add(n)
				}
			}
			if got := c.Value(); got != tc.want {
				t.Fatalf("Value() = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestGaugeTable(t *testing.T) {
	cases := []struct {
		name string
		sets []float64
		adds []float64
		want float64
	}{
		{"zero", nil, nil, 0},
		{"set", []float64{3.5}, nil, 3.5},
		{"set-overwrites", []float64{1, 2, -7.25}, nil, -7.25},
		{"adds", nil, []float64{1.5, 2.5, -1}, 3},
		{"set-then-add", []float64{10}, []float64{-2.5}, 7.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var g Gauge
			for _, v := range tc.sets {
				g.Set(v)
			}
			for _, v := range tc.adds {
				g.Add(v)
			}
			if got := g.Value(); got != tc.want {
				t.Fatalf("Value() = %g, want %g", got, tc.want)
			}
		})
	}
}

func TestHistogramSemantics(t *testing.T) {
	cases := []struct {
		name    string
		buckets []float64
		obs     []float64
		wantCum []uint64 // cumulative counts per bucket (excluding +Inf)
		wantCnt uint64
		wantSum float64
	}{
		{
			name:    "empty",
			buckets: []float64{1, 2},
			wantCum: []uint64{0, 0},
		},
		{
			name:    "exact-bound-goes-low", // le semantics: v == bound counts in that bucket
			buckets: []float64{1, 2, 4},
			obs:     []float64{1, 2, 2, 4},
			wantCum: []uint64{1, 3, 4},
			wantCnt: 4,
			wantSum: 9,
		},
		{
			name:    "overflow-to-inf",
			buckets: []float64{0.5},
			obs:     []float64{0.1, 0.6, 100},
			wantCum: []uint64{1},
			wantCnt: 3,
			wantSum: 100.7,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(tc.buckets)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			_, cum := h.Buckets()
			if !reflect.DeepEqual(cum, tc.wantCum) {
				t.Errorf("cumulative buckets = %v, want %v", cum, tc.wantCum)
			}
			if h.Count() != tc.wantCnt {
				t.Errorf("Count() = %d, want %d", h.Count(), tc.wantCnt)
			}
			if math.Abs(h.Sum()-tc.wantSum) > 1e-12 {
				t.Errorf("Sum() = %g, want %g", h.Sum(), tc.wantSum)
			}
		})
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-increasing buckets")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if _, ok := r.Last(); ok {
		t.Fatal("Last on empty ring should report false")
	}
	r.Push(1)
	r.Push(2)
	if got := r.Snapshot(); !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Fatalf("partial Snapshot = %v", got)
	}
	r.Push(3)
	r.Push(4) // evicts 1
	r.Push(5) // evicts 2
	if got := r.Snapshot(); !reflect.DeepEqual(got, []float64{3, 4, 5}) {
		t.Fatalf("wrapped Snapshot = %v, want oldest-first [3 4 5]", got)
	}
	if r.Len() != 3 || r.Cap() != 3 {
		t.Fatalf("Len/Cap = %d/%d, want 3/3", r.Len(), r.Cap())
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	if last, ok := r.Last(); !ok || last != 5 {
		t.Fatalf("Last = %g,%v, want 5,true", last, ok)
	}
}

// TestConcurrentIncrements drives every primitive from many goroutines;
// under -race this doubles as the data-race proof for the sharded counter,
// the gauge CAS loop and the histogram's atomic buckets.
func TestConcurrentIncrements(t *testing.T) {
	const (
		workers = 16
		perW    = 10_000
	)
	var (
		c  Counter
		g  Gauge
		h  = newHistogram([]float64{0.25, 0.5, 0.75})
		r  = NewRing(64)
		wg sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) * 0.25)
				r.Push(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perW {
		t.Errorf("counter = %d, want %d", got, workers*perW)
	}
	if got := g.Value(); got != workers*perW {
		t.Errorf("gauge = %g, want %d", got, workers*perW)
	}
	if got := h.Count(); got != workers*perW {
		t.Errorf("histogram count = %d, want %d", got, workers*perW)
	}
	if got := r.Total(); got != workers*perW {
		t.Errorf("ring total = %d, want %d", got, workers*perW)
	}
	if r.Len() != 64 {
		t.Errorf("ring len = %d, want 64", r.Len())
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help", "engine", "simulated")
	b := reg.Counter("x_total", "help", "engine", "simulated")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := reg.Counter("x_total", "help", "engine", "goroutine")
	if a == other {
		t.Fatal("distinct label sets must be distinct series")
	}
	h1 := reg.Histogram("h_seconds", "", []float64{1, 2})
	h2 := reg.Histogram("h_seconds", "", []float64{9, 10}) // buckets ignored on re-registration
	if h1 != h2 {
		t.Fatal("histogram re-registration must return the existing instance")
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("kind conflict", func() { reg.Gauge("x_total", "") })
	mustPanic("bad metric name", func() { reg.Counter("1bad", "") })
	mustPanic("bad label name", func() { reg.Counter("ok_total", "", "bad-label", "v") })
	mustPanic("odd labels", func() { reg.Counter("ok_total", "", "k") })
	mustPanic("duplicate func", func() {
		reg.GaugeFunc("f_gauge", "", func() float64 { return 1 })
		reg.GaugeFunc("f_gauge", "", func() float64 { return 2 })
	})
}

// TestExpositionGolden locks the exposition format byte-for-byte: families
// sorted by name, series by label block, histogram le/sum/count layout,
// label escaping. Regenerate with -update.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core_global_iterations_total", "Completed global iterations.", "engine", "simulated").Add(42)
	reg.Counter("core_global_iterations_total", "Completed global iterations.", "engine", "goroutine").Add(7)
	reg.Gauge("service_queue_depth", "Queued jobs.").Set(3)
	reg.GaugeFunc("service_busy_workers", "Workers running a job.", func() float64 { return 2 })
	reg.CounterFunc("service_plan_cache_hits_total", "Plan cache hits.", func() uint64 { return 9 })
	reg.Gauge("weird_label_gauge", "Escaping.", "path", "a\\b\"c\nd").Set(1.5)
	h := reg.Histogram("core_solve_seconds", "Wall time per solve.", []float64{0.1, 1, 10}, "engine", "simulated")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestExpositionParses is a light format validator: every non-comment line
// must be "name{labels} value" with a parseable value, and every series
// must be preceded by its TYPE line.
func TestExpositionParses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Inc()
	reg.Histogram("b_seconds", "x", nil).Observe(0.2)
	reg.Gauge("c", "y").Set(-1.25)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suffix); ok && typed[cut] {
				base = cut
				break
			}
		}
		if !typed[base] {
			t.Errorf("series %q has no preceding TYPE line", line)
		}
		fields := strings.Fields(line)
		if _, err := parseValue(fields[len(fields)-1]); err != nil {
			t.Errorf("series %q: unparseable value: %v", line, err)
		}
	}
}

func parseValue(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
