// Package metrics is the repository's dependency-free observability
// substrate: counters, gauges, histograms and bounded sample rings behind a
// registry that renders the Prometheus text exposition format (version
// 0.0.4). The paper's entire evaluation (§4) is measurement — convergence
// per iteration and per second, 1000-run statistics, recovery curves — and
// this package is what lets a *running* solve be observed the same way:
// engine counters in internal/core, device gauges in internal/gpusim,
// queue/cache/request metrics in internal/service, all surfaced at the
// daemon's GET /metricsz.
//
// Everything is stdlib-only and safe for concurrent use. The hot-path
// primitives are lock-free: counters shard their state across padded cache
// lines (writers pick a shard through the runtime's per-thread fast random
// stream, so concurrent increments rarely contend), gauges are single
// atomic words, histogram buckets are atomic counters.
package metrics
