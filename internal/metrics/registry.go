package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration is idempotent: asking for a metric with a
// name/label set that already exists returns the existing instance, so
// instrumented code can re-register freely (a warm plan cache, repeated
// solves). Registering the same name with a different kind — or a
// malformed name or label — panics: those are programming errors, caught
// by any test that touches the instrumented path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order not kept; sorted on render
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// family is one metric name: help, type, and the series per label set.
type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series // key: rendered label block ("{k=\"v\"}" or "")
	order  []string
}

// series is one (name, labels) time series. Exactly one of the value
// sources is set.
type series struct {
	labels      string
	counter     *Counter
	counterFunc func() uint64
	gauge       *Gauge
	gaugeFunc   func() float64
	hist        *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// labelBlock renders alternating key/value pairs into a canonical label
// block. Keys are kept in the given order (callers pass a fixed order, so
// identical label sets produce identical keys).
func labelBlock(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q (want key, value pairs)", labels))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if !nameRE.MatchString(labels[i]) {
			panic(fmt.Sprintf("metrics: invalid label name %q", labels[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// register returns the series for name+labels, creating family and series
// as needed. mustNew reports whether the series was created by this call.
func (r *Registry) register(name, help string, k kind, labels []string) (*series, bool) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	lb := labelBlock(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: %s already registered as %s, now requested as %s", name, f.kind, k))
	}
	s, ok := f.series[lb]
	if !ok {
		s = &series{labels: lb}
		f.series[lb] = s
		f.order = append(f.order, lb)
	}
	return s, !ok
}

// Counter returns the counter for name and the given key/value label pairs,
// registering it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s, fresh := r.register(name, help, kindCounter, labels)
	if fresh {
		s.counter = &Counter{}
	}
	if s.counter == nil {
		panic(fmt.Sprintf("metrics: %s%s is a callback counter", name, s.labels))
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time. Use it to surface an existing monotonic source (queue submit
// totals, cache hit counts) without double bookkeeping — /metricsz and any
// JSON stats endpoint then render the *same* number by construction.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {
	s, fresh := r.register(name, help, kindCounter, labels)
	if !fresh {
		panic(fmt.Sprintf("metrics: %s%s already registered", name, s.labels))
	}
	s.counterFunc = fn
}

// Gauge returns the gauge for name and labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s, fresh := r.register(name, help, kindGauge, labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("metrics: %s%s is a callback gauge", name, s.labels))
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time (queue depth, busy workers, cache bytes).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s, fresh := r.register(name, help, kindGauge, labels)
	if !fresh {
		panic(fmt.Sprintf("metrics: %s%s already registered", name, s.labels))
	}
	s.gaugeFunc = fn
}

// Histogram returns the histogram for name and labels, registering it with
// the given bucket upper bounds on first use (nil buckets selects
// DefBuckets). Later calls ignore the bucket argument and return the
// existing instance.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	s, fresh := r.register(name, help, kindHistogram, labels)
	if fresh {
		s.hist = newHistogram(buckets)
	}
	return s.hist
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (families sorted by name, series by label block).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		r.mu.Lock()
		keys := append([]string(nil), f.order...)
		r.mu.Unlock()
		sort.Strings(keys)
		for _, lb := range keys {
			r.mu.Lock()
			s := f.series[lb]
			r.mu.Unlock()
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w io.Writer, f *family, s *series) {
	switch f.kind {
	case kindCounter:
		v := uint64(0)
		if s.counterFunc != nil {
			v = s.counterFunc()
		} else {
			v = s.counter.Value()
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, strconv.FormatUint(v, 10))
	case kindGauge:
		v := 0.0
		if s.gaugeFunc != nil {
			v = s.gaugeFunc()
		} else {
			v = s.gauge.Value()
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(v))
	case kindHistogram:
		upper, cum := s.hist.Buckets()
		for i, le := range upper {
			fmt.Fprintf(w, "%s_bucket%s %s\n", f.name,
				withLabel(s.labels, "le", formatFloat(le)), strconv.FormatUint(cum[i], 10))
		}
		count := s.hist.Count()
		fmt.Fprintf(w, "%s_bucket%s %s\n", f.name,
			withLabel(s.labels, "le", "+Inf"), strconv.FormatUint(count, 10))
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.hist.Sum()))
		fmt.Fprintf(w, "%s_count%s %s\n", f.name, s.labels, strconv.FormatUint(count, 10))
	}
}

// withLabel splices an extra label into an existing (possibly empty) label
// block — used for histogram le labels.
func withLabel(block, key, value string) string {
	extra := key + `="` + escapeLabel(value) + `"`
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler rendering the registry (the /metricsz
// endpoint body).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w) // client gone: nothing useful to do
	})
}
