package multigrid

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// Smoother applies a few relaxation sweeps to Ax = b, updating x in place.
// Implementations must tolerate arbitrary right-hand sides and start
// vectors (multigrid feeds them residual equations).
type Smoother interface {
	Smooth(a *sparse.CSR, b, x []float64) error
	Name() string
}

// JacobiSmoother applies Sweeps damped-Jacobi sweeps (weight Omega;
// the classical multigrid choice is ω = 4/5 for the 2-D five-point
// stencil).
type JacobiSmoother struct {
	Sweeps int
	Omega  float64
}

// Smooth implements Smoother.
func (s JacobiSmoother) Smooth(a *sparse.CSR, b, x []float64) error {
	res, err := solver.ScaledJacobi(a, b, s.Omega, solver.Options{
		MaxIterations: s.Sweeps,
		InitialGuess:  x,
	})
	if err != nil {
		return err
	}
	copy(x, res.X)
	return nil
}

// Name implements Smoother.
func (s JacobiSmoother) Name() string { return fmt.Sprintf("jacobi(ω=%.2f)×%d", s.Omega, s.Sweeps) }

// GaussSeidelSmoother applies Sweeps forward Gauss-Seidel sweeps.
type GaussSeidelSmoother struct {
	Sweeps int
}

// Smooth implements Smoother.
func (s GaussSeidelSmoother) Smooth(a *sparse.CSR, b, x []float64) error {
	res, err := solver.GaussSeidel(a, b, solver.Options{
		MaxIterations: s.Sweeps,
		InitialGuess:  x,
	})
	if err != nil {
		return err
	}
	copy(x, res.X)
	return nil
}

// Name implements Smoother.
func (s GaussSeidelSmoother) Name() string { return fmt.Sprintf("gauss-seidel×%d", s.Sweeps) }

// AsyncSmoother applies GlobalIters global iterations of async-(LocalIters)
// block-asynchronous relaxation — the paper's method as a smoother. The
// seed advances on every application so each smoothing step sees a fresh
// chaotic schedule, like a real GPU run would.
//
// The smoother is parameterized by the core update-rule seam: Omega sets
// the sweeps' relaxation weight, and Method/Beta select the rule —
// RuleRichardson2 with β > 0 runs the second-order recurrence inside every
// smoothing application. The momentum trail is per-application (each
// Smooth call starts a fresh recurrence): multigrid hands the smoother
// residual equations with unrelated right-hand sides, so a trail carried
// across calls would couple unrelated solves.
//
// A smoother runs on every level of the hierarchy many times per V-cycle,
// so it caches one warm core.Plan per distinct operator and reuses it
// across applications — the plan-build cost (partition, splitting, kernel
// staging) amortizes over the whole multigrid solve instead of being paid
// per sweep.
type AsyncSmoother struct {
	BlockSize   int
	LocalIters  int
	GlobalIters int
	// Omega is the relaxation weight (0 means the core default ω = 1).
	Omega float64
	// Method and Beta select the update rule per the core.Options contract.
	Method core.RuleKind
	Beta   float64
	Engine core.EngineKind
	// Ctx, when non-nil, threads cancellation into every smoothing solve
	// (a canceled context surfaces as the Smooth error and aborts the
	// V-cycle within one smoothing application).
	Ctx   context.Context
	seed  int64
	plans map[*sparse.CSR]*core.Plan
}

// Smooth implements Smoother.
func (s *AsyncSmoother) Smooth(a *sparse.CSR, b, x []float64) error {
	s.seed++
	p, err := s.plan(a)
	if err != nil {
		return err
	}
	res, err := core.SolveWithPlan(p, b, core.Options{
		BlockSize:      p.BlockSize(),
		LocalIters:     s.LocalIters,
		Omega:          s.Omega,
		Method:         s.Method,
		Beta:           s.Beta,
		MaxGlobalIters: s.GlobalIters,
		InitialGuess:   x,
		Engine:         s.Engine,
		Seed:           s.seed,
		Ctx:            s.Ctx,
	})
	if err != nil {
		return err
	}
	copy(x, res.X)
	return nil
}

// plan returns the cached plan for the operator, building it on first use.
// Multigrid levels hold stable *sparse.CSR values for the lifetime of the
// hierarchy, so pointer identity is the right cache key.
func (s *AsyncSmoother) plan(a *sparse.CSR) (*core.Plan, error) {
	if p, ok := s.plans[a]; ok {
		return p, nil
	}
	bs := s.BlockSize
	if bs > a.Rows {
		bs = a.Rows // coarse levels shrink below the configured block size
	}
	p, err := core.NewPlan(a, bs, false)
	if err != nil {
		return nil, err
	}
	if s.plans == nil {
		s.plans = make(map[*sparse.CSR]*core.Plan)
	}
	s.plans[a] = p
	return p, nil
}

// Name implements Smoother.
func (s *AsyncSmoother) Name() string {
	if s.Method == core.RuleRichardson2 {
		return fmt.Sprintf("async-%s(%d)×%d/bs%d(β=%.2f)", s.Method, s.LocalIters, s.GlobalIters, s.BlockSize, s.Beta)
	}
	return fmt.Sprintf("async-(%d)×%d/bs%d", s.LocalIters, s.GlobalIters, s.BlockSize)
}

// level holds one grid of the hierarchy.
type level struct {
	w, h int
	a    *sparse.CSR
	// Scratch vectors sized for this level. Each has exactly one role per
	// V-cycle visit so no two live values alias:
	//   r    — residual of this level's equation
	//   e    — prolongated correction received from the next-coarser level
	//   tmp  — matrix-vector product workspace
	//   rhs  — right-hand side passed *down* to this level
	//   corr — correction solved *on* this level for its parent
	r, e, tmp, rhs, corr []float64
}

// Solver is a geometric multigrid V-cycle solver for the five-point 2-D
// Poisson operator.
type Solver struct {
	levels   []level
	smoother Smoother
	// CoarseIters bounds the coarsest-grid solve (Gauss-Seidel).
	coarseIters int
}

// Options configures New.
type Options struct {
	// Width, Height of the finest grid. Both must be odd and ≥ 5 so 2:1
	// coarsening is well defined down to a small coarsest grid.
	Width, Height int
	// Smoother defaults to JacobiSmoother{Sweeps: 2, Omega: 0.8}.
	Smoother Smoother
	// MinCoarse stops coarsening when a side would drop below it (default 3).
	MinCoarse int
	// CoarseIters bounds the coarsest solve (default 200 GS sweeps).
	CoarseIters int
	// Operator builds the discrete operator of each level; level 0 is the
	// finest. The family must rediscretize consistently under 2:1
	// vertex coarsening (the stencil matrices absorb h², which quadruples
	// per level — see FVOperator). Default: PoissonOperator.
	Operator func(level, w, h int) *sparse.CSR
}

// PoissonOperator is the default operator family: the five-point Poisson
// stencil at every level (pure h²-Laplacian, self-consistent under
// coarsening).
func PoissonOperator(level, w, h int) *sparse.CSR { return mats.Poisson2D(w, h) }

// FVOperator returns an operator family for the nine-point fv stencil
// −Δ + c: the zeroth-order term's stencil weight sigma scales with h², so
// it quadruples per coarsening level.
func FVOperator(sigma float64) func(level, w, h int) *sparse.CSR {
	return func(level, w, h int) *sparse.CSR {
		scale := math.Pow(4, float64(level))
		return mats.FV(w, h, sigma*scale)
	}
}

// ErrDiverged is reported when a V-cycle fails to reduce a non-finite
// residual.
var ErrDiverged = errors.New("multigrid: diverged")

// New builds the grid hierarchy.
func New(opt Options) (*Solver, error) {
	if opt.Width < 5 || opt.Height < 5 {
		return nil, fmt.Errorf("multigrid: finest grid %dx%d too small (need ≥5)", opt.Width, opt.Height)
	}
	if opt.Width%2 == 0 || opt.Height%2 == 0 {
		return nil, fmt.Errorf("multigrid: grid sides must be odd for 2:1 coarsening, have %dx%d", opt.Width, opt.Height)
	}
	if opt.Smoother == nil {
		opt.Smoother = JacobiSmoother{Sweeps: 2, Omega: 0.8}
	}
	if opt.MinCoarse <= 0 {
		opt.MinCoarse = 3
	}
	if opt.CoarseIters <= 0 {
		opt.CoarseIters = 200
	}
	if opt.Operator == nil {
		opt.Operator = PoissonOperator
	}
	s := &Solver{smoother: opt.Smoother, coarseIters: opt.CoarseIters}
	w, h := opt.Width, opt.Height
	for {
		n := w * h
		s.levels = append(s.levels, level{
			w: w, h: h, a: opt.Operator(len(s.levels), w, h),
			r: make([]float64, n), e: make([]float64, n), tmp: make([]float64, n),
			rhs: make([]float64, n), corr: make([]float64, n),
		})
		// Vertex-aligned 2:1 coarsening: coarse point J sits on fine point
		// 2J+1, so a fine side w (odd) coarsens to (w−1)/2 and the implicit
		// Dirichlet boundaries of the two grids coincide exactly. Sides of
		// the form 2^k−1 coarsen all the way down.
		if w%2 == 0 || h%2 == 0 {
			break
		}
		nw, nh := (w-1)/2, (h-1)/2
		if nw < opt.MinCoarse || nh < opt.MinCoarse {
			break
		}
		w, h = nw, nh
	}
	return s, nil
}

// NumLevels returns the hierarchy depth.
func (s *Solver) NumLevels() int { return len(s.levels) }

// LevelShape reports level l's problem size — unknowns and stored
// nonzeros — the inputs a performance model needs to cost the smoothing
// work done on that level (level 0 is the finest grid).
func (s *Solver) LevelShape(l int) (n, nnz int) {
	lv := s.levels[l]
	return lv.a.Rows, lv.a.NNZ()
}

// SmootherName reports the configured smoother.
func (s *Solver) SmootherName() string { return s.smoother.Name() }

// Result reports a multigrid solve.
type Result struct {
	X         []float64
	Cycles    int
	Residual  float64
	Converged bool
	History   []float64 // residual after each V-cycle
}

// Solve runs V-cycles on the finest level until the absolute residual
// drops below tol or maxCycles is reached.
func (s *Solver) Solve(b []float64, tol float64, maxCycles int) (Result, error) {
	fine := &s.levels[0]
	if len(b) != fine.w*fine.h {
		return Result{}, fmt.Errorf("multigrid: rhs length %d, want %d", len(b), fine.w*fine.h)
	}
	if maxCycles <= 0 {
		return Result{}, fmt.Errorf("multigrid: maxCycles must be positive, have %d", maxCycles)
	}
	x := make([]float64, len(b))
	res := Result{}
	for c := 1; c <= maxCycles; c++ {
		if err := s.vcycle(0, b, x); err != nil {
			return res, err
		}
		r := solver.Residual(fine.a, b, x)
		res.Cycles = c
		res.Residual = r
		res.History = append(res.History, r)
		if math.IsNaN(r) || math.IsInf(r, 0) {
			res.X = x
			return res, fmt.Errorf("%w after %d cycles", ErrDiverged, c)
		}
		if r <= tol {
			res.Converged = true
			break
		}
	}
	res.X = x
	return res, nil
}

// vcycle performs one V-cycle starting at level l, improving x for
// A_l x = b.
func (s *Solver) vcycle(l int, b, x []float64) error {
	lv := &s.levels[l]
	if l == len(s.levels)-1 {
		// Coarsest grid: solve (nearly) exactly with Gauss-Seidel.
		res, err := solver.GaussSeidel(lv.a, b, solver.Options{
			MaxIterations: s.coarseIters,
			InitialGuess:  x,
			Tolerance:     1e-13,
		})
		if err != nil {
			return err
		}
		copy(x, res.X)
		return nil
	}

	// Pre-smooth.
	if err := s.smoother.Smooth(lv.a, b, x); err != nil {
		return err
	}
	// Residual r = b − Ax.
	lv.a.MulVec(lv.tmp, x)
	vecmath.Sub(lv.r, b, lv.tmp)
	// Restrict to the coarse grid.
	coarse := &s.levels[l+1]
	restrictFW(lv.r, lv.w, lv.h, coarse.rhs, coarse.w, coarse.h)
	// Coarse-grid correction: solve A_c e = r_c recursively from zero.
	vecmath.Fill(coarse.corr, 0)
	if err := s.vcycle(l+1, coarse.rhs, coarse.corr); err != nil {
		return err
	}
	// Prolongate and correct.
	prolongBilinear(coarse.corr, coarse.w, coarse.h, lv.e, lv.w, lv.h)
	vecmath.Axpy(1, lv.e, x)
	// Post-smooth.
	return s.smoother.Smooth(lv.a, b, x)
}

// restrictFW applies full-weighting restriction from a fine (wf×hf) grid to
// the coarse ((wf−1)/2 × (hf−1)/2) grid. Coarse point (I,J) sits on fine
// point (2I+1, 2J+1), which is always at least one point away from the
// grid edge, so the classical [1 2 1; 2 4 2; 1 2 1]/16 stencil never needs
// truncation. The result carries the ×4 scaling of the residual equation:
// the stencil matrices absorb the squared grid spacing, which quadruples
// from one level to the next.
func restrictFW(fine []float64, wf, hf int, coarse []float64, wc, hc int) {
	for J := 0; J < hc; J++ {
		for I := 0; I < wc; I++ {
			fx, fy := 2*I+1, 2*J+1
			var sum float64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					w := float64((2 - abs(dx)) * (2 - abs(dy)))
					sum += w * fine[(fy+dy)*wf+fx+dx]
				}
			}
			coarse[J*wc+I] = sum / 16 * 4
		}
	}
}

// prolongBilinear interpolates the coarse grid bilinearly onto the fine
// grid (the transpose, up to scaling, of full weighting). Coarse point
// (I,J) coincides with fine point (2I+1, 2J+1); out-of-range coarse
// neighbours are the shared homogeneous Dirichlet boundary (zero), so the
// interpolated correction vanishes toward the boundary exactly as the
// error it approximates does.
func prolongBilinear(coarse []float64, wc, hc int, fine []float64, wf, hf int) {
	at := func(I, J int) float64 {
		if I < 0 || I >= wc || J < 0 || J >= hc {
			return 0
		}
		return coarse[J*wc+I]
	}
	for y := 0; y < hf; y++ {
		for x := 0; x < wf; x++ {
			xo, yo := x%2 == 1, y%2 == 1
			I, J := (x-1)/2, (y-1)/2 // aligned coarse indices for odd x, y
			switch {
			case xo && yo:
				fine[y*wf+x] = at(I, J)
			case !xo && yo:
				// fine x = 2m lies between coarse m−1 (fine 2m−1) and m.
				fine[y*wf+x] = 0.5 * (at(x/2-1, J) + at(x/2, J))
			case xo && !yo:
				fine[y*wf+x] = 0.5 * (at(I, y/2-1) + at(I, y/2))
			default:
				fine[y*wf+x] = 0.25 * (at(x/2-1, y/2-1) + at(x/2, y/2-1) +
					at(x/2-1, y/2) + at(x/2, y/2))
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
