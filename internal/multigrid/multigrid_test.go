package multigrid

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/solver"
	"repro/internal/vecmath"
)

func rhsOnes(w, h int) []float64 {
	a := mats.Poisson2D(w, h)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Width: 4, Height: 9}); err == nil {
		t.Error("expected error for even width")
	}
	if _, err := New(Options{Width: 3, Height: 3}); err == nil {
		t.Error("expected error for too-small grid")
	}
}

func TestHierarchyDepth(t *testing.T) {
	s, err := New(Options{Width: 31, Height: 31})
	if err != nil {
		t.Fatal(err)
	}
	// 31 -> 15 -> 7 -> 3: four levels.
	if s.NumLevels() != 4 {
		t.Errorf("levels = %d, want 4", s.NumLevels())
	}
	if s.SmootherName() == "" {
		t.Error("smoother name empty")
	}
}

func TestVCycleSolvesPoisson(t *testing.T) {
	s, err := New(Options{Width: 31, Height: 31})
	if err != nil {
		t.Fatal(err)
	}
	b := rhsOnes(31, 31)
	res, err := s.Solve(b, 1e-9, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: residual %g after %d cycles", res.Residual, res.Cycles)
	}
	for i, v := range res.X {
		if math.Abs(v-1) > 1e-7 {
			t.Fatalf("x[%d] = %g, want 1", i, v)
		}
	}
	// Textbook multigrid: grid-independent convergence, ~1 digit per cycle
	// or better with 2+2 damped-Jacobi smoothing.
	if res.Cycles > 15 {
		t.Errorf("V-cycle took %d cycles; expected ≲15 for Poisson", res.Cycles)
	}
}

func TestVCycleGridIndependence(t *testing.T) {
	// The defining multigrid property: cycle counts stay (nearly) constant
	// as the grid is refined.
	cycles := map[int]int{}
	for _, n := range []int{15, 31, 63} {
		s, err := New(Options{Width: n, Height: n})
		if err != nil {
			t.Fatal(err)
		}
		b := rhsOnes(n, n)
		res, err := s.Solve(b, 1e-8*vecmath.Nrm2(b), 60)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d not converged", n)
		}
		cycles[n] = res.Cycles
	}
	if cycles[63] > cycles[15]+4 {
		t.Errorf("cycle count grew with refinement: %v (not grid-independent)", cycles)
	}
}

func TestGaussSeidelSmoother(t *testing.T) {
	s, err := New(Options{Width: 31, Height: 31, Smoother: GaussSeidelSmoother{Sweeps: 2}})
	if err != nil {
		t.Fatal(err)
	}
	b := rhsOnes(31, 31)
	res, err := s.Solve(b, 1e-9, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("GS-smoothed V-cycle failed: %g", res.Residual)
	}
}

func TestAsyncSmootherWorks(t *testing.T) {
	// The paper's §5 outlook: async-(k) as a multigrid smoother. One global
	// iteration of async-(2) per smoothing step.
	sm := &AsyncSmoother{BlockSize: 64, LocalIters: 2, GlobalIters: 1}
	s, err := New(Options{Width: 31, Height: 31, Smoother: sm})
	if err != nil {
		t.Fatal(err)
	}
	b := rhsOnes(31, 31)
	res, err := s.Solve(b, 1e-9, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("async-smoothed V-cycle failed: residual %g after %d cycles", res.Residual, res.Cycles)
	}
	for i, v := range res.X {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %g, want 1", i, v)
		}
	}
}

func TestAsyncSmootherComparableToJacobi(t *testing.T) {
	// The chaotic smoother should be in the same class as damped Jacobi:
	// no more than ~2x the cycles.
	b := rhsOnes(31, 31)
	run := func(sm Smoother) int {
		s, err := New(Options{Width: 31, Height: 31, Smoother: sm})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(b, 1e-8, 80)
		if err != nil || !res.Converged {
			t.Fatalf("%s failed: %v", sm.Name(), err)
		}
		return res.Cycles
	}
	cj := run(JacobiSmoother{Sweeps: 2, Omega: 0.8})
	ca := run(&AsyncSmoother{BlockSize: 64, LocalIters: 2, GlobalIters: 1})
	if ca > 2*cj+2 {
		t.Errorf("async smoother needs %d cycles vs Jacobi %d; too slow", ca, cj)
	}
}

func TestVCycleBeatsPlainRelaxation(t *testing.T) {
	// Sanity: multigrid on a 65x65 grid converges orders of magnitude
	// faster than plain relaxation per fine-grid-work unit. Compare cycle
	// count against GS iterations for the same residual target.
	n := 63
	a := mats.Poisson2D(n, n)
	b := rhsOnes(n, n)
	tol := 1e-8 * vecmath.Nrm2(b)
	s, err := New(Options{Width: n, Height: n})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := s.Solve(b, tol, 60)
	if err != nil || !mg.Converged {
		t.Fatalf("multigrid failed: %v", err)
	}
	gs, err := solver.GaussSeidel(a, b, solver.Options{MaxIterations: 20000, Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	// One V-cycle costs roughly 4 fine-grid sweeps (2 pre + 2 post plus
	// coarse work ≈ 1/3); even charging 6 sweeps per cycle, multigrid must
	// win decisively.
	if gs.Converged && 6*mg.Cycles >= gs.Iterations {
		t.Errorf("multigrid (%d cycles ≈ %d sweeps) should beat GS (%d sweeps)",
			mg.Cycles, 6*mg.Cycles, gs.Iterations)
	}
}

func TestSolveValidation(t *testing.T) {
	s, err := New(Options{Width: 15, Height: 15})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(make([]float64, 5), 1e-8, 10); err == nil {
		t.Error("expected rhs length error")
	}
	if _, err := s.Solve(make([]float64, 15*15), 1e-8, 0); err == nil {
		t.Error("expected maxCycles error")
	}
}

func TestRestrictProlongConsistency(t *testing.T) {
	// Prolongation of a constant is constant away from the boundary and
	// decays toward the (shared, homogeneous Dirichlet) boundary; the
	// aligned points reproduce the coarse values exactly. Full-weighting
	// restriction of a constant is 4× the constant everywhere (the coarse
	// stencil never touches the fine boundary).
	wc, hc := 3, 3
	wf, hf := 7, 7
	coarse := make([]float64, wc*hc)
	vecmath.Fill(coarse, 1)
	fine := make([]float64, wf*hf)
	prolongBilinear(coarse, wc, hc, fine, wf, hf)
	// Aligned fine point (3,3) ↔ coarse (1,1).
	if fine[3*wf+3] != 1 {
		t.Errorf("aligned point = %g, want 1", fine[3*wf+3])
	}
	// Interior midpoints average two/four coarse ones.
	if fine[3*wf+2] != 1 || fine[2*wf+2] != 1 {
		t.Errorf("interior interpolation broke: %g %g", fine[3*wf+2], fine[2*wf+2])
	}
	// Boundary-adjacent: halves and quarters toward the zero boundary.
	if fine[3*wf+0] != 0.5 || fine[0*wf+0] != 0.25 {
		t.Errorf("boundary decay wrong: %g %g", fine[3*wf+0], fine[0*wf+0])
	}
	vecmath.Fill(fine, 1)
	restrictFW(fine, wf, hf, coarse, wc, hc)
	for i, v := range coarse {
		if math.Abs(v-4) > 1e-14 {
			t.Fatalf("restriction of constant at %d = %g, want 4", i, v)
		}
	}
}

// The smoothers must leave an already-exact solution fixed.
func TestSmoothersFixedPoint(t *testing.T) {
	a := mats.Poisson2D(9, 9)
	x := vecmath.Ones(a.Rows)
	b := make([]float64, a.Rows)
	a.MulVec(b, x)
	for _, sm := range []Smoother{
		JacobiSmoother{Sweeps: 3, Omega: 0.8},
		GaussSeidelSmoother{Sweeps: 3},
		&AsyncSmoother{BlockSize: 16, LocalIters: 2, GlobalIters: 2, Engine: core.EngineSimulated},
	} {
		xs := append([]float64(nil), x...)
		if err := sm.Smooth(a, b, xs); err != nil {
			t.Fatalf("%s: %v", sm.Name(), err)
		}
		for i := range xs {
			if math.Abs(xs[i]-1) > 1e-12 {
				t.Fatalf("%s moved the exact solution at %d: %g", sm.Name(), i, xs[i])
			}
		}
	}
}

func TestFVOperatorFamilyConverges(t *testing.T) {
	// Multigrid on the nine-point fv stencil (−Δ + c) with the
	// level-consistent operator family: grid-independent convergence, so
	// the hierarchy generalizes beyond pure Poisson.
	for _, n := range []int{31, 63} {
		s, err := New(Options{
			Width: n, Height: n,
			Operator: FVOperator(0.1),
			Smoother: JacobiSmoother{Sweeps: 2, Omega: 0.8},
		})
		if err != nil {
			t.Fatal(err)
		}
		a := mats.FV(n, n, 0.1)
		b := make([]float64, a.Rows)
		a.MulVec(b, vecmath.Ones(a.Cols))
		res, err := s.Solve(b, 1e-8*vecmath.Nrm2(b), 60)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: fv multigrid not converged (residual %g after %d cycles)",
				n, res.Residual, res.Cycles)
		}
		if res.Cycles > 25 {
			t.Errorf("n=%d: %d cycles, expected grid-independent ≲25", n, res.Cycles)
		}
	}
}
