package multigrid

import (
	"repro/internal/sparse"
	"repro/internal/tune"
)

// TunedAsyncSmoother runs the tuner on the operator and returns an
// AsyncSmoother carrying the winning block size, local-iteration count,
// relaxation weight and update rule — including the method stage's
// second-order Richardson choice when momentum beats the first-order rule
// on modeled time per digit. globalIters is the smoother's per-application
// global-iteration budget (default 2, the classical pre/post-smoothing
// count); the tuner's rhs should be the finest-level right-hand side so
// the probes see the solve's actual spectrum.
//
// The returned tune.Result lets callers report what the search decided
// (the service's multigrid route echoes it into the job result).
func TunedAsyncSmoother(a *sparse.CSR, b []float64, globalIters int, cfg tune.Config) (*AsyncSmoother, tune.Result, error) {
	tr, err := tune.Tune(a, b, cfg)
	if err != nil {
		return nil, tr, err
	}
	if globalIters <= 0 {
		globalIters = 2
	}
	return &AsyncSmoother{
		BlockSize:   tr.BlockSize,
		LocalIters:  tr.LocalIters,
		GlobalIters: globalIters,
		Omega:       tr.Omega,
		Method:      tr.Method,
		Beta:        tr.Beta,
	}, tr, nil
}
