// Package multigrid implements a geometric two-level/V-cycle multigrid
// solver for the 2-D Poisson model problem with pluggable smoothers —
// the paper's §5 outlook ("component-wise relaxation methods as ...
// smoother in multigrid" and the open question of choosing the
// asynchronous method's parameters inside a multigrid framework).
//
// The hierarchy is geometric: each level is the five-point Poisson stencil
// on a (2^k+1)... any odd-side grid, coarsened by standard 2:1 full
// weighting, with bilinear prolongation. The smoother is an interface, and
// adapters are provided for weighted Jacobi, Gauss-Seidel and the
// block-asynchronous async-(k) method — so the repository can measure what
// the paper leaves as future work: how chaotic smoothing changes V-cycle
// convergence.
package multigrid
