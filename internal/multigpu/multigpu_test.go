package multigpu

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/mats"
	"repro/internal/vecmath"
)

const (
	trefN   = 20000
	trefNNZ = 554466
)

func model() gpusim.PerfModel { return gpusim.CalibratedModel() }

func TestStrategyString(t *testing.T) {
	if AMC.String() != "AMC" || DC.String() != "DC" || DK.String() != "DK" {
		t.Error("Strategy.String broken")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy must stringify")
	}
}

func TestComputeTimeScalesDown(t *testing.T) {
	m := model()
	t1 := ComputeTime(m, 1, trefN, trefNNZ, 5)
	t2 := ComputeTime(m, 2, trefN, trefNNZ, 5)
	t4 := ComputeTime(m, 4, trefN, trefNNZ, 5)
	if !(t4 < t2 && t2 < t1) {
		t.Errorf("compute time must shrink with more GPUs: %g %g %g", t1, t2, t4)
	}
	if r := t1 / t2; r < 1.5 || r > 2.2 {
		t.Errorf("2-GPU compute speedup %g, want ≈2", r)
	}
}

func TestCommTimeAMCSockets(t *testing.T) {
	topo := Supermicro()
	c2, err := CommTime(topo, AMC, 2, trefN)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := CommTime(topo, AMC, 3, trefN)
	if err != nil {
		t.Fatal(err)
	}
	if c3 <= c2 {
		t.Errorf("crossing QPI (3 GPUs) must cost more than same-socket (2 GPUs): %g vs %g", c3, c2)
	}
}

func TestDCDKUnsupportedBeyondTwo(t *testing.T) {
	topo := Supermicro()
	for _, s := range []Strategy{DC, DK} {
		for _, g := range []int{3, 4} {
			if _, err := CommTime(topo, s, g, trefN); !errors.Is(err, ErrUnsupported) {
				t.Errorf("%s with %d GPUs: err = %v, want ErrUnsupported", s, g, err)
			}
		}
	}
}

func TestCommTimeValidation(t *testing.T) {
	topo := Supermicro()
	if _, err := CommTime(topo, AMC, 0, trefN); err == nil {
		t.Error("expected error for g=0")
	}
	if _, err := CommTime(topo, AMC, 5, trefN); err == nil {
		t.Error("expected error for g > MaxGPUs")
	}
	if _, err := CommTime(topo, Strategy(9), 1, trefN); err == nil {
		t.Error("expected error for unknown strategy")
	}
}

func TestSingleGPUDirectFasterThanAMC(t *testing.T) {
	// Paper: "For the case of using only one GPU, the DC and DK approaches
	// are slightly faster than the asynchronous multicopy since the
	// iteration vector resides in the GPU memory."
	m := model()
	topo := Supermicro()
	amc, err := IterTime(m, topo, AMC, 1, trefN, trefNNZ, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{DC, DK} {
		direct, err := IterTime(m, topo, s, 1, trefN, trefNNZ, 5)
		if err != nil {
			t.Fatal(err)
		}
		if direct >= amc {
			t.Errorf("%s single-GPU %g must beat AMC %g", s, direct, amc)
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	// The qualitative content of Figure 11 for Trefethen_20000:
	//  - AMC with 2 GPUs nearly halves the single-GPU time;
	//  - AMC with 3 GPUs is slower than with 2 (QPI), but still beats 1;
	//  - AMC with 4 GPUs beats 2, with much less than a 2× gain;
	//  - DC/DK gain little from the second GPU.
	m := model()
	topo := Supermicro()
	amc := map[int]float64{}
	for g := 1; g <= 4; g++ {
		v, err := IterTime(m, topo, AMC, g, trefN, trefNNZ, 5)
		if err != nil {
			t.Fatal(err)
		}
		amc[g] = v
	}
	if r := amc[2] / amc[1]; r > 0.62 || r < 0.4 {
		t.Errorf("AMC 2-GPU ratio %g, paper: time almost cut in half", r)
	}
	if !(amc[3] > amc[2]) {
		t.Errorf("AMC 3 GPUs (%g) must be slower than 2 GPUs (%g)", amc[3], amc[2])
	}
	if !(amc[3] < amc[1]) {
		t.Errorf("AMC 3 GPUs (%g) must still beat 1 GPU (%g)", amc[3], amc[1])
	}
	if !(amc[4] < amc[2]) {
		t.Errorf("AMC 4 GPUs (%g) must beat 2 GPUs (%g)", amc[4], amc[2])
	}
	if r := amc[4] / amc[2]; r < 0.55 {
		t.Errorf("AMC 4-GPU gain over 2 too large (%g); paper: considerably smaller than 2x", r)
	}

	for _, s := range []Strategy{DC, DK} {
		g1, err := IterTime(m, topo, s, 1, trefN, trefNNZ, 5)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := IterTime(m, topo, s, 2, trefN, trefNNZ, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !(g2 < g1) {
			t.Errorf("%s 2 GPUs (%g) should still improve on 1 (%g)", s, g2, g1)
		}
		if r := g2 / g1; r < 0.75 {
			t.Errorf("%s 2-GPU improvement too large (ratio %g); paper: only small improvements", s, r)
		}
	}
}

func TestDKSlowerThanDC(t *testing.T) {
	m := model()
	topo := Supermicro()
	dc, err := IterTime(m, topo, DC, 2, trefN, trefNNZ, 5)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := IterTime(m, topo, DK, 2, trefN, trefNNZ, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dk <= dc {
		t.Errorf("in-kernel remote access (DK %g) must cost more than bulk transfer (DC %g)", dk, dc)
	}
}

func TestSolveIntegration(t *testing.T) {
	a := mats.Trefethen(1000)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	opt := core.Options{
		BlockSize:      128,
		LocalIters:     5,
		MaxGlobalIters: 200,
		Tolerance:      1e-8,
		Seed:           1,
	}
	res, err := Solve(a, b, opt, model(), Supermicro(), AMC, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %g", res.Residual)
	}
	if res.ModeledSeconds <= 0 || res.PerIterSeconds <= 0 {
		t.Error("modeled time not populated")
	}
	if res.ModeledSeconds != res.PerIterSeconds*float64(res.GlobalIterations) {
		t.Error("ModeledSeconds inconsistent with PerIterSeconds")
	}
	if res.NumGPUs != 2 || res.Strategy != AMC {
		t.Error("configuration echo wrong")
	}
}

func TestSolveValidation(t *testing.T) {
	a := mats.Poisson2D(4, 4)
	b := make([]float64, a.Rows)
	opt := core.Options{BlockSize: 4, LocalIters: 1, MaxGlobalIters: 1}
	if _, err := Solve(a, b, opt, model(), Supermicro(), AMC, 0); err == nil {
		t.Error("expected error for 0 GPUs")
	}
	if _, err := Solve(a, b, opt, model(), Supermicro(), AMC, 9); err == nil {
		t.Error("expected error for too many GPUs")
	}
	if _, err := Solve(a, b, opt, model(), Supermicro(), DC, 3); !errors.Is(err, ErrUnsupported) {
		t.Error("expected ErrUnsupported for DC with 3 GPUs")
	}
}
