package multigpu

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/sparse"
)

// Strategy selects the inter-GPU communication scheme.
type Strategy int

const (
	// AMC is the asynchronous-multicopy strategy (host as exchange point).
	AMC Strategy = iota
	// DC is GPU-direct memory transfer via a master GPU.
	DC
	// DK is GPU-direct in-kernel access to master-GPU memory.
	DK
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case AMC:
		return "AMC"
	case DC:
		return "DC"
	case DK:
		return "DK"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrUnsupported is returned for device counts a strategy cannot serve
// (DC/DK beyond two GPUs: CUDA 4.0 GPU-direct only reaches devices on the
// same IOH, paper §4.6).
var ErrUnsupported = errors.New("multigpu: configuration not supported by CUDA 4.0 GPU-direct")

// Topology describes the host system's interconnect.
type Topology struct {
	MaxGPUs       int
	GPUsPerSocket int
	// PCIeLatency and PCIeGBs model one host↔device link.
	PCIeLatency float64
	PCIeGBs     float64
	// QPIStaging is the per-iteration cost of staging DMA across the QPI
	// socket bridge (calibrated to Figure 11; dominated by setup, not
	// bandwidth). QPIGBs is the bridge's effective streaming bandwidth.
	QPIStaging float64
	QPIGBs     float64
	// P2PStagingDC / P2PStagingDK are the per-iteration peer-to-peer
	// staging costs of the GPU-direct strategies (the "pressure on the PCI
	// connection of the master GPU" the paper reports). DK pays more:
	// in-kernel remote loads are fine-grained.
	P2PStagingDC float64
	P2PStagingDK float64
	P2PGBs       float64
}

// Supermicro returns the paper's testbed topology (§3.2, §4.6): the
// Supermicro X8DTG-QF with two Xeon E5540 sockets and four Fermi C2070s,
// two per socket. Staging constants are calibrated to Figure 11.
func Supermicro() Topology {
	return Topology{
		MaxGPUs:       4,
		GPUsPerSocket: 2,
		PCIeLatency:   3e-4,
		PCIeGBs:       6,
		QPIStaging:    1.3e-2,
		QPIGBs:        1,
		P2PStagingDC:  2.2e-2,
		P2PStagingDK:  2.6e-2,
		P2PGBs:        3,
	}
}

// ComputeTime returns the modeled kernel time of one global async-(k)
// iteration on one of g GPUs, each handling n/g rows of the n-dimensional
// system. The quadratic term of the calibrated model scales with
// (n/g)·n — each device sweeps its rows against the full iterate.
func ComputeTime(m gpusim.PerfModel, g, n, nnz, k int) float64 {
	if g <= 0 {
		panic(fmt.Sprintf("multigpu: g=%d must be positive", g))
	}
	ng := float64(n) / float64(g)
	base := m.AsyncLaunch + m.AsyncQuad*ng*float64(n) + m.PerNNZ*float64(nnz)/float64(g)
	return base * (1 + m.LocalSweep*float64(k-1))
}

// CommTime returns the modeled per-iteration communication time for the
// strategy on g GPUs with an n-dimensional iterate.
func CommTime(t Topology, strat Strategy, g, n int) (float64, error) {
	if g <= 0 {
		return 0, fmt.Errorf("multigpu: g=%d must be positive", g)
	}
	if g > t.MaxGPUs {
		return 0, fmt.Errorf("multigpu: g=%d exceeds topology maximum %d", g, t.MaxGPUs)
	}
	up := 8 * float64(n) / float64(g) // updated components, per device
	down := 8 * float64(n)            // full iterate, per device
	switch strat {
	case AMC:
		// Concurrent per-link streaming; remote-socket devices also pay
		// the QPI staging cost. All devices overlap, so the slowest link
		// bounds the iteration.
		local := t.PCIeLatency + (up+down)/(t.PCIeGBs*1e9)
		if g <= t.GPUsPerSocket {
			return local, nil
		}
		remoteBytes := (up + down) * float64(g-t.GPUsPerSocket)
		remote := t.PCIeLatency + t.QPIStaging + remoteBytes/(t.QPIGBs*1e9)
		if remote > local {
			return remote, nil
		}
		return local, nil
	case DC, DK:
		if g > t.GPUsPerSocket {
			return 0, fmt.Errorf("%w: %s with %d GPUs (max %d on one IOH)", ErrUnsupported, strat, g, t.GPUsPerSocket)
		}
		if g == 1 {
			return 0, nil // iterate stays on the single device
		}
		staging := t.P2PStagingDC
		if strat == DK {
			staging = t.P2PStagingDK
		}
		// All secondary devices serialize on the master link.
		bytes := (up + down) * float64(g-1)
		return staging + bytes/(t.P2PGBs*1e9), nil
	default:
		return 0, fmt.Errorf("multigpu: unknown strategy %v", strat)
	}
}

// IterTime returns the modeled total time of one global iteration.
func IterTime(m gpusim.PerfModel, t Topology, strat Strategy, g, n, nnz, k int) (float64, error) {
	comm, err := CommTime(t, strat, g, n)
	if err != nil {
		return 0, err
	}
	return ComputeTime(m, g, n, nnz, k) + comm, nil
}

// Result couples the algorithmic outcome of a multi-GPU solve with its
// modeled wall time.
type Result struct {
	core.Result
	// NumGPUs and Strategy echo the configuration.
	NumGPUs  int
	Strategy Strategy
	// PerIterSeconds is the modeled time of one global iteration;
	// ModeledSeconds is PerIterSeconds × iterations (setup excluded, as in
	// the paper's Figure 11, which subtracts initialization overhead).
	PerIterSeconds float64
	ModeledSeconds float64
	// Exchanges reports the boundary traffic the live execution performed —
	// the transfers CommTime prices.
	Exchanges ExchangeStats
}

// Solve runs the multi-GPU block-asynchronous iteration as a *live*
// execution: one shard goroutine per device sweeps its contiguous slice of
// the block partition, exchanging boundary components through the
// strategy's medium (host-staged full-iterate copies for AMC, master-GPU
// copies for DC, in-kernel remote loads for DK; see exec.go). The device
// layer adds no algorithmic difference (paper §3.4) — only the staleness
// pattern — and the wall time comes from the strategy/topology model
// pricing the exchanges the execution performed.
func Solve(a *sparse.CSR, b []float64, opt core.Options,
	m gpusim.PerfModel, topo Topology, strat Strategy, numGPUs int) (Result, error) {

	if numGPUs <= 0 || numGPUs > topo.MaxGPUs {
		return Result{}, fmt.Errorf("multigpu: numGPUs %d outside [1,%d]", numGPUs, topo.MaxGPUs)
	}
	if _, err := CommTime(topo, strat, numGPUs, a.Rows); err != nil {
		return Result{}, err
	}
	if opt.BlockSize <= 0 {
		return Result{}, fmt.Errorf("core: BlockSize must be positive, have %d", opt.BlockSize)
	}
	p, err := core.NewPlan(a, opt.BlockSize, opt.ExactLocal)
	if err != nil {
		return Result{}, err
	}
	return SolveWithPlan(p, b, opt, m, topo, strat, numGPUs)
}

// SolveWithPlan is Solve against a prepared core.Plan (see core.NewPlan),
// so long-running callers — internal/service routes "devices" requests
// here — amortize the per-matrix setup across solves.
func SolveWithPlan(p *core.Plan, b []float64, opt core.Options,
	m gpusim.PerfModel, topo Topology, strat Strategy, numGPUs int) (Result, error) {

	a := p.Matrix()
	if numGPUs <= 0 || numGPUs > topo.MaxGPUs {
		return Result{}, fmt.Errorf("multigpu: numGPUs %d outside [1,%d]", numGPUs, topo.MaxGPUs)
	}
	perIter, err := IterTime(m, topo, strat, numGPUs, a.Rows, a.NNZ(), opt.LocalIters)
	if err != nil {
		return Result{}, err
	}
	if nb := p.NumBlocks(); nb < numGPUs {
		return Result{}, fmt.Errorf("multigpu: %d GPUs need at least %d blocks, plan has %d (reduce BlockSize)",
			numGPUs, numGPUs, nb)
	}
	prov := newProvider(strat)
	inner, err := core.SolveSharded(p, b, opt, core.ShardOptions{
		Shards: numGPUs,
		// A single device has no concurrent peer: execute in dispatch
		// order so seeded runs are reproducible (the equivalence tests'
		// anchor), exactly as the hardware's one command queue would.
		Sequential: numGPUs == 1,
		Provider:   prov,
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Result:         inner,
		NumGPUs:        numGPUs,
		Strategy:       strat,
		PerIterSeconds: perIter,
		Exchanges:      prov.stats(),
	}
	res.ModeledSeconds = perIter * float64(inner.GlobalIterations)
	return res, nil
}
