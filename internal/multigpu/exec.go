package multigpu

import (
	"sync/atomic"

	"repro/internal/core"
)

// ExchangeStats aggregates the boundary exchanges a live multi-device
// execution actually performed; the topology model prices exactly this
// traffic (CommTime's up/down terms), so the modeled seconds now describe
// an execution that happened rather than a hypothetical one.
type ExchangeStats struct {
	// Downloads counts full-iterate fetches (one per device per global
	// iteration under AMC/DC); BytesDown is their payload.
	Downloads int64
	BytesDown int64
	// Uploads counts own-shard publications; BytesUp is their payload.
	Uploads int64
	BytesUp int64
	// RemoteLoads counts DK's fine-grained in-kernel reads of master-GPU
	// memory (off-shard component loads); RemoteBytes is their payload.
	RemoteLoads int64
	RemoteBytes int64
}

// exchangeProvider is the common part of the strategy providers: shard
// layout, iterate handle and atomically aggregated exchange counters.
type exchangeProvider struct {
	x      *core.AtomicVector
	shards []core.Shard
	n      int

	downloads, bytesDown atomic.Int64
	uploads, bytesUp     atomic.Int64
	remoteLoads          atomic.Int64
}

// Bind implements core.ShardViewProvider.
func (p *exchangeProvider) Bind(x *core.AtomicVector, shards []core.Shard) {
	p.x = x
	p.shards = shards
}

// Publish implements core.ShardViewProvider: under every strategy a device
// ends its iteration by pushing its own rows to the exchange point (host
// memory for AMC, the master GPU for DC/DK).
func (p *exchangeProvider) Publish(shard, iter int) {
	sh := p.shards[shard]
	p.uploads.Add(1)
	p.bytesUp.Add(8 * int64(sh.RowHi-sh.RowLo))
}

// stats snapshots the aggregated counters. Only called after the sharded
// executor's final barrier, so the atomics are quiescent.
func (p *exchangeProvider) stats() ExchangeStats {
	return ExchangeStats{
		Downloads:   p.downloads.Load(),
		BytesDown:   p.bytesDown.Load(),
		Uploads:     p.uploads.Load(),
		BytesUp:     p.bytesUp.Load(),
		RemoteLoads: p.remoteLoads.Load(),
		RemoteBytes: 8 * p.remoteLoads.Load(),
	}
}

// snapshotViews realizes the AMC and DC read semantics: at the start of
// each device iteration the device downloads the full current iterate into
// its private buffer and sweeps its blocks against that copy. Off-shard
// values are therefore exactly one exchange round stale — the staleness
// pattern the paper's multicopy scheme produces — and concurrent devices
// never read each other's in-flight writes. AMC stages the copy through
// host memory, DC through the master GPU; the executor's data movement is
// identical, only the topology model prices the links differently.
type snapshotViews struct {
	exchangeProvider
	snaps   [][]float64
	readers []core.IterateView
}

func newSnapshotViews() *snapshotViews { return &snapshotViews{} }

// Bind implements core.ShardViewProvider.
func (p *snapshotViews) Bind(x *core.AtomicVector, shards []core.Shard) {
	p.exchangeProvider.Bind(x, shards)
	p.n = x.Len()
	p.snaps = make([][]float64, len(shards))
	p.readers = make([]core.IterateView, len(shards))
	for s := range shards {
		p.snaps[s] = make([]float64, p.n)
		x.CopyInto(p.snaps[s]) // initial download: the starting iterate
		p.readers[s] = fullSnapshot(p.snaps[s])
	}
}

// View implements core.ShardViewProvider: the device's iteration-start
// download of the full iterate.
func (p *snapshotViews) View(shard, iter int) core.IterateView {
	buf := p.snaps[shard]
	p.x.CopyInto(buf)
	p.downloads.Add(1)
	p.bytesDown.Add(8 * int64(p.n))
	return p.readers[shard]
}

// fullSnapshot adapts a device's private iterate copy to IterateView.
type fullSnapshot []float64

// Load implements core.IterateView.
func (s fullSnapshot) Load(j int) float64 { return s[j] }

// dkViews realizes the DK read semantics: secondary devices dereference the
// master iterate directly from inside their kernels, so off-shard reads are
// live (maximally fresh) but each one is a fine-grained remote load — the
// "pressure on the PCI connection of the master GPU" the paper reports,
// which the topology model charges as P2PStagingDK. Per-shard load counters
// are owned by the shard's goroutine and aggregated at publish time.
type dkViews struct {
	exchangeProvider
	remotes []dkRemote
}

func newDKViews() *dkViews { return &dkViews{} }

// Bind implements core.ShardViewProvider.
func (p *dkViews) Bind(x *core.AtomicVector, shards []core.Shard) {
	p.exchangeProvider.Bind(x, shards)
	p.n = x.Len()
	p.remotes = make([]dkRemote, len(shards))
	for s := range shards {
		p.remotes[s] = dkRemote{x: x}
	}
}

// View implements core.ShardViewProvider: a counting window onto the live
// master iterate.
func (p *dkViews) View(shard, iter int) core.IterateView {
	return &p.remotes[shard]
}

// Publish implements core.ShardViewProvider, folding the shard's private
// load count into the aggregate (the iteration barrier orders the reads).
func (p *dkViews) Publish(shard, iter int) {
	p.exchangeProvider.Publish(shard, iter)
	p.remoteLoads.Add(p.remotes[shard].loads)
	p.remotes[shard].loads = 0
}

// dkRemote is one device's live window onto master-GPU memory; loads is
// written only by the owning shard's goroutine.
type dkRemote struct {
	x     *core.AtomicVector
	loads int64
}

// Load implements core.IterateView.
func (r *dkRemote) Load(j int) float64 {
	r.loads++
	return r.x.Load(j)
}

// newProvider builds the strategy's exchange provider. The strategy is
// assumed valid for the device count (IterTime checks first).
func newProvider(strat Strategy) interface {
	core.ShardViewProvider
	stats() ExchangeStats
} {
	if strat == DK {
		return newDKViews()
	}
	return newSnapshotViews()
}
