package multigpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/vecmath"
)

func rhsOnes(a interface {
	MulVec(dst, x []float64)
}, n int) []float64 {
	b := make([]float64, n)
	a.MulVec(b, vecmath.Ones(n))
	return b
}

// TestOneDeviceMatchesGoroutineEngine: the device layer adds no algorithmic
// difference (paper §3.4). A single device has no off-shard reads at all,
// so under every strategy the 1-GPU execution is the goroutine engine's
// one-worker iteration — bit-identical iterate, same iteration count.
func TestOneDeviceMatchesGoroutineEngine(t *testing.T) {
	a := mats.Trefethen(500)
	b := rhsOnes(a, a.Rows)
	opt := core.Options{
		BlockSize:      32,
		LocalIters:     3,
		MaxGlobalIters: 300,
		Tolerance:      1e-8,
		Seed:           11,
	}
	ref := opt
	ref.Engine = core.EngineGoroutine
	ref.Workers = 1
	want, err := core.Solve(a, b, ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{AMC, DC, DK} {
		got, err := Solve(a, b, opt, model(), Supermicro(), strat, 1)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if got.GlobalIterations != want.GlobalIterations {
			t.Errorf("%s 1 GPU: %d iterations, goroutine engine took %d",
				strat, got.GlobalIterations, want.GlobalIterations)
		}
		for i := range want.X {
			if got.X[i] != want.X[i] {
				t.Fatalf("%s 1 GPU: X[%d] = %v, want bit-identical %v", strat, i, got.X[i], want.X[i])
			}
		}
	}
}

// TestMultiDeviceStress runs the concurrent executor across device counts
// and strategies — under -race this is the multi-device data-race stress
// case — and checks the exchange counters report the traffic the strategy
// is supposed to move.
func TestMultiDeviceStress(t *testing.T) {
	a := mats.Trefethen(400)
	b := rhsOnes(a, a.Rows)
	opt := core.Options{
		BlockSize:      16,
		LocalIters:     2,
		MaxGlobalIters: 400,
		Tolerance:      1e-8,
		Seed:           2,
	}
	for _, tc := range []struct {
		strat Strategy
		gpus  int
	}{
		{AMC, 2}, {AMC, 3}, {AMC, 4}, {DC, 2}, {DK, 2},
	} {
		res, err := Solve(a, b, opt, model(), Supermicro(), tc.strat, tc.gpus)
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.strat, tc.gpus, err)
		}
		if !res.Converged {
			t.Fatalf("%s/%d: not converged, residual %g", tc.strat, tc.gpus, res.Residual)
		}
		for i, v := range res.X {
			if d := v - 1; d > 1e-6 || d < -1e-6 {
				t.Fatalf("%s/%d: X[%d] = %v, want ≈1", tc.strat, tc.gpus, i, v)
			}
		}
		ex := res.Exchanges
		wantUploads := int64(tc.gpus * res.GlobalIterations)
		if ex.Uploads != wantUploads {
			t.Errorf("%s/%d: %d uploads, want one per device per iteration (%d)",
				tc.strat, tc.gpus, ex.Uploads, wantUploads)
		}
		if ex.BytesUp != 8*int64(a.Rows*res.GlobalIterations) {
			t.Errorf("%s/%d: BytesUp %d, want the full iterate per iteration (%d)",
				tc.strat, tc.gpus, ex.BytesUp, 8*a.Rows*res.GlobalIterations)
		}
		if tc.strat == DK {
			if ex.Downloads != 0 || ex.RemoteLoads == 0 {
				t.Errorf("DK/%d: Downloads %d RemoteLoads %d, want in-kernel remote loads, no bulk downloads",
					tc.gpus, ex.Downloads, ex.RemoteLoads)
			}
		} else {
			if ex.Downloads != wantUploads {
				t.Errorf("%s/%d: %d downloads, want one full-iterate fetch per device per iteration (%d)",
					tc.strat, tc.gpus, ex.Downloads, wantUploads)
			}
			if ex.RemoteLoads != 0 {
				t.Errorf("%s/%d: %d remote loads under a snapshot strategy", tc.strat, tc.gpus, ex.RemoteLoads)
			}
		}
	}
}

// TestModeledTimeScalesWithLiveIterations pins the coupling the live
// executor adds: ModeledSeconds prices the iterations the execution
// actually took, not a hypothetical count.
func TestModeledTimeScalesWithLiveIterations(t *testing.T) {
	a := mats.Poisson2D(16, 16)
	b := rhsOnes(a, a.Rows)
	opt := core.Options{
		BlockSize:      32,
		LocalIters:     2,
		MaxGlobalIters: 2000,
		Tolerance:      1e-9,
		Seed:           5,
	}
	res, err := Solve(a, b, opt, model(), Supermicro(), AMC, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %g", res.Residual)
	}
	if res.ModeledSeconds != res.PerIterSeconds*float64(res.GlobalIterations) {
		t.Errorf("ModeledSeconds %g ≠ PerIterSeconds %g × %d iterations",
			res.ModeledSeconds, res.PerIterSeconds, res.GlobalIterations)
	}
}
