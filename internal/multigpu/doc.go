// Package multigpu models the multi-GPU block-asynchronous iteration of
// paper §3.4 and the experiment of §4.6 (Figure 11).
//
// The system is decomposed into per-device blocks of rows, each further
// split into thread blocks on its GPU. Between GPUs — as between thread
// blocks — the iteration is asynchronous, so (as the paper notes) there is
// no algorithmic difference to the single-device two-stage iteration: the
// extra device layer only changes *where* the communication time goes.
// The package runs the iteration as a live concurrent execution on the core
// sharded executor — one shard goroutine per device, exchanging boundary
// components through the strategy's medium (exec.go) — while the wall-clock
// time is predicted by a topology model pricing exactly that traffic, with
// the three communication strategies the paper implements:
//
//   - AMC (asynchronous multicopy): host memory is the exchange point;
//     every GPU streams its updated components up and the full iterate
//     down, concurrently on its own PCIe link.
//   - DC (GPU-direct memory transfer): the iterate lives on a master GPU;
//     other devices pull/push it over PCIe peer-to-peer, serializing on
//     the master's link. CUDA 4.0 supports this only between GPUs on the
//     same IOH, i.e. at most two devices.
//   - DK (GPU-direct kernel access): kernels on secondary devices
//     dereference master-GPU memory directly; same reach limit as DC,
//     with an extra fine-grained-access penalty.
//
// The topology mirrors the paper's Supermicro X8DTG-QF node: two Xeon
// sockets bridged by QPI, two GPUs per socket. With three or more GPUs,
// AMC traffic from the far socket crosses QPI, which the paper identifies
// as the bottleneck; the model charges the calibrated staging cost that
// reproduces Figure 11's shape (2 GPUs ≈ half the time, 3 GPUs slower
// than 2, 4 GPUs only slightly better than 2).
package multigpu
