package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mats"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// laplace1D builds the [−1 2 −1] matrix; Jacobi and GS both converge on it.
func laplace1D(n int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i+1 < n {
			c.AddSym(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

// onesRHS returns b = A·1 so the exact solution is the ones vector.
func onesRHS(a *sparse.CSR) []float64 {
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	return b
}

func checkSolvesOnes(t *testing.T, name string, x []float64, tol float64) {
	t.Helper()
	for i, v := range x {
		if math.Abs(v-1) > tol {
			t.Fatalf("%s: x[%d] = %g, want 1 (±%g)", name, i, v, tol)
		}
	}
}

func TestJacobiSolvesLaplace(t *testing.T) {
	a := laplace1D(30)
	b := onesRHS(a)
	res, err := Jacobi(a, b, Options{MaxIterations: 5000, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged, residual %g", res.Residual)
	}
	checkSolvesOnes(t, "Jacobi", res.X, 1e-8)
}

func TestGaussSeidelSolvesLaplace(t *testing.T) {
	a := laplace1D(30)
	b := onesRHS(a)
	res, err := GaussSeidel(a, b, Options{MaxIterations: 5000, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged, residual %g", res.Residual)
	}
	checkSolvesOnes(t, "GS", res.X, 1e-8)
}

func TestGaussSeidelFasterThanJacobi(t *testing.T) {
	// The paper's baseline fact (§4.2): GS converges in considerably fewer
	// iterations than Jacobi; classically about half on this model problem.
	a := laplace1D(40)
	b := onesRHS(a)
	j, err := Jacobi(a, b, Options{MaxIterations: 20000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	g, err := GaussSeidel(a, b, Options{MaxIterations: 20000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !j.Converged || !g.Converged {
		t.Fatal("baselines failed to converge")
	}
	if g.Iterations >= j.Iterations {
		t.Errorf("GS took %d iterations, Jacobi %d; GS must be faster", g.Iterations, j.Iterations)
	}
	ratio := float64(j.Iterations) / float64(g.Iterations)
	if ratio < 1.6 || ratio > 2.5 {
		t.Errorf("iteration ratio Jacobi/GS = %.2f, want ≈2 (classical result)", ratio)
	}
}

func TestSORFasterThanGS(t *testing.T) {
	a := laplace1D(40)
	b := onesRHS(a)
	// Optimal SOR omega for 1D Laplace: 2/(1+sin(π/(n+1))).
	omega := 2 / (1 + math.Sin(math.Pi/41))
	g, _ := GaussSeidel(a, b, Options{MaxIterations: 20000, Tolerance: 1e-8})
	s, err := SOR(a, b, omega, Options{MaxIterations: 20000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Converged || s.Iterations >= g.Iterations {
		t.Errorf("SOR(ω=%.3f) took %d iterations vs GS %d; SOR must win", omega, s.Iterations, g.Iterations)
	}
}

func TestSORRejectsBadOmega(t *testing.T) {
	a := laplace1D(5)
	for _, w := range []float64{0, -1, 2, 2.5} {
		if _, err := SOR(a, onesRHS(a), w, Options{MaxIterations: 1}); err == nil {
			t.Errorf("SOR accepted ω=%g", w)
		}
	}
}

func TestCGSolvesLaplace(t *testing.T) {
	a := laplace1D(50)
	b := onesRHS(a)
	res, err := CG(a, b, Options{MaxIterations: 100, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG not converged, residual %g", res.Residual)
	}
	checkSolvesOnes(t, "CG", res.X, 1e-8)
	// CG on an n×n SPD system converges in at most n iterations (exact
	// arithmetic); here far fewer.
	if res.Iterations > 50 {
		t.Errorf("CG took %d iterations on a 50-dim system", res.Iterations)
	}
}

func TestCGMuchFasterThanStationary(t *testing.T) {
	// Paper Figure 9: CG is the fastest method per iteration count on the
	// fv systems.
	a := mats.FV(30, 30, 0.5)
	b := onesRHS(a)
	cg, err := CG(a, b, Options{MaxIterations: 2000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	j, err := Jacobi(a, b, Options{MaxIterations: 2000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !cg.Converged {
		t.Fatal("CG failed")
	}
	if j.Converged && cg.Iterations >= j.Iterations {
		t.Errorf("CG %d iterations vs Jacobi %d; CG must need fewer", cg.Iterations, j.Iterations)
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1)
	a := c.ToCSR()
	if _, err := CG(a, []float64{1, 1}, Options{MaxIterations: 10}); err == nil {
		t.Error("expected CG breakdown on indefinite matrix")
	}
}

func TestJacobiDivergesOnS1RMT3M1(t *testing.T) {
	// Paper Figure 6e: ρ(B) ≈ 2.65 > 1, Jacobi diverges.
	a := mats.S1RMT3M1(200)
	b := onesRHS(a)
	res, _ := Jacobi(a, b, Options{MaxIterations: 100, RecordHistory: true})
	if len(res.History) < 2 {
		t.Fatal("no history recorded")
	}
	last := res.History[len(res.History)-1]
	if !(last > res.History[0]) && !math.IsInf(last, 0) && !math.IsNaN(last) {
		t.Errorf("expected divergence: residual went %g -> %g", res.History[0], last)
	}
}

func TestScaledJacobiRescuesS1RMT3M1(t *testing.T) {
	// Paper §4.2: with τ = 2/(λ1+λn) Jacobi-based methods work on SPD
	// systems with ρ(B) > 1.
	a := mats.S1RMT3M1(200)
	b := onesRHS(a)
	// For the 8th-order stencil, D⁻¹A eigenvalues ∈ (≈0, 256/70); τ ≈ 2/(256/70) ≈ 0.547.
	tau := 0.546
	res, err := ScaledJacobi(a, b, tau, Options{MaxIterations: 500, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.History[len(res.History)-1] >= res.History[0] {
		t.Errorf("scaled Jacobi did not reduce the residual: %g -> %g",
			res.History[0], res.History[len(res.History)-1])
	}
}

func TestScaledJacobiRejectsBadTau(t *testing.T) {
	a := laplace1D(4)
	if _, err := ScaledJacobi(a, onesRHS(a), 0, Options{MaxIterations: 1}); err == nil {
		t.Error("expected error for τ=0")
	}
}

func TestOptionsValidation(t *testing.T) {
	a := laplace1D(4)
	b := onesRHS(a)
	if _, err := Jacobi(a, b[:2], Options{MaxIterations: 1}); err == nil {
		t.Error("expected rhs length error")
	}
	if _, err := Jacobi(a, b, Options{}); err == nil {
		t.Error("expected MaxIterations error")
	}
	if _, err := Jacobi(a, b, Options{MaxIterations: 1, InitialGuess: make([]float64, 2)}); err == nil {
		t.Error("expected initial guess length error")
	}
	rect := sparse.NewCOO(2, 3)
	rect.Add(0, 0, 1)
	if _, err := Jacobi(rect.ToCSR(), []float64{1, 1}, Options{MaxIterations: 1}); err == nil {
		t.Error("expected square matrix error")
	}
}

func TestInitialGuessRespected(t *testing.T) {
	a := laplace1D(10)
	b := onesRHS(a)
	exact := vecmath.Ones(10)
	res, err := Jacobi(a, b, Options{MaxIterations: 1, InitialGuess: exact, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 1 {
		t.Errorf("starting from the exact solution should converge immediately, got %+v", res)
	}
	// The provided guess must not be modified.
	for _, v := range exact {
		if v != 1 {
			t.Fatal("solver mutated the caller's initial guess")
		}
	}
}

func TestHistoryMonotoneForSPDDominant(t *testing.T) {
	a := mats.DiagDominant(60, 2, 2.0)
	b := onesRHS(a)
	res, err := Jacobi(a, b, Options{MaxIterations: 50, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]*(1+1e-12) {
			t.Fatalf("residual increased at iteration %d: %g -> %g", i, res.History[i-1], res.History[i])
		}
	}
}

func TestDivergenceReportsError(t *testing.T) {
	// An aggressively non-dominant matrix with huge ρ(B) overflows quickly.
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1e-8)
	c.Add(1, 1, 1e-8)
	c.AddSym(0, 1, 1e8)
	a := c.ToCSR()
	_, err := Jacobi(a, []float64{1, 1}, Options{MaxIterations: 100000, Tolerance: 1e-10})
	if err == nil || !errors.Is(err, ErrDiverged) {
		t.Errorf("expected ErrDiverged, got %v", err)
	}
}

func TestResidualHelper(t *testing.T) {
	a := laplace1D(3)
	x := []float64{0, 0, 0}
	b := []float64{3, 4, 0}
	if got := Residual(a, b, x); got != 5 {
		t.Errorf("Residual = %g, want 5", got)
	}
}

// Property: for random strictly diagonally dominant SPD systems, both
// Jacobi and Gauss-Seidel converge to the true solution.
func TestPropertyStationaryConvergence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := mats.DiagDominant(n, 1+rng.Intn(3), 1.3+rng.Float64())
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		for _, solve := range []func(*sparse.CSR, []float64, Options) (Result, error){Jacobi, GaussSeidel} {
			res, err := solve(a, b, Options{MaxIterations: 10000, Tolerance: 1e-10})
			if err != nil || !res.Converged {
				return false
			}
			for i := range xTrue {
				if math.Abs(res.X[i]-xTrue[i]) > 1e-6*(1+math.Abs(xTrue[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: CG error is monotonically non-increasing in A-norm; we check
// the weaker, still-true-in-floating-point property that it solves random
// SPD systems to tight tolerance within n iterations.
func TestPropertyCGExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		a := mats.DiagDominant(n, 2, 1.5)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		res, err := CG(a, b, Options{MaxIterations: 3 * n, Tolerance: 1e-10})
		if err != nil || !res.Converged {
			return false
		}
		for i := range xTrue {
			if math.Abs(res.X[i]-xTrue[i]) > 1e-6*(1+math.Abs(xTrue[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPCGJacobiSolves(t *testing.T) {
	a := laplace1D(50)
	b := onesRHS(a)
	res, err := PCGJacobi(a, b, Options{MaxIterations: 100, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("PCG not converged, residual %g", res.Residual)
	}
	checkSolvesOnes(t, "PCG", res.X, 1e-8)
}

func TestPCGJacobiBeatsCGOnBadlyScaledSystem(t *testing.T) {
	// A diagonally scaled SPD system: cond(A) huge, cond(D⁻¹A) small.
	// Jacobi preconditioning restores the well-scaled convergence.
	a := mats.ScaleSym(mats.DiagDominant(200, 2, 1.5), 1000)
	b := onesRHS(a)
	cg, err := CG(a, b, Options{MaxIterations: 2000, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	pcg, err := PCGJacobi(a, b, Options{MaxIterations: 2000, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !pcg.Converged {
		t.Fatal("PCG failed on scaled system")
	}
	if cg.Converged && pcg.Iterations >= cg.Iterations {
		t.Errorf("PCG took %d iterations, CG %d; preconditioning must help on scaled systems",
			pcg.Iterations, cg.Iterations)
	}
}

func TestPCGJacobiRejectsIndefinite(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1)
	if _, err := PCGJacobi(c.ToCSR(), []float64{1, 1}, Options{MaxIterations: 10}); err == nil {
		t.Error("expected PCG breakdown on indefinite matrix")
	}
}
