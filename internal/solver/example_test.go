package solver_test

import (
	"fmt"

	"repro/internal/mats"
	"repro/internal/solver"
	"repro/internal/vecmath"
)

// ExampleGaussSeidel shows the paper's CPU baseline on the model problem.
func ExampleGaussSeidel() {
	a := mats.Poisson2D(12, 12)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	res, err := solver.GaussSeidel(a, b, solver.Options{MaxIterations: 2000, Tolerance: 1e-10})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("converged: %v\n", res.Converged)
	// Output:
	// converged: true
}

// ExampleGMRES shows restarted GMRES with a Jacobi preconditioner.
func ExampleGMRES() {
	a := mats.Trefethen(300)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	prec, err := solver.NewJacobiPreconditioner(a)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := solver.GMRES(a, b, 30, prec, solver.Options{
		MaxIterations: 300, Tolerance: 1e-8 * vecmath.Nrm2(b),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("converged: %v\n", res.Converged)
	// Output:
	// converged: true
}
