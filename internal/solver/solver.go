package solver

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// Options configures an iterative solve.
type Options struct {
	// MaxIterations bounds the iteration count. Required (> 0).
	MaxIterations int
	// Tolerance is the absolute l2 residual target ‖b−Ax‖₂; 0 disables the
	// residual stopping test so exactly MaxIterations are run (the mode the
	// paper's per-iteration figures use).
	Tolerance float64
	// RecordHistory stores ‖b−Ax‖₂ after every iteration in Result.History.
	RecordHistory bool
	// InitialGuess, if non-nil, seeds x; otherwise the zero vector is used.
	// The slice is not modified.
	InitialGuess []float64
}

// Result reports the outcome of an iterative solve.
type Result struct {
	X          []float64
	Iterations int
	Residual   float64   // final ‖b−Ax‖₂
	Converged  bool      // met Tolerance before MaxIterations
	History    []float64 // per-iteration residuals if requested
}

// ErrDiverged is reported (wrapped) when the residual becomes non-finite.
var ErrDiverged = errors.New("solver: iteration diverged (non-finite residual)")

func (o Options) validate(a *sparse.CSR, b []float64) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("solver: matrix must be square, have %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return fmt.Errorf("solver: rhs length %d does not match matrix dimension %d", len(b), a.Rows)
	}
	if o.MaxIterations <= 0 {
		return fmt.Errorf("solver: MaxIterations must be positive, have %d", o.MaxIterations)
	}
	if o.InitialGuess != nil && len(o.InitialGuess) != a.Rows {
		return fmt.Errorf("solver: initial guess length %d does not match dimension %d", len(o.InitialGuess), a.Rows)
	}
	return nil
}

func (o Options) start(n int) []float64 {
	x := make([]float64, n)
	if o.InitialGuess != nil {
		copy(x, o.InitialGuess)
	}
	return x
}

// Residual computes ‖b − Ax‖₂.
func Residual(a *sparse.CSR, b, x []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(r, x)
	vecmath.Sub(r, b, r)
	return vecmath.Nrm2(r)
}

// finishStep updates the result bookkeeping shared by the stationary
// solvers; it returns true when the caller should stop iterating.
func finishStep(a *sparse.CSR, b, x []float64, opt Options, res *Result, iter int) (bool, error) {
	res.Iterations = iter
	needRes := opt.RecordHistory || opt.Tolerance > 0
	if !needRes {
		return false, nil
	}
	r := Residual(a, b, x)
	res.Residual = r
	if opt.RecordHistory {
		res.History = append(res.History, r)
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return true, fmt.Errorf("%w after %d iterations", ErrDiverged, iter)
	}
	if opt.Tolerance > 0 && r <= opt.Tolerance {
		res.Converged = true
		return true, nil
	}
	return false, nil
}

// Jacobi runs the synchronous Jacobi iteration
//
//	x_{k+1} = D⁻¹ (b − (L+U) x_k),
//
// the method of paper Eq. (2). Each sweep reads only the previous iterate.
func Jacobi(a *sparse.CSR, b []float64, opt Options) (Result, error) {
	return scaledJacobi(a, b, 1.0, opt)
}

// ScaledJacobi runs the damped iteration x_{k+1} = x_k + τ D⁻¹ (b − A x_k),
// the fix the paper suggests (§4.2) for SPD systems with ρ(B) > 1 such as
// s1rmt3m1: with τ = 2/(λ₁+λ_n) of D⁻¹A the iteration converges whenever A
// is SPD. See spectral.TauScaling for obtaining τ.
func ScaledJacobi(a *sparse.CSR, b []float64, tau float64, opt Options) (Result, error) {
	if tau <= 0 {
		return Result{}, fmt.Errorf("solver: ScaledJacobi requires τ > 0, have %g", tau)
	}
	return scaledJacobi(a, b, tau, opt)
}

func scaledJacobi(a *sparse.CSR, b []float64, tau float64, opt Options) (Result, error) {
	if err := opt.validate(a, b); err != nil {
		return Result{}, err
	}
	sp, err := sparse.NewSplitting(a)
	if err != nil {
		return Result{}, err
	}
	n := a.Rows
	x := opt.start(n)
	xn := make([]float64, n)
	res := Result{}
	for k := 1; k <= opt.MaxIterations; k++ {
		for i := 0; i < n; i++ {
			// x_i' = x_i + τ (b_i − Σ a_ij x_j) / a_ii
			s := b[i] - a.RowDot(i, x)
			xn[i] = x[i] + tau*s*sp.InvDiag[i]
		}
		x, xn = xn, x
		stop, err := finishStep(a, b, x, opt, &res, k)
		if err != nil {
			res.X = x
			return res, err
		}
		if stop {
			break
		}
	}
	res.X = x
	if opt.Tolerance == 0 || res.Converged {
		if !opt.RecordHistory && opt.Tolerance == 0 {
			res.Residual = Residual(a, b, x)
		}
		return res, nil
	}
	return res, nil
}

// GaussSeidel runs the synchronous forward Gauss-Seidel sweep: each
// component update immediately uses the freshest values of all previously
// updated components within the same sweep. This is the sequential CPU
// baseline of the paper.
func GaussSeidel(a *sparse.CSR, b []float64, opt Options) (Result, error) {
	return sor(a, b, 1.0, opt)
}

// SOR runs successive over-relaxation with factor omega ∈ (0, 2):
// omega = 1 reduces to Gauss-Seidel.
func SOR(a *sparse.CSR, b []float64, omega float64, opt Options) (Result, error) {
	if omega <= 0 || omega >= 2 {
		return Result{}, fmt.Errorf("solver: SOR requires ω ∈ (0,2), have %g", omega)
	}
	return sor(a, b, omega, opt)
}

func sor(a *sparse.CSR, b []float64, omega float64, opt Options) (Result, error) {
	if err := opt.validate(a, b); err != nil {
		return Result{}, err
	}
	sp, err := sparse.NewSplitting(a)
	if err != nil {
		return Result{}, err
	}
	n := a.Rows
	x := opt.start(n)
	res := Result{}
	for k := 1; k <= opt.MaxIterations; k++ {
		for i := 0; i < n; i++ {
			// In-place sweep: entries j<i are already the new values.
			s := b[i]
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				j := a.ColIdx[p]
				if j != i {
					s -= a.Val[p] * x[j]
				}
			}
			gs := s * sp.InvDiag[i]
			x[i] = (1-omega)*x[i] + omega*gs
		}
		stop, err := finishStep(a, b, x, opt, &res, k)
		if err != nil {
			res.X = x
			return res, err
		}
		if stop {
			break
		}
	}
	res.X = x
	if !opt.RecordHistory && opt.Tolerance == 0 {
		res.Residual = Residual(a, b, x)
	}
	return res, nil
}

// PCGJacobi runs the Jacobi- (diagonally-) preconditioned conjugate
// gradient method. Its convergence is governed by cond(D⁻¹A) instead of
// cond(A), which for badly scaled SPD systems (the fv family: cond(A)≈1e5,
// cond(D⁻¹A)≈13) is the difference between thousands of iterations and a
// few dozen. The paper's "highly tuned CG" baseline (§4.4, Figure 9) is
// modeled by this solver.
func PCGJacobi(a *sparse.CSR, b []float64, opt Options) (Result, error) {
	if err := opt.validate(a, b); err != nil {
		return Result{}, err
	}
	sp, err := sparse.NewSplitting(a)
	if err != nil {
		return Result{}, err
	}
	n := a.Rows
	x := opt.start(n)
	r := make([]float64, n)
	a.MulVec(r, x)
	vecmath.Sub(r, b, r) // r = b − Ax
	z := make([]float64, n)
	applyInvDiag(sp, z, r)
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	res := Result{}
	rz := vecmath.Dot(r, z)
	for k := 1; k <= opt.MaxIterations; k++ {
		a.MulVec(ap, p)
		pap := vecmath.Dot(p, ap)
		if pap <= 0 {
			res.X = x
			res.Residual = vecmath.Nrm2(r)
			return res, fmt.Errorf("solver: PCG breakdown pᵀAp = %g ≤ 0 at iteration %d (matrix not SPD?)", pap, k)
		}
		alpha := rz / pap
		vecmath.Axpy(alpha, p, x)
		vecmath.Axpy(-alpha, ap, r)
		resNorm := vecmath.Nrm2(r)
		res.Iterations = k
		res.Residual = resNorm
		if opt.RecordHistory {
			res.History = append(res.History, resNorm)
		}
		if math.IsNaN(resNorm) || math.IsInf(resNorm, 0) {
			res.X = x
			return res, fmt.Errorf("%w after %d iterations", ErrDiverged, k)
		}
		if opt.Tolerance > 0 && resNorm <= opt.Tolerance {
			res.Converged = true
			break
		}
		applyInvDiag(sp, z, r)
		rzNew := vecmath.Dot(r, z)
		beta := rzNew / rz
		vecmath.Axpby(1, z, beta, p)
		rz = rzNew
	}
	res.X = x
	return res, nil
}

// applyInvDiag computes z = D⁻¹ r.
func applyInvDiag(sp *sparse.Splitting, z, r []float64) {
	for i := range z {
		z[i] = sp.InvDiag[i] * r[i]
	}
}

// CG runs the (unpreconditioned) conjugate gradient method for SPD
// systems. One iteration costs one SpMV plus a few BLAS-1 operations. For
// the paper's Figure 9 baseline see PCGJacobi.
func CG(a *sparse.CSR, b []float64, opt Options) (Result, error) {
	if err := opt.validate(a, b); err != nil {
		return Result{}, err
	}
	n := a.Rows
	x := opt.start(n)
	r := make([]float64, n)
	a.MulVec(r, x)
	vecmath.Sub(r, b, r) // r = b − Ax
	p := append([]float64(nil), r...)
	ap := make([]float64, n)
	res := Result{}
	rr := vecmath.Dot(r, r)
	for k := 1; k <= opt.MaxIterations; k++ {
		a.MulVec(ap, p)
		pap := vecmath.Dot(p, ap)
		if pap <= 0 {
			res.X = x
			res.Residual = math.Sqrt(rr)
			return res, fmt.Errorf("solver: CG breakdown pᵀAp = %g ≤ 0 at iteration %d (matrix not SPD?)", pap, k)
		}
		alpha := rr / pap
		vecmath.Axpy(alpha, p, x)
		vecmath.Axpy(-alpha, ap, r)
		rrNew := vecmath.Dot(r, r)
		res.Iterations = k
		resNorm := math.Sqrt(rrNew)
		res.Residual = resNorm
		if opt.RecordHistory {
			res.History = append(res.History, resNorm)
		}
		if math.IsNaN(resNorm) || math.IsInf(resNorm, 0) {
			res.X = x
			return res, fmt.Errorf("%w after %d iterations", ErrDiverged, k)
		}
		if opt.Tolerance > 0 && resNorm <= opt.Tolerance {
			res.Converged = true
			break
		}
		beta := rrNew / rr
		vecmath.Axpby(1, r, beta, p)
		rr = rrNew
	}
	res.X = x
	return res, nil
}
