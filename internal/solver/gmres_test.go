package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mats"
	"repro/internal/sparse"
)

// nonsym builds a nonsymmetric strictly diagonally dominant matrix
// (a convection-diffusion-like upwind stencil) that CG cannot handle but
// GMRES can.
func nonsym(n int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 4)
		if i > 0 {
			c.Add(i, i-1, -2.5) // upwind: asymmetric couplings
		}
		if i+1 < n {
			c.Add(i, i+1, -0.5)
		}
	}
	return c.ToCSR()
}

func TestGMRESSolvesSymmetric(t *testing.T) {
	a := laplace1D(60)
	b := onesRHS(a)
	res, err := GMRES(a, b, 30, nil, Options{MaxIterations: 300, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: residual %g after %d iterations", res.Residual, res.Iterations)
	}
	checkSolvesOnes(t, "GMRES", res.X, 1e-7)
}

func TestGMRESSolvesNonsymmetric(t *testing.T) {
	a := nonsym(80)
	b := onesRHS(a)
	res, err := GMRES(a, b, 40, nil, Options{MaxIterations: 400, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: residual %g", res.Residual)
	}
	checkSolvesOnes(t, "GMRES-nonsym", res.X, 1e-7)
	// CG must break down or fail on the same system.
	if cg, err := CG(a, b, Options{MaxIterations: 400, Tolerance: 1e-10}); err == nil && cg.Converged {
		// CG can occasionally luck out on mildly nonsymmetric systems; make
		// sure at least the solution is wrong or it took absurdly long.
		wrong := false
		for _, v := range cg.X {
			if math.Abs(v-1) > 1e-5 {
				wrong = true
				break
			}
		}
		if !wrong {
			t.Log("note: CG happened to converge on this nonsymmetric system")
		}
	}
}

func TestGMRESRestartEquivalence(t *testing.T) {
	// Full GMRES (restart ≥ n) must converge within n iterations.
	a := laplace1D(40)
	b := onesRHS(a)
	res, err := GMRES(a, b, 40, nil, Options{MaxIterations: 45, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 40 {
		t.Errorf("full GMRES should finish within n iterations: conv=%v iters=%d", res.Converged, res.Iterations)
	}
}

func TestGMRESJacobiPreconditioner(t *testing.T) {
	// A badly scaled system: Jacobi preconditioning restores fast Krylov
	// convergence.
	a := mats.ScaleSym(mats.DiagDominant(150, 2, 1.5), 300)
	b := onesRHS(a)
	plain, err := GMRES(a, b, 30, nil, Options{MaxIterations: 600, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	prec, err := NewJacobiPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := GMRES(a, b, 30, prec, Options{MaxIterations: 600, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged {
		t.Fatal("preconditioned GMRES failed")
	}
	if plain.Converged && pre.Iterations >= plain.Iterations {
		t.Errorf("Jacobi preconditioning should reduce iterations: %d vs %d", pre.Iterations, plain.Iterations)
	}
}

func TestGMRESValidation(t *testing.T) {
	a := laplace1D(5)
	b := onesRHS(a)
	if _, err := GMRES(a, b, 0, nil, Options{MaxIterations: 5}); err == nil {
		t.Error("expected restart validation error")
	}
	if _, err := GMRES(a, b[:2], 5, nil, Options{MaxIterations: 5}); err == nil {
		t.Error("expected rhs length error")
	}
}

func TestGMRESHistoryDecreases(t *testing.T) {
	a := laplace1D(50)
	b := onesRHS(a)
	res, err := GMRES(a, b, 50, nil, Options{MaxIterations: 50, Tolerance: 1e-12, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]*(1+1e-12) {
			t.Fatalf("GMRES residual estimate increased at %d: %g -> %g",
				i, res.History[i-1], res.History[i])
		}
	}
}

func TestIdentityPreconditioner(t *testing.T) {
	var p IdentityPreconditioner
	z := make([]float64, 3)
	if err := p.Apply(z, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if z[1] != 2 {
		t.Error("identity broken")
	}
}

func TestJacobiPreconditionerApply(t *testing.T) {
	a := laplace1D(4) // diag 2
	p, err := NewJacobiPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 4)
	if err := p.Apply(z, []float64{2, 4, 6, 8}); err != nil {
		t.Fatal(err)
	}
	if z[0] != 1 || z[3] != 4 {
		t.Errorf("apply = %v", z)
	}
	if err := p.Apply(z[:2], []float64{1, 2}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestGMRESRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		n := 20 + rng.Intn(60)
		a := mats.DiagDominant(n, 1+rng.Intn(3), 1.4)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		res, err := GMRES(a, b, 25, nil, Options{MaxIterations: 500, Tolerance: 1e-10})
		if err != nil || !res.Converged {
			t.Fatalf("trial %d failed: %v", trial, err)
		}
		for i := range xTrue {
			if math.Abs(res.X[i]-xTrue[i]) > 1e-6*(1+math.Abs(xTrue[i])) {
				t.Fatalf("trial %d: wrong solution at %d", trial, i)
			}
		}
	}
}
