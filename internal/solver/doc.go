// Package solver implements the synchronous baseline methods the paper
// compares against: Jacobi, Gauss-Seidel, SOR, the τ-scaled Jacobi of §4.2,
// and Conjugate Gradients (the "highly tuned CG" of §4.4). All solvers share
// a common Options/Result interface and record per-iteration residual
// histories so the experiment harness can regenerate the paper's
// convergence figures.
package solver
