package solver

import (
	"fmt"
	"math"

	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// ChebyshevJacobi runs the Chebyshev semi-iterative acceleration of the
// Jacobi (diagonally preconditioned) iteration. Paper §4.2 rescues
// ρ(B) > 1 systems with the stationary damping τ = 2/(λ₁+λ_n) of D⁻¹A,
// whose rate is (κ−1)/(κ+1) with κ = λ_n/λ₁; Chebyshev acceleration uses
// the same two spectrum bounds but varies the step, improving the rate to
// (√κ−1)/(√κ+1) — the square-root speedup, at the cost of no additional
// information. lmin and lmax must bound the spectrum of D⁻¹A from below
// and above (spectral.LanczosExtremes on the normalized matrix provides
// them).
func ChebyshevJacobi(a *sparse.CSR, b []float64, lmin, lmax float64, opt Options) (Result, error) {
	if err := opt.validate(a, b); err != nil {
		return Result{}, err
	}
	if !(0 < lmin && lmin < lmax) {
		return Result{}, fmt.Errorf("solver: Chebyshev needs 0 < lmin < lmax, have %g, %g", lmin, lmax)
	}
	sp, err := sparse.NewSplitting(a)
	if err != nil {
		return Result{}, err
	}
	n := a.Rows
	x := opt.start(n)
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	res := Result{}

	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2
	var alpha, beta float64

	computeResidual := func() {
		a.MulVec(r, x)
		vecmath.Sub(r, b, r)
	}
	computeResidual()

	for k := 1; k <= opt.MaxIterations; k++ {
		applyInvDiag(sp, z, r) // z = D⁻¹ r
		switch k {
		case 1:
			vecmath.Copy(p, z)
			alpha = 1 / theta
		case 2:
			beta = 0.5 * (delta * alpha) * (delta * alpha)
			alpha = 1 / (theta - beta/alpha)
			vecmath.Axpby(1, z, beta, p)
		default:
			beta = (delta * alpha / 2) * (delta * alpha / 2)
			alpha = 1 / (theta - beta/alpha)
			vecmath.Axpby(1, z, beta, p)
		}
		vecmath.Axpy(alpha, p, x)
		computeResidual()
		nrm := vecmath.Nrm2(r)
		res.Iterations = k
		res.Residual = nrm
		if opt.RecordHistory {
			res.History = append(res.History, nrm)
		}
		if math.IsNaN(nrm) || math.IsInf(nrm, 0) {
			res.X = x
			return res, fmt.Errorf("%w after %d iterations", ErrDiverged, k)
		}
		if opt.Tolerance > 0 && nrm <= opt.Tolerance {
			res.Converged = true
			break
		}
	}
	res.X = x
	return res, nil
}
