package solver

import (
	"fmt"

	"repro/internal/sparse"
)

// SSOR runs the symmetric successive over-relaxation iteration: each step
// is a forward SOR sweep followed by a backward one. The resulting
// iteration operator is symmetric (for symmetric A), which is what makes
// SSOR — unlike plain SOR — usable inside CG-type accelerators; it rounds
// out the classical relaxation family next to the paper's Jacobi and
// Gauss-Seidel baselines. omega = 1 gives symmetric Gauss-Seidel.
func SSOR(a *sparse.CSR, b []float64, omega float64, opt Options) (Result, error) {
	if omega <= 0 || omega >= 2 {
		return Result{}, fmt.Errorf("solver: SSOR requires ω ∈ (0,2), have %g", omega)
	}
	if err := opt.validate(a, b); err != nil {
		return Result{}, err
	}
	sp, err := sparse.NewSplitting(a)
	if err != nil {
		return Result{}, err
	}
	n := a.Rows
	x := opt.start(n)
	res := Result{}
	sweep := func(start, end, step int) {
		for i := start; i != end; i += step {
			s := b[i]
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				j := a.ColIdx[p]
				if j != i {
					s -= a.Val[p] * x[j]
				}
			}
			gs := s * sp.InvDiag[i]
			x[i] = (1-omega)*x[i] + omega*gs
		}
	}
	for k := 1; k <= opt.MaxIterations; k++ {
		sweep(0, n, 1)
		sweep(n-1, -1, -1)
		stop, err := finishStep(a, b, x, opt, &res, k)
		if err != nil {
			res.X = x
			return res, err
		}
		if stop {
			break
		}
	}
	res.X = x
	if !opt.RecordHistory && opt.Tolerance == 0 {
		res.Residual = Residual(a, b, x)
	}
	return res, nil
}
