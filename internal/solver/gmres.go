package solver

import (
	"fmt"
	"math"

	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// Preconditioner applies z = M⁻¹r. Implementations need not be symmetric
// or even linear across calls (GMRES tolerates a fixed nonsymmetric M;
// use modest restart lengths if M varies slightly between applications).
//
// The paper's §5 outlook — component-wise relaxation as a preconditioner —
// is realized by core.AsyncPreconditioner, which wraps a few fixed-seed
// block-asynchronous sweeps.
type Preconditioner interface {
	Apply(z, r []float64) error
}

// IdentityPreconditioner is M = I (plain GMRES).
type IdentityPreconditioner struct{}

// Apply implements Preconditioner.
func (IdentityPreconditioner) Apply(z, r []float64) error {
	vecmath.Copy(z, r)
	return nil
}

// JacobiPreconditioner is M = D (diagonal scaling).
type JacobiPreconditioner struct {
	invDiag []float64
}

// NewJacobiPreconditioner extracts D⁻¹ from A.
func NewJacobiPreconditioner(a *sparse.CSR) (*JacobiPreconditioner, error) {
	sp, err := sparse.NewSplitting(a)
	if err != nil {
		return nil, err
	}
	return &JacobiPreconditioner{invDiag: sp.InvDiag}, nil
}

// Apply implements Preconditioner.
func (p *JacobiPreconditioner) Apply(z, r []float64) error {
	if len(z) != len(p.invDiag) || len(r) != len(p.invDiag) {
		return fmt.Errorf("solver: JacobiPreconditioner dimension mismatch")
	}
	for i := range z {
		z[i] = p.invDiag[i] * r[i]
	}
	return nil
}

// GMRES solves Ax = b with restarted, right-preconditioned GMRES(m):
// Arnoldi with modified Gram-Schmidt and Givens rotations on the
// Hessenberg matrix. A need not be symmetric — this is the Krylov method
// the paper's introduction names alongside CG for general systems.
//
// restart is the Krylov subspace dimension m (30 is a common default);
// prec may be nil for plain GMRES. Options.MaxIterations bounds the total
// number of inner iterations across restarts; Options.Tolerance is the
// absolute residual target (0: run all iterations).
func GMRES(a *sparse.CSR, b []float64, restart int, prec Preconditioner, opt Options) (Result, error) {
	if err := opt.validate(a, b); err != nil {
		return Result{}, err
	}
	if restart <= 0 {
		return Result{}, fmt.Errorf("solver: GMRES restart must be positive, have %d", restart)
	}
	if prec == nil {
		prec = IdentityPreconditioner{}
	}
	n := a.Rows
	if restart > n {
		restart = n
	}
	x := opt.start(n)
	res := Result{}

	// Workspaces reused across restart cycles.
	v := make([][]float64, restart+1) // Krylov basis
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, restart+1) // Hessenberg, h[i][j] = H(i,j)
	for i := range h {
		h[i] = make([]float64, restart)
	}
	cs := make([]float64, restart) // Givens cosines
	sn := make([]float64, restart) // Givens sines
	g := make([]float64, restart+1)
	z := make([]float64, n)
	w := make([]float64, n)
	y := make([]float64, restart)

	totalIters := 0
	for totalIters < opt.MaxIterations {
		// r0 = b − Ax.
		a.MulVec(w, x)
		vecmath.Sub(v[0], b, w)
		beta := vecmath.Nrm2(v[0])
		res.Residual = beta
		if opt.RecordHistory && totalIters == 0 {
			// Initial residual is not an iteration; history records
			// per-inner-iteration estimates below.
			_ = beta
		}
		if math.IsNaN(beta) || math.IsInf(beta, 0) {
			res.X = x
			return res, fmt.Errorf("%w after %d iterations", ErrDiverged, totalIters)
		}
		if opt.Tolerance > 0 && beta <= opt.Tolerance {
			res.Converged = true
			break
		}
		if beta == 0 {
			res.Converged = true
			break
		}
		vecmath.Scale(1/beta, v[0])
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0 // inner iterations completed this cycle
		for ; k < restart && totalIters < opt.MaxIterations; k++ {
			// w = A M⁻¹ v_k.
			if err := prec.Apply(z, v[k]); err != nil {
				res.X = x
				return res, fmt.Errorf("solver: GMRES preconditioner: %w", err)
			}
			a.MulVec(w, z)
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = vecmath.Dot(w, v[i])
				vecmath.Axpy(-h[i][k], v[i], w)
			}
			h[k+1][k] = vecmath.Nrm2(w)
			if h[k+1][k] > 0 {
				vecmath.Copy(v[k+1], w)
				vecmath.Scale(1/h[k+1][k], v[k+1])
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation annihilating h[k+1][k].
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k] = h[k][k] / denom
				sn[k] = h[k+1][k] / denom
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]

			totalIters++
			res.Iterations = totalIters
			est := math.Abs(g[k+1])
			res.Residual = est
			if opt.RecordHistory {
				res.History = append(res.History, est)
			}
			if opt.Tolerance > 0 && est <= opt.Tolerance {
				k++
				break
			}
		}

		// Solve the k×k triangular system H y = g and update
		// x += M⁻¹ (V_k y).
		for i := k - 1; i >= 0; i-- {
			sum := g[i]
			for j := i + 1; j < k; j++ {
				sum -= h[i][j] * y[j]
			}
			if h[i][i] == 0 {
				res.X = x
				return res, fmt.Errorf("solver: GMRES breakdown: zero pivot at %d", i)
			}
			y[i] = sum / h[i][i]
		}
		vecmath.Fill(w, 0)
		for j := 0; j < k; j++ {
			vecmath.Axpy(y[j], v[j], w)
		}
		if err := prec.Apply(z, w); err != nil {
			res.X = x
			return res, fmt.Errorf("solver: GMRES preconditioner: %w", err)
		}
		vecmath.Axpy(1, z, x)

		if opt.Tolerance > 0 && res.Residual <= opt.Tolerance {
			// Confirm with a true residual (the Givens estimate can drift).
			if true1 := Residual(a, b, x); true1 <= opt.Tolerance*1.01 {
				res.Residual = true1
				res.Converged = true
				break
			}
		}
	}
	res.X = x
	if !res.Converged {
		res.Residual = Residual(a, b, x)
		if opt.Tolerance > 0 && res.Residual <= opt.Tolerance {
			res.Converged = true
		}
	}
	return res, nil
}
