package solver

import "testing"

func TestSSORSolvesLaplace(t *testing.T) {
	a := laplace1D(40)
	b := onesRHS(a)
	res, err := SSOR(a, b, 1.0, Options{MaxIterations: 20000, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %g", res.Residual)
	}
	checkSolvesOnes(t, "SSOR", res.X, 1e-7)
}

func TestSSORDoubleSweepBeatsSingleGS(t *testing.T) {
	// One SSOR step does two sweeps, so it needs at most as many
	// iterations as forward Gauss-Seidel (usually about half).
	a := laplace1D(50)
	b := onesRHS(a)
	gs, err := GaussSeidel(a, b, Options{MaxIterations: 30000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := SSOR(a, b, 1.0, Options{MaxIterations: 30000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Converged || float64(ss.Iterations) > 0.55*float64(gs.Iterations) {
		t.Errorf("SSOR %d iterations vs GS %d; two sweeps per step should halve the count",
			ss.Iterations, gs.Iterations)
	}
}

func TestSSORRejectsBadOmega(t *testing.T) {
	a := laplace1D(5)
	for _, w := range []float64{0, 2} {
		if _, err := SSOR(a, onesRHS(a), w, Options{MaxIterations: 1}); err == nil {
			t.Errorf("SSOR accepted ω=%g", w)
		}
	}
}
