package solver

import (
	"testing"

	"repro/internal/mats"
	"repro/internal/sparse"
	"repro/internal/spectral"
)

// normalizedBounds returns Lanczos bounds for λ(D⁻¹A) via the normalized
// matrix.
func normalizedBounds(t *testing.T, a *sparse.CSR, steps int) (float64, float64) {
	t.Helper()
	nm, err := spectral.NormalizedMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	e, err := spectral.LanczosExtremes(nm, steps, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Widen slightly: Chebyshev needs true bounds, Lanczos gives interior
	// estimates.
	return e.Min * 0.99, e.Max * 1.01
}

func TestChebyshevSolvesLaplace(t *testing.T) {
	a := laplace1D(60)
	b := onesRHS(a)
	lmin, lmax := normalizedBounds(t, a, 60)
	res, err := ChebyshevJacobi(a, b, lmin, lmax, Options{MaxIterations: 2000, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %g", res.Residual)
	}
	checkSolvesOnes(t, "chebyshev", res.X, 1e-7)
}

func TestChebyshevBeatsScaledJacobi(t *testing.T) {
	// The square-root speedup: on an ill-conditioned SPD system Chebyshev
	// needs ~√κ iterations vs ~κ for optimally damped Jacobi.
	a := laplace1D(120) // κ(D⁻¹A) ≈ 5900
	b := onesRHS(a)
	lmin, lmax := normalizedBounds(t, a, 120)
	tau := 2 / (lmin + lmax)
	sj, err := ScaledJacobi(a, b, tau, Options{MaxIterations: 60000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := ChebyshevJacobi(a, b, lmin, lmax, Options{MaxIterations: 60000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !sj.Converged || !ch.Converged {
		t.Fatalf("convergence failed: sj=%v ch=%v", sj.Converged, ch.Converged)
	}
	if !(ch.Iterations*5 < sj.Iterations) {
		t.Errorf("Chebyshev (%d iters) should beat scaled Jacobi (%d) by ≫5x on κ≈5900", ch.Iterations, sj.Iterations)
	}
}

func TestChebyshevRescuesS1RMT3M1(t *testing.T) {
	// Combines the §4.2 rescue with acceleration: converges on the
	// ρ(B)≈2.66 system where plain relaxation diverges.
	a := mats.S1RMT3M1(300)
	b := onesRHS(a)
	lmin, lmax := normalizedBounds(t, a, 200)
	res, err := ChebyshevJacobi(a, b, lmin, lmax, Options{MaxIterations: 5000, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	// κ(D⁻¹A) ≈ 2e6 here, so the Chebyshev factor is ≈ 1−2/√κ ≈ 0.9986:
	// 5000 iterations buy roughly four orders of magnitude — convergence,
	// not speed (the point is that plain relaxation *diverges*).
	h := res.History
	if !(h[len(h)-1] < h[0]*1e-4) {
		t.Errorf("Chebyshev should converge on s1rmt3m1: %g -> %g", h[0], h[len(h)-1])
	}
}

func TestChebyshevValidation(t *testing.T) {
	a := laplace1D(5)
	b := onesRHS(a)
	if _, err := ChebyshevJacobi(a, b, 0, 1, Options{MaxIterations: 1}); err == nil {
		t.Error("expected error for lmin=0")
	}
	if _, err := ChebyshevJacobi(a, b, 2, 1, Options{MaxIterations: 1}); err == nil {
		t.Error("expected error for lmin>lmax")
	}
}
