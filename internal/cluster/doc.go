// Package cluster models the block-asynchronous iteration on a
// distributed-memory system — the setting of the paper's conclusion ("We
// developed block-asynchronous relaxation methods for GPU-accelerated
// clusters"). Each node owns a contiguous block of rows and iterates
// locally; off-node components arrive as messages over links with bounded,
// possibly heterogeneous delays. Staleness is therefore explicit: a node
// computing at tick t sees neighbour values from tick t − delay(link) — the
// Chazan–Miranker shift function s(k, i) realized as network latency, with
// the bounded-shift condition (2) holding by construction.
//
// The engine advances in simulated ticks. On every tick each node performs
// one async-(k) update of its block against its current (stale) view of
// the off-node components and publishes its boundary values; a message
// published at tick t on a link with delay d becomes visible at tick t+d.
// Nodes may also drop out (fault injection) without stopping the others —
// the cluster-level version of the paper's §4.5 experiment.
package cluster
