// Package cluster models the block-asynchronous iteration on a
// distributed-memory system — the setting of the paper's conclusion ("We
// developed block-asynchronous relaxation methods for GPU-accelerated
// clusters"). Each node owns a contiguous block of rows and iterates
// locally; off-node components arrive as messages over links with bounded,
// possibly heterogeneous delays. Staleness is therefore explicit: a node
// computing at tick t sees neighbour values from tick t − delay(link) — the
// Chazan–Miranker shift function s(k, i) realized as network latency, with
// the bounded-shift condition (2) holding by construction.
//
// The execution is live, not a tick model: the package runs one shard
// goroutine per node on the core sharded executor (core.SolveSharded), and
// the delays are realized as IterateViews over a publication ring. On every
// tick each node performs one async-(k) update of its block against its
// delayed view of the off-node components and publishes its values; a value
// published at tick t on a link with delay d becomes visible at tick t+d.
// Because every delay is at least one tick, readers never touch a slot a
// writer is filling — the concurrent execution is race-free and
// deterministic by construction. Nodes may also drop out (fault injection)
// or run at a fraction of full speed without stopping the others — the
// cluster-level version of the paper's §4.5 experiment and its
// heterogeneous-hardware motivation.
package cluster
