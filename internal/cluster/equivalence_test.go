package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mats"
)

// TestZeroDelayMatchesGoroutineEngine: with MaxDelay 0 every link is live
// and the nodes execute sequentially in the seeded dispatch order, which is
// exactly the core goroutine engine with one worker over the same block
// partition — bit-identical iterate, same tick count.
func TestZeroDelayMatchesGoroutineEngine(t *testing.T) {
	a := mats.Poisson2D(16, 16)
	b := onesRHS(a)
	const nodes = 4
	res, err := Solve(a, b, Options{
		Nodes:      nodes,
		LocalIters: 2,
		MaxDelay:   0,
		MaxTicks:   2000,
		Tolerance:  1e-9,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %g", res.Residual)
	}
	if res.MaxShift != 0 {
		t.Errorf("MaxShift %d, want 0 at zero delay", res.MaxShift)
	}
	want, err := core.Solve(a, b, core.Options{
		BlockSize:      (a.Rows + nodes - 1) / nodes,
		LocalIters:     2,
		MaxGlobalIters: 2000,
		Tolerance:      1e-9,
		Seed:           5,
		Engine:         core.EngineGoroutine,
		Workers:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != want.GlobalIterations {
		t.Errorf("cluster took %d ticks, goroutine engine %d iterations", res.Ticks, want.GlobalIterations)
	}
	for i := range want.X {
		if res.X[i] != want.X[i] {
			t.Fatalf("X[%d] = %v, want bit-identical %v", i, res.X[i], want.X[i])
		}
	}
}

// TestClusterDeterministicUnderConcurrency pins the delay ring's structural
// guarantee: with MaxDelay ≥ 1 every off-node read resolves to a slot
// published in an earlier tick, so the concurrent execution is
// deterministic — two runs with the same seed agree bit for bit, residual
// history included.
func TestClusterDeterministicUnderConcurrency(t *testing.T) {
	a := mats.Trefethen(400)
	b := onesRHS(a)
	opt := Options{
		Nodes:         8,
		LocalIters:    2,
		MaxDelay:      3,
		MaxTicks:      60,
		RecordHistory: true,
		Seed:          21,
	}
	first, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Ticks != second.Ticks {
		t.Fatalf("tick counts differ: %d vs %d", first.Ticks, second.Ticks)
	}
	for i := range first.X {
		if first.X[i] != second.X[i] {
			t.Fatalf("X[%d] differs across identical seeded runs: %v vs %v", i, first.X[i], second.X[i])
		}
	}
	for i := range first.History {
		if first.History[i] != second.History[i] {
			t.Fatalf("History[%d] differs: %v vs %v", i, first.History[i], second.History[i])
		}
	}
}

// TestClusterStressManyNodes is the concurrent executor's -race stress
// case: many nodes, heterogeneous delays, a dead node and a slow node in
// the same run.
func TestClusterStressManyNodes(t *testing.T) {
	a := mats.FV(25, 25, 0.5)
	b := onesRHS(a)
	res, err := Solve(a, b, Options{
		Nodes:      16,
		LocalIters: 2,
		MaxDelay:   4,
		MaxTicks:   50,
		Seed:       13,
		DeadNodes:  map[int]int{5: 30},
		NodeSpeeds: []int{1, 1, 1, 2, 1, 1, 1, 1, 1, 3, 1, 1, 1, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 50 {
		t.Fatalf("ran %d ticks, want all 50", res.Ticks)
	}
}
