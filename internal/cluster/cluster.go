package cluster

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sparse"
)

// Options configures a cluster solve.
type Options struct {
	// Nodes is the number of cluster nodes (each owns ≈ n/Nodes rows).
	// Required > 0.
	Nodes int
	// LocalIters is k in async-(k) applied inside each node per tick.
	LocalIters int
	// Omega is the relaxation weight of the nodes' local sweeps (0 means
	// the core default ω = 1).
	Omega float64
	// Method selects the nodes' update rule (core.RuleJacobi or
	// core.RuleRichardson2); Beta is the momentum coefficient of the
	// second-order rule. Both follow the core.Options contract, so a
	// DelaySweep over a richardson2 configuration measures exactly how the
	// momentum term tolerates bounded staleness.
	Method core.RuleKind
	Beta   float64
	// MaxDelay is the largest link delay in ticks. With MaxDelay ≥ 1 each
	// directed link gets a fixed delay drawn uniformly from [1, MaxDelay],
	// seeded, and the nodes execute concurrently — the delay ring makes
	// every off-node read independent of in-flight writes, so the result
	// is deterministic by construction. MaxDelay 0 is the shared-memory
	// degenerate case: all links are live and the nodes execute
	// sequentially in the seeded chaotic dispatch order, which is exactly
	// the core goroutine engine's one-worker iteration (the equivalence
	// tests' anchor). Negative values are invalid.
	MaxDelay int
	// MaxTicks bounds the simulation. Required > 0.
	MaxTicks int
	// Tolerance is the absolute global residual target; 0 runs MaxTicks.
	Tolerance float64
	// RecordHistory stores the global residual after every tick.
	RecordHistory bool
	Seed          int64
	// DeadNodes, if non-nil, maps node index → tick at which it stops
	// updating (its last published values keep circulating). Negative tick
	// entries are ignored.
	DeadNodes map[int]int
	// NodeSpeeds, if non-nil, models heterogeneous hardware — the paper's
	// AMC motivation ("the distinct GPUs processing with different
	// speed"): node i performs an update only every NodeSpeeds[i] ticks
	// (1 = full speed). Length must equal the realized node count; entries
	// must be ≥ 1. Slow nodes inject extra staleness but, being updated
	// infinitely often, never break Chazan–Miranker convergence.
	NodeSpeeds []int
}

func (o Options) validate(a *sparse.CSR, b []float64) error {
	switch {
	case a.Rows != a.Cols:
		return fmt.Errorf("cluster: matrix must be square, have %dx%d", a.Rows, a.Cols)
	case len(b) != a.Rows:
		return fmt.Errorf("cluster: rhs length %d does not match dimension %d", len(b), a.Rows)
	case o.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes must be positive, have %d", o.Nodes)
	case o.Nodes > a.Rows:
		return fmt.Errorf("cluster: more nodes (%d) than rows (%d)", o.Nodes, a.Rows)
	case o.LocalIters <= 0:
		return fmt.Errorf("cluster: LocalIters must be positive, have %d", o.LocalIters)
	case o.MaxDelay < 0:
		return fmt.Errorf("cluster: MaxDelay must be ≥ 0, have %d", o.MaxDelay)
	case o.MaxTicks <= 0:
		return fmt.Errorf("cluster: MaxTicks must be positive, have %d", o.MaxTicks)
	}
	for i, sp := range o.NodeSpeeds {
		if sp < 1 {
			return fmt.Errorf("cluster: NodeSpeeds[%d] = %d must be ≥ 1", i, sp)
		}
	}
	return nil
}

// Result reports a cluster solve.
type Result struct {
	X         []float64
	Ticks     int
	Residual  float64
	Converged bool
	History   []float64
	// Delays echoes the realized link-delay matrix: Delays[from][to].
	Delays [][]int
	// MaxShift is the largest staleness (in ticks) any node observed —
	// max link delay among links actually used, the realized s̄.
	MaxShift int
}

// ErrDiverged is reported when the residual leaves the finite range.
var ErrDiverged = errors.New("cluster: iteration diverged (non-finite residual)")

// Solve runs the distributed bounded-delay asynchronous iteration as a live
// concurrent execution on the core sharded executor: one shard (goroutine)
// per node, each sweeping its block of rows with async-(k) and reading
// off-node components through a delayed view of the publication ring — a
// value published at tick t over a link with delay d becomes visible at
// tick t+d, realizing the Chazan–Miranker shift function as link latency.
// Ticks are the executor's global iterations (the per-tick barrier is the
// publication point, not a data synchronization: reads never touch
// in-flight writes).
func Solve(a *sparse.CSR, b []float64, opt Options) (Result, error) {
	if err := opt.validate(a, b); err != nil {
		return Result{}, err
	}
	n := a.Rows
	blockSize := (n + opt.Nodes - 1) / opt.Nodes
	p, err := core.NewPlan(a, blockSize, false)
	if err != nil {
		return Result{}, err
	}
	part := p.Partition()
	nodes := part.NumBlocks()

	if opt.NodeSpeeds != nil && len(opt.NodeSpeeds) != nodes {
		return Result{}, fmt.Errorf("cluster: NodeSpeeds length %d, want %d nodes", len(opt.NodeSpeeds), nodes)
	}

	// Fixed per-link delays, seeded; the draw order is part of the package
	// contract (a given Seed realizes the same network since the tick-model
	// versions of this package).
	rng := rand.New(rand.NewSource(opt.Seed))
	delays := make([][]int, nodes)
	maxShift := 0
	for i := range delays {
		delays[i] = make([]int, nodes)
		for j := range delays[i] {
			if i == j || opt.MaxDelay == 0 {
				continue
			}
			delays[i][j] = 1 + rng.Intn(opt.MaxDelay)
			if delays[i][j] > maxShift {
				maxShift = delays[i][j]
			}
		}
	}

	var prov core.ShardViewProvider
	if opt.MaxDelay >= 1 {
		prov = newDelayViews(part, delays, opt.MaxDelay+1)
	}
	skip := func(tick, node int) bool {
		if deadAt, ok := opt.DeadNodes[node]; ok && deadAt >= 0 && tick >= deadAt {
			return true // node down: last published values keep circulating
		}
		if opt.NodeSpeeds != nil && tick%opt.NodeSpeeds[node] != 0 {
			return true // slow hardware: this node skips the tick
		}
		return false
	}

	inner, err := core.SolveSharded(p, b, core.Options{
		BlockSize:      blockSize,
		LocalIters:     opt.LocalIters,
		Omega:          opt.Omega,
		Method:         opt.Method,
		Beta:           opt.Beta,
		MaxGlobalIters: opt.MaxTicks,
		Tolerance:      opt.Tolerance,
		RecordHistory:  opt.RecordHistory,
		Seed:           opt.Seed,
	}, core.ShardOptions{
		Shards:     nodes,
		Sequential: opt.MaxDelay == 0,
		Provider:   prov,
		SkipShard:  skip,
	})
	res := Result{
		X:         inner.X,
		Ticks:     inner.GlobalIterations,
		Residual:  inner.Residual,
		Converged: inner.Converged,
		History:   inner.History,
		Delays:    delays,
		MaxShift:  maxShift,
	}
	if err != nil {
		if errors.Is(err, core.ErrDiverged) {
			return res, fmt.Errorf("%w after %d ticks", ErrDiverged, res.Ticks)
		}
		return Result{}, err
	}
	return res, nil
}

// delayViews realizes the bounded link delays as IterateViews over a
// publication ring: ring[t%window][node] holds node's block values as
// published at the end of tick t, and a reader with link delay d observes
// slot (t−d)%window. Delays are ≥ 1 and < window, so every slot a reader
// touches during tick t is disjoint from the slot the writers fill — the
// concurrent execution is race-free and deterministic by construction.
type delayViews struct {
	part    sparse.BlockPartition
	delays  [][]int
	window  int
	ring    [][][]float64 // ring[slot][node] = node's rows at that tick
	x       *core.AtomicVector
	rowNode []int32
	views   []delayView
}

func newDelayViews(part sparse.BlockPartition, delays [][]int, window int) *delayViews {
	nodes := part.NumBlocks()
	p := &delayViews{part: part, delays: delays, window: window}
	p.ring = make([][][]float64, window)
	for w := 0; w < window; w++ {
		p.ring[w] = make([][]float64, nodes)
		for i := 0; i < nodes; i++ {
			lo, hi := part.Bounds(i)
			p.ring[w][i] = make([]float64, hi-lo)
		}
	}
	// Precomputed row → owner map: the delayed Load is the innermost read
	// of every off-node matrix entry, too hot for a binary search.
	p.rowNode = make([]int32, part.N)
	for i := 0; i < nodes; i++ {
		lo, hi := part.Bounds(i)
		for r := lo; r < hi; r++ {
			p.rowNode[r] = int32(i)
		}
	}
	p.views = make([]delayView, nodes)
	for i := range p.views {
		p.views[i] = delayView{p: p, reader: i}
	}
	return p
}

// Bind implements core.ShardViewProvider. The ring starts zeroed — the
// iteration's initial values, matching a pre-tick-0 publication.
func (p *delayViews) Bind(x *core.AtomicVector, shards []core.Shard) { p.x = x }

// View implements core.ShardViewProvider.
func (p *delayViews) View(node, tick int) core.IterateView {
	v := &p.views[node]
	v.tick = tick
	return v
}

// Publish implements core.ShardViewProvider: node's rows become the ring
// entry for this tick.
func (p *delayViews) Publish(node, tick int) {
	lo, hi := p.part.Bounds(node)
	dst := p.ring[tick%p.window][node]
	for i := lo; i < hi; i++ {
		dst[i-lo] = p.x.Load(i)
	}
}

// delayView is one node's delayed window onto the cluster: reads resolve
// through the publication ring at this node's per-link delays.
type delayView struct {
	p      *delayViews
	reader int
	tick   int
}

// Load implements core.IterateView.
func (v *delayView) Load(j int) float64 {
	p := v.p
	src := int(p.rowNode[j])
	// A value published at tick t over a link with delay d is visible from
	// tick t+d on: the freshest visible is t = tick−d.
	from := v.tick - p.delays[src][v.reader]
	if from < 0 {
		from = 0
	}
	return p.ring[from%p.window][src][j-p.part.Starts[src]]
}

// DelaySweep measures how the convergence rate degrades with the link
// delay bound: for each delay it returns the ticks needed to reach tol
// (0 = not reached). The theory predicts graceful degradation — bounded
// staleness slows but never breaks convergence while ρ(|B|) < 1.
func DelaySweep(a *sparse.CSR, b []float64, base Options, delays []int, tol float64) ([]int, error) {
	out := make([]int, len(delays))
	for i, d := range delays {
		opt := base
		opt.MaxDelay = d
		opt.Tolerance = tol
		res, err := Solve(a, b, opt)
		if err != nil {
			return nil, fmt.Errorf("cluster: delay %d: %w", d, err)
		}
		if res.Converged {
			out[i] = res.Ticks
		}
	}
	return out, nil
}
