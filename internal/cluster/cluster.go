package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/solver"
	"repro/internal/sparse"
)

// Options configures a cluster solve.
type Options struct {
	// Nodes is the number of cluster nodes (each owns ≈ n/Nodes rows).
	// Required > 0.
	Nodes int
	// LocalIters is k in async-(k) applied inside each node per tick.
	LocalIters int
	// MaxDelay is the largest link delay in ticks (≥ 1: even the fastest
	// message is visible one tick later). Each directed link gets a fixed
	// delay drawn uniformly from [1, MaxDelay], seeded.
	MaxDelay int
	// MaxTicks bounds the simulation. Required > 0.
	MaxTicks int
	// Tolerance is the absolute global residual target; 0 runs MaxTicks.
	Tolerance float64
	// RecordHistory stores the global residual after every tick.
	RecordHistory bool
	Seed          int64
	// DeadNodes, if non-nil, maps node index → tick at which it stops
	// updating (its last published values keep circulating). Negative tick
	// entries are ignored.
	DeadNodes map[int]int
	// NodeSpeeds, if non-nil, models heterogeneous hardware — the paper's
	// AMC motivation ("the distinct GPUs processing with different
	// speed"): node i performs an update only every NodeSpeeds[i] ticks
	// (1 = full speed). Length must equal the realized node count; entries
	// must be ≥ 1. Slow nodes inject extra staleness but, being updated
	// infinitely often, never break Chazan–Miranker convergence.
	NodeSpeeds []int
}

func (o Options) validate(a *sparse.CSR, b []float64) error {
	switch {
	case a.Rows != a.Cols:
		return fmt.Errorf("cluster: matrix must be square, have %dx%d", a.Rows, a.Cols)
	case len(b) != a.Rows:
		return fmt.Errorf("cluster: rhs length %d does not match dimension %d", len(b), a.Rows)
	case o.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes must be positive, have %d", o.Nodes)
	case o.Nodes > a.Rows:
		return fmt.Errorf("cluster: more nodes (%d) than rows (%d)", o.Nodes, a.Rows)
	case o.LocalIters <= 0:
		return fmt.Errorf("cluster: LocalIters must be positive, have %d", o.LocalIters)
	case o.MaxDelay < 1:
		return fmt.Errorf("cluster: MaxDelay must be ≥ 1, have %d", o.MaxDelay)
	case o.MaxTicks <= 0:
		return fmt.Errorf("cluster: MaxTicks must be positive, have %d", o.MaxTicks)
	}
	for i, sp := range o.NodeSpeeds {
		if sp < 1 {
			return fmt.Errorf("cluster: NodeSpeeds[%d] = %d must be ≥ 1", i, sp)
		}
	}
	return nil
}

// Result reports a cluster solve.
type Result struct {
	X         []float64
	Ticks     int
	Residual  float64
	Converged bool
	History   []float64
	// Delays echoes the realized link-delay matrix: Delays[from][to].
	Delays [][]int
	// MaxShift is the largest staleness (in ticks) any node observed —
	// max link delay among links actually used, the realized s̄.
	MaxShift int
}

// ErrDiverged is reported when the residual leaves the finite range.
var ErrDiverged = errors.New("cluster: iteration diverged (non-finite residual)")

// Solve runs the distributed bounded-delay asynchronous iteration.
func Solve(a *sparse.CSR, b []float64, opt Options) (Result, error) {
	if err := opt.validate(a, b); err != nil {
		return Result{}, err
	}
	sp, err := sparse.NewSplitting(a)
	if err != nil {
		return Result{}, err
	}
	n := a.Rows
	blockSize := (n + opt.Nodes - 1) / opt.Nodes
	part := sparse.NewBlockPartition(n, blockSize)
	nodes := part.NumBlocks()

	if opt.NodeSpeeds != nil && len(opt.NodeSpeeds) != nodes {
		return Result{}, fmt.Errorf("cluster: NodeSpeeds length %d, want %d nodes", len(opt.NodeSpeeds), nodes)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	delays := make([][]int, nodes)
	maxShift := 0
	for i := range delays {
		delays[i] = make([]int, nodes)
		for j := range delays[i] {
			if i == j {
				continue
			}
			delays[i][j] = 1 + rng.Intn(opt.MaxDelay)
			if delays[i][j] > maxShift {
				maxShift = delays[i][j]
			}
		}
	}

	// published[t%W][i] is node i's block values as of tick t; W is the
	// history window needed to serve the largest delay.
	window := opt.MaxDelay + 1
	published := make([][][]float64, window)
	x := make([]float64, n) // current local values per owner node
	for w := 0; w < window; w++ {
		published[w] = make([][]float64, nodes)
		for i := 0; i < nodes; i++ {
			lo, hi := part.Bounds(i)
			published[w][i] = make([]float64, hi-lo)
		}
	}

	// view assembles, for a reader node, the full vector as it appears
	// through the link delays at the given tick.
	view := make([]float64, n)
	assembleView := func(reader, tick int) []float64 {
		for src := 0; src < nodes; src++ {
			lo, hi := part.Bounds(src)
			if src == reader {
				copy(view[lo:hi], x[lo:hi])
				continue
			}
			// A value published at tick t over a link with delay d is
			// visible from tick t+d on: the freshest visible is t = tick−d.
			from := tick - delays[src][reader]
			if from < 0 {
				from = 0
			}
			copy(view[lo:hi], published[from%window][src])
		}
		return view
	}

	res := Result{Delays: delays, MaxShift: maxShift}
	scratchNew := make([]float64, blockSize)
	for tick := 1; tick <= opt.MaxTicks; tick++ {
		for node := 0; node < nodes; node++ {
			if deadAt, ok := opt.DeadNodes[node]; ok && deadAt >= 0 && tick >= deadAt {
				continue // node down: last published values keep circulating
			}
			if opt.NodeSpeeds != nil && tick%opt.NodeSpeeds[node] != 0 {
				continue // slow hardware: this node skips the tick
			}
			v := assembleView(node, tick)
			lo, hi := part.Bounds(node)
			// k local Jacobi sweeps with the off-node view frozen.
			local := x[lo:hi]
			for sweep := 0; sweep < opt.LocalIters; sweep++ {
				xn := scratchNew[:hi-lo]
				for i := lo; i < hi; i++ {
					acc := b[i]
					for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
						j := a.ColIdx[p]
						switch {
						case j == i:
						case j >= lo && j < hi:
							acc -= a.Val[p] * local[j-lo]
						default:
							acc -= a.Val[p] * v[j]
						}
					}
					xn[i-lo] = acc * sp.InvDiag[i]
				}
				copy(local, xn)
			}
		}
		// Publish this tick's values.
		for node := 0; node < nodes; node++ {
			lo, hi := part.Bounds(node)
			copy(published[tick%window][node], x[lo:hi])
		}
		res.Ticks = tick
		if opt.RecordHistory || opt.Tolerance > 0 {
			r := solver.Residual(a, b, x)
			res.Residual = r
			if opt.RecordHistory {
				res.History = append(res.History, r)
			}
			if math.IsNaN(r) || math.IsInf(r, 0) {
				res.X = append([]float64(nil), x...)
				return res, fmt.Errorf("%w after %d ticks", ErrDiverged, tick)
			}
			if opt.Tolerance > 0 && r <= opt.Tolerance {
				res.Converged = true
				break
			}
		}
	}
	res.X = append([]float64(nil), x...)
	if !opt.RecordHistory && opt.Tolerance == 0 {
		res.Residual = solver.Residual(a, b, res.X)
	}
	return res, nil
}

// DelaySweep measures how the convergence rate degrades with the link
// delay bound: for each delay it returns the ticks needed to reach tol
// (0 = not reached). The theory predicts graceful degradation — bounded
// staleness slows but never breaks convergence while ρ(|B|) < 1.
func DelaySweep(a *sparse.CSR, b []float64, base Options, delays []int, tol float64) ([]int, error) {
	out := make([]int, len(delays))
	for i, d := range delays {
		opt := base
		opt.MaxDelay = d
		opt.Tolerance = tol
		res, err := Solve(a, b, opt)
		if err != nil {
			return nil, fmt.Errorf("cluster: delay %d: %w", d, err)
		}
		if res.Converged {
			out[i] = res.Ticks
		}
	}
	return out, nil
}
