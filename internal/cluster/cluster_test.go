package cluster

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mats"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

func onesRHS(a *sparse.CSR) []float64 {
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	return b
}

func TestValidation(t *testing.T) {
	a := mats.Poisson2D(6, 6)
	b := onesRHS(a)
	bad := []Options{
		{Nodes: 0, LocalIters: 1, MaxDelay: 1, MaxTicks: 1},
		{Nodes: 100, LocalIters: 1, MaxDelay: 1, MaxTicks: 1},
		{Nodes: 2, LocalIters: 0, MaxDelay: 1, MaxTicks: 1},
		{Nodes: 2, LocalIters: 1, MaxDelay: -1, MaxTicks: 1},
		{Nodes: 2, LocalIters: 1, MaxDelay: 1, MaxTicks: 0},
	}
	for i, o := range bad {
		if _, err := Solve(a, b, o); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := Solve(a, b[:3], Options{Nodes: 2, LocalIters: 1, MaxDelay: 1, MaxTicks: 1}); err == nil {
		t.Error("expected rhs length error")
	}
}

func TestClusterSolvesPoisson(t *testing.T) {
	a := mats.Poisson2D(20, 20)
	b := onesRHS(a)
	res, err := Solve(a, b, Options{
		Nodes: 8, LocalIters: 3, MaxDelay: 3, MaxTicks: 5000,
		Tolerance: 1e-9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: residual %g after %d ticks", res.Residual, res.Ticks)
	}
	for i, v := range res.X {
		if math.Abs(v-1) > 1e-7 {
			t.Fatalf("x[%d] = %g, want 1", i, v)
		}
	}
	if res.MaxShift < 1 || res.MaxShift > 3 {
		t.Errorf("MaxShift = %d, want in [1,3]", res.MaxShift)
	}
}

func TestDelayOneMatchesBlockJacobi(t *testing.T) {
	// MaxDelay = 1: every node sees the previous tick's values — exactly a
	// synchronous block-Jacobi(k) iteration, deterministic regardless of
	// seed.
	a := mats.Poisson2D(12, 12)
	b := onesRHS(a)
	opt := Options{Nodes: 4, LocalIters: 2, MaxDelay: 1, MaxTicks: 50, RecordHistory: true}
	r1, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Seed = 99
	r2, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.History {
		if r1.History[i] != r2.History[i] {
			t.Fatalf("delay-1 runs must be seed-independent (tick %d: %g vs %g)",
				i, r1.History[i], r2.History[i])
		}
	}
}

func TestLargerDelaysConvergeSlower(t *testing.T) {
	a := mats.FV(25, 25, 1.368)
	b := onesRHS(a)
	base := Options{Nodes: 8, LocalIters: 3, MaxTicks: 5000, Seed: 3}
	ticks, err := DelaySweep(a, b, base, []int{1, 4, 16}, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for i, tk := range ticks {
		if tk == 0 {
			t.Fatalf("delay case %d never converged (bounded staleness must not break convergence)", i)
		}
	}
	if !(ticks[0] <= ticks[1] && ticks[1] <= ticks[2]) {
		t.Errorf("ticks-to-convergence should grow with delay: %v", ticks)
	}
	// Graceful, not catastrophic: delay 16 costs at most ~16x delay 1.
	if ticks[2] > 20*ticks[0] {
		t.Errorf("degradation too steep: %v", ticks)
	}
}

func TestDeadNodeStallsResidual(t *testing.T) {
	a := mats.Trefethen(400)
	b := onesRHS(a)
	res, err := Solve(a, b, Options{
		Nodes: 8, LocalIters: 3, MaxDelay: 2, MaxTicks: 80,
		RecordHistory: true, Seed: 2,
		DeadNodes: map[int]int{3: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	last := h[len(h)-1]
	if !(last > 1e-3*h[9]) {
		t.Errorf("dead node should stall the residual near the failure level: %g -> %g", h[9], last)
	}
	// The clean run converges much deeper.
	clean, err := Solve(a, b, Options{
		Nodes: 8, LocalIters: 3, MaxDelay: 2, MaxTicks: 80,
		RecordHistory: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(clean.History[len(clean.History)-1] < last*1e-3) {
		t.Errorf("clean run (%g) should converge far below the failed run (%g)",
			clean.History[len(clean.History)-1], last)
	}
}

func TestClusterDiverges(t *testing.T) {
	a := mats.S1RMT3M1(200)
	b := onesRHS(a)
	_, err := Solve(a, b, Options{
		Nodes: 4, LocalIters: 2, MaxDelay: 2, MaxTicks: 500,
		Tolerance: 1e-10, Seed: 1,
	})
	if err == nil || !errors.Is(err, ErrDiverged) {
		t.Fatalf("expected ErrDiverged on ρ(B)>1 system, got %v", err)
	}
}

func TestClusterMatchesSequentialFixedPoint(t *testing.T) {
	// Whatever the delays, the converged answer is the system's solution.
	a := mats.DiagDominant(90, 2, 1.5)
	b := onesRHS(a)
	res, err := Solve(a, b, Options{
		Nodes: 6, LocalIters: 2, MaxDelay: 5, MaxTicks: 5000,
		Tolerance: 1e-10, Seed: 7,
	})
	if err != nil || !res.Converged {
		t.Fatalf("cluster solve failed: %v", err)
	}
	gs, err := solver.GaussSeidel(a, b, solver.Options{MaxIterations: 5000, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-gs.X[i]) > 1e-6 {
			t.Fatalf("fixed points differ at %d: %g vs %g", i, res.X[i], gs.X[i])
		}
	}
}

// Property: convergence holds for random node counts, delays and local
// iteration counts on diagonally dominant systems (Chazan–Miranker with
// bounded shift).
func TestPropertyClusterConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(seed int64, nodes8, delay8, k8 uint8) bool {
		a := mats.DiagDominant(64, 2, 1.6)
		b := onesRHS(a)
		res, err := Solve(a, b, Options{
			Nodes:      int(nodes8%8) + 1,
			LocalIters: int(k8%4) + 1,
			MaxDelay:   int(delay8%10) + 1,
			MaxTicks:   8000,
			Tolerance:  1e-9,
			Seed:       seed,
		})
		if err != nil || !res.Converged {
			return false
		}
		for _, v := range res.X {
			if math.Abs(v-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestHeterogeneousNodeSpeeds(t *testing.T) {
	a := mats.FV(25, 25, 1.368)
	b := onesRHS(a)
	base := Options{Nodes: 5, LocalIters: 3, MaxDelay: 2, MaxTicks: 10000, Tolerance: 1e-8, Seed: 4}

	uniform, err := Solve(a, b, base)
	if err != nil || !uniform.Converged {
		t.Fatalf("uniform cluster failed: %v", err)
	}

	hetero := base
	hetero.NodeSpeeds = []int{1, 1, 1, 1, 4} // one node at quarter speed
	res, err := Solve(a, b, hetero)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("heterogeneous cluster must still converge: %g after %d ticks", res.Residual, res.Ticks)
	}
	if res.Ticks < uniform.Ticks {
		t.Errorf("a slow node cannot speed things up: %d vs %d ticks", res.Ticks, uniform.Ticks)
	}
	// Graceful: bounded by ~speed factor of the slowest node.
	if res.Ticks > 6*uniform.Ticks {
		t.Errorf("degradation too steep: %d vs %d ticks", res.Ticks, uniform.Ticks)
	}
	for i, v := range res.X {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %g", i, v)
		}
	}
}

func TestNodeSpeedsValidation(t *testing.T) {
	a := mats.Poisson2D(6, 6)
	b := onesRHS(a)
	if _, err := Solve(a, b, Options{
		Nodes: 2, LocalIters: 1, MaxDelay: 1, MaxTicks: 10, NodeSpeeds: []int{1, 0},
	}); err == nil {
		t.Error("expected error for speed 0")
	}
	if _, err := Solve(a, b, Options{
		Nodes: 2, LocalIters: 1, MaxDelay: 1, MaxTicks: 10, NodeSpeeds: []int{1},
	}); err == nil {
		t.Error("expected error for wrong NodeSpeeds length")
	}
}
