package mats

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// Poisson3D builds the seven-point 3-D Poisson stencil on a w×h×d grid
// (diag 6, neighbours −1) — the "3D problem" half of the fv family's
// description and a standard stress test for block methods (blocks capture
// far less coupling per row than in 2-D).
func Poisson3D(w, h, d int) *sparse.CSR {
	if w <= 0 || h <= 0 || d <= 0 {
		panic(fmt.Sprintf("mats: Poisson3D(%d,%d,%d): grid must be positive", w, h, d))
	}
	n := w * h * d
	c := sparse.NewCOO(n, n)
	idx := func(x, y, z int) int { return (z*h+y)*w + x }
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := idx(x, y, z)
				c.Add(i, i, 6)
				if x > 0 {
					c.Add(i, idx(x-1, y, z), -1)
				}
				if x < w-1 {
					c.Add(i, idx(x+1, y, z), -1)
				}
				if y > 0 {
					c.Add(i, idx(x, y-1, z), -1)
				}
				if y < h-1 {
					c.Add(i, idx(x, y+1, z), -1)
				}
				if z > 0 {
					c.Add(i, idx(x, y, z-1), -1)
				}
				if z < d-1 {
					c.Add(i, idx(x, y, z+1), -1)
				}
			}
		}
	}
	return c.ToCSR()
}

// Anisotropic2D builds the five-point stencil for −εu_xx − u_yy on a w×h
// grid: diag 2(1+ε), x-neighbours −ε, y-neighbours −1. Strong anisotropy
// (ε ≪ 1) is the classical stress test for point smoothers — pointwise
// Jacobi barely damps the strongly coupled direction, which is exactly the
// failure mode block methods with direction-aligned blocks repair.
func Anisotropic2D(w, h int, eps float64) *sparse.CSR {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("mats: Anisotropic2D(%d,%d): grid must be positive", w, h))
	}
	if eps <= 0 {
		panic(fmt.Sprintf("mats: Anisotropic2D eps=%g must be positive", eps))
	}
	n := w * h
	c := sparse.NewCOO(n, n)
	idx := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := idx(x, y)
			c.Add(i, i, 2*(1+eps))
			if x > 0 {
				c.Add(i, idx(x-1, y), -eps)
			}
			if x < w-1 {
				c.Add(i, idx(x+1, y), -eps)
			}
			if y > 0 {
				c.Add(i, idx(x, y-1), -1)
			}
			if y < h-1 {
				c.Add(i, idx(x, y+1), -1)
			}
		}
	}
	return c.ToCSR()
}

// SPDWithSpectrum builds a dense-ish SPD matrix with (approximately) the
// prescribed eigenvalues: A = Qᵀ·diag(eigs)·Q with Q a product of `rots`
// random Givens rotations (seeded). The result stays reasonably sparse for
// small rot counts and has *exactly* the prescribed spectrum, which makes
// it the controlled input for convergence-rate experiments (ρ(B), cond can
// be dialed in directly).
func SPDWithSpectrum(eigs []float64, rots int, seed int64) *sparse.CSR {
	n := len(eigs)
	if n == 0 {
		panic("mats: SPDWithSpectrum needs at least one eigenvalue")
	}
	for i, e := range eigs {
		if e <= 0 {
			panic(fmt.Sprintf("mats: SPDWithSpectrum eigenvalue %d = %g must be positive", i, e))
		}
	}
	// Dense working representation (row-major); n is expected small-to-
	// moderate for experiment matrices.
	a := make([]float64, n*n)
	for i, e := range eigs {
		a[i*n+i] = e
	}
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rots; r++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		theta := rng.Float64() * math.Pi
		cs, sn := math.Cos(theta), math.Sin(theta)
		// A ← Gᵀ A G with the Givens rotation G in the (i, j) plane.
		for k := 0; k < n; k++ { // rows
			ai, aj := a[k*n+i], a[k*n+j]
			a[k*n+i] = cs*ai - sn*aj
			a[k*n+j] = sn*ai + cs*aj
		}
		for k := 0; k < n; k++ { // cols
			ai, aj := a[i*n+k], a[j*n+k]
			a[i*n+k] = cs*ai - sn*aj
			a[j*n+k] = sn*ai + cs*aj
		}
	}
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := a[i*n+j]; math.Abs(v) > 1e-14 {
				c.Add(i, j, v)
			}
		}
	}
	return c.ToCSR()
}
