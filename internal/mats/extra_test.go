package mats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/sparse"
	"repro/internal/spectral"
)

func TestPoisson3D(t *testing.T) {
	m := Poisson3D(4, 4, 4)
	if m.Rows != 64 {
		t.Fatalf("n = %d", m.Rows)
	}
	if !m.IsSymmetric(0) {
		t.Error("Poisson3D must be symmetric")
	}
	// Interior point (1,1,1) = idx (1*4+1)*4+1 = 21: 7 entries.
	i := 21
	if got := m.RowPtr[i+1] - m.RowPtr[i]; got != 7 {
		t.Errorf("interior row has %d entries, want 7", got)
	}
	if m.At(i, i) != 6 {
		t.Errorf("diagonal = %g, want 6", m.At(i, i))
	}
	// Corner: 3 neighbours.
	if got := m.RowPtr[1] - m.RowPtr[0]; got != 4 {
		t.Errorf("corner row has %d entries, want 4", got)
	}
	// z-neighbour distance w*h = 16.
	if m.At(i, i+16) != -1 {
		t.Errorf("z coupling missing: %g", m.At(i, i+16))
	}
}

func TestAnisotropic2D(t *testing.T) {
	eps := 0.01
	m := Anisotropic2D(5, 5, eps)
	if !m.IsSymmetric(0) {
		t.Error("must be symmetric")
	}
	i := 12 // interior
	if math.Abs(m.At(i, i)-2*(1+eps)) > 1e-15 {
		t.Errorf("diag = %g", m.At(i, i))
	}
	if m.At(i, i-1) != -eps || m.At(i, i-5) != -1 {
		t.Errorf("couplings: x %g, y %g", m.At(i, i-1), m.At(i, i-5))
	}
	// Still SPD (weakly dominant with positive shift on boundary rows).
	rho, err := spectral.JacobiSpectralRadius(m, 1)
	if err != nil {
		t.Logf("note: %v", err)
	}
	if rho >= 1 {
		t.Errorf("ρ(B) = %g, want < 1", rho)
	}
}

func TestAnisotropic2DPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Anisotropic2D(4, 4, 0)
}

func TestSPDWithSpectrumExactEigenvalues(t *testing.T) {
	eigs := []float64{0.5, 1, 2, 4, 8}
	m := SPDWithSpectrum(eigs, 40, 3)
	if !m.IsSymmetric(1e-10) {
		t.Fatal("must be symmetric")
	}
	// Lanczos on a 5x5 matrix resolves the extremes exactly.
	e, err := spectral.LanczosExtremes(m, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Min-0.5) > 1e-8 || math.Abs(e.Max-8) > 1e-8 {
		t.Errorf("extremes [%g, %g], want [0.5, 8]", e.Min, e.Max)
	}
	// Trace is invariant: must equal the eigenvalue sum.
	var tr float64
	for i := 0; i < m.Rows; i++ {
		tr += m.At(i, i)
	}
	want := 0.0
	for _, v := range eigs {
		want += v
	}
	if math.Abs(tr-want) > 1e-10 {
		t.Errorf("trace = %g, want %g", tr, want)
	}
}

func TestSPDWithSpectrumCondIsDialable(t *testing.T) {
	eigs := make([]float64, 20)
	for i := range eigs {
		eigs[i] = 1 + 99*float64(i)/19 // cond exactly 100
	}
	m := SPDWithSpectrum(eigs, 200, 5)
	k, err := spectral.ConditionNumber(m, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-100) > 1 {
		t.Errorf("cond = %g, want 100", k)
	}
}

func TestSPDWithSpectrumPanics(t *testing.T) {
	for _, f := range []func(){
		func() { SPDWithSpectrum(nil, 1, 1) },
		func() { SPDWithSpectrum([]float64{1, -1}, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPoisson3DBlocksWeakerThan2D(t *testing.T) {
	// The 3-D stencil's long-range z couplings leave more mass off-block
	// than the tiled 2-D stencil at comparable size — the structural reason
	// 3-D problems are harder for the block method.
	m3 := Poisson3D(8, 8, 8) // n=512
	m2 := FVTiled(23, 23, 1) // n=529
	p3 := sparse.NewBlockPartition(m3.Rows, 128)
	p2 := sparse.NewBlockPartition(m2.Rows, 128)
	mean := func(xs []float64) float64 {
		var s float64
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	f3 := mean(p3.OffBlockFraction(m3))
	f2 := mean(p2.OffBlockFraction(m2))
	if !(f3 > f2) {
		t.Errorf("3-D off-block fraction (%g) should exceed tiled 2-D (%g)", f3, f2)
	}
}

func TestSPDWithSpectrumSortedEigsViaLanczos(t *testing.T) {
	// Full-dimension Lanczos recovers the entire prescribed spectrum's
	// extremes for several random rotations (sanity across seeds).
	eigs := []float64{1, 3, 9}
	for seed := int64(0); seed < 4; seed++ {
		m := SPDWithSpectrum(eigs, 25, seed)
		e, err := spectral.LanczosExtremes(m, 3, seed+10)
		if err != nil {
			t.Fatal(err)
		}
		got := []float64{e.Min, e.Max}
		sort.Float64s(got)
		if math.Abs(got[0]-1) > 1e-8 || math.Abs(got[1]-9) > 1e-8 {
			t.Errorf("seed %d: extremes %v", seed, got)
		}
	}
}
