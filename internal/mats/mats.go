package mats

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// TestMatrix couples a generated matrix with its paper identity.
type TestMatrix struct {
	Name        string
	Description string
	A           *sparse.CSR
}

// Names lists the seven paper matrices in Table 1 order.
var Names = []string{
	"Chem97ZtZ", "fv1", "fv2", "fv3", "s1rmt3m1", "Trefethen_2000", "Trefethen_20000",
}

// Generate returns the named test matrix. Beyond the paper set, the
// parametric name "poisson2d_W" (odd W ≥ 5) generates the five-point
// Poisson operator on the W×W grid — the operator family the multigrid
// route admits. Unknown names return an error listing the available set.
func Generate(name string) (TestMatrix, error) {
	switch name {
	case "Chem97ZtZ":
		return TestMatrix{name, "statistical problem (analog)", Chem97ZtZ(2541)}, nil
	case "fv1":
		return TestMatrix{name, "2D/3D problem (analog)", FVTiled(98, 98, 1.368)}, nil
	case "fv2":
		return TestMatrix{name, "2D/3D problem (analog)", FVTiled(99, 99, 1.368)}, nil
	case "fv3":
		return TestMatrix{name, "2D/3D problem (analog)", FVTiled(99, 99, 0.0056)}, nil
	case "s1rmt3m1":
		return TestMatrix{name, "structural problem (analog)", S1RMT3M1(5489)}, nil
	case "Trefethen_2000":
		return TestMatrix{name, "combinatorial problem (exact)", Trefethen(2000)}, nil
	case "Trefethen_20000":
		return TestMatrix{name, "combinatorial problem (exact)", Trefethen(20000)}, nil
	default:
		if w, ok := poissonName(name); ok {
			return TestMatrix{name, "five-point 2-D Poisson (generated)", Poisson2D(w, w)}, nil
		}
		return TestMatrix{}, fmt.Errorf("mats: unknown matrix %q (have %v and poisson2d_W for odd W ≥ 5)", name, Names)
	}
}

// poissonName parses the parametric "poisson2d_W" name.
func poissonName(name string) (int, bool) {
	var w int
	if _, err := fmt.Sscanf(name, "poisson2d_%d", &w); err != nil {
		return 0, false
	}
	if fmt.Sprintf("poisson2d_%d", w) != name || w < 5 || w%2 == 0 {
		return 0, false
	}
	return w, true
}

// MustGenerate is Generate for known-good names; it panics on error.
func MustGenerate(name string) TestMatrix {
	m, err := Generate(name)
	if err != nil {
		panic(err)
	}
	return m
}

// All generates every paper matrix in Table 1 order.
func All() []TestMatrix {
	out := make([]TestMatrix, 0, len(Names))
	for _, n := range Names {
		out = append(out, MustGenerate(n))
	}
	return out
}

// Trefethen builds the n×n Trefethen prime matrix exactly as defined for
// the UFMC entries Trefethen_2000 / Trefethen_20000:
//
//	A[i][i] = p_i (the i-th prime, 1-based: 2, 3, 5, ...)
//	A[i][j] = 1   whenever |i−j| is a power of two (1, 2, 4, 8, ...).
//
// The matrix is symmetric positive definite.
func Trefethen(n int) *sparse.CSR {
	if n <= 0 {
		panic(fmt.Sprintf("mats: Trefethen(%d): n must be positive", n))
	}
	primes := firstPrimes(n)
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, float64(primes[i]))
		for d := 1; i+d < n; d <<= 1 {
			c.AddSym(i, i+d, 1)
		}
	}
	return c.ToCSR()
}

// firstPrimes returns the first n primes via a sieve sized by the
// prime-counting estimate p_n < n(ln n + ln ln n) for n ≥ 6.
func firstPrimes(n int) []int {
	if n <= 0 {
		return nil
	}
	limit := 15
	if n >= 6 {
		f := float64(n)
		limit = int(f*(math.Log(f)+math.Log(math.Log(f)))) + 10
	}
	for {
		sieve := make([]bool, limit+1)
		var primes []int
		for p := 2; p <= limit; p++ {
			if sieve[p] {
				continue
			}
			primes = append(primes, p)
			if len(primes) == n {
				return primes
			}
			for q := p * p; q <= limit; q += p {
				sieve[q] = true
			}
		}
		limit *= 2 // estimate too tight (only possible for tiny n)
	}
}

// FV builds a 2-D nine-point finite-element-style stencil matrix on a
// w×h grid, the analog of the UFMC fv family:
//
//	a_ii = 8 + sigma, a_ij = −1 for the 8 grid neighbours of i.
//
// The diagonal shift sigma tunes the Jacobi iteration-matrix spectral
// radius: interior-symbol analysis gives ρ(B) ≈ 8λ₁/(8+sigma) with λ₁ the
// largest normalized adjacency eigenvalue (→1 for large grids). sigma=1.368
// yields ρ ≈ 0.854 (fv1/fv2); sigma=0.0056 yields ρ ≈ 0.999 (fv3). The
// matrix is strictly diagonally dominant for sigma > 0, hence SPD.
func FV(w, h int, sigma float64) *sparse.CSR {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("mats: FV(%d,%d): grid must be positive", w, h))
	}
	n := w * h
	c := sparse.NewCOO(n, n)
	idx := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := idx(x, y)
			c.Add(i, i, 8+sigma)
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nx, ny := x+dx, y+dy
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					c.Add(i, idx(nx, ny), -1)
				}
			}
		}
	}
	return c.ToCSR()
}

// FVTiled is FV with the grid points renumbered tile by tile (16×8-point
// tiles, matching the paper's chaos-study block size of 128 rows per thread
// block). The UFMC fv matrices carry mesh orderings with strong locality —
// "almost all elements are gathered on the diagonal blocks" (paper §4.1) —
// which a plain row-major stencil numbering lacks: under row-major order a
// 128-row block spans barely more than one grid line and most stencil
// neighbours land outside the block. Tiling restores the property the
// paper's conclusions about fv1 depend on. The renumbering is a symmetric
// permutation, so spectrum, dominance and symmetry are unchanged.
func FVTiled(w, h int, sigma float64) *sparse.CSR {
	a := FV(w, h, sigma)
	perm := TilePermutation(w, h, 16, 8)
	p, err := sparse.PermuteSym(a, perm)
	if err != nil {
		panic(fmt.Sprintf("mats: FVTiled: %v", err)) // unreachable: perm is valid by construction
	}
	return p
}

// ScaleSym applies the symmetric diagonal scaling A′ = S·A·S with smoothly
// varying s_i = 1 + (smax−1)·(i/(n−1))². The normalized matrix
// D′^{-1/2}A′D′^{-1/2} is *identical* to that of A, so every quantity the
// relaxation methods depend on — ρ(B), ρ(|B|), cond(D⁻¹A), per-iteration
// convergence rates of Jacobi/Gauss-Seidel/SOR/async-(k) — is unchanged,
// while cond(A′) grows by ≈ smax². The UFMC fv matrices combine a modest
// cond(D⁻¹A) (12.76) with a large cond(A) (≈1e5, Table 1); applying
// ScaleSym to the fv analogs reproduces that combination. The default
// generators stay unscaled because bad scaling also slows the
// *unpreconditioned* CG baseline of Figure 9, which the paper's results
// show unaffected — i.e. the paper's CG sees the well-scaled problem.
// EXPERIMENTS.md records the resulting cond(A) deviation in Table 1.
func ScaleSym(a *sparse.CSR, smax float64) *sparse.CSR {
	if smax <= 0 {
		panic(fmt.Sprintf("mats: ScaleSym smax=%g must be positive", smax))
	}
	n := a.Rows
	s := make([]float64, n)
	for i := range s {
		t := float64(i) / float64(n-1)
		s[i] = 1 + (smax-1)*t*t
	}
	out := a.Clone()
	for i := 0; i < n; i++ {
		for p := out.RowPtr[i]; p < out.RowPtr[i+1]; p++ {
			out.Val[p] *= s[i] * s[out.ColIdx[p]]
		}
	}
	return out
}

// TilePermutation returns the permutation that renumbers the points of a
// w×h grid tile by tile: perm[rowMajorIndex] = tileOrderIndex. Tiles are
// tileW×tileH and traversed left-to-right, top-to-bottom; within a tile,
// points are row-major. Boundary tiles may be smaller.
func TilePermutation(w, h, tileW, tileH int) []int {
	if w <= 0 || h <= 0 || tileW <= 0 || tileH <= 0 {
		panic(fmt.Sprintf("mats: TilePermutation(%d,%d,%d,%d): all arguments must be positive", w, h, tileW, tileH))
	}
	perm := make([]int, w*h)
	next := 0
	for ty := 0; ty < h; ty += tileH {
		for tx := 0; tx < w; tx += tileW {
			for y := ty; y < ty+tileH && y < h; y++ {
				for x := tx; x < tx+tileW && x < w; x++ {
					perm[y*w+x] = next
					next++
				}
			}
		}
	}
	return perm
}

// Chem97ZtZ builds the statistics normal-matrix analog: a matrix whose
// off-diagonal entries all lie at distance ≥ n/3 from the diagonal. Rows
// are grouped into triples {i, i+n/3, i+2n/3} with normalized coupling
// c = 0.3945, so the Jacobi iteration matrix has eigenvalues {−2c, c, c}
// per triple and ρ(B) = 2c ≈ 0.789, matching the paper's 0.7889. The
// diagonal d_i sweeps [1, 450] so cond(A) lands near the paper's 1.3e3.
//
// Because every coupling is long-range, all block-local submatrices for the
// paper's block sizes (128, 448) are *diagonal*: the property that makes
// async-(k) behave like plain Jacobi on this system (paper §4.3).
func Chem97ZtZ(n int) *sparse.CSR {
	if n < 3 {
		panic(fmt.Sprintf("mats: Chem97ZtZ(%d): n must be at least 3", n))
	}
	const coupling = 0.3945
	third := n / 3
	c := sparse.NewCOO(n, n)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		// Smooth deterministic spread of the diagonal over [1, 450].
		t := float64(i) / float64(n-1)
		diag[i] = 1 + 449*t*t
		c.Add(i, i, diag[i])
	}
	for i := 0; i < third; i++ {
		j, k := i+third, i+2*third
		c.AddSym(i, j, coupling*math.Sqrt(diag[i]*diag[j]))
		c.AddSym(i, k, coupling*math.Sqrt(diag[i]*diag[k]))
		c.AddSym(j, k, coupling*math.Sqrt(diag[j]*diag[k]))
	}
	return c.ToCSR()
}

// S1RMT3M1 builds the structural-problem analog: the 1-D 8th-order
// difference (Toeplitz) operator with stencil given by the alternating
// binomial coefficients of (1−z)⁸,
//
//	[1 −8 28 −56 70 −56 28 −8 1],
//
// plus a small diagonal shift. The operator symbol is (2−2cosθ)⁴ ≥ 0, so
// the matrix is SPD, while the Jacobi iteration matrix reaches
// ρ(B) = (256+α)/(70+α) − 1 ≈ 186/70 ≈ 2.657 — the paper's ρ ≈ 2.65 > 1
// case where Jacobi, Gauss-Seidel and block-asynchronous iteration all
// diverge (Figures 6e, 7e). The shift α = 1.16e−4 sets λ_min ≈ α so that
// cond(A) ≈ 256/α ≈ 2.2e6, the paper's value.
//
// The paper's s1rmt3m1 has ≈48 nonzeros/row; this analog has ≤9. The
// density difference does not affect any conclusion drawn from the matrix
// (all of which flow from ρ(B) > 1); see DESIGN.md §2.
func S1RMT3M1(n int) *sparse.CSR {
	if n < 9 {
		panic(fmt.Sprintf("mats: S1RMT3M1(%d): n must be at least 9", n))
	}
	const alpha = 1.16e-4
	stencil := []float64{70 + alpha, -56, 28, -8, 1} // offsets 0..4, symmetric
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, stencil[0])
		for d := 1; d <= 4; d++ {
			if i+d < n {
				c.AddSym(i, i+d, stencil[d])
			}
		}
	}
	return c.ToCSR()
}

// Poisson2D builds the standard five-point 2-D Poisson stencil on a w×h
// grid (diag 4, neighbours −1). Used by the examples; the classical model
// problem for relaxation methods.
func Poisson2D(w, h int) *sparse.CSR {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("mats: Poisson2D(%d,%d): grid must be positive", w, h))
	}
	n := w * h
	c := sparse.NewCOO(n, n)
	idx := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := idx(x, y)
			c.Add(i, i, 4)
			if x > 0 {
				c.Add(i, idx(x-1, y), -1)
			}
			if x < w-1 {
				c.Add(i, idx(x+1, y), -1)
			}
			if y > 0 {
				c.Add(i, idx(x, y-1), -1)
			}
			if y < h-1 {
				c.Add(i, idx(x, y+1), -1)
			}
		}
	}
	return c.ToCSR()
}

// DiagDominant builds an n×n strictly diagonally dominant SPD band matrix
// with the given half-bandwidth and dominance ratio r > 1 (|a_ii| equals r
// times the off-diagonal row sum). Useful for property tests that need a
// family of guaranteed-convergent systems.
func DiagDominant(n, halfBand int, r float64) *sparse.CSR {
	if n <= 0 || halfBand < 0 || r <= 1 {
		panic(fmt.Sprintf("mats: DiagDominant(%d,%d,%g): need n>0, halfBand≥0, r>1", n, halfBand, r))
	}
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		var off float64
		for d := 1; d <= halfBand; d++ {
			v := -1.0 / float64(d)
			if i+d < n {
				c.AddSym(i, i+d, v)
			}
			if i+d < n {
				off += -v
			}
			if i-d >= 0 {
				off += -v
			}
		}
		if off == 0 {
			off = 1
		}
		c.Add(i, i, r*off)
	}
	return c.ToCSR()
}
