// Package mats generates the test matrices of the reproduction.
//
// The paper evaluates on seven SPD matrices from the University of Florida
// collection (Table 1). The collection is not available offline, so each
// matrix is re-created by an analytic generator engineered to match the
// structural class the paper exploits:
//
//   - Trefethen_2000 / Trefethen_20000: generated *exactly* (the matrix has
//     a closed-form definition: primes on the diagonal, ones at power-of-two
//     offsets).
//   - fv1 / fv2 / fv3: 2-D FEM stencil matrices on near-square grids with
//     the same dimensions; a diagonal shift tunes the Jacobi iteration
//     matrix spectral radius ρ(B) to the paper's values (0.8541 / 0.9993).
//   - Chem97ZtZ: statistics normal-matrix analog whose off-diagonal entries
//     sit at distance ≥ n/3 from the diagonal, so every block-local
//     submatrix is diagonal — the property the paper uses to explain why
//     async-(5) degenerates to Jacobi behaviour on this system.
//   - s1rmt3m1: structural-problem analog built from the 8th-order
//     difference operator: its Jacobi iteration matrix has
//     ρ(B) = 186/70 ≈ 2.657, reproducing the paper's ρ ≈ 2.65 > 1
//     divergence case while remaining SPD.
//
// Every generator is deterministic. See DESIGN.md §2 for the substitution
// rationale and the per-matrix property mapping.
package mats
