package mats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestTrefethenSmall(t *testing.T) {
	m := Trefethen(8)
	// Diagonal: first 8 primes.
	want := []float64{2, 3, 5, 7, 11, 13, 17, 19}
	for i, w := range want {
		if m.At(i, i) != w {
			t.Errorf("diag[%d] = %g, want %g", i, m.At(i, i), w)
		}
	}
	// Off-diagonal ones at power-of-two offsets only.
	if m.At(0, 1) != 1 || m.At(0, 2) != 1 || m.At(0, 4) != 1 {
		t.Error("missing power-of-two couplings from row 0")
	}
	if m.At(0, 3) != 0 || m.At(0, 5) != 0 || m.At(0, 6) != 0 {
		t.Error("unexpected coupling at non-power-of-two offset")
	}
	if !m.IsSymmetric(0) {
		t.Error("Trefethen matrix must be symmetric")
	}
}

func TestTrefethen2000MatchesPaperTable1(t *testing.T) {
	m := Trefethen(2000)
	if m.Rows != 2000 {
		t.Fatalf("n = %d", m.Rows)
	}
	// Paper Table 1: nnz = 41,906.
	if m.NNZ() != 41906 {
		t.Errorf("nnz = %d, want 41906 (paper Table 1)", m.NNZ())
	}
}

func TestTrefethen20000NNZ(t *testing.T) {
	if testing.Short() {
		t.Skip("large matrix")
	}
	m := Trefethen(20000)
	// Paper Table 1: nnz = 554,466.
	if m.NNZ() != 554466 {
		t.Errorf("nnz = %d, want 554466 (paper Table 1)", m.NNZ())
	}
}

func TestFirstPrimes(t *testing.T) {
	p := firstPrimes(10)
	want := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	for i, w := range want {
		if p[i] != w {
			t.Fatalf("prime[%d] = %d, want %d", i, p[i], w)
		}
	}
	if got := firstPrimes(0); got != nil {
		t.Errorf("firstPrimes(0) = %v, want nil", got)
	}
	// 1000th prime is 7919.
	if p := firstPrimes(1000); p[999] != 7919 {
		t.Errorf("1000th prime = %d, want 7919", p[999])
	}
}

func TestFVDimensions(t *testing.T) {
	m := FV(98, 98, 1.368)
	if m.Rows != 9604 {
		t.Errorf("fv1 n = %d, want 9604", m.Rows)
	}
	// Nine-point stencil: interior rows have 9 entries.
	// nnz = 9wh - boundary deficit; must be within 5% of paper's 85264.
	if math.Abs(float64(m.NNZ())-85264) > 0.05*85264 {
		t.Errorf("fv1 nnz = %d, want ≈85264", m.NNZ())
	}
	if !m.IsSymmetric(0) {
		t.Error("FV matrix must be symmetric")
	}
	if !m.IsStrictlyDiagonallyDominant() {
		t.Error("FV with sigma>0 must be strictly diagonally dominant")
	}
}

func TestFVInteriorRow(t *testing.T) {
	m := FV(5, 5, 1.0)
	// Center of the grid: index 12 (x=2,y=2), 8 neighbours.
	i := 12
	cnt := m.RowPtr[i+1] - m.RowPtr[i]
	if cnt != 9 {
		t.Errorf("interior row has %d entries, want 9", cnt)
	}
	if m.At(i, i) != 9 {
		t.Errorf("interior diagonal = %g, want 9", m.At(i, i))
	}
	// Corner: 3 neighbours + diagonal.
	if got := m.RowPtr[1] - m.RowPtr[0]; got != 4 {
		t.Errorf("corner row has %d entries, want 4", got)
	}
}

func TestChem97ZtZStructure(t *testing.T) {
	n := 2541
	m := Chem97ZtZ(n)
	if m.Rows != n {
		t.Fatalf("n = %d", m.Rows)
	}
	if !m.IsSymmetric(1e-12) {
		t.Error("Chem97ZtZ analog must be symmetric")
	}
	// Paper Table 1 nnz = 7361; our triple construction gives n + 6*(n/3).
	wantNNZ := n + 6*(n/3)
	if m.NNZ() != wantNNZ {
		t.Errorf("nnz = %d, want %d", m.NNZ(), wantNNZ)
	}
	// Defining property: all off-diagonal entries at distance >= n/3, so
	// block-local submatrices are diagonal for any block size <= n/3.
	third := n / 3
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := m.ColIdx[p]
			if j != i && abs(i-j) < third {
				t.Fatalf("off-diagonal entry (%d,%d) at distance %d < n/3=%d", i, j, abs(i-j), third)
			}
		}
	}
	// With block size 448 (the paper's), every local block must be diagonal.
	p := sparse.NewBlockPartition(n, 448)
	f := p.OffBlockFraction(m)
	for b, v := range f {
		if v != 1 {
			t.Errorf("block %d off-block fraction = %g, want 1 (diagonal local blocks)", b, v)
		}
	}
}

func TestS1RMT3M1Structure(t *testing.T) {
	m := S1RMT3M1(5489)
	if m.Rows != 5489 {
		t.Fatalf("n = %d", m.Rows)
	}
	if !m.IsSymmetric(0) {
		t.Error("S1RMT3M1 analog must be symmetric")
	}
	// Interior row: 9-point stencil with binomial values.
	i := 2000
	if got := m.At(i, i); math.Abs(got-70) > 1e-3 {
		t.Errorf("diagonal = %g, want ≈70", got)
	}
	if m.At(i, i+1) != -56 || m.At(i, i+4) != 1 {
		t.Errorf("stencil wrong: %g %g", m.At(i, i+1), m.At(i, i+4))
	}
	// Decidedly NOT diagonally dominant: |off| sum 186 > 70.
	if m.IsStrictlyDiagonallyDominant() {
		t.Error("S1RMT3M1 analog must not be diagonally dominant")
	}
}

func TestPoisson2D(t *testing.T) {
	m := Poisson2D(4, 4)
	if m.Rows != 16 {
		t.Fatalf("n = %d", m.Rows)
	}
	if !m.IsSymmetric(0) {
		t.Error("Poisson must be symmetric")
	}
	// Interior point (1,1) = idx 5: 5 entries.
	if got := m.RowPtr[6] - m.RowPtr[5]; got != 5 {
		t.Errorf("interior row has %d entries, want 5", got)
	}
	if m.At(5, 5) != 4 || m.At(5, 4) != -1 || m.At(5, 9) != -1 {
		t.Error("five-point stencil values wrong")
	}
}

func TestDiagDominant(t *testing.T) {
	m := DiagDominant(50, 3, 1.5)
	if !m.IsStrictlyDiagonallyDominant() {
		t.Error("DiagDominant output not dominant")
	}
	if !m.IsSymmetric(1e-12) {
		t.Error("DiagDominant output not symmetric")
	}
}

func TestGenerateDispatch(t *testing.T) {
	for _, name := range Names {
		if name == "Trefethen_20000" && testing.Short() {
			continue
		}
		tm, err := Generate(name)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		if tm.Name != name || tm.A == nil {
			t.Fatalf("Generate(%s) returned %+v", name, tm)
		}
		if err := tm.A.Validate(); err != nil {
			t.Fatalf("Generate(%s) invalid CSR: %v", name, err)
		}
	}
	if _, err := Generate("nope"); err == nil {
		t.Error("expected error for unknown matrix")
	}
}

func TestGenerateDimensionsMatchPaper(t *testing.T) {
	want := map[string]int{
		"Chem97ZtZ": 2541, "fv1": 9604, "fv2": 9801, "fv3": 9801, "s1rmt3m1": 5489,
		"Trefethen_2000": 2000,
	}
	for name, n := range want {
		if got := MustGenerate(name).A.Rows; got != n {
			t.Errorf("%s: n = %d, want %d (paper Table 1)", name, got, n)
		}
	}
}

// Property: FV matrices are SPD-consistent for any sigma > 0 — strictly
// diagonally dominant with positive diagonal.
func TestPropertyFVDominant(t *testing.T) {
	f := func(w8, h8 uint8, s uint8) bool {
		w := int(w8%12) + 2
		h := int(h8%12) + 2
		sigma := float64(s%100)/100 + 0.01
		return FV(w, h, sigma).IsStrictlyDiagonallyDominant()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Trefethen matrices are symmetric with positive diagonal for
// arbitrary sizes.
func TestPropertyTrefethenWellFormed(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8%60) + 1
		m := Trefethen(n)
		if !m.IsSymmetric(0) {
			return false
		}
		for i := 0; i < n; i++ {
			if m.At(i, i) < 2 {
				return false
			}
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestScaleSymPreservesNormalizedSpectrum(t *testing.T) {
	a := FV(12, 12, 1.0)
	s := ScaleSym(a, 50)
	if !s.IsSymmetric(1e-9) {
		t.Error("scaled matrix must stay symmetric")
	}
	// The normalized matrices D^{-1/2}AD^{-1/2} must be identical entry by
	// entry: n'_ij = s_i s_j a_ij / sqrt(s_i² a_ii · s_j² a_jj) = n_ij.
	normAt := func(m *sparse.CSR, i, j int) float64 {
		return m.At(i, j) / math.Sqrt(m.At(i, i)*m.At(j, j))
	}
	for i := 0; i < a.Rows; i += 17 {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.ColIdx[p]
			if math.Abs(normAt(a, i, j)-normAt(s, i, j)) > 1e-12 {
				t.Fatalf("normalized entry (%d,%d) changed", i, j)
			}
		}
	}
	// cond(A) must inflate by roughly smax².
	if s.At(a.Rows-1, a.Rows-1) < 2000*a.At(a.Rows-1, a.Rows-1) {
		t.Errorf("late diagonal should scale by ≈smax²: %g vs %g",
			s.At(a.Rows-1, a.Rows-1), a.At(a.Rows-1, a.Rows-1))
	}
}

func TestScaleSymPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScaleSym(FV(3, 3, 1), 0)
}

func TestTilePermutationIsPermutation(t *testing.T) {
	perm := TilePermutation(10, 7, 3, 4)
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			t.Fatalf("invalid permutation value %d", p)
		}
		seen[p] = true
	}
}

func TestFVTiledReducesOffBlockFraction(t *testing.T) {
	// The point of the tiling: 128-row blocks capture far more of the
	// stencil coupling than under row-major ordering.
	rowMajor := FV(64, 64, 1.0)
	tiled := FVTiled(64, 64, 1.0)
	part := sparse.NewBlockPartition(64*64, 128)
	mean := func(xs []float64) float64 {
		var s float64
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	fr := mean(part.OffBlockFraction(rowMajor))
	ft := mean(part.OffBlockFraction(tiled))
	if !(ft < fr/2) {
		t.Errorf("tiling should at least halve the off-block fraction: %g -> %g", fr, ft)
	}
}
