package tune_test

import (
	"fmt"

	"repro/internal/mats"
	"repro/internal/tune"
	"repro/internal/vecmath"
)

// Golden-section search is the tuner's ω stage: a derivative-free
// minimizer for the unimodal damping response. Here it recovers the
// analytic Richardson optimum ω* = 2/(λ₁+λₙ) for a spectrum [1, 9].
func ExampleGoldenSection() {
	rho := func(omega float64) float64 {
		lo, hi := 1.0, 9.0
		r1, r2 := 1-omega*lo, 1-omega*hi
		if r1 < 0 {
			r1 = -r1
		}
		if r2 < 0 {
			r2 = -r2
		}
		if r1 > r2 {
			return r1
		}
		return r2
	}
	omega := tune.GoldenSection(rho, 0.05, 1.95, 1e-9, 0)
	fmt.Printf("omega* = %.3f\n", omega)
	// Output:
	// omega* = 0.200
}

// Tune searches (block size, local sweeps, ω) with short probe solves and
// scores candidates by modeled GPU seconds per digit of accuracy.
func ExampleTune() {
	a := mats.Trefethen(500)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))

	res, err := tune.Tune(a, b, tune.Config{
		BlockSizes: []int{64, 128},
		LocalIters: []int{1, 5},
		Seed:       1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("contracting: %v, omega in (0,2): %v\n",
		res.Rate < 1, res.Omega > 0 && res.Omega < 2)
	// Output:
	// contracting: true, omega in (0,2): true
}
