// Package tune is the per-matrix auto-tuner for the async-(k) solver's
// free parameters: the subdomain (block) size, the local iteration count k
// and the relaxation weight ω.
//
// The paper sets these "through empirically based tuning" (§3.2: block
// size 448 on Fermi, 128 for the non-determinism study; k = 5 from the
// §4.3 trade-off) and names the optimal choice of local iterations,
// subdomain sizes and scaling parameters an open problem (§5). Related
// work (Chow, Frommer & Szyld, "Asynchronous Richardson iterations")
// likewise finds the damping weight must be tuned per problem before an
// asynchronous method beats its synchronous counterpart. Tune automates
// the process the paper did by hand:
//
//   - a small grid over (block size, k) — paper-representative block
//     sizes × k ∈ {1..8} — evaluated by short seeded probe solves that
//     reuse one core.Plan per block size;
//   - a golden-section refinement of ω at the winning (block size, k),
//     bracketing around the spectral estimate τ = 2/(λ₁+λ_n) from
//     internal/spectral (the paper's §4.2 scaled-Jacobi weight);
//   - every candidate scored by modeled seconds per decimal digit of
//     residual reduction: the probe's measured contraction rate combined
//     with the calibrated per-iteration hardware cost from
//     internal/gpusim, so a configuration that iterates faster but
//     converges slower is priced honestly (the paper's Figure 8 trade-off).
//
// After the (block, k, ω) search, a kernel/precision stage re-prices the
// winning plan under each available sweep kernel (matrix-free stencil,
// sliced-ELL, packed CSR). Because the kernels are bit-transparent, the
// measured contraction rate transfers and the float64 candidates cost
// zero extra probe solves — only the modeled memory traffic differs;
// a float32 candidate (Config.Precisions) re-probes the winner once.
// See docs/KERNELS.md for the dispatch and traffic model.
//
// A Result is a plain value; internal/service caches one per matrix
// fingerprint so repeated solves of a known matrix skip the search
// entirely. See docs/TUNING.md for a worked walkthrough.
package tune
