package tune

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/sparse"
	"repro/internal/spectral"
)

// Config bounds the search.
type Config struct {
	// BlockSizes and LocalIters are the candidate grids. Defaults: the
	// paper's neighbourhood {64, 128, 256, 448, 896} × {1, 2, 3, 5, 8}.
	BlockSizes []int
	LocalIters []int
	// ProbeIters is the length of each probe solve (default 25).
	ProbeIters int
	// Model prices the configurations (default gpusim.CalibratedModel).
	Model *gpusim.PerfModel
	// Seed drives every probe solve, making the whole search deterministic.
	Seed int64
	// OmegaProbes budgets the golden-section ω refinement: at most this
	// many probe solves after the (block size, k) grid (default 8).
	// Negative disables the ω stage entirely and keeps ω = 1.
	OmegaProbes int
	// SpectralSteps is the Lanczos iteration count used to center the ω
	// bracket at τ = 2/(λ₁+λ_n) of the normalized matrix (default 32).
	SpectralSteps int
	// Engine selects the probe engine (default core.EngineSimulated, the
	// deterministic one — probes should measure the configuration, not the
	// scheduler's mood).
	Engine core.EngineKind
	// Kernels are the candidate sweep-kernel dispatches for the post-grid
	// kernel stage. Default: core.KernelCSR and core.KernelSELL, plus
	// core.KernelStencil when the matrix detects stencil structure. The
	// stage needs no extra probe solves in f64 — kernel dispatch is
	// bit-transparent (see internal/core), so the grid winner's measured
	// rate applies to every kernel and only the modeled traffic differs.
	Kernels []core.KernelKind
	// Precisions are the candidate iterate storage precisions (default
	// {core.PrecF64}). Adding core.PrecF32 lets the stage weigh the reduced
	// iterate traffic against the rounding's effect on the contraction
	// rate, which it measures with one extra probe solve.
	Precisions []string
	// Betas are the candidate momentum coefficients of the method stage,
	// which probes the second-order Richardson rule (core.RuleRichardson2)
	// at the winning (block size, k, ω) and keeps it when it beats the
	// first-order rule on modeled time per digit. Default {0.1, 0.3, 0.5};
	// MethodProbes < 0 disables the stage entirely (mirroring OmegaProbes).
	Betas        []float64
	MethodProbes int
}

func (c Config) withDefaults() Config {
	if len(c.BlockSizes) == 0 {
		c.BlockSizes = []int{64, 128, 256, 448, 896}
	}
	if len(c.LocalIters) == 0 {
		c.LocalIters = []int{1, 2, 3, 5, 8}
	}
	if c.ProbeIters <= 0 {
		c.ProbeIters = 25
	}
	if c.Model == nil {
		m := gpusim.CalibratedModel()
		c.Model = &m
	}
	if c.OmegaProbes == 0 {
		c.OmegaProbes = 8
	}
	if c.SpectralSteps <= 0 {
		c.SpectralSteps = 32
	}
	if len(c.Precisions) == 0 {
		c.Precisions = []string{core.PrecF64}
	}
	if len(c.Betas) == 0 {
		c.Betas = []float64{0.1, 0.3, 0.5}
	}
	return c
}

// Result reports the tuning outcome.
type Result struct {
	BlockSize  int
	LocalIters int
	// Omega is the winning relaxation weight (1 when the ω stage is
	// disabled or failed to improve on plain Jacobi).
	Omega float64
	// Rate is the measured per-global-iteration residual contraction of
	// the winning configuration (geometric mean over its probe solve).
	Rate float64
	// SecondsPerDigit is the modeled wall time to gain one decimal digit
	// of accuracy — the score minimized.
	SecondsPerDigit float64
	// Probed counts grid configurations evaluated; Skipped counts those
	// that failed to contract during the probe (e.g. divergent).
	Probed, Skipped int
	// ProbeSolves counts every short solve executed, grid and ω stages
	// combined — the work a tuning cache hit saves.
	ProbeSolves int
	// OmegaBracket is the ω interval the golden-section stage searched;
	// OmegaFromSpectral reports whether its center came from the Lanczos
	// estimate (as opposed to the fixed fallback bracket).
	OmegaBracket      [2]float64
	OmegaFromSpectral bool
	// Method and Beta are the method stage's winners: the update rule with
	// the lowest modeled time per digit at the winning (block size, k, ω).
	// Method core.RuleJacobi (the zero value) with Beta 0 means the
	// first-order rule won (or the stage was disabled).
	Method core.RuleKind
	Beta   float64
	// Kernel and Precision are the kernel stage's winners: the sweep-kernel
	// dispatch and iterate storage precision with the lowest modeled time
	// per digit at the winning (block size, k, ω). KernelTraffic is the
	// winner's modeled per-nonzero traffic factor relative to packed CSR
	// (see gpusim.AsyncIterTimeKernel).
	Kernel        core.KernelKind
	Precision     string
	KernelTraffic float64
}

// Tune searches (block size, local iterations, ω) for the given system and
// returns the configuration with the lowest modeled time per digit of
// residual reduction. The grid stage reuses one core.Plan per block size
// across all k candidates; the ω stage reuses the winning plan. Tune
// returns an error if no grid candidate contracts at all (the ρ(|B|) ≥ 1
// case — no parameter choice can fix s1rmt3m1).
func Tune(a *sparse.CSR, b []float64, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	best := Result{Omega: 1, SecondsPerDigit: math.Inf(1)}
	var bestPlan *core.Plan
	blockSizes := cfg.BlockSizes
	fits := false
	for _, bs := range blockSizes {
		if bs <= a.Rows {
			fits = true
			break
		}
	}
	if !fits {
		// Every grid candidate exceeds the matrix dimension (small systems
		// against the paper-scale default grid). Rather than reporting "no
		// candidate contracted", probe the one configuration that exists:
		// the single-block plan, whose local solve is exact.
		blockSizes = []int{a.Rows}
	}
	for _, bs := range blockSizes {
		if bs > a.Rows {
			continue // degenerate duplicates of the single-block case
		}
		plan, err := core.NewPlan(a, bs, false)
		if err != nil {
			best.Skipped += len(cfg.LocalIters)
			best.Probed += len(cfg.LocalIters)
			continue
		}
		for _, k := range cfg.LocalIters {
			best.Probed++
			rate, perDigit, ok := cfg.probe(plan, b, k, 1, core.RuleJacobi, 0, core.PrecF64, &best)
			if !ok {
				best.Skipped++
				continue
			}
			if perDigit < best.SecondsPerDigit {
				best.BlockSize = bs
				best.LocalIters = k
				best.Rate = rate
				best.SecondsPerDigit = perDigit
				bestPlan = plan
			}
		}
	}
	if math.IsInf(best.SecondsPerDigit, 1) {
		return best, fmt.Errorf("tune: no candidate configuration contracted (ρ(|B|) ≥ 1?)")
	}
	if cfg.OmegaProbes > 0 {
		cfg.refineOmega(a, b, bestPlan, &best)
	}
	if cfg.MethodProbes >= 0 {
		cfg.methodStage(b, bestPlan, &best)
	}
	cfg.kernelStage(a, b, bestPlan, &best)
	return best, nil
}

// methodStage probes the second-order Richardson rule at the winning
// (block size, k, ω) across the candidate β grid and keeps the rule when it
// beats the first-order winner on modeled time per digit. A β probe costs
// the same per-iteration time as the first-order rule at this granularity
// (one extra fused multiply-add and the trail's vector traffic are below
// the model's resolution), so the comparison is rate against rate.
func (cfg Config) methodStage(b []float64, plan *core.Plan, best *Result) {
	for _, beta := range cfg.Betas {
		rate, perDigit, ok := cfg.probe(plan, b, best.LocalIters, best.Omega, core.RuleRichardson2, beta, core.PrecF64, best)
		if !ok {
			continue // diverged or stagnated: momentum loses by default
		}
		if perDigit < best.SecondsPerDigit {
			best.Method = core.RuleRichardson2
			best.Beta = beta
			best.Rate = rate
			best.SecondsPerDigit = perDigit
		}
	}
}

// Modeled per-nonzero traffic of the non-CSR execution paths, relative to
// the packed-CSR sweep (value + column index per nonzero). An interior
// stencil row loads no column indices and keeps its coefficients in
// registers, leaving roughly the iterate gather; a SELL slice trades
// aligned contiguous loads against its padding slots; a float32 iterate
// halves the vector traffic while the matrix values stay float64. The
// constants mirror the byte ratios the docs/KERNELS.md walkthrough derives.
const (
	stencilTraffic = 0.55
	sellTraffic    = 0.9
	f32Traffic     = 0.8
)

// kernelTraffic models a plan's per-nonzero traffic factor from its own
// statistics: the stencil kernel only accelerates the detected interior
// rows (boundary rows still run packed CSR), and a SELL layout pays for
// every padded slot it stores.
func kernelTraffic(p *core.Plan) float64 {
	switch p.Kernel() {
	case core.KernelStencil:
		f := p.StencilInfo().InteriorFraction()
		return f*stencilTraffic + (1 - f)
	case core.KernelSELL:
		return sellTraffic * p.SELLSlotRatio()
	default:
		return 1
	}
}

// kernelStage joins the kernel × precision grid at the winning
// (block size, k, ω). In f64 the grid winner's measured rate transfers to
// every kernel verbatim (dispatch is bit-transparent), so the stage is pure
// pricing: build each candidate plan, read its traffic statistics, and keep
// the cheapest modeled time per digit. A float32 candidate changes the
// trajectory, so its rate is measured once by a probe on the winning plan —
// f32 rounding is also kernel-transparent, making that single probe valid
// for every kernel candidate.
func (cfg Config) kernelStage(a *sparse.CSR, b []float64, bestPlan *core.Plan, best *Result) {
	kernels := cfg.Kernels
	if len(kernels) == 0 {
		kernels = []core.KernelKind{core.KernelCSR, core.KernelSELL}
		if _, ok := sparse.DetectStencil(a); ok {
			kernels = append(kernels, core.KernelStencil)
		}
	}
	rates := make(map[string]float64, len(cfg.Precisions))
	for _, prec := range cfg.Precisions {
		if prec == "" || prec == core.PrecF64 {
			rates[core.PrecF64] = best.Rate
			continue
		}
		if rate, _, ok := cfg.probe(bestPlan, b, best.LocalIters, best.Omega, best.Method, best.Beta, prec, best); ok {
			rates[prec] = rate
		}
	}
	best.Kernel = core.KernelCSR
	best.Precision = core.PrecF64
	best.KernelTraffic = 1
	m := bestPlan.Matrix()
	for _, k := range kernels {
		traffic := 1.0
		if k != core.KernelCSR { // CSR is the traffic baseline; no plan needed
			plan := bestPlan
			if k != bestPlan.Kernel() {
				p, err := core.NewPlanWithConfig(a, best.BlockSize, false, core.PlanConfig{Kernel: k})
				if err != nil {
					continue // e.g. no stencil structure for an explicit stencil candidate
				}
				plan = p
			}
			traffic = kernelTraffic(plan)
		}
		for prec, rate := range rates {
			pt := traffic
			if prec == core.PrecF32 {
				pt *= f32Traffic
			}
			iterTime := cfg.Model.AsyncIterTimeKernel(m.Rows, m.NNZ(), best.LocalIters, pt)
			perDigit := iterTime * math.Ln10 / -math.Log(rate)
			if perDigit < best.SecondsPerDigit {
				best.Kernel = k
				best.Precision = prec
				best.KernelTraffic = pt
				best.Rate = rate
				best.SecondsPerDigit = perDigit
			}
		}
	}
}

// refineOmega runs the golden-section stage on the winning (block size, k):
// bracket ω around the spectral estimate τ = 2/(λ₁+λ_n) (the optimal
// weight for scaled Richardson, paper §4.2) and keep any ω that scores
// below the grid winner's ω = 1. Divergent probes score +Inf, so the
// search backs away from them; if nothing beats plain Jacobi the result
// keeps ω = 1.
func (cfg Config) refineOmega(a *sparse.CSR, b []float64, plan *core.Plan, best *Result) {
	lo, hi := 0.5, 1.5
	if tau, err := spectral.TauScaling(a, cfg.SpectralSteps, cfg.Seed+1); err == nil && tau > 0 && tau < 2 {
		lo, hi = tau-0.5, tau+0.5
		best.OmegaFromSpectral = true
	}
	if lo < 0.05 {
		lo = 0.05
	}
	if hi > 1.95 {
		hi = 1.95
	}
	best.OmegaBracket = [2]float64{lo, hi}
	k := best.LocalIters
	GoldenSection(func(w float64) float64 {
		rate, perDigit, ok := cfg.probe(plan, b, k, w, core.RuleJacobi, 0, core.PrecF64, best)
		if !ok {
			return math.Inf(1)
		}
		if perDigit < best.SecondsPerDigit {
			best.Omega = w
			best.Rate = rate
			best.SecondsPerDigit = perDigit
		}
		return perDigit
	}, lo, hi, 1e-2, cfg.OmegaProbes)
}

// probe runs one short seeded solve on the warm plan and scores it:
// geometric-mean contraction rate over the recorded history, priced by the
// model's per-iteration cost as seconds per decimal digit. ok is false
// when the probe fails to contract (divergence, stagnation, exact zero).
func (cfg Config) probe(p *core.Plan, b []float64, k int, omega float64, method core.RuleKind, beta float64, precision string, r *Result) (rate, perDigit float64, ok bool) {
	r.ProbeSolves++
	res, err := core.SolveWithPlan(p, b, core.Options{
		BlockSize:      p.BlockSize(),
		LocalIters:     k,
		Omega:          omega,
		Method:         method,
		Beta:           beta,
		Precision:      precision,
		MaxGlobalIters: cfg.ProbeIters,
		RecordHistory:  true,
		Seed:           cfg.Seed,
		Engine:         cfg.Engine,
	})
	if err != nil || len(res.History) < 2 {
		return 0, 0, false
	}
	h := res.History
	first, last := h[0], h[len(h)-1]
	if !(last > 0) || !(first > 0) || last >= first {
		return 0, 0, false // not contracting (or already at exact zero)
	}
	rate = math.Pow(last/first, 1/float64(len(h)-1))
	m := p.Matrix()
	iterTime := cfg.Model.AsyncIterTime(m.Rows, m.NNZ(), k)
	// Iterations per decimal digit: ln(10)/(−ln rate).
	perDigit = iterTime * math.Ln10 / -math.Log(rate)
	return rate, perDigit, true
}
