package tune

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/sparse"
)

func onesRHS(a *sparse.CSR) []float64 {
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	return b
}

func TestTuneFindsContractingConfig(t *testing.T) {
	a := mats.FV(30, 30, 1.368)
	b := onesRHS(a)
	res, err := Tune(a, b, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockSize <= 0 || res.LocalIters <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if !(res.Rate > 0 && res.Rate < 1) {
		t.Errorf("winning rate %g not contracting", res.Rate)
	}
	if res.Probed == 0 {
		t.Error("no configurations probed")
	}
	if res.SecondsPerDigit <= 0 {
		t.Errorf("SecondsPerDigit = %g", res.SecondsPerDigit)
	}
	if !(res.Omega > 0 && res.Omega < 2) {
		t.Errorf("Omega = %g outside the valid relaxation range", res.Omega)
	}
	if res.ProbeSolves < res.Probed {
		t.Errorf("ProbeSolves = %d < Probed = %d; every grid probe is a solve", res.ProbeSolves, res.Probed)
	}
}

func TestTunePrefersLocalSweepsOnLocalProblem(t *testing.T) {
	// On fv-type systems local sweeps pay; the tuner must not pick k = 1.
	a := mats.FV(30, 30, 1.368)
	b := onesRHS(a)
	res, err := Tune(a, b, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalIters < 2 {
		t.Errorf("tuner picked k=%d on a block-local problem; local sweeps are nearly free", res.LocalIters)
	}
}

func TestTuneChem97AvoidsWastedSweeps(t *testing.T) {
	// Chem97's local blocks are diagonal at full size (every coupling sits
	// ≥ n/3 = 847 away, beyond any candidate block): extra sweeps buy
	// nothing but cost ~4% each, so the tuner must pick k = 1. (At smaller
	// n large blocks *do* capture the couplings and more sweeps win —
	// exactly the problem-dependence the paper's §5 points out.)
	a := mats.Chem97ZtZ(2541)
	b := onesRHS(a)
	res, err := Tune(a, b, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalIters > 1 {
		t.Errorf("tuner picked k=%d on diagonal local blocks; sweeps are wasted there", res.LocalIters)
	}
}

func TestTuneFailsOnDivergentSystem(t *testing.T) {
	a := mats.S1RMT3M1(200)
	b := onesRHS(a)
	if _, err := Tune(a, b, Config{Seed: 1, ProbeIters: 10}); err == nil {
		t.Error("expected error: no configuration can contract on ρ(B)>1")
	}
}

// TestTuneOmegaStageNeverRegresses pins the ω-stage contract: the refined
// result can only improve the modeled score, never lose to the plain
// ω = 1 grid winner, and its ω must sit inside the reported bracket (or be
// exactly 1 when no refinement won).
func TestTuneOmegaStageNeverRegresses(t *testing.T) {
	a := mats.FV(30, 30, 1.368)
	b := onesRHS(a)
	plain, err := Tune(a, b, Config{Seed: 1, OmegaProbes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Omega != 1 {
		t.Fatalf("OmegaProbes<0 must keep ω=1, got %g", plain.Omega)
	}
	tuned, err := Tune(a, b, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.SecondsPerDigit > plain.SecondsPerDigit {
		t.Errorf("ω stage regressed the score: %g > %g", tuned.SecondsPerDigit, plain.SecondsPerDigit)
	}
	if tuned.Omega != 1 {
		lo, hi := tuned.OmegaBracket[0], tuned.OmegaBracket[1]
		if tuned.Omega < lo || tuned.Omega > hi {
			t.Errorf("winning ω=%g outside searched bracket [%g, %g]", tuned.Omega, lo, hi)
		}
	}
	// The ω stage is budgeted: at most OmegaProbes extra solves.
	if extra := tuned.ProbeSolves - plain.ProbeSolves; extra > 8 {
		t.Errorf("ω stage ran %d probe solves, budget is 8", extra)
	}
}

// TestGoldenSectionFindsRichardsonOptimum checks the search against the
// one case with a closed form: for Richardson iteration on an SPD matrix
// with extreme eigenvalues λ₁ < λ_n, the contraction factor
// ρ(ω) = max(|1−ωλ₁|, |1−ωλ_n|) is minimized at ω* = 2/(λ₁+λ_n).
func TestGoldenSectionFindsRichardsonOptimum(t *testing.T) {
	for _, tc := range []struct{ lmin, lmax float64 }{
		{0.1, 1.9},
		{0.5, 1.2},
		{0.02, 3.5},
	} {
		rho := func(w float64) float64 {
			return math.Max(math.Abs(1-w*tc.lmin), math.Abs(1-w*tc.lmax))
		}
		want := 2 / (tc.lmin + tc.lmax)
		got := GoldenSection(rho, 0.01, 2/tc.lmax*1.5, 1e-8, 0)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("λ∈[%g,%g]: golden section found ω=%.8f, analytic optimum %.8f",
				tc.lmin, tc.lmax, got, want)
		}
	}
}

// TestGoldenSectionBudget pins the evaluation cap.
func TestGoldenSectionBudget(t *testing.T) {
	calls := 0
	f := func(w float64) float64 { calls++; return (w - 0.3) * (w - 0.3) }
	GoldenSection(f, 0, 1, 0, 6) // tol 0: only the budget can stop it
	if calls > 6 {
		t.Errorf("GoldenSection made %d evaluations, budget was 6", calls)
	}
	calls = 0
	x := GoldenSection(f, 0, 1, 1e-10, 0)
	if math.Abs(x-0.3) > 1e-8 {
		t.Errorf("unbudgeted search found %g, want 0.3", x)
	}
}

// TestTuneProbeUsesWarmPlan guards the plan-reuse contract indirectly: a
// default grid on a small matrix must not exceed the plan count implied by
// its block-size candidates (probe solves share plans, they don't rebuild
// them). This is a behavioural proxy — the real assertion is the zero
// per-iteration allocation property tested in core.
func TestTuneProbeUsesWarmPlan(t *testing.T) {
	a := mats.Trefethen(200)
	b := onesRHS(a)
	res, err := Tune(a, b, Config{Seed: 3, BlockSizes: []int{32, 64}, LocalIters: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probed != 4 {
		t.Fatalf("probed %d grid points, want 4", res.Probed)
	}
	// Sanity: the winner must actually solve the system.
	sol, err := core.Solve(a, b, core.Options{
		BlockSize: res.BlockSize, LocalIters: res.LocalIters, Omega: res.Omega,
		MaxGlobalIters: 500, Tolerance: 1e-9, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Errorf("tuned configuration (bs=%d k=%d ω=%g) failed to converge", res.BlockSize, res.LocalIters, res.Omega)
	}
}

// TestTuneKernelStagePicksStencilOnFV: the fv grid operator detects as a
// 9-point stencil, whose matrix-free sweep is modeled strictly cheaper per
// nonzero, so the default kernel stage must select it — without any extra
// probe solves, since kernel dispatch is bit-transparent in f64.
func TestTuneKernelStagePicksStencilOnFV(t *testing.T) {
	a := mats.FV(30, 30, 1.368)
	b := onesRHS(a)
	csrOnly, err := Tune(a, b, Config{Seed: 1, Kernels: []core.KernelKind{core.KernelCSR}})
	if err != nil {
		t.Fatal(err)
	}
	if csrOnly.Kernel != core.KernelCSR || csrOnly.KernelTraffic != 1 {
		t.Fatalf("CSR-only stage: kernel %v traffic %g", csrOnly.Kernel, csrOnly.KernelTraffic)
	}
	res, err := Tune(a, b, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != core.KernelStencil {
		t.Errorf("kernel stage picked %v on a stencil operator, want stencil", res.Kernel)
	}
	if res.Precision != core.PrecF64 {
		t.Errorf("default precision grid produced %q, want f64", res.Precision)
	}
	if !(res.KernelTraffic > 0 && res.KernelTraffic < 1) {
		t.Errorf("stencil traffic factor %g, want in (0,1)", res.KernelTraffic)
	}
	if res.SecondsPerDigit >= csrOnly.SecondsPerDigit {
		t.Errorf("stencil kernel did not improve the modeled score: %g >= %g",
			res.SecondsPerDigit, csrOnly.SecondsPerDigit)
	}
	if res.ProbeSolves != csrOnly.ProbeSolves {
		t.Errorf("f64 kernel stage ran extra probes: %d vs %d", res.ProbeSolves, csrOnly.ProbeSolves)
	}
}

// TestTuneKernelStageF32 checks the precision half of the join: adding f32
// to the grid costs exactly one extra probe solve (the rate re-measure on
// the winning plan) and yields a well-formed winner either way.
func TestTuneKernelStageF32(t *testing.T) {
	a := mats.FV(30, 30, 1.368)
	b := onesRHS(a)
	f64only, err := Tune(a, b, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(a, b, Config{Seed: 1, Precisions: []string{core.PrecF64, core.PrecF32}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ProbeSolves - f64only.ProbeSolves; got != 1 {
		t.Errorf("f32 candidate cost %d extra probe solves, want exactly 1", got)
	}
	if res.Precision != core.PrecF64 && res.Precision != core.PrecF32 {
		t.Errorf("winner precision %q", res.Precision)
	}
	if res.SecondsPerDigit > f64only.SecondsPerDigit {
		t.Errorf("wider grid regressed the score: %g > %g", res.SecondsPerDigit, f64only.SecondsPerDigit)
	}
	if !(res.Rate > 0 && res.Rate < 1) {
		t.Errorf("winner rate %g not contracting", res.Rate)
	}
}

// TestTuneKernelStageTrefethen: no stencil structure, so the stage decides
// between CSR and SELL purely on the slice padding ratio.
func TestTuneKernelStageTrefethen(t *testing.T) {
	a := mats.Trefethen(300)
	b := onesRHS(a)
	res, err := Tune(a, b, Config{Seed: 3, BlockSizes: []int{64}, LocalIters: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel == core.KernelStencil {
		t.Error("kernel stage picked stencil on a matrix with row-varying coefficients")
	}
	if res.KernelTraffic <= 0 {
		t.Errorf("traffic factor %g", res.KernelTraffic)
	}
}
