package tune

// invPhi is 1/φ = (√5−1)/2, the golden-section interval reduction factor.
const invPhi = 0.6180339887498949

// GoldenSection minimizes f over [lo, hi] by golden-section search and
// returns the best point found. It assumes f is unimodal on the bracket
// (true for the modeled-time objective near the spectral ω estimate, and
// for the Richardson contraction factor max(|1−ωλ₁|, |1−ωλ_n|) on any
// bracket). The search stops when the bracket shrinks below tol or after
// maxEval evaluations of f (maxEval ≤ 2 permits only the two initial
// interior points; maxEval ≤ 0 means unlimited).
func GoldenSection(f func(float64) float64, lo, hi, tol float64, maxEval int) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	evals := 2
	for b-a > tol && (maxEval <= 0 || evals < maxEval) {
		if f1 <= f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
		evals++
	}
	if f1 <= f2 {
		return x1
	}
	return x2
}
