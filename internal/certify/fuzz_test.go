package certify

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/sparse"
)

// FuzzCertify drives the classifier over arbitrary small CSR matrices —
// degenerate rows, zero and missing diagonals, non-finite values, 1×1 and
// entry-free systems — and asserts the admission contract: Certify never
// panics, always returns a verdict in bounded work, and never certifies
// Converges for a system with a zero (or missing) diagonal entry, where
// the Jacobi splitting does not exist.
func FuzzCertify(f *testing.F) {
	f.Add(uint8(1), []byte{})                                      // 1×1 with no entries
	f.Add(uint8(3), []byte{0, 0, 0, 0, 0, 0, 0, 0})                // zero-valued entries
	f.Add(uint8(4), []byte{1, 1, 10, 0, 2, 2, 20, 0, 3, 3, 30, 0}) // partial diagonal
	f.Add(uint8(2), []byte{0, 0, 255, 255, 1, 1, 1, 0, 0, 1, 7, 3})
	f.Add(uint8(5), []byte{0, 0, 1, 100, 1, 1, 1, 100, 2, 2, 1, 100, 3, 3, 1, 100, 4, 4, 1, 100, 0, 4, 3, 7})

	f.Fuzz(func(t *testing.T, dim uint8, data []byte) {
		n := int(dim%16) + 1 // 1..16 rows
		c := sparse.NewCOO(n, n)
		// Each 4-byte chunk encodes one entry: row, col, and a value whose
		// byte patterns also produce zeros, negatives, huge magnitudes and
		// non-finite floats.
		for len(data) >= 4 {
			i, j := int(data[0])%n, int(data[1])%n
			raw := uint16(binary.LittleEndian.Uint16(data[2:4]))
			v := float64(int16(raw)) / 16
			switch raw {
			case 0xFFFF:
				v = math.Inf(1)
			case 0xFFFE:
				v = math.NaN()
			case 0xFFFD:
				v = math.MaxFloat64
			}
			c.Add(i, j, v)
			data = data[4:]
		}
		a := c.ToCSR()

		// Tight work bounds: certification of any input must stay cheap.
		cert, err := Certify(a, Options{MaxPowerIters: 64, BoundSweeps: 4})
		if err != nil {
			t.Fatalf("square %dx%d input errored: %v", n, n, err)
		}
		if cert.Verdict == VerdictConverges {
			for i, d := range a.Diagonal() {
				if d == 0 {
					t.Fatalf("Converges verdict with zero diagonal at row %d (cert: %v)", i, cert)
				}
			}
		}
		// Verdicts must be deterministic: admission decisions are cached
		// and compared across fleet nodes.
		cert2, err := Certify(a, Options{MaxPowerIters: 64, BoundSweeps: 4})
		if err != nil || cert2 != cert {
			t.Fatalf("re-certification changed: %v vs %v (err %v)", cert, cert2, err)
		}
	})
}
