// Property tests for the certifier contract (external test package: it
// drives repro/internal/core, which in turn imports certify — the reverse
// import would cycle).
//
// The contract under test is the one docs/CERTIFY.md documents:
//
//  1. Soundness of Converges: every matrix the certifier admits with
//     VerdictConverges actually converges under asynchronous relaxation —
//     not on one lucky schedule but on many, and each recorded schedule
//     replays to the identical converged state.
//  2. The price is honest: observed global iterations to TargetDigits
//     orders of residual reduction stay within PredictedFactor ×
//     PredictedIters.
//  3. Soundness of Diverges: matrices built to violate the Strikwerda
//     condition with a Z sign pattern are certified Diverges, never
//     Converges.
package certify_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// genClass is one generator family with a known ground truth.
type genClass struct {
	name string
	// build returns a matrix of the class for this rng draw.
	build func(rng *rand.Rand) *sparse.CSR
	// wantConverges: the construction guarantees ρ(|B|) < 1, so the
	// certifier must admit it; otherwise the construction guarantees
	// ρ(B) = ρ(|B|) > 1 and the certifier must never admit it.
	wantConverges bool
}

// randSym builds a random symmetric matrix on a connected ring-plus-chords
// graph. Off-diagonal magnitudes are in (0.1, 1.1); mm forces the M-matrix
// sign pattern, otherwise signs are random. The diagonal is set per-row to
// rowSum·scale(i), so dominance is controlled exactly.
func randSym(rng *rand.Rand, n int, mm bool, scale func(i int, rowSum float64) float64) *sparse.CSR {
	type edge struct {
		i, j int
		w    float64
	}
	var edges []edge
	rowSum := make([]float64, n)
	add := func(i, j int, w float64) {
		edges = append(edges, edge{i, j, w})
		rowSum[i] += math.Abs(w)
		rowSum[j] += math.Abs(w)
	}
	for i := 0; i < n-1; i++ {
		add(i, i+1, 0.1+rng.Float64())
	}
	for k := 0; k < n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		add(i, j, 0.1+rng.Float64())
	}
	c := sparse.NewCOO(n, n)
	for _, e := range edges {
		w := -e.w
		if !mm && rng.Intn(2) == 0 {
			w = e.w
		}
		c.Add(e.i, e.j, w)
		c.Add(e.j, e.i, w)
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, scale(i, rowSum[i]))
	}
	return c.ToCSR()
}

// weakIrreducible builds a random-weight tridiagonal system: interior rows
// exactly weakly dominant, boundary rows strictly dominant, path graph —
// the irreducible-dominance class with ρ(|B|) just below 1.
func weakIrreducible(rng *rand.Rand, n int) *sparse.CSR {
	w := make([]float64, n-1)
	for i := range w {
		w[i] = 0.2 + rng.Float64()
		if rng.Intn(2) == 0 {
			w[i] = -w[i]
		}
	}
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		if i > 0 {
			c.Add(i, i-1, w[i-1])
			sum += math.Abs(w[i-1])
		}
		if i < n-1 {
			c.Add(i, i+1, w[i])
			sum += math.Abs(w[i])
		}
		if i == 0 || i == n-1 {
			sum *= 1.1 // strict at the boundary
		}
		c.Add(i, i, sum)
	}
	return c.ToCSR()
}

// mMatrixNonDominant builds a genuine nonsingular M-matrix with rows that
// violate weak diagonal dominance: A = D − N with N ≥ 0 and D chosen so
// that Ax > 0 for a strongly varying positive x. Rows where x_i is small
// get dominance < 1, yet ρ(D⁻¹N) ≤ 1/(1+δ) < 1 by Collatz–Wielandt.
func mMatrixNonDominant(rng *rand.Rand, n int) *sparse.CSR {
	const delta = 0.25
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Exp(2 * (rng.Float64() - 0.5)) // spread ~e² keeps dominance mixed
	}
	nx := make([]float64, n) // (Nx)_i accumulated as entries are drawn
	c := sparse.NewCOO(n, n)
	add := func(i, j int, w float64) {
		c.Add(i, j, -w)
		nx[i] += w * x[j]
	}
	for i := 0; i < n-1; i++ {
		w := 0.1 + rng.Float64()
		add(i, i+1, w)
		add(i+1, i, w)
	}
	for k := 0; k < n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			add(i, j, 0.1+rng.Float64())
		}
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, (1+delta)*nx[i]/x[i])
	}
	return c.ToCSR()
}

func onesRHS(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	return b
}

// TestPropertyCertifierContract generates matrices per class and holds
// every Converges verdict to the replay + iteration-budget contract, and
// every doomed construction to "never Converges".
func TestPropertyCertifierContract(t *testing.T) {
	classes := []genClass{
		{
			name: "strict-mixed-sign",
			build: func(rng *rand.Rand) *sparse.CSR {
				f := 1.2 + 1.3*rng.Float64()
				return randSym(rng, 8+rng.Intn(25), false, func(_ int, s float64) float64 { return f * s })
			},
			wantConverges: true,
		},
		{
			name: "mmatrix-nondominant",
			build: func(rng *rand.Rand) *sparse.CSR {
				return mMatrixNonDominant(rng, 8+rng.Intn(25))
			},
			wantConverges: true,
		},
		{
			name: "weak-irreducible",
			build: func(rng *rand.Rand) *sparse.CSR {
				return weakIrreducible(rng, 8+rng.Intn(9))
			},
			wantConverges: true,
		},
		{
			name: "doomed-z-pattern",
			build: func(rng *rand.Rand) *sparse.CSR {
				// Z sign pattern with every |B| row sum = 1.5: ρ(B) = 1.5.
				return randSym(rng, 8+rng.Intn(25), true, func(_ int, s float64) float64 { return s / 1.5 })
			},
			wantConverges: false,
		},
	}

	matrices, schedules := 200, 20
	if testing.Short() {
		matrices, schedules = 25, 4
	}
	for _, cl := range classes {
		t.Run(cl.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(cl.name)) * 9176))
			admitted := 0
			for m := 0; m < matrices; m++ {
				a := cl.build(rng)
				cert, err := certify.Certify(a, certify.Options{})
				if err != nil {
					t.Fatalf("matrix %d: %v", m, err)
				}
				if !cl.wantConverges {
					if cert.Verdict != certify.VerdictDiverges {
						t.Fatalf("matrix %d: doomed construction certified %v (cert: %v)", m, cert.Verdict, cert)
					}
					continue
				}
				if cert.Verdict != certify.VerdictConverges {
					t.Fatalf("matrix %d: %s construction certified %v, want converges (cert: %v)",
						m, cl.name, cert.Verdict, cert)
				}
				admitted++
				if cert.PredictedIters <= 0 {
					t.Fatalf("matrix %d: Converges with PredictedIters = %d", m, cert.PredictedIters)
				}
				verifyAdmitted(t, a, cert, rng, schedules)
			}
			if cl.wantConverges && admitted == 0 {
				t.Fatal("generator produced no admitted matrices — test is vacuous")
			}
		})
	}
}

// verifyAdmitted replays `schedules` recorded async runs of a certified
// matrix and asserts convergence inside the priced budget every time.
func verifyAdmitted(t *testing.T, a *sparse.CSR, cert certify.Certificate, rng *rand.Rand, schedules int) {
	t.Helper()
	b := onesRHS(a.Rows)
	// TargetDigits orders of reduction from the zero initial guess.
	tol := math.Pow(10, -cert.TargetDigits) * norm2(b)
	budget := cert.PredictedIters
	if budget > (1<<30)/certify.PredictedFactor {
		budget = (1 << 30) / certify.PredictedFactor
	}
	budget *= certify.PredictedFactor
	for s := 0; s < schedules; s++ {
		seed := rng.Int63()
		rec := sched.NewRecorder(0)
		opt := core.Options{
			BlockSize: 8, LocalIters: 2, MaxGlobalIters: budget,
			Tolerance: tol, Seed: seed, StaleProb: 0.2, Record: rec,
		}
		res, err := core.Solve(a, b, opt)
		if err != nil {
			t.Fatalf("seed %d: certified-converges solve errored: %v (cert: %v)", seed, err, cert)
		}
		if !res.Converged {
			t.Fatalf("seed %d: certified Converges but no convergence in %d = %d×PredictedIters iters (residual %g, cert: %v)",
				seed, budget, certify.PredictedFactor, res.Residual, cert)
		}
		cap := rec.Schedule()
		rres, err := core.Solve(a, b, core.Options{
			BlockSize: 8, LocalIters: 2, MaxGlobalIters: budget,
			Tolerance: tol, Replay: cap,
		})
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if !rres.Converged || rres.GlobalIterations != res.GlobalIterations {
			t.Fatalf("seed %d: replay diverged from recording (converged %v, iters %d vs %d)",
				seed, rres.Converged, rres.GlobalIterations, res.GlobalIterations)
		}
		for i := range res.X {
			if res.X[i] != rres.X[i] {
				t.Fatalf("seed %d: replayed solution differs at component %d", seed, i)
			}
		}
	}
}

func norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
