package certify

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/sparse"
	"repro/internal/spectral"
	"repro/internal/vecmath"
)

// ErrDivergent is the sentinel wrapped by every enforcement path that
// refuses a solve on a Diverges verdict (core.Options.Certify, the
// service's "certify": "enforce" mode). The HTTP layer maps it to 422.
var ErrDivergent = errors.New("certify: matrix certified divergent under asynchronous relaxation")

// Class is the convergence class the certifier assigned, the first match
// in the order below (a strictly dominant M-matrix reports the dominance
// class — the stronger, cheaper guarantee).
type Class int

const (
	// ClassUnknown: no classification applies (non-finite entries,
	// invalid structure, empty system).
	ClassUnknown Class = iota
	// ClassZeroDiagonal: some a_ii is zero or structurally missing; the
	// Jacobi splitting does not exist and relaxation is undefined.
	ClassZeroDiagonal
	// ClassStrictDiagDominant: |a_ii| > Σ_{j≠i}|a_ij| in every row;
	// ‖B‖∞ < 1 guarantees every asynchronous schedule converges.
	ClassStrictDiagDominant
	// ClassIrreducibleDiagDominant: weak dominance in every row, strict in
	// at least one, strongly connected sparsity graph; ρ(|B|) < 1 by
	// Perron–Frobenius.
	ClassIrreducibleDiagDominant
	// ClassMMatrix: Z-pattern (positive diagonal, nonpositive
	// off-diagonals) with a proven ρ(B) = ρ(|B|) < 1 — a nonsingular
	// M-matrix, the class with explicit step-asynchronous rate bounds.
	ClassMMatrix
	// ClassSpectral: no structural guarantee; the verdict rests on the
	// bounded-work spectral estimates alone.
	ClassSpectral
)

var classNames = map[Class]string{
	ClassUnknown:                 "unknown",
	ClassZeroDiagonal:            "zero-diagonal",
	ClassStrictDiagDominant:      "strictly-diagonally-dominant",
	ClassIrreducibleDiagDominant: "irreducibly-diagonally-dominant",
	ClassMMatrix:                 "m-matrix",
	ClassSpectral:                "spectral",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// MarshalText serializes the class name (the JSON vocabulary).
func (c Class) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses a class name.
func (c *Class) UnmarshalText(b []byte) error {
	for k, v := range classNames {
		if v == string(b) {
			*c = k
			return nil
		}
	}
	return fmt.Errorf("certify: unknown class %q", b)
}

// Verdict is the certifier's decision about asynchronous relaxation of the
// system. Unknown is not a failure: it means no bounded-work proof either
// way, and admission proceeds without a guarantee.
type Verdict int

const (
	// VerdictUnknown: neither convergence nor divergence proven within the
	// work bound.
	VerdictUnknown Verdict = iota
	// VerdictConverges: every admissible asynchronous schedule converges
	// (analytic class or ρ(|B|) < 1).
	VerdictConverges
	// VerdictDiverges: the stationary iteration provably expands
	// (ρ(B) > 1, or the splitting does not exist); running it wastes the
	// full iteration cap.
	VerdictDiverges
)

var verdictNames = map[Verdict]string{
	VerdictUnknown:   "unknown",
	VerdictConverges: "converges",
	VerdictDiverges:  "diverges",
}

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if s, ok := verdictNames[v]; ok {
		return s
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// MarshalText serializes the verdict name (the JSON vocabulary).
func (v Verdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses a verdict name.
func (v *Verdict) UnmarshalText(b []byte) error {
	for k, s := range verdictNames {
		if s == string(b) {
			*v = k
			return nil
		}
	}
	return fmt.Errorf("certify: unknown verdict %q", b)
}

// Mode is an enforcement level: what a solving layer does with the
// certificate. The service's "certify" request field parses to one.
type Mode int

const (
	// ModeOff: do not certify.
	ModeOff Mode = iota
	// ModeWarn: certify and attach the certificate to the result, but
	// admit every verdict (a Diverges job runs to its iteration cap).
	ModeWarn
	// ModeEnforce: refuse Diverges-verdict jobs (or reroute them to a
	// fallback solver) instead of running them.
	ModeEnforce
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeWarn:
		return "warn"
	case ModeEnforce:
		return "enforce"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a certify mode; the empty string is ModeOff.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off":
		return ModeOff, nil
	case "warn":
		return ModeWarn, nil
	case "enforce":
		return ModeEnforce, nil
	default:
		return ModeOff, fmt.Errorf("certify: unknown mode %q (want \"off\", \"warn\" or \"enforce\")", s)
	}
}

// maxPredicted caps PredictedIters when the contraction rate is too close
// to 1 to price (documented as "at least this many").
const maxPredicted = 1 << 30

// PredictedFactor is the documented slack of the iteration budget: on a
// Converges verdict, observed global iterations to TargetDigits orders of
// residual reduction stay within PredictedFactor × PredictedIters. The
// bound is enforced by the certifier property tests and gated in benchgate
// (see docs/CERTIFY.md); the slack absorbs block-local rounding, schedule
// staleness, and the gap between ‖·‖∞ rate bounds and observed residuals.
const PredictedFactor = 4

// Certificate is the certifier's signed-off output for one matrix: the
// class, the spectral evidence, the verdict, and — for a Converges
// verdict — the predicted iterations-to-tolerance from the rate bound.
// All float fields are finite (JSON-safe); 0 in RhoUpper means "no finite
// upper bound was established".
type Certificate struct {
	Class   Class   `json:"class"`
	Verdict Verdict `json:"verdict"`
	// RhoEstimate is the best point estimate of ρ(|B|), clamped into the
	// rigorous Collatz–Wielandt interval [RhoLower, RhoUpper].
	RhoEstimate float64 `json:"rho_estimate"`
	// RhoLower and RhoUpper are rigorous bounds on ρ(|B|) (Collatz–
	// Wielandt); RhoUpper is 0 when no finite upper bound was established.
	RhoLower float64 `json:"rho_lower"`
	RhoUpper float64 `json:"rho_upper,omitempty"`
	// RhoConverged reports whether the bounded-work power iteration met
	// its tolerance (false: RhoEstimate is best-effort).
	RhoConverged bool `json:"rho_converged"`
	// RhoJacobi is the ρ(B) estimate, populated only on the divergence-
	// analysis path (0 otherwise).
	RhoJacobi float64 `json:"rho_jacobi,omitempty"`
	// Dominance is min_i |a_ii| / Σ_{j≠i}|a_ij| (the strict-dominance
	// margin; > 1 iff strictly dominant), capped at 1e300 for rows with
	// empty off-diagonals.
	Dominance float64 `json:"dominance"`
	// PredictedIters prices a Converges verdict: global iterations for
	// TargetDigits orders of residual reduction at the certified rate,
	// ceil(digits·ln10 / −ln ρ). 0 unless Verdict is Converges.
	PredictedIters int `json:"predicted_iters,omitempty"`
	// TargetDigits echoes the reduction the prediction is priced for.
	TargetDigits float64 `json:"target_digits,omitempty"`
	// Reason is the one-line human-readable justification.
	Reason string `json:"reason"`
}

// String renders the certificate as one log line.
func (c Certificate) String() string {
	s := fmt.Sprintf("class=%s verdict=%s rho(|B|)=%.4f", c.Class, c.Verdict, c.RhoEstimate)
	if c.PredictedIters > 0 {
		s += fmt.Sprintf(" predicted_iters=%d", c.PredictedIters)
	}
	return s + " (" + c.Reason + ")"
}

// Options configures Certify. Zero values select the defaults; the zero
// Options is the configuration every cache-sharing layer should use so
// certificates are reproducible across nodes.
type Options struct {
	// Seed drives the seeded spectral estimators (default 1). The
	// nonnegative-matrix estimates start from the all-ones vector and do
	// not consume it.
	Seed int64
	// MaxPowerIters bounds the ρ(|B|) power iteration (default 2000);
	// admission latency is at most this many sparse multiplies.
	MaxPowerIters int
	// PowerTol is the power iteration's relative-change tolerance
	// (default 1e-6).
	PowerTol float64
	// BoundSweeps tightens the Collatz–Wielandt bounds (default 16).
	BoundSweeps int
	// TargetDigits prices PredictedIters: orders of magnitude of residual
	// reduction (default 6, the default-tolerance regime).
	TargetDigits float64
	// Margin is the relative safety band around ρ = 1 inside which a
	// point estimate is not trusted for a verdict (default 0.05).
	Margin float64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxPowerIters == 0 {
		o.MaxPowerIters = 2000
	}
	if o.PowerTol == 0 {
		o.PowerTol = 1e-6
	}
	if o.BoundSweeps == 0 {
		o.BoundSweeps = 16
	}
	if o.TargetDigits == 0 {
		o.TargetDigits = 6
	}
	if o.Margin == 0 {
		o.Margin = 0.05
	}
	return o
}

// Certify classifies A and produces its convergence certificate. It
// errors only on structurally unusable input (nil or non-square);
// everything else — including invalid CSR internals, non-finite entries
// and zero diagonals — is absorbed into the certificate so admission
// paths have exactly one decision to make: the Verdict. Work is bounded
// by Options (no input can make certification hang), and the result is
// deterministic for a given (matrix, Options) pair.
func Certify(a *sparse.CSR, opt Options) (Certificate, error) {
	opt = opt.withDefaults()
	if a == nil {
		return Certificate{}, errors.New("certify: nil matrix")
	}
	if a.Rows != a.Cols {
		return Certificate{}, fmt.Errorf("certify: matrix must be square, have %dx%d", a.Rows, a.Cols)
	}
	if a.Rows == 0 {
		return Certificate{
			Class: ClassUnknown, Verdict: VerdictConverges,
			TargetDigits: opt.TargetDigits,
			Reason:       "empty system: nothing to iterate",
		}, nil
	}
	if err := a.Validate(); err != nil {
		return Certificate{
			Class: ClassUnknown, Verdict: VerdictUnknown,
			Reason: fmt.Sprintf("invalid CSR structure: %v", err),
		}, nil
	}
	for i, v := range a.Diagonal() {
		if v == 0 {
			return Certificate{
				Class: ClassZeroDiagonal, Verdict: VerdictDiverges,
				Reason: fmt.Sprintf("zero or missing diagonal at row %d: Jacobi splitting undefined", i),
			}, nil
		}
	}
	for _, v := range a.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Certificate{
				Class: ClassUnknown, Verdict: VerdictUnknown,
				Reason: "non-finite matrix entry",
			}, nil
		}
	}

	cert := Certificate{TargetDigits: opt.TargetDigits}

	dom := a.DiagonalDominance()
	minDom, strictRows := math.Inf(1), 0
	for _, d := range dom {
		if d < minDom {
			minDom = d
		}
		if d > 1 {
			strictRows++
		}
	}
	cert.Dominance = math.Min(minDom, 1e300)

	// Spectral evidence on |B|: rigorous Collatz–Wielandt bounds plus the
	// bounded-work power estimate (ErrNoConvergence only flags an
	// unconverged estimate; the best-so-far radius is still returned).
	b, err := a.JacobiIterationMatrix()
	if err != nil {
		// Unreachable after the diagonal scan, but never panic on races
		// between checks and exotic inputs.
		return Certificate{
			Class: ClassZeroDiagonal, Verdict: VerdictDiverges,
			Reason: fmt.Sprintf("Jacobi splitting undefined: %v", err),
		}, nil
	}
	abs := b.Abs()
	lo, hi, berr := spectral.NonNegativeRadiusBounds(abs, opt.BoundSweeps)
	if berr != nil {
		lo, hi = 0, math.Inf(1)
	}
	pr, _ := spectral.NonNegativeRadius(abs, opt.MaxPowerIters, opt.PowerTol)
	if !pr.Converged || hi >= 1 {
		// A periodic |B| (bipartite sparsity, e.g. any tridiagonal pattern)
		// has eigenvalues on more than one ray of modulus ρ: power iterates
		// then oscillate forever and the Collatz–Wielandt ratios never
		// tighten. For nonnegative M and ε > 0, ρ(M + εI) = ρ(M) + ε and
		// the shifted Perron root is strictly dominant, so rerun both
		// estimates on the shifted matrix and translate back.
		eps := 0.5 * math.Max(pr.Radius, lo)
		if eps <= 0 || math.IsInf(eps, 0) || math.IsNaN(eps) {
			eps = 1
		}
		sh := addScaledIdentity(abs, eps)
		if slo, shi, serr := spectral.NonNegativeRadiusBounds(sh, opt.BoundSweeps); serr == nil {
			if v := math.Max(slo-eps, 0); v > lo {
				lo = v
			}
			if v := math.Max(shi-eps, 0); v < hi {
				hi = v
			}
		}
		if spr, _ := spectral.NonNegativeRadius(sh, opt.MaxPowerIters, opt.PowerTol); spr.Converged {
			pr.Converged = true
			pr.Radius = math.Max(spr.Radius-eps, 0)
		}
	}
	cert.RhoConverged = pr.Converged
	est := pr.Radius
	if est < lo {
		est = lo
	}
	if !math.IsInf(hi, 1) && est > hi {
		est = hi
	}
	cert.RhoEstimate = est
	cert.RhoLower = lo
	if !math.IsInf(hi, 1) {
		cert.RhoUpper = hi
	}

	zpattern := isZMatrix(a)

	switch {
	case minDom > 1:
		cert.Class = ClassStrictDiagDominant
	case minDom >= 1 && strictRows > 0 && stronglyConnected(a):
		cert.Class = ClassIrreducibleDiagDominant
	case zpattern && hi < 1:
		cert.Class = ClassMMatrix
	default:
		cert.Class = ClassSpectral
	}

	// Verdict: analytic classes and a proven ρ(|B|) < 1 certify
	// convergence; divergence needs ρ(B) > 1 (for Z-patterns B = |B|, so
	// the Collatz–Wielandt lower bound is already that proof; otherwise
	// the symmetric Rayleigh bound or a converged ρ(B) estimate decides).
	switch {
	case cert.Class == ClassStrictDiagDominant:
		cert.Verdict = VerdictConverges
		cert.Reason = fmt.Sprintf("strict diagonal dominance: ‖B‖∞ ≤ %.4g < 1, every asynchronous schedule contracts", 1/minDom)
	case cert.Class == ClassIrreducibleDiagDominant:
		cert.Verdict = VerdictConverges
		cert.Reason = "irreducible diagonal dominance: ρ(|B|) < 1 by Perron–Frobenius"
	case hi < 1:
		cert.Verdict = VerdictConverges
		if cert.Class == ClassMMatrix {
			cert.Reason = fmt.Sprintf("nonsingular M-matrix: ρ(B) = ρ(|B|) ≤ %.4g < 1 (Collatz–Wielandt)", hi)
		} else {
			cert.Reason = fmt.Sprintf("ρ(|B|) ≤ %.4g < 1 (Collatz–Wielandt): Strikwerda condition holds", hi)
		}
	case pr.Converged && est < 1-opt.Margin:
		cert.Verdict = VerdictConverges
		cert.Reason = fmt.Sprintf("ρ(|B|) ≈ %.4g < 1 (converged power estimate): Strikwerda condition holds", est)
	case zpattern && lo > 1+opt.Margin:
		cert.Verdict = VerdictDiverges
		cert.RhoJacobi = lo
		cert.Reason = fmt.Sprintf("Z-pattern with ρ(B) = ρ(|B|) ≥ %.4g > 1 (Collatz–Wielandt): the iteration expands", lo)
	default:
		rhoB, proven := jacobiRhoLower(a, b, opt)
		cert.RhoJacobi = rhoB
		switch {
		case proven && rhoB > 1+opt.Margin:
			cert.Verdict = VerdictDiverges
			cert.Reason = fmt.Sprintf("ρ(B) ≥ %.4g > 1: the stationary iteration expands for generic data", rhoB)
		case pr.Converged:
			cert.Verdict = VerdictUnknown
			cert.Reason = fmt.Sprintf("ρ(|B|) ≈ %.4g ≥ 1: no asynchronous guarantee, divergence not proven (ρ(B) est %.4g)", est, rhoB)
		default:
			cert.Verdict = VerdictUnknown
			cert.Reason = "spectral estimates did not resolve within the work bound"
		}
	}

	if cert.Verdict == VerdictConverges {
		cert.PredictedIters = predictIters(rateFor(cert, pr.Converged), opt.TargetDigits)
	}
	return cert, nil
}

// addScaledIdentity returns m + eps·I for a square matrix m.
func addScaledIdentity(m *sparse.CSR, eps float64) *sparse.CSR {
	c := sparse.NewCOO(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c.Add(i, m.ColIdx[k], m.Val[k])
		}
		c.Add(i, i, eps)
	}
	return c.ToCSR()
}

// rateFor picks the contraction rate backing PredictedIters: the converged
// power estimate when available, else the tightest rigorous upper bound.
func rateFor(c Certificate, estConverged bool) float64 {
	rate := math.Inf(1)
	if estConverged {
		rate = c.RhoEstimate
	}
	if c.RhoUpper > 0 && c.RhoUpper < rate {
		rate = c.RhoUpper
	}
	if c.Dominance > 1 && 1/c.Dominance < rate {
		rate = 1 / c.Dominance
	}
	if math.IsInf(rate, 1) {
		rate = c.RhoEstimate
	}
	return rate
}

// predictIters prices digits orders of residual reduction at contraction
// rate rho per global iteration: ceil(digits·ln10 / −ln ρ), clamped into
// [1, maxPredicted].
func predictIters(rho, digits float64) int {
	if rho <= 0 {
		return 1
	}
	if rho >= 1 {
		return maxPredicted
	}
	p := math.Ceil(digits * math.Ln10 / -math.Log(rho))
	if p < 1 {
		return 1
	}
	if p > maxPredicted {
		return maxPredicted
	}
	return int(p)
}

// isZMatrix reports the M-matrix sign pattern: strictly positive diagonal,
// nonpositive off-diagonal entries.
func isZMatrix(a *sparse.CSR) bool {
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			v := a.Val[p]
			if a.ColIdx[p] == i {
				if v <= 0 {
					return false
				}
			} else if v > 0 {
				return false
			}
		}
	}
	return true
}

// stronglyConnected reports whether the sparsity graph of A (edge i→j for
// every stored off-diagonal a_ij ≠ 0) is strongly connected: reachability
// of every vertex from vertex 0 both forward and in the reverse graph.
func stronglyConnected(a *sparse.CSR) bool {
	n := a.Rows
	if n <= 1 {
		return true
	}
	if !reachesAll(a, n) {
		return false
	}
	return reachesAll(a.Transpose(), n)
}

// reachesAll runs a BFS over the stored nonzero pattern from vertex 0.
func reachesAll(a *sparse.CSR, n int) bool {
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	seen[0] = true
	queue = append(queue, 0)
	count := 1
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.ColIdx[p]
			if j == i || a.Val[p] == 0 || seen[j] {
				continue
			}
			seen[j] = true
			count++
			queue = append(queue, j)
		}
	}
	return count == n
}

// jacobiRhoLower estimates ρ(B). For symmetric A (with the positive
// diagonal already established by the caller's path) it power-iterates the
// symmetrized iteration matrix I − D^{−1/2}AD^{−1/2} (similar to B) and
// returns the largest |Rayleigh quotient| seen — a rigorous lower bound on
// ρ(B), so proven=true. For nonsymmetric A it falls back to the seeded
// power estimate, proven only if the estimator converged.
func jacobiRhoLower(a, b *sparse.CSR, opt Options) (rho float64, proven bool) {
	iters := opt.MaxPowerIters
	if iters > 512 {
		iters = 512
	}
	if a.IsSymmetric(1e-12) {
		if nrm, err := spectral.NormalizedMatrix(a); err == nil {
			n := nrm.Rows
			rng := rand.New(rand.NewSource(opt.Seed))
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			nn := vecmath.Nrm2(x)
			if nn == 0 {
				return 0, false
			}
			vecmath.Scale(1/nn, x)
			y := make([]float64, n)
			var best float64
			for k := 0; k < iters; k++ {
				nrm.MulVec(y, x)
				for i := range y {
					y[i] = x[i] - y[i] // y = (I − N)x, N = D^{−1/2}AD^{−1/2}
				}
				if r := math.Abs(vecmath.Dot(x, y)); r > best {
					best = r
				}
				nn = vecmath.Nrm2(y)
				if nn == 0 {
					break
				}
				vecmath.Copy(x, y)
				vecmath.Scale(1/nn, x)
			}
			return best, true
		}
	}
	est, err := spectral.JacobiSpectralRadius(a, opt.Seed)
	return est, err == nil
}
