// Package certify is the admission-time convergence certifier: it decides,
// in bounded work, whether a block-asynchronous relaxation of Ax = b is
// provably convergent, provably divergent, or undecided — before a single
// solve iteration runs.
//
// The paper's s1rmt3m1 experiment is the cautionary tale: asynchronous
// relaxation diverges outright on systems that synchronous Krylov methods
// still handle, and at fleet scale a worker burning its iteration cap on a
// doomed job is pure waste. The theory that prevents it is classical:
//
//   - Strict diagonal dominance gives ‖B‖∞ = max_i Σ_{j≠i}|a_ij|/|a_ii| < 1
//     for the Jacobi iteration matrix B = I − D⁻¹A, hence convergence of
//     every admissible asynchronous schedule (Chazan–Miranker; Vigna's
//     step-asynchronous SOR bounds are the same mechanism with rates).
//   - Irreducible diagonal dominance (weak dominance everywhere, strict in
//     at least one row, strongly connected sparsity graph) forces
//     ρ(|B|) < 1 by Perron–Frobenius.
//   - For Z-matrices (positive diagonal, nonpositive off-diagonals) B is
//     elementwise nonnegative, so ρ(B) = ρ(|B|) and A is a nonsingular
//     M-matrix iff ρ(B) < 1 — the class Vigna's guarantees are stated for.
//   - In general, Strikwerda's condition ρ(|B|) < 1 is sufficient for
//     asynchronous convergence, and ρ(B) > 1 is sufficient for divergence
//     of the underlying stationary iteration. Both are estimated with the
//     bounded-work power iteration and the rigorous Collatz–Wielandt
//     bounds from internal/spectral (deterministically seeded, capped, so
//     admission latency is bounded even for defective spectra).
//
// Certify classifies A into the first matching Class, derives a Verdict
// (Converges / Diverges / Unknown — Unknown never blocks admission, it
// only disables the guarantee), and prices a Converges verdict with
// PredictedIters: the iteration count for TargetDigits orders of residual
// reduction from the contraction rate ρ, ceil(d·ln10 / −ln ρ). The
// prediction is an order-of-magnitude budget, not a promise; the
// documented contract (docs/CERTIFY.md, enforced by the property tests) is
// that observed global iterations stay within PredictedFactor× of it on
// the certified classes.
//
// internal/service caches certificates by matrix fingerprint next to the
// plan and tuning caches and exposes the "certify" request field
// ("off" | "warn" | "enforce"); enforce answers provably-doomed
// submissions with a structured 422 carrying the certificate (or reroutes
// them to the GMRES fallback) in certificate time — milliseconds — instead
// of iteration-cap time.
package certify
