package certify

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/mats"
	"repro/internal/sparse"
)

// tridiag builds the n-point [−1 2 −1] Laplacian: weakly dominant in the
// interior, strictly dominant at the two boundary rows, irreducible.
func tridiag(n int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i+1 < n {
			c.AddSym(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

func TestCertifyStrictDominant(t *testing.T) {
	c := sparse.NewCOO(8, 8)
	for i := 0; i < 8; i++ {
		c.Add(i, i, 5)
		if i+1 < 8 {
			c.AddSym(i, i+1, -1)
		}
	}
	cert, err := Certify(c.ToCSR(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Class != ClassStrictDiagDominant {
		t.Fatalf("class = %v, want strict diagonal dominance (cert: %v)", cert.Class, cert)
	}
	if cert.Verdict != VerdictConverges {
		t.Fatalf("verdict = %v, want converges", cert.Verdict)
	}
	if cert.PredictedIters <= 0 || cert.PredictedIters > 200 {
		t.Errorf("predicted iters %d implausible for dominance %g", cert.PredictedIters, cert.Dominance)
	}
	if cert.RhoUpper <= 0 || cert.RhoUpper >= 1 {
		t.Errorf("rho upper bound %g, want in (0,1)", cert.RhoUpper)
	}
}

func TestCertifyIrreducibleDominant(t *testing.T) {
	cert, err := Certify(tridiag(40), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Class != ClassIrreducibleDiagDominant {
		t.Fatalf("class = %v, want irreducible diagonal dominance (cert: %v)", cert.Class, cert)
	}
	if cert.Verdict != VerdictConverges {
		t.Fatalf("verdict = %v, want converges", cert.Verdict)
	}
	if cert.PredictedIters <= 0 {
		t.Errorf("predicted iters %d, want positive", cert.PredictedIters)
	}
}

func TestCertifyReducibleWeakDominanceIsNotIrreducibleClass(t *testing.T) {
	// Two disconnected tridiagonal components: weak dominance with strict
	// rows, but the graph is not strongly connected, so the irreducible
	// class must not be claimed (ρ(|B|) < 1 still holds and may certify
	// convergence on the spectral path — the class is what is asserted).
	c := sparse.NewCOO(8, 8)
	for b := 0; b < 2; b++ {
		off := 4 * b
		for i := 0; i < 4; i++ {
			c.Add(off+i, off+i, 2)
			if i+1 < 4 {
				c.AddSym(off+i, off+i+1, -1)
			}
		}
	}
	cert, err := Certify(c.ToCSR(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Class == ClassIrreducibleDiagDominant || cert.Class == ClassStrictDiagDominant {
		t.Fatalf("class = %v for a reducible weakly dominant matrix", cert.Class)
	}
	if cert.Verdict == VerdictDiverges {
		t.Fatalf("verdict = diverges for a convergent block-diagonal Laplacian (cert: %v)", cert)
	}
}

func TestCertifyMMatrixWithoutDominance(t *testing.T) {
	// Z-pattern, row 0 violates weak dominance (1 < 0.5+0.7), yet
	// ρ(|B|) < 1: a nonsingular M-matrix only the spectral test can admit.
	c := sparse.NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(0, 1, -0.5)
	c.Add(0, 2, -0.7)
	c.Add(1, 0, -0.3)
	c.Add(1, 1, 1)
	c.Add(1, 2, -0.2)
	c.Add(2, 0, -0.1)
	c.Add(2, 1, -0.1)
	c.Add(2, 2, 1)
	cert, err := Certify(c.ToCSR(), Options{BoundSweeps: 64})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Class != ClassMMatrix {
		t.Fatalf("class = %v, want m-matrix (cert: %v)", cert.Class, cert)
	}
	if cert.Verdict != VerdictConverges {
		t.Fatalf("verdict = %v, want converges", cert.Verdict)
	}
}

func TestCertifyS1RMT3M1Diverges(t *testing.T) {
	cert, err := Certify(mats.S1RMT3M1(200), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict != VerdictDiverges {
		t.Fatalf("verdict = %v, want diverges (cert: %v)", cert.Verdict, cert)
	}
	if cert.RhoJacobi <= 1 {
		t.Errorf("rho(B) evidence %g, want > 1", cert.RhoJacobi)
	}
	if cert.PredictedIters != 0 {
		t.Errorf("predicted iters %d on a diverges verdict, want 0", cert.PredictedIters)
	}
}

func TestCertifyZeroDiagonal(t *testing.T) {
	c := sparse.NewCOO(3, 3)
	c.Add(0, 0, 2)
	c.Add(1, 2, 1) // row 1 has no diagonal entry
	c.Add(2, 2, 2)
	cert, err := Certify(c.ToCSR(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Class != ClassZeroDiagonal || cert.Verdict != VerdictDiverges {
		t.Fatalf("got class=%v verdict=%v, want zero-diagonal/diverges", cert.Class, cert.Verdict)
	}
}

func TestCertifyNonFiniteEntries(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 1, math.NaN())
	c.Add(1, 1, 1)
	cert, err := Certify(c.ToCSR(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict == VerdictConverges {
		t.Fatalf("NaN entry certified converges: %v", cert)
	}
	if cert.Class != ClassUnknown {
		t.Errorf("class = %v, want unknown", cert.Class)
	}
}

func TestCertifyDegenerateShapes(t *testing.T) {
	one := sparse.NewCOO(1, 1)
	one.Add(0, 0, 5)
	cert, err := Certify(one.ToCSR(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict != VerdictConverges {
		t.Fatalf("1x1 nonzero system: verdict %v, want converges", cert.Verdict)
	}

	empty := &sparse.CSR{Rows: 0, Cols: 0, RowPtr: []int{0}}
	cert, err = Certify(empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict != VerdictConverges {
		t.Fatalf("empty system: verdict %v, want converges", cert.Verdict)
	}

	rect := sparse.NewCOO(2, 3)
	if _, err := Certify(rect.ToCSR(), Options{}); err == nil {
		t.Fatal("non-square matrix did not error")
	}
	if _, err := Certify(nil, Options{}); err == nil {
		t.Fatal("nil matrix did not error")
	}
}

func TestCertifyDeterministic(t *testing.T) {
	a := mats.S1RMT3M1(120)
	c1, err := Certify(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Certify(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("certification not deterministic:\n%+v\n%+v", c1, c2)
	}
}

func TestCertificateJSONRoundTrip(t *testing.T) {
	cert, err := Certify(tridiag(16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(cert)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Certificate
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Class != cert.Class || back.Verdict != cert.Verdict || back.PredictedIters != cert.PredictedIters {
		t.Fatalf("round trip changed certificate:\n%+v\n%+v", cert, back)
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{
		"": ModeOff, "off": ModeOff, "warn": ModeWarn, "enforce": ModeEnforce,
		"ENFORCE": ModeEnforce, " warn ": ModeWarn,
	} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("always"); err == nil {
		t.Error("ParseMode(always) did not error")
	}
}

func TestPredictIters(t *testing.T) {
	if got := predictIters(0.5, 6); got != 20 {
		t.Errorf("predictIters(0.5, 6) = %d, want 20", got)
	}
	if got := predictIters(0, 6); got != 1 {
		t.Errorf("predictIters(0, 6) = %d, want 1", got)
	}
	if got := predictIters(1, 6); got != maxPredicted {
		t.Errorf("predictIters(1, 6) = %d, want cap", got)
	}
}
