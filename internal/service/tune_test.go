package service

import (
	"context"
	"strings"
	"testing"

	"repro/internal/mats"
	"repro/internal/tune"
	"repro/internal/vecmath"
)

// quickTune is a small search grid so tests don't probe the full default
// candidate set.
func quickTune() tune.Config {
	return tune.Config{Seed: 1, BlockSizes: []int{32, 64}, LocalIters: []int{1, 3}, ProbeIters: 15}
}

// TestGetOrTuneCachesByFingerprint pins the headline economics: the second
// lookup of a fingerprint performs zero probe solves.
func TestGetOrTuneCachesByFingerprint(t *testing.T) {
	c := NewPlanCache(CacheConfig{})
	a := mats.Trefethen(400)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	fp := Fingerprint(a)

	r1, hit, err := c.GetOrTune(a, fp, b, quickTune())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first lookup reported a cache hit")
	}
	st := c.TuneStats()
	if st.Searches != 1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("after first search: %+v", st)
	}
	if st.ProbeSolves == 0 || st.ProbeSolves != uint64(r1.ProbeSolves) {
		t.Fatalf("probe accounting: cache says %d, result says %d", st.ProbeSolves, r1.ProbeSolves)
	}

	r2, hit, err := c.GetOrTune(a, fp, b, quickTune())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second lookup missed the cache")
	}
	if r2 != r1 {
		t.Errorf("cached tuning differs: %+v vs %+v", r2, r1)
	}
	st2 := c.TuneStats()
	if st2.ProbeSolves != st.ProbeSolves {
		t.Errorf("second lookup ran %d probe solves, want 0", st2.ProbeSolves-st.ProbeSolves)
	}
	if st2.Searches != 1 || st2.Hits != 1 {
		t.Errorf("after hit: %+v", st2)
	}
}

// TestServiceTuneAutoEndToEnd submits a "tune": "auto" job through the full
// queue path and checks the result reports the tuned parameters; a second
// job of the same matrix must reuse the cached tuning.
func TestServiceTuneAutoEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	req := SolveRequest{
		MatrixMarket:   mmPayload(t, mats.Trefethen(300)),
		Tune:           "auto",
		MaxGlobalIters: 400,
		Tolerance:      1e-8,
		Seed:           1,
	}
	run := func() *JobResult {
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if st := j.State(); st != JobDone {
			t.Fatalf("job state %v (%v)", st, j.Err())
		}
		v := j.Snapshot()
		if v.Result == nil || v.Result.Tuned == nil {
			t.Fatalf("tuned job carries no tuning info: %+v", v.Result)
		}
		return v.Result
	}

	first := run()
	tp := first.Tuned
	if tp.CacheHit {
		t.Error("first tuned solve claims a tuning-cache hit")
	}
	if tp.BlockSize <= 0 || tp.LocalIters <= 0 || tp.Omega <= 0 || tp.Omega >= 2 {
		t.Fatalf("implausible tuned parameters: %+v", tp)
	}
	if !first.Converged {
		t.Error("tuned solve did not converge")
	}
	probes := s.Cache().TuneStats().ProbeSolves
	if probes == 0 {
		t.Fatal("first tuned solve ran no probe solves")
	}

	second := run()
	if !second.Tuned.CacheHit {
		t.Error("second tuned solve missed the tuning cache")
	}
	if *second.Tuned != *tp && second.Tuned.CacheHit {
		// Parameters must match apart from the hit flag.
		w := *second.Tuned
		w.CacheHit = tp.CacheHit
		if w != *tp {
			t.Errorf("second solve tuned differently: %+v vs %+v", second.Tuned, tp)
		}
	}
	if got := s.Cache().TuneStats().ProbeSolves; got != probes {
		t.Errorf("second solve of the same fingerprint ran %d probe solves, want 0", got-probes)
	}
}

// TestServiceTuneValidation covers the request-surface rules around tune.
func TestServiceTuneValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	for _, req := range []SolveRequest{
		{Matrix: "fv1", Tune: "maximal", BlockSize: 8, LocalIters: 1, MaxGlobalIters: 1},
		{Matrix: "fv1", Tune: "auto", ExactLocal: true, MaxGlobalIters: 1},
		{Matrix: "fv1", MaxGlobalIters: 1, LocalIters: 1}, // no block size without tune
	} {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("request %+v was accepted", req)
		}
	}
	// tune=auto lifts the block_size/local_iters requirements.
	if err := s.validate(SolveRequest{Matrix: "fv1", Tune: "auto", MaxGlobalIters: 1}); err != nil {
		t.Errorf("tune=auto request rejected: %v", err)
	}
}

// TestServiceTuneMetrics checks the tuner counters surface at /metricsz.
func TestServiceTuneMetrics(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	a := mats.Trefethen(300)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	if _, _, err := s.Cache().GetOrTune(a, Fingerprint(a), b, quickTune()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"service_tune_searches_total 1",
		"service_tune_cache_hits_total 0",
		"service_tune_probe_solves_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
