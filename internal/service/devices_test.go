package service

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/multigpu"
)

// TestServiceDeviceSolve routes a job through the live multi-device
// executor and checks the result carries the configuration echo, the
// modeled wall time, and that the per-strategy counter in /metricsz agrees
// with /statsz.
func TestServiceDeviceSolve(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	req := quickRequest(t)
	req.Devices = 2
	req.Strategy = "amc"
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobDone {
		t.Fatalf("state %v (err %v), want done", st, j.Err())
	}
	res := j.Result()
	if !res.Converged {
		t.Fatalf("not converged: residual %g", res.Residual)
	}
	if res.Devices != 2 || res.Strategy != "AMC" {
		t.Errorf("result echoes devices=%d strategy=%q, want 2/AMC", res.Devices, res.Strategy)
	}
	if res.ModeledSeconds <= 0 {
		t.Errorf("ModeledSeconds = %g, want > 0 for a device job", res.ModeledSeconds)
	}

	if got := s.Stats().DeviceSolves["AMC"]; got != 1 {
		t.Errorf("Stats device_solves[AMC] = %d, want 1", got)
	}
	var sb strings.Builder
	if err := s.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `service_device_solves_total{strategy="AMC"} 1`) {
		t.Error("/metricsz missing service_device_solves_total{strategy=\"AMC\"} 1")
	}
	// The sharded executor reports under its own engine label.
	if !strings.Contains(sb.String(), `core_global_iterations_total{engine="sharded"}`) {
		t.Error("/metricsz missing the sharded engine's iteration counter")
	}
}

func TestServiceDeviceValidation(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	base := func() SolveRequest {
		return SolveRequest{Matrix: "fv1", BlockSize: 8, LocalIters: 1, MaxGlobalIters: 1}
	}

	cases := []struct {
		name   string
		mutate func(*SolveRequest)
	}{
		{"negative devices", func(r *SolveRequest) { r.Devices = -1 }},
		{"strategy without devices", func(r *SolveRequest) { r.Strategy = "amc" }},
		{"unknown strategy", func(r *SolveRequest) { r.Devices = 2; r.Strategy = "nvlink" }},
		{"engine with devices", func(r *SolveRequest) { r.Devices = 2; r.Engine = "goroutine" }},
		{"tune with devices", func(r *SolveRequest) { r.Devices = 2; r.Tune = "auto"; r.BlockSize = 0 }},
		{"too many devices", func(r *SolveRequest) { r.Devices = 9 }},
	}
	for _, tc := range cases {
		req := base()
		tc.mutate(&req)
		if _, err := s.Submit(req); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}

	req := base()
	req.Devices = 3
	req.Strategy = "dc"
	if _, err := s.Submit(req); !errors.Is(err, multigpu.ErrUnsupported) {
		t.Errorf("DC with 3 devices: err = %v, want ErrUnsupported at submit time", err)
	}
}
