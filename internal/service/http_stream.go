package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
)

// streamStep runs one session step and streams its live residual to the
// client — "sse" frames the payloads as Server-Sent Events, "json" as
// chunked JSON lines; both carry the same three payload shapes (progress
// samples, then exactly one result or error).
//
// The status line commits before the solve starts, so step failures after
// that point arrive as in-stream error payloads, not HTTP statuses. To keep
// the common failures on the status line anyway, the session is looked up
// (404/410) before streaming begins; the in-stream error then only covers
// solve-time failures and the lookup/solve race.
func streamStep(w http.ResponseWriter, s *Service, id string, req StepRequest, enc streamEncoder) {
	ss, err := s.sessions.get(id)
	if err != nil {
		writeSessionError(w, err)
		return
	}
	if ss.view().State != SessionActive.String() {
		// Tombstones answer the status-line 410; the in-stream error frame
		// only covers a session dying between this check and the step.
		writeSessionError(w, ss.gone())
		return
	}
	if len(req.RHS) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("service: step rhs must be non-empty"))
		return
	}

	w.Header().Set("Content-Type", enc.contentType())
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	every := req.ProgressEvery
	if every <= 0 {
		every = 1
	}
	samples := 0
	progress := func(p StepProgress) {
		samples++
		if samples%every != 0 {
			return
		}
		enc.progress(w, p)
		flush()
	}

	res, err := s.StepSession(id, req, progress)
	if err != nil {
		enc.errorEvent(w, err)
	} else {
		enc.result(w, res)
	}
	flush()
}

// streamError is the in-stream error payload. Code carries the session-gone
// vocabulary ("session-expired", "session-closed") when it applies, so a
// streaming client can distinguish a dead session from a failed solve
// without re-parsing the message.
type streamError struct {
	Error       string `json:"error"`
	Code        string `json:"code,omitempty"`
	SessionID   string `json:"session_id,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

func newStreamError(err error) streamError {
	e := streamError{Error: err.Error()}
	var gone *SessionGoneError
	if errors.As(err, &gone) {
		e.Code = "session-" + gone.State.String()
		e.SessionID = gone.ID
		e.Fingerprint = gone.Fingerprint
	}
	return e
}

// streamEncoder frames the three step-stream payloads for one wire format.
type streamEncoder interface {
	contentType() string
	progress(w io.Writer, p StepProgress)
	result(w io.Writer, r StepResult)
	errorEvent(w io.Writer, err error)
}

// sseEncoder frames payloads as Server-Sent Events: named `progress`,
// `result` and `error` events with a JSON data line each.
type sseEncoder struct{}

func (sseEncoder) contentType() string { return "text/event-stream" }

func (sseEncoder) progress(w io.Writer, p StepProgress) { sseEvent(w, "progress", p) }
func (sseEncoder) result(w io.Writer, r StepResult)     { sseEvent(w, "result", r) }
func (sseEncoder) errorEvent(w io.Writer, err error)    { sseEvent(w, "error", newStreamError(err)) }

func sseEvent(w io.Writer, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	_, _ = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data) // client gone: solve finishes regardless
}

// jsonLineEncoder frames payloads as chunked JSON lines, one object per
// line, keyed by kind: {"progress":…}, {"result":…}, {"error":…}.
type jsonLineEncoder struct{}

func (jsonLineEncoder) contentType() string { return "application/json" }

func (jsonLineEncoder) progress(w io.Writer, p StepProgress) {
	jsonLine(w, struct {
		Progress StepProgress `json:"progress"`
	}{p})
}

func (jsonLineEncoder) result(w io.Writer, r StepResult) {
	jsonLine(w, struct {
		Result StepResult `json:"result"`
	}{r})
}

func (jsonLineEncoder) errorEvent(w io.Writer, err error) {
	jsonLine(w, struct {
		Error streamError `json:"error"`
	}{newStreamError(err)})
}

func jsonLine(w io.Writer, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":{"error":%q}}`, err.Error()))
	}
	_, _ = w.Write(append(data, '\n'))
}

// isSolveFailure reports whether a step error is the solve's own outcome
// (divergence or missed tolerance) rather than a request problem — the
// 422 class.
func isSolveFailure(err error) bool {
	return errors.Is(err, core.ErrDiverged) || errors.Is(err, core.ErrNotConverged)
}
