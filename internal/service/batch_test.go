package service

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/mats"
)

// quickBatchRequest is a small batch of fast-converging systems sharing one
// structural plan.
func quickBatchRequest(t *testing.T, systems int) BatchRequest {
	rhs := make([][]float64, systems)
	for j := range rhs {
		rhs[j] = sessionRHS(256, j+1)
	}
	return BatchRequest{
		MatrixMarket:   mmPayload(t, mats.Poisson2D(16, 16)),
		RHS:            rhs,
		BlockSize:      32,
		LocalIters:     5,
		MaxGlobalIters: 800,
		Tolerance:      1e-10,
		Seed:           42,
	}
}

// TestBatchJobLifecycle runs a batch end to end: one 202 job, per-system
// outcomes in input order, queue accounting of one slot per batch.
func TestBatchJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	req := quickBatchRequest(t, 4)
	req.IncludeSolutions = true
	j, err := s.SubmitBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobDone {
		t.Fatalf("state = %v (%v), want done", st, j.Err())
	}
	res := j.Result()
	if res == nil || res.Batch == nil {
		t.Fatalf("result = %+v, want a batch summary", res)
	}
	b := res.Batch
	if len(b.Systems) != 4 || b.Converged != 4 || b.Failed != 0 {
		t.Fatalf("summary = %+v, want 4 converged", b)
	}
	if !res.Converged {
		t.Fatal("job with every system converged must report converged")
	}
	for i, sys := range b.Systems {
		if sys.Index != i || !sys.Converged || sys.Error != "" {
			t.Fatalf("system %d = %+v", i, sys)
		}
		if len(sys.X) != 256 {
			t.Fatalf("system %d: len(x) = %d", i, len(sys.X))
		}
		if sys.GlobalIterations == 0 || sys.Residual > req.Tolerance {
			t.Fatalf("system %d: iters=%d residual=%g", i, sys.GlobalIterations, sys.Residual)
		}
	}
	if b.TotalIterations == 0 || res.GlobalIterations != b.TotalIterations {
		t.Fatalf("iterations: job=%d batch=%d", res.GlobalIterations, b.TotalIterations)
	}

	st := s.Stats()
	if st.Batch.Submitted != 1 || st.Batch.Systems != 4 || st.Batch.SystemFailures != 0 {
		t.Fatalf("batch stats = %+v", st.Batch)
	}
	// Queue accounting: four systems consumed ONE submission slot.
	if st.Submitted != 1 {
		t.Fatalf("jobs submitted = %d, want 1 (one slot per batch)", st.Submitted)
	}
}

// TestBatchPartialFailure poisons one system: the batch finishes, the
// poisoned system carries its own error, the rest converge, and the
// per-system failure shows up in the stats without failing the job.
func TestBatchPartialFailure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())

	req := quickBatchRequest(t, 3)
	req.RHS[1][0] = math.NaN()
	j, err := s.SubmitBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobDone {
		t.Fatalf("state = %v (%v), want done with partial failure", st, j.Err())
	}
	res := j.Result()
	b := res.Batch
	if b.Failed != 1 || b.Converged != 2 {
		t.Fatalf("summary = %+v, want 1 failed / 2 converged", b)
	}
	if res.Converged {
		t.Fatal("job with a failed system must not report converged")
	}
	if b.Systems[1].Error == "" || b.Systems[1].Converged {
		t.Fatalf("poisoned system = %+v, want an error", b.Systems[1])
	}
	for _, i := range []int{0, 2} {
		if !b.Systems[i].Converged || b.Systems[i].Error != "" {
			t.Fatalf("healthy system %d = %+v", i, b.Systems[i])
		}
	}
	if got := s.Stats().Batch.SystemFailures; got != 1 {
		t.Fatalf("system failures = %d, want 1", got)
	}
}

// TestBatchAllSystemsFailed checks a fully doomed batch fails the job (not
// a quiet "done with zero converged") while still reporting every system.
func TestBatchAllSystemsFailed(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())

	req := quickBatchRequest(t, 2)
	for j := range req.RHS {
		req.RHS[j][0] = math.NaN()
	}
	j, err := s.SubmitBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobFailed {
		t.Fatalf("state = %v, want failed", st)
	}
	if j.Result() == nil || j.Result().Batch == nil || len(j.Result().Batch.Systems) != 2 {
		t.Fatalf("failed batch must still carry the per-system report, have %+v", j.Result())
	}
}

// TestBatchValidation checks the submit-time rejections.
func TestBatchValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, MaxBatchSystems: 2})
	defer s.Shutdown(context.Background())

	cases := []struct {
		name   string
		mutate func(*BatchRequest)
	}{
		{"zero systems", func(r *BatchRequest) { r.RHS = nil }},
		{"over the system limit", func(r *BatchRequest) { r.RHS = append(r.RHS, sessionRHS(256, 9)) }},
		{"rhs length mismatch", func(r *BatchRequest) { r.RHS[1] = r.RHS[1][:100] }},
		{"negative workers", func(r *BatchRequest) { r.Workers = -1 }},
		{"no block size without tune", func(r *BatchRequest) { r.BlockSize = 0 }},
	}
	for _, tc := range cases {
		req := quickBatchRequest(t, 2)
		tc.mutate(&req)
		if _, err := s.SubmitBatch(req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if got := s.Stats().Batch.Submitted; got != 0 {
		t.Fatalf("rejected batches counted as submitted: %d", got)
	}
	if got := s.Stats().Rejected; got != uint64(len(cases)) {
		t.Fatalf("rejected = %d, want %d", got, len(cases))
	}
}

// TestBatchWorkersClampedAndReported checks the MaxBatchWorkers clamp is
// applied and the effective parallelism is reported in the summary.
func TestBatchWorkersClampedAndReported(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, MaxBatchWorkers: 2})
	defer s.Shutdown(context.Background())

	req := quickBatchRequest(t, 3)
	req.Workers = 64
	j, err := s.SubmitBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if got := j.Result().Batch.Workers; got != 2 {
		t.Fatalf("workers = %d, want clamp to 2", got)
	}
	if j.Result().Batch.Converged != 3 {
		t.Fatalf("summary = %+v", j.Result().Batch)
	}
}

// TestBatchHTTP exercises POST /v1/batch end to end: 202 + job URL, then
// the finished job's batch summary through GET /v1/jobs/{id}.
func TestBatchHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})

	req := quickBatchRequest(t, 3)
	resp := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.HasPrefix(sub.JobID, "job-") {
		t.Fatalf("job id = %q", sub.JobID)
	}

	v := waitJobState(t, ts, sub.JobID, "done")
	if v.Result == nil || v.Result.Batch == nil {
		t.Fatalf("job view = %+v, want a batch result", v)
	}
	if v.Result.Batch.Converged != 3 {
		t.Fatalf("batch = %+v", v.Result.Batch)
	}

	// Rejections over HTTP: zero systems is a 400.
	bad := quickBatchRequest(t, 1)
	bad.RHS = nil
	resp = postJSON(t, ts.URL+"/v1/batch", bad)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero systems: status %d, want 400", resp.StatusCode)
	}
}

// TestBatchDeterministicAcrossRuns re-submits the same seeded batch and
// expects identical per-system iteration counts and residuals — the service
// surface of the core batch-equivalence property.
func TestBatchDeterministicAcrossRuns(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	run := func(workers int) *BatchSummary {
		req := quickBatchRequest(t, 4)
		req.Workers = workers
		j, err := s.SubmitBatch(req)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if j.State() != JobDone {
			t.Fatalf("state = %v (%v)", j.State(), j.Err())
		}
		return j.Result().Batch
	}
	seq := run(1)
	par := run(4)
	for i := range seq.Systems {
		a, b := seq.Systems[i], par.Systems[i]
		if a.GlobalIterations != b.GlobalIterations || a.Residual != b.Residual {
			t.Fatalf("system %d: sequential %+v vs parallel %+v", i, a, b)
		}
	}
}
