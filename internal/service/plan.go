package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/sparse"
)

// Fingerprint returns a stable content hash of the matrix (dimensions,
// structure and values), used as the matrix part of a PlanKey. Two CSR
// matrices have equal fingerprints iff they are entry-wise identical.
func Fingerprint(a *sparse.CSR) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(a.Rows))
	put(uint64(a.Cols))
	for _, p := range a.RowPtr {
		put(uint64(p))
	}
	for _, c := range a.ColIdx {
		put(uint64(c))
	}
	for _, v := range a.Val {
		put(math.Float64bits(v))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// PlanKey identifies one cacheable plan: a matrix (by fingerprint) plus
// the option subset that shapes the precomputed artifacts. LocalIters and
// Omega do not change the artifacts themselves but are part of the key so
// a cached entry corresponds to exactly one solver configuration — the
// unit /statsz reports on.
type PlanKey struct {
	Fingerprint string
	BlockSize   int
	LocalIters  int
	ExactLocal  bool
	Omega       float64
	// Method and Beta identify the update rule the configuration solves
	// with. Like LocalIters and Omega they do not change the precomputed
	// artifacts, but a cached entry corresponds to one solver configuration.
	Method core.RuleKind
	Beta   float64
	// Kernel is the requested sweep-kernel dispatch. KernelAuto and an
	// explicit kind are distinct keys even when auto-detection resolves to
	// the same kernel — the key records what was asked, the plan what was
	// built.
	Kernel core.KernelKind
	// Stencil is the canonical rendering of a request-declared stencil spec
	// ("" when none declared). Declared specs shape the plan's kernel data,
	// so they are part of plan identity — and the canonical string keeps the
	// key comparable while letting build reconstruct the spec.
	Stencil string
}

// String renders the key compactly for logs.
func (k PlanKey) String() string {
	s := fmt.Sprintf("%s/bs%d/k%d/exact=%t/omega=%g/method=%s/beta=%g/kernel=%s",
		k.Fingerprint, k.BlockSize, k.LocalIters, k.ExactLocal, k.Omega, k.Method, k.Beta, k.Kernel)
	if k.Stencil != "" {
		s += "/stencil=" + k.Stencil
	}
	return s
}

// stencilKey canonically encodes a declared stencil spec for plan identity:
// "offset:coeff" pairs joined by commas, coefficients in Go's shortest
// exactly-round-tripping decimal form. parseStencilKey inverts it.
func stencilKey(sp *sparse.StencilSpec) string {
	if sp == nil {
		return ""
	}
	var b strings.Builder
	for p, d := range sp.Offsets {
		if p > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%s", d, strconv.FormatFloat(sp.Coeffs[p], 'g', -1, 64))
	}
	return b.String()
}

// parseStencilKey reconstructs the spec a stencilKey encoded ("" → nil).
func parseStencilKey(s string) (*sparse.StencilSpec, error) {
	if s == "" {
		return nil, nil
	}
	var sp sparse.StencilSpec
	for _, pair := range strings.Split(s, ",") {
		off, coeff, ok := strings.Cut(pair, ":")
		if !ok {
			return nil, fmt.Errorf("service: malformed stencil key entry %q", pair)
		}
		d, err := strconv.Atoi(off)
		if err != nil {
			return nil, fmt.Errorf("service: malformed stencil key offset %q: %w", off, err)
		}
		v, err := strconv.ParseFloat(coeff, 64)
		if err != nil {
			return nil, fmt.Errorf("service: malformed stencil key coefficient %q: %w", coeff, err)
		}
		sp.Offsets = append(sp.Offsets, d)
		sp.Coeffs = append(sp.Coeffs, v)
	}
	return &sp, nil
}

// Plan is one cached entry: the core solve plan plus the pre-flight
// convergence analysis, with its estimated resident size.
type Plan struct {
	Key      PlanKey
	Prepared *core.Plan
	// Report is the paper's §2.2/§3.1 pre-flight analysis, computed once
	// per plan when the cache's AnalyzeSpectrum option is set; the zero
	// value otherwise. HasReport distinguishes the two.
	Report    core.ConvergenceReport
	HasReport bool
	// Bytes is the estimated resident size used for LRU accounting.
	Bytes int64
}

// CacheConfig configures a PlanCache. Zero values select the defaults.
type CacheConfig struct {
	// MaxEntries bounds the number of cached plans (default 64; negative
	// means unlimited).
	MaxEntries int
	// MaxBytes bounds the summed Plan.Bytes (0 = unlimited). The most
	// recently used entry is never evicted, so a single plan larger than
	// MaxBytes still caches (and is evicted by the next insertion).
	MaxBytes int64
	// AnalyzeSpectrum computes a CheckConvergence report at plan build
	// time (spectral estimation; skipped when false).
	AnalyzeSpectrum bool
	// SpectralSteps bounds the τ-estimation effort of the report
	// (default 32).
	SpectralSteps int
	// Seed drives the spectral estimators (default 1).
	Seed int64
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.MaxEntries == 0 {
		c.MaxEntries = 64
	}
	if c.SpectralSteps == 0 {
		c.SpectralSteps = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// HitRate returns Hits/(Hits+Misses), or 0 before the first lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PlanCache is a concurrency-safe LRU cache of solve plans. Concurrent
// GetOrBuild calls for the same missing key coalesce into a single build
// (the waiters count as hits: they reuse the builder's work).
type PlanCache struct {
	cfg CacheConfig

	mu       sync.Mutex
	ll       *list.List // of *Plan; front = most recently used
	items    map[PlanKey]*list.Element
	inflight map[PlanKey]*planBuild
	bytes    int64
	hits     uint64
	misses   uint64
	evicted  uint64

	// tune caches auto-tune outcomes by matrix fingerprint (see tune.go);
	// it has its own lock so a long parameter search never blocks plan
	// lookups.
	tune *tuningCache
	// cert caches admission certificates by matrix fingerprint (see
	// certify.go); like tune it has its own lock, and its LRU entry bound
	// mirrors the plan cache's MaxEntries.
	cert *certCache
}

// planBuild coalesces concurrent builds of one key.
type planBuild struct {
	done chan struct{}
	plan *Plan
	err  error
}

// NewPlanCache creates an empty cache.
func NewPlanCache(cfg CacheConfig) *PlanCache {
	cfg = cfg.withDefaults()
	return &PlanCache{
		cfg:      cfg,
		ll:       list.New(),
		items:    make(map[PlanKey]*list.Element),
		inflight: make(map[PlanKey]*planBuild),
		tune:     newTuningCache(),
		cert:     newCertCache(cfg.MaxEntries),
	}
}

// KeyFor derives the PlanKey of a matrix/option pair with the automatic
// kernel dispatch, normalizing the option fields the same way the solver
// does (Omega 0 means 1; LocalIters is irrelevant under ExactLocal).
func KeyFor(a *sparse.CSR, opt core.Options) PlanKey {
	return KeyForKernel(a, opt, core.KernelAuto)
}

// KeyForKernel is KeyFor with an explicit sweep-kernel dispatch.
func KeyForKernel(a *sparse.CSR, opt core.Options, kernel core.KernelKind) PlanKey {
	return keyWithFingerprint(Fingerprint(a), opt, kernel, nil)
}

func keyWithFingerprint(fp string, opt core.Options, kernel core.KernelKind, stencil *sparse.StencilSpec) PlanKey {
	omega := opt.Omega
	if omega == 0 {
		omega = 1
	}
	localIters := opt.LocalIters
	if opt.ExactLocal {
		localIters = 0
	}
	return PlanKey{
		Fingerprint: fp,
		BlockSize:   opt.BlockSize,
		LocalIters:  localIters,
		ExactLocal:  opt.ExactLocal,
		Omega:       omega,
		Method:      opt.Method,
		Beta:        opt.Beta,
		Kernel:      kernel,
		Stencil:     stencilKey(stencil),
	}
}

// GetOrBuild returns the cached plan for key, building it from a on a
// miss. hit reports whether the caller reused existing (or in-flight)
// work. The matrix must match the key's fingerprint; this is the caller's
// contract, not re-verified here (fingerprinting costs a full pass).
func (c *PlanCache) GetOrBuild(a *sparse.CSR, key PlanKey) (plan *Plan, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		p := el.Value.(*Plan)
		c.mu.Unlock()
		return p, true, nil
	}
	if b, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-b.done
		if b.err != nil {
			return nil, true, b.err
		}
		return b.plan, true, nil
	}
	c.misses++
	b := &planBuild{done: make(chan struct{})}
	c.inflight[key] = b
	c.mu.Unlock()

	b.plan, b.err = c.build(a, key)

	c.mu.Lock()
	delete(c.inflight, key)
	if b.err == nil {
		c.insertLocked(key, b.plan)
	}
	c.mu.Unlock()
	close(b.done)
	return b.plan, false, b.err
}

// Get returns the cached plan without building, not counting a hit or
// miss. Intended for introspection and tests.
func (c *PlanCache) Get(key PlanKey) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*Plan), true
}

// Stats returns a snapshot of the cache counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicted,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
}

// build constructs the plan outside the cache lock.
func (c *PlanCache) build(a *sparse.CSR, key PlanKey) (*Plan, error) {
	spec, err := parseStencilKey(key.Stencil)
	if err != nil {
		return nil, err
	}
	prepared, err := core.NewPlanWithConfig(a, key.BlockSize, key.ExactLocal, core.PlanConfig{Kernel: key.Kernel, Stencil: spec})
	if err != nil {
		return nil, fmt.Errorf("service: building plan %v: %w", key, err)
	}
	p := &Plan{Key: key, Prepared: prepared, Bytes: prepared.MemoryBytes()}
	if c.cfg.AnalyzeSpectrum {
		// Best effort: a failed spectral estimate (e.g. power-method
		// stagnation) must not block solving — the report is advisory.
		if rep, err := core.CheckConvergence(a, c.cfg.SpectralSteps, c.cfg.Seed); err == nil {
			p.Report, p.HasReport = rep, true
		}
	}
	return p, nil
}

// insertLocked adds the freshly built plan and evicts from the LRU tail
// while over budget. Callers hold c.mu.
func (c *PlanCache) insertLocked(key PlanKey, p *Plan) {
	if el, ok := c.items[key]; ok {
		// A concurrent build already inserted the key (cannot happen with
		// the in-flight coalescing, but stay safe): keep the existing one.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(p)
	c.bytes += p.Bytes
	for c.overBudgetLocked() && c.ll.Len() > 1 {
		back := c.ll.Back()
		victim := back.Value.(*Plan)
		c.ll.Remove(back)
		delete(c.items, victim.Key)
		c.bytes -= victim.Bytes
		c.evicted++
	}
}

func (c *PlanCache) overBudgetLocked() bool {
	if c.cfg.MaxEntries > 0 && c.ll.Len() > c.cfg.MaxEntries {
		return true
	}
	return c.cfg.MaxBytes > 0 && c.bytes > c.cfg.MaxBytes
}
