package service

import (
	"sync"

	"repro/internal/sparse"
	"repro/internal/tune"
)

// TunedParams reports the configuration an auto-tuned job solved with.
type TunedParams struct {
	BlockSize  int     `json:"block_size"`
	LocalIters int     `json:"local_iters"`
	Omega      float64 `json:"omega"`
	// Method and Beta report the update rule the job solved with after the
	// tuner's method stage ("jacobi" with beta 0 when the first-order rule
	// won or the request pinned the method itself).
	Method string  `json:"method,omitempty"`
	Beta   float64 `json:"beta,omitempty"`
	// SecondsPerDigit is the tuner's modeled score of the winning
	// configuration (see tune.Result).
	SecondsPerDigit float64 `json:"seconds_per_digit"`
	// CacheHit reports whether the parameters came from the tuning cache
	// (true: this job ran zero probe solves).
	CacheHit bool `json:"cache_hit"`
}

// TuneStats is a point-in-time snapshot of the tuning-cache counters.
type TuneStats struct {
	// Searches counts full parameter searches executed (cache misses).
	Searches uint64 `json:"searches"`
	// Hits counts lookups served from the cache or by joining an
	// in-flight search.
	Hits uint64 `json:"hits"`
	// ProbeSolves counts every short probe solve the searches ran — the
	// work hits avoid.
	ProbeSolves uint64 `json:"probe_solves"`
	// Entries is the number of cached tunings.
	Entries int `json:"entries"`
}

// tuneSearch coalesces concurrent searches for one fingerprint.
type tuneSearch struct {
	done chan struct{}
	res  tune.Result
	err  error
}

// tuningCache caches auto-tune outcomes by matrix fingerprint. The tuned
// parameters are a property of the operator — the probe right-hand side
// only mildly perturbs the measured contraction rates — so the key is the
// fingerprint alone: a warm daemon tunes each matrix once, then every
// later "tune": "auto" request reuses the result with zero probe solves.
type tuningCache struct {
	mu       sync.Mutex
	tunings  map[string]tune.Result
	inflight map[string]*tuneSearch
	searches uint64
	hits     uint64
	probes   uint64
}

func newTuningCache() *tuningCache {
	return &tuningCache{
		tunings:  make(map[string]tune.Result),
		inflight: make(map[string]*tuneSearch),
	}
}

// GetOrTune returns the cached tuning for the matrix fingerprint, running
// the full parameter search on a miss. Concurrent calls for the same
// missing fingerprint coalesce into a single search (the waiters count as
// hits: they run no probes of their own). hit reports whether the caller
// reused existing or in-flight work.
func (c *PlanCache) GetOrTune(a *sparse.CSR, fp string, b []float64, cfg tune.Config) (tune.Result, bool, error) {
	t := c.tune
	t.mu.Lock()
	if r, ok := t.tunings[fp]; ok {
		t.hits++
		t.mu.Unlock()
		return r, true, nil
	}
	if s, ok := t.inflight[fp]; ok {
		t.hits++
		t.mu.Unlock()
		<-s.done
		return s.res, true, s.err
	}
	t.searches++
	s := &tuneSearch{done: make(chan struct{})}
	t.inflight[fp] = s
	t.mu.Unlock()

	s.res, s.err = tune.Tune(a, b, cfg)

	t.mu.Lock()
	delete(t.inflight, fp)
	t.probes += uint64(s.res.ProbeSolves)
	if s.err == nil {
		t.tunings[fp] = s.res
	}
	t.mu.Unlock()
	close(s.done)
	return s.res, false, s.err
}

// TuneStats snapshots the tuning-cache counters.
func (c *PlanCache) TuneStats() TuneStats {
	t := c.tune
	t.mu.Lock()
	defer t.mu.Unlock()
	return TuneStats{
		Searches:    t.searches,
		Hits:        t.hits,
		ProbeSolves: t.probes,
		Entries:     len(t.tunings),
	}
}
