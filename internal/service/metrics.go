package service

import (
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/multigpu"
)

// instrument builds the service's metrics registry. Every queue, worker
// and plan-cache series is a callback reading the same source /statsz
// serializes (the queue channel, the cache counters, the outcome atomics),
// so GET /metricsz and GET /statsz agree by construction — there is no
// second set of books to drift.
//
// The solver-level sink (engine counters + residual ring) and the modeled
// device's gauges are registered in the same registry; runAttempt attaches
// the sink to every solve and updates the occupancy gauge per launch.
func (s *Service) instrument() {
	reg := metrics.NewRegistry()
	s.reg = reg
	s.solveMetrics = core.NewSolveMetrics(reg, 512)
	s.perf = gpusim.CalibratedModel()
	s.occupancy = s.perf.Instrument(reg)

	reg.GaugeFunc("service_queue_depth", "Jobs queued and not yet running.",
		func() float64 { return float64(s.queue.Depth()) })
	reg.GaugeFunc("service_queue_capacity", "Bound of the job queue.",
		func() float64 { return float64(s.queue.Capacity()) })
	reg.GaugeFunc("service_workers", "Solver worker-pool size.",
		func() float64 { return float64(s.queue.Workers()) })
	reg.GaugeFunc("service_busy_workers", "Workers currently running a job.",
		func() float64 { return float64(s.queue.Busy()) })

	reg.CounterFunc("service_jobs_submitted_total", "Jobs accepted into the queue.",
		s.submits.Load)
	reg.CounterFunc("service_jobs_done_total", "Jobs finished successfully.",
		s.dones.Load)
	reg.CounterFunc("service_jobs_failed_total", "Jobs finished with a non-cancellation error.",
		s.fails.Load)
	reg.CounterFunc("service_jobs_canceled_total", "Jobs canceled by client or deadline.",
		s.cancels.Load)
	reg.CounterFunc("service_jobs_rejected_total", "Submissions refused (validation, full queue, shutdown).",
		s.rejected.Load)
	reg.CounterFunc("service_job_retries_total", "Solve attempts beyond each job's first.",
		s.retries.Load)

	reg.CounterFunc("service_plan_cache_hits_total", "Plan-cache lookups served from cache.",
		func() uint64 { return s.cache.Stats().Hits })
	reg.CounterFunc("service_plan_cache_misses_total", "Plan-cache lookups that built a plan.",
		func() uint64 { return s.cache.Stats().Misses })
	reg.CounterFunc("service_plan_cache_evictions_total", "Plans evicted to respect the cache bounds.",
		func() uint64 { return s.cache.Stats().Evictions })
	reg.GaugeFunc("service_plan_cache_entries", "Plans resident in the cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("service_plan_cache_bytes", "Estimated bytes of resident plans.",
		func() float64 { return float64(s.cache.Stats().Bytes) })

	for _, strat := range []multigpu.Strategy{multigpu.AMC, multigpu.DC, multigpu.DK} {
		strat := strat
		reg.CounterFunc("service_device_solves_total",
			"Multi-device solve attempts by communication strategy.",
			s.deviceSolves[strat].Load, "strategy", strat.String())
	}

	for _, kern := range []core.KernelKind{core.KernelCSR, core.KernelStencil, core.KernelSELL} {
		kern := kern
		reg.CounterFunc("service_kernel_solves_total",
			"Solve attempts by resolved sweep kernel.",
			s.kernelSolves[kern].Load, "kernel", kern.String())
	}

	for _, rule := range []core.RuleKind{core.RuleJacobi, core.RuleRichardson2} {
		rule := rule
		reg.CounterFunc("service_method_solves_total",
			"Solve attempts by resolved update method.",
			s.methodSolves[rule].Load, "method", rule.String())
	}
	reg.CounterFunc("service_method_solves_total",
		"Solve attempts by resolved update method.",
		s.methodSolves[methodIdxMultigrid].Load, "method", methodMultigrid)

	s.wallHist = reg.Histogram("service_job_wall_seconds",
		"Wall time of finished jobs, attempts and backoff included.", nil)
	reg.GaugeFunc("service_draining", "1 once BeginDrain/Shutdown stopped admissions, else 0.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})

	reg.CounterFunc("service_tune_searches_total", "Full auto-tune parameter searches executed.",
		func() uint64 { return s.cache.TuneStats().Searches })
	reg.CounterFunc("service_tune_cache_hits_total", "Auto-tune lookups served from the fingerprint cache.",
		func() uint64 { return s.cache.TuneStats().Hits })
	reg.CounterFunc("service_tune_probe_solves_total", "Short probe solves run by auto-tune searches.",
		func() uint64 { return s.cache.TuneStats().ProbeSolves })

	reg.CounterFunc("service_certify_checks_total", "Full admission certifications executed (certificate-cache misses).",
		func() uint64 { return s.cache.CertifyStats().Checks })
	reg.CounterFunc("service_certify_cache_hits_total", "Admission lookups served from the resident certificate cache.",
		func() uint64 { return s.cache.CertifyStats().Hits })
	reg.CounterFunc("service_certify_coalesced_total", "Admission lookups that joined an in-flight certification.",
		func() uint64 { return s.cache.CertifyStats().Coalesced })
	reg.CounterFunc("service_certify_cache_evictions_total", "Certificates evicted to respect the cache entry bound.",
		func() uint64 { return s.cache.CertifyStats().Evictions })
	reg.GaugeFunc("service_certify_cache_entries", "Certificates resident in the cache.",
		func() float64 { return float64(s.cache.CertifyStats().Entries) })
	reg.CounterFunc("service_certify_rejections_total", "Enforce-mode submissions refused with a divergent certificate (422).",
		s.certRejected.Load)
	reg.CounterFunc("service_certify_fallbacks_total", "Enforce-mode divergent verdicts rerouted to the GMRES fallback.",
		s.certFallbacks.Load)

	reg.GaugeFunc("service_session_active", "Solve sessions currently accepting steps.",
		func() float64 { return float64(s.sessions.activeCount()) })
	reg.CounterFunc("service_sessions_created_total", "Solve sessions created.",
		s.sessions.created.Load)
	reg.CounterFunc("service_sessions_expired_total", "Sessions reaped by the idle-TTL sweep.",
		s.sessions.expired.Load)
	reg.CounterFunc("service_sessions_closed_total", "Sessions closed by the client.",
		s.sessions.closed.Load)
	reg.CounterFunc("service_session_steps_total", "Session steps finished successfully.",
		s.sessions.steps.Load)
	reg.CounterFunc("service_session_step_failures_total", "Session steps finished with an error.",
		s.sessions.stepFails.Load)
	reg.GaugeFunc("service_session_inflight_steps", "Session steps currently executing.",
		func() float64 { return float64(s.sessions.inflight.Load()) })

	reg.CounterFunc("service_batch_jobs_total", "Batched solve jobs accepted (one queue slot each).",
		s.batchSubmits.Load)
	reg.CounterFunc("service_batch_systems_total", "Systems carried by accepted batch jobs.",
		s.batchSystems.Load)
	reg.CounterFunc("service_batch_system_failures_total", "Per-system failures inside finished batch jobs.",
		s.batchSystemFails.Load)
}

// Metrics returns the service's metrics registry (the /metricsz source).
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// SolveMetrics returns the solver-level sink attached to every job's
// solve: per-engine counters and the bounded residual-history ring.
func (s *Service) SolveMetrics() *core.SolveMetrics { return s.solveMetrics }
