package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/certify"
)

// Sentinel errors of the job queue.
var (
	// ErrQueueFull is reported by Submit when the bounded queue has no
	// room; the HTTP layer maps it to 429 Too Many Requests.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown is reported by Submit after Shutdown started.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrUnknownJob is reported for job IDs the service never issued.
	ErrUnknownJob = errors.New("service: unknown job")
)

// JobState is the lifecycle state of a submitted solve.
type JobState int

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = iota
	// JobRunning: a worker is iterating.
	JobRunning
	// JobDone: finished successfully (converged, or ran its iteration
	// budget with no tolerance set).
	JobDone
	// JobFailed: finished with an error (divergence, non-convergence
	// against a tolerance, bad plan, ...).
	JobFailed
	// JobCanceled: canceled by the client or by its deadline, either
	// while queued or mid-iteration.
	JobCanceled
)

// String implements fmt.Stringer (the API's state vocabulary).
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Progress is a point-in-time snapshot of a running solve, updated at
// every global-iteration barrier.
type Progress struct {
	// GlobalIteration is the last completed global iteration.
	GlobalIteration int `json:"global_iteration"`
	// Residual is ‖b−Ax‖₂ at that iteration (0 until first measured).
	Residual float64 `json:"residual"`
	// NumBlocks is the subdomain count of the plan (0 until planned).
	NumBlocks int `json:"num_blocks,omitempty"`
	// PlanHit reports whether the job's plan came from the cache.
	PlanHit bool `json:"plan_hit"`
}

// JobResult is the outcome of a finished solve.
type JobResult struct {
	Converged        bool      `json:"converged"`
	GlobalIterations int       `json:"global_iterations"`
	Residual         float64   `json:"residual"`
	History          []float64 `json:"history,omitempty"`
	X                []float64 `json:"x,omitempty"`
	NumBlocks        int       `json:"num_blocks"`
	PlanHit          bool      `json:"plan_hit"`
	// Fingerprint is the content hash of the solved matrix — the key the
	// plan/tune caches and the fleet gateway's consistent-hash ring route
	// by. Clients (and the gateway itself) can compare it against the ring
	// to verify placement and debug cache-affinity misses.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Attempts is how many runs the job took (retries included).
	Attempts int     `json:"attempts"`
	WallTime float64 `json:"wall_seconds"`
	// Devices, Strategy and ModeledSeconds describe a multi-device job:
	// the device count, the communication strategy it exchanged boundary
	// components with, and the modeled wall time of the execution
	// (per-iteration topology cost × iterations). Zero/empty for
	// single-device jobs.
	Devices        int     `json:"devices,omitempty"`
	Strategy       string  `json:"strategy,omitempty"`
	ModeledSeconds float64 `json:"modeled_seconds,omitempty"`
	// Analysis echoes the plan's pre-flight convergence report when the
	// cache computed one ("rho(B)=… asynchronous convergence guaranteed").
	Analysis string `json:"analysis,omitempty"`
	// Tuned reports the auto-tuned parameters of a "tune": "auto" job
	// (nil for explicitly configured jobs).
	Tuned *TunedParams `json:"tuned,omitempty"`
	// Certificate echoes the admission certificate of a certify=warn or
	// certify=enforce job (nil when certification was off).
	Certificate *certify.Certificate `json:"certificate,omitempty"`
	// PredictedVsActual is GlobalIterations / Certificate.PredictedIters —
	// how the certifier's priced budget compared to the solve it admitted.
	// 0 when no prediction applied (certify off, no Converges verdict, or
	// a fallback run).
	PredictedVsActual float64 `json:"predicted_vs_actual,omitempty"`
	// Kernel is the sweep-kernel dispatch the plan resolved to ("csr",
	// "stencil" or "sell") — under kernel "auto" this reports what the
	// detector actually chose. Precision echoes the iterate storage
	// precision the solve ran with ("f64" or "f32"). Both empty for
	// fallback runs, which bypass the block-asynchronous kernels.
	Kernel    string `json:"kernel,omitempty"`
	Precision string `json:"precision,omitempty"`
	// Method echoes the solver method the attempt ran with ("jacobi",
	// "richardson2" or "multigrid"); Beta the resolved momentum coefficient
	// (0 outside richardson2). Empty/zero for fallback runs.
	Method string  `json:"method,omitempty"`
	Beta   float64 `json:"beta,omitempty"`
	// Fallback is "gmres" when an enforce-mode divergent verdict rerouted
	// the job to the synchronous GMRES solver; empty otherwise.
	Fallback string `json:"fallback,omitempty"`
	// Batch carries the per-system outcomes of a batched job (POST
	// /v1/batch); nil for single-system jobs.
	Batch *BatchSummary `json:"batch,omitempty"`
}

// JobView is an immutable snapshot of a job, safe to serialize.
type JobView struct {
	ID       string     `json:"id"`
	State    string     `json:"state"`
	Progress Progress   `json:"progress"`
	Error    string     `json:"error,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	// Attempts is the current (or final) run count, retries included;
	// 0 while the job is still queued.
	Attempts int       `json:"attempts"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// Job is one submitted solve moving through the queue. All mutation goes
// through its methods; concurrent Snapshot/Cancel are safe.
type Job struct {
	id  string
	req SolveRequest

	mu       sync.Mutex
	state    JobState
	progress Progress
	result   *JobResult
	attempts int
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc // set while running

	done     chan struct{}
	doneOnce sync.Once

	// cert and gmresFallback are the admission pre-flight outcome, set in
	// Submit before the job enters the queue (the channel send orders them
	// before any worker read) and immutable afterwards.
	cert          *certify.Certificate
	gmresFallback bool
	// batch marks a batched job (SubmitBatch): the worker fans out over its
	// systems via core.SolveBatch instead of running one solve. Set before
	// the queue send, immutable afterwards.
	batch *BatchRequest
}

func newJob(id string, req SolveRequest) *Job {
	return &Job{id: id, req: req, created: time.Now(), done: make(chan struct{})}
}

// ID returns the service-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Request returns the submitted request (value copy).
func (j *Job) Request() SolveRequest { return j.req }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the terminal error (nil while non-terminal or on success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the terminal result, or nil.
func (j *Job) Result() *JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Snapshot returns a serializable view of the job.
func (j *Job) Snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.id,
		State:    j.state.String(),
		Progress: j.progress,
		Result:   j.result,
		Attempts: j.attempts,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// start transitions Queued → Running and installs the cancel function.
// It returns false when the job was canceled while queued (the worker
// then skips it).
func (j *Job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// setAttempt publishes the run count before an attempt starts.
func (j *Job) setAttempt(n int) {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.attempts = n
	}
	j.mu.Unlock()
}

// setProgress publishes an iteration snapshot (no-op once terminal).
func (j *Job) setProgress(p Progress) {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.progress = p
	}
	j.mu.Unlock()
}

// finish moves the job to its terminal state. canceled selects
// JobCanceled over JobFailed for non-nil errors.
func (j *Job) finish(result *JobResult, err error, canceled bool) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.result = result
	j.err = err
	switch {
	case canceled:
		j.state = JobCanceled
	case err != nil:
		j.state = JobFailed
	default:
		j.state = JobDone
	}
	j.finished = time.Now()
	j.cancel = nil
	j.mu.Unlock()
	j.doneOnce.Do(func() { close(j.done) })
}

// Cancel requests cancellation: a queued job goes terminal immediately; a
// running job has its context canceled and goes terminal at the engine's
// next global-iteration boundary. Canceling a terminal job is a no-op.
func (j *Job) Cancel(reason error) {
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		j.state = JobCanceled
		j.err = reason
		j.finished = time.Now()
		j.mu.Unlock()
		j.doneOnce.Do(func() { close(j.done) })
	case JobRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		j.mu.Unlock()
	}
}

// Queue is a bounded job queue drained by a fixed worker pool.
type Queue struct {
	ch      chan *Job
	run     func(*Job)
	workers int
	busy    atomic.Int64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewQueue starts workers goroutines draining a queue of the given depth;
// each dequeued job is handed to run.
func NewQueue(depth, workers int, run func(*Job)) *Queue {
	if depth <= 0 {
		depth = 64
	}
	if workers <= 0 {
		workers = 4
	}
	q := &Queue{ch: make(chan *Job, depth), run: run, workers: workers}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for j := range q.ch {
				q.busy.Add(1)
				q.run(j)
				q.busy.Add(-1)
			}
		}()
	}
	return q
}

// Submit enqueues a job without blocking; it reports ErrQueueFull when
// the queue is at capacity and ErrShuttingDown after Close.
func (q *Queue) Submit(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrShuttingDown
	}
	select {
	case q.ch <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Close stops accepting jobs; queued jobs still run.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
	q.mu.Unlock()
}

// Drain closes the queue and blocks until every accepted job finished.
func (q *Queue) Drain() {
	q.Close()
	q.wg.Wait()
}

// Depth returns the number of queued (not yet running) jobs.
func (q *Queue) Depth() int { return len(q.ch) }

// Capacity returns the queue bound.
func (q *Queue) Capacity() int { return cap(q.ch) }

// Workers returns the pool size.
func (q *Queue) Workers() int { return q.workers }

// Busy returns the number of workers currently running a job.
func (q *Queue) Busy() int { return int(q.busy.Load()) }
