package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mats"
)

// quickSessionRequest is a small, fast-converging session configuration.
func quickSessionRequest(t *testing.T) SessionRequest {
	return SessionRequest{
		MatrixMarket:   mmPayload(t, mats.Poisson2D(16, 16)),
		BlockSize:      32,
		LocalIters:     5,
		MaxGlobalIters: 800,
		Tolerance:      1e-10,
		Seed:           7,
	}
}

// sessionRHS builds the k-th right-hand side of a drifting stream.
func sessionRHS(n, k int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + 0.01*float64(k)*float64(i%7)
	}
	return b
}

// TestSessionLifecycleStateMachine drives the session state machine through
// every legal and illegal transition: active sessions step, closed and
// expired sessions answer the structured gone error (and stay queryable as
// tombstones), and the reaper's idle test never fires early.
func TestSessionLifecycleStateMachine(t *testing.T) {
	type op struct {
		action    string // create | step | close | expire | reap-now
		wantGone  bool   // the op must fail with *SessionGoneError
		wantState string // session state after the op
	}
	cases := []struct {
		name string
		ops  []op
	}{
		{"steps then close", []op{
			{action: "create", wantState: "active"},
			{action: "step", wantState: "active"},
			{action: "step", wantState: "active"},
			{action: "close", wantState: "closed"},
			{action: "step", wantGone: true, wantState: "closed"},
			{action: "close", wantGone: true, wantState: "closed"},
		}},
		{"idle expiry", []op{
			{action: "create", wantState: "active"},
			{action: "step", wantState: "active"},
			{action: "expire", wantState: "expired"},
			{action: "step", wantGone: true, wantState: "expired"},
			{action: "close", wantGone: true, wantState: "expired"},
		}},
		{"fresh session survives an on-time reap", []op{
			{action: "create", wantState: "active"},
			{action: "reap-now", wantState: "active"},
			{action: "step", wantState: "active"},
		}},
		{"close before any step", []op{
			{action: "create", wantState: "active"},
			{action: "close", wantState: "closed"},
			{action: "step", wantGone: true, wantState: "closed"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A long reap interval keeps the background sweep out of the
			// test; expiry is driven by explicit reap calls with a synthetic
			// clock.
			s := New(Config{Workers: 1, QueueDepth: 2, SessionReapInterval: time.Hour})
			defer s.Shutdown(context.Background())

			var id string
			step := 0
			for i, o := range tc.ops {
				var err error
				switch o.action {
				case "create":
					var v SessionView
					v, err = s.CreateSession(quickSessionRequest(t))
					id = v.ID
				case "step":
					step++
					_, err = s.StepSession(id, StepRequest{RHS: sessionRHS(256, step)}, nil)
				case "close":
					_, err = s.CloseSession(id)
				case "expire":
					s.sessions.reap(time.Now().Add(s.cfg.SessionTTL + time.Minute))
				case "reap-now":
					s.sessions.reap(time.Now())
				default:
					t.Fatalf("op %d: unknown action %q", i, o.action)
				}
				var gone *SessionGoneError
				if got := errors.As(err, &gone); got != o.wantGone {
					t.Fatalf("op %d (%s): err = %v, wantGone = %v", i, o.action, err, o.wantGone)
				}
				if o.wantGone {
					if gone.ID != id || gone.Fingerprint == "" {
						t.Fatalf("op %d (%s): gone error %+v lacks id/fingerprint", i, o.action, gone)
					}
					if gone.State.String() != o.wantState {
						t.Fatalf("op %d (%s): gone state %s, want %s", i, o.action, gone.State, o.wantState)
					}
				}
				if o.wantState != "" {
					v, verr := s.Session(id)
					if verr != nil {
						t.Fatalf("op %d (%s): session lookup: %v", i, o.action, verr)
					}
					if v.State != o.wantState {
						t.Fatalf("op %d (%s): state = %s, want %s", i, o.action, v.State, o.wantState)
					}
				}
			}
		})
	}
}

// TestSessionUnknownID checks the 404 class: lookups, steps and closes of
// IDs the service never issued report ErrUnknownSession.
func TestSessionUnknownID(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())
	if _, err := s.Session("sess-999999"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("lookup: %v, want ErrUnknownSession", err)
	}
	if _, err := s.StepSession("sess-999999", StepRequest{RHS: []float64{1}}, nil); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("step: %v, want ErrUnknownSession", err)
	}
	if _, err := s.CloseSession("sess-999999"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("close: %v, want ErrUnknownSession", err)
	}
}

// TestSessionWarmStartReporting checks the warm-start flag and step
// numbering: the first step is cold, every later one warm, and tombstoned
// sessions report their final counters.
func TestSessionWarmStartReporting(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())
	v, err := s.CreateSession(quickSessionRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if v.WarmStart {
		t.Fatal("fresh session cannot report a warm start")
	}
	// Poisson2D detects as a stencil; the view reports the resolved kernel
	// and the normalized precision like a job result does.
	if v.Kernel != "stencil" || v.Precision != core.PrecF64 {
		t.Fatalf("view kernel=%q precision=%q, want stencil/f64", v.Kernel, v.Precision)
	}
	for k := 1; k <= 3; k++ {
		res, err := s.StepSession(v.ID, StepRequest{RHS: sessionRHS(256, k), IncludeSolution: true}, nil)
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		if res.Step != k {
			t.Fatalf("step index = %d, want %d", res.Step, k)
		}
		if res.WarmStart != (k > 1) {
			t.Fatalf("step %d: warm = %v", k, res.WarmStart)
		}
		if !res.Converged || len(res.X) != 256 {
			t.Fatalf("step %d: converged=%v len(x)=%d", k, res.Converged, len(res.X))
		}
	}
	v, err = s.Session(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Steps != 3 || v.FailedSteps != 0 || !v.WarmStart {
		t.Fatalf("view = %+v, want 3 clean steps and warm next", v)
	}
	st := s.Stats().Sessions
	if st.Created != 1 || st.Steps != 3 || st.Active != 1 || st.InflightSteps != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSessionLimitAndTombstoneRoom checks MaxSessions counts only active
// sessions: closing one makes room for the next even though the tombstone
// remains queryable.
func TestSessionLimitAndTombstoneRoom(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, MaxSessions: 1})
	defer s.Shutdown(context.Background())
	v1, err := s.CreateSession(quickSessionRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateSession(quickSessionRequest(t)); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("second create: %v, want ErrTooManySessions", err)
	}
	if _, err := s.CloseSession(v1.ID); err != nil {
		t.Fatal(err)
	}
	v2, err := s.CreateSession(quickSessionRequest(t))
	if err != nil {
		t.Fatalf("create after close: %v", err)
	}
	if _, err := s.Session(v1.ID); err != nil {
		t.Fatalf("tombstone lookup: %v", err)
	}
	if len(s.Sessions()) != 2 {
		t.Fatalf("list = %d entries, want tombstone + active", len(s.Sessions()))
	}
	if v2.ID == v1.ID {
		t.Fatal("session IDs must not be reused")
	}
}

// --- HTTP surface ---

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func createSessionHTTP(t *testing.T, ts *httptest.Server, req SessionRequest) SessionView {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/sessions", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var v SessionView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSessionHTTPLifecycle exercises the whole session surface over HTTP:
// create (201 + Location), step (200), list, delete (200), stepping a
// deleted session (structured 410), unknown IDs (404).
func TestSessionHTTPLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	resp := postJSON(t, ts.URL+"/v1/sessions", quickSessionRequest(t))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/sessions/sess-") {
		t.Fatalf("Location = %q", loc)
	}
	var v SessionView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.State != "active" || v.Fingerprint == "" {
		t.Fatalf("created view = %+v", v)
	}

	stepURL := ts.URL + "/v1/sessions/" + v.ID + "/step"
	resp = postJSON(t, stepURL, StepRequest{RHS: sessionRHS(256, 1)})
	var sr StepResult
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !sr.Converged || sr.Step != 1 || sr.WarmStart {
		t.Fatalf("step: status %d result %+v", resp.StatusCode, sr)
	}

	resp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list sessionListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Sessions) != 1 || list.Sessions[0].ID != v.ID {
		t.Fatalf("list = %+v", list)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+v.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}

	// Step after delete: the structured 410.
	resp = postJSON(t, stepURL, StepRequest{RHS: sessionRHS(256, 2)})
	var gone sessionGoneResponse
	if err := json.NewDecoder(resp.Body).Decode(&gone); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("step after delete: status %d", resp.StatusCode)
	}
	if gone.Code != "session-closed" || gone.SessionID != v.ID || gone.Fingerprint != v.Fingerprint {
		t.Fatalf("410 body = %+v", gone)
	}

	for _, probe := range []struct {
		method, path string
	}{
		{http.MethodGet, "/v1/sessions/sess-999999"},
		{http.MethodDelete, "/v1/sessions/sess-999999"},
		{http.MethodPost, "/v1/sessions/sess-999999/step"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader(`{"rhs":[1]}`))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: status %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestSessionStepStreamSSE checks the Server-Sent-Events response mode:
// progress events carry a falling residual and the stream ends with exactly
// one result event.
func TestSessionStepStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	v := createSessionHTTP(t, ts, quickSessionRequest(t))

	resp := postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/step",
		StepRequest{RHS: sessionRHS(256, 1), Stream: "sse"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var progress []StepProgress
	var results []StepResult
	var errEvents int
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var p StepProgress
				if err := json.Unmarshal([]byte(data), &p); err != nil {
					t.Fatalf("progress payload %q: %v", data, err)
				}
				progress = append(progress, p)
			case "result":
				var r StepResult
				if err := json.Unmarshal([]byte(data), &r); err != nil {
					t.Fatalf("result payload %q: %v", data, err)
				}
				results = append(results, r)
			case "error":
				errEvents++
			default:
				t.Fatalf("unknown event %q", event)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || errEvents != 0 {
		t.Fatalf("results = %d, errors = %d, want exactly one result", len(results), errEvents)
	}
	if len(progress) < 2 {
		t.Fatalf("progress events = %d, want the live residual stream", len(progress))
	}
	if !results[0].Converged || results[0].Step != 1 {
		t.Fatalf("result = %+v", results[0])
	}
	// The streamed samples must agree with the result: the last progress
	// iteration is the converging one.
	last := progress[len(progress)-1]
	if last.GlobalIteration != results[0].GlobalIterations {
		t.Fatalf("last progress at iteration %d, result at %d", last.GlobalIteration, results[0].GlobalIterations)
	}
	if first := progress[0]; first.Residual <= last.Residual {
		t.Fatalf("residual did not fall: first %g, last %g", first.Residual, last.Residual)
	}
}

// TestSessionStepStreamJSONLines checks the chunked-JSON response mode and
// the ProgressEvery throttle.
func TestSessionStepStreamJSONLines(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	v := createSessionHTTP(t, ts, quickSessionRequest(t))

	resp := postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/step",
		StepRequest{RHS: sessionRHS(256, 1), Stream: "json", ProgressEvery: 5})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	type frame struct {
		Progress *StepProgress `json:"progress"`
		Result   *StepResult   `json:"result"`
		Error    *streamError  `json:"error"`
	}
	var nProgress, nResult int
	var res StepResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var f frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		switch {
		case f.Progress != nil:
			nProgress++
		case f.Result != nil:
			nResult++
			res = *f.Result
		case f.Error != nil:
			t.Fatalf("error frame: %+v", *f.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if nResult != 1 || !res.Converged {
		t.Fatalf("results = %d (%+v), want one converged", nResult, res)
	}
	// Every 5th iteration samples: the count must be ~iterations/5.
	want := res.GlobalIterations / 5
	if nProgress != want {
		t.Fatalf("progress frames = %d, want %d (every 5th of %d iterations)", nProgress, want, res.GlobalIterations)
	}
}

// TestSessionStepStreamErrors checks the pre-stream error statuses (404,
// 410, 400 for unknown modes) and the in-stream error frame for a dead
// session race... the pre-stream lookup answers both here.
func TestSessionStepStreamErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	v := createSessionHTTP(t, ts, quickSessionRequest(t))

	resp := postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/step",
		StepRequest{RHS: sessionRHS(256, 1), Stream: "carrier-pigeon"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/sessions/sess-999999/step",
		StepRequest{RHS: sessionRHS(256, 1), Stream: "sse"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/step",
		StepRequest{RHS: sessionRHS(256, 1), Stream: "sse"})
	var gone sessionGoneResponse
	if err := json.NewDecoder(resp.Body).Decode(&gone); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone || gone.Code != "session-closed" {
		t.Fatalf("closed session stream: status %d body %+v", resp.StatusCode, gone)
	}
}

// TestSessionCreateRejections checks the create-time 4xx classes over HTTP:
// bad configuration 400, session limit 429, negative TTL 400.
func TestSessionCreateRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, MaxSessions: 1})

	bad := quickSessionRequest(t)
	bad.BlockSize = 0 // no block size and no tune: invalid
	resp := postJSON(t, ts.URL+"/v1/sessions", bad)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config: status %d, want 400", resp.StatusCode)
	}

	neg := quickSessionRequest(t)
	neg.TTLSeconds = -1
	resp = postJSON(t, ts.URL+"/v1/sessions", neg)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative ttl: status %d, want 400", resp.StatusCode)
	}

	createSessionHTTP(t, ts, quickSessionRequest(t))
	resp = postJSON(t, ts.URL+"/v1/sessions", quickSessionRequest(t))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over limit: status %d, want 429", resp.StatusCode)
	}
}

// TestSessionMetricsAgree checks /metricsz exposes the session series and
// they agree with /statsz (same atomics, no second set of books).
func TestSessionMetricsAgree(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	v := createSessionHTTP(t, ts, quickSessionRequest(t))
	for k := 1; k <= 2; k++ {
		if _, err := s.StepSession(v.ID, StepRequest{RHS: sessionRHS(256, k)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"service_session_active 1",
		"service_sessions_created_total 1",
		"service_session_steps_total 2",
		"service_session_inflight_steps 0",
		"service_batch_jobs_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
	st := s.Stats().Sessions
	if st.Steps != 2 || st.Active != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
