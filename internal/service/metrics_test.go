package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// getMetrics fetches GET /metricsz and parses the exposition into a flat
// map of "name{labels}" → value.
func getMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metricsz: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET /metricsz: content type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil && line[sp+1:] != "+Inf" {
			t.Fatalf("line %q: unparseable value: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestMetricszStatszConsistency is the satellite consistency check: the
// queue, outcome and plan-cache numbers served by GET /metricsz must agree
// with GET /statsz, because both render the same underlying sources.
func TestMetricszStatszConsistency(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	// Drive some traffic: two identical solves (second hits the plan
	// cache), one validation reject.
	for i := 0; i < 2; i++ {
		sub, resp := postSolve(t, ts, SolveRequest{
			Matrix: "Trefethen_2000", BlockSize: 128, LocalIters: 5,
			MaxGlobalIters: 50, Tolerance: 1e-6,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		waitJobState(t, ts, sub.JobID, "done")
	}
	if _, resp := postSolve(t, ts, SolveRequest{Matrix: "Trefethen_2000"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid submit: status %d, want 400", resp.StatusCode)
	}

	st := getStats(t, ts)
	m := getMetrics(t, ts)

	checks := []struct {
		series string
		want   float64
	}{
		{"service_queue_depth", float64(st.QueueDepth)},
		{"service_queue_capacity", float64(st.QueueCapacity)},
		{"service_workers", float64(st.Workers)},
		{"service_busy_workers", float64(st.BusyWorkers)},
		{"service_jobs_submitted_total", float64(st.Submitted)},
		{"service_jobs_done_total", float64(st.Done)},
		{"service_jobs_failed_total", float64(st.Failed)},
		{"service_jobs_canceled_total", float64(st.Canceled)},
		{"service_jobs_rejected_total", float64(st.Rejected)},
		{"service_job_retries_total", float64(st.Retries)},
		{"service_plan_cache_hits_total", float64(st.PlanCache.Hits)},
		{"service_plan_cache_misses_total", float64(st.PlanCache.Misses)},
		{"service_plan_cache_evictions_total", float64(st.PlanCache.Evictions)},
		{"service_plan_cache_entries", float64(st.PlanCache.Entries)},
		{"service_plan_cache_bytes", float64(st.PlanCache.Bytes)},
	}
	for _, c := range checks {
		got, ok := m[c.series]
		if !ok {
			t.Errorf("/metricsz missing series %s", c.series)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %g, /statsz says %g", c.series, got, c.want)
		}
	}

	// Sanity on the traffic itself: 2 accepted (1 cache miss + 1 hit),
	// 1 rejected.
	if st.Submitted != 2 || st.Done != 2 || st.Rejected != 1 {
		t.Errorf("stats = submitted %d done %d rejected %d, want 2/2/1",
			st.Submitted, st.Done, st.Rejected)
	}
	if st.PlanCache.Hits != 1 || st.PlanCache.Misses != 1 {
		t.Errorf("plan cache hits/misses = %d/%d, want 1/1", st.PlanCache.Hits, st.PlanCache.Misses)
	}
}

// TestMetricszEngineAndDeviceSeries checks the acceptance criterion's
// series set: engine iteration counters, queue depth, plan-cache hit/miss
// and device gauges all render on a daemon that has served a solve.
func TestMetricszEngineAndDeviceSeries(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	sub, resp := postSolve(t, ts, SolveRequest{
		Matrix: "Trefethen_2000", BlockSize: 128, LocalIters: 5,
		MaxGlobalIters: 30, Tolerance: 1e-6,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	done := waitJobState(t, ts, sub.JobID, "done")
	m := getMetrics(t, ts)

	iters := m[`core_global_iterations_total{engine="simulated"}`]
	if want := float64(done.Result.GlobalIterations); iters != want {
		t.Errorf("simulated iteration counter = %g, want %g (the job's count)", iters, want)
	}
	nb := float64(done.Result.NumBlocks)
	if sweeps := m[`core_block_sweeps_total{engine="simulated"}`]; sweeps != iters*nb {
		t.Errorf("block sweeps = %g, want %g", sweeps, iters*nb)
	}
	for _, series := range []string{
		`core_global_iterations_total{engine="goroutine"}`,
		`core_global_iterations_total{engine="freerunning"}`,
		"service_queue_depth",
		"service_plan_cache_hits_total",
		"service_plan_cache_misses_total",
		`gpusim_device_multiprocessors{device="Tesla C2070 (Fermi)"}`,
		`gpusim_launch_overhead_seconds{device="Tesla C2070 (Fermi)",kernel="async"}`,
	} {
		if _, ok := m[series]; !ok {
			t.Errorf("/metricsz missing series %s", series)
		}
	}
	// Occupancy reflects the last launch: Trefethen_2000 / 128 = 16 blocks
	// on 14 SMs → 2 waves of 28 slots.
	if occ := m[`gpusim_device_occupancy{device="Tesla C2070 (Fermi)"}`]; occ != 16.0/28 {
		t.Errorf("occupancy = %g, want %g", occ, 16.0/28)
	}
	// The solver sink retained the job's residual trajectory.
	if got := len(s.SolveMetrics().ResidualHistory()); got != done.Result.GlobalIterations {
		t.Errorf("residual ring holds %d samples, want %d", got, done.Result.GlobalIterations)
	}
}
