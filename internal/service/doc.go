// Package service turns the block-asynchronous relaxation library into a
// long-running solver service: a concurrency-safe per-matrix plan cache, a
// bounded job queue with a worker pool and per-job cancellation, and an
// HTTP JSON API (served by cmd/solverd).
//
// The paper's economics motivate the cache: once a subdomain's state is
// resident, additional local iterations "almost come for free" (§4.3). The
// host-side analogue is the per-matrix setup — block partition, block CSR
// views, inverse diagonal, dense LU factors for exact local solves,
// spectral pre-flight analysis — which a one-shot call rebuilds on every
// solve. A daemon serving repeated solves of the same operators (time
// stepping, parameter sweeps, preconditioner applications) pays it once.
//
// The same fingerprint key also caches auto-tuner results (tune.go):
// a job with "tune": "auto" runs the internal/tune parameter search the
// first time a matrix is seen and every later solve of that operator
// reuses the tuned (block size, k, ω) with zero probe solves. Searches,
// cache hits and probe counts surface at /statsz and /metricsz.
package service
