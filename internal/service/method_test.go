package service

import (
	"context"
	"strings"
	"testing"

	"repro/internal/mats"
)

// TestServiceMethodRichardson2 runs a momentum solve end to end: the
// request method flows through validation into core, the default β fills
// in, and the result echoes both.
func TestServiceMethodRichardson2(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	req := quickRequest(t)
	req.Method = "richardson2"
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobDone {
		t.Fatalf("state = %v (%v), want done", st, j.Err())
	}
	res := j.Result()
	if !res.Converged {
		t.Fatalf("result = %+v, want converged", res)
	}
	if res.Method != "richardson2" || res.Beta != defaultBeta {
		t.Fatalf("echo method=%q beta=%g, want richardson2/%g", res.Method, res.Beta, defaultBeta)
	}
	st := s.Stats()
	if st.MethodSolves["richardson2"] != 1 || st.MethodSolves["jacobi"] != 0 {
		t.Fatalf("method counters = %v", st.MethodSolves)
	}

	// An explicit β overrides the default and rides the echo.
	req2 := quickRequest(t)
	req2.Method = "richardson2"
	req2.Beta = 0.15
	j2, err := s.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if r := j2.Result(); r == nil || r.Beta != 0.15 {
		t.Fatalf("result = %+v, want beta 0.15", j2.Result())
	}
}

// TestServiceMethodValidation exercises the request-level method checks:
// unknown names, β outside [0,1), β without the second-order rule, and
// the multigrid route's solve-only restrictions.
func TestServiceMethodValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	for _, tc := range []struct {
		name string
		mut  func(*SolveRequest)
		want string
	}{
		{"unknown method", func(r *SolveRequest) { r.Method = "sor2" }, "method"},
		{"beta out of range", func(r *SolveRequest) { r.Method = "richardson2"; r.Beta = 1.5 }, "beta"},
		{"beta without richardson2", func(r *SolveRequest) { r.Beta = 0.3 }, "richardson2"},
		{"multigrid with engine", func(r *SolveRequest) { r.Method = "multigrid"; r.Engine = "goroutine" }, "multigrid"},
		{"multigrid with kernel", func(r *SolveRequest) { r.Method = "multigrid"; r.Kernel = "sell" }, "multigrid"},
		{"multigrid with tune", func(r *SolveRequest) { r.Method = "multigrid"; r.Tune = "auto" }, "multigrid"},
	} {
		req := quickRequest(t)
		tc.mut(&req)
		if _, err := s.Submit(req); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Batch and session front doors reject multigrid outright.
	breq := quickBatchRequest(t, 2)
	breq.Method = "multigrid"
	if _, err := s.SubmitBatch(breq); err == nil || !strings.Contains(err.Error(), "solve-only") {
		t.Errorf("batch multigrid: err = %v, want solve-only rejection", err)
	}
	if _, err := s.CreateSession(SessionRequest{
		Matrix: "poisson2d_15", BlockSize: 32, LocalIters: 3, MaxGlobalIters: 100, Method: "multigrid",
	}); err == nil || !strings.Contains(err.Error(), "solve-only") {
		t.Errorf("session multigrid: err = %v, want solve-only rejection", err)
	}
}

// TestServiceMultigridRoute admits the five-point Poisson operator by its
// parametric name and solves it with auto-tuned async-smoothed V-cycles.
func TestServiceMultigridRoute(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(SolveRequest{
		Matrix:         "poisson2d_15",
		Method:         "multigrid",
		MaxGlobalIters: 60,
		Tolerance:      1e-8,
		RecordHistory:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobDone {
		t.Fatalf("state = %v (%v), want done", st, j.Err())
	}
	res := j.Result()
	if !res.Converged || res.Method != "multigrid" {
		t.Fatalf("result = %+v, want converged multigrid", res)
	}
	if res.GlobalIterations == 0 || res.GlobalIterations > 60 {
		t.Fatalf("cycles = %d, want within the V-cycle bound", res.GlobalIterations)
	}
	if res.Tuned == nil {
		t.Fatal("multigrid result must echo the tuned smoother parameters")
	}
	if len(res.History) == 0 {
		t.Fatal("requested history missing")
	}
	if st := s.Stats(); st.MethodSolves["multigrid"] != 1 {
		t.Fatalf("method counters = %v", st.MethodSolves)
	}

	// A non-Poisson operator of square dimension is refused by fingerprint.
	j2, err := s.Submit(SolveRequest{
		MatrixMarket:   mmPayload(t, mats.FV(15, 15, 1.368)),
		Method:         "multigrid",
		MaxGlobalIters: 10,
		Tolerance:      1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if st := j2.State(); st != JobFailed {
		t.Fatalf("state = %v, want failed (non-Poisson operator)", st)
	}
	if err := j2.Err(); err == nil || !strings.Contains(err.Error(), "Poisson") {
		t.Fatalf("err = %v, want Poisson admission refusal", err)
	}
}

// TestServiceStencilDeclaration declares the five-point structure for an
// uploaded Matrix Market operator: the declared spec drives the stencil
// kernel, and the plan-cache key carries it so declared and undeclared
// solves of one matrix never share a plan.
func TestServiceStencilDeclaration(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	req := quickRequest(t) // Poisson2D(16,16) uploaded inline
	req.Kernel = "csr"
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.Result().Kernel != "csr" {
		t.Fatalf("kernel = %q, want csr", j.Result().Kernel)
	}

	decl := quickRequest(t)
	decl.Kernel = "stencil"
	decl.Stencil = &StencilDecl{
		Offsets: []int{-16, -1, 0, 1, 16},
		Coeffs:  []float64{-1, -1, 4, -1, -1},
	}
	j2, err := s.Submit(decl)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if st := j2.State(); st != JobDone {
		t.Fatalf("state = %v (%v), want done", st, j2.Err())
	}
	res := j2.Result()
	if res.Kernel != "stencil" || !res.Converged {
		t.Fatalf("result = %+v, want converged stencil solve", res)
	}
	if res.PlanHit {
		t.Fatal("declared-stencil solve must build its own plan (distinct cache key)")
	}

	// Declaration shape errors are rejected at submission.
	bad := quickRequest(t)
	bad.Stencil = &StencilDecl{Offsets: []int{-1, 0}, Coeffs: []float64{1}}
	if _, err := s.Submit(bad); err == nil {
		t.Error("mismatched offsets/coeffs lengths must be rejected")
	}

	// A declaration matching no row of the operator fails the build.
	wrong := quickRequest(t)
	wrong.Kernel = "stencil"
	wrong.Stencil = &StencilDecl{Offsets: []int{-1, 0, 1}, Coeffs: []float64{-9, 4, -9}}
	j3, err := s.Submit(wrong)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j3)
	if st := j3.State(); st != JobFailed {
		t.Fatalf("state = %v, want failed (spec matches no row)", st)
	}
}

// TestServiceSessionMethodEcho threads the update rule through a session:
// the view echoes the resolved method and β, and steps run under it.
func TestServiceSessionMethodEcho(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	v, err := s.CreateSession(SessionRequest{
		Matrix: "poisson2d_15", BlockSize: 45, LocalIters: 3,
		MaxGlobalIters: 400, Tolerance: 1e-8, Method: "richardson2", Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != "richardson2" || v.Beta != defaultBeta {
		t.Fatalf("view method=%q beta=%g, want richardson2/%g", v.Method, v.Beta, defaultBeta)
	}
	res, err := s.StepSession(v.ID, StepRequest{RHS: sessionRHS(225, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("step = %+v, want converged", res)
	}
	if st := s.Stats(); st.MethodSolves["richardson2"] != 1 {
		t.Fatalf("method counters = %v", st.MethodSolves)
	}
}

// TestServiceBatchMethodEcho runs a momentum batch: every system solves
// under the requested rule and the job result echoes it.
func TestServiceBatchMethodEcho(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	req := quickBatchRequest(t, 3)
	req.Method = "richardson2"
	req.Beta = 0.2
	j, err := s.SubmitBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobDone {
		t.Fatalf("state = %v (%v), want done", st, j.Err())
	}
	res := j.Result()
	if res.Method != "richardson2" || res.Beta != 0.2 {
		t.Fatalf("echo method=%q beta=%g, want richardson2/0.2", res.Method, res.Beta)
	}
	if res.Batch == nil || res.Batch.Converged != 3 {
		t.Fatalf("batch = %+v, want 3 converged", res.Batch)
	}
	if st := s.Stats(); st.MethodSolves["richardson2"] != 1 {
		t.Fatalf("method counters = %v (one batch attempt = one method solve)", st.MethodSolves)
	}
}
