package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/certify"
	"repro/internal/core"
)

// NewHandler returns the daemon's HTTP API:
//
//	POST   /v1/solve     submit a solve (SolveRequest JSON) → 202 + job ID
//	GET    /v1/jobs      list all jobs
//	GET    /v1/jobs/{id} job status, progress and (when finished) result
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	GET    /healthz      liveness probe
//	GET    /readyz       readiness probe: 503 once a drain began
//	GET    /statsz       queue depth, worker utilization, plan-cache rates
//	GET    /metricsz     the same counters (plus engine/device series) in
//	                     Prometheus text exposition format
//
// Errors are JSON objects {"error": "..."} with conventional status codes
// (400 invalid request, 404 unknown job, 422 certified divergent — the
// body then also carries the certificate — 429 queue full, 503 shutdown).
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		if err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("service: reading request: %w", err))
			return
		}
		var req SolveRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: decoding request: %w", err))
			return
		}
		// X-Chaos is the debug side channel for schedule perturbation;
		// it overrides any chaos block in the body and is rejected with
		// 403 unless the daemon enables chaos.
		if h := r.Header.Get("X-Chaos"); h != "" {
			spec, err := ParseChaosHeader(h)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			req.Chaos = spec
		}
		j, err := s.Submit(req)
		if err != nil {
			if ce := errCertificate(err); ce != nil {
				// A certified-divergent refusal is not a generic 400: the
				// 422 body carries the certificate so the client (and the
				// gateway, which never fails these over) can see the proof.
				writeJSON(w, http.StatusUnprocessableEntity, certErrorResponse{
					Error:       err.Error(),
					Certificate: ce.Certificate,
				})
				return
			}
			status := submitStatus(err)
			if status == http.StatusTooManyRequests {
				// Price the 429 from the live backlog and the observed
				// solve-duration distribution instead of a constant.
				w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
			}
			writeError(w, status, err)
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+j.ID())
		writeJSON(w, http.StatusAccepted, submitResponse{
			JobID:     j.ID(),
			State:     j.State().String(),
			StatusURL: "/v1/jobs/" + j.ID(),
		})
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, jobListResponse{Jobs: s.Jobs()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := s.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, j.Snapshot())
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := s.Cancel(id); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		j, err := s.Job(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, j.Snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness is distinct from liveness: the moment a drain begins
		// this flips to 503 so a routing gateway stops sending work here,
		// while /healthz keeps answering 200 for the process supervisor.
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.Handle("GET /metricsz", s.Metrics().Handler())
	registerSessionRoutes(mux, s)
	registerBatchRoutes(mux, s)
	return mux
}

// maxRequestBytes bounds a POST /v1/solve body (inline Matrix Market
// payloads are the large case: ~30 bytes per nonzero).
const maxRequestBytes = 256 << 20

type submitResponse struct {
	JobID     string `json:"job_id"`
	State     string `json:"state"`
	StatusURL string `json:"status_url"`
}

type jobListResponse struct {
	Jobs []JobView `json:"jobs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// certErrorResponse is the structured 422 body of an admission refusal.
type certErrorResponse struct {
	Error       string              `json:"error"`
	Certificate certify.Certificate `json:"certificate"`
}

// submitStatus maps Submit errors to HTTP status codes.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrChaosDisabled):
		return http.StatusForbidden
	case errors.Is(err, core.ErrCanceled):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone: nothing useful to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
