package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/tune"
	"repro/internal/vecmath"
)

// Sentinel errors of the session store.
var (
	// ErrUnknownSession is reported for session IDs the service never
	// issued; the HTTP layer maps it to 404.
	ErrUnknownSession = errors.New("service: unknown session")
	// ErrTooManySessions is reported when Config.MaxSessions active
	// sessions already exist; the HTTP layer maps it to 429.
	ErrTooManySessions = errors.New("service: session limit reached")
)

// SessionGoneError reports a step (or lookup) against a session that
// existed but is no longer live — closed by the client or reaped by the
// idle-TTL sweep. It carries the matrix fingerprint so a client (or the
// fleet gateway, which surfaces its own session-lost variant) can re-create
// the session on the right node without re-deriving the routing key. The
// HTTP layer maps it to a structured 410.
type SessionGoneError struct {
	ID          string
	Fingerprint string
	State       SessionState
}

// Error implements the error interface.
func (e *SessionGoneError) Error() string {
	return fmt.Sprintf("service: session %s is %s", e.ID, e.State)
}

// SessionState is the lifecycle state of a solve session.
type SessionState int

const (
	// SessionActive: accepting steps.
	SessionActive SessionState = iota
	// SessionExpired: reaped by the idle-TTL sweep; kept as a queryable
	// tombstone, steps answer 410.
	SessionExpired
	// SessionClosed: deleted by the client; tombstone like Expired.
	SessionClosed
)

// String implements fmt.Stringer (the API's state vocabulary).
func (st SessionState) String() string {
	switch st {
	case SessionActive:
		return "active"
	case SessionExpired:
		return "expired"
	case SessionClosed:
		return "closed"
	default:
		return "unknown"
	}
}

// SessionRequest is the POST /v1/sessions body: one system (matrix, solver
// configuration, optional tuning and admission certification) that a
// stream of per-step right-hand sides will be solved against. The plan,
// tuning and certificate are resolved once at creation; every step reuses
// them and warm-starts from the previous step's iterate.
type SessionRequest struct {
	Matrix       string `json:"matrix,omitempty"`
	MatrixMarket string `json:"matrix_market,omitempty"`
	// Tune is "" (off) or "auto", with the SolveRequest semantics: the
	// tuned (block size, local iterations, ω) fills any field left zero.
	Tune string `json:"tune,omitempty"`
	// BlockSize may be 0 only with Tune: "auto".
	BlockSize      int     `json:"block_size,omitempty"`
	LocalIters     int     `json:"local_iters,omitempty"`
	Omega          float64 `json:"omega,omitempty"`
	MaxGlobalIters int     `json:"max_global_iters"`
	Tolerance      float64 `json:"tolerance,omitempty"`
	// Engine is "simulated" (default) or "goroutine".
	Engine string `json:"engine,omitempty"`
	// Kernel and Precision have the SolveRequest semantics: the sweep-kernel
	// dispatch ("", "auto", "csr", "stencil", "sell") and the iterate
	// storage precision ("", "f64", "f32") every step of the session uses.
	Kernel    string `json:"kernel,omitempty"`
	Precision string `json:"precision,omitempty"`
	// Method and Beta have the SolveRequest semantics ("", "jacobi",
	// "richardson2"); sessions run the core engines, so "multigrid" is
	// rejected here. The momentum trail carries across steps with the warm
	// iterate.
	Method string  `json:"method,omitempty"`
	Beta   float64 `json:"beta,omitempty"`
	// Stencil has the SolveRequest semantics: declared structure for an
	// uploaded Matrix Market operator, enabling the stencil kernel.
	Stencil *StencilDecl `json:"stencil,omitempty"`
	// Seed is the default scheduler seed of every step (0: per-run stream);
	// a step request may override it.
	Seed int64 `json:"seed,omitempty"`
	// Certify is "", "off", "warn" or "enforce" with the SolveRequest
	// semantics; an enforce-mode divergent verdict refuses the session at
	// creation with the structured 422.
	Certify string `json:"certify,omitempty"`
	// TTLSeconds overrides the service's idle session TTL (0: the
	// Config.SessionTTL default). A session idle this long with no step in
	// flight is reaped; in-flight steps always finish first.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// solveRequest maps the session configuration onto the solve-request
// shape so validation, matrix resolution, tuning and certification reuse
// the single-solve code paths.
func (r SessionRequest) solveRequest() SolveRequest {
	return SolveRequest{
		Matrix:         r.Matrix,
		MatrixMarket:   r.MatrixMarket,
		Tune:           r.Tune,
		BlockSize:      r.BlockSize,
		LocalIters:     r.LocalIters,
		Omega:          r.Omega,
		MaxGlobalIters: r.MaxGlobalIters,
		Tolerance:      r.Tolerance,
		Engine:         r.Engine,
		Kernel:         r.Kernel,
		Precision:      r.Precision,
		Method:         r.Method,
		Beta:           r.Beta,
		Stencil:        r.Stencil,
		Seed:           r.Seed,
		Certify:        r.Certify,
	}
}

// StepRequest is the POST /v1/sessions/{id}/step body: the next
// right-hand side of the stream.
type StepRequest struct {
	RHS []float64 `json:"rhs"`
	// Seed overrides the session's scheduler seed for this step.
	Seed int64 `json:"seed,omitempty"`
	// Stream selects the response shape: "" (one JSON document when the
	// step finishes), "sse" (Server-Sent Events: `progress` events with the
	// live residual, then one `result` or `error` event) or "json" (chunked
	// JSON lines with the same payloads).
	Stream string `json:"stream,omitempty"`
	// ProgressEvery spaces streamed progress events to every N-th global
	// iteration (default 1). Ignored without Stream.
	ProgressEvery int `json:"progress_every,omitempty"`
	// TimeoutSeconds bounds the step's wall time (0: service default).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// IncludeSolution returns the step's iterate X in the result.
	IncludeSolution bool `json:"include_solution,omitempty"`
}

// StepResult reports one finished session step.
type StepResult struct {
	SessionID string `json:"session_id"`
	// Step is the 1-based index of this step within the session.
	Step             int     `json:"step"`
	Converged        bool    `json:"converged"`
	GlobalIterations int     `json:"global_iterations"`
	Residual         float64 `json:"residual"`
	// WarmStart reports whether the step started from the previous step's
	// iterate (false only for a session's first step).
	WarmStart bool      `json:"warm_start"`
	X         []float64 `json:"x,omitempty"`
	WallTime  float64   `json:"wall_seconds"`
}

// StepProgress is one streamed progress sample of a running step.
type StepProgress struct {
	GlobalIteration int     `json:"global_iteration"`
	Residual        float64 `json:"residual"`
}

// SessionView is an immutable snapshot of a session, safe to serialize.
type SessionView struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Fingerprint string `json:"fingerprint"`
	// Steps counts finished successful steps; FailedSteps counts steps that
	// returned an error; InflightSteps is the number currently executing.
	Steps         uint64 `json:"steps"`
	FailedSteps   uint64 `json:"failed_steps"`
	InflightSteps int    `json:"inflight_steps"`
	// WarmStart reports whether the next step would warm-start.
	WarmStart  bool                 `json:"warm_start"`
	BlockSize  int                  `json:"block_size"`
	LocalIters int                  `json:"local_iters"`
	Omega      float64              `json:"omega"`
	Engine     string               `json:"engine"`
	// Kernel is the resolved sweep kernel every step runs (what a "kernel":
	// "auto" request dispatched to); Precision the iterate storage precision.
	Kernel    string `json:"kernel,omitempty"`
	Precision string `json:"precision,omitempty"`
	// Method is the update rule every step runs; Beta its momentum
	// coefficient (0 for jacobi).
	Method string  `json:"method,omitempty"`
	Beta   float64 `json:"beta,omitempty"`
	Tuned      *TunedParams         `json:"tuned,omitempty"`
	Certificate *certify.Certificate `json:"certificate,omitempty"`
	TTLSeconds float64              `json:"ttl_seconds"`
	Created    time.Time            `json:"created"`
	LastUsed   time.Time            `json:"last_used"`
}

// SessionStats is the session slice of /statsz.
type SessionStats struct {
	Active        int    `json:"active"`
	Created       uint64 `json:"created"`
	Expired       uint64 `json:"expired"`
	Closed        uint64 `json:"closed"`
	Steps         uint64 `json:"steps"`
	StepFailures  uint64 `json:"step_failures"`
	InflightSteps int64  `json:"inflight_steps"`
}

// session is one live (or tombstoned) solve session. Two locks split the
// concerns: stepMu serializes the solves themselves — warm-starting makes
// steps ordered by definition — while mu guards the metadata (state,
// counters, timestamps) so status and reaper reads never wait behind a
// running solve.
type session struct {
	id  string
	fp  string
	ttl time.Duration

	// Immutable after creation.
	a      *sparse.CSR
	opt    core.Options // per-step option template (no Seed/Ctx/hooks)
	tuned  *TunedParams
	cert   *certify.Certificate
	kernel string // resolved sweep kernel (survives the plan drop)

	stepMu sync.Mutex // serializes step execution

	mu        sync.Mutex
	state     SessionState
	core      *core.Session // dropped (with the plan ref) once not active
	plan      *Plan
	inflight  int
	steps     uint64
	stepFails uint64
	created   time.Time
	lastUsed  time.Time
}

// view snapshots the session.
func (ss *session) view() SessionView {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	v := SessionView{
		ID:            ss.id,
		State:         ss.state.String(),
		Fingerprint:   ss.fp,
		Steps:         ss.steps,
		FailedSteps:   ss.stepFails,
		InflightSteps: ss.inflight,
		WarmStart:     ss.core != nil && ss.core.Steps() > 0,
		BlockSize:     ss.opt.BlockSize,
		LocalIters:    ss.opt.LocalIters,
		Omega:         ss.opt.Omega,
		Engine:        ss.opt.Engine.String(),
		Kernel:        ss.kernel,
		Precision:     string(ss.opt.Precision),
		Method:        ss.opt.Method.String(),
		Beta:          ss.opt.Beta,
		Tuned:         ss.tuned,
		Certificate:   ss.cert,
		TTLSeconds:    ss.ttl.Seconds(),
		Created:       ss.created,
		LastUsed:      ss.lastUsed,
	}
	return v
}

// gone builds the structured 410 error for a non-active session.
func (ss *session) gone() *SessionGoneError {
	return &SessionGoneError{ID: ss.id, Fingerprint: ss.fp, State: ss.state}
}

// beginStep admits one step: only active sessions accept, and an admitted
// step is guaranteed to run to completion — release (close or reap) defers
// resource teardown until the in-flight count returns to zero.
func (ss *session) beginStep() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.state != SessionActive {
		return ss.gone()
	}
	ss.inflight++
	ss.lastUsed = time.Now()
	return nil
}

// endStep balances beginStep and performs the deferred teardown when the
// session left the active state while this step ran.
func (ss *session) endStep(failed bool) {
	ss.mu.Lock()
	ss.inflight--
	ss.lastUsed = time.Now()
	if failed {
		ss.stepFails++
	} else {
		ss.steps++
	}
	if ss.state != SessionActive && ss.inflight == 0 {
		ss.releaseLocked()
	}
	ss.mu.Unlock()
}

// transition moves an active session to a terminal state; resources are
// freed immediately when no step is in flight, otherwise by the last
// in-flight step's endStep. It reports whether the transition happened.
func (ss *session) transition(to SessionState) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.state != SessionActive {
		return false
	}
	ss.state = to
	if ss.inflight == 0 {
		ss.releaseLocked()
	}
	return true
}

// releaseLocked drops the warm iterate and plan references of a terminal
// session (the tombstone keeps only metadata). Callers hold ss.mu.
func (ss *session) releaseLocked() {
	ss.core = nil
	ss.plan = nil
	ss.a = nil
}

// idleExpired reports whether the reaper may expire the session now: idle
// past its TTL with no in-flight step (the reaper never kills a running
// step).
func (ss *session) idleExpired(now time.Time) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.state == SessionActive && ss.inflight == 0 && now.Sub(ss.lastUsed) > ss.ttl
}

// sessionStore owns every session the service issued, the idle reaper and
// the session counters.
type sessionStore struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	order    []string

	nextID    atomic.Uint64
	created   atomic.Uint64
	expired   atomic.Uint64
	closed    atomic.Uint64
	steps     atomic.Uint64
	stepFails atomic.Uint64
	inflight  atomic.Int64

	reapStop chan struct{}
	reapDone chan struct{}
	stopOnce sync.Once
}

func newSessionStore(cfg Config) *sessionStore {
	return &sessionStore{
		cfg:      cfg,
		sessions: make(map[string]*session),
		reapStop: make(chan struct{}),
		reapDone: make(chan struct{}),
	}
}

// startReaper launches the idle-TTL sweep (no-op when the TTL is negative).
func (st *sessionStore) startReaper() {
	if st.cfg.SessionTTL < 0 {
		close(st.reapDone)
		return
	}
	go func() {
		defer close(st.reapDone)
		t := time.NewTicker(st.cfg.SessionReapInterval)
		defer t.Stop()
		for {
			select {
			case <-st.reapStop:
				return
			case now := <-t.C:
				st.reap(now)
			}
		}
	}()
}

// stopReaper halts the sweep and waits for it to unwind.
func (st *sessionStore) stopReaper() {
	st.stopOnce.Do(func() { close(st.reapStop) })
	<-st.reapDone
}

// reap expires every session idle past its TTL. Sessions with an in-flight
// step are skipped — they re-qualify once the step finishes and the idle
// clock runs out again.
func (st *sessionStore) reap(now time.Time) {
	st.mu.Lock()
	candidates := make([]*session, 0, len(st.sessions))
	for _, ss := range st.sessions {
		candidates = append(candidates, ss)
	}
	st.mu.Unlock()
	for _, ss := range candidates {
		if ss.idleExpired(now) && ss.transition(SessionExpired) {
			st.expired.Add(1)
		}
	}
}

// activeCount counts sessions currently accepting steps.
func (st *sessionStore) activeCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, ss := range st.sessions {
		ss.mu.Lock()
		if ss.state == SessionActive {
			n++
		}
		ss.mu.Unlock()
	}
	return n
}

// stats snapshots the session counters.
func (st *sessionStore) stats() SessionStats {
	return SessionStats{
		Active:        st.activeCount(),
		Created:       st.created.Load(),
		Expired:       st.expired.Load(),
		Closed:        st.closed.Load(),
		Steps:         st.steps.Load(),
		StepFailures:  st.stepFails.Load(),
		InflightSteps: st.inflight.Load(),
	}
}

// get returns a session by ID (live or tombstoned).
func (st *sessionStore) get(id string) (*session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss, ok := st.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return ss, nil
}

// CreateSession validates the request, resolves the matrix, runs the
// admission pre-flight, tunes (when asked) and builds or fetches the plan,
// then registers a fresh active session. The setup cost lands here, once,
// so every step is pure iteration — the session analogue of a warm plan
// cache.
func (s *Service) CreateSession(req SessionRequest) (SessionView, error) {
	sreq := req.solveRequest()
	if err := s.validate(sreq); err != nil {
		s.rejected.Add(1)
		return SessionView{}, err
	}
	if req.TTLSeconds < 0 {
		s.rejected.Add(1)
		return SessionView{}, fmt.Errorf("service: ttl_seconds must be nonnegative, have %g", req.TTLSeconds)
	}
	a, fp, err := s.resolveMatrix(sreq)
	if err != nil {
		s.rejected.Add(1)
		return SessionView{}, err
	}
	cert, _, err := s.admitCertified(sreq, a, fp)
	if err != nil {
		s.rejected.Add(1)
		return SessionView{}, err
	}
	engine, err := sreq.engineKind()
	if err != nil {
		s.rejected.Add(1)
		return SessionView{}, err
	}
	kernel, err := sreq.kernelKind()
	if err != nil {
		s.rejected.Add(1)
		return SessionView{}, err
	}
	precision, err := sreq.precisionKind()
	if err != nil {
		s.rejected.Add(1)
		return SessionView{}, err
	}
	rule, mgrid, err := sreq.methodKind()
	if err != nil {
		s.rejected.Add(1)
		return SessionView{}, err
	}
	if mgrid {
		s.rejected.Add(1)
		return SessionView{}, errors.New("service: sessions run the core engines; method=multigrid is solve-only")
	}

	opt := core.Options{
		BlockSize:      req.BlockSize,
		LocalIters:     req.LocalIters,
		Omega:          req.Omega,
		Method:         rule,
		Beta:           sreq.resolvedBeta(rule),
		MaxGlobalIters: req.MaxGlobalIters,
		Tolerance:      req.Tolerance,
		Engine:         engine,
		Precision:      precision,
		Metrics:        s.solveMetrics,
	}
	var tuned *TunedParams
	if tuning, _ := sreq.tuneAuto(); tuning {
		b := make([]float64, a.Rows)
		a.MulVec(b, vecmath.Ones(a.Cols))
		tr, tuneHit, err := s.cache.GetOrTune(a, fp, b, tune.Config{Seed: s.cache.cfg.Seed})
		if err != nil {
			s.rejected.Add(1)
			return SessionView{}, fmt.Errorf("service: auto-tune: %w", err)
		}
		if opt.BlockSize == 0 {
			opt.BlockSize = tr.BlockSize
		}
		if opt.LocalIters == 0 {
			opt.LocalIters = tr.LocalIters
		}
		if opt.Omega == 0 {
			opt.Omega = tr.Omega
		}
		if req.Method == "" && req.Beta == 0 {
			opt.Method, opt.Beta = tr.Method, tr.Beta
		}
		tuned = &TunedParams{
			BlockSize:       opt.BlockSize,
			LocalIters:      opt.LocalIters,
			Omega:           opt.Omega,
			Method:          opt.Method.String(),
			Beta:            opt.Beta,
			SecondsPerDigit: tr.SecondsPerDigit,
			CacheHit:        tuneHit,
		}
	}
	plan, _, err := s.cache.GetOrBuild(a, keyWithFingerprint(fp, opt, kernel, req.Stencil.spec()))
	if err != nil {
		s.rejected.Add(1)
		return SessionView{}, err
	}
	s.kernelSolves[plan.Prepared.Kernel()].Add(1)
	s.methodSolves[opt.Method].Add(1)

	ttl := s.cfg.SessionTTL
	if req.TTLSeconds > 0 {
		ttl = time.Duration(req.TTLSeconds * float64(time.Second))
	}

	st := s.sessions
	st.mu.Lock()
	if s.Draining() {
		st.mu.Unlock()
		s.rejected.Add(1)
		return SessionView{}, ErrShuttingDown
	}
	active := 0
	for _, ss := range st.sessions {
		ss.mu.Lock()
		if ss.state == SessionActive {
			active++
		}
		ss.mu.Unlock()
	}
	if active >= s.cfg.MaxSessions {
		st.mu.Unlock()
		s.rejected.Add(1)
		return SessionView{}, fmt.Errorf("%w: %d active", ErrTooManySessions, active)
	}
	now := time.Now()
	ss := &session{
		id:       fmt.Sprintf("sess-%06d", st.nextID.Add(1)),
		fp:       fp,
		ttl:      ttl,
		a:        a,
		opt:      opt,
		tuned:    tuned,
		cert:     cert,
		state:    SessionActive,
		kernel:   plan.Prepared.Kernel().String(),
		core:     core.NewSession(plan.Prepared),
		plan:     plan,
		created:  now,
		lastUsed: now,
	}
	// The session's default seed rides in the template; per-step overrides
	// replace it in stepOptions.
	ss.opt.Seed = req.Seed
	st.sessions[ss.id] = ss
	st.order = append(st.order, ss.id)
	st.mu.Unlock()
	st.created.Add(1)
	return ss.view(), nil
}

// Session returns a session snapshot by ID.
func (s *Service) Session(id string) (SessionView, error) {
	ss, err := s.sessions.get(id)
	if err != nil {
		return SessionView{}, err
	}
	return ss.view(), nil
}

// Sessions lists snapshots of every session in creation order (tombstones
// included).
func (s *Service) Sessions() []SessionView {
	st := s.sessions
	st.mu.Lock()
	list := make([]*session, 0, len(st.order))
	for _, id := range st.order {
		list = append(list, st.sessions[id])
	}
	st.mu.Unlock()
	views := make([]SessionView, len(list))
	for i, ss := range list {
		views[i] = ss.view()
	}
	return views
}

// CloseSession deletes a session: the state flips to closed immediately
// (new steps answer 410), in-flight steps finish, and the warm iterate and
// plan references are dropped with the last of them. Closing a tombstone
// reports the 410 it already answers with.
func (s *Service) CloseSession(id string) (SessionView, error) {
	ss, err := s.sessions.get(id)
	if err != nil {
		return SessionView{}, err
	}
	if !ss.transition(SessionClosed) {
		return SessionView{}, ss.gone()
	}
	s.sessions.closed.Add(1)
	return ss.view(), nil
}

// StepSession runs the next step of a session: admission (410 for
// tombstones), serialization behind any earlier step, then one warm-started
// solve. progress, when non-nil, receives the live residual after every
// global iteration — the hook behind the streaming response modes; passing
// it costs one extra SpMV per iteration, so plain steps leave it nil.
func (s *Service) StepSession(id string, req StepRequest, progress func(StepProgress)) (StepResult, error) {
	ss, err := s.sessions.get(id)
	if err != nil {
		return StepResult{}, err
	}
	if len(req.RHS) == 0 {
		return StepResult{}, errors.New("service: step rhs must be non-empty")
	}
	if req.TimeoutSeconds < 0 {
		return StepResult{}, fmt.Errorf("service: timeout_seconds must be nonnegative, have %g", req.TimeoutSeconds)
	}
	if err := ss.beginStep(); err != nil {
		return StepResult{}, err
	}
	st := s.sessions
	st.inflight.Add(1)
	started := time.Now()

	// Steps are ordered by definition (each warm-starts from the last), so
	// concurrent steppers of one session queue here, first come first
	// served; sessions never share this lock.
	ss.stepMu.Lock()
	res, warm, stepIdx, err := s.runStep(ss, req, progress)
	ss.stepMu.Unlock()

	ss.endStep(err != nil)
	st.inflight.Add(-1)
	if err != nil {
		st.stepFails.Add(1)
		return StepResult{}, err
	}
	st.steps.Add(1)
	out := StepResult{
		SessionID:        ss.id,
		Step:             stepIdx,
		Converged:        res.Converged,
		GlobalIterations: res.GlobalIterations,
		Residual:         res.Residual,
		WarmStart:        warm,
		WallTime:         time.Since(started).Seconds(),
	}
	if req.IncludeSolution {
		out.X = res.X
	}
	return out, nil
}

// runStep executes one admitted, serialized step. Callers hold ss.stepMu.
func (s *Service) runStep(ss *session, req StepRequest, progress func(StepProgress)) (core.Result, bool, int, error) {
	ss.mu.Lock()
	sess, a := ss.core, ss.a
	ss.mu.Unlock()
	if sess == nil {
		// Closed while we waited for the step lock AND the teardown already
		// ran — only possible when endStep released between our beginStep
		// and here, which beginStep's inflight count prevents; keep the
		// guard anyway so a logic slip degrades to a clean 410.
		return core.Result{}, false, 0, ss.gone()
	}
	if len(req.RHS) != a.Rows {
		return core.Result{}, false, 0, fmt.Errorf("service: step rhs length %d does not match dimension %d", len(req.RHS), a.Rows)
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSeconds > 0 {
		timeout = time.Duration(req.TimeoutSeconds * float64(time.Second))
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	opt := ss.opt
	opt.Ctx = ctx
	if req.Seed != 0 {
		opt.Seed = req.Seed
	}
	if progress != nil {
		scratch := make([]float64, a.Rows)
		opt.AfterIteration = func(iter int, x core.VectorAccess) {
			for i := 0; i < x.Len(); i++ {
				scratch[i] = x.Get(i)
			}
			progress(StepProgress{
				GlobalIteration: iter,
				Residual:        solver.Residual(a, req.RHS, scratch),
			})
		}
	}

	warm := sess.Steps() > 0
	res, err := sess.Step(req.RHS, opt)
	if err != nil {
		return res, warm, 0, err
	}
	if opt.Tolerance > 0 && !res.Converged {
		// Unlike a failed step, a non-converged one HAS advanced the warm
		// iterate (core adopted it); report the condition as an error but
		// after adoption, so the next step continues from the best iterate.
		return res, warm, sess.Steps(), fmt.Errorf("service: %w after %d global iterations (residual %.3e, tolerance %.3e)",
			core.ErrNotConverged, res.GlobalIterations, res.Residual, opt.Tolerance)
	}
	return res, warm, sess.Steps(), nil
}
