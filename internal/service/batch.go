package service

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/tune"
)

// BatchRequest is the POST /v1/batch body: N small systems sharing one
// structure — one matrix, N right-hand sides — solved as a single batched
// run. The batch occupies one job-queue slot regardless of N (that is its
// queue-accounting contract: admission control prices batches as one unit
// of work, and the per-system fan-out happens inside the worker), and
// convergence is tracked per system with partial-failure reporting.
type BatchRequest struct {
	Matrix       string `json:"matrix,omitempty"`
	MatrixMarket string `json:"matrix_market,omitempty"`
	// RHS carries one right-hand side per system; at least one, at most
	// Config.MaxBatchSystems.
	RHS [][]float64 `json:"rhs"`
	// Tune is "" (off) or "auto" with the SolveRequest semantics.
	Tune string `json:"tune,omitempty"`
	// BlockSize may be 0 only with Tune: "auto".
	BlockSize      int     `json:"block_size,omitempty"`
	LocalIters     int     `json:"local_iters,omitempty"`
	Omega          float64 `json:"omega,omitempty"`
	MaxGlobalIters int     `json:"max_global_iters"`
	Tolerance      float64 `json:"tolerance,omitempty"`
	// Kernel and Precision have the SolveRequest semantics: the sweep-kernel
	// dispatch and iterate storage precision shared by every system.
	Kernel    string `json:"kernel,omitempty"`
	Precision string `json:"precision,omitempty"`
	// Method and Beta select the update rule every system runs with, with
	// the SolveRequest semantics — except "multigrid", which is solve-only.
	Method string  `json:"method,omitempty"`
	Beta   float64 `json:"beta,omitempty"`
	// Stencil declares the matrix's stencil structure (SolveRequest
	// semantics); the declaration shapes the one plan all systems share.
	Stencil *StencilDecl `json:"stencil,omitempty"`
	// Seed is the batch's base scheduler seed; system j derives
	// core.BatchSeed(seed, j). 0 selects a per-run stream.
	Seed int64 `json:"seed,omitempty"`
	// Workers is the cross-system solver parallelism (default 1 —
	// deterministic input order; clamped to Config.MaxBatchWorkers).
	Workers int `json:"workers,omitempty"`
	// Certify is "", "off", "warn" or "enforce" with the SolveRequest
	// semantics — the systems share one matrix, so one certificate covers
	// the whole batch.
	Certify string `json:"certify,omitempty"`
	// TimeoutSeconds bounds the whole batch's wall time (0: service
	// default).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// IncludeSolutions returns each system's iterate X in the result.
	IncludeSolutions bool `json:"include_solutions,omitempty"`
}

// solveRequest maps the shared solver configuration onto the solve-request
// shape for validation/resolution/certification reuse.
func (r BatchRequest) solveRequest() SolveRequest {
	return SolveRequest{
		Matrix:         r.Matrix,
		MatrixMarket:   r.MatrixMarket,
		Tune:           r.Tune,
		BlockSize:      r.BlockSize,
		LocalIters:     r.LocalIters,
		Omega:          r.Omega,
		MaxGlobalIters: r.MaxGlobalIters,
		Tolerance:      r.Tolerance,
		Kernel:         r.Kernel,
		Precision:      r.Precision,
		Method:         r.Method,
		Beta:           r.Beta,
		Stencil:        r.Stencil,
		Seed:           r.Seed,
		Certify:        r.Certify,
		TimeoutSeconds: r.TimeoutSeconds,
	}
}

// BatchStats is the batch slice of /statsz.
type BatchStats struct {
	// Submitted counts accepted batch jobs (each one queue slot).
	Submitted uint64 `json:"submitted"`
	// Systems counts the systems those batches carried.
	Systems uint64 `json:"systems"`
	// SystemFailures counts per-system errors inside finished batches.
	SystemFailures uint64 `json:"system_failures"`
}

// SystemView reports one system of a finished batch job.
type SystemView struct {
	Index            int       `json:"index"`
	Converged        bool      `json:"converged"`
	GlobalIterations int       `json:"global_iterations"`
	Residual         float64   `json:"residual"`
	Error            string    `json:"error,omitempty"`
	X                []float64 `json:"x,omitempty"`
}

// BatchSummary is the batch slice of a JobResult: per-system outcomes in
// input order plus the aggregate counts.
type BatchSummary struct {
	Systems         []SystemView `json:"systems"`
	Converged       int          `json:"converged"`
	Failed          int          `json:"failed"`
	TotalIterations int          `json:"total_iterations"`
	// Workers is the cross-system parallelism the batch actually ran with
	// (after the Config.MaxBatchWorkers clamp).
	Workers int `json:"workers"`
}

// SubmitBatch validates a batch request and enqueues it as one job. Like
// Submit it runs the admission pre-flight synchronously: with
// certify=enforce a divergent matrix refuses the whole batch with the
// structured 422 before any of its systems queue.
func (s *Service) SubmitBatch(req BatchRequest) (*Job, error) {
	sreq := req.solveRequest()
	if err := s.validate(sreq); err != nil {
		s.rejected.Add(1)
		return nil, err
	}
	if _, mgrid, _ := sreq.methodKind(); mgrid {
		s.rejected.Add(1)
		return nil, errors.New("service: batch solves run the core engines; method=multigrid is solve-only")
	}
	if len(req.RHS) == 0 {
		s.rejected.Add(1)
		return nil, errors.New("service: batch must carry at least one system (rhs is empty)")
	}
	if max := s.cfg.MaxBatchSystems; max > 0 && len(req.RHS) > max {
		s.rejected.Add(1)
		return nil, fmt.Errorf("service: batch carries %d systems, limit %d", len(req.RHS), max)
	}
	if req.Workers < 0 {
		s.rejected.Add(1)
		return nil, fmt.Errorf("service: workers must be nonnegative, have %d", req.Workers)
	}
	a, fp, err := s.resolveMatrix(sreq)
	if err != nil {
		s.rejected.Add(1)
		return nil, err
	}
	for j, b := range req.RHS {
		if len(b) != a.Rows {
			s.rejected.Add(1)
			return nil, fmt.Errorf("service: batch system %d: rhs length %d does not match dimension %d", j, len(b), a.Rows)
		}
	}
	cert, _, err := s.admitCertified(sreq, a, fp)
	if err != nil {
		s.rejected.Add(1)
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, ErrShuttingDown
	}
	id := fmt.Sprintf("job-%06d", s.nextID.Add(1))
	j := newJob(id, sreq)
	j.cert = cert
	j.batch = &req
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	if err := s.queue.Submit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, err
	}
	s.submits.Add(1)
	s.batchSubmits.Add(1)
	s.batchSystems.Add(uint64(len(req.RHS)))
	return j, nil
}

// runBatchAttempt executes a dequeued batch job: one shared plan (and
// tuning) lookup, then a core.SolveBatch fan-out across the systems. A
// per-system failure is reported in its SystemView, not as a job failure;
// the job itself fails only on batch-level errors (cancellation, plan
// problems) or when every single system failed — a fully doomed batch
// should look failed, not quietly "done with zero converged".
func (s *Service) runBatchAttempt(ctx context.Context, j *Job) (*JobResult, error) {
	req := *j.batch
	sreq := j.req

	a, fp, err := s.resolveMatrix(sreq)
	if err != nil {
		return nil, err
	}

	kernel, err := sreq.kernelKind()
	if err != nil {
		return nil, err
	}
	precision, err := sreq.precisionKind()
	if err != nil {
		return nil, err
	}
	rule, _, err := sreq.methodKind()
	if err != nil {
		return nil, err
	}

	opt := core.Options{
		BlockSize:      req.BlockSize,
		LocalIters:     req.LocalIters,
		Omega:          req.Omega,
		Method:         rule,
		Beta:           sreq.resolvedBeta(rule),
		MaxGlobalIters: req.MaxGlobalIters,
		Tolerance:      req.Tolerance,
		Precision:      precision,
		Seed:           req.Seed,
		Ctx:            ctx,
		Metrics:        s.solveMetrics,
	}
	var tuned *TunedParams
	if tuning, _ := sreq.tuneAuto(); tuning {
		b := req.RHS[0]
		tr, tuneHit, err := s.cache.GetOrTune(a, fp, b, tune.Config{Seed: s.cache.cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("service: auto-tune: %w", err)
		}
		if opt.BlockSize == 0 {
			opt.BlockSize = tr.BlockSize
		}
		if opt.LocalIters == 0 {
			opt.LocalIters = tr.LocalIters
		}
		if opt.Omega == 0 {
			opt.Omega = tr.Omega
		}
		if req.Method == "" && req.Beta == 0 {
			opt.Method, opt.Beta = tr.Method, tr.Beta
		}
		tuned = &TunedParams{
			BlockSize:       opt.BlockSize,
			LocalIters:      opt.LocalIters,
			Omega:           opt.Omega,
			Method:          opt.Method.String(),
			Beta:            opt.Beta,
			SecondsPerDigit: tr.SecondsPerDigit,
			CacheHit:        tuneHit,
		}
	}

	plan, hit, err := s.cache.GetOrBuild(a, keyWithFingerprint(fp, opt, kernel, req.Stencil.spec()))
	if err != nil {
		return nil, err
	}
	s.kernelSolves[plan.Prepared.Kernel()].Add(1)
	s.methodSolves[opt.Method].Add(1)
	nb := plan.Prepared.NumBlocks()
	j.setProgress(Progress{NumBlocks: nb, PlanHit: hit})

	workers := req.Workers
	if workers == 0 {
		workers = 1
	}
	if max := s.cfg.MaxBatchWorkers; max > 0 && workers > max {
		workers = max
	}
	res, batchErr := core.SolveBatch(plan.Prepared, req.RHS, opt, core.BatchOptions{Workers: workers})

	summary := &BatchSummary{
		Systems:         make([]SystemView, len(res.Systems)),
		Converged:       res.Converged,
		Failed:          res.Failed,
		TotalIterations: res.TotalIterations,
		Workers:         workers,
	}
	notConverged := 0
	for i, sys := range res.Systems {
		v := SystemView{
			Index:            sys.Index,
			Converged:        sys.Converged,
			GlobalIterations: sys.GlobalIterations,
			Residual:         sys.Residual,
		}
		switch {
		case sys.Err != nil:
			v.Error = sys.Err.Error()
		case req.Tolerance > 0 && !sys.Converged:
			v.Error = fmt.Sprintf("%v after %d global iterations (residual %.3e, tolerance %.3e)",
				core.ErrNotConverged, sys.GlobalIterations, sys.Residual, req.Tolerance)
			notConverged++
		}
		if req.IncludeSolutions {
			v.X = sys.X
		}
		summary.Systems[i] = v
	}
	s.batchSystemFails.Add(uint64(res.Failed + notConverged))

	result := &JobResult{
		Converged:        res.Failed == 0 && res.Converged == len(res.Systems),
		GlobalIterations: res.TotalIterations,
		NumBlocks:        nb,
		PlanHit:          hit,
		Fingerprint:      fp,
		Tuned:            tuned,
		Kernel:           plan.Prepared.Kernel().String(),
		Precision:        precision,
		Method:           opt.Method.String(),
		Beta:             opt.Beta,
		Batch:            summary,
	}
	if j.cert != nil {
		result.Certificate = j.cert
	}
	if batchErr != nil {
		return result, batchErr
	}
	if res.Failed+notConverged == len(res.Systems) && len(res.Systems) > 0 && (req.Tolerance > 0 || res.Failed > 0) {
		return result, fmt.Errorf("service: all %d batch systems failed: %w", len(res.Systems), firstSystemErr(res, req.Tolerance))
	}
	return result, nil
}

// firstSystemErr picks the representative error of a fully failed batch.
func firstSystemErr(res core.BatchResult, tol float64) error {
	for _, sys := range res.Systems {
		if sys.Err != nil {
			return sys.Err
		}
	}
	if tol > 0 {
		return core.ErrNotConverged
	}
	return errors.New("service: batch failed")
}
