package service

import (
	"container/list"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/certify"
	"repro/internal/sparse"
)

// CertificateError is the admission refusal of a certify=enforce request:
// the matrix was certified divergent and the job never entered the queue.
// It wraps certify.ErrDivergent (for errors.Is) and carries the full
// certificate so the HTTP layer can return a structured 422 body — the
// verdict is deterministic, so the client must change the request (or the
// matrix), not retry it elsewhere.
type CertificateError struct {
	Certificate certify.Certificate
}

// Error implements the error interface.
func (e *CertificateError) Error() string {
	return fmt.Sprintf("service: admission refused, matrix certified divergent: %s", e.Certificate.Reason)
}

// Unwrap lets errors.Is(err, certify.ErrDivergent) dispatch on refusals.
func (e *CertificateError) Unwrap() error { return certify.ErrDivergent }

// CertifyStats is a point-in-time snapshot of the certificate cache.
type CertifyStats struct {
	// Checks counts full certifications executed (cache misses).
	Checks uint64 `json:"checks"`
	// Hits counts lookups served from the resident cache.
	Hits uint64 `json:"hits"`
	// Coalesced counts lookups that joined an in-flight certification
	// instead of running their own.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts certificates dropped to respect the entry bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the number of resident certificates.
	Entries int `json:"entries"`
}

// certEntry is one cached certificate keyed by matrix fingerprint.
type certEntry struct {
	fp   string
	cert certify.Certificate
}

// certCheck coalesces concurrent certifications of one fingerprint.
type certCheck struct {
	done chan struct{}
	cert certify.Certificate
	err  error
}

// certCache caches admission certificates by matrix fingerprint. A
// certificate is a pure function of the matrix (the certifier is
// deterministic for fixed options), so the fingerprint alone keys it —
// like the tuning cache, but LRU-bounded alongside the plan cache: the
// certificate population tracks the same working set of matrices.
type certCache struct {
	mu       sync.Mutex
	ll       *list.List // of *certEntry; front = most recently used
	items    map[string]*list.Element
	inflight map[string]*certCheck
	max      int
	checks   uint64
	hits     uint64
	coalesce uint64
	evicted  uint64
}

func newCertCache(maxEntries int) *certCache {
	return &certCache{
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*certCheck),
		max:      maxEntries,
	}
}

// GetOrCertify returns the certificate for the matrix fingerprint, running
// the certifier on a miss. Concurrent calls for the same missing
// fingerprint coalesce into a single certification. hit reports whether
// the caller reused resident or in-flight work.
func (c *PlanCache) GetOrCertify(a *sparse.CSR, fp string, opt certify.Options) (certify.Certificate, bool, error) {
	cc := c.cert
	cc.mu.Lock()
	if el, ok := cc.items[fp]; ok {
		cc.ll.MoveToFront(el)
		cc.hits++
		cert := el.Value.(*certEntry).cert
		cc.mu.Unlock()
		return cert, true, nil
	}
	if chk, ok := cc.inflight[fp]; ok {
		cc.coalesce++
		cc.mu.Unlock()
		<-chk.done
		return chk.cert, true, chk.err
	}
	cc.checks++
	chk := &certCheck{done: make(chan struct{})}
	cc.inflight[fp] = chk
	cc.mu.Unlock()

	chk.cert, chk.err = certify.Certify(a, opt)

	cc.mu.Lock()
	delete(cc.inflight, fp)
	if chk.err == nil {
		cc.insertLocked(fp, chk.cert)
	}
	cc.mu.Unlock()
	close(chk.done)
	return chk.cert, false, chk.err
}

// insertLocked adds a certificate and evicts from the LRU tail while over
// the entry bound. Callers hold cc.mu.
func (cc *certCache) insertLocked(fp string, cert certify.Certificate) {
	if el, ok := cc.items[fp]; ok {
		cc.ll.MoveToFront(el)
		return
	}
	cc.items[fp] = cc.ll.PushFront(&certEntry{fp: fp, cert: cert})
	for cc.max > 0 && cc.ll.Len() > cc.max {
		back := cc.ll.Back()
		victim := back.Value.(*certEntry)
		cc.ll.Remove(back)
		delete(cc.items, victim.fp)
		cc.evicted++
	}
}

// CertifyStats snapshots the certificate-cache counters.
func (c *PlanCache) CertifyStats() CertifyStats {
	cc := c.cert
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return CertifyStats{
		Checks:    cc.checks,
		Hits:      cc.hits,
		Coalesced: cc.coalesce,
		Evictions: cc.evicted,
		Entries:   cc.ll.Len(),
	}
}

// certifyMode parses the request's certify field ("" means off).
func (r SolveRequest) certifyMode() (certify.Mode, error) {
	m, err := certify.ParseMode(r.Certify)
	if err != nil {
		return certify.ModeOff, fmt.Errorf("service: %w", err)
	}
	return m, nil
}

// fallbackGMRES parses the request's fallback field.
func (r SolveRequest) fallbackGMRES() (bool, error) {
	switch strings.ToLower(strings.TrimSpace(r.Fallback)) {
	case "":
		return false, nil
	case "gmres":
		return true, nil
	default:
		return false, fmt.Errorf("service: unknown fallback %q (want \"gmres\" or empty)", r.Fallback)
	}
}

// admitCertified runs the admission pre-flight for a validated request:
// certify the matrix (through the fingerprint cache), refuse enforce-mode
// divergent verdicts without a fallback, and return the certificate plus
// whether the job must run the GMRES fallback instead of relaxation.
func (s *Service) admitCertified(req SolveRequest, a *sparse.CSR, fp string) (*certify.Certificate, bool, error) {
	mode, err := req.certifyMode()
	if err != nil || mode == certify.ModeOff {
		return nil, false, err
	}
	cert, _, err := s.cache.GetOrCertify(a, fp, certify.Options{Seed: s.cache.cfg.Seed})
	if err != nil {
		return nil, false, fmt.Errorf("service: admission certification: %w", err)
	}
	if mode == certify.ModeEnforce && cert.Verdict == certify.VerdictDiverges {
		if gmres, _ := req.fallbackGMRES(); gmres {
			s.certFallbacks.Add(1)
			return &cert, true, nil
		}
		s.certRejected.Add(1)
		return &cert, false, &CertificateError{Certificate: cert}
	}
	return &cert, false, nil
}

// errCertificate extracts a CertificateError from an error chain, nil when
// absent. The HTTP layer uses it to emit the structured 422 body.
func errCertificate(err error) *CertificateError {
	var ce *CertificateError
	if errors.As(err, &ce) {
		return ce
	}
	return nil
}
