package service

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/multigrid"
	"repro/internal/sparse"
	"repro/internal/tune"
)

// runMultigridAttempt executes a method=multigrid job: geometric V-cycles
// on the five-point Poisson operator with an auto-tuned asynchronous
// smoother — the paper's method graduated from standalone solver to the
// smoothing role where its cheap chaotic sweeps pay off per cycle.
//
// The route is solve-only and restricted to operators the hierarchy can
// rediscretize: the matrix must be exactly mats.Poisson2D(W, W) for an odd
// W ≥ 5 (checked by fingerprint, so a bit-for-bit equal uploaded Matrix
// Market operator qualifies too). The smoother's block size, sweep count,
// ω and update rule come from the tuning cache — one search per matrix
// fingerprint, method/β stage included — with explicitly set request
// fields overriding the tuned value, mirroring tune=auto. MaxGlobalIters
// bounds V-cycles here, and the result's GlobalIterations reports cycles.
func (s *Service) runMultigridAttempt(ctx context.Context, j *Job, a *sparse.CSR, fp string, b []float64) (*JobResult, error) {
	req := j.req

	w := int(math.Round(math.Sqrt(float64(a.Rows))))
	if w*w != a.Rows || w < 5 || w%2 == 0 {
		return nil, fmt.Errorf("service: method=multigrid needs an odd square grid (n = W×W, odd W ≥ 5), have n=%d", a.Rows)
	}
	if Fingerprint(mats.Poisson2D(w, w)) != fp {
		return nil, fmt.Errorf("service: method=multigrid supports the five-point Poisson operator on the %dx%d grid; the submitted matrix differs", w, w)
	}

	tr, tuneHit, err := s.cache.GetOrTune(a, fp, b, tune.Config{Seed: s.cache.cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("service: multigrid smoother tune: %w", err)
	}
	sm := &multigrid.AsyncSmoother{
		BlockSize:   tr.BlockSize,
		LocalIters:  tr.LocalIters,
		GlobalIters: 2,
		Omega:       tr.Omega,
		Method:      tr.Method,
		Beta:        tr.Beta,
		Ctx:         ctx,
	}
	if req.BlockSize > 0 {
		sm.BlockSize = req.BlockSize
	}
	if req.LocalIters > 0 {
		sm.LocalIters = req.LocalIters
	}
	if req.Omega != 0 {
		sm.Omega = req.Omega
	}

	mg, err := multigrid.New(multigrid.Options{
		Width:  w,
		Height: w,
		// Level 0 is the admitted matrix itself; coarser levels rediscretize
		// the same operator family (the pure h²-Laplacian is self-consistent
		// under 2:1 vertex coarsening).
		Operator: func(level, lw, lh int) *sparse.CSR {
			if level == 0 {
				return a
			}
			return mats.Poisson2D(lw, lh)
		},
		Smoother: sm,
	})
	if err != nil {
		return nil, fmt.Errorf("service: building multigrid hierarchy: %w", err)
	}

	s.methodSolves[methodIdxMultigrid].Add(1)
	j.setProgress(Progress{NumBlocks: (a.Rows + sm.BlockSize - 1) / sm.BlockSize})

	res, mgErr := mg.Solve(b, req.Tolerance, req.MaxGlobalIters)
	result := &JobResult{
		Converged:        res.Converged,
		GlobalIterations: res.Cycles,
		Residual:         res.Residual,
		Fingerprint:      fp,
		Method:           methodMultigrid,
		Tuned: &TunedParams{
			BlockSize:       sm.BlockSize,
			LocalIters:      sm.LocalIters,
			Omega:           sm.Omega,
			Method:          tr.Method.String(),
			Beta:            tr.Beta,
			SecondsPerDigit: tr.SecondsPerDigit,
			CacheHit:        tuneHit,
		},
	}
	if req.RecordHistory {
		result.History = res.History
	}
	if req.IncludeSolution {
		result.X = res.X
	}
	if j.cert != nil {
		result.Certificate = j.cert
	}
	if mgErr != nil {
		return result, mgErr
	}
	if req.Tolerance > 0 && !res.Converged {
		return result, fmt.Errorf("service: %w after %d V-cycles (residual %.3e, tolerance %.3e)",
			core.ErrNotConverged, res.Cycles, res.Residual, req.Tolerance)
	}
	return result, nil
}
