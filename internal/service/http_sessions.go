package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// registerSessionRoutes adds the streaming solve-session API:
//
//	POST   /v1/sessions           create a session (SessionRequest JSON) → 201
//	GET    /v1/sessions           list all sessions (tombstones included)
//	GET    /v1/sessions/{id}      session state and counters
//	POST   /v1/sessions/{id}/step solve the next RHS (StepRequest JSON);
//	                              "stream": "sse" or "json" streams the live
//	                              residual, otherwise one JSON document
//	DELETE /v1/sessions/{id}      close the session (410 for later steps)
//
// A step against an expired or closed session answers a structured 410
// whose body carries the session's fingerprint — the key a client (or the
// gateway) needs to re-create it in the right place. Unknown IDs are 404.
func registerSessionRoutes(mux *http.ServeMux, s *Service) {
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req SessionRequest
		if !decodeBody(w, r, &req) {
			return
		}
		v, err := s.CreateSession(req)
		if err != nil {
			writeSubmitError(w, s, err)
			return
		}
		w.Header().Set("Location", "/v1/sessions/"+v.ID)
		writeJSON(w, http.StatusCreated, v)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sessionListResponse{Sessions: s.Sessions()})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Session(r.PathValue("id"))
		if err != nil {
			writeSessionError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.CloseSession(r.PathValue("id"))
		if err != nil {
			writeSessionError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/step", func(w http.ResponseWriter, r *http.Request) {
		var req StepRequest
		if !decodeBody(w, r, &req) {
			return
		}
		switch strings.ToLower(strings.TrimSpace(req.Stream)) {
		case "":
			res, err := s.StepSession(r.PathValue("id"), req, nil)
			if err != nil {
				writeSessionError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, res)
		case "sse":
			streamStep(w, s, r.PathValue("id"), req, sseEncoder{})
		case "json":
			streamStep(w, s, r.PathValue("id"), req, jsonLineEncoder{})
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("service: unknown stream mode %q (want \"sse\", \"json\" or empty)", req.Stream))
		}
	})
}

// registerBatchRoutes adds the batched many-small-systems API:
//
//	POST /v1/batch submit N systems sharing one structure (BatchRequest
//	               JSON) → 202 + job ID; the finished job's result carries
//	               the per-system outcomes under "batch"
func registerBatchRoutes(mux *http.ServeMux, s *Service) {
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !decodeBody(w, r, &req) {
			return
		}
		j, err := s.SubmitBatch(req)
		if err != nil {
			writeSubmitError(w, s, err)
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+j.ID())
		writeJSON(w, http.StatusAccepted, submitResponse{
			JobID:     j.ID(),
			State:     j.State().String(),
			StatusURL: "/v1/jobs/" + j.ID(),
		})
	})
}

// decodeBody reads and unmarshals a bounded JSON request body, answering
// the appropriate 4xx itself; it reports whether the caller may proceed.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("service: reading request: %w", err))
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: decoding request: %w", err))
		return false
	}
	return true
}

// writeSubmitError maps a Submit/SubmitBatch/CreateSession error onto the
// HTTP surface, including the structured 422 certificate body and the
// priced 429 Retry-After (shared with POST /v1/solve).
func writeSubmitError(w http.ResponseWriter, s *Service, err error) {
	if ce := errCertificate(err); ce != nil {
		writeJSON(w, http.StatusUnprocessableEntity, certErrorResponse{
			Error:       err.Error(),
			Certificate: ce.Certificate,
		})
		return
	}
	status := submitStatus(err)
	if errors.Is(err, ErrTooManySessions) {
		status = http.StatusTooManyRequests
	}
	if status == http.StatusTooManyRequests && !errors.Is(err, ErrTooManySessions) {
		w.Header().Set("Retry-After", fmt.Sprint(s.RetryAfterSeconds()))
	}
	writeError(w, status, err)
}

// sessionGoneResponse is the structured 410 body: the code distinguishes
// an idle-TTL expiry from a client close (the gateway's failover variant
// uses "session-lost"), and the fingerprint lets the caller re-create the
// session without re-deriving its routing key.
type sessionGoneResponse struct {
	Error       string `json:"error"`
	Code        string `json:"code"`
	SessionID   string `json:"session_id"`
	Fingerprint string `json:"fingerprint"`
}

type sessionListResponse struct {
	Sessions []SessionView `json:"sessions"`
}

// writeSessionError maps session lookup/step errors: 404 unknown, 410
// gone (structured), 409 canceled, 422 solve failures, 400 otherwise.
func writeSessionError(w http.ResponseWriter, err error) {
	var gone *SessionGoneError
	if errors.As(err, &gone) {
		writeJSON(w, http.StatusGone, sessionGoneResponse{
			Error:       err.Error(),
			Code:        "session-" + gone.State.String(),
			SessionID:   gone.ID,
			Fingerprint: gone.Fingerprint,
		})
		return
	}
	writeError(w, sessionErrStatus(err), err)
}

func sessionErrStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownSession):
		return http.StatusNotFound
	case isSolveFailure(err):
		return http.StatusUnprocessableEntity
	default:
		return submitStatus(err)
	}
}
