package service

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// fuzzMatrix is a small inline Matrix Market payload for the seed corpus.
const fuzzMatrix = "%%MatrixMarket matrix coordinate real general\n" +
	"4 4 10\n1 1 4\n2 2 4\n3 3 4\n4 4 4\n1 2 -1\n2 1 -1\n2 3 -1\n3 2 -1\n3 4 -1\n4 3 -1\n"

// sanitizeFuzzService bounds the execution cost of a fuzzed request so the
// fuzzer exercises the decoder/validation surface, not the solver or the
// tuner: named-matrix generation, auto-tuning and certification are all
// off, and iteration budgets are clamped.
func sanitizeFuzz(maxIters int, matrix *string, tune, certify *string, iters *int) {
	*matrix = "" // named matrices can generate arbitrarily large systems
	*tune = ""
	*certify = "off"
	if *iters > maxIters || *iters < 0 {
		*iters = maxIters
	}
}

// FuzzSessionRequest fuzzes the session JSON decoders end to end: a create
// payload and a step payload, fed through CreateSession and StepSession
// against both the created session and a duplicate/bogus ID. Whatever the
// bytes, the service must answer with an error or a result — never a panic,
// a negative counter or a stuck in-flight gauge.
func FuzzSessionRequest(f *testing.F) {
	valid, _ := json.Marshal(SessionRequest{
		MatrixMarket: fuzzMatrix, BlockSize: 2, LocalIters: 2, MaxGlobalIters: 50, Tolerance: 1e-8, Seed: 7,
	})
	step, _ := json.Marshal(StepRequest{RHS: []float64{1, 1, 1, 1}})
	f.Add(valid, step)
	f.Add(valid, []byte(`{"rhs":[]}`))                        // empty RHS
	f.Add(valid, []byte(`{"rhs":[1,2]}`))                     // wrong length
	f.Add(valid, []byte(`{"rhs":[1,2,3,4,5,6,7]}`))          // overlong RHS
	f.Add(valid, []byte(`{"rhs":[1e308,1e308,1,1]}`))        // overflow-prone values
	f.Add(valid, []byte(`{"rhs":[1,1,1,1],"seed":-1}`))      // negative seed
	f.Add([]byte(`{"matrix_market":"bogus"}`), step)          // unparseable matrix
	f.Add([]byte(`{"ttl_seconds":-5}`), step)                 // negative TTL
	f.Add([]byte(`{"engine":"cuda"}`), step)                  // unknown engine
	f.Add([]byte(`{`), []byte(`{`))                           // malformed JSON
	f.Add([]byte(`{"block_size":-3,"local_iters":-9}`), step) // negative config

	s := New(Config{
		Workers: 1, QueueDepth: 2,
		MaxSessions: 4, SessionReapInterval: time.Hour, MaxMatrixRows: 512,
	})
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	f.Fuzz(func(t *testing.T, create, stepBody []byte) {
		if len(create) > 8<<10 || len(stepBody) > 64<<10 {
			t.Skip("oversized input")
		}
		var req SessionRequest
		_ = json.Unmarshal(create, &req) // decode errors still exercise the zero request
		sanitizeFuzz(50, &req.Matrix, &req.Tune, &req.Certify, &req.MaxGlobalIters)

		id := "sess-000001" // a duplicate/stale ID when creation fails
		v, err := s.CreateSession(req)
		if err == nil {
			id = v.ID
		}

		var sreq StepRequest
		_ = json.Unmarshal(stepBody, &sreq)
		sreq.Stream = "" // the wire framing is the HTTP layer's, not the store's
		if sreq.TimeoutSeconds < 0 || sreq.TimeoutSeconds > 5 {
			sreq.TimeoutSeconds = 5
		}
		_, _ = s.StepSession(id, sreq, nil)
		if err == nil {
			_, _ = s.CloseSession(v.ID) // keep the active set bounded
		}

		st := s.Stats().Sessions
		if st.InflightSteps != 0 {
			t.Fatalf("in-flight gauge leaked: %+v", st)
		}
		if st.Active < 0 || st.Closed > st.Created {
			t.Fatalf("counter invariant broken: %+v", st)
		}
	})
}

// FuzzBatchRequest fuzzes the batch JSON decoder and submit path: malformed
// RHS shapes, zero-system batches, hostile worker counts. Accepted jobs are
// canceled immediately — the fuzz target is admission, not the solver.
func FuzzBatchRequest(f *testing.F) {
	valid, _ := json.Marshal(BatchRequest{
		MatrixMarket: fuzzMatrix, RHS: [][]float64{{1, 1, 1, 1}, {2, 2, 2, 2}},
		BlockSize: 2, LocalIters: 2, MaxGlobalIters: 50, Tolerance: 1e-8, Seed: 42,
	})
	f.Add(valid)
	f.Add([]byte(`{"rhs":[]}`))                          // zero systems
	f.Add([]byte(`{"rhs":[[1],[1,2],[1,2,3]]}`))         // ragged lengths
	f.Add([]byte(`{"rhs":[[]],"workers":-1}`))           // empty system, bad workers
	f.Add([]byte(`{"rhs":[[1,1,1,1]],"workers":99999}`)) // huge workers
	f.Add([]byte(`{"rhs":null}`))
	f.Add([]byte(`{`))

	s := New(Config{
		Workers: 1, QueueDepth: 4,
		MaxBatchSystems: 8, MaxBatchWorkers: 2, SessionReapInterval: time.Hour, MaxMatrixRows: 512,
	})
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 64<<10 {
			t.Skip("oversized input")
		}
		var req BatchRequest
		_ = json.Unmarshal(body, &req)
		sanitizeFuzz(50, &req.Matrix, &req.Tune, &req.Certify, &req.MaxGlobalIters)

		j, err := s.SubmitBatch(req)
		if err != nil {
			return
		}
		j.Cancel(ErrShuttingDown)
		select {
		case <-j.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("accepted batch never reached a terminal state (state %v)", j.State())
		}
		if st := s.Stats().Batch; st.Submitted == 0 {
			t.Fatalf("accepted batch not counted: %+v", st)
		}
	})
}
