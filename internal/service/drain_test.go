package service

import (
	"net/http"
	"strconv"
	"testing"

	"repro/internal/mats"
)

// TestReadyzFlipsOnDrain: /readyz mirrors drain state while /healthz stays
// a pure liveness probe — the split a fleet gateway ejects on.
func TestReadyzFlipsOnDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", resp.StatusCode)
	}

	s.BeginDrain()
	resp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", resp2.StatusCode)
	}

	alive, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	alive.Body.Close()
	if alive.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (liveness is not readiness)", alive.StatusCode)
	}
	if !s.Draining() {
		t.Error("Draining() = false after BeginDrain")
	}
}

// TestQueueFullRetryAfterComputed: the 429's Retry-After is priced from
// backlog and observed solve durations, not hardcoded. With no wall-time
// history it falls back to the 1s floor; either way it must be a positive
// integer within the [1, 60] clamp.
func TestQueueFullRetryAfterComputed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	slow := SolveRequest{
		MatrixMarket:   mmPayload(t, mats.DiagDominant(64, 4, 1.6)),
		BlockSize:      16,
		LocalIters:     2,
		MaxGlobalIters: 100000, // no tolerance: runs the full budget
	}
	// Occupy the worker, then the single queue slot.
	if _, resp := postSolve(t, ts, slow); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	if _, resp := postSolve(t, ts, slow); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	_, resp := postSolve(t, ts, slow)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	n, err := strconv.Atoi(ra)
	if err != nil || n < 1 || n > 60 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 60]", ra)
	}
}

func TestRetryAfterSecondsScalesWithBacklog(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 64})
	t.Cleanup(func() { s.queue.Close() })

	// No backlog, no history: floor of 1s.
	if got := s.RetryAfterSeconds(); got != 1 {
		t.Errorf("idle RetryAfterSeconds = %d, want 1", got)
	}
	// Seed the wall-time histogram with ~2s jobs; the estimate must stay
	// clamped to [1, 60] whatever the backlog.
	for i := 0; i < 16; i++ {
		s.wallHist.Observe(2.0)
	}
	if got := s.RetryAfterSeconds(); got < 1 || got > 60 {
		t.Errorf("RetryAfterSeconds = %d outside [1, 60]", got)
	}
}

// TestResultCarriesFingerprint: the job result echoes the matrix
// fingerprint the caches and the fleet ring key by.
func TestResultCarriesFingerprint(t *testing.T) {
	a := mats.DiagDominant(48, 4, 1.6)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	sub, resp := postSolve(t, ts, SolveRequest{
		MatrixMarket:   mmPayload(t, a),
		BlockSize:      16,
		LocalIters:     2,
		MaxGlobalIters: 500,
		Tolerance:      1e-8,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	v := waitJobState(t, ts, sub.JobID, "done")
	if v.Result == nil {
		t.Fatal("no result")
	}
	if want := Fingerprint(a); v.Result.Fingerprint != want {
		t.Errorf("result fingerprint = %q, want %q", v.Result.Fingerprint, want)
	}
}
