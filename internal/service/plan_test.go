package service

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/vecmath"
)

func onesRHS(a interface {
	MulVec(y, x []float64)
	Dims() (int, int)
}) []float64 {
	r, c := a.Dims()
	b := make([]float64, r)
	a.MulVec(b, vecmath.Ones(c))
	return b
}

func TestFingerprint(t *testing.T) {
	a := mats.Poisson2D(10, 10)
	b := mats.Poisson2D(10, 10)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical matrices should fingerprint identically")
	}
	c := mats.Poisson2D(10, 11)
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different matrices should fingerprint differently")
	}
	d := a.Clone()
	d.Val[0] += 1e-12
	if Fingerprint(a) == Fingerprint(d) {
		t.Fatal("a value perturbation must change the fingerprint")
	}
}

func TestPlanKeyNormalization(t *testing.T) {
	a := mats.Poisson2D(8, 8)
	k1 := KeyFor(a, core.Options{BlockSize: 16, LocalIters: 5})
	k2 := KeyFor(a, core.Options{BlockSize: 16, LocalIters: 5, Omega: 1})
	if k1 != k2 {
		t.Fatalf("Omega 0 and 1 should key identically: %v vs %v", k1, k2)
	}
	k3 := KeyFor(a, core.Options{BlockSize: 16, LocalIters: 5, ExactLocal: true})
	k4 := KeyFor(a, core.Options{BlockSize: 16, LocalIters: 9, ExactLocal: true})
	if k3 != k4 {
		t.Fatalf("LocalIters is irrelevant under ExactLocal: %v vs %v", k3, k4)
	}
}

func TestPlanCacheHitMiss(t *testing.T) {
	a := mats.Poisson2D(12, 12)
	c := NewPlanCache(CacheConfig{})
	key := KeyFor(a, core.Options{BlockSize: 32, LocalIters: 5})

	p1, hit, err := c.GetOrBuild(a, key)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first lookup must miss")
	}
	p2, hit, err := c.GetOrBuild(a, key)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second lookup must hit")
	}
	if p1 != p2 {
		t.Fatal("hit must return the same cached plan")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.Bytes != p1.Bytes || st.Bytes <= 0 {
		t.Fatalf("byte accounting %d, want %d > 0", st.Bytes, p1.Bytes)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	a := mats.Poisson2D(12, 12)
	c := NewPlanCache(CacheConfig{MaxEntries: 2})
	keys := make([]PlanKey, 3)
	for i := range keys {
		keys[i] = KeyFor(a, core.Options{BlockSize: 16 << i, LocalIters: 5})
		if _, _, err := c.GetOrBuild(a, keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
	// The LRU victim is the oldest key; the newer two remain.
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest key should have been evicted")
	}
	for _, k := range keys[1:] {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("key %v should still be cached", k)
		}
	}
	// Re-requesting the victim is a miss and evicts the next-oldest.
	if _, hit, err := c.GetOrBuild(a, keys[0]); err != nil || hit {
		t.Fatalf("evicted key must rebuild (hit=%t, err=%v)", hit, err)
	}
	if st := c.Stats(); st.Evictions != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 entries / 2 evictions", st)
	}
}

func TestPlanCacheByteBudget(t *testing.T) {
	a := mats.Poisson2D(12, 12)
	probe, err := core.NewPlan(a, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	// Budget for one plan only: the second insertion evicts the first.
	c := NewPlanCache(CacheConfig{MaxEntries: -1, MaxBytes: probe.MemoryBytes() + 64})
	for i := 0; i < 2; i++ {
		key := KeyFor(a, core.Options{BlockSize: 16, LocalIters: 5 + i})
		if _, _, err := c.GetOrBuild(a, key); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 entry / 1 eviction under byte budget", st)
	}
	if st.Bytes > probe.MemoryBytes()+64 {
		t.Fatalf("resident bytes %d exceed budget", st.Bytes)
	}
}

// TestPlanCacheConcurrentStorm hammers the cache from many goroutines with
// a small key set (run under -race in CI): every caller must observe the
// same plan pointer per key, and the counters must account every lookup.
func TestPlanCacheConcurrentStorm(t *testing.T) {
	a := mats.Poisson2D(16, 16)
	c := NewPlanCache(CacheConfig{MaxEntries: 8})
	const (
		goroutines = 16
		rounds     = 50
		numKeys    = 4
	)
	keys := make([]PlanKey, numKeys)
	for i := range keys {
		keys[i] = KeyFor(a, core.Options{BlockSize: 8 * (i + 1), LocalIters: 5})
	}

	var mu sync.Mutex
	seen := make(map[PlanKey]*Plan)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := keys[(g+r)%numKeys]
				p, _, err := c.GetOrBuild(a, key)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				if prev, ok := seen[key]; ok && prev != p {
					mu.Unlock()
					errs <- fmt.Errorf("key %v: two distinct plans observed", key)
					return
				}
				seen[key] = p
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Hits+st.Misses != goroutines*rounds {
		t.Fatalf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, goroutines*rounds)
	}
	if st.Misses < numKeys || st.Misses > goroutines*rounds/2 {
		t.Fatalf("misses = %d, want small (≥%d, far below lookup count)", st.Misses, numKeys)
	}
	if st.Entries != numKeys {
		t.Fatalf("entries = %d, want %d", st.Entries, numKeys)
	}
}

// TestCachedPlanBitIdenticalSolve is the acceptance check for plan reuse:
// a solve through a cache-hit plan must be bit-identical to a cold
// EngineSimulated solve of the same system.
func TestCachedPlanBitIdenticalSolve(t *testing.T) {
	a := mats.Poisson2D(20, 20)
	b := onesRHS(a)
	opt := core.Options{
		BlockSize:      64,
		LocalIters:     5,
		MaxGlobalIters: 800,
		Tolerance:      1e-10,
		Seed:           7,
		RecordHistory:  true,
	}
	cold, err := core.Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}

	c := NewPlanCache(CacheConfig{})
	key := KeyFor(a, opt)
	if _, hit, err := c.GetOrBuild(a, key); err != nil || hit {
		t.Fatalf("prime the cache: hit=%t err=%v", hit, err)
	}
	plan, hit, err := c.GetOrBuild(a, key)
	if err != nil || !hit {
		t.Fatalf("warm lookup: hit=%t err=%v", hit, err)
	}
	warm, err := core.SolveWithPlan(plan.Prepared, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.GlobalIterations != cold.GlobalIterations || warm.Residual != cold.Residual {
		t.Fatalf("warm (%d iters, %v) != cold (%d iters, %v)",
			warm.GlobalIterations, warm.Residual, cold.GlobalIterations, cold.Residual)
	}
	for i := range cold.X {
		if warm.X[i] != cold.X[i] {
			t.Fatalf("x[%d]: warm %v != cold %v (not bit-identical)", i, warm.X[i], cold.X[i])
		}
	}
	for i := range cold.History {
		if warm.History[i] != cold.History[i] {
			t.Fatalf("history[%d]: warm %v != cold %v", i, warm.History[i], cold.History[i])
		}
	}
}

func TestPlanCacheAnalysisReport(t *testing.T) {
	a := mats.Poisson2D(10, 10)
	c := NewPlanCache(CacheConfig{AnalyzeSpectrum: true})
	p, _, err := c.GetOrBuild(a, KeyFor(a, core.Options{BlockSize: 25, LocalIters: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasReport {
		t.Fatal("expected a convergence report")
	}
	// Poisson is weakly diagonally dominant with ρ(B) < 1.
	if !p.Report.JacobiConverges {
		t.Fatalf("Poisson report claims Jacobi divergence: %+v", p.Report)
	}
}
