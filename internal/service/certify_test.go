package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/sparse"
)

// doomedRequest is the s1rmt3m1-analog submission: SPD-violating,
// non-dominant, ρ(B) ≈ 2.66 — provably divergent under relaxation.
func doomedRequest(t *testing.T, mode string) SolveRequest {
	return SolveRequest{
		MatrixMarket:   mmPayload(t, mats.S1RMT3M1(200)),
		BlockSize:      32,
		LocalIters:     1,
		MaxGlobalIters: 50,
		Tolerance:      1e-8,
		Seed:           7,
		Certify:        mode,
	}
}

func TestCertifyEnforceRejectsDoomedAtSubmit(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	_, err := s.Submit(doomedRequest(t, "enforce"))
	if !errors.Is(err, certify.ErrDivergent) {
		t.Fatalf("err = %v, want wrapped certify.ErrDivergent", err)
	}
	ce := errCertificate(err)
	if ce == nil {
		t.Fatalf("err %v carries no certificate", err)
	}
	if ce.Certificate.Verdict != certify.VerdictDiverges {
		t.Fatalf("refusal certificate verdict = %v, want diverges", ce.Certificate.Verdict)
	}
	st := s.Stats()
	if st.CertRejected != 1 {
		t.Fatalf("cert_rejected = %d, want 1", st.CertRejected)
	}
	if st.Submitted != 0 {
		t.Fatalf("a refused admission counted as submitted (%d)", st.Submitted)
	}
}

func TestCertifyWarnRunsDoomedToNotConverged(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(doomedRequest(t, "warn"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobFailed {
		t.Fatalf("state = %v, want failed", st)
	}
	if jerr := j.Err(); !errors.Is(jerr, core.ErrNotConverged) && !errors.Is(jerr, core.ErrDiverged) {
		t.Fatalf("err = %v, want ErrNotConverged or ErrDiverged", jerr)
	}
	res := j.Result()
	if res == nil || res.Certificate == nil {
		t.Fatalf("warn result missing certificate: %+v", res)
	}
	if res.Certificate.Verdict != certify.VerdictDiverges {
		t.Fatalf("certificate verdict = %v, want diverges", res.Certificate.Verdict)
	}
}

// weakTridiag builds the [−1, d, −1] Toeplitz with d < 2: a Z-matrix with
// ρ(B) = 2cos(π/(n+1))/d > 1 — certified divergent — that GMRES still
// solves (for n below the restart length the Krylov recurrence is exact).
func weakTridiag(n int, d float64) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, d)
		if i+1 < n {
			c.Add(i, i+1, -1)
			c.Add(i+1, i, -1)
		}
	}
	return c.ToCSR()
}

func TestCertifyEnforceFallbackGMRES(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	req := SolveRequest{
		MatrixMarket:   mmPayload(t, weakTridiag(24, 1.3)),
		BlockSize:      8,
		LocalIters:     1,
		MaxGlobalIters: 500,
		Tolerance:      1e-8,
		Seed:           7,
		Certify:        "enforce",
		Fallback:       "gmres",
	}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("fallback submission refused: %v", err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobDone {
		t.Fatalf("state = %v (%v), want done — GMRES handles the weak tridiagonal", st, j.Err())
	}
	res := j.Result()
	if res == nil || res.Fallback != "gmres" || !res.Converged {
		t.Fatalf("result = %+v, want converged gmres fallback", res)
	}
	if res.Certificate == nil || res.Certificate.Verdict != certify.VerdictDiverges {
		t.Fatalf("fallback result missing the triggering certificate: %+v", res.Certificate)
	}
	if got := s.Stats().CertFallbacks; got != 1 {
		t.Fatalf("cert_fallbacks = %d, want 1", got)
	}
}

func TestCertifyEnforceAdmitsConvergentAndEchoesPrediction(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	req := quickRequest(t)
	req.Certify = "enforce"
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("enforce refused a convergent matrix: %v", err)
	}
	waitDone(t, j)
	res := j.Result()
	if res == nil || !res.Converged {
		t.Fatalf("result = %+v (%v), want converged", res, j.Err())
	}
	if res.Certificate == nil || res.Certificate.Verdict != certify.VerdictConverges {
		t.Fatalf("certificate = %+v, want converges", res.Certificate)
	}
	if res.PredictedVsActual <= 0 {
		t.Fatalf("predicted_vs_actual = %g, want positive", res.PredictedVsActual)
	}
}

func TestCertifyRequestValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	req := quickRequest(t)
	req.Certify = "sometimes"
	if _, err := s.Submit(req); err == nil {
		t.Fatal("unknown certify mode accepted")
	}
	req = quickRequest(t)
	req.Fallback = "gmres" // without certify=enforce
	if _, err := s.Submit(req); err == nil {
		t.Fatal("fallback without certify=enforce accepted")
	}
	req = quickRequest(t)
	req.Certify = "enforce"
	req.Fallback = "cg"
	if _, err := s.Submit(req); err == nil {
		t.Fatal("unknown fallback accepted")
	}
}

func TestCertifyCacheHitMissCoalesce(t *testing.T) {
	cache := NewPlanCache(CacheConfig{})
	a := mats.Poisson2D(12, 12)
	fp := Fingerprint(a)

	// Miss, then resident hit.
	c1, hit, err := cache.GetOrCertify(a, fp, certify.Options{})
	if err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v, want miss", hit, err)
	}
	c2, hit, err := cache.GetOrCertify(a, fp, certify.Options{})
	if err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v, want hit", hit, err)
	}
	if c1 != c2 {
		t.Fatalf("cache returned a different certificate: %v vs %v", c1, c2)
	}
	st := cache.CertifyStats()
	if st.Checks != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 check / 1 hit / 1 entry", st)
	}

	// Concurrent lookups of a fresh fingerprint coalesce: exactly one
	// certification runs, the rest join it.
	b := mats.S1RMT3M1(150)
	fpB := Fingerprint(b)
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := cache.GetOrCertify(b, fpB, certify.Options{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st = cache.CertifyStats()
	if st.Checks != 2 {
		t.Fatalf("checks = %d after coalesced burst, want 2", st.Checks)
	}
	if st.Hits+st.Coalesced != callers {
		t.Fatalf("hits+coalesced = %d+%d, want %d", st.Hits, st.Coalesced, callers)
	}
}

func TestCertifyCacheEvictionAlongsidePlanCache(t *testing.T) {
	// Entry bound 2 for both caches: certifying three distinct matrices
	// must evict the least recently certified, exactly like the plan LRU.
	cache := NewPlanCache(CacheConfig{MaxEntries: 2})
	ms := []*sparse.CSR{mats.Poisson2D(8, 8), mats.Poisson2D(9, 9), mats.Poisson2D(10, 10)}
	fps := make([]string, len(ms))
	for i, m := range ms {
		fps[i] = Fingerprint(m)
		if _, _, err := cache.GetOrCertify(m, fps[i], certify.Options{}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cache.GetOrBuild(m, keyWithFingerprint(fps[i], core.Options{BlockSize: 16, LocalIters: 2}, core.KernelAuto, nil)); err != nil {
			t.Fatal(err)
		}
	}
	cst := cache.CertifyStats()
	if cst.Entries != 2 || cst.Evictions != 1 {
		t.Fatalf("cert cache after 3 inserts with bound 2: %+v, want 2 entries / 1 eviction", cst)
	}
	pst := cache.Stats()
	if pst.Entries != 2 || pst.Evictions != 1 {
		t.Fatalf("plan cache after 3 inserts with bound 2: %+v, want 2 entries / 1 eviction", pst)
	}
	// The evicted fingerprint re-certifies (a fresh check, not a hit).
	before := cst.Checks
	if _, hit, err := cache.GetOrCertify(ms[0], fps[0], certify.Options{}); err != nil || hit {
		t.Fatalf("evicted entry lookup: hit=%v err=%v, want miss", hit, err)
	}
	if got := cache.CertifyStats().Checks; got != before+1 {
		t.Fatalf("checks = %d, want %d", got, before+1)
	}
}

func TestCertifySubmitCachesAcrossJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Shutdown(context.Background())

	for i := 0; i < 3; i++ {
		j, err := s.Submit(doomedRequest(t, "warn"))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	st := s.Stats().CertCache
	if st.Checks != 1 {
		t.Fatalf("checks = %d after 3 identical submissions, want 1 (cached)", st.Checks)
	}
	if st.Hits != 2 {
		t.Fatalf("hits = %d, want 2", st.Hits)
	}
}

func TestHTTPCertify422CarriesCertificate(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())
	h := NewHandler(s)

	body, _ := json.Marshal(doomedRequest(t, "enforce"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body)))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %s)", rec.Code, rec.Body.String())
	}
	var resp struct {
		Error       string              `json:"error"`
		Certificate certify.Certificate `json:"certificate"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding 422 body: %v", err)
	}
	if resp.Error == "" || resp.Certificate.Verdict != certify.VerdictDiverges {
		t.Fatalf("422 body = %+v, want error + diverges certificate", resp)
	}
	if resp.Certificate.RhoJacobi <= 1 {
		t.Fatalf("certificate evidence rho(B) = %g, want > 1", resp.Certificate.RhoJacobi)
	}

	// /statsz exposes the certify counters.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.CertRejected != 1 || st.CertCache.Checks != 1 {
		t.Fatalf("statsz cert counters = %+v / rejected %d, want 1 check, 1 rejection", st.CertCache, st.CertRejected)
	}

	// /metricsz exposes the service_certify_* series.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	text, _ := io.ReadAll(rec.Body)
	for _, want := range []string{
		"service_certify_checks_total 1",
		"service_certify_rejections_total 1",
		"service_certify_cache_entries 1",
	} {
		if !bytes.Contains(text, []byte(want)) {
			t.Errorf("metricsz missing %q", want)
		}
	}
}
