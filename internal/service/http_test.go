package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/mats"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postSolve(t *testing.T, ts *httptest.Server, req SolveRequest) (submitResponse, *http.Response) {
	t.Helper()
	return postSolveHeaders(t, ts, req, nil)
}

func postSolveHeaders(t *testing.T, ts *httptest.Server, req SolveRequest, headers map[string]string) (submitResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub submitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
	}
	return sub, resp
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: status %d", id, resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitJobState(t *testing.T, ts *httptest.Server, id, want string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := getJob(t, ts, id)
		if v.State == want {
			return v
		}
		if v.State == "failed" && want != "failed" {
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
}

// TestHTTPWarmSolveSkipsSetup is the acceptance check: a warm solve of the
// same matrix/config (ExactLocal, so the plan carries partition + LU
// factors) is observable as a plan-cache hit in /statsz.
func TestHTTPWarmSolveSkipsSetup(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	req := SolveRequest{
		MatrixMarket:   mmPayload(t, mats.Poisson2D(16, 16)),
		BlockSize:      32,
		ExactLocal:     true, // plan includes the subdomain LU factors
		MaxGlobalIters: 400,
		Tolerance:      1e-10,
		Seed:           7, // pinned: Seed 0 derives a fresh stream per run
	}

	sub1, resp := postSolve(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	v1 := waitJobState(t, ts, sub1.JobID, "done")
	if v1.Result == nil || v1.Result.PlanHit {
		t.Fatalf("cold solve result = %+v, want miss", v1.Result)
	}
	st := getStats(t, ts)
	if st.PlanCache.Misses != 1 || st.PlanCache.Hits != 0 {
		t.Fatalf("cold /statsz cache = %+v, want 1 miss / 0 hits", st.PlanCache)
	}

	sub2, _ := postSolve(t, ts, req)
	v2 := waitJobState(t, ts, sub2.JobID, "done")
	if v2.Result == nil || !v2.Result.PlanHit {
		t.Fatalf("warm solve result = %+v, want plan hit", v2.Result)
	}
	st = getStats(t, ts)
	if st.PlanCache.Hits != 1 || st.PlanCache.Misses != 1 {
		t.Fatalf("warm /statsz cache = %+v, want 1 hit / 1 miss", st.PlanCache)
	}
	if st.PlanHitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.PlanHitRate)
	}
	// Setup reuse must not change the answer.
	if v1.Result.Residual != v2.Result.Residual ||
		v1.Result.GlobalIterations != v2.Result.GlobalIterations {
		t.Fatalf("warm result %+v != cold %+v", v2.Result, v1.Result)
	}
}

// TestHTTPDeleteCancelsRunningJob is the acceptance check for DELETE: a
// running job goes to "canceled" within one global iteration.
func TestHTTPDeleteCancelsRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	sub, _ := postSolve(t, ts, SolveRequest{
		MatrixMarket:   mmPayload(t, mats.Poisson2D(40, 40)),
		BlockSize:      64,
		LocalIters:     5,
		MaxGlobalIters: 1 << 30, // only cancellation ends it
	})

	// Wait until it is running and iterating.
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := getJob(t, ts, sub.JobID)
		if v.State == "running" && v.Progress.GlobalIteration >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", v)
		}
		time.Sleep(time.Millisecond)
	}

	httpReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d, want 200", resp.StatusCode)
	}
	atCancel := getJob(t, ts, sub.JobID).Progress.GlobalIteration

	v := waitJobState(t, ts, sub.JobID, "canceled")
	if v.Progress.GlobalIteration > atCancel+1 {
		t.Fatalf("ran %d iterations past DELETE (at %d, final %d)",
			v.Progress.GlobalIteration-atCancel, atCancel, v.Progress.GlobalIteration)
	}
	if v.Error == "" {
		t.Fatal("canceled job should carry an error message")
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	slow := SolveRequest{
		MatrixMarket:   mmPayload(t, mats.Poisson2D(40, 40)),
		BlockSize:      64,
		LocalIters:     5,
		MaxGlobalIters: 1 << 30,
	}
	sub1, _ := postSolve(t, ts, slow)
	waitJobState(t, ts, sub1.JobID, "running")
	sub2, _ := postSolve(t, ts, slow)

	_, resp := postSolve(t, ts, slow)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 should carry Retry-After")
	}
	for _, id := range []string{sub1.JobID, sub2.JobID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
		waitJobState(t, ts, id, "canceled")
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d, want 400", resp.StatusCode)
	}

	_, resp = postSolve(t, ts, SolveRequest{Matrix: "fv1"}) // no block size etc.
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid request status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPJobList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	var ids []string
	for i := 0; i < 3; i++ {
		sub, _ := postSolve(t, ts, SolveRequest{
			MatrixMarket:   mmPayload(t, mats.Poisson2D(16, 16)),
			BlockSize:      32,
			LocalIters:     5,
			MaxGlobalIters: 800,
			Tolerance:      1e-10,
		})
		ids = append(ids, sub.JobID)
	}
	for _, id := range ids {
		waitJobState(t, ts, id, "done")
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list jobListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(list.Jobs))
	}
	for i, v := range list.Jobs {
		if v.ID != ids[i] {
			t.Fatalf("job %d: listed %s, want %s (submission order)", i, v.ID, ids[i])
		}
	}
	// The three identical solves share one plan: 1 miss, 2 hits.
	st := getStats(t, ts)
	if st.PlanCache.Misses != 1 || st.PlanCache.Hits != 2 {
		t.Fatalf("cache stats = %+v, want 2 hits / 1 miss", st.PlanCache)
	}
	if want := fmt.Sprintf("%d", 3); fmt.Sprintf("%d", st.Done) != want {
		t.Fatalf("done = %d, want 3", st.Done)
	}
}
