package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/sparse"
)

// mmPayload renders a matrix as an inline Matrix Market payload.
func mmPayload(t *testing.T, a *sparse.CSR) string {
	t.Helper()
	var sb strings.Builder
	if err := sparse.WriteMatrixMarket(&sb, a); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// quickRequest is a small, fast-converging solve.
func quickRequest(t *testing.T) SolveRequest {
	return SolveRequest{
		MatrixMarket:   mmPayload(t, mats.Poisson2D(16, 16)),
		BlockSize:      32,
		LocalIters:     5,
		MaxGlobalIters: 800,
		Tolerance:      1e-10,
		RecordHistory:  true,
		Seed:           7, // pinned: Seed 0 derives a fresh stream per run
	}
}

// slowRequest runs effectively forever until canceled.
func slowRequest(t *testing.T) SolveRequest {
	return SolveRequest{
		MatrixMarket:   mmPayload(t, mats.Poisson2D(40, 40)),
		BlockSize:      64,
		LocalIters:     5,
		MaxGlobalIters: 1 << 30,
		Tolerance:      0, // no stopping test: only cancellation ends it
	}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish (state %v)", j.ID(), j.State())
	}
}

func TestServiceSolveLifecycle(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(quickRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobDone {
		t.Fatalf("state = %v (%v), want done", st, j.Err())
	}
	res := j.Result()
	if res == nil || !res.Converged {
		t.Fatalf("result = %+v, want converged", res)
	}
	if res.PlanHit {
		t.Fatal("first solve of a matrix cannot be a plan hit")
	}
	if len(res.History) == 0 {
		t.Fatal("requested history missing")
	}
	v := j.Snapshot()
	if v.State != "done" || v.Progress.GlobalIteration == 0 {
		t.Fatalf("snapshot = %+v, want done with progress", v)
	}
}

func TestServiceWarmSolveHitsPlanCache(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	req := quickRequest(t)
	j1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	j2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)

	if j1.Result().PlanHit {
		t.Fatal("cold solve must miss")
	}
	if !j2.Result().PlanHit {
		t.Fatal("warm solve must hit the plan cache")
	}
	st := s.Stats()
	if st.PlanCache.Hits != 1 || st.PlanCache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st.PlanCache)
	}
	// Warm and cold solves of the same deterministic config agree exactly.
	if j1.Result().Residual != j2.Result().Residual ||
		j1.Result().GlobalIterations != j2.Result().GlobalIterations {
		t.Fatalf("warm result %+v differs from cold %+v", j2.Result(), j1.Result())
	}
}

func TestServiceCancelRunningJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(slowRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is demonstrably iterating.
	deadline := time.Now().Add(30 * time.Second)
	for j.Snapshot().Progress.GlobalIteration < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed (state %v, err %v)", j.State(), j.Err())
		}
		time.Sleep(time.Millisecond)
	}

	if err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	atCancel := j.Snapshot().Progress.GlobalIteration
	waitDone(t, j)

	if st := j.State(); st != JobCanceled {
		t.Fatalf("state = %v, want canceled", st)
	}
	if err := j.Err(); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want core.ErrCanceled", err)
	}
	// The engine observes cancellation at the next global-iteration
	// boundary: at most one more iteration may complete after Cancel.
	final := j.Snapshot().Progress.GlobalIteration
	if final > atCancel+1 {
		t.Fatalf("ran %d iterations past cancellation (at %d, final %d)",
			final-atCancel, atCancel, final)
	}
	if s.Stats().Canceled != 1 {
		t.Fatalf("canceled counter = %d, want 1", s.Stats().Canceled)
	}
}

func TestServiceCancelQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	blocker, err := s.Submit(slowRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(quickRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, queued)
	if st := queued.State(); st != JobCanceled {
		t.Fatalf("queued job state = %v, want canceled", st)
	}
	if err := s.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, blocker)
}

func TestServiceQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Shutdown(context.Background())

	// One running + one queued fill the service.
	j1, err := s.Submit(slowRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick up j1 so the queue slot frees.
	deadline := time.Now().Add(10 * time.Second)
	for j1.State() != JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	j2, err := s.Submit(slowRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(slowRequest(t))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	for _, j := range []*Job{j1, j2} {
		j.Cancel(core.ErrCanceled)
		waitDone(t, j)
	}
}

func TestServiceNotConvergedWrapsSentinel(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())

	req := quickRequest(t)
	req.MaxGlobalIters = 2 // far too few for 1e-10
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobFailed {
		t.Fatalf("state = %v, want failed", st)
	}
	if err := j.Err(); !errors.Is(err, core.ErrNotConverged) {
		t.Fatalf("err = %v, want core.ErrNotConverged", err)
	}
	if j.Result() == nil {
		t.Fatal("partial result should accompany non-convergence")
	}
}

func TestServiceJobTimeout(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())

	req := slowRequest(t)
	req.TimeoutSeconds = 0.05
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobCanceled {
		t.Fatalf("state = %v (err %v), want canceled on deadline", st, j.Err())
	}
	if err := j.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in chain", err)
	}
}

func TestServiceValidation(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	cases := []SolveRequest{
		{},                                 // no matrix
		{Matrix: "fv1", MatrixMarket: "x"}, // both sources
		{Matrix: "no-such-matrix", BlockSize: 8, LocalIters: 1, MaxGlobalIters: 1},
		{Matrix: "fv1", LocalIters: 1, MaxGlobalIters: 1}, // no block size
		{Matrix: "fv1", BlockSize: 8, MaxGlobalIters: 1},  // no local iters
		{Matrix: "fv1", BlockSize: 8, LocalIters: 1},      // no budget
		{Matrix: "fv1", BlockSize: 8, LocalIters: 1, MaxGlobalIters: 1, Engine: "cuda"},
		{MatrixMarket: "not a matrix", BlockSize: 8, LocalIters: 1, MaxGlobalIters: 1},
	}
	for i, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestServiceShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(quickRequest(t))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if st := j.State(); st != JobDone {
			t.Fatalf("job %s state = %v after drain, want done", j.ID(), st)
		}
	}
	if _, err := s.Submit(quickRequest(t)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit err = %v, want ErrShuttingDown", err)
	}
}

func TestServiceShutdownDeadlineCancelsInFlight(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	j, err := s.Submit(slowRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("expected deadline error from bounded shutdown")
	}
	if st := j.State(); st != JobCanceled {
		t.Fatalf("in-flight job state = %v, want canceled", st)
	}
}

func TestServiceNamedMatrixCachedFingerprint(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	req := SolveRequest{
		Matrix:         "Trefethen_2000",
		BlockSize:      448,
		LocalIters:     5,
		MaxGlobalIters: 100,
		Tolerance:      1e-10,
	}
	a1, fp1, err := s.resolveMatrix(req)
	if err != nil {
		t.Fatal(err)
	}
	a2, fp2, err := s.resolveMatrix(req)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || fp1 != fp2 {
		t.Fatal("named matrix should be generated and fingerprinted once")
	}
}

// TestServiceKernelAndPrecision exercises the kernel/precision request
// surface end to end: the resolved kernel and the precision are echoed on
// the job result, the per-kernel counter lands in /metricsz, the plan cache
// keys kernels separately, and bad values are rejected at submission.
func TestServiceKernelAndPrecision(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(context.Background())

	// Poisson2D detects as a 5-point stencil, so kernel auto resolves to it.
	req := quickRequest(t)
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	res := j.Result()
	if res == nil || res.Kernel != "stencil" {
		t.Fatalf("auto kernel on Poisson: result %+v, want kernel \"stencil\"", res)
	}
	if res.Precision != core.PrecF64 {
		t.Errorf("default precision echoed as %q, want f64", res.Precision)
	}

	// An explicit CSR request must key a distinct plan and echo "csr".
	req.Kernel = "csr"
	req.Precision = "f32"
	j, err = s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	res = j.Result()
	if res == nil || res.Kernel != "csr" || res.Precision != "f32" {
		t.Fatalf("explicit csr/f32: result kernel=%q precision=%q", res.Kernel, res.Precision)
	}
	if res.PlanHit {
		t.Error("explicit csr reused the auto plan; kernels must key separately")
	}
	if !res.Converged {
		t.Errorf("f32 solve did not converge: residual %g", res.Residual)
	}

	st := s.Stats()
	if st.KernelSolves["stencil"] != 1 || st.KernelSolves["csr"] != 1 {
		t.Errorf("kernel solve counters = %v", st.KernelSolves)
	}
	var sb strings.Builder
	if err := s.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `service_kernel_solves_total{kernel="stencil"} 1`) {
		t.Error("/metricsz missing service_kernel_solves_total{kernel=\"stencil\"} 1")
	}

	// An explicit stencil kernel on a non-stencil matrix fails the job at
	// plan build (the matrix shape is only known then), not at submission.
	bad := quickRequest(t)
	bad.MatrixMarket = mmPayload(t, mats.Trefethen(64))
	bad.BlockSize = 16
	bad.Kernel = "stencil"
	j, err = s.Submit(bad)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != JobFailed {
		t.Errorf("explicit stencil on Trefethen: state %v, want failed", j.State())
	}

	// Unknown kernel / precision names are rejected at submission.
	for _, tweak := range []func(*SolveRequest){
		func(r *SolveRequest) { r.Kernel = "ellpack" },
		func(r *SolveRequest) { r.Precision = "f16" },
	} {
		r := quickRequest(t)
		tweak(&r)
		if _, err := s.Submit(r); err == nil {
			t.Errorf("bad request %+v accepted", r)
		}
	}
}
