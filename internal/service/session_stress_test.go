package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mats"
	"repro/internal/solver"
)

// TestSessionConcurrentSteppersAndDelete hammers one session with 8
// concurrent steppers while another goroutine deletes it mid-stream. The
// invariants under fire:
//
//   - every step either succeeds or fails with the structured gone error —
//     no torn iterates, no panics, no mystery failures;
//   - successful steps are solutions of their own RHS (the warm start they
//     inherited is some earlier step's iterate, whichever won the step
//     lock, but the residual test proves the solve was not torn);
//   - the accounting balances exactly: successes + gone-failures = attempts,
//     the per-session counters match the store counters, nothing in flight
//     at the end.
func TestSessionConcurrentSteppersAndDelete(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4, SessionReapInterval: time.Hour})
	defer s.Shutdown(context.Background())

	a := mats.Poisson2D(16, 16)
	v, err := s.CreateSession(SessionRequest{
		MatrixMarket:   mmPayload(t, a),
		BlockSize:      32,
		LocalIters:     5,
		MaxGlobalIters: 800,
		Tolerance:      1e-10,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}

	const steppers = 8
	const stepsEach = 6
	var ok, goneCnt atomic.Uint64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < steppers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for k := 0; k < stepsEach; k++ {
				rhs := sessionRHS(256, g*stepsEach+k+1)
				res, err := s.StepSession(v.ID, StepRequest{RHS: rhs, IncludeSolution: true}, nil)
				if err != nil {
					var gone *SessionGoneError
					if !errors.As(err, &gone) {
						t.Errorf("stepper %d: unexpected error class: %v", g, err)
						return
					}
					goneCnt.Add(1)
					continue
				}
				ok.Add(1)
				// A successful step must be a genuine solution of ITS rhs:
				// whatever iterate it warm-started from, the result it
				// returned satisfies this step's system.
				if r := solver.Residual(a, rhs, res.X); r > 1e-9 {
					t.Errorf("stepper %d step %d: residual %g — torn iterate", g, k, r)
				}
			}
		}(g)
	}
	// The deleter waits for some steps to land, then closes mid-stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for ok.Load() < steppers && goneCnt.Load() == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		if _, err := s.CloseSession(v.ID); err != nil {
			var gone *SessionGoneError
			if !errors.As(err, &gone) {
				t.Errorf("close: %v", err)
			}
		}
	}()
	close(start)
	wg.Wait()

	total := ok.Load() + goneCnt.Load()
	if total != steppers*stepsEach {
		t.Fatalf("accounting leak: ok %d + gone %d != attempts %d", ok.Load(), goneCnt.Load(), steppers*stepsEach)
	}
	if ok.Load() == 0 {
		t.Fatal("no step succeeded — the deleter won every race, test proves nothing")
	}

	view, err := s.Session(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.State != "closed" {
		t.Fatalf("state = %s, want closed", view.State)
	}
	if view.InflightSteps != 0 {
		t.Fatalf("inflight = %d after all steppers returned", view.InflightSteps)
	}
	if view.Steps != ok.Load() {
		t.Fatalf("session counted %d steps, steppers saw %d successes", view.Steps, ok.Load())
	}
	// Gone-failures never pass admission, so they must not count as step
	// failures; the store totals mirror the session's.
	st := s.Stats().Sessions
	if st.Steps != ok.Load() || st.StepFailures != 0 || st.InflightSteps != 0 {
		t.Fatalf("store stats = %+v, want %d clean steps", st, ok.Load())
	}
}

// TestSessionReaperNeverKillsInflightStep runs a deliberately slow step
// (the progress hook stalls each iteration) through a session whose TTL is
// a fraction of the step's duration, with the reaper sweeping continuously.
// The reaper must skip the in-flight session every sweep, the step must
// finish cleanly, and only afterwards — once genuinely idle — may the
// session expire.
func TestSessionReaperNeverKillsInflightStep(t *testing.T) {
	s := New(Config{
		Workers: 1, QueueDepth: 2,
		SessionTTL:          30 * time.Millisecond,
		SessionReapInterval: 5 * time.Millisecond,
	})
	defer s.Shutdown(context.Background())

	v, err := s.CreateSession(SessionRequest{
		MatrixMarket:   mmPayload(t, mats.Poisson2D(16, 16)),
		BlockSize:      32,
		LocalIters:     5,
		MaxGlobalIters: 800,
		Tolerance:      1e-10,
		Seed:           7,
		TTLSeconds:     0.03,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Each progress sample stalls 2ms: a ~60-iteration solve then runs for
	// >120ms, four TTLs deep, with a reap sweep every 5ms.
	iters := 0
	res, err := s.StepSession(v.ID, StepRequest{RHS: sessionRHS(256, 1)}, func(StepProgress) {
		iters++
		time.Sleep(2 * time.Millisecond)
	})
	if err != nil {
		t.Fatalf("in-flight step was disturbed: %v", err)
	}
	if !res.Converged || iters == 0 {
		t.Fatalf("step result %+v after %d samples", res, iters)
	}

	// Now idle: the sweep must expire it within a few intervals.
	deadline := time.Now().Add(5 * time.Second)
	for {
		view, err := s.Session(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if view.State == "expired" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle session never expired (state %s)", view.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Stats().Sessions.Expired; got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}
	// The finished step's success must have been counted despite the
	// subsequent expiry.
	if got := s.Stats().Sessions.Steps; got != 1 {
		t.Fatalf("steps counter = %d, want 1", got)
	}
}

// TestSessionConcurrentCreateLimit races creates against the MaxSessions
// bound: the number of successes must be exactly the limit.
func TestSessionConcurrentCreateLimit(t *testing.T) {
	const limit = 4
	s := New(Config{Workers: 1, QueueDepth: 2, MaxSessions: limit, SessionReapInterval: time.Hour})
	defer s.Shutdown(context.Background())

	payload := mmPayload(t, mats.Poisson2D(16, 16))
	var ok, rejected atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 2*limit; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.CreateSession(SessionRequest{
				MatrixMarket:   payload,
				BlockSize:      32,
				LocalIters:     5,
				MaxGlobalIters: 800,
				Tolerance:      1e-10,
				Seed:           7,
			})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrTooManySessions):
				rejected.Add(1)
			default:
				t.Errorf("create: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok.Load() != limit || rejected.Load() != limit {
		t.Fatalf("creates: %d ok / %d rejected, want %d/%d", ok.Load(), rejected.Load(), limit, limit)
	}
}
