package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/mats"
	"repro/internal/metrics"
	"repro/internal/multigpu"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/tune"
	"repro/internal/vecmath"
)

// SolveRequest is one solve submission (the POST /v1/solve body). Exactly
// one of Matrix (a generated paper-matrix name, see mats.Names) or
// MatrixMarket (an inline Matrix Market payload) selects the system.
type SolveRequest struct {
	Matrix       string `json:"matrix,omitempty"`
	MatrixMarket string `json:"matrix_market,omitempty"`
	// RHS overrides the right-hand side; default is b = A·1 (the paper's
	// convention, exact solution = ones).
	RHS []float64 `json:"rhs,omitempty"`

	// Tune is "" (off) or "auto": run the per-matrix parameter search and
	// solve with the winning (block size, local iterations, ω). Tunings
	// are cached by matrix fingerprint, so only the first solve of a
	// matrix pays for the probe solves. Explicitly set BlockSize,
	// LocalIters or Omega override the tuned value for that parameter.
	// Incompatible with ExactLocal (the tuner searches Jacobi sweeps).
	Tune string `json:"tune,omitempty"`

	// BlockSize may be 0 only with Tune: "auto" or Method: "multigrid".
	BlockSize      int     `json:"block_size,omitempty"`
	LocalIters     int     `json:"local_iters,omitempty"`
	ExactLocal     bool    `json:"exact_local,omitempty"`
	Omega          float64 `json:"omega,omitempty"`
	MaxGlobalIters int     `json:"max_global_iters"`
	Tolerance      float64 `json:"tolerance,omitempty"`
	// Method selects the solver method: "" or "jacobi" (the paper's damped
	// block-Jacobi update), "richardson2" (second-order Richardson — the
	// same block sweeps plus a momentum term β(x_k − x_{k−1})), or
	// "multigrid" (geometric V-cycles with an auto-tuned asynchronous
	// smoother; solve-only, restricted to the five-point Poisson operator
	// on odd square grids). Beta is richardson2's momentum coefficient in
	// [0, 1); 0 selects the service default 0.3.
	Method string  `json:"method,omitempty"`
	Beta   float64 `json:"beta,omitempty"`
	// Stencil declares the stencil structure of the submitted matrix —
	// offsets and coefficients the caller knows exactly (typically for
	// uploaded Matrix Market operators the detector would otherwise have to
	// rediscover, or boundary-heavy ones it would reject). A declared
	// stencil implies the stencil kernel under kernel "auto" and fails the
	// solve if no row of the matrix matches it.
	Stencil *StencilDecl `json:"stencil,omitempty"`
	// Engine is "simulated" (default) or "goroutine". Incompatible with
	// Devices (a multi-device job runs on the sharded executor).
	Engine string `json:"engine,omitempty"`
	// Kernel selects the sweep-kernel dispatch: "" or "auto" (detect
	// stencil structure and fall back to packed CSR), "csr", "stencil" or
	// "sell". An explicit "stencil" on a matrix without constant-coefficient
	// structure fails the solve at plan build. Kernel dispatch is
	// bit-transparent: every choice produces the identical iterate.
	Kernel string `json:"kernel,omitempty"`
	// Precision is "" or "f64" (exact doubles) or "f32" (float32 iterate
	// storage with float64 accumulation and residual checks).
	Precision string `json:"precision,omitempty"`
	// Devices > 0 routes the job to the live multi-device executor with
	// that many GPUs (bounded by the modeled topology's maximum) and
	// reports the modeled wall time in the result. 0 (default) solves on
	// the single-device engines.
	Devices int `json:"devices,omitempty"`
	// Strategy selects the inter-GPU communication scheme for a Devices
	// job: "amc" (default), "dc" or "dk". Must be empty when Devices is 0.
	Strategy string `json:"strategy,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// TimeoutSeconds bounds the solve's wall time (0: service default).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// IncludeSolution returns the iterate X in the job result.
	IncludeSolution bool `json:"include_solution,omitempty"`
	// RecordHistory returns the per-iteration residual history.
	RecordHistory bool `json:"record_history,omitempty"`
	// Chaos perturbs the solve's schedule (requires Config.EnableChaos).
	// HTTP clients can also set it via the X-Chaos header.
	Chaos *ChaosSpec `json:"chaos,omitempty"`

	// Certify selects the admission-time convergence pre-flight: "" or
	// "off" (skip), "warn" (certify and echo the certificate in the job
	// result), or "enforce" (additionally refuse matrices certified
	// divergent with a structured 422 at submission — before the job ever
	// queues — unless Fallback reroutes them). Certificates are cached by
	// matrix fingerprint, so a warm daemon answers in cache-lookup time.
	Certify string `json:"certify,omitempty"`
	// Fallback is "" or "gmres": with certify=enforce, a divergent-verdict
	// matrix is rerouted to the synchronous GMRES solver instead of being
	// rejected — the job then reports `"fallback": "gmres"` in its result.
	// Requires certify=enforce; incompatible with tune/devices.
	Fallback string `json:"fallback,omitempty"`
}

// StencilDecl is the request-level stencil declaration: parallel offset and
// coefficient arrays with the sparse.StencilSpec contract (strictly
// ascending offsets including 0, nonzero diagonal coefficient).
type StencilDecl struct {
	Offsets []int     `json:"offsets"`
	Coeffs  []float64 `json:"coeffs"`
}

// spec converts the declaration to the sparse package's spec (nil-safe).
func (d *StencilDecl) spec() *sparse.StencilSpec {
	if d == nil {
		return nil
	}
	return &sparse.StencilSpec{Offsets: d.Offsets, Coeffs: d.Coeffs}
}

// defaultBeta is the momentum coefficient of richardson2 requests that
// leave beta unset — the middle of the tuner's probe grid, a conservative
// heavy-ball weight that accelerates the paper matrices without risking
// the β → 1 divergence edge.
const defaultBeta = 0.3

// methodMultigrid is the method name of the V-cycle route, which runs
// outside the core engines (so it is not a core.RuleKind);
// methodIdxMultigrid is its methodSolves slot, after the two rule kinds.
const (
	methodMultigrid    = "multigrid"
	methodIdxMultigrid = 2
)

// methodKind parses the request's solver method. multigrid reports true
// for the V-cycle route; otherwise the rule is the core update rule the
// engines run with.
func (r SolveRequest) methodKind() (rule core.RuleKind, multigrid bool, err error) {
	m := strings.ToLower(strings.TrimSpace(r.Method))
	if m == methodMultigrid {
		return core.RuleJacobi, true, nil
	}
	k, err := core.ParseRule(m)
	if err != nil {
		return 0, false, fmt.Errorf(`service: unknown method %q (want "jacobi", "richardson2" or "multigrid")`, r.Method)
	}
	return k, false, nil
}

// resolvedBeta returns the momentum coefficient the solve runs with: the
// request's beta, or defaultBeta for richardson2 requests that leave it
// unset. Callers must have validated the method first.
func (r SolveRequest) resolvedBeta(rule core.RuleKind) float64 {
	if r.Beta != 0 {
		return r.Beta
	}
	if rule == core.RuleRichardson2 {
		return defaultBeta
	}
	return 0
}

// tuneAuto parses the request's tune mode.
func (r SolveRequest) tuneAuto() (bool, error) {
	switch strings.ToLower(strings.TrimSpace(r.Tune)) {
	case "":
		return false, nil
	case "auto":
		return true, nil
	default:
		return false, fmt.Errorf("service: unknown tune mode %q (want \"auto\" or empty)", r.Tune)
	}
}

// engineKind parses the request's engine name.
func (r SolveRequest) engineKind() (core.EngineKind, error) {
	switch strings.ToLower(strings.TrimSpace(r.Engine)) {
	case "", "simulated":
		return core.EngineSimulated, nil
	case "goroutine":
		return core.EngineGoroutine, nil
	default:
		return 0, fmt.Errorf("service: unknown engine %q (want \"simulated\" or \"goroutine\")", r.Engine)
	}
}

// kernelKind parses the request's sweep-kernel dispatch name.
func (r SolveRequest) kernelKind() (core.KernelKind, error) {
	k, err := core.ParseKernel(strings.ToLower(strings.TrimSpace(r.Kernel)))
	if err != nil {
		return 0, fmt.Errorf("service: %w", err)
	}
	return k, nil
}

// precisionKind parses the request's iterate storage precision, returning
// the normalized name ("" maps to f64).
func (r SolveRequest) precisionKind() (string, error) {
	switch strings.ToLower(strings.TrimSpace(r.Precision)) {
	case "", core.PrecF64:
		return core.PrecF64, nil
	case core.PrecF32:
		return core.PrecF32, nil
	default:
		return "", fmt.Errorf("service: unknown precision %q (want \"f64\" or \"f32\")", r.Precision)
	}
}

// strategyKind parses the request's communication strategy (AMC when
// empty, the paper's default exchange scheme).
func (r SolveRequest) strategyKind() (multigpu.Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(r.Strategy)) {
	case "", "amc":
		return multigpu.AMC, nil
	case "dc":
		return multigpu.DC, nil
	case "dk":
		return multigpu.DK, nil
	default:
		return 0, fmt.Errorf("service: unknown strategy %q (want \"amc\", \"dc\" or \"dk\")", r.Strategy)
	}
}

// Config configures a Service. Zero values select the defaults.
type Config struct {
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 64).
	QueueDepth int
	// Workers is the solver worker-pool size (default 4).
	Workers int
	// DefaultTimeout bounds jobs that set no TimeoutSeconds (0: none).
	DefaultTimeout time.Duration
	// Cache configures the plan cache.
	Cache CacheConfig
	// MaxMatrixRows rejects oversized inline matrices (default 1<<20;
	// negative: unlimited).
	MaxMatrixRows int
	// MaxAttempts is how often a job is run before its failure becomes
	// terminal: divergent or non-converged attempts are retried with
	// capped exponential backoff (default 1 = no retries).
	MaxAttempts int
	// RetryBaseDelay is the backoff before the first retry; attempt n
	// waits RetryBaseDelay << (n-1), capped at RetryMaxDelay. Defaults
	// 100ms and 5s.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// EnableChaos admits requests carrying a ChaosSpec. Off by default:
	// chaos injection is a debugging feature, not for production traffic.
	EnableChaos bool

	// SessionTTL is the idle lifetime of a solve session: a session with no
	// in-flight step and no step activity for this long is reaped (default
	// 5m; negative disables the reaper).
	SessionTTL time.Duration
	// SessionReapInterval is the reaper's scan period (default 1s).
	SessionReapInterval time.Duration
	// MaxSessions bounds concurrently active sessions (default 256).
	MaxSessions int
	// MaxBatchSystems bounds the number of systems one batch request may
	// carry (default 1024).
	MaxBatchSystems int
	// MaxBatchWorkers caps the per-batch cross-system solver parallelism a
	// request may ask for (default 8; requests beyond it are clamped, not
	// rejected).
	MaxBatchWorkers int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.MaxMatrixRows == 0 {
		c.MaxMatrixRows = 1 << 20
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 100 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 5 * time.Second
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.SessionReapInterval <= 0 {
		c.SessionReapInterval = time.Second
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 256
	}
	if c.MaxBatchSystems == 0 {
		c.MaxBatchSystems = 1024
	}
	if c.MaxBatchWorkers == 0 {
		c.MaxBatchWorkers = 8
	}
	return c
}

// retryDelay is the capped exponential backoff before retry n (the
// attempt that just failed was attempt n).
func (c Config) retryDelay(attempt int) time.Duration {
	d := c.RetryBaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.RetryMaxDelay {
			return c.RetryMaxDelay
		}
	}
	if d > c.RetryMaxDelay {
		return c.RetryMaxDelay
	}
	return d
}

// Stats is the /statsz payload: queue, worker and plan-cache counters.
type Stats struct {
	QueueDepth    int        `json:"queue_depth"`
	QueueCapacity int        `json:"queue_capacity"`
	Workers       int        `json:"workers"`
	BusyWorkers   int        `json:"busy_workers"`
	Submitted     uint64     `json:"jobs_submitted"`
	Done          uint64     `json:"jobs_done"`
	Failed        uint64     `json:"jobs_failed"`
	Canceled      uint64     `json:"jobs_canceled"`
	Rejected      uint64     `json:"jobs_rejected"`
	Retries       uint64     `json:"job_retries"`
	PlanCache     CacheStats `json:"plan_cache"`
	PlanHitRate   float64    `json:"plan_hit_rate"`
	TuneCache     TuneStats  `json:"tune_cache"`
	// CertCache is the admission-certificate cache; CertRejected and
	// CertFallbacks count enforce-mode divergent verdicts answered with a
	// 422 and rerouted to GMRES, respectively.
	CertCache     CertifyStats `json:"cert_cache"`
	CertRejected  uint64       `json:"cert_rejected"`
	CertFallbacks uint64       `json:"cert_fallbacks"`
	// DeviceSolves counts multi-device solve attempts per communication
	// strategy (same atomics /metricsz exposes as
	// service_device_solves_total).
	DeviceSolves map[string]uint64 `json:"device_solves"`
	// KernelSolves counts solve attempts per resolved sweep kernel (same
	// atomics /metricsz exposes as service_kernel_solves_total).
	KernelSolves map[string]uint64 `json:"kernel_solves"`
	// MethodSolves counts solve attempts per resolved method — "jacobi",
	// "richardson2" and "multigrid" (same atomics /metricsz exposes as
	// service_method_solves_total).
	MethodSolves map[string]uint64 `json:"method_solves"`
	// Sessions is the streaming solve-session store (see sessions.go).
	Sessions SessionStats `json:"sessions"`
	// Batch is the batched-solve accounting (see batch.go).
	Batch BatchStats `json:"batch"`
}

// Service is the long-running solver: a plan cache, a bounded job queue
// and a registry of every job it accepted.
type Service struct {
	cfg   Config
	cache *PlanCache
	queue *Queue

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for listing
	mats     map[string]*namedMatrix
	closed   bool
	nextID   atomic.Uint64
	submits  atomic.Uint64
	dones    atomic.Uint64
	fails    atomic.Uint64
	cancels  atomic.Uint64
	rejected atomic.Uint64
	retries  atomic.Uint64
	// certRejected / certFallbacks count enforce-mode divergent verdicts
	// refused with a CertificateError and rerouted to GMRES.
	certRejected  atomic.Uint64
	certFallbacks atomic.Uint64
	// sessions is the streaming solve-session store (see sessions.go).
	sessions *sessionStore
	// Batch accounting (see batch.go): accepted batch jobs, systems they
	// carried, and per-system failures inside finished batches.
	batchSubmits     atomic.Uint64
	batchSystems     atomic.Uint64
	batchSystemFails atomic.Uint64
	// deviceSolves counts multi-device solve attempts per communication
	// strategy, indexed by multigpu.Strategy.
	deviceSolves [3]atomic.Uint64
	// kernelSolves counts solve attempts per resolved sweep kernel,
	// indexed by core.KernelKind (the Auto slot stays 0 — attempts are
	// counted under the kernel the plan actually resolved to).
	kernelSolves [4]atomic.Uint64
	// methodSolves counts solve attempts per resolved method: slots 0 and 1
	// are core.RuleJacobi / core.RuleRichardson2 (counted after tuning, so
	// a tuned richardson2 pick lands in its own slot), slot 2 the multigrid
	// route.
	methodSolves [3]atomic.Uint64

	// Observability (see metrics.go): the registry behind GET /metricsz,
	// the solver-level sink attached to every solve, and the modeled
	// device's occupancy gauge.
	reg          *metrics.Registry
	solveMetrics *core.SolveMetrics
	perf         gpusim.PerfModel
	occupancy    *metrics.Gauge
	// wallHist observes finished jobs' wall seconds (attempts and backoff
	// included); RetryAfterSeconds reads its median to price a 429.
	wallHist *metrics.Histogram
}

// namedMatrix caches a generated paper matrix and its fingerprint so
// repeated requests by name skip both generation and hashing.
type namedMatrix struct {
	a  *sparse.CSR
	fp string
}

// New creates a Service and starts its worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		cache: NewPlanCache(cfg.Cache),
		jobs:  make(map[string]*Job),
		mats:  make(map[string]*namedMatrix),
	}
	s.queue = NewQueue(cfg.QueueDepth, cfg.Workers, s.runJob)
	s.sessions = newSessionStore(cfg)
	s.sessions.startReaper()
	s.instrument()
	return s
}

// Cache exposes the plan cache (introspection and tests).
func (s *Service) Cache() *PlanCache { return s.cache }

// Submit validates the request, resolves its matrix and enqueues a job.
// It reports ErrQueueFull without blocking when the queue is at capacity
// and ErrShuttingDown after Shutdown started.
func (s *Service) Submit(req SolveRequest) (*Job, error) {
	if err := s.validate(req); err != nil {
		s.rejected.Add(1)
		return nil, err
	}
	a, fp, err := s.resolveMatrix(req)
	if err != nil {
		s.rejected.Add(1)
		return nil, err
	}
	// The admission pre-flight runs synchronously in Submit so an
	// enforce-mode refusal answers the POST itself (422 with the
	// certificate) instead of surfacing later as a failed job. The
	// certificate — whatever the verdict — rides on the job for the
	// result echo.
	cert, gmres, err := s.admitCertified(req, a, fp)
	if err != nil {
		s.rejected.Add(1)
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, ErrShuttingDown
	}
	id := fmt.Sprintf("job-%06d", s.nextID.Add(1))
	j := newJob(id, req)
	j.cert, j.gmresFallback = cert, gmres
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	if err := s.queue.Submit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, err
	}
	s.submits.Add(1)
	return j, nil
}

func (s *Service) validate(req SolveRequest) error {
	if (req.Matrix == "") == (req.MatrixMarket == "") {
		return errors.New("service: exactly one of matrix or matrix_market must be set")
	}
	tuning, err := req.tuneAuto()
	if err != nil {
		return err
	}
	if tuning && req.ExactLocal {
		return errors.New("service: tune=auto is incompatible with exact_local (the tuner searches Jacobi sweep counts)")
	}
	rule, mgrid, err := req.methodKind()
	if err != nil {
		return err
	}
	if req.Beta < 0 || req.Beta >= 1 {
		return fmt.Errorf("service: beta must be in [0, 1), have %g", req.Beta)
	}
	if req.Beta != 0 && rule != core.RuleRichardson2 {
		return errors.New("service: beta requires method=richardson2 (the momentum term belongs to the second-order rule)")
	}
	if mgrid {
		switch {
		case req.ExactLocal:
			return errors.New("service: method=multigrid is incompatible with exact_local (the smoother runs Jacobi sweeps)")
		case tuning:
			return errors.New("service: method=multigrid auto-tunes its smoother; leave tune unset")
		case req.Engine != "":
			return errors.New("service: method=multigrid selects its own execution (engine must be empty)")
		case req.Kernel != "":
			return errors.New("service: method=multigrid resolves its smoother kernels itself (kernel must be empty)")
		case req.Precision != "":
			return errors.New("service: method=multigrid runs f64 V-cycles (precision must be empty)")
		case req.Devices > 0:
			return errors.New("service: method=multigrid is incompatible with devices")
		case req.Chaos != nil:
			return errors.New("service: method=multigrid does not accept chaos injection")
		case req.Fallback != "":
			return errors.New("service: method=multigrid is incompatible with fallback")
		case req.Stencil != nil:
			return errors.New("service: method=multigrid infers the operator itself (stencil must be empty)")
		}
	}
	if req.Stencil != nil {
		if err := req.Stencil.spec().Validate(); err != nil {
			return fmt.Errorf("service: stencil declaration: %w", err)
		}
		switch strings.ToLower(strings.TrimSpace(req.Kernel)) {
		case "", "auto", "stencil":
		default:
			return fmt.Errorf("service: stencil declaration requires kernel auto or stencil, have %q", req.Kernel)
		}
	}
	if req.BlockSize < 0 || (req.BlockSize == 0 && !tuning && !mgrid) {
		return fmt.Errorf("service: block_size must be positive (or set tune=auto), have %d", req.BlockSize)
	}
	if req.MaxGlobalIters <= 0 {
		return fmt.Errorf("service: max_global_iters must be positive, have %d", req.MaxGlobalIters)
	}
	if req.LocalIters < 0 || (req.LocalIters == 0 && !req.ExactLocal && !tuning && !mgrid) {
		return fmt.Errorf("service: local_iters must be positive (or set exact_local or tune=auto), have %d", req.LocalIters)
	}
	if req.TimeoutSeconds < 0 {
		return fmt.Errorf("service: timeout_seconds must be nonnegative, have %g", req.TimeoutSeconds)
	}
	if _, err := req.engineKind(); err != nil {
		return err
	}
	if _, err := req.kernelKind(); err != nil {
		return err
	}
	if _, err := req.precisionKind(); err != nil {
		return err
	}
	strat, err := req.strategyKind()
	if err != nil {
		return err
	}
	if req.Devices < 0 {
		return fmt.Errorf("service: devices must be nonnegative, have %d", req.Devices)
	}
	if req.Devices == 0 && req.Strategy != "" {
		return errors.New("service: strategy requires devices > 0")
	}
	if req.Devices > 0 {
		if req.Engine != "" {
			return errors.New("service: engine and devices are mutually exclusive (a devices job runs on the sharded executor)")
		}
		if tuning {
			return errors.New("service: tune=auto is incompatible with devices (the tuner searches the single-device engines)")
		}
		// The dimension does not influence which configurations exist, so
		// any n validates the strategy/device-count combination here.
		if _, err := multigpu.CommTime(multigpu.Supermicro(), strat, req.Devices, 1); err != nil {
			return err
		}
	}
	if req.Chaos != nil {
		if !s.cfg.EnableChaos {
			return ErrChaosDisabled
		}
		if _, err := fault.NewChaos(req.Chaos.config(1)); err != nil {
			return err
		}
	}
	mode, err := req.certifyMode()
	if err != nil {
		return err
	}
	gmres, err := req.fallbackGMRES()
	if err != nil {
		return err
	}
	if gmres {
		if mode != certify.ModeEnforce {
			return errors.New("service: fallback requires certify=enforce (the fallback only triggers on an enforced divergent verdict)")
		}
		if tuning {
			return errors.New("service: fallback is incompatible with tune=auto (the tuner probes the asynchronous engines)")
		}
		if req.Devices > 0 {
			return errors.New("service: fallback is incompatible with devices (GMRES runs on the synchronous single-device solver)")
		}
	}
	return nil
}

// resolveMatrix returns the system matrix and its fingerprint. Named
// matrices are generated and fingerprinted once, then served from a
// per-service cache; inline payloads are parsed and hashed per call.
func (s *Service) resolveMatrix(req SolveRequest) (*sparse.CSR, string, error) {
	if req.Matrix != "" {
		s.mu.Lock()
		nm, ok := s.mats[req.Matrix]
		s.mu.Unlock()
		if ok {
			return nm.a, nm.fp, nil
		}
		tm, err := mats.Generate(req.Matrix)
		if err != nil {
			return nil, "", fmt.Errorf("service: %w", err)
		}
		nm = &namedMatrix{a: tm.A, fp: Fingerprint(tm.A)}
		s.mu.Lock()
		if prev, ok := s.mats[req.Matrix]; ok {
			nm = prev // concurrent generation: keep the first
		} else {
			s.mats[req.Matrix] = nm
		}
		s.mu.Unlock()
		return nm.a, nm.fp, nil
	}
	a, err := sparse.ReadMatrixMarket(strings.NewReader(req.MatrixMarket))
	if err != nil {
		return nil, "", fmt.Errorf("service: parsing matrix_market payload: %w", err)
	}
	if s.cfg.MaxMatrixRows > 0 && a.Rows > s.cfg.MaxMatrixRows {
		return nil, "", fmt.Errorf("service: inline matrix has %d rows, limit %d", a.Rows, s.cfg.MaxMatrixRows)
	}
	if a.Rows != a.Cols {
		return nil, "", fmt.Errorf("service: matrix must be square, have %dx%d", a.Rows, a.Cols)
	}
	return a, Fingerprint(a), nil
}

// Job returns a job by ID.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs lists snapshots of every accepted job in submission order.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.Snapshot()
	}
	return views
}

// Cancel cancels a job by ID (see Job.Cancel for the semantics).
func (s *Service) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	j.Cancel(fmt.Errorf("%w: canceled by client", core.ErrCanceled))
	return nil
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	cs := s.cache.Stats()
	return Stats{
		QueueDepth:    s.queue.Depth(),
		QueueCapacity: s.queue.Capacity(),
		Workers:       s.queue.Workers(),
		BusyWorkers:   s.queue.Busy(),
		Submitted:     s.submits.Load(),
		Done:          s.dones.Load(),
		Failed:        s.fails.Load(),
		Canceled:      s.cancels.Load(),
		Rejected:      s.rejected.Load(),
		Retries:       s.retries.Load(),
		PlanCache:     cs,
		PlanHitRate:   cs.HitRate(),
		TuneCache:     s.cache.TuneStats(),
		CertCache:     s.cache.CertifyStats(),
		CertRejected:  s.certRejected.Load(),
		CertFallbacks: s.certFallbacks.Load(),
		DeviceSolves: map[string]uint64{
			multigpu.AMC.String(): s.deviceSolves[multigpu.AMC].Load(),
			multigpu.DC.String():  s.deviceSolves[multigpu.DC].Load(),
			multigpu.DK.String():  s.deviceSolves[multigpu.DK].Load(),
		},
		KernelSolves: map[string]uint64{
			core.KernelCSR.String():     s.kernelSolves[core.KernelCSR].Load(),
			core.KernelStencil.String(): s.kernelSolves[core.KernelStencil].Load(),
			core.KernelSELL.String():    s.kernelSolves[core.KernelSELL].Load(),
		},
		MethodSolves: map[string]uint64{
			core.RuleJacobi.String():      s.methodSolves[core.RuleJacobi].Load(),
			core.RuleRichardson2.String(): s.methodSolves[core.RuleRichardson2].Load(),
			methodMultigrid:               s.methodSolves[methodIdxMultigrid].Load(),
		},
		Sessions: s.sessions.stats(),
		Batch: BatchStats{
			Submitted:      s.batchSubmits.Load(),
			Systems:        s.batchSystems.Load(),
			SystemFailures: s.batchSystemFails.Load(),
		},
	}
}

// BeginDrain stops accepting new jobs without waiting for the queue:
// Submit reports ErrShuttingDown and Draining flips to true (the /readyz
// probe turns 503) while queued and running solves continue. Call it the
// moment shutdown is decided, before the blocking Shutdown, so a gateway
// health-checking readiness stops routing here while the drain runs.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Draining reports whether the service has stopped accepting jobs (via
// BeginDrain or Shutdown). Liveness is unaffected: a draining service
// still answers status, stats and metrics requests.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// RetryAfterSeconds estimates how long a rejected client should wait
// before resubmitting: the current backlog (queued + running jobs) divided
// across the worker pool, priced at the observed median job wall time.
// Before any job finished the estimate falls back to 1s, and the result is
// clamped to [1s, 60s] so the header stays sane under pathological queues.
func (s *Service) RetryAfterSeconds() int {
	perJob := s.wallHist.Quantile(0.5)
	if perJob <= 0 {
		perJob = 1
	}
	backlog := s.queue.Depth() + s.queue.Busy()
	workers := s.queue.Workers()
	if workers < 1 {
		workers = 1
	}
	est := perJob * float64(backlog) / float64(workers)
	switch {
	case est < 1:
		return 1
	case est > 60:
		return 60
	default:
		return int(math.Ceil(est))
	}
}

// Shutdown stops accepting jobs and drains the queue: queued and running
// solves finish normally. If ctx expires first, the remaining jobs are
// canceled (taking effect within one global iteration) and Shutdown
// returns ctx's error once they unwind.
func (s *Service) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	s.sessions.stopReaper()

	drained := make(chan struct{})
	go func() {
		s.queue.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		jobs := make([]*Job, 0, len(s.jobs))
		for _, j := range s.jobs {
			jobs = append(jobs, j)
		}
		s.mu.Unlock()
		for _, j := range jobs {
			if !j.State().Terminal() {
				j.Cancel(fmt.Errorf("%w: service shutdown", core.ErrCanceled))
			}
		}
		<-drained
		return ctx.Err()
	}
}

// runJob executes one dequeued job on a worker. The job's deadline spans
// every attempt: divergent or non-converged attempts are retried with
// capped exponential backoff up to Config.MaxAttempts, and the attempt
// count is part of the job's status.
func (s *Service) runJob(j *Job) {
	req := j.req

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSeconds > 0 {
		timeout = time.Duration(req.TimeoutSeconds * float64(time.Second))
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	if !j.start(cancel) {
		// Canceled while queued.
		s.cancels.Add(1)
		return
	}
	started := time.Now()

	var result *JobResult
	var err error
	attempt := 1
	for ; ; attempt++ {
		j.setAttempt(attempt)
		result, err = s.runAttempt(ctx, j, attempt)
		if err == nil || attempt == s.cfg.MaxAttempts || !retryable(err) {
			break
		}
		s.retries.Add(1)
		if !sleepCtx(ctx, s.cfg.retryDelay(attempt)) {
			err = fmt.Errorf("%w: %v while backing off after attempt %d: %v",
				core.ErrCanceled, ctx.Err(), attempt, err)
			break
		}
	}
	if err != nil && attempt > 1 {
		err = fmt.Errorf("service: giving up after %d attempts: %w", attempt, err)
	}
	if result != nil {
		result.Attempts = attempt
		result.WallTime = time.Since(started).Seconds()
	}
	s.wallHist.Observe(time.Since(started).Seconds())
	s.finishJob(j, result, err)
}

// retryable reports whether a failed attempt is worth repeating: the
// asynchronous iteration failing to contract is schedule-dependent, so a
// rerun (with fresh chaos perturbations) may converge. Bad requests,
// cancellations and plan errors are not retried.
func retryable(err error) bool {
	return errors.Is(err, core.ErrDiverged) || errors.Is(err, core.ErrNotConverged)
}

// sleepCtx sleeps d unless ctx expires first; it reports whether the full
// backoff elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// runAttempt performs one solve attempt: resolve the matrix, get or
// build the plan (the cache hit is what a warm daemon buys), then
// iterate with the job's context threaded into the engine.
func (s *Service) runAttempt(ctx context.Context, j *Job, attempt int) (*JobResult, error) {
	if j.batch != nil {
		return s.runBatchAttempt(ctx, j)
	}
	req := j.req

	a, fp, err := s.resolveMatrix(req)
	if err != nil {
		return nil, err
	}
	engine, err := req.engineKind()
	if err != nil {
		return nil, err
	}
	kernel, err := req.kernelKind()
	if err != nil {
		return nil, err
	}
	precision, err := req.precisionKind()
	if err != nil {
		return nil, err
	}

	rule, mgrid, err := req.methodKind()
	if err != nil {
		return nil, err
	}

	b := req.RHS
	if b == nil {
		b = make([]float64, a.Rows)
		a.MulVec(b, vecmath.Ones(a.Cols))
	} else if len(b) != a.Rows {
		return nil, fmt.Errorf("service: rhs length %d does not match dimension %d", len(b), a.Rows)
	}

	if j.gmresFallback {
		return s.runGMRESFallback(j, a, fp, b)
	}
	if mgrid {
		return s.runMultigridAttempt(ctx, j, a, fp, b)
	}

	opt := core.Options{
		BlockSize:      req.BlockSize,
		LocalIters:     req.LocalIters,
		ExactLocal:     req.ExactLocal,
		Omega:          req.Omega,
		Method:         rule,
		Beta:           req.resolvedBeta(rule),
		MaxGlobalIters: req.MaxGlobalIters,
		Tolerance:      req.Tolerance,
		RecordHistory:  req.RecordHistory,
		Engine:         engine,
		Precision:      precision,
		Seed:           req.Seed,
		Ctx:            ctx,
		Metrics:        s.solveMetrics,
	}
	if req.Chaos != nil {
		// Each attempt gets a shifted chaos seed so retries explore a
		// different perturbation of the schedule.
		c, err := fault.NewChaos(req.Chaos.config(attempt))
		if err != nil {
			return nil, err
		}
		opt.Chaos = &core.ChaosHooks{Delay: c.Delay, Reorder: c.Reorder, StaleRead: c.StaleRead}
	}

	var tuned *TunedParams
	if tuning, _ := req.tuneAuto(); tuning {
		// The search is seeded by the cache config, not the request, so
		// every request of a matrix resolves to the same cached tuning.
		tr, tuneHit, err := s.cache.GetOrTune(a, fp, b, tune.Config{Seed: s.cache.cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("service: auto-tune: %w", err)
		}
		if opt.BlockSize == 0 {
			opt.BlockSize = tr.BlockSize
		}
		if opt.LocalIters == 0 {
			opt.LocalIters = tr.LocalIters
		}
		if opt.Omega == 0 {
			opt.Omega = tr.Omega
		}
		if req.Method == "" && req.Beta == 0 {
			// The method stage's pick applies only when the request left the
			// rule entirely to the tuner.
			opt.Method, opt.Beta = tr.Method, tr.Beta
		}
		tuned = &TunedParams{
			BlockSize:       opt.BlockSize,
			LocalIters:      opt.LocalIters,
			Omega:           opt.Omega,
			Method:          opt.Method.String(),
			Beta:            opt.Beta,
			SecondsPerDigit: tr.SecondsPerDigit,
			CacheHit:        tuneHit,
		}
	}

	plan, hit, err := s.cache.GetOrBuild(a, keyWithFingerprint(fp, opt, kernel, req.Stencil.spec()))
	if err != nil {
		return nil, err
	}
	s.kernelSolves[plan.Prepared.Kernel()].Add(1)
	s.methodSolves[opt.Method].Add(1)

	nb := plan.Prepared.NumBlocks()
	s.perf.SetOccupancy(s.occupancy, nb)
	j.setProgress(Progress{NumBlocks: nb, PlanHit: hit})
	scratch := make([]float64, a.Rows)
	opt.AfterIteration = func(iter int, x core.VectorAccess) {
		for i := 0; i < x.Len(); i++ {
			scratch[i] = x.Get(i)
		}
		j.setProgress(Progress{
			GlobalIteration: iter,
			Residual:        solver.Residual(a, b, scratch),
			NumBlocks:       nb,
			PlanHit:         hit,
		})
	}

	var res core.Result
	var modeled float64
	if req.Devices > 0 {
		strat, serr := req.strategyKind()
		if serr != nil {
			return nil, serr
		}
		s.deviceSolves[strat].Add(1)
		var mres multigpu.Result
		mres, err = multigpu.SolveWithPlan(plan.Prepared, b, opt,
			s.perf, multigpu.Supermicro(), strat, req.Devices)
		res, modeled = mres.Result, mres.ModeledSeconds
	} else {
		res, err = core.SolveWithPlan(plan.Prepared, b, opt)
	}
	result := &JobResult{
		Converged:        res.Converged,
		GlobalIterations: res.GlobalIterations,
		Residual:         res.Residual,
		NumBlocks:        res.NumBlocks,
		PlanHit:          hit,
		Fingerprint:      fp,
		Devices:          req.Devices,
		ModeledSeconds:   modeled,
		Tuned:            tuned,
		Kernel:           plan.Prepared.Kernel().String(),
		Precision:        precision,
		Method:           opt.Method.String(),
		Beta:             opt.Beta,
	}
	if req.Devices > 0 {
		strat, _ := req.strategyKind()
		result.Strategy = strat.String()
	}
	if req.RecordHistory {
		result.History = res.History
	}
	if req.IncludeSolution {
		result.X = res.X
	}
	if plan.HasReport {
		result.Analysis = plan.Report.String()
	}
	if j.cert != nil {
		result.Certificate = j.cert
		if j.cert.PredictedIters > 0 {
			result.PredictedVsActual = float64(res.GlobalIterations) / float64(j.cert.PredictedIters)
		}
	}
	if err == nil && req.Tolerance > 0 && !res.Converged {
		err = fmt.Errorf("service: %w after %d global iterations (residual %.3e, tolerance %.3e)",
			core.ErrNotConverged, res.GlobalIterations, res.Residual, req.Tolerance)
	}
	return result, err
}

// runGMRESFallback executes the synchronous GMRES reroute of an
// enforce-mode divergent verdict: restarted GMRES(30) with the Jacobi
// preconditioner, the same iteration budget and tolerance the relaxation
// would have used. The certificate that triggered the reroute is echoed
// on the result.
func (s *Service) runGMRESFallback(j *Job, a *sparse.CSR, fp string, b []float64) (*JobResult, error) {
	req := j.req
	prec, err := solver.NewJacobiPreconditioner(a)
	if err != nil {
		return nil, fmt.Errorf("service: gmres fallback: %w", err)
	}
	res, err := solver.GMRES(a, b, gmresFallbackRestart, prec, solver.Options{
		MaxIterations: req.MaxGlobalIters,
		Tolerance:     req.Tolerance,
		RecordHistory: req.RecordHistory,
	})
	result := &JobResult{
		Converged:        res.Converged,
		GlobalIterations: res.Iterations,
		Residual:         res.Residual,
		Fingerprint:      fp,
		Certificate:      j.cert,
		Fallback:         "gmres",
	}
	if req.RecordHistory {
		result.History = res.History
	}
	if req.IncludeSolution {
		result.X = res.X
	}
	if err == nil && req.Tolerance > 0 && !res.Converged {
		err = fmt.Errorf("service: %w after %d GMRES iterations (residual %.3e, tolerance %.3e)",
			core.ErrNotConverged, res.Iterations, res.Residual, req.Tolerance)
	}
	return result, err
}

// gmresFallbackRestart is the Krylov restart length of the fallback
// solver — the paper's baseline GMRES(30) configuration.
const gmresFallbackRestart = 30

// finishJob records the terminal state and bumps the outcome counters.
func (s *Service) finishJob(j *Job, result *JobResult, err error) {
	canceled := err != nil && errors.Is(err, core.ErrCanceled)
	j.finish(result, err, canceled)
	switch {
	case canceled:
		s.cancels.Add(1)
	case err != nil:
		s.fails.Add(1)
	default:
		s.dones.Add(1)
	}
}
