package service

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
)

// ErrChaosDisabled is reported when a request carries a chaos spec but
// the service was not started with chaos injection enabled. The HTTP
// layer maps it to 403 Forbidden.
var ErrChaosDisabled = errors.New("service: chaos injection disabled (start the daemon with -chaos)")

// ChaosSpec asks the service to perturb the solve's schedule (delays,
// reorderings, forced-stale reads) — a debugging aid for reproducing the
// paper's claim that convergence survives adversarial scheduling. It maps
// onto fault.ChaosConfig; see there for the semantics. Requires the
// service's EnableChaos gate.
type ChaosSpec struct {
	DelayProb      float64 `json:"delay_prob,omitempty"`
	MaxDelayMillis float64 `json:"max_delay_ms,omitempty"`
	ReorderProb    float64 `json:"reorder_prob,omitempty"`
	StaleProb      float64 `json:"stale_prob,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
}

// config derives the injector config for one attempt. Each retry shifts
// the seed so the perturbations differ — otherwise a deterministic
// engine would fail every retry the same way.
func (cs *ChaosSpec) config(attempt int) fault.ChaosConfig {
	return fault.ChaosConfig{
		DelayProb:   cs.DelayProb,
		MaxDelay:    time.Duration(cs.MaxDelayMillis * float64(time.Millisecond)),
		ReorderProb: cs.ReorderProb,
		StaleProb:   cs.StaleProb,
		Seed:        cs.Seed + int64(attempt) - 1,
	}
}

// ParseChaosHeader parses the X-Chaos debug header:
//
//	X-Chaos: delay=0.2,stale=0.5,reorder=0.1,seed=7,maxdelayms=2
//
// Keys are optional and may appear in any order; delay/stale/reorder are
// probabilities in [0,1], maxdelayms a millisecond bound, seed an
// integer.
func ParseChaosHeader(v string) (*ChaosSpec, error) {
	spec := &ChaosSpec{}
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, raw, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("service: X-Chaos entry %q is not key=value", part)
		}
		raw = strings.TrimSpace(raw)
		var err error
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "delay":
			spec.DelayProb, err = strconv.ParseFloat(raw, 64)
		case "stale":
			spec.StaleProb, err = strconv.ParseFloat(raw, 64)
		case "reorder":
			spec.ReorderProb, err = strconv.ParseFloat(raw, 64)
		case "maxdelayms":
			spec.MaxDelayMillis, err = strconv.ParseFloat(raw, 64)
		case "seed":
			spec.Seed, err = strconv.ParseInt(raw, 10, 64)
		default:
			return nil, fmt.Errorf("service: unknown X-Chaos key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("service: X-Chaos %s: %w", k, err)
		}
	}
	// Reject out-of-range values here so the submit fails with 400, not
	// at run time.
	if _, err := fault.NewChaos(spec.config(1)); err != nil {
		return nil, err
	}
	return spec, nil
}
