package service

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mats"
)

func TestRetryDelayCapped(t *testing.T) {
	cfg := Config{RetryBaseDelay: 100 * time.Millisecond, RetryMaxDelay: 500 * time.Millisecond}.withDefaults()
	want := []time.Duration{
		100 * time.Millisecond, // after attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		500 * time.Millisecond, // capped
		500 * time.Millisecond,
	}
	for i, w := range want {
		if d := cfg.retryDelay(i + 1); d != w {
			t.Errorf("retryDelay(%d) = %v, want %v", i+1, d, w)
		}
	}
}

// A job that cannot meet its tolerance is retried MaxAttempts times and
// then fails with ErrNotConverged and the attempt count in its status.
func TestJobRetriesThenSurfacesNotConverged(t *testing.T) {
	s := New(Config{
		Workers: 1, QueueDepth: 4,
		MaxAttempts:    3,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  4 * time.Millisecond,
	})
	defer s.Shutdown(context.Background())

	req := quickRequest(t)
	req.MaxGlobalIters = 3 // far too few for 1e-10
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobFailed {
		t.Fatalf("state = %v, want failed", st)
	}
	if !errors.Is(j.Err(), core.ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", j.Err())
	}
	if !strings.Contains(j.Err().Error(), "after 3 attempts") {
		t.Fatalf("error does not carry the attempt count: %v", j.Err())
	}
	v := j.Snapshot()
	if v.Attempts != 3 {
		t.Fatalf("snapshot attempts = %d, want 3", v.Attempts)
	}
	if v.Result == nil || v.Result.Attempts != 3 {
		t.Fatalf("result = %+v, want attempts 3", v.Result)
	}
}

// A successful job reports one attempt and no retry delay.
func TestJobSucceedsFirstAttempt(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, MaxAttempts: 5, RetryBaseDelay: time.Minute})
	defer s.Shutdown(context.Background())
	j, err := s.Submit(quickRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobDone {
		t.Fatalf("state = %v (%v), want done", st, j.Err())
	}
	if v := j.Snapshot(); v.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", v.Attempts)
	}
}

// Bad requests are not retried: the error is not in the retryable class.
func TestBadRHSNotRetried(t *testing.T) {
	s := New(Config{
		Workers: 1, QueueDepth: 4,
		MaxAttempts: 4, RetryBaseDelay: time.Minute, // a retry would hang the test
	})
	defer s.Shutdown(context.Background())
	req := quickRequest(t)
	req.RHS = []float64{1, 2, 3} // wrong length
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobFailed {
		t.Fatalf("state = %v, want failed", st)
	}
	if v := j.Snapshot(); v.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry for bad input)", v.Attempts)
	}
}

func TestChaosRequiresEnable(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())
	req := quickRequest(t)
	req.Chaos = &ChaosSpec{StaleProb: 0.5}
	if _, err := s.Submit(req); !errors.Is(err, ErrChaosDisabled) {
		t.Fatalf("err = %v, want ErrChaosDisabled", err)
	}
}

// A chaos-perturbed job still converges (the paper's robustness claim)
// and runs under the configured injector.
func TestChaosJobConverges(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, EnableChaos: true, MaxAttempts: 3,
		RetryBaseDelay: time.Millisecond})
	defer s.Shutdown(context.Background())
	req := quickRequest(t)
	req.Chaos = &ChaosSpec{StaleProb: 0.5, ReorderProb: 0.5, Seed: 11}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobDone {
		t.Fatalf("state = %v (%v), want done", st, j.Err())
	}
	if !j.Result().Converged {
		t.Fatalf("result = %+v, want converged", j.Result())
	}
}

func TestParseChaosHeader(t *testing.T) {
	spec, err := ParseChaosHeader("delay=0.2, stale=0.5,reorder=0.1,seed=7,maxdelayms=2")
	if err != nil {
		t.Fatal(err)
	}
	want := ChaosSpec{DelayProb: 0.2, StaleProb: 0.5, ReorderProb: 0.1, Seed: 7, MaxDelayMillis: 2}
	if *spec != want {
		t.Fatalf("spec = %+v, want %+v", *spec, want)
	}
	for _, bad := range []string{
		"delay",          // not key=value
		"frobnicate=1",   // unknown key
		"stale=lots",     // not a float
		"seed=1.5",       // not an int
		"delay=1.5",      // probability out of range
		"maxdelayms=-3",  // negative delay
		"reorder=-0.001", // negative probability
	} {
		if _, err := ParseChaosHeader(bad); err == nil {
			t.Errorf("ParseChaosHeader(%q) accepted", bad)
		}
	}
}

// The acceptance scenario over HTTP: an X-Chaos job on a chaos-enabled
// daemon is retried with backoff and either converges or surfaces
// ErrNotConverged with the attempt count in the job status.
func TestHTTPChaosJobRetriedWithAttemptCount(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4, EnableChaos: true,
		MaxAttempts: 2, RetryBaseDelay: time.Millisecond, RetryMaxDelay: 2 * time.Millisecond,
	})
	req := SolveRequest{
		MatrixMarket:   mmPayload(t, mats.Poisson2D(16, 16)),
		BlockSize:      32,
		LocalIters:     5,
		MaxGlobalIters: 4, // hopeless against 1e-10: forces the retry path
		Tolerance:      1e-10,
		Seed:           7,
	}
	sub, resp := postSolveHeaders(t, ts, req, map[string]string{
		"X-Chaos": "stale=0.5,reorder=0.5,seed=3",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	v := waitJobState(t, ts, sub.JobID, "failed")
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", v.Attempts)
	}
	if !strings.Contains(v.Error, "did not converge") || !strings.Contains(v.Error, "after 2 attempts") {
		t.Fatalf("error = %q, want non-convergence with attempt count", v.Error)
	}
}

// Without the daemon-side gate the header is rejected with 403.
func TestHTTPChaosHeaderForbiddenWhenDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	req := quickRequest(t)
	_, resp := postSolveHeaders(t, ts, req, map[string]string{"X-Chaos": "stale=0.5"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}

	// A malformed header is a 400, not a 403.
	_, resp = postSolveHeaders(t, ts, req, map[string]string{"X-Chaos": "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
