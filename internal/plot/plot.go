package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Name string
	X, Y []float64
}

// Validate checks that X and Y have equal nonzero length.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has len(X)=%d, len(Y)=%d", s.Name, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("plot: series %q is empty", s.Name)
	}
	return nil
}

// markers assigns one rune per series, cycling if necessary.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Config controls chart rendering.
type Config struct {
	Title  string
	Width  int  // plot area columns (default 72)
	Height int  // plot area rows (default 20)
	LogY   bool // log₁₀ y-axis
	XLabel string
	YLabel string
}

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 72
	}
	if c.Height <= 0 {
		c.Height = 20
	}
	return c
}

// Lines renders the series as an ASCII line chart.
func Lines(w io.Writer, cfg Config, series ...Series) error {
	cfg = cfg.withDefaults()
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if cfg.LogY {
				if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
					continue // unplottable on a log axis
				}
				y = math.Log10(y)
			} else if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	if math.IsInf(xmin, 1) || math.IsInf(ymin, 1) {
		return fmt.Errorf("plot: no finite data points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			y := s.Y[i]
			if cfg.LogY {
				if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
					continue
				}
				y = math.Log10(y)
			} else if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(cfg.Width-1))
			row := int((ymax - y) / (ymax - ymin) * float64(cfg.Height-1))
			if col >= 0 && col < cfg.Width && row >= 0 && row < cfg.Height {
				grid[row][col] = mk
			}
		}
	}

	if cfg.Title != "" {
		fmt.Fprintf(w, "%s\n", cfg.Title)
	}
	yTop, yBot := ymax, ymin
	fmtY := func(v float64) string {
		if cfg.LogY {
			return fmt.Sprintf("%9.2e", math.Pow(10, v))
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for r := 0; r < cfg.Height; r++ {
		label := strings.Repeat(" ", 9)
		switch r {
		case 0:
			label = fmtY(yTop)
		case cfg.Height - 1:
			label = fmtY(yBot)
		case (cfg.Height - 1) / 2:
			label = fmtY((yTop + yBot) / 2)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%s +%s+\n", strings.Repeat(" ", 9), strings.Repeat("-", cfg.Width))
	fmt.Fprintf(w, "%s  %-10.4g%s%10.4g\n", strings.Repeat(" ", 9), xmin,
		strings.Repeat(" ", maxInt(1, cfg.Width-20)), xmax)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(w, "%s  x: %s   y: %s\n", strings.Repeat(" ", 9), cfg.XLabel, cfg.YLabel)
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "%s  legend: %s\n", strings.Repeat(" ", 9), strings.Join(legend, " | "))
	return nil
}

// Bar is one bar of a grouped bar chart.
type Bar struct {
	Group string // e.g. "AMC"
	Label string // e.g. "2 GPUs"
	Value float64
	// NA marks an unsupported configuration (rendered as "n/a").
	NA bool
}

// Bars renders a horizontal grouped bar chart (the harness's Figure 11).
func Bars(w io.Writer, title string, width int, bars []Bar) error {
	if width <= 0 {
		width = 50
	}
	if len(bars) == 0 {
		return fmt.Errorf("plot: no bars")
	}
	max := 0.0
	labelW := 0
	for _, b := range bars {
		if !b.NA && b.Value > max {
			max = b.Value
		}
		if l := len(b.Group) + len(b.Label) + 1; l > labelW {
			labelW = l
		}
	}
	if max == 0 {
		max = 1
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	prevGroup := ""
	for _, b := range bars {
		if b.Group != prevGroup && prevGroup != "" {
			fmt.Fprintln(w)
		}
		prevGroup = b.Group
		name := fmt.Sprintf("%s %s", b.Group, b.Label)
		if b.NA {
			fmt.Fprintf(w, "%-*s | n/a\n", labelW+1, name)
			continue
		}
		n := int(b.Value / max * float64(width))
		fmt.Fprintf(w, "%-*s |%s %.4g\n", labelW+1, name, strings.Repeat("=", n), b.Value)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
