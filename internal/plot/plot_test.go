package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Name: "decay", X: []float64{0, 1, 2, 3}, Y: []float64{8, 4, 2, 1}}
	err := Lines(&buf, Config{Title: "t", Width: 20, Height: 5, XLabel: "iter", YLabel: "res"}, s)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "t\n") || !strings.Contains(out, "legend: * decay") {
		t.Errorf("missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no data markers rendered")
	}
}

func TestLinesLogY(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Name: "r", X: []float64{0, 1, 2}, Y: []float64{1, 1e-5, 1e-10}}
	if err := Lines(&buf, Config{LogY: true, Width: 30, Height: 8}, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "e-10") {
		t.Errorf("log axis labels missing:\n%s", buf.String())
	}
}

func TestLinesSkipsNonFinite(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Name: "r", X: []float64{0, 1, 2}, Y: []float64{1, math.Inf(1), math.NaN()}}
	if err := Lines(&buf, Config{Width: 10, Height: 4}, s); err != nil {
		t.Fatal(err)
	}
	// On a log axis zero/negative values are skipped too.
	s2 := Series{Name: "r", X: []float64{0, 1}, Y: []float64{1, -5}}
	buf.Reset()
	if err := Lines(&buf, Config{LogY: true, Width: 10, Height: 4}, s2); err != nil {
		t.Fatal(err)
	}
}

func TestLinesErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Lines(&buf, Config{}); err == nil {
		t.Error("expected error for no series")
	}
	if err := Lines(&buf, Config{}, Series{Name: "bad", X: []float64{1}, Y: nil}); err == nil {
		t.Error("expected length mismatch error")
	}
	if err := Lines(&buf, Config{}, Series{Name: "empty"}); err == nil {
		t.Error("expected empty series error")
	}
	allNaN := Series{Name: "nan", X: []float64{1}, Y: []float64{math.NaN()}}
	if err := Lines(&buf, Config{}, allNaN); err == nil {
		t.Error("expected no-finite-data error")
	}
}

func TestLinesMultiSeriesMarkers(t *testing.T) {
	var buf bytes.Buffer
	a := Series{Name: "a", X: []float64{0, 1}, Y: []float64{1, 2}}
	b := Series{Name: "b", X: []float64{0, 1}, Y: []float64{2, 1}}
	if err := Lines(&buf, Config{Width: 20, Height: 6}, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Errorf("legend markers wrong:\n%s", out)
	}
}

func TestLinesConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Name: "flat", X: []float64{0, 1}, Y: []float64{3, 3}}
	if err := Lines(&buf, Config{Width: 10, Height: 4}, s); err != nil {
		t.Fatal(err)
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	bars := []Bar{
		{Group: "AMC", Label: "1 GPU", Value: 2.0},
		{Group: "AMC", Label: "2 GPUs", Value: 1.0},
		{Group: "DC", Label: "3 GPUs", NA: true},
	}
	if err := Bars(&buf, "fig11", 40, bars); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "n/a") {
		t.Error("NA bar not rendered")
	}
	if !strings.Contains(out, "AMC 1 GPU") || !strings.Contains(out, "====") {
		t.Errorf("bars malformed:\n%s", out)
	}
	// The 2.0 bar must be about twice as long as the 1.0 bar.
	lines := strings.Split(out, "\n")
	c1 := strings.Count(lines[1], "=")
	c2 := strings.Count(lines[2], "=")
	if c1 < 2*c2-2 || c1 > 2*c2+2 {
		t.Errorf("bar lengths %d vs %d not proportional", c1, c2)
	}
}

func TestBarsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Bars(&buf, "", 10, nil); err == nil {
		t.Error("expected error for no bars")
	}
	// All-NA set must not divide by zero.
	if err := Bars(&buf, "", 10, []Bar{{Group: "g", Label: "l", NA: true}}); err != nil {
		t.Fatal(err)
	}
}
