// Package plot renders simple ASCII charts for the experiment harness: the
// library's terminal stand-in for the paper's gnuplot figures. It supports
// multi-series line charts with linear or log₁₀ y-axes and grouped bar
// charts (for Figure 11).
package plot
