// Package dense provides the small dense linear-algebra substrate the
// block methods need: column-major matrices, LU factorization with partial
// pivoting, and triangular solves. It exists for the k→∞ limit of the
// paper's local-iteration trade-off (§4.3): instead of k Jacobi sweeps, a
// block can solve its subdomain system *exactly* — the classical block
// Jacobi / additive Schwarz method, implemented in core.SolveExactLocal.
package dense
