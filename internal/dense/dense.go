package dense

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major n×m matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // Data[i*Cols+j]
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("dense: NewMatrix(%d,%d): dimensions must be positive", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MulVec computes y = M·x.
func (m *Matrix) MulVec(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("dense: MulVec dims: M is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// ErrSingular is returned when factorization meets a (numerically) zero
// pivot.
var ErrSingular = errors.New("dense: matrix is singular to working precision")

// LU is an LU factorization with partial pivoting: P·A = L·U, stored
// packed (unit lower triangle below the diagonal, U on and above).
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int // permutation parity (for Det)
}

// Factor computes the pivoted LU factorization of the square matrix a.
// The input is not modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: Factor requires square matrix, have %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{n: n, lu: append([]float64(nil), a.Data...), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivoting: largest magnitude in the column at/below diag.
		p := col
		max := math.Abs(f.lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(f.lu[r*n+col]); v > max {
				max, p = v, r
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("%w (pivot column %d)", ErrSingular, col)
		}
		if p != col {
			ri, rp := f.lu[col*n:(col+1)*n], f.lu[p*n:(p+1)*n]
			for j := range ri {
				ri[j], rp[j] = rp[j], ri[j]
			}
			f.piv[col], f.piv[p] = f.piv[p], f.piv[col]
			f.sign = -f.sign
		}
		pivot := f.lu[col*n+col]
		for r := col + 1; r < n; r++ {
			m := f.lu[r*n+col] / pivot
			f.lu[r*n+col] = m
			if m == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				f.lu[r*n+j] -= m * f.lu[col*n+j]
			}
		}
	}
	return f, nil
}

// Solve computes x with A·x = b into dst (dst and b may alias).
func (f *LU) Solve(dst, b []float64) error {
	n := f.n
	if len(dst) != n || len(b) != n {
		return fmt.Errorf("dense: Solve dims: n=%d, len(dst)=%d, len(b)=%d", n, len(dst), len(b))
	}
	// Apply permutation: y = P·b.
	y := make([]float64, n)
	for i, p := range f.piv {
		y[i] = b[p]
	}
	// Forward substitution with unit L.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu[i*n+j] * y[j]
		}
		y[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu[i*n+j] * y[j]
		}
		y[i] = (y[i] - s) / f.lu[i*n+i]
	}
	copy(dst, y)
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}
