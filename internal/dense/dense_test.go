package dense

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.At(0, 0) != 0 {
		t.Fatal("At/Set broken")
	}
	y := make([]float64, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(0, 2, 3)
	m.MulVec(y, []float64{1, 1, 1})
	if y[0] != 6 || y[1] != 7 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestFactorSolveIdentity(t *testing.T) {
	n := 5
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	f, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3, 4, 5}
	x := make([]float64, n)
	if err := f.Solve(x, b); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("identity solve wrong: %v", x)
		}
	}
	if math.Abs(f.Det()-1) > 1e-15 {
		t.Errorf("det = %g, want 1", f.Det())
	}
}

func TestFactorRequiresPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	f, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	if err := f.Solve(x, []float64{3, 5}); err != nil {
		t.Fatal(err)
	}
	// A swaps components: x = (5, 3).
	if math.Abs(x[0]-5) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Errorf("solve = %v, want [5 3]", x)
	}
	if math.Abs(f.Det()+1) > 1e-15 {
		t.Errorf("det = %g, want -1 (one swap)", f.Det())
	}
}

func TestFactorSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := Factor(m); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
	rect := &Matrix{Rows: 2, Cols: 3, Data: make([]float64, 6)}
	if _, err := Factor(rect); err == nil {
		t.Error("expected error for rectangular input")
	}
}

func TestSolveDims(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	f, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Solve(make([]float64, 3), []float64{1, 2}); err == nil {
		t.Error("expected dims error")
	}
}

// Property: for random well-conditioned systems, Solve inverts MulVec.
func TestPropertyFactorSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
			m.Set(i, i, m.At(i, i)+float64(n)) // diagonal boost: well-conditioned
		}
		lu, err := Factor(m)
		if err != nil {
			return false
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		m.MulVec(b, xTrue)
		x := make([]float64, n)
		if err := lu.Solve(x, b); err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8*(1+math.Abs(xTrue[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: determinant is multiplicative against a known triangular case.
func TestDetTriangular(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 0, 2)
	m.Set(1, 1, 3)
	m.Set(2, 2, 4)
	m.Set(0, 1, 5)
	m.Set(0, 2, 6)
	f, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-24) > 1e-12 {
		t.Errorf("det = %g, want 24", f.Det())
	}
}
