// Package gpusim models the GPU the paper runs on: an NVIDIA Fermi C2070
// (14 multiprocessors × 32 CUDA cores, 6 GB, PCIe ×16) programmed with
// CUDA 4.0 streams.
//
// Two aspects of the hardware matter for the paper's results and are
// modeled explicitly:
//
//  1. Execution semantics — thread blocks are dispatched to multiprocessors
//     in an order the programmer cannot control, and blocks in different
//     streams overlap. The Scheduler type produces seeded chaotic block
//     orders and overlap patterns that drive the block-asynchronous
//     engines in package blockasync.
//
//  2. Timing — kernel launch overhead, PCIe transfers, and throughput.
//     The PerfModel type predicts per-iteration wall times. Its constants
//     are calibrated against the paper's measured data (Tables 4 and 5,
//     Figure 8) rather than derived from first principles, because the
//     paper's CUDA implementation — not peak hardware capability — is the
//     behaviour being reproduced. See DESIGN.md §2.
package gpusim
