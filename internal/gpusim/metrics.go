package gpusim

import "repro/internal/metrics"

// Occupancy returns the fraction of multiprocessor slots doing useful work
// when numBlocks thread blocks execute in waves of NumSM: the last wave is
// partially filled whenever numBlocks is not a multiple of NumSM, which is
// the launch-configuration inefficiency GPU profilers report as (achieved)
// occupancy. The result is in (0, 1].
func (d DeviceParams) Occupancy(numBlocks int) float64 {
	if numBlocks <= 0 {
		panic("gpusim: Occupancy needs at least one block")
	}
	waves := (numBlocks + d.NumSM - 1) / d.NumSM
	return float64(numBlocks) / float64(waves*d.NumSM)
}

// Instrument registers the model's device and launch-overhead gauges in
// reg, all labeled with the device name: the static hardware parameters,
// the per-kernel fixed launch costs the calibration attributes to kernel
// launch + synchronization, and the marginal cost of an extra local sweep.
// It returns the device occupancy gauge, initially 0; callers that know
// their launch configuration update it via SetOccupancy (or Set directly)
// as solves run.
func (m PerfModel) Instrument(reg *metrics.Registry) *metrics.Gauge {
	dev := m.Device.Name
	set := func(name, help string, v float64) {
		reg.Gauge(name, help, "device", dev).Set(v)
	}
	set("gpusim_device_multiprocessors", "Multiprocessors executing blocks concurrently.", float64(m.Device.NumSM))
	set("gpusim_device_clock_ghz", "Multiprocessor clock, GHz.", m.Device.ClockGHz)
	set("gpusim_device_memory_gb", "Device memory capacity, GB.", m.Device.MemoryGB)
	set("gpusim_device_pcie_gbs", "Effective host-link bandwidth, GB/s.", m.Device.PCIeGBs)
	set("gpusim_device_setup_seconds", "One-time context creation + allocation + upload cost, seconds.", m.Device.SetupTime)
	setKernel := func(kernel string, v float64) {
		reg.Gauge("gpusim_launch_overhead_seconds",
			"Fixed per-iteration kernel launch + synchronization cost, seconds.",
			"device", dev, "kernel", kernel).Set(v)
	}
	setKernel("jacobi", m.JacobiLaunch)
	setKernel("async", m.AsyncLaunch)
	setKernel("gauss_seidel", m.CPULaunch)
	set("gpusim_local_sweep_marginal_fraction",
		"Marginal cost of one extra local sweep as a fraction of the async base iteration time.",
		m.LocalSweep)
	return reg.Gauge("gpusim_device_occupancy",
		"Achieved occupancy of the most recent launch configuration (0 until a solve runs).",
		"device", dev)
}

// SetOccupancy records the achieved occupancy of a launch with numBlocks
// thread blocks into g (a gauge obtained from Instrument).
func (m PerfModel) SetOccupancy(g *metrics.Gauge, numBlocks int) {
	g.Set(m.Device.Occupancy(numBlocks))
}
