package gpusim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestOccupancy(t *testing.T) {
	d := FermiC2070() // 14 SMs
	cases := []struct {
		blocks int
		want   float64
	}{
		{14, 1},         // one full wave
		{28, 1},         // two full waves
		{1, 1.0 / 14},   // one block on one SM
		{15, 15.0 / 28}, // second wave nearly empty
		{21, 21.0 / 28},
	}
	for _, tc := range cases {
		if got := d.Occupancy(tc.blocks); math.Abs(got-tc.want) > 1e-15 {
			t.Errorf("Occupancy(%d) = %g, want %g", tc.blocks, got, tc.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Occupancy(0) should panic")
		}
	}()
	d.Occupancy(0)
}

func TestInstrument(t *testing.T) {
	m := CalibratedModel()
	reg := metrics.NewRegistry()
	occ := m.Instrument(reg)
	if v := occ.Value(); v != 0 {
		t.Errorf("occupancy gauge starts at %g, want 0", v)
	}
	m.SetOccupancy(occ, 28)
	if v := occ.Value(); v != 1 {
		t.Errorf("occupancy after full-wave launch = %g, want 1", v)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`gpusim_device_multiprocessors{device="Tesla C2070 (Fermi)"} 14`,
		`gpusim_launch_overhead_seconds{device="Tesla C2070 (Fermi)",kernel="async"} 0.0006701`,
		`gpusim_launch_overhead_seconds{device="Tesla C2070 (Fermi)",kernel="jacobi"}`,
		`gpusim_device_occupancy{device="Tesla C2070 (Fermi)"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Instrumenting the same model twice must be idempotent, not panic.
	m.Instrument(reg)
}
