package gpusim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestFermiC2070Params(t *testing.T) {
	d := FermiC2070()
	if d.NumSM != 14 {
		t.Errorf("NumSM = %d, want 14 (paper §3.2)", d.NumSM)
	}
	if d.ClockGHz != 1.15 {
		t.Errorf("clock = %g, want 1.15 GHz", d.ClockGHz)
	}
}

func TestTransferTime(t *testing.T) {
	d := FermiC2070()
	small := d.TransferTime(0)
	if small <= 0 {
		t.Error("zero-byte transfer must still pay latency")
	}
	big := d.TransferTime(6_000_000_000)
	if big < 1 {
		t.Errorf("6 GB over ~6 GB/s should take ≥1 s, got %g", big)
	}
	if d.TransferTime(1000) <= small {
		t.Error("transfer time must grow with size")
	}
}

func TestTransferTimePanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FermiC2070().TransferTime(-1)
}

func TestSchedulerOrderIsPermutation(t *testing.T) {
	s := NewScheduler(42, 0.8)
	for trial := 0; trial < 20; trial++ {
		order := s.Order(37)
		sorted := append([]int(nil), order...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				t.Fatalf("trial %d: order is not a permutation: %v", trial, order)
			}
		}
	}
}

func TestSchedulerDeterministicPerSeed(t *testing.T) {
	a := NewScheduler(7, 0.8)
	b := NewScheduler(7, 0.8)
	for trial := 0; trial < 5; trial++ {
		oa, ob := a.Order(20), b.Order(20)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatal("same seed must give identical schedules")
			}
		}
	}
	c := NewScheduler(8, 0.8)
	diff := false
	oa, oc := a.Order(20), c.Order(20)
	for i := range oa {
		if oa[i] != oc[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should give different schedules")
	}
}

func TestSchedulerRecurrence(t *testing.T) {
	// recurrence=1 repeats the base order verbatim.
	s := NewScheduler(3, 1.0)
	first := s.Order(30)
	second := s.Order(30)
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("recurrence=1 must repeat the base pattern")
		}
	}
	// recurrence=0 orders should differ (w.h.p. for 30 blocks).
	s0 := NewScheduler(3, 0.0)
	a, b := s0.Order(30), s0.Order(30)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("recurrence=0 produced identical consecutive orders")
	}
}

func TestSchedulerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad recurrence")
		}
	}()
	NewScheduler(1, 1.5)
}

func TestStaleMask(t *testing.T) {
	s := NewScheduler(11, 0.8)
	all := s.StaleMask(100, 1)
	for _, v := range all {
		if !v {
			t.Fatal("pStale=1 must mark every block")
		}
	}
	none := s.StaleMask(100, 0)
	for _, v := range none {
		if v {
			t.Fatal("pStale=0 must mark no block")
		}
	}
}

func TestCalibrationMatchesPaperTable5(t *testing.T) {
	// The model must land near the paper's measured per-iteration times
	// (Table 5). Tolerance 15% (the relative-least-squares fit achieves
	// ≤10% on every entry): the paper's own runs vary and the brief
	// requires shape, not absolutes.
	m := CalibratedModel()
	cases := []struct {
		name      string
		n, nnz    int
		gs, j, a5 float64
	}{
		{"Chem97ZtZ", 2541, 7361, 0.008448, 0.002051, 0.001742},
		{"fv1", 9604, 85264, 0.120191, 0.019449, 0.012964},
		{"fv3", 9801, 87025, 0.125577, 0.021009, 0.014737},
		{"s1rmt3m1", 5489, 262411, 0.039530, 0.006442, 0.004967},
		{"Trefethen_2000", 2000, 41906, 0.007603, 0.001494, 0.001305},
	}
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}
	for _, c := range cases {
		if got := m.GaussSeidelIterTime(c.n, c.nnz); !within(got, c.gs, 0.15) {
			t.Errorf("%s GS: model %g, paper %g", c.name, got, c.gs)
		}
		if got := m.JacobiIterTime(c.n, c.nnz); !within(got, c.j, 0.15) {
			t.Errorf("%s Jacobi: model %g, paper %g", c.name, got, c.j)
		}
		if got := m.AsyncIterTime(c.n, c.nnz, 5); !within(got, c.a5, 0.15) {
			t.Errorf("%s async-(5): model %g, paper %g", c.name, got, c.a5)
		}
	}
}

func TestModelOrderingMatchesPaper(t *testing.T) {
	// Qualitative shape requirements from Table 5 / §4.3:
	// async-(5) < Jacobi < Gauss-Seidel for every system, with GS/async
	// ratio between ≈5 and ≈10.
	m := CalibratedModel()
	for _, c := range [][2]int{{2541, 7361}, {9604, 85264}, {5489, 262411}, {2000, 41906}} {
		n, nnz := c[0], c[1]
		gs := m.GaussSeidelIterTime(n, nnz)
		j := m.JacobiIterTime(n, nnz)
		a5 := m.AsyncIterTime(n, nnz, 5)
		if !(a5 < j && j < gs) {
			t.Errorf("n=%d: ordering violated: async5=%g jacobi=%g gs=%g", n, a5, j, gs)
		}
		if r := gs / a5; r < 3 || r > 15 {
			t.Errorf("n=%d: GS/async5 ratio %g outside the paper's 5–10 band (±)", n, r)
		}
	}
}

func TestLocalSweepOverheadMatchesTable4(t *testing.T) {
	// Paper Table 4: async-(2) costs <5% more than async-(1); async-(9)
	// costs <35% more.
	m := CalibratedModel()
	n, nnz := 9801, 87025 // fv3
	a1 := m.AsyncIterTime(n, nnz, 1)
	if r := m.AsyncIterTime(n, nnz, 2)/a1 - 1; r <= 0 || r >= 0.05 {
		t.Errorf("async-(2) overhead %.1f%%, paper says <5%%", 100*r)
	}
	if r := m.AsyncIterTime(n, nnz, 9)/a1 - 1; r <= 0.2 || r >= 0.35 {
		t.Errorf("async-(9) overhead %.1f%%, paper says <35%% (and ≈31%%)", 100*r)
	}
}

func TestAverageIterTimeAmortizes(t *testing.T) {
	// Figure 8 shape: the per-iteration average falls with the total
	// iteration count as the setup cost amortizes.
	m := CalibratedModel()
	n, nnz := 9801, 87025
	it := m.JacobiIterTime(n, nnz)
	prev := math.Inf(1)
	for _, total := range []int{10, 50, 100, 200} {
		avg := m.AverageIterTime(it, n, nnz, total)
		if avg >= prev {
			t.Errorf("average time did not decrease at total=%d", total)
		}
		if avg <= it {
			t.Errorf("average must stay above the steady-state iteration time")
		}
		prev = avg
	}
}

// Property: async iteration time is monotone increasing in k and always
// cheaper than k independent Jacobi iterations (the point of the method).
func TestPropertyAsyncCheaperThanKJacobi(t *testing.T) {
	m := CalibratedModel()
	f := func(n16 uint16, nnzPerRow, k8 uint8) bool {
		n := int(n16%5000) + 10
		nnz := n * (int(nnzPerRow%40) + 1)
		k := int(k8%9) + 1
		tA := m.AsyncIterTime(n, nnz, k)
		if k > 1 && tA <= m.AsyncIterTime(n, nnz, k-1) {
			return false
		}
		return tA < float64(k)*m.JacobiIterTime(n, nnz)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
