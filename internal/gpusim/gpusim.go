package gpusim

import (
	"fmt"
	"math/rand"
)

// DeviceParams describes the simulated GPU.
type DeviceParams struct {
	Name      string
	NumSM     int     // number of multiprocessors executing blocks concurrently
	ClockGHz  float64 // SM clock
	MemoryGB  float64 // device memory capacity
	PCIeGBs   float64 // host link bandwidth, GB/s (effective)
	SetupTime float64 // one-time context creation + allocation + matrix upload, seconds
}

// FermiC2070 returns the paper's GPU (§3.2): 14 SMs × 32 cores @ 1.15 GHz,
// 6 GB, PCIe ×16 (effective ~6 GB/s). SetupTime reflects the fixed offset
// visible in the paper's Table 4 totals (≈0.31 s).
func FermiC2070() DeviceParams {
	return DeviceParams{
		Name:      "Tesla C2070 (Fermi)",
		NumSM:     14,
		ClockGHz:  1.15,
		MemoryGB:  6,
		PCIeGBs:   6,
		SetupTime: 0.31,
	}
}

// TransferTime returns the PCIe transfer time in seconds for the given
// number of bytes (one direction).
func (d DeviceParams) TransferTime(bytes int) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("gpusim: negative transfer size %d", bytes))
	}
	const latency = 10e-6 // per-transfer latency, seconds
	return latency + float64(bytes)/(d.PCIeGBs*1e9)
}

// Scheduler produces the chaotic thread-block execution orders of a GPU.
// The paper observes (§4.1) that the GPU-internal scheduling follows a
// recurring pattern that amplifies convergence variation across runs; the
// scheduler reproduces this with a seeded pseudo-random permutation stream
// in which a base pattern recurs with small perturbations.
type Scheduler struct {
	rng *rand.Rand
	// recurrence controls how strongly the base pattern recurs: 0 gives a
	// fresh uniform permutation every call, 1 repeats the base order
	// verbatim.
	recurrence float64
	base       []int
}

// NewScheduler creates a scheduler with the given seed and recurrence in
// [0,1]. Recurrence 0.8 approximates the paper's observed behaviour.
func NewScheduler(seed int64, recurrence float64) *Scheduler {
	if recurrence < 0 || recurrence > 1 {
		panic(fmt.Sprintf("gpusim: recurrence %g outside [0,1]", recurrence))
	}
	return &Scheduler{rng: rand.New(rand.NewSource(seed)), recurrence: recurrence}
}

// Order returns the execution order of numBlocks thread blocks for one
// kernel sweep. The slice is freshly allocated; every block index appears
// exactly once (the Chazan–Miranker fairness condition: every component is
// updated in every global iteration).
func (s *Scheduler) Order(numBlocks int) []int {
	return s.OrderInto(nil, numBlocks)
}

// OrderInto is Order writing into dst when it has sufficient capacity (a
// fresh slice is allocated otherwise), so steady-state solve loops can
// reuse one buffer across global iterations. The pseudo-random draw
// sequence is exactly that of Order: for a given scheduler state the two
// are interchangeable.
func (s *Scheduler) OrderInto(dst []int, numBlocks int) []int {
	if numBlocks <= 0 {
		panic(fmt.Sprintf("gpusim: Order(%d): need at least one block", numBlocks))
	}
	if len(s.base) != numBlocks {
		s.base = s.rng.Perm(numBlocks)
	}
	if cap(dst) < numBlocks {
		dst = make([]int, numBlocks)
	}
	order := dst[:numBlocks]
	copy(order, s.base)
	// Perturb: each position swaps with a random partner with probability
	// (1 − recurrence), preserving the permutation property.
	for i := range order {
		if s.rng.Float64() >= s.recurrence {
			j := s.rng.Intn(numBlocks)
			order[i], order[j] = order[j], order[i]
		}
	}
	return order
}

// StaleMask returns, for one kernel sweep, which blocks observe a stale
// snapshot of the iterate (they were dispatched before overlapping writers
// finished). Probability pStale per block, seeded.
func (s *Scheduler) StaleMask(numBlocks int, pStale float64) []bool {
	return s.StaleMaskInto(nil, numBlocks, pStale)
}

// StaleMaskInto is StaleMask writing into dst when it has sufficient
// capacity, with the same draw sequence; see OrderInto.
func (s *Scheduler) StaleMaskInto(dst []bool, numBlocks int, pStale float64) []bool {
	if pStale < 0 || pStale > 1 {
		panic(fmt.Sprintf("gpusim: pStale %g outside [0,1]", pStale))
	}
	if cap(dst) < numBlocks {
		dst = make([]bool, numBlocks)
	}
	mask := dst[:numBlocks]
	for i := range mask {
		mask[i] = s.rng.Float64() < pStale
	}
	return mask
}

// PerfModel predicts wall-clock times of the paper's kernels on the
// modeled hardware. All returned times are in seconds.
//
// Calibration: for the GPU methods the paper's measured per-iteration
// times (Table 5) are explained almost perfectly (±7%) by a fixed
// per-iteration cost (kernel launches, synchronization, per-iteration
// host↔device vector transfers) plus an n² term; for the sequential CPU
// Gauss-Seidel an nnz term contributes as well:
//
//	t_gpu = Launch + Quad·n² + PerNNZ·nnz   (PerNNZ: physical bandwidth term)
//	t_cpu = CPULaunch + CPUQuad·n² + CPUPerNNZ·nnz
//
// The constants are fitted to Table 5 by relative least squares, plus the
// relation measured in Table 4: each extra local sweep of async-(k) adds
// ≈3.9% of the async base time (the "local iterations almost come for
// free" effect — the subdomain stays in the SM cache).
type PerfModel struct {
	Device DeviceParams

	// Fitted constants; see the type comment. Exported so ablation benches
	// can explore alternative hardware.
	JacobiLaunch float64 // fixed per-iteration cost of synchronous Jacobi
	JacobiQuad   float64 // s per row²
	AsyncLaunch  float64 // fixed per-global-iteration cost of async-(k); smaller: no global sync
	AsyncQuad    float64 // s per row²
	PerNNZ       float64 // physical memory-traffic term, s per nonzero
	LocalSweep   float64 // marginal cost per extra local sweep, fraction of async base
	// CGOverhead is the CG per-iteration cost relative to Jacobi. The
	// paper's CG is the highly tuned MAGMA kernel (§4.4) while its Jacobi
	// is a plain implementation, so the ratio is below one; calibrated so
	// Figure 9's relative positions hold (CG ≈ one-third faster than
	// async-(5) on fv1).
	CGOverhead float64

	CPULaunch float64 // fixed per-sweep cost of the host Gauss-Seidel
	CPUQuad   float64 // s per row² (sequential Gauss-Seidel on the host)
	CPUPerNNZ float64 // s per nonzero
}

// CalibratedModel returns the performance model fitted to the paper's
// hardware (§3.2: 2× Xeon E5540 + Fermi C2070).
func CalibratedModel() PerfModel {
	return PerfModel{
		Device:       FermiC2070(),
		JacobiLaunch: 6.820e-4,
		JacobiQuad:   2.0493e-10,
		AsyncLaunch:  6.701e-4,
		AsyncQuad:    1.2160e-10,
		PerNNZ:       8.6e-11, // 12 B/nnz over ~140 GB/s device bandwidth
		LocalSweep:   0.0388,
		CGOverhead:   0.55,
		CPULaunch:    1.231e-3,
		CPUQuad:      1.2287e-9,
		CPUPerNNZ:    1.6954e-8,
	}
}

// JacobiIterTime returns the modeled time of one synchronous Jacobi
// iteration on the GPU (kernel + global synchronization + per-iteration
// vector transfers, as the paper times it).
func (m PerfModel) JacobiIterTime(n, nnz int) float64 {
	checkDims(n, nnz)
	return m.JacobiLaunch + m.JacobiQuad*float64(n)*float64(n) + m.PerNNZ*float64(nnz)
}

// AsyncIterTime returns the modeled time of one *global* iteration of
// async-(k): all blocks swept once, each performing k local Jacobi sweeps.
func (m PerfModel) AsyncIterTime(n, nnz, k int) float64 {
	checkDims(n, nnz)
	if k <= 0 {
		panic(fmt.Sprintf("gpusim: AsyncIterTime local sweeps k=%d must be positive", k))
	}
	base := m.AsyncLaunch + m.AsyncQuad*float64(n)*float64(n) + m.PerNNZ*float64(nnz)
	return base * (1 + m.LocalSweep*float64(k-1))
}

// AsyncIterTimeKernel prices a global async-(k) iteration executed by a
// sweep kernel whose per-nonzero memory traffic differs from the packed-CSR
// baseline by the factor traffic (1 = CSR). Only the bandwidth-bound PerNNZ
// term scales — launch overhead and the O(n²) dense-fringe term are kernel-
// independent — so traffic < 1 (a matrix-free stencil that loads no column
// indices, a float32 iterate) buys proportionally less than its raw byte
// ratio on small systems, matching the roofline behaviour of Figure 8.
func (m PerfModel) AsyncIterTimeKernel(n, nnz, k int, traffic float64) float64 {
	checkDims(n, nnz)
	if k <= 0 {
		panic(fmt.Sprintf("gpusim: AsyncIterTimeKernel local sweeps k=%d must be positive", k))
	}
	if traffic <= 0 {
		panic(fmt.Sprintf("gpusim: AsyncIterTimeKernel traffic factor %g must be positive", traffic))
	}
	base := m.AsyncLaunch + m.AsyncQuad*float64(n)*float64(n) + m.PerNNZ*float64(nnz)*traffic
	return base * (1 + m.LocalSweep*float64(k-1))
}

// CGIterTime returns the modeled time of one GPU CG iteration (one SpMV
// plus reduction synchronizations).
func (m PerfModel) CGIterTime(n, nnz int) float64 {
	checkDims(n, nnz)
	return m.CGOverhead * m.JacobiIterTime(n, nnz)
}

// GaussSeidelIterTime returns the modeled time of one sequential
// Gauss-Seidel sweep on the host CPU (the paper's CPU baseline).
func (m PerfModel) GaussSeidelIterTime(n, nnz int) float64 {
	checkDims(n, nnz)
	return m.CPULaunch + m.CPUQuad*float64(n)*float64(n) + m.CPUPerNNZ*float64(nnz)
}

// GPUSetupTime returns the one-time cost before the first GPU iteration:
// context creation, allocation, and the matrix/vector upload.
func (m PerfModel) GPUSetupTime(n, nnz int) float64 {
	checkDims(n, nnz)
	bytes := nnz*12 + n*8*3 // CSR payload (8B value + 4B index) + x, b, r
	return m.Device.SetupTime + m.Device.TransferTime(bytes)
}

// AverageIterTime returns the average per-iteration time when running
// total iterations, amortizing the setup cost — the quantity plotted in
// the paper's Figure 8 and averaged in Table 5.
func (m PerfModel) AverageIterTime(iterTime float64, n, nnz, total int) float64 {
	if total <= 0 {
		panic(fmt.Sprintf("gpusim: AverageIterTime total=%d must be positive", total))
	}
	return m.GPUSetupTime(n, nnz)/float64(total) + iterTime
}

func checkDims(n, nnz int) {
	if n <= 0 || nnz < 0 {
		panic(fmt.Sprintf("gpusim: invalid problem dims n=%d nnz=%d", n, nnz))
	}
}
