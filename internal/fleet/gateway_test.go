package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/certify"
	"repro/internal/mats"
	"repro/internal/service"
	"repro/internal/sparse"
)

// fleetNode is a real solver service behind a kill switch: while down,
// every request answers 503 without reaching the service (the HTTP shape
// of a crashed-but-port-bound or draining node).
type fleetNode struct {
	name string
	svc  *service.Service
	ts   *httptest.Server
	down *switchableNode // reuse the atomic flag only
}

func newFleetNode(t *testing.T, name string, cfg service.Config) *fleetNode {
	t.Helper()
	n := &fleetNode{name: name, svc: service.New(cfg), down: &switchableNode{}}
	inner := service.NewHandler(n.svc)
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.down.down.Load() {
			http.Error(w, "node down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		n.ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = n.svc.Shutdown(ctx)
	})
	return n
}

// startFleet boots n real solver nodes behind a gateway. The probe loop is
// NOT started; tests drive ProbeOnce (or Start it themselves) for
// determinism.
func startFleet(t *testing.T, n int, gcfg GatewayConfig, ncfg service.Config) (*Gateway, *httptest.Server, []*fleetNode) {
	t.Helper()
	g := NewGateway(gcfg)
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		nodes[i] = newFleetNode(t, fmt.Sprintf("n%d", i), ncfg)
		if err := g.Membership().Register(nodes[i].name, nodes[i].ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts, nodes
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func solveEntry(e CorpusEntry) service.SolveRequest {
	return service.SolveRequest{
		MatrixMarket:   e.MatrixMarket,
		BlockSize:      16,
		LocalIters:     2,
		MaxGlobalIters: 500,
		Tolerance:      1e-8,
	}
}

func waitFleetJob(t *testing.T, gwURL, id string) service.JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(gwURL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v service.JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case "done":
			return v
		case "failed":
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGatewayRoutesByFingerprint is the tentpole contract: every corpus
// entry lands on exactly the node the ring names for its fingerprint, the
// submit response exposes both, and the node-side result echoes the same
// fingerprint — placement is verifiable end to end.
func TestGatewayRoutesByFingerprint(t *testing.T) {
	g, ts, _ := startFleet(t, 3, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 16})
	corpus := BuildCorpus(12, 24, 48)

	for _, e := range corpus {
		wantNode, ok := g.Membership().Ring().Owner(e.Fingerprint)
		if !ok {
			t.Fatal("ring empty")
		}
		resp, body := postJSON(t, ts.URL+"/v1/solve", solveEntry(e))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status %d: %s", e.Name, resp.StatusCode, body)
		}
		var sub submitView
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		if sub.Node != wantNode {
			t.Errorf("%s routed to %s, ring owner is %s", e.Name, sub.Node, wantNode)
		}
		if sub.Fingerprint != e.Fingerprint {
			t.Errorf("%s routed by fingerprint %s, corpus says %s", e.Name, sub.Fingerprint, e.Fingerprint)
		}
		v := waitFleetJob(t, ts.URL, sub.JobID)
		if v.Result == nil || v.Result.Fingerprint != e.Fingerprint {
			t.Errorf("%s: node-side result fingerprint does not match routing key", e.Name)
		}
	}
}

// TestGatewayAffinity: repeated solves of one matrix always hit the same
// node, and from the second solve on they are plan-cache hits there.
func TestGatewayAffinity(t *testing.T) {
	_, ts, _ := startFleet(t, 3, GatewayConfig{}, service.Config{Workers: 1, QueueDepth: 16})
	e := BuildCorpus(1, 32, 32)[0]

	first := ""
	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/solve", solveEntry(e))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
		var sub submitView
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		if first == "" {
			first = sub.Node
		} else if sub.Node != first {
			t.Fatalf("solve %d routed to %s, first went to %s", i, sub.Node, first)
		}
		v := waitFleetJob(t, ts.URL, sub.JobID)
		if i > 0 && !v.Result.PlanHit {
			t.Errorf("solve %d on %s missed the plan cache despite affinity", i, sub.Node)
		}
	}
}

// stubFleet registers canned handlers as nodes, for deterministic
// failure-path tests.
func stubFleet(t *testing.T, gcfg GatewayConfig, handlers map[string]http.HandlerFunc) (*Gateway, *httptest.Server, map[string]string) {
	t.Helper()
	g := NewGateway(gcfg)
	names := map[string]string{}
	for name, h := range handlers {
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		if err := g.Membership().Register(name, ts.URL); err != nil {
			t.Fatal(err)
		}
		names[name] = ts.URL
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts, names
}

func accept202(node string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"job_id":"job-000001","state":"queued","status_url":"/v1/jobs/job-000001"}`)
		_ = node
	}
}

// TestGatewayNode429NeverFailsOver: a saturated owner's 429 is propagated
// upstream with its Retry-After; the gateway must NOT spill the key to the
// healthy successor.
func TestGatewayNode429NeverFailsOver(t *testing.T) {
	e := BuildCorpus(1, 32, 32)[0]
	var otherHits atomic.Int32
	handlers := map[string]http.HandlerFunc{}
	// Two stubs; we don't know the owner until the ring exists, so both
	// start as accepters and we swap the owner to a 429er after.
	var mu sync.Mutex
	behavior := map[string]http.HandlerFunc{}
	for _, name := range []string{"a", "b"} {
		name := name
		handlers[name] = func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			h := behavior[name]
			mu.Unlock()
			h(w, r)
		}
	}
	g, ts, _ := stubFleet(t, GatewayConfig{FailoverTries: 2}, handlers)
	owner, _ := g.Membership().Ring().Owner(e.Fingerprint)
	other := "a"
	if owner == "a" {
		other = "b"
	}
	mu.Lock()
	behavior[owner] = func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}
	behavior[other] = func(w http.ResponseWriter, r *http.Request) {
		otherHits.Add(1)
		accept202(other)(w, r)
	}
	mu.Unlock()

	resp, body := postJSON(t, ts.URL+"/v1/solve", solveEntry(e))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want the node's 7", ra)
	}
	if n := otherHits.Load(); n != 0 {
		t.Errorf("429 spilled to the successor owner (%d hits) — cache affinity violated", n)
	}
}

// TestGatewayCertify422NeverFailsOver: a certified-divergent refusal is
// deterministic — every replica computes the same verdict — so the gateway
// must relay the 422 (certificate body included) and never retry the
// successor owner.
func TestGatewayCertify422NeverFailsOver(t *testing.T) {
	e := BuildCorpus(1, 32, 32)[0]
	var otherHits atomic.Int32
	var mu sync.Mutex
	behavior := map[string]http.HandlerFunc{}
	handlers := map[string]http.HandlerFunc{}
	for _, name := range []string{"a", "b"} {
		name := name
		handlers[name] = func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			h := behavior[name]
			mu.Unlock()
			h(w, r)
		}
	}
	g, ts, _ := stubFleet(t, GatewayConfig{FailoverTries: 2}, handlers)
	owner, _ := g.Membership().Ring().Owner(e.Fingerprint)
	other := "a"
	if owner == "a" {
		other = "b"
	}
	const certBody = `{"error":"certified divergent","certificate":{"verdict":"diverges","rho_jacobi":2.66}}`
	mu.Lock()
	behavior[owner] = func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprint(w, certBody)
	}
	behavior[other] = func(w http.ResponseWriter, r *http.Request) {
		otherHits.Add(1)
		accept202(other)(w, r)
	}
	mu.Unlock()

	resp, body := postJSON(t, ts.URL+"/v1/solve", solveEntry(e))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	if string(body) != certBody {
		t.Errorf("422 body not relayed verbatim: %s", body)
	}
	if n := otherHits.Load(); n != 0 {
		t.Errorf("certified 422 failed over to the successor (%d hits) — the verdict is deterministic", n)
	}
	st := scrapeStats(t, ts.URL)
	if st.CertRejects != 1 {
		t.Errorf("cert_rejects = %d, want 1", st.CertRejects)
	}
	if st.Failovers != 0 {
		t.Errorf("failovers = %d, want 0", st.Failovers)
	}
}

// TestGatewayCertify422EndToEnd: real solver nodes behind the gateway; an
// enforce-mode submission of a provably divergent matrix answers 422 with
// the admission certificate in the body and is never counted as a failover.
func TestGatewayCertify422EndToEnd(t *testing.T) {
	_, ts, _ := startFleet(t, 3, GatewayConfig{}, service.Config{Workers: 1, QueueDepth: 8})

	a := mats.S1RMT3M1(200)
	var sb strings.Builder
	if err := sparse.WriteMatrixMarket(&sb, a); err != nil {
		t.Fatal(err)
	}
	req := service.SolveRequest{
		MatrixMarket:   sb.String(),
		BlockSize:      32,
		LocalIters:     1,
		MaxGlobalIters: 50,
		Tolerance:      1e-8,
		Certify:        "enforce",
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	var out struct {
		Error       string              `json:"error"`
		Certificate certify.Certificate `json:"certificate"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding relayed 422 body: %v", err)
	}
	if out.Error == "" || out.Certificate.Verdict != certify.VerdictDiverges {
		t.Fatalf("relayed 422 body = %+v, want error + diverges certificate", out)
	}
	st := scrapeStats(t, ts.URL)
	if st.CertRejects != 1 {
		t.Errorf("cert_rejects = %d, want 1", st.CertRejects)
	}
	if st.Failovers != 0 {
		t.Errorf("failovers = %d, want 0 — 422 must not be retried", st.Failovers)
	}
}

// TestGatewayFailsOverOn503: a draining owner is skipped and the solve
// lands on the successor, counted as a failover.
func TestGatewayFailsOverOn503(t *testing.T) {
	e := BuildCorpus(1, 32, 32)[0]
	var mu sync.Mutex
	behavior := map[string]http.HandlerFunc{}
	handlers := map[string]http.HandlerFunc{}
	for _, name := range []string{"a", "b"} {
		name := name
		handlers[name] = func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			h := behavior[name]
			mu.Unlock()
			h(w, r)
		}
	}
	g, ts, _ := stubFleet(t, GatewayConfig{FailoverTries: 2, Membership: MembershipConfig{FailAfter: 100}}, handlers)
	owner, _ := g.Membership().Ring().Owner(e.Fingerprint)
	other := "a"
	if owner == "a" {
		other = "b"
	}
	mu.Lock()
	behavior[owner] = func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}
	behavior[other] = accept202(other)
	mu.Unlock()

	resp, body := postJSON(t, ts.URL+"/v1/solve", solveEntry(e))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202 via failover: %s", resp.StatusCode, body)
	}
	var sub submitView
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Node != other {
		t.Errorf("failover landed on %s, want %s", sub.Node, other)
	}
	st := scrapeStats(t, ts.URL)
	if st.Failovers == 0 {
		t.Error("failover not counted")
	}
}

// TestGatewayShedsAtInflightCap: with MaxInflight=1 and a slow node,
// concurrent submits beyond the cap get the gateway's own 429.
func TestGatewayShedsAtInflightCap(t *testing.T) {
	e := BuildCorpus(1, 32, 32)[0]
	release := make(chan struct{})
	_, ts, _ := stubFleet(t, GatewayConfig{MaxInflight: 1}, map[string]http.HandlerFunc{
		"slow": func(w http.ResponseWriter, r *http.Request) {
			<-release
			accept202("slow")(w, r)
		},
	})

	const inFlight = 4
	codes := make(chan int, inFlight)
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/solve", solveEntry(e))
			codes <- resp.StatusCode
		}()
	}
	// Let the requests pile up against the cap, then release the node.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	close(codes)

	shed, ok := 0, 0
	for c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			shed++
		case http.StatusAccepted:
			ok++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if shed == 0 {
		t.Error("no submission shed despite MaxInflight=1 and 4 concurrent")
	}
	if ok == 0 {
		t.Error("no submission accepted")
	}
	st := scrapeStats(t, ts.URL)
	if st.Shed != uint64(shed) {
		t.Errorf("gateway_shed_total = %d, observed %d shed responses", st.Shed, shed)
	}
}

func scrapeStats(t *testing.T, gwURL string) gatewayStats {
	t.Helper()
	resp, err := http.Get(gwURL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st gatewayStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestGatewayBadRequests(t *testing.T) {
	_, ts, _ := startFleet(t, 1, GatewayConfig{}, service.Config{Workers: 1, QueueDepth: 4})

	resp, _ := postJSON(t, ts.URL+"/v1/solve", map[string]any{"max_global_iters": 10})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("matrixless solve: status %d, want 400", resp.StatusCode)
	}

	r2, err := http.Get(ts.URL + "/v1/jobs/not-namespaced")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("un-namespaced job ID: status %d, want 400", r2.StatusCode)
	}

	r3, err := http.Get(ts.URL + "/v1/jobs/ghost~job-000001")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown node in job ID: status %d, want 404", r3.StatusCode)
	}
}

// TestGatewayNodeAPI registers and deregisters a node over HTTP and
// checks /readyz flips with the healthy count.
func TestGatewayNodeAPI(t *testing.T) {
	g := NewGateway(GatewayConfig{})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("empty gateway /readyz = %d, want 503", ready.StatusCode)
	}

	node := newSwitchableNode(t)
	resp, body := postJSON(t, ts.URL+"/v1/nodes", registerRequest{Name: "n0", URL: node.ts.URL})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/nodes", registerRequest{Name: "n0", URL: node.ts.URL}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate register: status %d, want 400", resp.StatusCode)
	}

	ready2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready2.Body.Close()
	if ready2.StatusCode != http.StatusOK {
		t.Errorf("gateway /readyz with a node = %d, want 200", ready2.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/nodes/n0", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("deregister: status %d, want 200", dresp.StatusCode)
	}
	if g.Membership().HealthyCount() != 0 {
		t.Error("node still healthy after deregister")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for in, want := range map[string]int{"7": 7, " 3 ": 3, "": 1, "0": 1, "-2": 1, "soon": 1} {
		if got := RetryAfterSeconds(in); got != want {
			t.Errorf("RetryAfterSeconds(%q) = %d, want %d", in, got, want)
		}
	}
	if RetryAfterSeconds(strconv.Itoa(60)) != 60 {
		t.Error("60 not passed through")
	}
}
