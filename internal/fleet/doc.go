// Package fleet scales the solver service horizontally: many solverd
// nodes behind one stateless gateway, routed by consistent hashing on the
// matrix fingerprint so each node's plan and tune caches stay hot for
// "its" matrices.
//
// The pieces compose bottom-up:
//
//   - Ring: a deterministic consistent-hash ring (virtual nodes, SHA-256
//     point placement). Adding or removing a node moves only ~1/N of the
//     key space — the property that keeps per-node caches warm across
//     membership changes.
//   - Membership: node registration plus health-checked liveness. Nodes
//     are probed at GET /readyz; consecutive failures eject a node from
//     the ring, consecutive successes re-admit it, and the rebalance is
//     deterministic (the ring is a pure function of the healthy set).
//   - Gateway: the HTTP router. POST /v1/solve resolves the request's
//     matrix fingerprint, forwards to the ring owner (failing over to the
//     next owner on transport errors or a draining node), propagates
//     per-node 429/Retry-After upstream, and sheds load with its own 429
//     when the fleet is saturated. Job IDs are namespaced "node~id" so
//     status polls route back to the owning node.
//   - Load harness: an open-loop arrival generator with Zipf-distributed
//     matrix popularity over a generated corpus and mixed
//     solve/tune/devices blends, reporting p50/p99/p999 latency and
//     throughput — the "millions of users" traffic model from the
//     roadmap, used by cmd/loadgen and the benchgate fleet gate.
//
// The design mirrors the paper's multi-GPU argument (Figure 11): block-
// asynchronous relaxation tolerates stale reads and loose coupling, so a
// fleet of independent solver nodes serves one workload with no
// coordination on the hot path — the gateway's only shared state is the
// health-derived ring.
package fleet
