package fleet

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
)

// sessionRegistry is the gateway's bounded map of issued sessions:
// namespaced ID → owning node + routing fingerprint. It exists for exactly
// one guarantee — when the owning node dies, a step must answer an explicit
// structured "session-lost" (with the fingerprint the client needs to
// re-create the session), never a silent re-route that would fabricate a
// fresh session under the old ID. Entries evict LRU; an evicted entry only
// downgrades a session-lost answer to the node's own 404.
type sessionRegistry struct {
	mu  sync.Mutex
	max int
	m   map[string]*list.Element // namespaced ID -> *sessionEntry
	ll  *list.List               // front = most recently used
}

type sessionEntry struct {
	id          string
	node        string
	fingerprint string
}

// defaultSessionRegistry bounds tracked sessions; at ~100 bytes per entry
// this is ~2MB, far above any node's MaxSessions.
const defaultSessionRegistry = 16384

func newSessionRegistry(max int) *sessionRegistry {
	if max <= 0 {
		max = defaultSessionRegistry
	}
	return &sessionRegistry{max: max, m: make(map[string]*list.Element), ll: list.New()}
}

func (r *sessionRegistry) put(id, node, fingerprint string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.m[id]; ok {
		r.ll.MoveToFront(el)
		el.Value.(*sessionEntry).node = node
		el.Value.(*sessionEntry).fingerprint = fingerprint
		return
	}
	r.m[id] = r.ll.PushFront(&sessionEntry{id: id, node: node, fingerprint: fingerprint})
	for r.ll.Len() > r.max {
		back := r.ll.Back()
		delete(r.m, back.Value.(*sessionEntry).id)
		r.ll.Remove(back)
	}
}

func (r *sessionRegistry) get(id string) (sessionEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.m[id]
	if !ok {
		return sessionEntry{}, false
	}
	r.ll.MoveToFront(el)
	return *el.Value.(*sessionEntry), true
}

func (r *sessionRegistry) drop(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.m[id]; ok {
		delete(r.m, id)
		r.ll.Remove(el)
	}
}

func (r *sessionRegistry) list() []sessionEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]sessionEntry, 0, r.ll.Len())
	for el := r.ll.Front(); el != nil; el = el.Next() {
		out = append(out, *el.Value.(*sessionEntry))
	}
	return out
}

func (r *sessionRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ll.Len()
}

// gatewaySessionView wraps the node's session view with the gateway's
// namespaced ID and routing attribution.
type gatewaySessionView struct {
	service.SessionView
	Node string `json:"node"`
}

// sessionLostResponse is the gateway's 410 body when a session's owning
// node died or lost its state: code "session-lost" (distinct from the
// node-side "session-expired"/"session-closed"), plus the fingerprint so
// the client can re-create the session — the ONE recovery path; the
// gateway never re-creates session state on a successor node itself.
type sessionLostResponse struct {
	Error       string `json:"error"`
	Code        string `json:"code"`
	SessionID   string `json:"session_id"`
	Fingerprint string `json:"fingerprint"`
	Node        string `json:"node,omitempty"`
}

func (g *Gateway) writeSessionLost(w http.ResponseWriter, id, node, fingerprint string, cause error) {
	g.sessionLost.Inc()
	g.sessions.drop(id)
	writeJSON(w, http.StatusGone, sessionLostResponse{
		Error:       fmt.Sprintf("fleet: session %s lost: %v", id, cause),
		Code:        "session-lost",
		SessionID:   id,
		Fingerprint: fingerprint,
		Node:        node,
	})
}

// handleSessionCreate routes a session to its fingerprint's ring owner.
// Creation holds no session state yet, so a dead or draining owner fails
// over to a successor like a solve; once the 201 lands, the session is
// pinned to that node for its whole life.
func (g *Gateway) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if g.inflight.Add(1) > int64(g.cfg.MaxInflight) {
		g.inflight.Add(-1)
		g.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, fmt.Errorf("fleet: gateway saturated (%d in flight)", g.cfg.MaxInflight))
		return
	}
	defer g.inflight.Add(-1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		g.badRequests.Inc()
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("fleet: reading request: %w", err))
		return
	}
	var req service.SessionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		g.badRequests.Inc()
		writeErr(w, http.StatusBadRequest, fmt.Errorf("fleet: decoding request: %w", err))
		return
	}
	key, err := g.resolver.RouteKey(service.SolveRequest{Matrix: req.Matrix, MatrixMarket: req.MatrixMarket})
	if err != nil {
		g.badRequests.Inc()
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	owners := g.members.Ring().Owners(key, g.cfg.FailoverTries)
	if len(owners) == 0 {
		g.noNodes.Inc()
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("fleet: no healthy nodes"))
		return
	}
	var lastErr error
	for i, name := range owners {
		if i > 0 {
			g.failovers.Inc()
		}
		base, ok := g.members.URL(name)
		if !ok {
			continue
		}
		g.routeCounter(name).Inc()
		resp, err := g.forward(r, http.MethodPost, base+"/v1/sessions", body)
		if err != nil {
			g.failCounter(name).Inc()
			g.members.ReportFailure(name, err)
			lastErr = err
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			g.failCounter(name).Inc()
			lastErr = err
			continue
		}
		switch resp.StatusCode {
		case http.StatusCreated:
			var v service.SessionView
			if err := json.Unmarshal(respBody, &v); err != nil || v.ID == "" {
				relay(w, resp, respBody)
				return
			}
			id := name + "~" + v.ID
			g.sessions.put(id, name, key)
			g.sessionsCreated.Inc()
			v.ID = id
			w.Header().Set("Location", "/v1/sessions/"+id)
			writeJSON(w, http.StatusCreated, gatewaySessionView{SessionView: v, Node: name})
			return
		case http.StatusTooManyRequests:
			// Session limit or saturation on the live owner: propagate, never
			// spill — the point of stickiness is that the plan/warm state
			// lives exactly there.
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			relay(w, resp, respBody)
			return
		case http.StatusServiceUnavailable:
			g.failCounter(name).Inc()
			g.members.ReportFailure(name, fmt.Errorf("sessions: %s", resp.Status))
			lastErr = fmt.Errorf("node %s: %s", name, resp.Status)
			continue
		default:
			// 4xx (validation, certificates) is deterministic: relay.
			relay(w, resp, respBody)
			return
		}
	}
	g.noNodes.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("fleet: no owner accepted the session")
	}
	writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("fleet: all owners failed: %w", lastErr))
}

// handleSessionStep forwards a step to the session's pinned owner and
// relays the response as it streams (progress events must not sit in a
// gateway buffer until the solve finishes). There is NO failover on this
// path: a session is state on one node, so an unreachable owner — or an
// owner that restarted and no longer knows the ID — answers the structured
// 410 "session-lost". Re-creating the session (on a successor or on the
// restarted owner) is the client's decision, armed with the fingerprint.
func (g *Gateway) handleSessionStep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name, rest, ok := strings.Cut(id, "~")
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("fleet: session ID %q is not namespaced (want node~id)", id))
		return
	}
	known, tracked := g.sessions.get(id)

	base, found := g.members.URL(name)
	if !found {
		// The owner is no longer a member at all: its session state is gone
		// with it.
		g.writeSessionLost(w, id, name, known.fingerprint, fmt.Errorf("node %q is no longer registered", name))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("fleet: reading request: %w", err))
		return
	}
	g.sessionSteps.Inc()
	resp, err := g.forward(r, http.MethodPost, base+"/v1/sessions/"+rest+"/step", body)
	if err != nil {
		g.failCounter(name).Inc()
		g.members.ReportFailure(name, err)
		g.writeSessionLost(w, id, name, known.fingerprint, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound && tracked {
		// The gateway issued this ID but the node no longer knows it: the
		// owner restarted (or was replaced behind the same name) and its
		// in-memory sessions died with it. A bare 404 would read as "you
		// typed the wrong ID"; the truth is session-lost.
		io.Copy(io.Discard, resp.Body)
		g.writeSessionLost(w, id, name, known.fingerprint, fmt.Errorf("node %q lost its session state (restart?)", name))
		return
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		// Crashed-but-port-bound or draining owner: its in-memory sessions
		// are dying with it. A relayed 503 would invite a retry against
		// state that won't be there; the honest answer is session-lost.
		io.Copy(io.Discard, resp.Body)
		g.writeSessionLost(w, id, name, known.fingerprint, fmt.Errorf("node %q unavailable: %s", name, resp.Status))
		return
	}
	if resp.StatusCode == http.StatusGone {
		// Node-side tombstone (expired/closed): relay its structured body,
		// drop our tracking entry.
		g.sessions.drop(id)
	}
	relayStream(w, resp)
}

// handleSessionProxy forwards GET/DELETE of one session to its owner with
// the same no-failover session-lost contract as steps.
func (g *Gateway) handleSessionProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name, rest, ok := strings.Cut(id, "~")
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("fleet: session ID %q is not namespaced (want node~id)", id))
		return
	}
	known, tracked := g.sessions.get(id)
	base, found := g.members.URL(name)
	if !found {
		g.writeSessionLost(w, id, name, known.fingerprint, fmt.Errorf("node %q is no longer registered", name))
		return
	}
	resp, err := g.forward(r, r.Method, base+"/v1/sessions/"+rest, nil)
	if err != nil {
		g.failCounter(name).Inc()
		g.members.ReportFailure(name, err)
		g.writeSessionLost(w, id, name, known.fingerprint, err)
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		writeErr(w, http.StatusBadGateway, fmt.Errorf("fleet: node %s: %w", name, err))
		return
	}
	if resp.StatusCode == http.StatusNotFound && tracked {
		g.writeSessionLost(w, id, name, known.fingerprint, fmt.Errorf("node %q lost its session state (restart?)", name))
		return
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		g.writeSessionLost(w, id, name, known.fingerprint, fmt.Errorf("node %q unavailable: %s", name, resp.Status))
		return
	}
	if r.Method == http.MethodDelete && (resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusGone) {
		g.sessions.drop(id)
	}
	relay(w, resp, respBody)
}

// gatewaySessionListEntry is one row of the gateway's session inventory.
type gatewaySessionListEntry struct {
	ID          string `json:"id"`
	Node        string `json:"node"`
	Fingerprint string `json:"fingerprint"`
}

// handleSessionList reports the gateway's tracked sessions (its routing
// view — the nodes own the authoritative state).
func (g *Gateway) handleSessionList(w http.ResponseWriter, r *http.Request) {
	entries := g.sessions.list()
	out := make([]gatewaySessionListEntry, len(entries))
	for i, e := range entries {
		out[i] = gatewaySessionListEntry{ID: e.id, Node: e.node, Fingerprint: e.fingerprint}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

// handleBatch routes a batched solve exactly like a single solve: by the
// shared matrix fingerprint, one queue slot on the owner, job ID namespaced
// for status polls through the gateway.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	if g.inflight.Add(1) > int64(g.cfg.MaxInflight) {
		g.inflight.Add(-1)
		g.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, fmt.Errorf("fleet: gateway saturated (%d in flight)", g.cfg.MaxInflight))
		return
	}
	defer g.inflight.Add(-1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		g.badRequests.Inc()
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("fleet: reading request: %w", err))
		return
	}
	var req service.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		g.badRequests.Inc()
		writeErr(w, http.StatusBadRequest, fmt.Errorf("fleet: decoding request: %w", err))
		return
	}
	key, err := g.resolver.RouteKey(service.SolveRequest{Matrix: req.Matrix, MatrixMarket: req.MatrixMarket})
	if err != nil {
		g.badRequests.Inc()
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	owners := g.members.Ring().Owners(key, g.cfg.FailoverTries)
	if len(owners) == 0 {
		g.noNodes.Inc()
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("fleet: no healthy nodes"))
		return
	}
	start := time.Now()
	var lastErr error
	for i, name := range owners {
		if i > 0 {
			g.failovers.Inc()
		}
		base, ok := g.members.URL(name)
		if !ok {
			continue
		}
		g.routeCounter(name).Inc()
		resp, err := g.forward(r, http.MethodPost, base+"/v1/batch", body)
		if err != nil {
			g.failCounter(name).Inc()
			g.members.ReportFailure(name, err)
			lastErr = err
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			g.failCounter(name).Inc()
			lastErr = err
			continue
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			g.batchSubmits.Inc()
			g.forwardHist.Observe(time.Since(start).Seconds())
			var sv submitView
			if err := json.Unmarshal(respBody, &sv); err != nil || sv.JobID == "" {
				relay(w, resp, respBody)
				return
			}
			sv.JobID = name + "~" + sv.JobID
			sv.StatusURL = "/v1/jobs/" + sv.JobID
			sv.Node = name
			sv.Fingerprint = key
			w.Header().Set("Location", sv.StatusURL)
			writeJSON(w, http.StatusAccepted, sv)
			return
		case http.StatusTooManyRequests:
			g.submit429.Inc()
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			relay(w, resp, respBody)
			return
		case http.StatusUnprocessableEntity:
			g.submit422.Inc()
			relay(w, resp, respBody)
			return
		case http.StatusServiceUnavailable:
			g.failCounter(name).Inc()
			g.members.ReportFailure(name, fmt.Errorf("batch: %s", resp.Status))
			lastErr = fmt.Errorf("node %s: %s", name, resp.Status)
			continue
		default:
			relay(w, resp, respBody)
			return
		}
	}
	g.noNodes.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("fleet: no owner accepted the batch")
	}
	writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("fleet: all owners failed: %w", lastErr))
}

// relayStream copies an upstream response to the client as it arrives,
// flushing after every chunk — the streaming analogue of relay for SSE and
// chunked-JSON step responses, where buffering until EOF would defeat the
// live residual feed.
func relayStream(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Cache-Control", "X-Accel-Buffering", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client gone: the node finishes the step regardless
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
