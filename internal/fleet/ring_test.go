package fleet

import (
	"fmt"
	"testing"
)

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("fingerprint-%05d", i)
	}
	return keys
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	build := func(order []string) *Ring {
		r := NewRing(64)
		for _, n := range order {
			r.Add(n)
		}
		return r
	}
	a := build([]string{"n0", "n1", "n2"})
	b := build([]string{"n2", "n0", "n1"}) // insertion order must not matter
	for _, k := range sampleKeys(500) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("owner(%s) differs across identically-membered rings: %s vs %s", k, oa, ob)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring claims an owner")
	}
	r.Add("only")
	for _, k := range sampleKeys(50) {
		o, ok := r.Owner(k)
		if !ok || o != "only" {
			t.Fatalf("single-node ring: owner(%s) = %q, %v", k, o, ok)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	nodes := []string{"n0", "n1", "n2", "n3"}
	for _, n := range nodes {
		r.Add(n)
	}
	shares := r.Shares(sampleKeys(8000))
	for _, n := range nodes {
		if shares[n] < 0.10 || shares[n] > 0.45 {
			t.Errorf("node %s owns %.1f%% of the key space (want roughly 25%%)", n, 100*shares[n])
		}
	}
}

// TestRingRebalanceMovesOnlyVictimKeys is the consistent-hashing
// contract the fleet's cache affinity rests on: removing one of N nodes
// moves exactly that node's ~1/N key share (keys owned by survivors are
// untouched), and re-adding it restores the original placement exactly.
func TestRingRebalanceMovesOnlyVictimKeys(t *testing.T) {
	r := NewRing(128)
	nodes := []string{"n0", "n1", "n2", "n3"}
	for _, n := range nodes {
		r.Add(n)
	}
	keys := sampleKeys(4000)
	before := make(map[string]string, len(keys))
	victimKeys := 0
	for _, k := range keys {
		o, _ := r.Owner(k)
		before[k] = o
		if o == "n2" {
			victimKeys++
		}
	}

	r.Remove("n2")
	moved := 0
	for _, k := range keys {
		o, _ := r.Owner(k)
		if before[k] != "n2" {
			if o != before[k] {
				t.Fatalf("survivor-owned key %s moved %s -> %s on unrelated removal", k, before[k], o)
			}
			continue
		}
		if o == "n2" {
			t.Fatalf("key %s still owned by removed node", k)
		}
		moved++
	}
	if moved != victimKeys {
		t.Fatalf("moved %d keys, want exactly the victim's %d", moved, victimKeys)
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("removal moved %.1f%% of keys (want ~25%% for 4 nodes)", 100*frac)
	}

	r.Add("n2")
	for _, k := range keys {
		o, _ := r.Owner(k)
		if o != before[k] {
			t.Fatalf("re-admission did not restore placement: owner(%s) = %s, want %s", k, o, before[k])
		}
	}
}

func TestRingOwnersDistinctPreferenceOrder(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"n0", "n1", "n2"} {
		r.Add(n)
	}
	for _, k := range sampleKeys(200) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("owners(%s, 3) = %v, want 3 distinct nodes", k, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("owners(%s) repeats node %s: %v", k, o, owners)
			}
			seen[o] = true
		}
		primary, _ := r.Owner(k)
		if owners[0] != primary {
			t.Fatalf("owners(%s)[0] = %s, want primary %s", k, owners[0], primary)
		}
	}
	if got := r.Owners("k", 10); len(got) != 3 {
		t.Fatalf("owners clamped to member count: got %v", got)
	}
}

func TestValidateNodeName(t *testing.T) {
	for _, ok := range []string{"n0", "node-1", "a.b_c", "UPPER9"} {
		if err := validateNodeName(ok); err != nil {
			t.Errorf("validateNodeName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "a~b", "a/b", "a b", "a\tb"} {
		if err := validateNodeName(bad); err == nil {
			t.Errorf("validateNodeName(%q) accepted", bad)
		}
	}
}
