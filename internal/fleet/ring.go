package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring mapping string keys (matrix
// fingerprints) to node names. Each node contributes Replicas virtual
// points placed by SHA-256, so the ring is a pure function of the member
// set: two gateways holding the same healthy nodes route identically, and
// removing a node moves only that node's ~1/N share of the key space.
// All methods are safe for concurrent use.
type Ring struct {
	replicas int

	mu     sync.RWMutex
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-node count per member: enough that the
// per-node key share concentrates near 1/N (spread shrinks like
// 1/sqrt(replicas)) while keeping lookups a binary search over a few
// hundred points for small fleets.
const DefaultReplicas = 128

// NewRing creates an empty ring with the given virtual-node count per
// member (0 selects DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

// hashPoint places one virtual node: SHA-256("node\x00replica") truncated
// to 64 bits. SHA-256 (rather than a fast non-cryptographic hash) keeps
// placement unpredictable and uniform regardless of node-name shape.
func hashPoint(node string, replica int) uint64 {
	h := sha256.New()
	h.Write([]byte(node))
	var buf [9]byte
	buf[0] = 0
	binary.LittleEndian.PutUint64(buf[1:], uint64(replica))
	h.Write(buf[:])
	return binary.LittleEndian.Uint64(h.Sum(nil)[:8])
}

// hashKey places a lookup key on the ring.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.LittleEndian.Uint64(sum[:8])
}

// Add inserts a node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: hashPoint(node, i), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the member names in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the node owning key: the first virtual point clockwise
// from the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct nodes in preference order for key: the
// owner first, then the successors met walking clockwise — the failover
// sequence a gateway tries when the owner is unreachable. Deterministic
// for a given member set.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// Shares returns each member's share of the key space measured over the
// given sample keys — a diagnostic for balance tests and /statsz.
func (r *Ring) Shares(keys []string) map[string]float64 {
	counts := make(map[string]int)
	for _, k := range keys {
		if owner, ok := r.Owner(k); ok {
			counts[owner]++
		}
	}
	out := make(map[string]float64, len(counts))
	if len(keys) == 0 {
		return out
	}
	for n, c := range counts {
		out[n] = float64(c) / float64(len(keys))
	}
	return out
}

// validateNodeName rejects names that would break the gateway's job-ID
// namespacing ("node~jobid") or metric labels.
func validateNodeName(name string) error {
	if name == "" {
		return fmt.Errorf("fleet: empty node name")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("fleet: node name %q: only letters, digits, '-', '_' and '.' are allowed", name)
		}
	}
	return nil
}
