package fleet

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/mats"
	"repro/internal/service"
	"repro/internal/sparse"
)

// keyResolver turns a solve request into its routing key: the same matrix
// fingerprint the node-side plan/tune caches are keyed by, so ring
// placement is verifiable against the fingerprint echoed in job results.
//
// Named paper matrices are generated and fingerprinted once per name.
// Inline Matrix Market payloads are parsed and fingerprinted once per
// distinct payload (LRU over the payload's SHA-256): under Zipf-shaped
// popularity the popular bodies stay resident and routing costs one hash
// of the request body, not a parse.
type keyResolver struct {
	mu    sync.Mutex
	named map[string]string

	inlineMax int
	inline    map[string]*list.Element // payload sha256 hex -> fingerprint
	ll        *list.List               // of inlineEntry; front = most recent
}

type inlineEntry struct {
	payloadHash string
	fingerprint string
}

// defaultInlineKeyCache bounds the payload-hash→fingerprint map. At ~100
// bytes per entry this is a few hundred KB for a corpus far larger than
// the node-side plan caches it fronts.
const defaultInlineKeyCache = 4096

func newKeyResolver(inlineMax int) *keyResolver {
	if inlineMax <= 0 {
		inlineMax = defaultInlineKeyCache
	}
	return &keyResolver{
		named:     make(map[string]string),
		inlineMax: inlineMax,
		inline:    make(map[string]*list.Element),
		ll:        list.New(),
	}
}

// RouteKey resolves the request's matrix fingerprint. Requests that name
// no matrix at all are rejected here with the same error shape the node
// would produce, sparing a forward.
func (r *keyResolver) RouteKey(req service.SolveRequest) (string, error) {
	switch {
	case req.Matrix != "" && req.MatrixMarket != "":
		return "", fmt.Errorf("fleet: exactly one of matrix or matrix_market must be set")
	case req.Matrix != "":
		return r.namedKey(req.Matrix)
	case req.MatrixMarket != "":
		return r.inlineKey(req.MatrixMarket)
	default:
		return "", fmt.Errorf("fleet: exactly one of matrix or matrix_market must be set")
	}
}

func (r *keyResolver) namedKey(name string) (string, error) {
	r.mu.Lock()
	fp, ok := r.named[name]
	r.mu.Unlock()
	if ok {
		return fp, nil
	}
	tm, err := mats.Generate(name)
	if err != nil {
		return "", fmt.Errorf("fleet: %w", err)
	}
	fp = service.Fingerprint(tm.A)
	r.mu.Lock()
	r.named[name] = fp
	r.mu.Unlock()
	return fp, nil
}

func (r *keyResolver) inlineKey(payload string) (string, error) {
	sum := sha256.Sum256([]byte(payload))
	ph := hex.EncodeToString(sum[:16])

	r.mu.Lock()
	if el, ok := r.inline[ph]; ok {
		r.ll.MoveToFront(el)
		fp := el.Value.(inlineEntry).fingerprint
		r.mu.Unlock()
		return fp, nil
	}
	r.mu.Unlock()

	a, err := sparse.ReadMatrixMarket(strings.NewReader(payload))
	if err != nil {
		return "", fmt.Errorf("fleet: parsing matrix_market payload: %w", err)
	}
	fp := service.Fingerprint(a)

	r.mu.Lock()
	if _, ok := r.inline[ph]; !ok {
		r.inline[ph] = r.ll.PushFront(inlineEntry{payloadHash: ph, fingerprint: fp})
		for r.ll.Len() > r.inlineMax {
			back := r.ll.Back()
			delete(r.inline, back.Value.(inlineEntry).payloadHash)
			r.ll.Remove(back)
		}
	}
	r.mu.Unlock()
	return fp, nil
}
