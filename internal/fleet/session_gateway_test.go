package fleet

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/service"
)

func sessionEntryRequest(e CorpusEntry) service.SessionRequest {
	return service.SessionRequest{
		MatrixMarket:   e.MatrixMarket,
		BlockSize:      16,
		LocalIters:     2,
		MaxGlobalIters: 500,
		Tolerance:      1e-8,
		Seed:           7,
	}
}

func entryRHS(e CorpusEntry, k int) []float64 {
	b := make([]float64, e.N)
	for i := range b {
		b[i] = 1 + 0.01*float64(k)*float64(i%5)
	}
	return b
}

func createSessionVia(t *testing.T, gwURL string, req service.SessionRequest) gatewaySessionView {
	t.Helper()
	resp, body := postJSON(t, gwURL+"/v1/sessions", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var v gatewaySessionView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestGatewaySessionStickyRouting creates sessions through the gateway and
// checks each lands on its fingerprint's ring owner, gets a namespaced ID,
// and that steps stay pinned to that node (warm-starting there).
func TestGatewaySessionStickyRouting(t *testing.T) {
	g, ts, nodes := startFleet(t, 3, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 8})

	corpus := BuildCorpus(6, 64, 128)
	byNode := map[string]int{}
	for _, e := range corpus {
		v := createSessionVia(t, ts.URL, sessionEntryRequest(e))
		owner := g.members.Ring().Owners(e.Fingerprint, 1)
		if len(owner) != 1 || v.Node != owner[0] {
			t.Fatalf("session for %s landed on %s, ring owner %v", e.Fingerprint[:8], v.Node, owner)
		}
		if v.Fingerprint != e.Fingerprint {
			t.Fatalf("view fingerprint %s, corpus %s", v.Fingerprint, e.Fingerprint)
		}
		if !strings.HasPrefix(v.ID, v.Node+"~sess-") {
			t.Fatalf("ID %q not namespaced to its node", v.ID)
		}
		byNode[v.Node]++

		// Two steps through the gateway: the second must warm-start, which
		// can only happen if it reached the same node-resident session.
		for k := 1; k <= 2; k++ {
			resp, body := postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/step",
				service.StepRequest{RHS: entryRHS(e, k)})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("step %d: status %d: %s", k, resp.StatusCode, body)
			}
			var sr service.StepResult
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			if !sr.Converged || sr.Step != k || sr.WarmStart != (k > 1) {
				t.Fatalf("step %d = %+v", k, sr)
			}
		}
	}
	if len(byNode) < 2 {
		t.Fatalf("all sessions on one node (%v): ring not spreading", byNode)
	}
	// The per-node session stores agree with the gateway's attribution.
	total := 0
	for _, n := range nodes {
		total += n.svc.Stats().Sessions.Active
	}
	if total != len(corpus) {
		t.Fatalf("fleet holds %d active sessions, want %d", total, len(corpus))
	}
	st := g.sessions.len()
	if st != len(corpus) {
		t.Fatalf("gateway tracks %d sessions, want %d", st, len(corpus))
	}
}

// TestGatewaySessionStepStreaming runs an SSE step through the gateway and
// expects the relayed stream: progress events, then one result.
func TestGatewaySessionStepStreaming(t *testing.T) {
	_, ts, _ := startFleet(t, 2, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 8})
	e := BuildCorpus(1, 128, 128)[0]
	v := createSessionVia(t, ts.URL, sessionEntryRequest(e))

	payload, _ := json.Marshal(service.StepRequest{RHS: entryRHS(e, 1), Stream: "sse"})
	resp, err := http.Post(ts.URL+"/v1/sessions/"+v.ID+"/step", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("status %d, content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	events := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			events[strings.TrimPrefix(sc.Text(), "event: ")]++
		}
	}
	if events["result"] != 1 || events["error"] != 0 || events["progress"] < 1 {
		t.Fatalf("relayed events = %v, want progress then one result", events)
	}
}

// decodeLost decodes a gateway 410 body.
func decodeLost(t *testing.T, body []byte) sessionLostResponse {
	t.Helper()
	var lost sessionLostResponse
	if err := json.Unmarshal(body, &lost); err != nil {
		t.Fatalf("decoding 410 body %s: %v", body, err)
	}
	return lost
}

// TestGatewaySessionLostOnNodeDeath is the failover contract end to end:
// the owning node dies mid-session and the next step answers the
// structured 410 "session-lost" carrying the session's fingerprint — the
// gateway must NOT re-create the session on a surviving node, and the
// fleet must NOT invent fresh state under the old ID.
func TestGatewaySessionLostOnNodeDeath(t *testing.T) {
	g, ts, nodes := startFleet(t, 3, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 8})
	e := BuildCorpus(1, 96, 96)[0]
	v := createSessionVia(t, ts.URL, sessionEntryRequest(e))

	// One live step to make the session genuinely mid-stream.
	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/step", service.StepRequest{RHS: entryRHS(e, 1)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up step: status %d: %s", resp.StatusCode, body)
	}

	// Kill the owner (port stays bound, answers 503 — the crashed-supervisor
	// shape fleet_smoke kills with SIGTERM).
	var owner *fleetNode
	for _, n := range nodes {
		if n.name == v.Node {
			owner = n
		}
	}
	owner.down.down.Store(true)

	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/step", service.StepRequest{RHS: entryRHS(e, 2)})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("step after owner death: status %d: %s", resp.StatusCode, body)
	}
	lost := decodeLost(t, body)
	if lost.Code != "session-lost" || lost.SessionID != v.ID || lost.Fingerprint != e.Fingerprint {
		t.Fatalf("410 body = %+v", lost)
	}
	// No silent re-creation anywhere: the survivors hold zero sessions for
	// this fingerprint and the gateway dropped its tracking entry.
	for _, n := range nodes {
		if n == owner {
			continue
		}
		if got := n.svc.Stats().Sessions.Active; got != 0 {
			t.Fatalf("node %s silently gained %d sessions", n.name, got)
		}
	}
	if g.sessions.len() != 0 {
		t.Fatalf("gateway still tracks %d sessions after loss", g.sessions.len())
	}
	if got := g.sessionLost.Value(); got != 1 {
		t.Fatalf("session-lost counter = %d, want 1", got)
	}

	// The client's recovery path: re-create using the fingerprint from the
	// 410. The replacement session must land on a SURVIVING ring owner and
	// start cold (step 1, no warm start) — fresh state, fresh ID.
	v2 := createSessionVia(t, ts.URL, sessionEntryRequest(e))
	if v2.ID == v.ID {
		t.Fatal("replacement session reused the lost ID")
	}
	if v2.Node == owner.name {
		t.Fatalf("replacement landed on the dead node %s", owner.name)
	}
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+v2.ID+"/step", service.StepRequest{RHS: entryRHS(e, 3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replacement step: status %d: %s", resp.StatusCode, body)
	}
	var sr service.StepResult
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Step != 1 || sr.WarmStart {
		t.Fatalf("replacement step = %+v, want a cold step 1", sr)
	}
}

// TestGatewaySessionLostOnNodeRestart covers the sneakier loss: the owner
// comes back healthy under the same name but without its in-memory
// sessions. The node alone would answer 404 unknown; the gateway, which
// issued the ID, must translate that to the honest 410 session-lost.
func TestGatewaySessionLostOnNodeRestart(t *testing.T) {
	g, ts, nodes := startFleet(t, 2, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 8})
	e := BuildCorpus(1, 96, 96)[0]
	v := createSessionVia(t, ts.URL, sessionEntryRequest(e))

	// "Restart" the owner: same name, same URL shape, fresh service with no
	// session state.
	replacement := newFleetNode(t, v.Node, service.Config{Workers: 2, QueueDepth: 8})
	if err := g.Membership().Deregister(v.Node); err != nil {
		t.Fatal(err)
	}
	if err := g.Membership().Register(v.Node, replacement.ts.URL); err != nil {
		t.Fatal(err)
	}
	_ = nodes

	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/step", service.StepRequest{RHS: entryRHS(e, 1)})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("step after restart: status %d: %s", resp.StatusCode, body)
	}
	lost := decodeLost(t, body)
	if lost.Code != "session-lost" || lost.Fingerprint != e.Fingerprint {
		t.Fatalf("410 body = %+v", lost)
	}
	// The restarted node must NOT have been handed invented state.
	if got := replacement.svc.Stats().Sessions.Created; got != 0 {
		t.Fatalf("restarted node has %d sessions: silent re-creation", got)
	}
}

// TestGatewaySessionDeregisteredOwner checks the third loss mode: the owner
// left the membership entirely.
func TestGatewaySessionDeregisteredOwner(t *testing.T) {
	g, ts, _ := startFleet(t, 2, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 8})
	e := BuildCorpus(1, 64, 64)[0]
	v := createSessionVia(t, ts.URL, sessionEntryRequest(e))
	if err := g.Membership().Deregister(v.Node); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/step", service.StepRequest{RHS: entryRHS(e, 1)})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if lost := decodeLost(t, body); lost.Code != "session-lost" {
		t.Fatalf("410 body = %+v", lost)
	}
}

// TestGatewaySessionTombstoneRelay checks a node-side 410 (client-closed
// session) relays verbatim — it is NOT a session-lost: the state ended by
// request, not by failure.
func TestGatewaySessionTombstoneRelay(t *testing.T) {
	g, ts, _ := startFleet(t, 2, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 8})
	e := BuildCorpus(1, 64, 64)[0]
	v := createSessionVia(t, ts.URL, sessionEntryRequest(e))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}

	presp, body := postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/step", service.StepRequest{RHS: entryRHS(e, 1)})
	if presp.StatusCode != http.StatusGone {
		t.Fatalf("status %d: %s", presp.StatusCode, body)
	}
	var gone struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &gone); err != nil {
		t.Fatal(err)
	}
	if gone.Code != "session-closed" {
		t.Fatalf("code = %q, want the node's session-closed, not session-lost", gone.Code)
	}
	if got := g.sessionLost.Value(); got != 0 {
		t.Fatalf("session-lost counter = %d for a clean close", got)
	}
}

// TestGatewayBatchRouting routes a batch through the gateway and polls the
// namespaced job to completion.
func TestGatewayBatchRouting(t *testing.T) {
	g, ts, _ := startFleet(t, 2, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 8})
	e := BuildCorpus(1, 64, 64)[0]

	req := service.BatchRequest{
		MatrixMarket:   e.MatrixMarket,
		RHS:            [][]float64{entryRHS(e, 1), entryRHS(e, 2), entryRHS(e, 3)},
		BlockSize:      16,
		LocalIters:     2,
		MaxGlobalIters: 500,
		Tolerance:      1e-8,
		Seed:           42,
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sv submitView
	if err := json.Unmarshal(body, &sv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sv.JobID, "~job-") || sv.Fingerprint != e.Fingerprint {
		t.Fatalf("submit view = %+v", sv)
	}
	if owner := g.members.Ring().Owners(e.Fingerprint, 1)[0]; sv.Node != owner {
		t.Fatalf("batch landed on %s, ring owner %s", sv.Node, owner)
	}

	view := waitFleetJob(t, ts.URL, sv.JobID)
	if view.Result == nil || view.Result.Batch == nil {
		t.Fatalf("job view = %+v, want a batch result", view)
	}
	if view.Result.Batch.Converged != 3 || view.Result.Batch.Failed != 0 {
		t.Fatalf("batch = %+v", view.Result.Batch)
	}
	if got := g.batchSubmits.Value(); got != 1 {
		t.Fatalf("batch counter = %d", got)
	}
}
