package fleet

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/service"
)

// TestFleetRebalanceUnderLoad is the kill-a-node-mid-load scenario from
// the issue, end to end against real solver nodes:
//
//  1. killing one of three nodes moves only that node's ~1/N fingerprints
//     (survivor-owned keys keep their owner),
//  2. jobs already in flight on the survivors finish undisturbed,
//  3. previously victim-owned keys are accepted by survivors while the
//     victim is down, and
//  4. re-admission restores the original placement for every key.
func TestFleetRebalanceUnderLoad(t *testing.T) {
	g, ts, nodes := startFleet(t, 3,
		GatewayConfig{Membership: MembershipConfig{
			ProbeInterval: 10 * time.Millisecond,
			FailAfter:     2,
			ReviveAfter:   2,
		}},
		service.Config{Workers: 2, QueueDepth: 32})
	g.Start()
	defer g.Close()

	corpus := BuildCorpus(30, 24, 64)
	before := make(map[string]string, len(corpus))
	perOwner := map[string]int{}
	for _, e := range corpus {
		o, ok := g.Membership().Ring().Owner(e.Fingerprint)
		if !ok {
			t.Fatal("ring empty")
		}
		before[e.Fingerprint] = o
		perOwner[o]++
	}
	victim := nodes[2].name
	if perOwner[victim] == 0 {
		t.Fatalf("victim %s owns no corpus keys; owners: %v", victim, perOwner)
	}

	// Put long-running jobs in flight on the survivors: a generous
	// iteration budget with no tolerance runs to the budget, so these are
	// still solving when the victim dies.
	type inflight struct{ jobID, fingerprint string }
	var running []inflight
	for _, e := range corpus {
		owner := before[e.Fingerprint]
		if owner == victim || len(running) >= 4 {
			continue
		}
		req := solveEntry(e)
		req.Tolerance = 0
		req.MaxGlobalIters = 30000
		resp, body := postJSON(t, ts.URL+"/v1/solve", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("in-flight submit: status %d: %s", resp.StatusCode, body)
		}
		var sub submitView
		mustUnmarshal(t, body, &sub)
		if sub.Node != owner {
			t.Fatalf("pre-kill solve routed to %s, ring owner is %s", sub.Node, owner)
		}
		running = append(running, inflight{sub.JobID, e.Fingerprint})
	}

	// Kill the victim and wait for the probe loop to eject it.
	nodes[2].down.down.Store(true)
	waitHealthy(t, g, 2)

	moved := 0
	for _, e := range corpus {
		o, ok := g.Membership().Ring().Owner(e.Fingerprint)
		if !ok {
			t.Fatal("ring empty after ejection")
		}
		if before[e.Fingerprint] == victim {
			if o == victim {
				t.Fatalf("key %s still routed to dead node", e.Fingerprint)
			}
			moved++
		} else if o != before[e.Fingerprint] {
			t.Fatalf("survivor-owned key %s moved %s -> %s on unrelated ejection",
				e.Fingerprint, before[e.Fingerprint], o)
		}
	}
	if moved != perOwner[victim] {
		t.Fatalf("%d keys moved, want exactly the victim's %d", moved, perOwner[victim])
	}

	// Victim-owned keys are accepted by survivors while it is down.
	for _, e := range corpus {
		if before[e.Fingerprint] != victim {
			continue
		}
		resp, body := postJSON(t, ts.URL+"/v1/solve", solveEntry(e))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("orphaned key not re-homed: status %d: %s", resp.StatusCode, body)
		}
		var sub submitView
		mustUnmarshal(t, body, &sub)
		if sub.Node == victim {
			t.Fatalf("orphaned key submitted to dead node %s", victim)
		}
		waitFleetJob(t, ts.URL, sub.JobID)
		break // one is enough; the loop above already checked placement
	}

	// The survivors' in-flight jobs were undisturbed by the rebalance.
	for _, r := range running {
		v := waitFleetJob(t, ts.URL, r.jobID)
		if v.Result == nil || v.Result.Fingerprint != r.fingerprint {
			t.Errorf("in-flight job %s finished with wrong/missing fingerprint", r.jobID)
		}
	}

	// Revive the victim; re-admission must restore the original placement
	// for every key (deterministic rebalance).
	nodes[2].down.down.Store(false)
	waitHealthy(t, g, 3)
	for _, e := range corpus {
		o, _ := g.Membership().Ring().Owner(e.Fingerprint)
		if o != before[e.Fingerprint] {
			t.Fatalf("placement not restored after re-admission: %s -> %s, want %s",
				e.Fingerprint, o, before[e.Fingerprint])
		}
	}
}

func waitHealthy(t *testing.T, g *Gateway, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.Membership().HealthyCount() != want {
		if time.Now().After(deadline) {
			t.Fatalf("healthy count stuck at %d, want %d", g.Membership().HealthyCount(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func mustUnmarshal(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
}
