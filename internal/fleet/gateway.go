package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/service"
)

// GatewayConfig configures a Gateway. Zero values select the defaults.
type GatewayConfig struct {
	// Membership configures registration and health probing.
	Membership MembershipConfig
	// MaxInflight bounds concurrently forwarded solve submissions; beyond
	// it the gateway sheds with its own 429 (default 256).
	MaxInflight int
	// FailoverTries is how many distinct ring owners a solve is offered to
	// when forwarding fails at the transport level or hits a draining node
	// (default 2). A node's 429 is never failed over: the owner is alive,
	// and spilling its keys elsewhere would wreck cache affinity.
	FailoverTries int
	// ForwardTimeout bounds one forwarded request (default 60s — a solve
	// submission returns 202 immediately, so this is generous).
	ForwardTimeout time.Duration
	// Client issues the forwards (default: a client honoring
	// ForwardTimeout).
	Client *http.Client
	// InlineKeyCache bounds the payload-hash → fingerprint routing cache
	// (default 4096 entries).
	InlineKeyCache int
	// SessionRegistry bounds the gateway's session-tracking map (namespaced
	// ID → owning node + fingerprint; default 16384 entries). Tracking is
	// what turns a dead owner into an explicit 410 "session-lost" instead of
	// a bare 404.
	SessionRegistry int
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.FailoverTries <= 0 {
		c.FailoverTries = 2
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 60 * time.Second
	}
	return c
}

// Gateway routes /v1/solve traffic across the fleet by consistent hashing
// on the matrix fingerprint, so every matrix lands on the node whose plan
// and tune caches already hold it. It owns the membership (registration +
// health probing) and exposes per-node routing, health and shed counters
// at /metricsz.
type Gateway struct {
	cfg      GatewayConfig
	members  *Membership
	reg      *metrics.Registry
	resolver *keyResolver
	sessions *sessionRegistry
	client   *http.Client

	inflight atomic.Int64

	shed            *metrics.Counter
	noNodes         *metrics.Counter
	failovers       *metrics.Counter
	submitOK        *metrics.Counter
	submit429       *metrics.Counter
	submit422       *metrics.Counter
	badRequests     *metrics.Counter
	sessionsCreated *metrics.Counter
	sessionSteps    *metrics.Counter
	sessionLost     *metrics.Counter
	batchSubmits    *metrics.Counter
	forwardHist     *metrics.Histogram
	routeCounter    func(node string) *metrics.Counter
	failCounter     func(node string) *metrics.Counter
}

// NewGateway creates a gateway with an empty membership. Register nodes,
// then Start the health probes.
func NewGateway(cfg GatewayConfig) *Gateway {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	g := &Gateway{
		cfg:      cfg,
		members:  NewMembership(cfg.Membership, reg),
		reg:      reg,
		resolver: newKeyResolver(cfg.InlineKeyCache),
		sessions: newSessionRegistry(cfg.SessionRegistry),
		client:   cfg.Client,
	}
	if g.client == nil {
		// The default transport keeps only 2 idle connections per host;
		// at fleet rates that churns a TCP connection per forward and the
		// gateway becomes the bottleneck. Keep a deep idle pool per node.
		g.client = &http.Client{
			Timeout: cfg.ForwardTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	g.shed = reg.Counter("gateway_shed_total", "Solves shed with the gateway's own 429 (inflight cap).")
	g.noNodes = reg.Counter("gateway_no_nodes_total", "Solves refused because no healthy node was available.")
	g.failovers = reg.Counter("gateway_failovers_total", "Solves retried on a successor owner after the preferred node failed.")
	g.submitOK = reg.Counter("gateway_submits_total", "Solves accepted by a node (202).")
	g.submit429 = reg.Counter("gateway_node_429_total", "Node 429s propagated upstream with their Retry-After.")
	g.submit422 = reg.Counter("gateway_cert_rejects_total", "Certified-divergent 422s relayed verbatim (never failed over).")
	g.badRequests = reg.Counter("gateway_bad_requests_total", "Solve submissions rejected before routing (body or matrix).")
	g.sessionsCreated = reg.Counter("gateway_sessions_created_total", "Solve sessions created through the gateway (201).")
	g.sessionSteps = reg.Counter("gateway_session_steps_total", "Session steps forwarded to their pinned owner.")
	g.sessionLost = reg.Counter("gateway_session_lost_total", "Session operations answered 410 session-lost (owner dead or state gone).")
	g.batchSubmits = reg.Counter("gateway_batch_submits_total", "Batched solves accepted by a node (202).")
	g.forwardHist = reg.Histogram("gateway_forward_seconds", "Latency of forwarded solve submissions.", nil)
	g.routeCounter = func(node string) *metrics.Counter {
		return reg.Counter("gateway_node_requests_total", "Requests forwarded per node.", "node", node)
	}
	g.failCounter = func(node string) *metrics.Counter {
		return reg.Counter("gateway_node_failures_total", "Forwarding failures per node (transport errors and 5xx).", "node", node)
	}
	reg.GaugeFunc("gateway_inflight", "Solve submissions currently being forwarded.",
		func() float64 { return float64(g.inflight.Load()) })
	reg.GaugeFunc("gateway_max_inflight", "Inflight bound beyond which the gateway sheds.",
		func() float64 { return float64(cfg.MaxInflight) })
	reg.GaugeFunc("gateway_nodes", "Registered nodes.",
		func() float64 { return float64(len(g.members.Nodes())) })
	reg.GaugeFunc("gateway_healthy_nodes", "Nodes currently in the ring.",
		func() float64 { return float64(g.members.HealthyCount()) })
	reg.GaugeFunc("gateway_tracked_sessions", "Sessions in the gateway's routing registry.",
		func() float64 { return float64(g.sessions.len()) })
	return g
}

// Membership exposes the gateway's member set (registration, probing).
func (g *Gateway) Membership() *Membership { return g.members }

// Metrics exposes the gateway's registry (the /metricsz source).
func (g *Gateway) Metrics() *metrics.Registry { return g.reg }

// Start launches the health-probe loop; Close stops it.
func (g *Gateway) Start() { g.members.Start() }

// Close stops the health-probe loop.
func (g *Gateway) Close() { g.members.Stop() }

// gatewayStats is the gateway's /statsz payload.
type gatewayStats struct {
	Nodes        []NodeView `json:"nodes"`
	HealthyNodes int        `json:"healthy_nodes"`
	Inflight     int64      `json:"inflight"`
	MaxInflight  int        `json:"max_inflight"`
	Shed         uint64     `json:"shed"`
	Failovers    uint64     `json:"failovers"`
	Submits      uint64     `json:"submits"`
	Node429      uint64     `json:"node_429"`
	CertRejects  uint64     `json:"cert_rejects"`
	// Sessions/SessionSteps/SessionsLost/Batches mirror the gateway's
	// session and batch counters (same atomics as /metricsz).
	Sessions        uint64 `json:"sessions_created"`
	SessionSteps    uint64 `json:"session_steps"`
	SessionsLost    uint64 `json:"sessions_lost"`
	TrackedSessions int    `json:"tracked_sessions"`
	Batches         uint64 `json:"batches"`
}

// registerRequest is the POST /v1/nodes body.
type registerRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Handler returns the gateway's HTTP API:
//
//	POST   /v1/solve        route a solve to its ring owner (202; job IDs
//	                        come back namespaced "node~id")
//	POST   /v1/batch        route a batched solve the same way (one job)
//	POST   /v1/sessions     route a session to its fingerprint's owner and
//	                        pin it there (201; session IDs namespaced
//	                        "node~id")
//	GET    /v1/sessions     the gateway's tracked-session inventory
//	GET    /v1/sessions/{id}     proxy to the pinned owner (410
//	DELETE /v1/sessions/{id}     session-lost when the owner died)
//	POST   /v1/sessions/{id}/step  forward a step, relaying SSE/chunked
//	                        progress as it streams; never failed over
//	GET    /v1/jobs/{id}    proxy a namespaced job status to its node
//	DELETE /v1/jobs/{id}    proxy a cancellation
//	GET    /v1/nodes        membership with health state
//	POST   /v1/nodes        register a node {"name": ..., "url": ...}
//	DELETE /v1/nodes/{name} deregister a node
//	GET    /healthz         gateway liveness
//	GET    /readyz          200 while at least one node is healthy
//	GET    /statsz          routing/health/shed summary (JSON)
//	GET    /metricsz        the same counters in Prometheus text format
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", g.handleSolve)
	mux.HandleFunc("POST /v1/batch", g.handleBatch)
	mux.HandleFunc("POST /v1/sessions", g.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions", g.handleSessionList)
	mux.HandleFunc("GET /v1/sessions/{id}", g.handleSessionProxy)
	mux.HandleFunc("DELETE /v1/sessions/{id}", g.handleSessionProxy)
	mux.HandleFunc("POST /v1/sessions/{id}/step", g.handleSessionStep)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleJob)
	mux.HandleFunc("GET /v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"nodes":         g.members.Nodes(),
			"healthy_nodes": g.members.HealthyCount(),
		})
	})
	mux.HandleFunc("POST /v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("fleet: decoding register request: %w", err))
			return
		}
		if err := g.members.Register(req.Name, req.URL); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "registered", "name": req.Name})
	})
	mux.HandleFunc("DELETE /v1/nodes/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := g.members.Deregister(r.PathValue("name")); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deregistered"})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if g.members.HealthyCount() == 0 {
			writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("fleet: no healthy nodes"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, gatewayStats{
			Nodes:        g.members.Nodes(),
			HealthyNodes: g.members.HealthyCount(),
			Inflight:     g.inflight.Load(),
			MaxInflight:  g.cfg.MaxInflight,
			Shed:         g.shed.Value(),
			Failovers:    g.failovers.Value(),
			Submits:      g.submitOK.Value(),
			Node429:      g.submit429.Value(),
			CertRejects:  g.submit422.Value(),

			Sessions:        g.sessionsCreated.Value(),
			SessionSteps:    g.sessionSteps.Value(),
			SessionsLost:    g.sessionLost.Value(),
			TrackedSessions: g.sessions.len(),
			Batches:         g.batchSubmits.Value(),
		})
	})
	mux.Handle("GET /metricsz", g.reg.Handler())
	return mux
}

// submitView mirrors the node's submit response so the gateway can
// namespace the job ID before echoing it upstream.
type submitView struct {
	JobID     string `json:"job_id"`
	State     string `json:"state"`
	StatusURL string `json:"status_url"`
	// Node is the fleet member that accepted the job (gateway-added).
	Node string `json:"node,omitempty"`
	// Fingerprint is the routing key the gateway placed the job by
	// (gateway-added; compare with the fingerprint in the job result to
	// verify ring placement).
	Fingerprint string `json:"fingerprint,omitempty"`
}

// handleSolve is the hot path: admission, routing, forwarding, rewrite.
func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	// Admission first: when the gateway itself is saturated, shedding
	// cheaply here protects the fleet (and the gateway's own memory).
	if g.inflight.Add(1) > int64(g.cfg.MaxInflight) {
		g.inflight.Add(-1)
		g.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, fmt.Errorf("fleet: gateway saturated (%d in flight)", g.cfg.MaxInflight))
		return
	}
	defer g.inflight.Add(-1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		g.badRequests.Inc()
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("fleet: reading request: %w", err))
		return
	}
	var req service.SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		g.badRequests.Inc()
		writeErr(w, http.StatusBadRequest, fmt.Errorf("fleet: decoding request: %w", err))
		return
	}
	key, err := g.resolver.RouteKey(req)
	if err != nil {
		g.badRequests.Inc()
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	owners := g.members.Ring().Owners(key, g.cfg.FailoverTries)
	if len(owners) == 0 {
		g.noNodes.Inc()
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("fleet: no healthy nodes"))
		return
	}

	start := time.Now()
	var lastErr error
	for i, name := range owners {
		if i > 0 {
			g.failovers.Inc()
		}
		base, ok := g.members.URL(name)
		if !ok {
			continue // deregistered between lookup and forward
		}
		g.routeCounter(name).Inc()
		resp, err := g.forward(r, http.MethodPost, base+"/v1/solve", body)
		if err != nil {
			g.failCounter(name).Inc()
			g.members.ReportFailure(name, err)
			lastErr = err
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			g.failCounter(name).Inc()
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusAccepted:
			g.submitOK.Inc()
			g.forwardHist.Observe(time.Since(start).Seconds())
			var sv submitView
			if err := json.Unmarshal(respBody, &sv); err != nil || sv.JobID == "" {
				// The node accepted but answered something unexpected;
				// relay it untouched rather than inventing an ID.
				relay(w, resp, respBody)
				return
			}
			sv.JobID = name + "~" + sv.JobID
			sv.StatusURL = "/v1/jobs/" + sv.JobID
			sv.Node = name
			sv.Fingerprint = key
			w.Header().Set("Location", sv.StatusURL)
			writeJSON(w, http.StatusAccepted, sv)
			return
		case resp.StatusCode == http.StatusTooManyRequests:
			// The owner is alive but saturated: propagate its 429 and
			// Retry-After rather than spilling the key to another node —
			// affinity is the whole point of the ring, and the client's
			// backoff is the fleet's admission control.
			g.submit429.Inc()
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			relay(w, resp, respBody)
			return
		case resp.StatusCode == http.StatusUnprocessableEntity:
			// A certified-divergent refusal (422 + certificate body) is
			// deterministic: every replica computes the same verdict from
			// the same matrix, so failing over to a successor owner only
			// wastes a node. Relay the certificate verbatim.
			g.submit422.Inc()
			relay(w, resp, respBody)
			return
		case resp.StatusCode == http.StatusServiceUnavailable:
			// Draining or overloaded listener: treat like a transport
			// failure and try the next owner.
			g.failCounter(name).Inc()
			g.members.ReportFailure(name, fmt.Errorf("solve: %s", resp.Status))
			lastErr = fmt.Errorf("node %s: %s", name, resp.Status)
			continue
		default:
			// 4xx and everything else is the client's conversation with
			// the node; relay verbatim.
			relay(w, resp, respBody)
			return
		}
	}
	g.noNodes.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("fleet: no owner accepted the job")
	}
	writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("fleet: all owners failed: %w", lastErr))
}

// handleJob proxies a namespaced job status or cancellation to the owning
// node. Ejected nodes are still tried: a draining node answers status
// polls until its listener closes.
func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name, rest, ok := strings.Cut(id, "~")
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("fleet: job ID %q is not namespaced (want node~id)", id))
		return
	}
	base, found := g.members.URL(name)
	if !found {
		writeErr(w, http.StatusNotFound, fmt.Errorf("fleet: unknown node %q in job ID", name))
		return
	}
	resp, err := g.forward(r, r.Method, base+"/v1/jobs/"+rest, nil)
	if err != nil {
		g.failCounter(name).Inc()
		writeErr(w, http.StatusBadGateway, fmt.Errorf("fleet: node %s: %w", name, err))
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		writeErr(w, http.StatusBadGateway, fmt.Errorf("fleet: node %s: %w", name, err))
		return
	}
	relay(w, resp, respBody)
}

// forward issues one upstream request with the caller's context.
func (g *Gateway) forward(r *http.Request, method, url string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if h := r.Header.Get("X-Chaos"); h != "" {
		req.Header.Set("X-Chaos", h)
	}
	return g.client.Do(req)
}

// relay copies an upstream response (status, content type, body) to the
// client untouched.
func relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone: nothing useful to do
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// RetryAfterSeconds parses a Retry-After header value (delta-seconds form
// only), defaulting to 1.
func RetryAfterSeconds(h string) int {
	n, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || n < 1 {
		return 1
	}
	return n
}
