package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// switchableNode is a /readyz endpoint whose health can be flipped.
type switchableNode struct {
	ts   *httptest.Server
	down atomic.Bool
}

func newSwitchableNode(t *testing.T) *switchableNode {
	t.Helper()
	n := &switchableNode{}
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(n.ts.Close)
	return n
}

func TestMembershipRegisterValidation(t *testing.T) {
	m := NewMembership(MembershipConfig{}, nil)
	if err := m.Register("n0", "http://127.0.0.1:1"); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := m.Register("n0", "http://127.0.0.1:2"); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := m.Register("bad~name", "http://127.0.0.1:3"); err == nil {
		t.Error("name with reserved '~' accepted")
	}
	if err := m.Register("n1", "not a url"); err == nil {
		t.Error("invalid URL accepted")
	}
	if m.Ring().Len() != 1 {
		t.Errorf("ring has %d members, want 1", m.Ring().Len())
	}
	if err := m.Deregister("n0"); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	if err := m.Deregister("n0"); err == nil {
		t.Error("double deregister accepted")
	}
	if m.Ring().Len() != 0 {
		t.Errorf("ring has %d members after deregister, want 0", m.Ring().Len())
	}
}

// TestMembershipEjectAndReadmit drives the probe loop by hand: a node that
// starts failing its readiness probe is ejected after FailAfter rounds and
// re-admitted after ReviveAfter healthy rounds; the other node never
// leaves the ring.
func TestMembershipEjectAndReadmit(t *testing.T) {
	a, b := newSwitchableNode(t), newSwitchableNode(t)
	m := NewMembership(MembershipConfig{FailAfter: 2, ReviveAfter: 2}, nil)
	for name, n := range map[string]*switchableNode{"a": a, "b": b} {
		if err := m.Register(name, n.ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.HealthyCount(); got != 2 {
		t.Fatalf("healthy = %d after optimistic admission, want 2", got)
	}

	b.down.Store(true)
	m.ProbeOnce()
	if got := m.HealthyCount(); got != 2 {
		t.Fatalf("healthy = %d after 1 failed probe (FailAfter=2), want 2", got)
	}
	m.ProbeOnce()
	if got := m.HealthyCount(); got != 1 {
		t.Fatalf("healthy = %d after 2 failed probes, want 1", got)
	}
	if _, ok := m.Ring().Owner("some-key"); !ok {
		t.Fatal("ring empty after single ejection")
	}
	if owner, _ := m.Ring().Owner("any"); owner != "a" {
		t.Fatalf("survivor ring routes to %q, want a", owner)
	}
	// Ejected nodes stay resolvable for status polls.
	if _, ok := m.URL("b"); !ok {
		t.Fatal("ejected node's URL no longer resolvable")
	}

	b.down.Store(false)
	m.ProbeOnce()
	if got := m.HealthyCount(); got != 1 {
		t.Fatalf("healthy = %d after 1 good probe (ReviveAfter=2), want 1", got)
	}
	m.ProbeOnce()
	if got := m.HealthyCount(); got != 2 {
		t.Fatalf("healthy = %d after recovery, want 2", got)
	}

	views := m.Nodes()
	if len(views) != 2 || !views[0].Healthy || !views[1].Healthy {
		t.Fatalf("node views after recovery: %+v", views)
	}
}

// TestMembershipReportFailure verifies the gateway's in-band failure
// signal ejects a node without waiting for the probe loop.
func TestMembershipReportFailure(t *testing.T) {
	a := newSwitchableNode(t)
	m := NewMembership(MembershipConfig{FailAfter: 2, ReviveAfter: 1}, nil)
	if err := m.Register("a", a.ts.URL); err != nil {
		t.Fatal(err)
	}
	m.ReportFailure("a", nil)
	m.ReportFailure("a", nil)
	if got := m.HealthyCount(); got != 0 {
		t.Fatalf("healthy = %d after 2 reported failures, want 0", got)
	}
	// The node is actually fine (transient network blip): one good probe
	// round re-admits it at ReviveAfter=1.
	m.ProbeOnce()
	if got := m.HealthyCount(); got != 1 {
		t.Fatalf("healthy = %d after good probe, want 1", got)
	}
	// Unknown names are ignored, not a panic.
	m.ReportFailure("ghost", nil)
}

// TestMembershipProbeLoop exercises Start/Stop with a real ticker.
func TestMembershipProbeLoop(t *testing.T) {
	a := newSwitchableNode(t)
	m := NewMembership(MembershipConfig{ProbeInterval: 5 * time.Millisecond, FailAfter: 2, ReviveAfter: 2}, nil)
	if err := m.Register("a", a.ts.URL); err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()

	a.down.Store(true)
	deadline := time.Now().Add(3 * time.Second)
	for m.HealthyCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("node not ejected by the probe loop")
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.down.Store(false)
	for m.HealthyCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("node not re-admitted by the probe loop")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
