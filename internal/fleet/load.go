package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Blend is the request mix of a load run, as relative weights (they are
// normalized; all-zero means solve-only). "Tune" submissions set
// "tune": "auto" (exercising the node-side tuning cache), "Devices"
// submissions route onto the live multi-device executor, and "Doomed"
// submissions post certified-divergent matrices with "certify": "enforce"
// — the fleet must answer each with a fast 422, never silently burn it.
// "Session" arrivals create a solve session, stream SessionSteps
// warm-started steps through it and close it — exercising the sticky
// session routing path; any 410 "session-lost" is counted, not errored
// (it is the honest answer across node churn, and the -strict no-kill
// contract gates it to zero). "Batch" arrivals post a many-small-systems
// batch occupying one queue slot.
type Blend struct {
	Solve   float64 `json:"solve"`
	Tune    float64 `json:"tune"`
	Devices float64 `json:"devices"`
	Doomed  float64 `json:"doomed"`
	Session float64 `json:"session"`
	Batch   float64 `json:"batch"`
}

func (b Blend) total() float64 {
	return b.Solve + b.Tune + b.Devices + b.Doomed + b.Session + b.Batch
}

// LoadConfig configures one open-loop load run against a gateway or a
// single node. Zero values select the defaults.
type LoadConfig struct {
	// BaseURL is the target (gateway or solverd) base URL.
	BaseURL string
	// Client issues the requests (default: 30s-timeout client).
	Client *http.Client
	// Rate is the open-loop arrival rate in requests/second (default 50).
	// Arrivals are scheduled on a fixed clock and never wait for
	// completions — exactly the millions-of-users regime where clients do
	// not coordinate with the server.
	Rate float64
	// Duration is how long arrivals are generated (default 5s).
	Duration time.Duration
	// Corpus is the matrix population (required).
	Corpus []CorpusEntry
	// DoomedCorpus is the population of "doomed" blend submissions
	// (default: a small BuildDoomedCorpus when Blend.Doomed > 0).
	DoomedCorpus []CorpusEntry
	// ZipfS is the Zipf popularity exponent over the corpus: entry i
	// carries weight 1/(i+1)^ZipfS (default 1.1 — a few hot matrices, a
	// long tail).
	ZipfS float64
	// Blend is the request mix (default solve-only).
	Blend Blend
	// Seed drives entry and kind selection (default 1).
	Seed int64
	// Solver parameters applied to every submission.
	BlockSize      int     // default 64
	LocalIters     int     // default 4
	MaxGlobalIters int     // default 1000
	Tolerance      float64 // default 1e-6
	// Devices is the device count of "devices" blend submissions
	// (default 2).
	Devices int
	// SessionSteps is how many warm-started steps each "session" blend
	// arrival drives before closing its session (default 3).
	SessionSteps int
	// BatchSystems is how many right-hand sides each "batch" blend
	// arrival packs into one submission (default 4).
	BatchSystems int
	// PollInterval is the job-status poll period (default 10ms).
	PollInterval time.Duration
	// CompletionTimeout bounds how long one accepted job is polled after
	// submission (default 60s).
	CompletionTimeout time.Duration
	// DrainGrace bounds how long the run waits for in-flight jobs after
	// the last arrival (default CompletionTimeout).
	DrainGrace time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Client == nil {
		// Submissions and status polls for every in-flight job share this
		// client; the default transport's 2 idle connections per host would
		// serialize them behind TCP handshakes at open-loop rates.
		c.Client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.1
	}
	if c.Blend.total() <= 0 {
		c.Blend = Blend{Solve: 1}
	}
	if c.Blend.Doomed > 0 && len(c.DoomedCorpus) == 0 {
		c.DoomedCorpus = BuildDoomedCorpus(4, 96, 160)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64
	}
	if c.LocalIters <= 0 {
		c.LocalIters = 4
	}
	if c.MaxGlobalIters <= 0 {
		c.MaxGlobalIters = 1000
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
	if c.Devices <= 0 {
		c.Devices = 2
	}
	if c.SessionSteps <= 0 {
		c.SessionSteps = 3
	}
	if c.BatchSystems <= 0 {
		c.BatchSystems = 4
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * time.Millisecond
	}
	if c.CompletionTimeout <= 0 {
		c.CompletionTimeout = 60 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = c.CompletionTimeout
	}
	return c
}

// LoadReport is the outcome of one load run. Latencies are in seconds.
type LoadReport struct {
	Offered  int `json:"offered"`  // arrivals generated
	Accepted int `json:"accepted"` // 202 from the target
	Shed     int `json:"shed"`     // 429 (gateway or node)
	Errors   int `json:"errors"`   // any other status or transport error
	// Completed / FailedJobs / TimedOut partition the accepted jobs:
	// reached "done", reached a failed/canceled terminal state, or never
	// went terminal within CompletionTimeout.
	Completed  int `json:"completed"`
	FailedJobs int `json:"failed_jobs"`
	TimedOut   int `json:"timed_out"`
	// CertRejected counts doomed submissions answered with the expected
	// 422 + certificate; DoomedAdmitted counts doomed submissions a node
	// accepted (202) instead of refusing — the silent-burn failure mode
	// -strict gates to zero.
	CertRejected   int `json:"cert_rejected"`
	DoomedAdmitted int `json:"doomed_admitted"`

	// Sessions / SessionSteps / SessionsLost account the "session" blend
	// arrivals separately from the job counters: sessions created (201),
	// successful warm-started steps across all of them, and steps answered
	// with a 410 "session-lost" (the structured loss the gateway reports
	// when a session's owning node died — expected across kills, gated to
	// zero by -fail-on-session-lost in a no-kill run).
	Sessions     int `json:"sessions,omitempty"`
	SessionSteps int `json:"session_steps,omitempty"`
	SessionsLost int `json:"sessions_lost"`
	// BatchJobs counts accepted "batch" blend submissions (each is a
	// regular job, so it also counts into Accepted / Completed);
	// BatchSystemFailures sums per-system failures across completed
	// batches — a batch job can be "done" with individual systems failed.
	BatchJobs           int `json:"batch_jobs,omitempty"`
	BatchSystemFailures int `json:"batch_system_failures"`

	DurationSeconds float64 `json:"duration_seconds"` // arrival window
	WallSeconds     float64 `json:"wall_seconds"`     // window + drain
	// Throughput is completed jobs per second of the arrival window — the
	// number a capacity plan cares about.
	Throughput float64 `json:"throughput_jobs_per_sec"`

	// Submit latencies cover POST /v1/solve round trips (routing +
	// admission); end-to-end latencies cover submit through terminal
	// "done" state, accepted jobs only.
	SubmitP50  float64 `json:"submit_p50_seconds"`
	SubmitP99  float64 `json:"submit_p99_seconds"`
	SubmitP999 float64 `json:"submit_p999_seconds"`
	E2EP50     float64 `json:"e2e_p50_seconds"`
	E2EP99     float64 `json:"e2e_p99_seconds"`
	E2EP999    float64 `json:"e2e_p999_seconds"`
	// Reject latencies cover doomed submissions' POST round trips ending
	// in 422 — the milliseconds the certificate answers in, against the
	// seconds a burned solve would take.
	RejectP50 float64 `json:"reject_p50_seconds,omitempty"`
	RejectP99 float64 `json:"reject_p99_seconds,omitempty"`
	// Step latencies cover session step round trips (the solve runs
	// inline in the response, warm-started from the previous iterate).
	StepP50 float64 `json:"step_p50_seconds,omitempty"`
	StepP99 float64 `json:"step_p99_seconds,omitempty"`

	ShedRate float64 `json:"shed_rate"` // shed / offered

	ByKind map[string]int `json:"by_kind"` // offered per blend kind

	// ByNode counts accepted jobs per serving node (gateway targets only —
	// direct solverd submissions carry no node attribution).
	ByNode map[string]int `json:"by_node,omitempty"`
	// AffinityViolations counts accepted jobs whose fingerprint had
	// already been served by a *different* node this run. Nonzero only
	// across rebalances (node death/recovery) — steady-state consistent
	// hashing pins each fingerprint to one node.
	AffinityViolations int `json:"affinity_violations"`

	// ErrorSamples holds the first few distinct error strings for
	// diagnosis.
	ErrorSamples []string `json:"error_samples,omitempty"`

	// Metrics optionally snapshots the target's /metricsz counters at the
	// end of the run (see ScrapeMetrics), keyed "name{labels}".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// zipfPicker samples corpus indices with probability ∝ 1/(i+1)^s via the
// inverse CDF — deterministic given the rng, no rejection loop.
type zipfPicker struct {
	cum []float64
}

func newZipfPicker(n int, s float64) *zipfPicker {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipfPicker{cum: cum}
}

func (z *zipfPicker) pick(u float64) int {
	return sort.SearchFloat64s(z.cum, u)
}

// loadState aggregates worker outcomes under one lock.
type loadState struct {
	mu         sync.Mutex
	rep        LoadReport
	submitLats []float64
	e2eLats    []float64
	rejectLats []float64
	stepLats   []float64
	nodeByFP   map[string]string
	errSeen    map[string]bool
}

// RunLoad executes one open-loop load run and reports latency,
// throughput and outcome counts. ctx cancellation stops arrivals early
// (already-submitted jobs are still awaited within DrainGrace).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Corpus) == 0 {
		return nil, fmt.Errorf("fleet: load run needs a non-empty corpus")
	}
	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), 0x10adc0de))
	zipf := newZipfPicker(len(cfg.Corpus), cfg.ZipfS)
	blendTotal := cfg.Blend.total()

	st := &loadState{
		nodeByFP: make(map[string]string),
		errSeen:  make(map[string]bool),
	}
	st.rep.ByKind = make(map[string]int)
	st.rep.ByNode = make(map[string]int)

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	next := start

arrivals:
	for time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			break arrivals
		default:
		}
		entry := &cfg.Corpus[zipf.pick(rng.Float64())]
		kind := "solve"
		b := cfg.Blend
		switch u := rng.Float64() * blendTotal; {
		case u < b.Tune:
			kind = "tune"
		case u < b.Tune+b.Devices:
			kind = "devices"
		case u < b.Tune+b.Devices+b.Doomed:
			kind = "doomed"
			entry = &cfg.DoomedCorpus[rng.IntN(len(cfg.DoomedCorpus))]
		case u < b.Tune+b.Devices+b.Doomed+b.Session:
			kind = "session"
		case u < b.Tune+b.Devices+b.Doomed+b.Session+b.Batch:
			kind = "batch"
		}
		st.mu.Lock()
		st.rep.Offered++
		st.rep.ByKind[kind]++
		st.mu.Unlock()

		wg.Add(1)
		go func() {
			defer wg.Done()
			if kind == "session" {
				oneSession(ctx, cfg, entry, st)
				return
			}
			oneRequest(ctx, cfg, entry, kind, st)
		}()

		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	arrivalWindow := time.Since(start)

	// Open loop ends here; wait for stragglers within the grace bound.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.DrainGrace):
	case <-ctx.Done():
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	rep := st.rep
	rep.DurationSeconds = arrivalWindow.Seconds()
	rep.WallSeconds = time.Since(start).Seconds()
	if rep.DurationSeconds > 0 {
		rep.Throughput = float64(rep.Completed) / rep.DurationSeconds
	}
	if rep.Offered > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Offered)
	}
	rep.SubmitP50 = percentile(st.submitLats, 0.50)
	rep.SubmitP99 = percentile(st.submitLats, 0.99)
	rep.SubmitP999 = percentile(st.submitLats, 0.999)
	rep.E2EP50 = percentile(st.e2eLats, 0.50)
	rep.E2EP99 = percentile(st.e2eLats, 0.99)
	rep.E2EP999 = percentile(st.e2eLats, 0.999)
	rep.RejectP50 = percentile(st.rejectLats, 0.50)
	rep.RejectP99 = percentile(st.rejectLats, 0.99)
	rep.StepP50 = percentile(st.stepLats, 0.50)
	rep.StepP99 = percentile(st.stepLats, 0.99)
	return &rep, nil
}

// oneRequest submits one solve and, when accepted, polls it to a terminal
// state, recording every outcome into st.
func oneRequest(ctx context.Context, cfg LoadConfig, entry *CorpusEntry, kind string, st *loadState) {
	body := map[string]any{
		"matrix_market":    entry.MatrixMarket,
		"max_global_iters": cfg.MaxGlobalIters,
		"tolerance":        cfg.Tolerance,
		"seed":             1,
	}
	switch kind {
	case "tune":
		body["tune"] = "auto"
	case "doomed":
		// Enforce-mode admission of a certified-divergent matrix: the
		// expected answer is a fast 422, not a burned iteration budget.
		body["certify"] = "enforce"
		body["block_size"] = cfg.BlockSize
		body["local_iters"] = cfg.LocalIters
	case "devices":
		// The multi-device engine needs at least one block per device, so
		// cap the block size at N/devices for small corpus entries.
		bs := cfg.BlockSize
		if maxBS := entry.N / cfg.Devices; bs > maxBS {
			bs = maxBS
		}
		if bs < 1 {
			bs = 1
		}
		body["block_size"] = bs
		body["local_iters"] = cfg.LocalIters
		body["devices"] = cfg.Devices
	case "batch":
		// One submission, BatchSystems small systems sharing the entry's
		// structural plan — one queue slot for all of them.
		rhs := make([][]float64, cfg.BatchSystems)
		for j := range rhs {
			rhs[j] = loadRHS(entry.N, j+1)
		}
		body["rhs"] = rhs
		body["block_size"] = cfg.BlockSize
		body["local_iters"] = cfg.LocalIters
	default:
		body["block_size"] = cfg.BlockSize
		body["local_iters"] = cfg.LocalIters
	}
	payload, err := json.Marshal(body)
	if err != nil {
		st.recordError(fmt.Sprintf("marshal: %v", err))
		return
	}
	endpoint := cfg.BaseURL + "/v1/solve"
	if kind == "batch" {
		endpoint = cfg.BaseURL + "/v1/batch"
	}

	submitStart := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(payload))
	if err != nil {
		st.recordError(fmt.Sprintf("request: %v", err))
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		st.recordError(fmt.Sprintf("submit: %v", err))
		return
	}
	respBody, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if readErr != nil {
		respBody = nil
	}
	resp.Body.Close()
	submitLat := time.Since(submitStart).Seconds()

	switch resp.StatusCode {
	case http.StatusAccepted:
		if kind == "doomed" {
			// A node silently admitted a certified-divergent matrix: the
			// burn -strict exists to catch. Counted, never polled.
			st.mu.Lock()
			st.rep.DoomedAdmitted++
			st.mu.Unlock()
			return
		}
		// fall through to polling below
	case http.StatusUnprocessableEntity:
		if kind == "doomed" {
			st.mu.Lock()
			st.rep.CertRejected++
			st.submitLats = append(st.submitLats, submitLat)
			st.rejectLats = append(st.rejectLats, submitLat)
			st.mu.Unlock()
			return
		}
		st.recordError(fmt.Sprintf("submit status 422: %s", truncate(string(respBody), 160)))
		return
	case http.StatusTooManyRequests:
		st.mu.Lock()
		st.rep.Shed++
		st.submitLats = append(st.submitLats, submitLat)
		st.mu.Unlock()
		return
	default:
		st.recordError(fmt.Sprintf("submit status %d: %s", resp.StatusCode, truncate(string(respBody), 160)))
		return
	}

	var sv submitView
	if err := json.Unmarshal(respBody, &sv); err != nil || sv.StatusURL == "" {
		st.recordError(fmt.Sprintf("submit response: %v", err))
		return
	}
	st.mu.Lock()
	st.rep.Accepted++
	if kind == "batch" {
		st.rep.BatchJobs++
	}
	st.submitLats = append(st.submitLats, submitLat)
	if sv.Node != "" {
		st.rep.ByNode[sv.Node]++
		if prev, ok := st.nodeByFP[entry.Fingerprint]; ok && prev != sv.Node {
			st.rep.AffinityViolations++
			st.nodeByFP[entry.Fingerprint] = sv.Node
		} else if !ok {
			st.nodeByFP[entry.Fingerprint] = sv.Node
		}
	}
	st.mu.Unlock()

	state, batchFailed, err := pollJob(ctx, cfg, sv.StatusURL)
	e2e := time.Since(submitStart).Seconds()
	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case err != nil:
		st.rep.TimedOut++
	case state == "done":
		st.rep.Completed++
		st.rep.BatchSystemFailures += batchFailed
		st.e2eLats = append(st.e2eLats, e2e)
	default:
		st.rep.FailedJobs++
	}
}

// loadRHS builds the j-th deterministic right-hand side for an n-system.
func loadRHS(n, j int) []float64 {
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1 + 0.01*float64(j)*float64(i%5)
	}
	return rhs
}

// oneSession drives one "session" blend arrival: create a session for the
// entry, run SessionSteps warm-started steps, close it. A 410 on any step
// or on the close is counted as a session loss — the structured answer
// the gateway gives when the owning node died — and ends the session; any
// other non-200 is an error.
func oneSession(ctx context.Context, cfg LoadConfig, entry *CorpusEntry, st *loadState) {
	create := map[string]any{
		"matrix_market":    entry.MatrixMarket,
		"block_size":       cfg.BlockSize,
		"local_iters":      cfg.LocalIters,
		"max_global_iters": cfg.MaxGlobalIters,
		"tolerance":        cfg.Tolerance,
		"seed":             1,
	}
	submitStart := time.Now()
	status, respBody, err := postLoadJSON(ctx, cfg, "/v1/sessions", create)
	if err != nil {
		st.recordError(fmt.Sprintf("session create: %v", err))
		return
	}
	submitLat := time.Since(submitStart).Seconds()
	switch status {
	case http.StatusCreated:
	case http.StatusTooManyRequests:
		st.mu.Lock()
		st.rep.Shed++
		st.submitLats = append(st.submitLats, submitLat)
		st.mu.Unlock()
		return
	default:
		st.recordError(fmt.Sprintf("session create status %d: %s", status, truncate(string(respBody), 160)))
		return
	}
	var view struct {
		ID   string `json:"id"`
		Node string `json:"node"`
	}
	if err := json.Unmarshal(respBody, &view); err != nil || view.ID == "" {
		st.recordError(fmt.Sprintf("session create response: %v", err))
		return
	}
	st.mu.Lock()
	st.rep.Sessions++
	st.submitLats = append(st.submitLats, submitLat)
	if view.Node != "" {
		st.rep.ByNode[view.Node]++
	}
	st.mu.Unlock()

	stepPath := "/v1/sessions/" + view.ID + "/step"
	for k := 1; k <= cfg.SessionSteps; k++ {
		stepStart := time.Now()
		status, respBody, err := postLoadJSON(ctx, cfg, stepPath, map[string]any{"rhs": loadRHS(entry.N, k)})
		if err != nil {
			st.recordError(fmt.Sprintf("session step: %v", err))
			return
		}
		switch status {
		case http.StatusOK:
			st.mu.Lock()
			st.rep.SessionSteps++
			st.stepLats = append(st.stepLats, time.Since(stepStart).Seconds())
			st.mu.Unlock()
		case http.StatusGone:
			st.mu.Lock()
			st.rep.SessionsLost++
			st.mu.Unlock()
			return
		default:
			st.recordError(fmt.Sprintf("session step status %d: %s", status, truncate(string(respBody), 160)))
			return
		}
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, cfg.BaseURL+"/v1/sessions/"+view.ID, nil)
	if err != nil {
		return
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		st.recordError(fmt.Sprintf("session close: %v", err))
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		st.mu.Lock()
		st.rep.SessionsLost++
		st.mu.Unlock()
	} else if resp.StatusCode != http.StatusOK {
		st.recordError(fmt.Sprintf("session close status %d", resp.StatusCode))
	}
}

// postLoadJSON posts one JSON body and returns the status and (bounded)
// response body.
func postLoadJSON(ctx context.Context, cfg LoadConfig, path string, body any) (int, []byte, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return resp.StatusCode, respBody, nil
}

// pollJob polls a status URL until the job is terminal or the completion
// timeout expires. For batch jobs the terminal view carries a per-system
// summary; its failure count is returned alongside the state (a batch can
// be "done" with individual systems failed).
func pollJob(ctx context.Context, cfg LoadConfig, statusURL string) (string, int, error) {
	deadline := time.Now().Add(cfg.CompletionTimeout)
	for {
		if time.Now().After(deadline) {
			return "", 0, fmt.Errorf("fleet: job not terminal within %s", cfg.CompletionTimeout)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+statusURL, nil)
		if err != nil {
			return "", 0, err
		}
		resp, err := cfg.Client.Do(req)
		if err == nil && resp.StatusCode == http.StatusOK {
			var view struct {
				State  string `json:"state"`
				Result *struct {
					Batch *struct {
						Failed int `json:"failed"`
					} `json:"batch"`
				} `json:"result"`
			}
			err = json.NewDecoder(resp.Body).Decode(&view)
			resp.Body.Close()
			if err == nil {
				switch view.State {
				case "done", "failed", "canceled":
					failed := 0
					if view.Result != nil && view.Result.Batch != nil {
						failed = view.Result.Batch.Failed
					}
					return view.State, failed, nil
				}
			}
		} else if resp != nil {
			resp.Body.Close()
		}
		select {
		case <-ctx.Done():
			return "", 0, ctx.Err()
		case <-time.After(cfg.PollInterval):
		}
	}
}

func (st *loadState) recordError(msg string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.rep.Errors++
	if len(st.rep.ErrorSamples) < 8 && !st.errSeen[msg] {
		st.errSeen[msg] = true
		st.rep.ErrorSamples = append(st.rep.ErrorSamples, msg)
	}
}

// percentile returns the q-quantile of samples (nearest-rank on a sorted
// copy), or 0 when empty.
func percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// ScrapeMetrics fetches a /metricsz endpoint and parses the Prometheus
// text exposition into a flat map keyed "name{labels}" (histogram series
// keep their _bucket/_sum/_count suffixes). Comment and malformed lines
// are skipped.
func ScrapeMetrics(client *http.Client, url string) (map[string]float64, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: scraping %s: %s", url, resp.Status)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}
