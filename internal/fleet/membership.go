package fleet

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// MembershipConfig configures node registration and health probing. Zero
// values select the defaults.
type MembershipConfig struct {
	// ProbeInterval is the period of the health-probe loop (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one GET /readyz probe (default 2s).
	ProbeTimeout time.Duration
	// FailAfter ejects a node after this many consecutive probe (or
	// forwarding) failures (default 2).
	FailAfter int
	// ReviveAfter re-admits an ejected node after this many consecutive
	// probe successes (default 2).
	ReviveAfter int
	// Replicas is the ring's virtual-node count per member (default
	// DefaultReplicas).
	Replicas int
	// Client issues the probes (default: a client honoring ProbeTimeout).
	Client *http.Client
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.ReviveAfter <= 0 {
		c.ReviveAfter = 2
	}
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	return c
}

// node is one registered member and its health bookkeeping.
type node struct {
	name string
	url  string // base URL, no trailing slash

	healthy    bool
	consecFail int
	consecOK   int
	lastProbe  time.Time
	lastErr    string

	probeFails  *metrics.Counter
	ejections   *metrics.Counter
	readmits    *metrics.Counter
	healthGauge *metrics.Gauge
}

// NodeView is the serializable state of one member (the GET /v1/nodes
// payload element).
type NodeView struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// ConsecutiveFailures / ConsecutiveSuccesses are the probe streaks the
	// eject / re-admit thresholds compare against.
	ConsecutiveFailures  int       `json:"consecutive_failures"`
	ConsecutiveSuccesses int       `json:"consecutive_successes"`
	LastProbe            time.Time `json:"last_probe,omitzero"`
	LastError            string    `json:"last_error,omitempty"`
}

// Membership tracks the registered nodes, probes their readiness, and
// keeps the consistent-hash ring equal to the healthy subset. The ring
// rebalance is deterministic: it is a pure function of which nodes are
// healthy, never of probe timing.
type Membership struct {
	cfg    MembershipConfig
	ring   *Ring
	client *http.Client
	reg    *metrics.Registry

	mu    sync.Mutex
	nodes map[string]*node

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewMembership creates an empty membership whose per-node health
// counters register into reg (nil: a private registry). Call Start to
// begin probing.
func NewMembership(cfg MembershipConfig, reg *metrics.Registry) *Membership {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	return &Membership{
		cfg:    cfg,
		ring:   NewRing(cfg.Replicas),
		client: client,
		reg:    reg,
		nodes:  make(map[string]*node),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Ring exposes the healthy-set ring (shared, live — the gateway routes
// against it directly).
func (m *Membership) Ring() *Ring { return m.ring }

// Register adds a node by name and base URL and admits it to the ring
// optimistically: a dead node is ejected after FailAfter failed probes,
// and the gateway's forwarding failover covers the window in between.
func (m *Membership) Register(name, baseURL string) error {
	if err := validateNodeName(name); err != nil {
		return err
	}
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("fleet: node %s: invalid base URL %q", name, baseURL)
	}
	base := u.Scheme + "://" + u.Host + u.Path
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[name]; ok {
		return fmt.Errorf("fleet: node %s already registered", name)
	}
	n := &node{
		name:        name,
		url:         base,
		healthy:     true,
		probeFails:  m.reg.Counter("fleet_probe_failures_total", "Failed readiness probes per node.", "node", name),
		ejections:   m.reg.Counter("fleet_ejections_total", "Times a node was ejected from the ring.", "node", name),
		readmits:    m.reg.Counter("fleet_readmissions_total", "Times an ejected node was re-admitted.", "node", name),
		healthGauge: m.reg.Gauge("fleet_node_healthy", "1 while the node is in the ring, else 0.", "node", name),
	}
	n.healthGauge.Set(1)
	m.nodes[name] = n
	m.ring.Add(name)
	return nil
}

// Deregister removes a node entirely (ring and registry of members).
func (m *Membership) Deregister(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return fmt.Errorf("fleet: unknown node %q", name)
	}
	n.healthGauge.Set(0)
	delete(m.nodes, name)
	m.ring.Remove(name)
	return nil
}

// URL returns the base URL of a registered node (healthy or not — status
// polls for accepted jobs still route to ejected nodes while reachable).
func (m *Membership) URL(name string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return "", false
	}
	return n.url, true
}

// Nodes returns the members sorted by name.
func (m *Membership) Nodes() []NodeView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeView, 0, len(m.nodes))
	for _, n := range m.nodes {
		out = append(out, NodeView{
			Name:                 n.name,
			URL:                  n.url,
			Healthy:              n.healthy,
			ConsecutiveFailures:  n.consecFail,
			ConsecutiveSuccesses: n.consecOK,
			LastProbe:            n.lastProbe,
			LastError:            n.lastErr,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HealthyCount returns how many members are currently in the ring.
func (m *Membership) HealthyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := 0
	for _, n := range m.nodes {
		if n.healthy {
			c++
		}
	}
	return c
}

// ReportFailure records a forwarding failure against a node — the
// gateway's in-band health signal. It counts toward the same consecutive-
// failure streak as probe failures, so a node that drops mid-burst is
// ejected without waiting for the probe loop to notice.
func (m *Membership) ReportFailure(name string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return
	}
	msg := "forwarding failure"
	if err != nil {
		msg = err.Error()
	}
	m.recordFailureLocked(n, msg)
}

// Start launches the probe loop. Stop terminates it.
func (m *Membership) Start() {
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.ProbeOnce()
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it to exit.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// ProbeOnce probes every member once, concurrently, and applies the
// eject/re-admit thresholds. Exported so tests (and the gateway's
// readiness handler) can force a synchronous round.
func (m *Membership) ProbeOnce() {
	m.mu.Lock()
	targets := make([]*node, 0, len(m.nodes))
	for _, n := range m.nodes {
		targets = append(targets, n)
	}
	m.mu.Unlock()

	var wg sync.WaitGroup
	for _, n := range targets {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			err := m.probe(n.url)
			m.mu.Lock()
			defer m.mu.Unlock()
			// The node may have been deregistered while the probe flew.
			if m.nodes[n.name] != n {
				return
			}
			n.lastProbe = time.Now()
			if err != nil {
				m.recordFailureLocked(n, err.Error())
				return
			}
			n.lastErr = ""
			n.consecFail = 0
			n.consecOK++
			if !n.healthy && n.consecOK >= m.cfg.ReviveAfter {
				n.healthy = true
				n.healthGauge.Set(1)
				n.readmits.Inc()
				m.ring.Add(n.name)
			}
		}(n)
	}
	wg.Wait()
}

// probe checks one node's readiness: GET /readyz must answer 200. A
// draining node answers 503 there (while staying alive on /healthz), so
// it leaves the ring before its listener goes away.
func (m *Membership) probe(base string) error {
	resp, err := m.client.Get(base + "/readyz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: %s", resp.Status)
	}
	return nil
}

// recordFailureLocked applies one failure to a node's streak and ejects
// at the threshold. Callers hold m.mu.
func (m *Membership) recordFailureLocked(n *node, msg string) {
	n.lastErr = msg
	n.consecOK = 0
	n.consecFail++
	n.probeFails.Inc()
	if n.healthy && n.consecFail >= m.cfg.FailAfter {
		n.healthy = false
		n.healthGauge.Set(0)
		n.ejections.Inc()
		m.ring.Remove(n.name)
	}
}
