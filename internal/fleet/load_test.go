package fleet

import (
	"context"
	"testing"
	"time"

	"repro/internal/service"
)

func TestBuildCorpusDeterministicAndDistinct(t *testing.T) {
	a := BuildCorpus(16, 24, 96)
	b := BuildCorpus(16, 24, 96)
	fps := map[string]bool{}
	for i := range a {
		if a[i].Fingerprint != b[i].Fingerprint || a[i].MatrixMarket != b[i].MatrixMarket {
			t.Fatalf("corpus entry %d not deterministic", i)
		}
		if fps[a[i].Fingerprint] {
			t.Fatalf("corpus entry %d duplicates a fingerprint", i)
		}
		fps[a[i].Fingerprint] = true
		if a[i].N < 24 || a[i].N > 96 {
			t.Fatalf("corpus entry %d has dimension %d outside [24, 96]", i, a[i].N)
		}
	}
}

func TestZipfPickerSkew(t *testing.T) {
	z := newZipfPicker(100, 1.1)
	// The head of the distribution must dominate: entry 0 alone carries
	// more probability than entries 50..99 combined.
	headP := z.cum[0]
	tailP := z.cum[99] - z.cum[49]
	if headP <= tailP {
		t.Errorf("zipf head p=%.3f not heavier than tail p=%.3f", headP, tailP)
	}
	if got := z.pick(0.0); got != 0 {
		t.Errorf("pick(0) = %d, want 0", got)
	}
	if got := z.pick(0.9999999); got != 99 {
		t.Errorf("pick(~1) = %d, want 99", got)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{5, 1, 4, 2, 3}
	if p := percentile(s, 0.5); p != 3 {
		t.Errorf("p50 = %v, want 3", p)
	}
	if p := percentile(s, 0.99); p != 5 {
		t.Errorf("p99 = %v, want 5", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %v, want 0", p)
	}
}

// TestRunLoadAgainstFleet drives the open-loop harness at a real 2-node
// fleet and checks the report's accounting invariants.
func TestRunLoadAgainstFleet(t *testing.T) {
	_, ts, _ := startFleet(t, 2, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 64})
	corpus := BuildCorpus(8, 24, 48)

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:        ts.URL,
		Rate:           200,
		Duration:       500 * time.Millisecond,
		Corpus:         corpus,
		BlockSize:      16,
		LocalIters:     2,
		MaxGlobalIters: 300,
		Tolerance:      1e-6,
		PollInterval:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 {
		t.Fatal("no arrivals generated")
	}
	if rep.Accepted+rep.Shed+rep.Errors != rep.Offered {
		t.Errorf("accounting broken: accepted %d + shed %d + errors %d != offered %d",
			rep.Accepted, rep.Shed, rep.Errors, rep.Offered)
	}
	if rep.Errors != 0 {
		t.Errorf("errors in steady state: %d (%v)", rep.Errors, rep.ErrorSamples)
	}
	if rep.Completed+rep.FailedJobs+rep.TimedOut != rep.Accepted {
		t.Errorf("job accounting broken: completed %d + failed %d + timedout %d != accepted %d",
			rep.Completed, rep.FailedJobs, rep.TimedOut, rep.Accepted)
	}
	if rep.Completed == 0 {
		t.Error("no job completed")
	}
	if rep.AffinityViolations != 0 {
		t.Errorf("affinity violations in steady state: %d", rep.AffinityViolations)
	}
	if rep.Completed > 0 && (rep.E2EP50 <= 0 || rep.E2EP99 < rep.E2EP50) {
		t.Errorf("implausible e2e percentiles: p50=%v p99=%v", rep.E2EP50, rep.E2EP99)
	}
	total := 0
	for _, n := range rep.ByNode {
		total += n
	}
	if total != rep.Accepted {
		t.Errorf("by-node attribution %d != accepted %d", total, rep.Accepted)
	}
}

// TestRunLoadBlend checks that tune and devices arrivals are generated and
// complete against a real node.
func TestRunLoadBlend(t *testing.T) {
	_, ts, _ := startFleet(t, 1, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 64})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:        ts.URL,
		Rate:           60,
		Duration:       400 * time.Millisecond,
		Corpus:         BuildCorpus(3, 24, 32),
		Blend:          Blend{Solve: 1, Tune: 1, Devices: 1},
		BlockSize:      8,
		LocalIters:     2,
		MaxGlobalIters: 200,
		Tolerance:      1e-6,
		PollInterval:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("blend run errors: %v", rep.ErrorSamples)
	}
	// Every blend kind must actually work against small corpus entries:
	// tune must fall back to the single-block plan when the grid exceeds
	// n, and devices submissions must cap the block size at n/devices.
	if rep.FailedJobs != 0 {
		t.Errorf("blend run failed %d jobs (tune or devices kind broken on small matrices?)", rep.FailedJobs)
	}
	kinds := 0
	for _, k := range []string{"solve", "tune", "devices"} {
		if rep.ByKind[k] > 0 {
			kinds++
		}
	}
	if kinds < 2 {
		t.Errorf("blend produced %d kinds, want >= 2 (by_kind=%v)", kinds, rep.ByKind)
	}
	if rep.Completed == 0 {
		t.Error("no blended job completed")
	}
}

// TestRunLoadDoomedBlend drives a doomed-heavy blend against a real node:
// every doomed arrival must come back as a 422 certificate rejection (or a
// 429 shed), never as a silent admission, and the rejections must be fast.
func TestRunLoadDoomedBlend(t *testing.T) {
	_, ts, _ := startFleet(t, 1, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 64})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:        ts.URL,
		Rate:           60,
		Duration:       400 * time.Millisecond,
		Corpus:         BuildCorpus(3, 24, 32),
		DoomedCorpus:   BuildDoomedCorpus(2, 96, 128),
		Blend:          Blend{Solve: 1, Doomed: 2},
		BlockSize:      8,
		LocalIters:     2,
		MaxGlobalIters: 200,
		Tolerance:      1e-6,
		PollInterval:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("doomed blend errors: %v", rep.ErrorSamples)
	}
	if rep.ByKind["doomed"] == 0 {
		t.Fatalf("no doomed arrival generated (by_kind=%v)", rep.ByKind)
	}
	if rep.DoomedAdmitted != 0 {
		t.Errorf("%d doomed submissions silently admitted — enforce must refuse them", rep.DoomedAdmitted)
	}
	if rep.CertRejected == 0 {
		t.Error("no doomed submission was certificate-rejected")
	}
	if rep.CertRejected+rep.Shed < rep.ByKind["doomed"] {
		t.Errorf("doomed accounting: %d rejected + %d shed < %d offered",
			rep.CertRejected, rep.Shed, rep.ByKind["doomed"])
	}
	if rep.RejectP99 > 2.0 {
		t.Errorf("reject p99 = %.3fs, want certificate-cache-fast (< 2s)", rep.RejectP99)
	}
}

// TestRunLoadSessionBatchBlend drives session and batch arrivals through
// a real gateway: sessions create + step + close against their sticky
// owner (zero losses in a steady fleet), batches flow through the job
// counters with zero per-system failures.
func TestRunLoadSessionBatchBlend(t *testing.T) {
	_, ts, _ := startFleet(t, 2, GatewayConfig{}, service.Config{Workers: 2, QueueDepth: 64})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:        ts.URL,
		Rate:           40,
		Duration:       500 * time.Millisecond,
		Corpus:         BuildCorpus(3, 24, 32),
		Blend:          Blend{Solve: 1, Session: 2, Batch: 2},
		BlockSize:      8,
		LocalIters:     2,
		MaxGlobalIters: 300,
		Tolerance:      1e-6,
		SessionSteps:   2,
		BatchSystems:   3,
		PollInterval:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("session/batch blend errors: %v", rep.ErrorSamples)
	}
	if rep.ByKind["session"] == 0 || rep.ByKind["batch"] == 0 {
		t.Fatalf("blend generated no session or batch arrivals (by_kind=%v)", rep.ByKind)
	}
	// Steady fleet, no kills: every created session must step fully and
	// close without a single loss.
	if rep.SessionsLost != 0 {
		t.Errorf("%d sessions lost in a steady fleet", rep.SessionsLost)
	}
	if rep.Sessions == 0 || rep.SessionSteps != rep.Sessions*2 {
		t.Errorf("sessions %d stepped %d times, want %d", rep.Sessions, rep.SessionSteps, rep.Sessions*2)
	}
	if rep.Sessions > 0 && rep.StepP50 <= 0 {
		t.Errorf("no step latency recorded for %d sessions", rep.Sessions)
	}
	if rep.BatchJobs == 0 {
		t.Error("no batch job accepted")
	}
	if rep.BatchSystemFailures != 0 {
		t.Errorf("%d batch system failures on well-posed systems", rep.BatchSystemFailures)
	}
	if rep.Completed == 0 {
		t.Error("no job completed")
	}
}

// TestScrapeMetrics round-trips the gateway's own /metricsz.
func TestScrapeMetrics(t *testing.T) {
	_, ts, _ := startFleet(t, 1, GatewayConfig{}, service.Config{Workers: 1, QueueDepth: 4})
	m, err := ScrapeMetrics(nil, ts.URL+"/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) == 0 {
		t.Fatal("no metrics parsed")
	}
	if _, ok := m["gateway_max_inflight"]; !ok {
		t.Errorf("gateway_max_inflight missing from scrape (have %d series)", len(m))
	}
}
