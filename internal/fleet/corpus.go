package fleet

import (
	"fmt"
	"strings"

	"repro/internal/mats"
	"repro/internal/service"
	"repro/internal/sparse"
)

// CorpusEntry is one matrix of a load-test corpus: a serialized Matrix
// Market payload plus the fingerprint the fleet routes it by.
type CorpusEntry struct {
	Name         string
	N            int
	MatrixMarket string
	Fingerprint  string
}

// BuildCorpus generates size distinct, guaranteed-Jacobi-convergent
// systems (diagonally dominant band matrices) with dimensions spread over
// [minN, maxN]. Every entry has a distinct fingerprint, so under
// consistent-hash routing each entry belongs to exactly one node. The
// corpus is deterministic: the same arguments always produce the same
// payloads and fingerprints.
func BuildCorpus(size, minN, maxN int) []CorpusEntry {
	if size <= 0 {
		panic(fmt.Sprintf("fleet: corpus size must be positive, have %d", size))
	}
	if minN < 8 || maxN < minN {
		panic(fmt.Sprintf("fleet: corpus dimensions [%d, %d] invalid (want 8 <= minN <= maxN)", minN, maxN))
	}
	out := make([]CorpusEntry, 0, size)
	for i := 0; i < size; i++ {
		n := minN
		if size > 1 {
			n += i * (maxN - minN) / (size - 1)
		}
		// Distinct i must give a distinct matrix even when the dimension
		// collides (small maxN-minN): vary the dominance ratio per entry.
		r := 1.5 + 0.01*float64(i%17)
		a := mats.DiagDominant(n, 4, r)
		var sb strings.Builder
		if err := sparse.WriteMatrixMarket(&sb, a); err != nil {
			panic(fmt.Sprintf("fleet: serializing corpus entry %d: %v", i, err))
		}
		out = append(out, CorpusEntry{
			Name:         fmt.Sprintf("dd-%04d-%02d", n, i%17),
			N:            n,
			MatrixMarket: sb.String(),
			Fingerprint:  service.Fingerprint(a),
		})
	}
	return out
}

// BuildDoomedCorpus generates size distinct provably-Jacobi-divergent
// systems (s1rmt3m1 analogs, ρ(B) ≈ 2.66) with dimensions spread over
// [minN, maxN]. An enforce-mode admission must answer each with a 422 and
// its certificate; running one instead burns the full iteration budget.
// Deterministic, like BuildCorpus.
func BuildDoomedCorpus(size, minN, maxN int) []CorpusEntry {
	if size <= 0 {
		panic(fmt.Sprintf("fleet: doomed corpus size must be positive, have %d", size))
	}
	if minN < 8 || maxN < minN {
		panic(fmt.Sprintf("fleet: doomed corpus dimensions [%d, %d] invalid (want 8 <= minN <= maxN)", minN, maxN))
	}
	out := make([]CorpusEntry, 0, size)
	for i := 0; i < size; i++ {
		n := minN
		if size > 1 {
			n += i * (maxN - minN) / (size - 1)
		}
		// The generator is parameterized by dimension only, so distinct i
		// must give a distinct n for a distinct fingerprint.
		n += i % 7
		a := mats.S1RMT3M1(n)
		var sb strings.Builder
		if err := sparse.WriteMatrixMarket(&sb, a); err != nil {
			panic(fmt.Sprintf("fleet: serializing doomed corpus entry %d: %v", i, err))
		}
		out = append(out, CorpusEntry{
			Name:         fmt.Sprintf("doomed-%04d", n),
			N:            n,
			MatrixMarket: sb.String(),
			Fingerprint:  service.Fingerprint(a),
		})
	}
	return out
}
