package spectral

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// ErrNoConvergence is returned when an iterative estimator exhausts its
// iteration budget without meeting its tolerance. The best estimate so far
// accompanies the error in the method-specific result.
var ErrNoConvergence = errors.New("spectral: estimator did not converge")

// PowerMethodResult reports a spectral-radius estimate.
type PowerMethodResult struct {
	Radius     float64 // |λ| of the dominant eigenvalue
	Iterations int
	Converged  bool
}

// PowerMethod estimates the spectral radius of A by power iteration with a
// deterministic seeded random start. tol is the relative change tolerance
// between successive Rayleigh-quotient-style estimates.
func PowerMethod(a *sparse.CSR, maxIter int, tol float64, seed int64) (PowerMethodResult, error) {
	if a.Rows != a.Cols {
		return PowerMethodResult{}, fmt.Errorf("spectral: PowerMethod requires square matrix, have %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	normalize(x)
	y := make([]float64, n)
	var est, prev float64
	for k := 1; k <= maxIter; k++ {
		a.MulVec(y, x)
		est = vecmath.Nrm2(y)
		if est == 0 {
			// x in the nullspace: restart from a fresh random vector.
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			normalize(x)
			continue
		}
		vecmath.Copy(x, y)
		vecmath.Scale(1/est, x)
		if k > 1 && math.Abs(est-prev) <= tol*math.Abs(est) {
			return PowerMethodResult{Radius: est, Iterations: k, Converged: true}, nil
		}
		prev = est
	}
	return PowerMethodResult{Radius: est, Iterations: maxIter}, ErrNoConvergence
}

// JacobiSpectralRadius estimates ρ(B) for B = I − D⁻¹A, the quantity the
// paper denotes ρ(M) in Table 1.
func JacobiSpectralRadius(a *sparse.CSR, seed int64) (float64, error) {
	b, err := a.JacobiIterationMatrix()
	if err != nil {
		return 0, err
	}
	r, err := PowerMethod(b, 5000, 1e-10, seed)
	if err != nil && !r.Converged {
		// A near-tie between ±λ eigenvalues makes the plain power method
		// oscillate; fall back to the two-step even-power trick.
		r2, err2 := powerMethodSquared(b, 5000, 1e-10, seed+1)
		if err2 == nil {
			return r2, nil
		}
	}
	return r.Radius, err
}

// AbsJacobiSpectralRadius estimates ρ(|B|): the Strikwerda asynchronous
// convergence bound.
func AbsJacobiSpectralRadius(a *sparse.CSR, seed int64) (float64, error) {
	r, err := AbsJacobiRadius(a, 20000, 1e-9, seed)
	return r.Radius, err
}

// AbsJacobiRadius is the bounded-work form of AbsJacobiSpectralRadius:
// power iteration on |B| with a caller-controlled iteration cap and a
// stagnation exit. Admission-time callers (internal/certify) use it so a
// defective or slowly-mixing spectrum costs at most maxIter multiplies —
// the result's Converged flag tells them to downgrade to an "Unknown"
// verdict instead of hanging. The returned Radius is always the best
// estimate so far, ErrNoConvergence accompanies an unconverged result.
func AbsJacobiRadius(a *sparse.CSR, maxIter int, tol float64, seed int64) (PowerMethodResult, error) {
	b, err := a.JacobiIterationMatrix()
	if err != nil {
		return PowerMethodResult{}, err
	}
	return NonNegativeRadius(b.Abs(), maxIter, tol)
}

// NonNegativeRadius estimates ρ(M) of an elementwise-nonnegative matrix by
// power iteration from the all-ones vector (Perron–Frobenius: the dominant
// eigenvector is nonnegative, so a positive start never loses it). The
// iteration stops at maxIter, at the relative-change tolerance tol, or at
// stagnation: when the estimate's drift over a trailing window is orders of
// magnitude below the drift tol asks for, more multiplies cannot help
// (slowly-mixing near-ties drift by O(λ₂/λ₁)^k forever). Stagnated and
// capped exits report Converged=false with ErrNoConvergence.
func NonNegativeRadius(m *sparse.CSR, maxIter int, tol float64) (PowerMethodResult, error) {
	if m.Rows != m.Cols {
		return PowerMethodResult{}, fmt.Errorf("spectral: NonNegativeRadius requires square matrix, have %dx%d", m.Rows, m.Cols)
	}
	if m.Rows == 0 {
		return PowerMethodResult{Radius: 0, Converged: true}, nil
	}
	// Stagnation window: if over stagWindow successive iterations the
	// estimate moved by less than stagFactor·tol relative in total, treat
	// the estimate as resolved-as-far-as-it-will-be and stop early.
	const (
		stagWindow = 32
		stagFactor = 1e-3
	)
	n := m.Rows
	x := vecmath.Ones(n)
	normalize(x)
	y := make([]float64, n)
	var est, prev float64
	windowStart, windowBase := 0, math.Inf(1)
	for k := 1; k <= maxIter; k++ {
		m.MulVec(y, x)
		est = vecmath.Nrm2(y)
		if est == 0 {
			return PowerMethodResult{Radius: 0, Iterations: k, Converged: true}, nil
		}
		vecmath.Copy(x, y)
		vecmath.Scale(1/est, x)
		if k > 1 && math.Abs(est-prev) <= tol*est {
			return PowerMethodResult{Radius: est, Iterations: k, Converged: true}, nil
		}
		if k-windowStart >= stagWindow {
			if math.Abs(est-windowBase) <= stagFactor*tol*est {
				return PowerMethodResult{Radius: est, Iterations: k}, ErrNoConvergence
			}
			windowStart, windowBase = k, est
		}
		prev = est
	}
	return PowerMethodResult{Radius: est, Iterations: maxIter}, ErrNoConvergence
}

// NonNegativeRadiusBounds returns rigorous Collatz–Wielandt bounds on the
// spectral radius of an elementwise-nonnegative matrix M: for any strictly
// positive x, min_i (Mx)_i/x_i ≤ ρ(M) ≤ max_i (Mx)_i/x_i. The bounds are
// tightened over sweeps multiplications (x ← Mx, kept strictly positive),
// and unlike a power-method estimate they are proofs — an upper bound < 1
// certifies asynchronous convergence, a lower bound > 1 certifies that the
// iteration matrix is expanding, after as little as one multiply.
func NonNegativeRadiusBounds(m *sparse.CSR, sweeps int) (lo, hi float64, err error) {
	if m.Rows != m.Cols {
		return 0, 0, fmt.Errorf("spectral: NonNegativeRadiusBounds requires square matrix, have %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	if n == 0 {
		return 0, 0, nil
	}
	if sweeps < 1 {
		sweeps = 1
	}
	x := vecmath.Ones(n)
	y := make([]float64, n)
	lo, hi = 0, math.Inf(1)
	for s := 0; s < sweeps; s++ {
		m.MulVec(y, x)
		slo, shi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			r := y[i] / x[i]
			if r < slo {
				slo = r
			}
			if r > shi {
				shi = r
			}
		}
		// Each sweep's bounds are individually valid; keep the tightest.
		if slo > lo {
			lo = slo
		}
		if shi < hi {
			hi = shi
		}
		if hi-lo <= 1e-12*(1+hi) {
			break
		}
		// Renormalize and clamp to keep x strictly positive (the bounds
		// require x > 0; a zero row would otherwise zero components out).
		vecmath.Copy(x, y)
		normalize(x)
		for i := range x {
			if x[i] < 1e-12 {
				x[i] = 1e-12
			}
		}
	}
	return lo, hi, nil
}

// powerMethodSquared estimates ρ(A) as sqrt(ρ(A²)) by applying A twice per
// step, which converges when the spectrum contains a ±λ dominant pair.
func powerMethodSquared(a *sparse.CSR, maxIter int, tol float64, seed int64) (float64, error) {
	n := a.Rows
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	normalize(x)
	y := make([]float64, n)
	z := make([]float64, n)
	var est, prev float64
	for k := 1; k <= maxIter; k++ {
		a.MulVec(y, x)
		a.MulVec(z, y)
		est = vecmath.Nrm2(z)
		if est == 0 {
			return 0, nil
		}
		vecmath.Copy(x, z)
		vecmath.Scale(1/est, x)
		if k > 1 && math.Abs(est-prev) <= tol*est {
			return math.Sqrt(est), nil
		}
		prev = est
	}
	return math.Sqrt(est), ErrNoConvergence
}

// ExtremeEigs reports Lanczos estimates of the smallest and largest
// eigenvalues of a symmetric matrix.
type ExtremeEigs struct {
	Min, Max   float64
	Iterations int
}

// LanczosExtremes estimates the extreme eigenvalues of symmetric A with a
// full-reorthogonalized Lanczos process of at most m steps. For the modest
// dimensions of the paper's matrices full reorthogonalization is cheap and
// avoids ghost eigenvalues.
func LanczosExtremes(a *sparse.CSR, m int, seed int64) (ExtremeEigs, error) {
	if a.Rows != a.Cols {
		return ExtremeEigs{}, fmt.Errorf("spectral: Lanczos requires square matrix, have %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if m > n {
		m = n
	}
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(v)

	basis := make([][]float64, 0, m)
	alpha := make([]float64, 0, m)
	beta := make([]float64, 0, m) // beta[j] links step j and j+1
	w := make([]float64, n)

	for j := 0; j < m; j++ {
		basis = append(basis, append([]float64(nil), v...))
		a.MulVec(w, v)
		if j > 0 {
			vecmath.Axpy(-beta[j-1], basis[j-1], w)
		}
		aj := vecmath.Dot(w, v)
		alpha = append(alpha, aj)
		vecmath.Axpy(-aj, v, w)
		// Full reorthogonalization against all previous basis vectors.
		for _, q := range basis {
			vecmath.Axpy(-vecmath.Dot(w, q), q, w)
		}
		bj := vecmath.Nrm2(w)
		if bj < 1e-14 {
			// Invariant subspace found: the tridiagonal spectrum is exact.
			lo, hi := tridiagExtremes(alpha, beta)
			return ExtremeEigs{Min: lo, Max: hi, Iterations: j + 1}, nil
		}
		beta = append(beta, bj)
		vecmath.Copy(v, w)
		vecmath.Scale(1/bj, v)
	}
	lo, hi := tridiagExtremes(alpha, beta[:len(alpha)-1])
	return ExtremeEigs{Min: lo, Max: hi, Iterations: m}, nil
}

// tridiagExtremes returns the extreme eigenvalues of the symmetric
// tridiagonal matrix with diagonal alpha and off-diagonal beta, found by
// bisection on the Sturm sequence (eigenvalue counts).
func tridiagExtremes(alpha, beta []float64) (float64, float64) {
	k := len(alpha)
	if k == 0 {
		return 0, 0
	}
	if k == 1 {
		return alpha[0], alpha[0]
	}
	// Gershgorin interval for the tridiagonal matrix.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < k; i++ {
		var r float64
		if i > 0 {
			r += math.Abs(beta[i-1])
		}
		if i < k-1 {
			r += math.Abs(beta[i])
		}
		if alpha[i]-r < lo {
			lo = alpha[i] - r
		}
		if alpha[i]+r > hi {
			hi = alpha[i] + r
		}
	}
	countBelow := func(x float64) int {
		// Sturm sequence: number of eigenvalues < x.
		count := 0
		d := alpha[0] - x
		if d < 0 {
			count++
		}
		for i := 1; i < k; i++ {
			if d == 0 {
				d = 1e-300
			}
			d = alpha[i] - x - beta[i-1]*beta[i-1]/d
			if d < 0 {
				count++
			}
		}
		return count
	}
	bisect := func(target int) float64 {
		a, b := lo, hi
		for i := 0; i < 200 && b-a > 1e-13*(1+math.Abs(a)+math.Abs(b)); i++ {
			mid := 0.5 * (a + b)
			if countBelow(mid) >= target {
				b = mid
			} else {
				a = mid
			}
		}
		return 0.5 * (a + b)
	}
	return bisect(1), bisect(k)
}

// ConditionNumber estimates λmax/λmin of a symmetric positive definite
// matrix via Lanczos. It returns an error for non-positive λmin estimates
// (matrix not SPD, or Lanczos not yet resolved the lower end).
func ConditionNumber(a *sparse.CSR, lanczosSteps int, seed int64) (float64, error) {
	e, err := LanczosExtremes(a, lanczosSteps, seed)
	if err != nil {
		return 0, err
	}
	if e.Min <= 0 {
		return 0, fmt.Errorf("spectral: nonpositive smallest eigenvalue estimate %g (matrix not SPD or Lanczos unresolved)", e.Min)
	}
	return e.Max / e.Min, nil
}

// NormalizedMatrix returns N = D^{−1/2} A D^{−1/2}, the symmetric
// similarity transform of D⁻¹A. cond(N) is the library's definition of
// cond(D⁻¹A) in Table 1 (exact for the eigenvalue ratio; the UFMC listing
// may use singular values, which differ for non-normal D⁻¹A).
func NormalizedMatrix(a *sparse.CSR) (*sparse.CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spectral: NormalizedMatrix requires square matrix, have %dx%d", a.Rows, a.Cols)
	}
	d := a.Diagonal()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("spectral: nonpositive diagonal %g at row %d", v, i)
		}
		inv[i] = 1 / math.Sqrt(v)
	}
	n := a.Clone()
	for i := 0; i < n.Rows; i++ {
		for p := n.RowPtr[i]; p < n.RowPtr[i+1]; p++ {
			n.Val[p] *= inv[i] * inv[n.ColIdx[p]]
		}
	}
	return n, nil
}

// GershgorinBounds returns the union interval of all Gershgorin discs of A
// restricted to the real axis: [min_i (a_ii − r_i), max_i (a_ii + r_i)]
// with r_i the off-diagonal absolute row sum.
func GershgorinBounds(a *sparse.CSR) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < a.Rows; i++ {
		var diag, r float64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if a.ColIdx[p] == i {
				diag = a.Val[p]
			} else {
				r += math.Abs(a.Val[p])
			}
		}
		if diag-r < lo {
			lo = diag - r
		}
		if diag+r > hi {
			hi = diag + r
		}
	}
	return lo, hi
}

// TauScaling returns τ = 2/(λ₁+λ_n) for D⁻¹A, the damping factor the paper
// recommends (§4.2) to make Jacobi-type methods converge on SPD systems
// whose unscaled iteration matrix has ρ(B) > 1. The extremes are estimated
// on the normalized matrix N (similar to D⁻¹A).
func TauScaling(a *sparse.CSR, lanczosSteps int, seed int64) (float64, error) {
	n, err := NormalizedMatrix(a)
	if err != nil {
		return 0, err
	}
	e, err := LanczosExtremes(n, lanczosSteps, seed)
	if err != nil {
		return 0, err
	}
	sum := e.Min + e.Max
	if sum <= 0 {
		return 0, fmt.Errorf("spectral: eigenvalue sum %g not positive; matrix not SPD?", sum)
	}
	return 2 / sum, nil
}

func normalize(x []float64) {
	n := vecmath.Nrm2(x)
	if n > 0 {
		vecmath.Scale(1/n, x)
	}
}

// OperatorRadius estimates the spectral radius of a black-box *linear*
// operator given only its action dst = E·src, by power iteration with a
// seeded random start. It is the tool for analyzing iteration operators
// that exist only as code — e.g. the error-propagation map of one
// deterministic block-asynchronous global iteration, whose ρ governs the
// method's asymptotic convergence rate (two-stage iteration theory).
func OperatorRadius(apply func(dst, src []float64), n, maxIter int, tol float64, seed int64) (PowerMethodResult, error) {
	if n <= 0 {
		return PowerMethodResult{}, fmt.Errorf("spectral: OperatorRadius dimension %d must be positive", n)
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	normalize(x)
	y := make([]float64, n)
	var est, prev float64
	for k := 1; k <= maxIter; k++ {
		apply(y, x)
		est = vecmath.Nrm2(y)
		if est == 0 {
			return PowerMethodResult{Radius: 0, Iterations: k, Converged: true}, nil
		}
		vecmath.Copy(x, y)
		vecmath.Scale(1/est, x)
		if k > 1 && math.Abs(est-prev) <= tol*est {
			return PowerMethodResult{Radius: est, Iterations: k, Converged: true}, nil
		}
		prev = est
	}
	return PowerMethodResult{Radius: est, Iterations: maxIter}, ErrNoConvergence
}
