// Package spectral estimates the spectral quantities the paper reports in
// Table 1 and relies on in its convergence theory:
//
//   - ρ(B), ρ(|B|): spectral radius of the Jacobi iteration matrix and of
//     its elementwise absolute value — the Strikwerda sufficient condition
//     for asynchronous convergence is ρ(|B|) < 1;
//   - extreme eigenvalues of SPD matrices via symmetric Lanczos, used for
//     cond(A), cond(D⁻¹A), and the τ-scaling τ = 2/(λ₁+λ_n) of §4.2;
//   - Gershgorin disc bounds as cheap a-priori checks.
//
// All estimators are deterministic: randomized start vectors take an
// explicit seed.
package spectral
