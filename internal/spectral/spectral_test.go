package spectral

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mats"
	"repro/internal/sparse"
)

// diag builds a diagonal CSR matrix.
func diag(vals ...float64) *sparse.CSR {
	n := len(vals)
	c := sparse.NewCOO(n, n)
	for i, v := range vals {
		c.Add(i, i, v)
	}
	return c.ToCSR()
}

// tridiag builds the n-point [−1 2 −1] Laplacian whose eigenvalues are
// 2−2cos(kπ/(n+1)) — the canonical analytic test case.
func tridiag(n int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i+1 < n {
			c.AddSym(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

func TestPowerMethodDiagonal(t *testing.T) {
	r, err := PowerMethod(diag(1, -7, 3), 1000, 1e-12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Radius-7) > 1e-8 {
		t.Errorf("radius = %g, want 7", r.Radius)
	}
	if !r.Converged {
		t.Error("should have converged")
	}
}

func TestPowerMethodNonSquare(t *testing.T) {
	c := sparse.NewCOO(2, 3)
	c.Add(0, 0, 1)
	if _, err := PowerMethod(c.ToCSR(), 10, 1e-6, 1); err == nil {
		t.Error("expected error for non-square input")
	}
}

func TestJacobiSpectralRadiusTridiag(t *testing.T) {
	// For [−1 2 −1], B = I − D⁻¹A has ρ(B) = cos(π/(n+1)).
	n := 50
	got, err := JacobiSpectralRadius(tridiag(n), 1)
	if err != nil {
		t.Logf("estimator note: %v", err)
	}
	want := math.Cos(math.Pi / float64(n+1))
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("ρ(B) = %g, want %g", got, want)
	}
}

func TestAbsJacobiSpectralRadiusTridiag(t *testing.T) {
	// |B| has the same entries (all 1/2 magnitude), same ρ.
	n := 50
	got, err := AbsJacobiSpectralRadius(tridiag(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Cos(math.Pi / float64(n+1))
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("ρ(|B|) = %g, want %g", got, want)
	}
}

func TestLanczosTridiagExact(t *testing.T) {
	n := 40
	e, err := LanczosExtremes(tridiag(n), n, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantMin := 2 - 2*math.Cos(math.Pi/float64(n+1))
	wantMax := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	if math.Abs(e.Min-wantMin) > 1e-8 {
		t.Errorf("λmin = %g, want %g", e.Min, wantMin)
	}
	if math.Abs(e.Max-wantMax) > 1e-8 {
		t.Errorf("λmax = %g, want %g", e.Max, wantMax)
	}
}

func TestConditionNumberDiagonal(t *testing.T) {
	k, err := ConditionNumber(diag(1, 2, 5, 10), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-10) > 1e-6 {
		t.Errorf("cond = %g, want 10", k)
	}
}

func TestConditionNumberRejectsIndefinite(t *testing.T) {
	if _, err := ConditionNumber(diag(-1, 2), 2, 1); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestNormalizedMatrix(t *testing.T) {
	nm, err := NormalizedMatrix(tridiag(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if math.Abs(nm.At(i, i)-1) > 1e-14 {
			t.Errorf("normalized diagonal at %d = %g, want 1", i, nm.At(i, i))
		}
	}
	if math.Abs(nm.At(0, 1)+0.5) > 1e-14 {
		t.Errorf("normalized off-diag = %g, want -0.5", nm.At(0, 1))
	}
	// Negative diagonal must be rejected.
	if _, err := NormalizedMatrix(diag(-1, 1)); err == nil {
		t.Error("expected error for negative diagonal")
	}
}

func TestGershgorinBounds(t *testing.T) {
	lo, hi := GershgorinBounds(tridiag(10))
	if lo != 0 || hi != 4 {
		t.Errorf("Gershgorin = [%g, %g], want [0, 4]", lo, hi)
	}
}

func TestTauScalingTridiag(t *testing.T) {
	// N = D^{-1/2} A D^{-1/2} for tridiag has λ ∈ [1−cos(π/(n+1)), 1+cos(π/(n+1))],
	// so λ1+λn = 2 and τ = 1.
	tau, err := TauScaling(tridiag(30), 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-1) > 1e-8 {
		t.Errorf("τ = %g, want 1", tau)
	}
}

// The cross-validation tests: generated matrices must land on the paper's
// Table 1 spectral values.

func TestPaperRhoFV1(t *testing.T) {
	rho, _ := JacobiSpectralRadius(mats.MustGenerate("fv1").A, 1)
	if math.Abs(rho-0.8541) > 0.01 {
		t.Errorf("fv1 ρ(B) = %.4f, paper says 0.8541", rho)
	}
}

func TestPaperRhoFV3(t *testing.T) {
	rho, _ := JacobiSpectralRadius(mats.MustGenerate("fv3").A, 1)
	if rho < 0.995 || rho >= 1 {
		t.Errorf("fv3 ρ(B) = %.6f, paper says 0.9993 (must be just under 1)", rho)
	}
}

func TestPaperRhoChem97(t *testing.T) {
	rho, _ := JacobiSpectralRadius(mats.MustGenerate("Chem97ZtZ").A, 1)
	if math.Abs(rho-0.7889) > 0.01 {
		t.Errorf("Chem97ZtZ ρ(B) = %.4f, paper says 0.7889", rho)
	}
}

func TestPaperRhoS1RMT3M1Diverges(t *testing.T) {
	rho, _ := JacobiSpectralRadius(mats.MustGenerate("s1rmt3m1").A, 1)
	if math.Abs(rho-2.65) > 0.05 {
		t.Errorf("s1rmt3m1 ρ(B) = %.3f, paper says ≈2.65", rho)
	}
}

func TestPaperRhoTrefethen2000(t *testing.T) {
	rho, _ := JacobiSpectralRadius(mats.MustGenerate("Trefethen_2000").A, 1)
	// Paper: 0.8601 for both Trefethen sizes.
	if math.Abs(rho-0.8601) > 0.02 {
		t.Errorf("Trefethen_2000 ρ(B) = %.4f, paper says 0.8601", rho)
	}
}

func TestPaperStrikwerdaConditionHolds(t *testing.T) {
	// The asynchronous convergence condition ρ(|B|) < 1 must hold for every
	// convergent test system (all but s1rmt3m1).
	for _, name := range []string{"Chem97ZtZ", "fv1", "Trefethen_2000"} {
		rho, err := AbsJacobiSpectralRadius(mats.MustGenerate(name).A, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rho >= 1 {
			t.Errorf("%s: ρ(|B|) = %g ≥ 1, async convergence not guaranteed", name, rho)
		}
	}
}

func TestOperatorRadiusMatchesMatrix(t *testing.T) {
	// The black-box estimator on an explicit matrix must agree with the
	// plain power method.
	a := tridiag(30)
	apply := func(dst, src []float64) { a.MulVec(dst, src) }
	r, err := OperatorRadius(apply, 30, 5000, 1e-10, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 + 2*math.Cos(math.Pi/31) // λmax of the [−1 2 −1] operator
	if math.Abs(r.Radius-want) > 1e-6 {
		t.Errorf("radius = %g, want %g", r.Radius, want)
	}
}

func TestOperatorRadiusValidation(t *testing.T) {
	if _, err := OperatorRadius(nil, 0, 10, 1e-6, 1); err == nil {
		t.Error("expected dimension error")
	}
}

func TestOperatorRadiusZeroOperator(t *testing.T) {
	apply := func(dst, src []float64) {
		for i := range dst {
			dst[i] = 0
		}
	}
	r, err := OperatorRadius(apply, 5, 10, 1e-6, 1)
	if err != nil || r.Radius != 0 {
		t.Errorf("zero operator: %+v %v", r, err)
	}
}

func TestAbsJacobiRadiusBoundedWork(t *testing.T) {
	a := tridiag(64)
	// Generous budget: converges, matches the analytic ρ(|B|) = cos(π/65).
	r, err := AbsJacobiRadius(a, 20000, 1e-9, 1)
	if err != nil || !r.Converged {
		t.Fatalf("AbsJacobiRadius did not converge: %v (res %+v)", err, r)
	}
	want := math.Cos(math.Pi / 65)
	if math.Abs(r.Radius-want) > 1e-6 {
		t.Errorf("rho = %g, want %g", r.Radius, want)
	}
	// Starved budget: must return the best estimate with Converged=false
	// and ErrNoConvergence instead of looping on — the admission-time
	// contract the certifier downgrades to Unknown on.
	r2, err2 := AbsJacobiRadius(a, 3, 1e-14, 1)
	if r2.Converged {
		t.Fatalf("3-iteration budget reported Converged: %+v", r2)
	}
	if err2 == nil || !errors.Is(err2, ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err2)
	}
	if r2.Iterations > 3 {
		t.Errorf("ran %d iterations, budget was 3", r2.Iterations)
	}
	if r2.Radius <= 0 || r2.Radius > 1.5 {
		t.Errorf("best-effort estimate %g out of range", r2.Radius)
	}
}

func TestNonNegativeRadiusStagnationExit(t *testing.T) {
	// A ±√2 dominant pair: [[0,2],[1,0]] is nonnegative but its power
	// estimates oscillate with period 2 forever, never meeting any
	// tolerance. The stagnation window must exit long before the
	// 1e6-iteration cap instead of burning the whole budget.
	c := sparse.NewCOO(2, 2)
	c.Add(0, 1, 2)
	c.Add(1, 0, 1)
	m := c.ToCSR()
	r, err := NonNegativeRadius(m, 1_000_000, 1e-14)
	if err == nil || r.Converged {
		t.Fatalf("expected stagnation exit, got Converged=%v err=%v", r.Converged, err)
	}
	if r.Iterations >= 1_000_000 {
		t.Fatalf("stagnation exit never fired: ran %d iterations", r.Iterations)
	}
	if r.Radius < 1.2 || r.Radius > 1.6 {
		t.Errorf("stagnated estimate %g, want within [1.2, 1.6] around rho=sqrt(2)", r.Radius)
	}
}

func TestNonNegativeRadiusBoundsTridiagAbsB(t *testing.T) {
	a := tridiag(40)
	b, err := a.JacobiIterationMatrix()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := NonNegativeRadiusBounds(b.Abs(), 50)
	if err != nil {
		t.Fatal(err)
	}
	rho := math.Cos(math.Pi / 41)
	if lo > rho+1e-12 || hi < rho-1e-12 {
		t.Errorf("bounds [%g, %g] exclude true rho %g", lo, hi, rho)
	}
	if hi >= 1 {
		t.Errorf("upper bound %g should certify rho < 1 after 50 sweeps", hi)
	}
	// The s1rmt3m1 analog must certify expansion (lower bound > 1).
	bb, err := mats.S1RMT3M1(400).JacobiIterationMatrix()
	if err != nil {
		t.Fatal(err)
	}
	lo2, _, err := NonNegativeRadiusBounds(bb.Abs(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if lo2 <= 1 {
		t.Errorf("s1rmt3m1 lower bound %g, want > 1 (rho ~ 2.65)", lo2)
	}
}
