// Package sched makes the non-determinism of the asynchronous engines
// capturable and replayable. The paper's async-(k) iteration is explicitly
// non-deterministic (§4.1 studies the spread over 1000 runs), and the
// related convergence theory (Chazan–Miranker, Strikwerda) quantifies over
// *all* admissible update orderings — so validating an implementation, or
// debugging one divergent run out of a thousand, requires freezing the
// ordering that actually happened.
//
// The package provides three pieces:
//
//   - Event / Recorder: engines emit one compact Event per executed block
//     through a lock-cheap fixed-capacity ring (one atomic add per event);
//     the recorder never blocks the hot path and degrades to counting
//     dropped events when full.
//   - Schedule: the captured, serializable stream (JSON for CI artifacts)
//     plus the engine metadata needed to re-create the run.
//   - Gate: a turn sequencer that drives the concurrent engines through a
//     captured schedule: workers wait at injected yield points until the
//     next recorded event is theirs, so every block execution happens
//     exclusively and in recorded order. Replays are therefore bit-for-bit
//     deterministic, no matter how the Go scheduler interleaves the
//     goroutines around the gate.
//
// Replay semantics per engine (see the core package for the wiring):
//
//   - simulated: the recorded order, stale masks and RNG seed re-create the
//     original run exactly — replay output is bit-identical to the
//     recording.
//   - goroutine / free-running: the original run's component-level read
//     interleavings are not captured (that would cost one event per read);
//     replay executes the recorded block sequence one block at a time,
//     which defines a canonical deterministic execution of that schedule.
//     Any two replays of the same schedule are bit-identical, which is
//     what convergence validation across adversarial orderings needs.
package sched
