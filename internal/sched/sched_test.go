package sched

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

func TestRecorderAppendAndSchedule(t *testing.T) {
	r := NewRecorder(8)
	r.SetMeta(Meta{Engine: "simulated", NumBlocks: 4, Workers: 1, Seed: 7})
	for i := 0; i < 5; i++ {
		r.Append(Event{Epoch: 1, Block: int32(i % 4), Sweeps: 5})
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	s := r.Schedule()
	if s.Truncated || s.Dropped != 0 {
		t.Fatalf("unexpected truncation: %+v", s)
	}
	if s.Meta.Seed != 7 || len(s.Events) != 5 {
		t.Fatalf("schedule = %+v", s)
	}
	if err := s.Validate(4); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRecorderTruncates(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Append(Event{Epoch: 1, Block: 0})
	}
	s := r.Schedule()
	if !s.Truncated || s.Dropped != 7 || len(s.Events) != 3 {
		t.Fatalf("schedule = truncated=%v dropped=%d events=%d", s.Truncated, s.Dropped, len(s.Events))
	}
	if err := s.Validate(1); err == nil {
		t.Fatal("truncated schedule must not validate")
	}
}

func TestRecorderConcurrentAppendsKeepAllEvents(t *testing.T) {
	r := NewRecorder(1000)
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Append(Event{Epoch: 1, Block: int32(w)})
			}
		}(w)
	}
	wg.Wait()
	s := r.Schedule()
	if len(s.Events) != 1000 || s.Truncated {
		t.Fatalf("events = %d truncated = %v", len(s.Events), s.Truncated)
	}
	counts := make(map[int32]int)
	for _, e := range s.Events {
		counts[e.Block]++
	}
	for w := int32(0); w < 10; w++ {
		if counts[w] != 100 {
			t.Fatalf("worker %d recorded %d events, want 100", w, counts[w])
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	s := &Schedule{Meta: Meta{NumBlocks: 2}, Events: []Event{{Epoch: 1, Block: 5}}}
	if err := s.Validate(2); err == nil {
		t.Error("out-of-range block must not validate")
	}
	s = &Schedule{Meta: Meta{NumBlocks: 2}, Events: []Event{{Epoch: 0, Block: 0}}}
	if err := s.Validate(2); err == nil {
		t.Error("epoch 0 must not validate")
	}
	s = &Schedule{Meta: Meta{NumBlocks: 3}, Events: []Event{{Epoch: 1, Block: 0}}}
	if err := s.Validate(2); err == nil {
		t.Error("block-count mismatch must not validate")
	}
	s = &Schedule{Meta: Meta{NumBlocks: 2}}
	if err := s.Validate(2); err == nil {
		t.Error("empty schedule must not validate")
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := &Schedule{
		Meta: Meta{Engine: "freerunning", NumBlocks: 3, Workers: 2, Seed: -42, Omega: 1, LocalIters: 5},
		Events: []Event{
			{Epoch: 1, Block: 0, Sweeps: 5, Worker: 0},
			{Epoch: 1, Block: 1, Sweeps: 5, Worker: 1, Shift: 1},
			{Epoch: 2, Block: 2, Sweeps: 5, Worker: 0},
		},
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
	if got.Epochs() != 2 {
		t.Fatalf("Epochs = %d, want 2", got.Epochs())
	}
}

// The gate must hand out turns in exactly the recorded order regardless of
// which goroutines ask first.
func TestGateSequencesWorkers(t *testing.T) {
	const workers = 4
	var events []Event
	for i := 0; i < 200; i++ {
		events = append(events, Event{Epoch: 1, Block: int32(i), Worker: int16(i % workers)})
	}
	s := &Schedule{Meta: Meta{NumBlocks: 200, Workers: workers}, Events: events}
	g := NewGate(s)
	owns := func(e Event, w int) bool { return int(e.Worker) == w }

	var mu sync.Mutex
	var got []int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				e, ok := g.Next(w, owns)
				if !ok {
					return
				}
				mu.Lock()
				got = append(got, e.Block)
				mu.Unlock()
				g.Done()
			}
		}(w)
	}
	wg.Wait()
	if len(got) != len(events) {
		t.Fatalf("executed %d events, want %d", len(got), len(events))
	}
	for i, b := range got {
		if b != int32(i) {
			t.Fatalf("position %d executed block %d, want %d", i, b, i)
		}
	}
	if g.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", g.Remaining())
	}
}

// A worker with no events must exit instead of deadlocking.
func TestGateWorkerWithNoEventsExits(t *testing.T) {
	s := &Schedule{Meta: Meta{NumBlocks: 1, Workers: 2}, Events: []Event{{Epoch: 1, Block: 0, Worker: 0}}}
	g := NewGate(s)
	owns := func(e Event, w int) bool { return int(e.Worker) == w }
	done := make(chan struct{})
	go func() {
		if _, ok := g.Next(1, owns); ok {
			t.Error("worker 1 owns nothing but got an event")
		}
		close(done)
	}()
	if e, ok := g.Next(0, owns); !ok || e.Block != 0 {
		t.Fatalf("worker 0: got %+v, %v", e, ok)
	}
	g.Done()
	<-done
}
