package sched

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Event is one executed block update. 16 bytes, so recording a full
// paper-scale run (thousands of global iterations × hundreds of blocks)
// stays in the tens of megabytes.
type Event struct {
	// Epoch is the global iteration (barrier engines) or the owning
	// worker's sweep round (free-running engine), 1-based.
	Epoch int32 `json:"epoch"`
	// Block is the executed block index.
	Block int32 `json:"block"`
	// Sweeps is the number of local Jacobi sweeps performed (k), or 0 for
	// an exact local solve.
	Sweeps int32 `json:"sweeps"`
	// Shift summarizes the staleness of the block's off-block reads in
	// epochs: the simulated engine records 1 when the block read the
	// epoch-start snapshot (a maximally late dispatch) and 0 for a mixed
	// wave read; the concurrent engines record 0 (their staleness is
	// implicit in the event order).
	Shift int16 `json:"shift"`
	// Worker is the executing worker index (0 for the simulated engine).
	Worker int16 `json:"worker"`
}

// Meta describes the run a schedule was captured from — everything replay
// needs beyond the event stream itself.
type Meta struct {
	// Engine is the capturing engine: "simulated", "goroutine" or
	// "freerunning".
	Engine string `json:"engine"`
	// NumBlocks is the block count of the plan; replay validates it.
	NumBlocks int `json:"num_blocks"`
	// Workers is the worker-pool size of the capturing run; the
	// free-running replay re-creates the same block ownership from it.
	Workers int `json:"workers"`
	// Seed is the *effective* seed of the capturing run (after zero-seed
	// derivation), so replaying a Seed==0 run still reproduces its
	// per-component race coin flips.
	Seed int64 `json:"seed"`
	// Omega is the capturing run's relaxation weight; replay applies it
	// so the local updates are arithmetically identical.
	Omega float64 `json:"omega"`
	// LocalIters, Recurrence and StaleProb echo the capturing options for
	// the record's self-description; replay takes the sweep counts from
	// the events and the structure from the replaying caller's plan.
	LocalIters int     `json:"local_iters"`
	Recurrence float64 `json:"recurrence"`
	StaleProb  float64 `json:"stale_prob"`
	// Method names the capturing run's update rule ("jacobi",
	// "richardson2"); Beta is its momentum coefficient. A non-empty Method
	// makes the recorded Beta authoritative on replay — zero included, so
	// replaying a jacobi capture never invents momentum. Captures from
	// before the update-rule seam leave Method empty and replay defers to
	// the caller's options, as with Omega == 0.
	Method string  `json:"method,omitempty"`
	Beta   float64 `json:"beta,omitempty"`
}

// Schedule is a captured event stream plus its metadata.
type Schedule struct {
	Meta   Meta    `json:"meta"`
	Events []Event `json:"events"`
	// Truncated reports that the recorder's ring filled up and events were
	// dropped; a truncated schedule is not replayable.
	Truncated bool `json:"truncated,omitempty"`
	// Dropped counts the events lost to truncation.
	Dropped int64 `json:"dropped,omitempty"`
}

// Epochs returns the largest epoch in the stream (the global-iteration
// count for barrier engines).
func (s *Schedule) Epochs() int {
	var max int32
	for _, e := range s.Events {
		if e.Epoch > max {
			max = e.Epoch
		}
	}
	return int(max)
}

// Validate checks that the schedule is replayable against a plan with
// numBlocks blocks.
func (s *Schedule) Validate(numBlocks int) error {
	if s.Truncated {
		return fmt.Errorf("sched: schedule truncated (%d events dropped): not replayable", s.Dropped)
	}
	if len(s.Events) == 0 {
		return fmt.Errorf("sched: empty schedule")
	}
	if s.Meta.NumBlocks != numBlocks {
		return fmt.Errorf("sched: schedule captured with %d blocks, plan has %d", s.Meta.NumBlocks, numBlocks)
	}
	for i, e := range s.Events {
		if e.Block < 0 || int(e.Block) >= numBlocks {
			return fmt.Errorf("sched: event %d: block %d out of range [0,%d)", i, e.Block, numBlocks)
		}
		if e.Epoch < 1 {
			return fmt.Errorf("sched: event %d: epoch %d must be ≥ 1", i, e.Epoch)
		}
	}
	return nil
}

// WriteJSON serializes the schedule (the CI artifact format for failing
// replay traces).
func (s *Schedule) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// ReadJSON deserializes a schedule written by WriteJSON.
func ReadJSON(r io.Reader) (*Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("sched: decoding schedule: %w", err)
	}
	return &s, nil
}

// DefaultCapacity is the recorder ring capacity when none is given:
// 1<<20 events ≈ 16 MB, enough for ~2000 global iterations of a 500-block
// run.
const DefaultCapacity = 1 << 20

// Recorder captures events into a fixed slab with one atomic increment per
// append — cheap enough to leave enabled inside the concurrent engines'
// block loops. Appends beyond the capacity are counted and dropped (the
// resulting schedule reports itself truncated). A Recorder is single-use:
// capture one run, take the Schedule, create a new one for the next run.
type Recorder struct {
	events []Event
	next   atomic.Int64

	mu   sync.Mutex
	meta Meta
}

// NewRecorder creates a recorder holding up to capacity events
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{events: make([]Event, capacity)}
}

// SetMeta stores the run metadata; the capturing engine calls it once at
// solve start.
func (r *Recorder) SetMeta(m Meta) {
	r.mu.Lock()
	r.meta = m
	r.mu.Unlock()
}

// Append records one event. Concurrent appends receive distinct slots in
// commit order (the order of the atomic reservation).
func (r *Recorder) Append(e Event) {
	slot := r.next.Add(1) - 1
	if slot < int64(len(r.events)) {
		r.events[slot] = e
	}
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	n := r.next.Load()
	if n > int64(len(r.events)) {
		n = int64(len(r.events))
	}
	return int(n)
}

// Schedule snapshots the capture. The engines have quiesced by the time a
// caller takes the schedule (Solve has returned), so the snapshot is
// consistent.
func (r *Recorder) Schedule() *Schedule {
	r.mu.Lock()
	meta := r.meta
	r.mu.Unlock()
	total := r.next.Load()
	n := total
	if n > int64(len(r.events)) {
		n = int64(len(r.events))
	}
	s := &Schedule{Meta: meta, Events: append([]Event(nil), r.events[:n]...)}
	if total > n {
		s.Truncated = true
		s.Dropped = total - n
	}
	return s
}

// Gate sequences concurrent workers through a schedule: each worker blocks
// in Next until the head event belongs to it, executes the block
// exclusively, then calls Done to pass the turn. The total order of block
// executions is exactly the recorded one.
type Gate struct {
	mu        sync.Mutex
	cond      *sync.Cond
	events    []Event
	next      int
	remaining map[int]int // per-worker unexecuted event counts
}

// NewGate creates a gate over the schedule's events.
func NewGate(s *Schedule) *Gate {
	g := &Gate{events: s.Events}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Next blocks until the next unexecuted event is owned by worker w (per
// the owns predicate) and returns it; ok is false once the schedule is
// exhausted or no remaining event is owned by w — the worker then exits
// (without this, the last workers would deadlock waiting for turns that
// never come). The caller must call Done after executing the returned
// event. All Next calls of one gate must use the same owns predicate, and
// ownership must be a partition: exactly one worker owns each event.
func (g *Gate) Next(w int, owns func(e Event, w int) bool) (Event, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.remaining == nil {
		// One O(events × workers) census up front beats rescanning the
		// tail on every wakeup.
		g.remaining = make(map[int]int)
	}
	if _, ok := g.remaining[w]; !ok {
		count := 0
		for _, ev := range g.events[g.next:] {
			if owns(ev, w) {
				count++
			}
		}
		g.remaining[w] = count
	}
	for {
		if g.next >= len(g.events) || g.remaining[w] == 0 {
			return Event{}, false
		}
		if e := g.events[g.next]; owns(e, w) {
			g.remaining[w]--
			return e, true
		}
		g.cond.Wait()
	}
}

// Done commits the head event and wakes the waiting workers.
func (g *Gate) Done() {
	g.mu.Lock()
	g.next++
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Remaining returns the number of unexecuted events.
func (g *Gate) Remaining() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.events) - g.next
}
