package experiments

import "testing"

func TestReorderingRescueChem97(t *testing.T) {
	tab, err := ReorderingRescue(1e-8, 2000, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var natBW, rcmBW, nat1, nat5, rcm1, rcm5 float64
	if _, err := fmtSscan(tab.Rows[0][1], &natBW); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[1][1], &rcmBW); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[0][2], &nat1); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[0][3], &nat5); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[1][2], &rcm1); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[1][3], &rcm5); err != nil {
		t.Fatal(err)
	}
	// RCM collapses the long-range coupling groups to adjacent rows.
	if rcmBW > 10 || natBW < 100 {
		t.Errorf("bandwidth: natural %g -> RCM %g; expected large -> tiny", natBW, rcmBW)
	}
	// Natural ordering: local sweeps useless (paper §4.3).
	if d := nat1 - nat5; d < -3 || d > 3 {
		t.Errorf("natural ordering: async-(1) %g vs async-(5) %g should be ≈equal", nat1, nat5)
	}
	// RCM ordering: local sweeps now capture the whole coupling; async-(5)
	// must converge substantially faster than async-(1).
	if !(rcm5 > 0 && rcm5*1.5 <= rcm1) {
		t.Errorf("RCM ordering: async-(5) %g should beat async-(1) %g by ≥1.5x", rcm5, rcm1)
	}
	// And faster than the natural ordering's async-(5).
	if !(rcm5 < nat5) {
		t.Errorf("RCM async-(5) (%g) should beat natural async-(5) (%g)", rcm5, nat5)
	}
}
