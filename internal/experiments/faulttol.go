package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/plot"
	"repro/internal/stats"
)

// FaultConfig configures the §4.5 fault-tolerance experiment (Figure 10,
// Table 6). Defaults follow the paper: 25% of the cores fail at global
// iteration 10; recovery times 10, 20, 30 iterations or none.
type FaultConfig struct {
	Matrix    string
	Iters     int
	BlockSize int
	FailAt    int
	Fraction  float64
	Recovery  []int // recovery times tr; a negative entry means "no recovery"
	Seed      int64
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.BlockSize == 0 {
		c.BlockSize = 128
	}
	if c.FailAt == 0 {
		c.FailAt = 10
	}
	if c.Fraction == 0 {
		c.Fraction = 0.25
	}
	if c.Recovery == nil {
		c.Recovery = []int{10, 20, 30, -1}
	}
	return c
}

// FaultOutcome is one curve of Figure 10 plus the bookkeeping for Table 6.
type FaultOutcome struct {
	Label   string
	History []float64 // relative residuals, length Iters
	// IterationsToTol is the first iteration reaching the tolerance used
	// by Fig10Table6 (0 = never).
	IterationsToTol int
}

// Fig10Fault runs the failure scenario: a clean run plus one run per
// recovery setting. Histories are relative residuals over exactly
// cfg.Iters global iterations.
func Fig10Fault(cfg FaultConfig) ([]FaultOutcome, error) {
	cfg = cfg.withDefaults()
	tm, err := Matrix(cfg.Matrix)
	if err != nil {
		return nil, err
	}
	a := tm.A
	b := OnesRHS(a)
	nb := (a.Rows + cfg.BlockSize - 1) / cfg.BlockSize

	run := func(label string, inj *fault.Injector) (FaultOutcome, error) {
		opt := core.Options{
			BlockSize:      cfg.BlockSize,
			LocalIters:     5,
			MaxGlobalIters: cfg.Iters,
			RecordHistory:  true,
			Seed:           cfg.Seed,
		}
		if inj != nil {
			opt.SkipBlock = inj.SkipBlock
		}
		res, err := core.Solve(a, b, opt)
		if err != nil {
			return FaultOutcome{}, fmt.Errorf("experiments: %s: %w", label, err)
		}
		return FaultOutcome{
			Label:   label,
			History: relativize(stats.PadHistory(res.History, cfg.Iters), b),
		}, nil
	}

	outcomes := make([]FaultOutcome, 0, len(cfg.Recovery)+1)
	clean, err := run("no failure", nil)
	if err != nil {
		return nil, err
	}
	outcomes = append(outcomes, clean)
	for _, tr := range cfg.Recovery {
		label := fmt.Sprintf("recovery-(%d)", tr)
		if tr < 0 {
			label = "no recovery"
		}
		inj, err := fault.NewInjector(nb, cfg.Fraction, cfg.FailAt, tr, cfg.Seed+100)
		if err != nil {
			return nil, err
		}
		oc, err := run(label, inj)
		if err != nil {
			return nil, err
		}
		outcomes = append(outcomes, oc)
	}
	return outcomes, nil
}

// FaultSeries converts outcomes into Figure 10 plot series.
func FaultSeries(outcomes []FaultOutcome) []plot.Series {
	out := make([]plot.Series, len(outcomes))
	for i, oc := range outcomes {
		out[i] = plot.Series{Name: oc.Label, X: iota2float(len(oc.History)), Y: oc.History}
	}
	return out
}

// Table6RecoveryOverhead regenerates Table 6: the additional computation
// (in % of global iterations) each recovering variant needs to reach the
// same relative residual as the failure-free run's final level.
func Table6RecoveryOverhead(cfgs []FaultConfig, tol float64) (Table, error) {
	t := Table{
		Title:   fmt.Sprintf("Table 6: additional iterations in %% for recovering async-(5) to reach rel. residual %.0e", tol),
		Columns: []string{"matrix", "recover-(10)", "recover-(20)", "recover-(30)"},
	}
	for _, cfg := range cfgs {
		cfg.Recovery = []int{10, 20, 30}
		outcomes, err := Fig10Fault(cfg)
		if err != nil {
			return Table{}, err
		}
		base := IterationsToReach(outcomes[0].History, tol)
		if base == 0 {
			return Table{}, fmt.Errorf("experiments: clean run on %s never reached %g within %d iterations",
				cfg.Matrix, tol, cfg.withDefaults().Iters)
		}
		row := []string{cfg.Matrix}
		for _, oc := range outcomes[1:] {
			it := IterationsToReach(oc.History, tol)
			if it == 0 {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", 100*float64(it-base)/float64(base)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
