package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/multigpu"
)

// fmtSscan parses a numeric table cell.
func fmtSscan(cell string, out *float64) (int, error) {
	return fmt.Sscan(cell, out)
}

// barValue is a (value, NA) pair extracted from a bar chart in tests.
type barValue struct {
	Value float64
	NA    bool
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "a    bbbb") {
		t.Errorf("render:\n%s", out)
	}
}

func TestMatrixCache(t *testing.T) {
	m1, err := Matrix("fv1")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Matrix("fv1")
	if err != nil {
		t.Fatal(err)
	}
	if m1.A != m2.A {
		t.Error("cache did not return the same instance")
	}
	if _, err := Matrix("bogus"); err == nil {
		t.Error("expected error for unknown matrix")
	}
}

func TestTable1PropertiesAgainstPaper(t *testing.T) {
	p, err := Table1Properties("fv1", 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 9604 {
		t.Errorf("n = %d, want 9604", p.N)
	}
	if math.Abs(p.RhoM-0.8541) > 0.01 {
		t.Errorf("ρ(M) = %.4f, paper: 0.8541", p.RhoM)
	}
	// fv1's cond(D⁻¹A) in the paper is 12.76.
	if p.CondDA < 9 || p.CondDA > 16 {
		t.Errorf("cond(D⁻¹A) = %.3g, paper: 12.76", p.CondDA)
	}
	if p.RhoAbsM >= 1 {
		t.Errorf("ρ(|M|) = %g must be < 1 for fv1", p.RhoAbsM)
	}
}

func TestTable1Renders(t *testing.T) {
	tab, err := Table1(true, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 in short mode", len(tab.Rows))
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "s1rmt3m1") {
		t.Error("table missing s1rmt3m1 row")
	}
}

func TestFig5NonDeterminismSmall(t *testing.T) {
	res, err := Fig5NonDeterminism(NonDetConfig{
		Matrix: "Trefethen_2000", Runs: 8, Iters: 30, CheckpointStep: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 6 {
		t.Fatalf("checkpoints = %v", res.Checkpoints)
	}
	// Average convergence must be monotone decreasing in the mean.
	if !(res.AvgHistory[29] < res.AvgHistory[0]) {
		t.Errorf("no convergence in the mean: %g -> %g", res.AvgHistory[0], res.AvgHistory[29])
	}
	// Non-determinism: some variation must exist across seeded runs.
	varied := false
	for _, v := range res.AbsVariation {
		if v > 0 {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("no variation across runs — chaos not active")
	}
	tab := res.VariationTable()
	if len(tab.Rows) != 6 {
		t.Errorf("variation table rows = %d", len(tab.Rows))
	}
	avg, absV, relV := res.Series()
	if avg.Name == "" || len(absV.Y) != 30 || len(relV.Y) != 30 {
		t.Error("series malformed")
	}
}

func TestFig5RelativeVariationLargerForTrefethen(t *testing.T) {
	// The paper's central §4.1 finding: the relative variation is far
	// larger for Trefethen_2000 (significant off-block mass) than for fv1
	// (nearly block-local). Scaled-down matrices keep the structure.
	if testing.Short() {
		t.Skip("two multi-run studies")
	}
	tre, err := Fig5NonDeterminism(NonDetConfig{
		Matrix: "Trefethen_2000", Runs: 12, Iters: 40, CheckpointStep: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	fv, err := Fig5NonDeterminism(NonDetConfig{
		Matrix: "fv1", Runs: 12, Iters: 40, CheckpointStep: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the peak relative variation over each run (Trefethen
	// saturates at the round-off floor after ~35 iterations, so late
	// fixed-iteration checkpoints are past its operating range). Paper:
	// up to ≈20% for Trefethen_2000 vs well under 1% for fv1.
	peak := func(xs []float64) float64 {
		m := 0.0
		for _, v := range xs {
			if v > m {
				m = v
			}
		}
		return m
	}
	treRel := peak(tre.RelVariation)
	fvRel := peak(fv.RelVariation)
	if !(treRel > 3*fvRel) {
		t.Errorf("peak rel. variation: Trefethen %g should dwarf fv1 %g (paper: ≈20%% vs ≈0.05%%)", treRel, fvRel)
	}
	if treRel < 0.03 {
		t.Errorf("Trefethen peak rel. variation %g too small; paper observes ≈20%%", treRel)
	}
	if fvRel > 0.10 {
		t.Errorf("fv1 peak rel. variation %g too large; paper calls it negligible", fvRel)
	}
}

func TestFig6ConvergenceShape(t *testing.T) {
	series, err := Fig6Convergence("Trefethen_2000", 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	gs, j, a1 := series[0].Y, series[1].Y, series[2].Y
	last := len(gs) - 1
	// Paper: GS converges in considerably fewer iterations; async-(1)
	// behaves like Jacobi.
	if !(gs[last] < j[last]) {
		t.Errorf("GS residual %g should be below Jacobi %g at iteration %d", gs[last], j[last], last+1)
	}
	ratio := a1[last] / j[last]
	if ratio > 1e3 || ratio < 1e-3 {
		t.Errorf("async-(1) (%g) should track Jacobi (%g) within a few orders", a1[last], j[last])
	}
}

func TestFig6DivergesOnS1RMT3M1(t *testing.T) {
	series, err := Fig6Convergence("s1rmt3m1", 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		first, lastFinite := s.Y[0], 0.0
		for _, v := range s.Y {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				lastFinite = v
			}
		}
		if s.Name == "Gauss-Seidel on CPU" {
			continue // GS diverges more slowly; shape varies
		}
		if lastFinite < first {
			t.Errorf("%s should diverge on s1rmt3m1: %g -> %g", s.Name, first, lastFinite)
		}
	}
}

func TestFig7AsyncTwiceAsFastAsGSOnFV(t *testing.T) {
	// The headline claim: async-(5) roughly doubles the Gauss-Seidel
	// convergence rate per iteration on the fv systems (Figure 7b).
	series, err := Fig7Convergence("fv1", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	gs, a5 := series[0].Y, series[1].Y
	tol := gs[len(gs)-1] // level GS reaches after 200 iterations
	gsIt := IterationsToReach(gs, tol*1.0000001)
	a5It := IterationsToReach(a5, tol*1.0000001)
	if a5It == 0 {
		t.Fatal("async-(5) never reached the GS level")
	}
	speedup := float64(gsIt) / float64(a5It)
	if speedup < 1.5 || speedup > 4.5 {
		t.Errorf("async-(5) speedup over GS = %.2f, paper: ≈2 (up to 4 observed)", speedup)
	}
}

func TestFig7Chem97NoLocalGain(t *testing.T) {
	// Chem97ZtZ: diagonal local blocks; async-(5) converges like Jacobi,
	// i.e. *slower per iteration* than Gauss-Seidel.
	series, err := Fig7Convergence("Chem97ZtZ", 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	gs, a5 := series[0].Y, series[1].Y
	tol := gs[0] * 1e-8 // well above the round-off floor both reach eventually
	gsIt := IterationsToReach(gs, tol)
	a5It := IterationsToReach(a5, tol)
	if gsIt == 0 || a5It == 0 {
		t.Fatalf("methods did not reach %g (gs=%d a5=%d)", tol, gsIt, a5It)
	}
	if gsIt >= a5It {
		t.Errorf("on Chem97ZtZ GS (%d iters) should out-converge async-(5) (%d iters)", gsIt, a5It)
	}
}

func TestTable4Overheads(t *testing.T) {
	m := gpusim.CalibratedModel()
	tab, err := Table4LocalIterOverhead(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 || len(tab.Rows[0]) != 6 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig8Shape(t *testing.T) {
	m := gpusim.CalibratedModel()
	series, err := Fig8AvgIterTime(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	gs, j, a1 := series[0].Y, series[1].Y, series[2].Y
	// GS flat; GPU curves decreasing; async below Jacobi everywhere.
	for i := 1; i < len(gs); i++ {
		if gs[i] != gs[0] {
			t.Error("GS average time must be flat")
		}
		if j[i] >= j[i-1] {
			t.Error("Jacobi average time must fall with total iterations")
		}
		if a1[i] >= j[i] {
			t.Error("async-(1) must stay below Jacobi")
		}
	}
	if _, err := Fig8AvgIterTime(m, []int{0}); err == nil {
		t.Error("expected error for non-positive total")
	}
}

func TestTable5MatchesModel(t *testing.T) {
	m := gpusim.CalibratedModel()
	tab, err := Table5AvgIterTimings(m, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Spot-check ordering inside each row: GS > Jacobi > async-(5).
	for _, row := range tab.Rows {
		var gs, j, a5 float64
		if _, err := fmtSscan(row[1], &gs); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(row[2], &j); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(row[3], &a5); err != nil {
			t.Fatal(err)
		}
		if !(a5 < j && j < gs) {
			t.Errorf("%s: ordering violated: %g %g %g", row[0], gs, j, a5)
		}
	}
}

func TestFig9CGBeatsStationaryOnFV(t *testing.T) {
	m := gpusim.CalibratedModel()
	series, err := Fig9ResidualVsTime(m, "fv1", 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, s := range series {
		byName[s.Name] = i
	}
	tol := 1e-6
	tCG := TimeToResidual(series[byName["CG"]], tol)
	tA5 := TimeToResidual(series[byName["async-(5)"]], tol)
	tJ := TimeToResidual(series[byName["Jacobi"]], tol)
	tGS := TimeToResidual(series[byName["Gauss-Seidel"]], tol)
	// Paper Figure 9b: CG fastest, async-(5) ≈ 2× faster than Jacobi,
	// both far ahead of CPU GS.
	if !(tCG < tA5 && tA5 < tJ && tJ < tGS) {
		t.Errorf("time-to-1e-6 ordering violated: CG=%g async5=%g J=%g GS=%g", tCG, tA5, tJ, tGS)
	}
	if r := tJ / tA5; r < 1.3 || r > 4 {
		t.Errorf("async-(5) vs Jacobi time speedup %g, paper: ≈2", r)
	}
	if r := tGS / tA5; r < 4 {
		t.Errorf("async-(5) vs GS time speedup %g, paper: order(s) of magnitude", r)
	}
}

func TestFig9AsyncBeatsCGOnChem97(t *testing.T) {
	// Paper §4.4 on Chem97ZtZ: "the block-asynchronous iteration
	// outperforms not only the Jacobi method, but even the highly
	// optimized CG solver."
	m := gpusim.CalibratedModel()
	series, err := Fig9ResidualVsTime(m, "Chem97ZtZ", 250, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, s := range series {
		byName[s.Name] = i
	}
	tol := 1e-8
	tCG := TimeToResidual(series[byName["CG"]], tol)
	tA5 := TimeToResidual(series[byName["async-(5)"]], tol)
	if !(tA5 <= tCG*1.2) {
		t.Errorf("async-(5) (%g) should be competitive with CG (%g) on Chem97ZtZ", tA5, tCG)
	}
}

func TestFig10FaultCurves(t *testing.T) {
	outcomes, err := Fig10Fault(FaultConfig{Matrix: "Trefethen_2000", Iters: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 5 {
		t.Fatalf("outcomes = %d, want clean + 4 variants", len(outcomes))
	}
	clean := outcomes[0].History
	norec := outcomes[len(outcomes)-1].History
	last := len(clean) - 1
	if !(clean[last] < 1e-10) {
		t.Fatalf("clean run stalled at %g", clean[last])
	}
	if !(norec[last] > 1e4*clean[last] && norec[last] > 1e-12) {
		t.Errorf("no-recovery run should stall far above the clean level: %g vs clean %g",
			norec[last], clean[last])
	}
	// Every recovering run eventually reaches (near) the clean level.
	for _, oc := range outcomes[1 : len(outcomes)-1] {
		if oc.History[last] > 1e-6 {
			t.Errorf("%s stalled at %g", oc.Label, oc.History[last])
		}
	}
	// Longer recovery time ⇒ no earlier convergence.
	tol := 1e-10
	i10 := IterationsToReach(outcomes[1].History, tol)
	i30 := IterationsToReach(outcomes[3].History, tol)
	if i10 == 0 || i30 == 0 {
		t.Fatalf("recovering runs did not reach %g (i10=%d i30=%d)", tol, i10, i30)
	}
	if i30 < i10 {
		t.Errorf("recovery-(30) converged before recovery-(10): %d < %d", i30, i10)
	}
	series := FaultSeries(outcomes)
	if len(series) != 5 || series[0].Name != "no failure" {
		t.Error("FaultSeries malformed")
	}
}

func TestTable6Overheads(t *testing.T) {
	tab, err := Table6RecoveryOverhead([]FaultConfig{
		{Matrix: "Trefethen_2000", Iters: 90, Seed: 3},
	}, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	row := tab.Rows[0]
	var v10, v20, v30 float64
	if _, err := fmtSscan(row[1], &v10); err != nil {
		t.Fatalf("row %v: %v", row, err)
	}
	if _, err := fmtSscan(row[2], &v20); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(row[3], &v30); err != nil {
		t.Fatal(err)
	}
	// Paper Table 6 (Trefethen_2000): 8.16 / 11.45 / 16.61 — overheads
	// grow with the recovery time and stay well under 50%.
	if !(v10 <= v20 && v20 <= v30) {
		t.Errorf("overheads must grow with recovery time: %g %g %g", v10, v20, v30)
	}
	if v10 < 0 || v30 > 250 {
		t.Errorf("overheads out of plausible range: %g .. %g", v10, v30)
	}
}

func TestFig11Bars(t *testing.T) {
	m := gpusim.CalibratedModel()
	bars, err := Fig11MultiGPU(m, multigpu.Supermicro(), Fig11Config{
		RelTolerance: 1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 12 {
		t.Fatalf("bars = %d, want 3 strategies × 4 GPU counts", len(bars))
	}
	get := func(group, label string) barValue {
		for _, b := range bars {
			if b.Group == group && b.Label == label {
				return barValue{Value: b.Value, NA: b.NA}
			}
		}
		t.Fatalf("bar %s/%s not found", group, label)
		return barValue{}
	}
	amc1, amc2 := get("AMC", "1 GPU"), get("AMC", "2 GPUs")
	amc3, amc4 := get("AMC", "3 GPUs"), get("AMC", "4 GPUs")
	if !(amc2.Value < amc1.Value && amc3.Value > amc2.Value && amc4.Value < amc2.Value) {
		t.Errorf("AMC shape wrong: %v %v %v %v", amc1, amc2, amc3, amc4)
	}
	if !get("DC", "3 GPUs").NA || !get("DK", "4 GPUs").NA {
		t.Error("GPU-direct beyond 2 devices must be n/a")
	}
}

func TestScaledJacobiRescue(t *testing.T) {
	series, tau, err := ScaledJacobiRescue(400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 || tau >= 1 {
		t.Errorf("τ = %g, expected in (0,1) for s1rmt3m1", tau)
	}
	plain, scaled := series[0].Y, series[1].Y
	lastFinite := func(ys []float64) float64 {
		out := 0.0
		for _, v := range ys {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				out = v
			}
		}
		return out
	}
	if lastFinite(plain) < plain[0] {
		t.Error("plain Jacobi should diverge on s1rmt3m1")
	}
	if !(lastFinite(scaled) < scaled[0]) {
		t.Errorf("scaled Jacobi should converge: %g -> %g", scaled[0], lastFinite(scaled))
	}
}

func TestBlockSizeAblation(t *testing.T) {
	tab, err := BlockSizeAblation("fv1", []int{32, 448, 2048}, 1e-8, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Larger blocks capture more coupling: the off-block fraction column
	// must be non-increasing.
	var prev float64 = 2
	for _, row := range tab.Rows {
		var f float64
		if _, err := fmtSscan(row[2], &f); err != nil {
			t.Fatal(err)
		}
		if f > prev+1e-9 {
			t.Errorf("off-block fraction must not grow with block size: %v", tab.Rows)
		}
		prev = f
	}
}

func TestLocalItersAblation(t *testing.T) {
	tab, err := LocalItersAblation("fv1", []int{1, 5}, 1e-8, 2000, 448, 1)
	if err != nil {
		t.Fatal(err)
	}
	var i1, i5 float64
	if _, err := fmtSscan(tab.Rows[0][1], &i1); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[1][1], &i5); err != nil {
		t.Fatal(err)
	}
	if !(i5 < i1) {
		t.Errorf("async-(5) must need fewer global iterations than async-(1): %g vs %g", i5, i1)
	}
}
