package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/mats"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// Table is a rendered-ready experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render writes the table with aligned columns.
func (t Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := len(t.Columns) - 1
	for _, w := range widths {
		total += w + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// matrix caching: the generators are deterministic, and several experiments
// share matrices, so generate each one once per process.
var (
	matMu    sync.Mutex
	matCache = map[string]mats.TestMatrix{}
)

// Matrix returns the named paper matrix, cached.
func Matrix(name string) (mats.TestMatrix, error) {
	matMu.Lock()
	defer matMu.Unlock()
	if m, ok := matCache[name]; ok {
		return m, nil
	}
	m, err := mats.Generate(name)
	if err != nil {
		return mats.TestMatrix{}, err
	}
	matCache[name] = m
	return m, nil
}

// OnesRHS returns b = A·1, the experiment convention (exact solution = ones;
// one right-hand side per system, paper §3.1).
func OnesRHS(a *sparse.CSR) []float64 {
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	return b
}

// relativize divides a residual history by its starting residual ‖b−Ax₀‖ =
// ‖b‖ (zero initial guess), producing the paper's "relative residual".
func relativize(history []float64, b []float64) []float64 {
	r0 := vecmath.Nrm2(b)
	if r0 == 0 {
		r0 = 1
	}
	out := make([]float64, len(history))
	for i, v := range history {
		out[i] = v / r0
	}
	return out
}

// iota2float builds the x-axis 1..n.
func iota2float(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return xs
}

// fmtG renders a float compactly for table cells.
func fmtG(v float64) string { return fmt.Sprintf("%.6g", v) }

// fmtE renders a float in the paper's scientific style.
func fmtE(v float64) string { return fmt.Sprintf("%.4e", v) }
