package experiments

import (
	"fmt"

	"repro/internal/spectral"
)

// MatrixProperties holds one row of Table 1.
type MatrixProperties struct {
	Name        string
	Description string
	N, NNZ      int
	CondA       float64 // cond(A) = λmax/λmin (SPD definition)
	CondDA      float64 // cond(D⁻¹A) via the normalized matrix N = D^{-1/2}AD^{-1/2}
	RhoM        float64 // ρ(B), B = I − D⁻¹A — the paper's ρ(M)
	RhoAbsM     float64 // ρ(|B|), the Strikwerda asynchronous bound (extension column)
}

// Table1Properties computes the measured properties of the named generated
// matrix. lanczosSteps bounds the eigenvalue estimation effort.
func Table1Properties(name string, lanczosSteps int, seed int64) (MatrixProperties, error) {
	tm, err := Matrix(name)
	if err != nil {
		return MatrixProperties{}, err
	}
	a := tm.A
	p := MatrixProperties{Name: tm.Name, Description: tm.Description, N: a.Rows, NNZ: a.NNZ()}

	if p.CondA, err = spectral.ConditionNumber(a, lanczosSteps, seed); err != nil {
		// Extremely ill-conditioned analogs (s1rmt3m1) may not resolve
		// λmin in the step budget; report the Gershgorin-based upper scale
		// instead of failing the whole table.
		lo, hi := spectral.GershgorinBounds(a)
		if lo <= 0 {
			lo = 1e-300
		}
		p.CondA = hi / lo
	}
	nm, err := spectral.NormalizedMatrix(a)
	if err != nil {
		return MatrixProperties{}, fmt.Errorf("table1 %s: %w", name, err)
	}
	if e, lerr := spectral.LanczosExtremes(nm, lanczosSteps, seed); lerr == nil && e.Min > 0 {
		p.CondDA = e.Max / e.Min
	}
	if p.RhoM, err = spectral.JacobiSpectralRadius(a, seed); err != nil && p.RhoM == 0 {
		return MatrixProperties{}, fmt.Errorf("table1 %s: ρ(B): %w", name, err)
	}
	if p.RhoAbsM, err = spectral.AbsJacobiSpectralRadius(a, seed); err != nil && p.RhoAbsM == 0 {
		return MatrixProperties{}, fmt.Errorf("table1 %s: ρ(|B|): %w", name, err)
	}
	return p, nil
}

// Table1 regenerates the paper's Table 1 for the generated matrices,
// adding a measured ρ(|B|) column. Set short to skip Trefethen_20000 (its
// eigenvalue estimation dominates the runtime).
func Table1(short bool, lanczosSteps int, seed int64) (Table, error) {
	t := Table{
		Title:   "Table 1: dimension and characteristics of the SPD test matrices (measured on generated analogs)",
		Columns: []string{"Matrix", "Description", "#n", "#nnz", "cond(A)", "cond(D^-1 A)", "rho(M)", "rho(|M|)"},
	}
	names := []string{"Chem97ZtZ", "fv1", "fv2", "fv3", "s1rmt3m1", "Trefethen_2000"}
	if !short {
		names = append(names, "Trefethen_20000")
	}
	for _, name := range names {
		p, err := Table1Properties(name, lanczosSteps, seed)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			p.Name, p.Description,
			fmt.Sprintf("%d", p.N), fmt.Sprintf("%d", p.NNZ),
			fmt.Sprintf("%.2e", p.CondA), fmt.Sprintf("%.4g", p.CondDA),
			fmt.Sprintf("%.4f", p.RhoM), fmt.Sprintf("%.4f", p.RhoAbsM),
		})
	}
	return t, nil
}
