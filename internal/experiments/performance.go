package experiments

import (
	"fmt"
	"math"

	"repro/internal/gpusim"
	"repro/internal/plot"
)

// Fig9ResidualVsTime regenerates one panel of Figure 9: the relative
// residual as a function of (modeled) solver runtime for Gauss-Seidel
// (CPU), Jacobi (GPU), async-(5) (GPU) and CG (GPU). Convergence histories
// are computed by the actual solvers; the time axis comes from the
// calibrated performance model (setup + per-iteration cost).
//
// The paper restricts the figure to Chem97ZtZ, fv1, fv3 and
// Trefethen_2000 (fv2 duplicates fv1; no method suits s1rmt3m1).
func Fig9ResidualVsTime(m gpusim.PerfModel, matrix string, iters int, seed int64) ([]plot.Series, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("experiments: iters must be positive, have %d", iters)
	}
	tm, err := Matrix(matrix)
	if err != nil {
		return nil, err
	}
	n, nnz := tm.A.Rows, tm.A.NNZ()
	b := OnesRHS(tm.A)

	gsH, err := runGS(matrix, iters)
	if err != nil {
		return nil, err
	}
	jH, err := runJacobi(matrix, iters)
	if err != nil {
		return nil, err
	}
	a5H, err := runAsync(matrix, iters, 5, seed)
	if err != nil {
		return nil, err
	}
	cgH, err := runCG(matrix, iters)
	if err != nil {
		return nil, err
	}

	timeAxis := func(perIter, setup float64, k int) []float64 {
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = setup + float64(i+1)*perIter
		}
		return xs
	}
	setup := m.GPUSetupTime(n, nnz)
	return []plot.Series{
		{Name: "Gauss-Seidel", X: timeAxis(m.GaussSeidelIterTime(n, nnz), 0, iters), Y: relativize(gsH, b)},
		{Name: "Jacobi", X: timeAxis(m.JacobiIterTime(n, nnz), setup, iters), Y: relativize(jH, b)},
		{Name: "async-(5)", X: timeAxis(m.AsyncIterTime(n, nnz, 5), setup, iters), Y: relativize(a5H, b)},
		{Name: "CG", X: timeAxis(m.CGIterTime(n, nnz), setup, iters), Y: relativize(cgH, b)},
	}, nil
}

// TimeToResidual returns the modeled time at which the series first
// reaches tol, or +Inf if it never does. Series produced by
// Fig9ResidualVsTime are (time, relative residual) pairs.
func TimeToResidual(s plot.Series, tol float64) float64 {
	for i, y := range s.Y {
		if y <= tol {
			return s.X[i]
		}
	}
	return math.Inf(1)
}
