package experiments

import (
	"math"
	"testing"
)

func TestScaledAsyncRescue(t *testing.T) {
	series, tau, err := ScaledAsyncRescue(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 || tau >= 1 {
		t.Errorf("τ = %g, want in (0,1)", tau)
	}
	lastFinite := func(ys []float64) float64 {
		out := 0.0
		for _, v := range ys {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				out = v
			}
		}
		return out
	}
	plain, scaled := series[0].Y, series[1].Y
	if lastFinite(plain) < plain[0] {
		t.Error("plain async-(5) should diverge on s1rmt3m1")
	}
	// The scaled iteration converges, but slowly: the analog's λ_min is
	// dominated by the tiny diagonal shift, so the asymptotic rate is
	// barely below one (the paper's remark promises convergence, not
	// speed). Two orders of magnitude in 300 iterations is the realistic
	// transient.
	if !(lastFinite(scaled) < scaled[0]*0.05) {
		t.Errorf("ω=τ async-(5) should converge: %g -> %g", scaled[0], lastFinite(scaled))
	}
}

func TestSilentErrorDetectionExperiment(t *testing.T) {
	series, injectAt, flagged, err := SilentErrorDetection("fv1", 25, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Y) != 60 {
		t.Fatalf("series length %d", len(series.Y))
	}
	if flagged == 0 {
		t.Fatal("detector missed the silent error")
	}
	if flagged < injectAt || flagged > injectAt+3 {
		t.Errorf("flagged at %d, injection at %d", flagged, injectAt)
	}
}

func TestMultigridSmootherComparison(t *testing.T) {
	tab, err := MultigridSmootherComparison(31, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Every smoother converges within the 100-cycle budget.
	for _, row := range tab.Rows {
		if row[2] == "n/a" {
			t.Errorf("smoother %s did not converge", row[0])
		}
	}
}

func TestAsyncPreconditionedGMRES(t *testing.T) {
	tab, err := AsyncPreconditionedGMRES("fv1", 1e-9, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var plain, async float64
	if _, err := fmtSscan(tab.Rows[0][1], &plain); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[2][1], &async); err != nil {
		t.Fatal(err)
	}
	if tab.Rows[2][2] != "true" {
		t.Fatal("async-preconditioned GMRES did not converge")
	}
	if !(async < plain) {
		t.Errorf("async preconditioning should reduce iterations: %g vs %g", async, plain)
	}
}

func TestTunedParameters(t *testing.T) {
	tab, err := TunedParameters([]string{"fv1", "Chem97ZtZ", "s1rmt3m1"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// fv1 must tune to k >= 2; s1rmt3m1 has no contracting configuration.
	var kFV float64
	if _, err := fmtSscan(tab.Rows[0][2], &kFV); err != nil {
		t.Fatal(err)
	}
	if kFV < 2 {
		t.Errorf("fv1 tuned to k=%g, want ≥2", kFV)
	}
	if tab.Rows[2][1] != "n/a" {
		t.Errorf("s1rmt3m1 should have no tuned configuration: %v", tab.Rows[2])
	}
}
