package experiments

import (
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/gpusim"
)

// ExascaleArgument reproduces the paper's §4.5 qualitative claim as a
// simulated-time sweep: as the system's mean time between failures (MTBF)
// shrinks, a checkpoint/rollback synchronous solver first loses
// efficiency, then stops finishing at all ("constantly being restarted"),
// while the asynchronous method — which never loses progress and only
// pays a reassignment delay per failure — keeps converging.
//
// The solver workload is the fv1 solve (modeled per-iteration times);
// MTBFs are multiples of the per-iteration time.
func ExascaleArgument(m gpusim.PerfModel, seed int64) (Table, error) {
	tm, err := Matrix("fv1")
	if err != nil {
		return Table{}, err
	}
	n, nnz := tm.A.Rows, tm.A.NNZ()
	iterTime := m.JacobiIterTime(n, nnz) // synchronous method's iteration
	asyncIter := m.AsyncIterTime(n, nnz, 5)
	iters := 130 // fv1's convergence horizon (Table 2)

	t := Table{
		Title: "Extension: checkpointed synchronous vs asynchronous solve under failures (paper §4.5)",
		Columns: []string{"MTBF [iters]", "sync finished", "sync time [s]", "sync efficiency",
			"async finished", "async time [s]"},
	}
	for _, mtbfIters := range []float64{1000, 100, 30, 10, 3, 1} {
		cfg := checkpoint.Config{
			IterTime:         iterTime,
			CheckpointTime:   5 * iterTime, // persisting the iterate costs several sweeps
			Interval:         10,
			RestartTime:      20 * iterTime, // detection + restore + relaunch
			MTBF:             mtbfIters * iterTime,
			IterationsNeeded: iters,
			TimeBudget:       10000 * iterTime,
			Seed:             seed,
		}
		syncRes, syncErr := checkpoint.RunSynchronous(cfg)
		if syncErr != nil && !errors.Is(syncErr, checkpoint.ErrBudgetExceeded) {
			return Table{}, syncErr
		}

		acfg := cfg
		acfg.IterTime = asyncIter
		acfg.MTBF = mtbfIters * iterTime // same absolute failure process
		// Reassignment delay ≈ 10 global iterations (paper Table 6's
		// recovery-(10)); convergence continues at 3/4 rate during the
		// outage (25 % of the blocks are dead).
		asyncRes, asyncErr := checkpoint.RunAsynchronous(acfg, 10*asyncIter, 0.75)
		if asyncErr != nil && !errors.Is(asyncErr, checkpoint.ErrBudgetExceeded) {
			return Table{}, asyncErr
		}

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", mtbfIters),
			fmt.Sprintf("%v", syncRes.Finished),
			fmt.Sprintf("%.3f", syncRes.TotalTime),
			fmt.Sprintf("%.2f", syncRes.Efficiency()),
			fmt.Sprintf("%v", asyncRes.Finished),
			fmt.Sprintf("%.3f", asyncRes.TotalTime),
		})
	}
	return t, nil
}
