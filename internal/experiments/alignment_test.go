package experiments

import "testing"

func TestBlockAlignmentAblation(t *testing.T) {
	tab, err := BlockAlignmentAblation(40, 0.01, 1e-8, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var across, along float64
	if _, err := fmtSscan(tab.Rows[0][2], &across); err != nil {
		t.Fatalf("row %v: %v", tab.Rows[0], err)
	}
	if _, err := fmtSscan(tab.Rows[1][2], &along); err != nil {
		t.Fatalf("row %v: %v", tab.Rows[1], err)
	}
	// Aligning the blocks with the strong coupling must win decisively
	// (line relaxation vs point-Jacobi-like behaviour).
	if !(along*3 <= across) {
		t.Errorf("aligned blocks (%g iters) should beat misaligned (%g) by ≥3x", along, across)
	}
	if _, err := BlockAlignmentAblation(2, 0.01, 1e-8, 10, 1); err == nil {
		t.Error("expected grid validation error")
	}
}
