// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment is one function returning structured
// data (a Table or plot.Series values) that cmd/benchtables renders; the
// benchmark harness in the repository root wraps the same functions in
// testing.B benches.
//
// Experiment index (see DESIGN.md §4 for the full mapping):
//
//	Table1                — matrix properties
//	Fig5NonDeterminism    — convergence variation across runs (+ Tables 2, 3)
//	Fig6Convergence       — GS vs Jacobi vs async-(1), residual per iteration
//	Fig7Convergence       — GS vs async-(5)
//	Table4LocalIterOverhead — cost of local sweeps, fv3
//	Fig8AvgIterTime       — average iteration time vs total iterations, fv3
//	Table5AvgIterTimings  — average per-iteration times, all matrices
//	Fig9ResidualVsTime    — residual vs wall time incl. CG
//	Fig10Fault, Table6RecoveryOverhead — failure and recovery
//	Fig11MultiGPU         — AMC/DC/DK on 1–4 GPUs
//	ScaledJacobiRescue    — the §4.2 τ-scaling extension on s1rmt3m1
package experiments
