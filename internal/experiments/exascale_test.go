package experiments

import (
	"testing"

	"repro/internal/gpusim"
)

func TestExascaleArgument(t *testing.T) {
	tab, err := ExascaleArgument(gpusim.CalibratedModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At generous MTBF both finish; at the harshest MTBF the synchronous
	// solver must fail while the asynchronous one still finishes.
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if first[1] != "true" || first[4] != "true" {
		t.Errorf("both should finish at MTBF=1000 iters: %v", first)
	}
	if last[1] != "false" {
		t.Errorf("checkpointed sync should stall at MTBF=1 iter: %v", last)
	}
	if last[4] != "true" {
		t.Errorf("async should still finish at MTBF=1 iter: %v", last)
	}
	// Efficiency of the synchronous solver must degrade monotonically-ish
	// down the table: compare first vs mid.
	var effHigh, effMid float64
	if _, err := fmtSscan(first[3], &effHigh); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[3][3], &effMid); err != nil {
		t.Fatal(err)
	}
	if !(effMid < effHigh) {
		t.Errorf("sync efficiency should degrade with failure rate: %g -> %g", effHigh, effMid)
	}
}
