package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mats"
	"repro/internal/multigrid"
	"repro/internal/plot"
	"repro/internal/solver"
	"repro/internal/spectral"
	"repro/internal/stats"
	"repro/internal/tune"
	"repro/internal/vecmath"
)

// ScaledAsyncRescue extends the paper's §4.2 remark to the asynchronous
// method itself: block-asynchronous iteration with the relaxation weight
// ω = τ = 2/(λ₁+λ_n) converges on the s1rmt3m1 analog where the plain
// scheme diverges. Returns the two relative-residual curves and τ.
func ScaledAsyncRescue(iters int, seed int64) ([]plot.Series, float64, error) {
	if iters <= 0 {
		return nil, 0, fmt.Errorf("experiments: iters must be positive, have %d", iters)
	}
	tm, err := Matrix("s1rmt3m1")
	if err != nil {
		return nil, 0, err
	}
	a := tm.A
	b := OnesRHS(a)
	tau, err := spectral.TauScaling(a, 200, seed)
	if err != nil {
		return nil, 0, err
	}
	run := func(omega float64, iters int) ([]float64, error) {
		res, err := core.Solve(a, b, core.Options{
			BlockSize:      448,
			LocalIters:     5,
			MaxGlobalIters: iters,
			RecordHistory:  true,
			Seed:           seed,
			Omega:          omega,
		})
		if err != nil && !errors.Is(err, core.ErrDiverged) {
			return nil, err
		}
		return relativize(stats.PadHistory(res.History, iters), b), nil
	}
	plain, err := run(1, iters)
	if err != nil {
		return nil, 0, err
	}
	scaled, err := run(tau, iters)
	if err != nil {
		return nil, 0, err
	}
	x := iota2float(iters)
	return []plot.Series{
		{Name: "async-(5), ω=1 (diverges)", X: x, Y: plain},
		{Name: fmt.Sprintf("async-(5), ω=τ=%.4f", tau), X: x, Y: scaled},
	}, tau, nil
}

// SilentErrorDetection runs the §4.5 silent-error scenario: a bit flip is
// injected into the iterate mid-solve; the convergence monitor flags the
// anomaly from the residual history alone. Returns the residual curve, the
// injection iteration and the iteration at which the detector fired
// (0 = missed).
func SilentErrorDetection(matrix string, injectAt, iters int, seed int64) (plot.Series, int, int, error) {
	tm, err := Matrix(matrix)
	if err != nil {
		return plot.Series{}, 0, 0, err
	}
	a := tm.A
	b := OnesRHS(a)
	sc, err := fault.NewSilentCorruptor([]int{injectAt}, seed)
	if err != nil {
		return plot.Series{}, 0, 0, err
	}
	res, err := core.Solve(a, b, core.Options{
		BlockSize:      128,
		LocalIters:     5,
		MaxGlobalIters: iters,
		RecordHistory:  true,
		Seed:           seed,
		AfterIteration: sc.Corrupt,
	})
	if err != nil {
		return plot.Series{}, 0, 0, err
	}
	det := fault.NewDetector(5, 10)
	flagged := 0
	for i, r := range res.History {
		if det.Observe(r) && flagged == 0 {
			flagged = i + 1
		}
	}
	rel := relativize(stats.PadHistory(res.History, iters), b)
	return plot.Series{Name: "async-(5) with silent bit flip", X: iota2float(iters), Y: rel},
		injectAt, flagged, nil
}

// MultigridSmootherComparison compares V-cycle counts on the 2-D Poisson
// problem for damped Jacobi, Gauss-Seidel and block-asynchronous smoothing
// (the paper's §5 outlook).
func MultigridSmootherComparison(grid int, relTol float64) (Table, error) {
	b := mgRHS(grid)
	tol := relTol * vecmath.Nrm2(b)
	t := Table{
		Title:   fmt.Sprintf("Extension: V-cycle counts on %dx%d Poisson by smoother (paper §5)", grid, grid),
		Columns: []string{"smoother", "levels", "cycles", "final residual"},
	}
	smoothers := []multigrid.Smoother{
		multigrid.JacobiSmoother{Sweeps: 2, Omega: 0.8},
		multigrid.GaussSeidelSmoother{Sweeps: 2},
		&multigrid.AsyncSmoother{BlockSize: 64, LocalIters: 2, GlobalIters: 1},
	}
	for _, sm := range smoothers {
		s, err := multigrid.New(multigrid.Options{Width: grid, Height: grid, Smoother: sm})
		if err != nil {
			return Table{}, err
		}
		res, err := s.Solve(b, tol, 100)
		if err != nil {
			return Table{}, err
		}
		cycles := "n/a"
		if res.Converged {
			cycles = fmt.Sprintf("%d", res.Cycles)
		}
		t.Rows = append(t.Rows, []string{
			sm.Name(), fmt.Sprintf("%d", s.NumLevels()), cycles, fmt.Sprintf("%.2e", res.Residual),
		})
	}
	return t, nil
}

func mgRHS(grid int) []float64 {
	a := mats.Poisson2D(grid, grid)
	return OnesRHS(a)
}

// TunedParameters runs tune.Tune on the convergent paper systems and
// tabulates the winning (BlockSize, LocalIters, ω) per matrix — automating
// the paper's §3.2 "empirically based tuning" and addressing the §5 open
// problem of parameter choice.
func TunedParameters(matrices []string, seed int64) (Table, error) {
	t := Table{
		Title:   "Extension: empirically tuned async-(k) parameters (paper §3.2/§5)",
		Columns: []string{"matrix", "block size", "local iters k", "omega", "rate/global iter", "modeled s/digit"},
	}
	for _, name := range matrices {
		tm, err := Matrix(name)
		if err != nil {
			return Table{}, err
		}
		b := OnesRHS(tm.A)
		res, err := tune.Tune(tm.A, b, tune.Config{Seed: seed})
		if err != nil {
			t.Rows = append(t.Rows, []string{name, "n/a", "n/a", "n/a", "n/a", "n/a"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", res.BlockSize),
			fmt.Sprintf("%d", res.LocalIters),
			fmt.Sprintf("%.3f", res.Omega),
			fmt.Sprintf("%.4f", res.Rate),
			fmt.Sprintf("%.5f", res.SecondsPerDigit),
		})
	}
	return t, nil
}

// AsyncPreconditionedGMRES compares plain, Jacobi-preconditioned and
// async-(k)-preconditioned GMRES(30) iteration counts on the given system
// (the paper's §5 "use as preconditioner" outlook).
func AsyncPreconditionedGMRES(matrix string, relTol float64, maxIters int, seed int64) (Table, error) {
	tm, err := Matrix(matrix)
	if err != nil {
		return Table{}, err
	}
	a := tm.A
	b := OnesRHS(a)
	tol := relTol * vecmath.Nrm2(b)
	t := Table{
		Title:   fmt.Sprintf("Extension: GMRES(30) iterations on %s by preconditioner (paper §5)", matrix),
		Columns: []string{"preconditioner", "iterations", "converged"},
	}
	jac, err := solver.NewJacobiPreconditioner(a)
	if err != nil {
		return Table{}, err
	}
	async, err := core.NewAsyncPreconditioner(a, 448, 2, 2, seed)
	if err != nil {
		return Table{}, err
	}
	cases := []struct {
		name string
		p    solver.Preconditioner
	}{
		{"none", nil},
		{"Jacobi (D^-1)", jac},
		{"async-(2), 2 sweeps", async},
	}
	for _, c := range cases {
		res, err := solver.GMRES(a, b, 30, c.p, solver.Options{MaxIterations: maxIters, Tolerance: tol})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			c.name, fmt.Sprintf("%d", res.Iterations), fmt.Sprintf("%v", res.Converged),
		})
	}
	return t, nil
}
