package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/sparse"
)

// BlockAlignmentAblation demonstrates the §5 open problem of choosing
// subdomains "with respect to the problem" on a crisp instance: the
// anisotropic operator −εu_xx − u_yy couples strongly along y. With
// column-major numbering a block of h rows is exactly one strongly coupled
// grid line, so the local sweeps act as a line relaxation; with row-major
// numbering the same block cuts across the strong direction and the local
// sweeps buy almost nothing. Both orderings describe the *same* matrix
// (symmetric permutation), so the iteration counts isolate pure alignment.
func BlockAlignmentAblation(grid int, eps, relTol float64, maxIters int, seed int64) (Table, error) {
	if grid < 4 {
		return Table{}, fmt.Errorf("experiments: grid %d too small", grid)
	}
	rowMajor := mats.Anisotropic2D(grid, grid, eps)
	colPerm := mats.TilePermutation(grid, grid, 1, grid)
	colMajor, err := sparse.PermuteSym(rowMajor, colPerm)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		Title: fmt.Sprintf("Extension: subdomain alignment on the anisotropic operator (ε=%g, %dx%d, blocks of one grid line)",
			eps, grid, grid),
		Columns: []string{"ordering", "strong direction", "async-(5) iters to rel " + fmt.Sprintf("%.0e", relTol)},
	}
	cases := []struct {
		name, dir string
		a         *sparse.CSR
	}{
		{"row-major", "cut across blocks", rowMajor},
		{"column-major", "inside each block", colMajor},
	}
	for _, c := range cases {
		b := OnesRHS(c.a)
		res, err := core.Solve(c.a, b, core.Options{
			BlockSize:      grid, // one grid line per block
			LocalIters:     5,
			MaxGlobalIters: maxIters,
			RecordHistory:  true,
			Seed:           seed,
		})
		if err != nil {
			return Table{}, err
		}
		it := IterationsToReach(relativize(res.History, b), relTol)
		cell := "n/a"
		if it > 0 {
			cell = fmt.Sprintf("%d", it)
		}
		t.Rows = append(t.Rows, []string{c.name, c.dir, cell})
	}
	return t, nil
}
