package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/solver"
	"repro/internal/stats"
)

// Fig6Iters returns the paper's per-matrix iteration budget for the
// convergence figures: 25000 for fv3 (Figure 6d), 200 otherwise.
func Fig6Iters(matrix string) int {
	if matrix == "fv3" {
		return 25000
	}
	return 200
}

// runGS, runJacobi and runAsync produce full-length (padded) absolute
// residual histories over exactly iters iterations, tolerating divergence
// (the s1rmt3m1 panels plot the diverging residual as far as it stays
// finite, like the paper's Figure 6e/7e).
func runGS(matrix string, iters int) ([]float64, error) {
	tm, err := Matrix(matrix)
	if err != nil {
		return nil, err
	}
	b := OnesRHS(tm.A)
	res, err := solver.GaussSeidel(tm.A, b, solver.Options{
		MaxIterations: iters, RecordHistory: true,
	})
	if err != nil && !errors.Is(err, solver.ErrDiverged) {
		return nil, err
	}
	return stats.PadHistory(res.History, iters), nil
}

func runJacobi(matrix string, iters int) ([]float64, error) {
	tm, err := Matrix(matrix)
	if err != nil {
		return nil, err
	}
	b := OnesRHS(tm.A)
	res, err := solver.Jacobi(tm.A, b, solver.Options{
		MaxIterations: iters, RecordHistory: true,
	})
	if err != nil && !errors.Is(err, solver.ErrDiverged) {
		return nil, err
	}
	return stats.PadHistory(res.History, iters), nil
}

func runCG(matrix string, iters int) ([]float64, error) {
	tm, err := Matrix(matrix)
	if err != nil {
		return nil, err
	}
	b := OnesRHS(tm.A)
	res, err := solver.CG(tm.A, b, solver.Options{
		MaxIterations: iters, RecordHistory: true,
	})
	if err != nil && !errors.Is(err, solver.ErrDiverged) {
		// CG legitimately breaks down on systems it cannot handle; keep
		// whatever history exists (possibly empty) rather than failing the
		// whole figure.
		if res.History == nil {
			return stats.PadHistory(nil, iters), nil
		}
	}
	return stats.PadHistory(res.History, iters), nil
}

func runAsync(matrix string, iters, localIters int, seed int64) ([]float64, error) {
	tm, err := Matrix(matrix)
	if err != nil {
		return nil, err
	}
	b := OnesRHS(tm.A)
	res, err := core.Solve(tm.A, b, core.Options{
		BlockSize:      448, // the paper's production block size (§3.2)
		LocalIters:     localIters,
		MaxGlobalIters: iters,
		RecordHistory:  true,
		Seed:           seed,
	})
	if err != nil && !errors.Is(err, core.ErrDiverged) {
		return nil, err
	}
	return stats.PadHistory(res.History, iters), nil
}

// Fig6Convergence regenerates one panel of Figure 6: absolute residual per
// iteration for Gauss-Seidel (CPU), Jacobi (GPU) and async-(1) (GPU).
func Fig6Convergence(matrix string, iters int, seed int64) ([]plot.Series, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("experiments: iters must be positive, have %d", iters)
	}
	gs, err := runGS(matrix, iters)
	if err != nil {
		return nil, err
	}
	j, err := runJacobi(matrix, iters)
	if err != nil {
		return nil, err
	}
	a1, err := runAsync(matrix, iters, 1, seed)
	if err != nil {
		return nil, err
	}
	x := iota2float(iters)
	return []plot.Series{
		{Name: "Gauss-Seidel on CPU", X: x, Y: gs},
		{Name: "Jacobi on GPU", X: x, Y: j},
		{Name: "async-(1) on GPU", X: x, Y: a1},
	}, nil
}

// Fig7Convergence regenerates one panel of Figure 7: Gauss-Seidel vs
// async-(5), residual per (global) iteration.
func Fig7Convergence(matrix string, iters int, seed int64) ([]plot.Series, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("experiments: iters must be positive, have %d", iters)
	}
	gs, err := runGS(matrix, iters)
	if err != nil {
		return nil, err
	}
	a5, err := runAsync(matrix, iters, 5, seed)
	if err != nil {
		return nil, err
	}
	x := iota2float(iters)
	return []plot.Series{
		{Name: "Gauss-Seidel on CPU", X: x, Y: gs},
		{Name: "async-(5) on GPU", X: x, Y: a5},
	}, nil
}

// ConvergenceCrossover reports the first 1-based iteration at which the
// candidate history drops below the reference history and stays below for
// the remainder, or 0 if it never does. Used by tests to assert "async-(5)
// converges about twice as fast as Gauss-Seidel" style claims.
func ConvergenceCrossover(reference, candidate []float64) int {
	n := len(reference)
	if len(candidate) < n {
		n = len(candidate)
	}
	for i := 0; i < n; i++ {
		if candidate[i] < reference[i] {
			ok := true
			for j := i; j < n; j++ {
				if candidate[j] >= reference[j] {
					ok = false
					break
				}
			}
			if ok {
				return i + 1
			}
		}
	}
	return 0
}

// IterationsToReach returns the first 1-based iteration at which the
// history reaches tol, or 0 if it never does.
func IterationsToReach(history []float64, tol float64) int {
	for i, v := range history {
		if v <= tol {
			return i + 1
		}
	}
	return 0
}
