package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/stats"
)

// NonDetConfig configures the §4.1 non-determinism study (Figure 5,
// Tables 2 and 3).
type NonDetConfig struct {
	Matrix string
	// Runs is the number of independent solver runs (paper: 1000; harness
	// default 100 — the statistics concentrate quickly).
	Runs int
	// Iters is the number of global iterations per run (paper: 150 for
	// fv1, 50 for Trefethen_2000).
	Iters int
	// CheckpointStep spaces the table rows (paper: 10 for fv1, 5 for
	// Trefethen_2000).
	CheckpointStep int
	// Engine: EngineSimulated varies the seeded chaotic schedule per run
	// (reproducible); EngineGoroutine uses real interleaving chaos.
	Engine core.EngineKind
	// BlockSize defaults to 128, the paper's choice for this study ("a
	// moderate block size of 128, which allows for a strong influence of
	// the non-deterministic GPU-internal scheduling").
	BlockSize int
	BaseSeed  int64
}

func (c NonDetConfig) withDefaults() NonDetConfig {
	if c.BlockSize == 0 {
		c.BlockSize = 128
	}
	if c.CheckpointStep == 0 {
		c.CheckpointStep = 10
	}
	return c
}

// NonDetResult is the outcome of the study for one matrix.
type NonDetResult struct {
	Matrix      string
	Checkpoints []int
	Summaries   []stats.Summary
	// AvgHistory is the run-averaged relative residual per iteration
	// (Figure 5a/5b).
	AvgHistory []float64
	// AbsVariation and RelVariation per iteration (Figures 5c–5f).
	AbsVariation []float64
	RelVariation []float64
}

// Fig5NonDeterminism runs the repeated-solve study. Each run uses a
// distinct scheduler seed (simulated engine) or the natural race outcome
// (goroutine engine); relative residuals are aggregated per iteration.
func Fig5NonDeterminism(cfg NonDetConfig) (NonDetResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Runs <= 0 || cfg.Iters <= 0 {
		return NonDetResult{}, fmt.Errorf("experiments: Runs and Iters must be positive, have %d, %d", cfg.Runs, cfg.Iters)
	}
	tm, err := Matrix(cfg.Matrix)
	if err != nil {
		return NonDetResult{}, err
	}
	a := tm.A
	b := OnesRHS(a)
	rm := stats.NewRunMatrix(cfg.Iters)
	for run := 0; run < cfg.Runs; run++ {
		res, err := core.Solve(a, b, core.Options{
			BlockSize:      cfg.BlockSize,
			LocalIters:     5, // the paper's async-(5)
			MaxGlobalIters: cfg.Iters,
			Tolerance:      0, // run the full iteration budget
			RecordHistory:  true,
			Engine:         cfg.Engine,
			Seed:           cfg.BaseSeed + int64(run),
		})
		if err != nil {
			return NonDetResult{}, fmt.Errorf("experiments: run %d: %w", run, err)
		}
		if err := rm.Add(relativize(stats.PadHistory(res.History, cfg.Iters), b)); err != nil {
			return NonDetResult{}, err
		}
	}

	out := NonDetResult{Matrix: cfg.Matrix}
	for it := cfg.CheckpointStep; it <= cfg.Iters; it += cfg.CheckpointStep {
		out.Checkpoints = append(out.Checkpoints, it)
	}
	if out.Summaries, err = rm.Checkpoints(out.Checkpoints); err != nil {
		return NonDetResult{}, err
	}
	out.AvgHistory = make([]float64, cfg.Iters)
	out.AbsVariation = make([]float64, cfg.Iters)
	out.RelVariation = make([]float64, cfg.Iters)
	for i := 0; i < cfg.Iters; i++ {
		s, err := rm.AtIteration(i)
		if err != nil {
			return NonDetResult{}, err
		}
		out.AvgHistory[i] = s.Mean
		out.AbsVariation[i] = s.AbsVariation
		out.RelVariation[i] = s.RelVariation
	}
	return out, nil
}

// VariationTable renders the paper's Table 2/3 layout from the study
// result: per checkpoint, average/max/min residual, absolute and relative
// variation, variance, standard deviation, standard error.
func (r NonDetResult) VariationTable() Table {
	t := Table{
		Title: fmt.Sprintf("Tables 2/3: variations and statistics of the convergence of %d runs on %s",
			summaryRuns(r.Summaries), r.Matrix),
		Columns: []string{"# global iters", "averg. res.", "max. res.", "min. res.",
			"abs. var.", "rel. var.", "variance", "std. dev.", "std. err."},
	}
	for i, cp := range r.Checkpoints {
		s := r.Summaries[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cp),
			fmtE(s.Mean), fmtE(s.Max), fmtE(s.Min),
			fmtE(s.AbsVariation), fmtE(s.RelVariation),
			fmtE(s.Variance), fmtE(s.StdDev), fmtE(s.StdErr),
		})
	}
	return t
}

// Series returns the Figure 5 curves: average convergence (log y),
// absolute variation (log y) and relative variation (linear y).
func (r NonDetResult) Series() (avg, absVar, relVar plot.Series) {
	x := iota2float(len(r.AvgHistory))
	avg = plot.Series{Name: "average async-(5)", X: x, Y: r.AvgHistory}
	absVar = plot.Series{Name: "max-min abs variation", X: x, Y: r.AbsVariation}
	relVar = plot.Series{Name: "(max-min)/avg rel variation", X: x, Y: r.RelVariation}
	return avg, absVar, relVar
}

func summaryRuns(ss []stats.Summary) int {
	if len(ss) == 0 {
		return 0
	}
	return ss[0].N
}
