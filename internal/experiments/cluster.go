package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/vecmath"
)

// ClusterDelaySweep measures the distributed bounded-delay asynchronous
// iteration (the conclusion's "GPU-accelerated clusters" setting): ticks
// to reach relTol as a function of the link-delay bound — the
// Chazan–Miranker shift bound realized as network latency. Convergence
// degrades gracefully and never breaks while ρ(|B|) < 1.
func ClusterDelaySweep(matrix string, nodes int, delays []int, relTol float64, seed int64) (Table, error) {
	tm, err := Matrix(matrix)
	if err != nil {
		return Table{}, err
	}
	a := tm.A
	b := OnesRHS(a)
	base := cluster.Options{
		Nodes:      nodes,
		LocalIters: 3,
		MaxTicks:   20000,
		Seed:       seed,
	}
	tol := relTol * vecmath.Nrm2(b)
	ticks, err := cluster.DelaySweep(a, b, base, delays, tol)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   fmt.Sprintf("Extension: distributed async iteration on %s, %d nodes — ticks to rel. residual %.0e by link-delay bound", matrix, nodes, relTol),
		Columns: []string{"max link delay [ticks]", "ticks to converge", "slowdown vs delay 1"},
	}
	for i, d := range delays {
		cell := "n/a"
		slow := "n/a"
		if ticks[i] > 0 {
			cell = fmt.Sprintf("%d", ticks[i])
			if ticks[0] > 0 {
				slow = fmt.Sprintf("%.2fx", float64(ticks[i])/float64(ticks[0]))
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", d), cell, slow})
	}
	return t, nil
}
