package experiments

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/mats"
)

// nondetGolden pins the run-to-run variation of the simulated engine:
// 1000 seeded runs on Trefethen_150 with a convergence tolerance, summarized
// as the iteration-count spread and residual quantiles. The engine is
// deterministic per seed, so drift in these numbers means the scheduling
// model, the kernel, or the seeding changed behavior — exactly the class
// of silent regression this file exists to catch.
type nondetGolden struct {
	Matrix    string  `json:"matrix"`
	Runs      int     `json:"runs"`
	BlockSize int     `json:"block_size"`
	Tolerance float64 `json:"tolerance"`
	// StaleProb amplifies the schedule noise so the iteration count
	// actually spreads (with the default visibility model Trefethen_150
	// converges in the same count under every seed).
	StaleProb float64 `json:"stale_prob"`

	ItersMin  int     `json:"iters_min"`
	ItersMax  int     `json:"iters_max"`
	ItersMean float64 `json:"iters_mean"`

	// Final-residual quantiles across runs (p10/p50/p90).
	ResidualP10 float64 `json:"residual_p10"`
	ResidualP50 float64 `json:"residual_p50"`
	ResidualP90 float64 `json:"residual_p90"`
}

const nondetGoldenPath = "testdata/nondet_golden_trefethen150.json"

func computeNondetGolden(t *testing.T) nondetGolden {
	t.Helper()
	g := nondetGolden{
		Matrix:    "Trefethen_150",
		Runs:      1000,
		BlockSize: 32,
		Tolerance: 8e-11,
		StaleProb: 0.5,
	}
	a := mats.Trefethen(150)
	b := OnesRHS(a)
	iters := make([]int, g.Runs)
	residuals := make([]float64, g.Runs)
	for run := 0; run < g.Runs; run++ {
		res, err := core.Solve(a, b, core.Options{
			BlockSize:      g.BlockSize,
			LocalIters:     5,
			MaxGlobalIters: 500,
			Tolerance:      g.Tolerance,
			StaleProb:      g.StaleProb,
			Seed:           int64(run) + 1,
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if !res.Converged {
			t.Fatalf("run %d did not converge (residual %g)", run, res.Residual)
		}
		iters[run] = res.GlobalIterations
		residuals[run] = res.Residual
	}
	g.ItersMin, g.ItersMax = iters[0], iters[0]
	sum := 0
	for _, it := range iters {
		if it < g.ItersMin {
			g.ItersMin = it
		}
		if it > g.ItersMax {
			g.ItersMax = it
		}
		sum += it
	}
	g.ItersMean = float64(sum) / float64(g.Runs)
	sort.Float64s(residuals)
	quantile := func(p float64) float64 {
		return residuals[int(p*float64(len(residuals)-1)+0.5)]
	}
	g.ResidualP10 = quantile(0.10)
	g.ResidualP50 = quantile(0.50)
	g.ResidualP90 = quantile(0.90)
	return g
}

// TestNonDetGoldenTrefethen150 replays the 1000-run study and compares
// against the committed golden summary. Regenerate with
//
//	UPDATE_NONDET_GOLDEN=1 go test ./internal/experiments/ -run TestNonDetGolden
func TestNonDetGoldenTrefethen150(t *testing.T) {
	if testing.Short() {
		t.Skip("1000 solver runs; skipped in -short")
	}
	got := computeNondetGolden(t)

	if os.Getenv("UPDATE_NONDET_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(nondetGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(nondetGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %+v", got)
		return
	}

	data, err := os.ReadFile(nondetGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (regenerate with UPDATE_NONDET_GOLDEN=1): %v", err)
	}
	var want nondetGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	// The engine is deterministic per seed: the iteration-count spread
	// must match exactly. Residual quantiles get a sliver of relative
	// tolerance for cross-platform floating-point differences.
	if got.ItersMin != want.ItersMin || got.ItersMax != want.ItersMax {
		t.Errorf("iteration spread [%d,%d], golden [%d,%d]",
			got.ItersMin, got.ItersMax, want.ItersMin, want.ItersMax)
	}
	if math.Abs(got.ItersMean-want.ItersMean) > 0.5 {
		t.Errorf("mean iterations %.3f, golden %.3f", got.ItersMean, want.ItersMean)
	}
	relClose := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Errorf("%s = %.12e, golden %.12e", name, got, want)
		}
	}
	relClose("residual p10", got.ResidualP10, want.ResidualP10)
	relClose("residual p50", got.ResidualP50, want.ResidualP50)
	relClose("residual p90", got.ResidualP90, want.ResidualP90)
}
