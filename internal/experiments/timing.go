package experiments

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/plot"
)

// Table4LocalIterOverhead regenerates Table 4: the modeled total
// computation time of async-(1) … async-(9) for 100–500 global iterations
// on fv3, demonstrating that local sweeps are nearly free.
func Table4LocalIterOverhead(m gpusim.PerfModel) (Table, error) {
	tm, err := Matrix("fv3")
	if err != nil {
		return Table{}, err
	}
	n, nnz := tm.A.Rows, tm.A.NNZ()
	t := Table{
		Title:   "Table 4: modeled total execution time [s] when adding local iterations, matrix fv3",
		Columns: []string{"method", "100", "200", "300", "400", "500"},
	}
	setup := m.GPUSetupTime(n, nnz)
	for k := 1; k <= 9; k++ {
		row := []string{fmt.Sprintf("async-(%d)", k)}
		iter := m.AsyncIterTime(n, nnz, k)
		for _, total := range []int{100, 200, 300, 400, 500} {
			row = append(row, fmt.Sprintf("%.6f", setup+float64(total)*iter))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig8AvgIterTime regenerates Figure 8: the average time per iteration as
// a function of the total iteration count for fv3, for Gauss-Seidel (CPU,
// flat), Jacobi (GPU) and async-(1) (GPU) — the GPU curves fall as the
// setup cost amortizes.
func Fig8AvgIterTime(m gpusim.PerfModel, totals []int) ([]plot.Series, error) {
	tm, err := Matrix("fv3")
	if err != nil {
		return nil, err
	}
	n, nnz := tm.A.Rows, tm.A.NNZ()
	if len(totals) == 0 {
		for t := 10; t <= 200; t += 10 {
			totals = append(totals, t)
		}
	}
	x := make([]float64, len(totals))
	gs := make([]float64, len(totals))
	j := make([]float64, len(totals))
	a1 := make([]float64, len(totals))
	for i, total := range totals {
		if total <= 0 {
			return nil, fmt.Errorf("experiments: total iteration count must be positive, have %d", total)
		}
		x[i] = float64(total)
		gs[i] = m.GaussSeidelIterTime(n, nnz) // CPU: no setup amortization
		j[i] = m.AverageIterTime(m.JacobiIterTime(n, nnz), n, nnz, total)
		a1[i] = m.AverageIterTime(m.AsyncIterTime(n, nnz, 1), n, nnz, total)
	}
	return []plot.Series{
		{Name: "Gauss-Seidel on CPU", X: x, Y: gs},
		{Name: "Jacobi on GPU", X: x, Y: j},
		{Name: "async-(1) on GPU", X: x, Y: a1},
	}, nil
}

// Table5AvgIterTimings regenerates Table 5: modeled average per-iteration
// times for all test matrices. The paper averages measurements over runs
// of 10..200 total iterations; the model's steady-state per-iteration cost
// is exactly what those averages estimate (setup amortization appears in
// Figure 8 and Table 4, not here).
func Table5AvgIterTimings(m gpusim.PerfModel, short bool) (Table, error) {
	t := Table{
		Title:   "Table 5: modeled average iteration timings [s] per global iteration",
		Columns: []string{"Matrix", "G.-S. (CPU)", "Jacobi (GPU)", "async-(5) (GPU)"},
	}
	names := []string{"Chem97ZtZ", "fv1", "fv2", "fv3", "s1rmt3m1", "Trefethen_2000"}
	if !short {
		names = append(names, "Trefethen_20000")
	}
	for _, name := range names {
		tm, err := Matrix(name)
		if err != nil {
			return Table{}, err
		}
		n, nnz := tm.A.Rows, tm.A.NNZ()
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.6f", m.GaussSeidelIterTime(n, nnz)),
			fmt.Sprintf("%.6f", m.JacobiIterTime(n, nnz)),
			fmt.Sprintf("%.6f", m.AsyncIterTime(n, nnz, 5)),
		})
	}
	return t, nil
}
