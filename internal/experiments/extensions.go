package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/spectral"
	"repro/internal/stats"
)

// ScaledJacobiRescue demonstrates the paper's §4.2 remark: the s1rmt3m1
// system (ρ(B) ≈ 2.65 > 1) defeats Jacobi, Gauss-Seidel and
// block-asynchronous iteration, but SPD systems remain solvable by Jacobi
// once the update is damped with τ = 2/(λ₁+λ_n) of D⁻¹A. The returned
// series contrast plain Jacobi (diverging) with τ-scaled Jacobi
// (converging) on the s1rmt3m1 analog.
func ScaledJacobiRescue(iters int, seed int64) ([]plot.Series, float64, error) {
	if iters <= 0 {
		return nil, 0, fmt.Errorf("experiments: iters must be positive, have %d", iters)
	}
	tm, err := Matrix("s1rmt3m1")
	if err != nil {
		return nil, 0, err
	}
	a := tm.A
	b := OnesRHS(a)

	tau, err := spectral.TauScaling(a, 200, seed)
	if err != nil {
		return nil, 0, err
	}

	plain, err := solver.Jacobi(a, b, solver.Options{MaxIterations: iters, RecordHistory: true})
	if err != nil && !errors.Is(err, solver.ErrDiverged) {
		return nil, 0, err
	}
	scaled, err := solver.ScaledJacobi(a, b, tau, solver.Options{MaxIterations: iters, RecordHistory: true})
	if err != nil {
		return nil, 0, err
	}

	x := iota2float(iters)
	return []plot.Series{
		{Name: "Jacobi (diverges)", X: x, Y: relativize(stats.PadHistory(plain.History, iters), b)},
		{Name: fmt.Sprintf("scaled Jacobi, tau=%.4f", tau), X: x, Y: relativize(stats.PadHistory(scaled.History, iters), b)},
	}, tau, nil
}

// BlockSizeAblation measures how the subdomain size changes async-(5)
// convergence on the given matrix: larger blocks capture more of the
// coupling in the local solves (paper §4.1: "it may be useful to apply
// larger block-sizes"). Returns, per block size, the iterations needed to
// reach the relative tolerance (0 = not reached within maxIters).
func BlockSizeAblation(matrix string, blockSizes []int, relTol float64, maxIters int, seed int64) (Table, error) {
	tm, err := Matrix(matrix)
	if err != nil {
		return Table{}, err
	}
	a := tm.A
	b := OnesRHS(a)
	t := Table{
		Title:   fmt.Sprintf("Ablation: async-(5) global iterations to rel. residual %.0e on %s, by block size", relTol, matrix),
		Columns: []string{"block size", "global iters", "off-block fraction"},
	}
	for _, bs := range blockSizes {
		res, err := core.Solve(a, b, core.Options{
			BlockSize:      bs,
			LocalIters:     5,
			MaxGlobalIters: maxIters,
			RecordHistory:  true,
			Seed:           seed,
		})
		if err != nil && !errors.Is(err, core.ErrDiverged) {
			return Table{}, err
		}
		rel := relativize(res.History, b)
		it := IterationsToReach(rel, relTol)
		itCell := "n/a"
		if it > 0 {
			itCell = fmt.Sprintf("%d", it)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", bs), itCell, fmt.Sprintf("%.3f", meanOffBlock(a, bs)),
		})
	}
	return t, nil
}

// LocalItersAblation returns, per local iteration count k, the global
// iterations async-(k) needs to reach the relative tolerance — the
// convergence side of the Table 4 trade-off.
func LocalItersAblation(matrix string, ks []int, relTol float64, maxIters, blockSize int, seed int64) (Table, error) {
	tm, err := Matrix(matrix)
	if err != nil {
		return Table{}, err
	}
	a := tm.A
	b := OnesRHS(a)
	t := Table{
		Title:   fmt.Sprintf("Ablation: global iterations to rel. residual %.0e on %s, by local sweeps k", relTol, matrix),
		Columns: []string{"k", "global iters"},
	}
	for _, k := range ks {
		res, err := core.Solve(a, b, core.Options{
			BlockSize:      blockSize,
			LocalIters:     k,
			MaxGlobalIters: maxIters,
			RecordHistory:  true,
			Seed:           seed,
		})
		if err != nil && !errors.Is(err, core.ErrDiverged) {
			return Table{}, err
		}
		it := IterationsToReach(relativize(res.History, b), relTol)
		cell := "n/a"
		if it > 0 {
			cell = fmt.Sprintf("%d", it)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", k), cell})
	}
	return t, nil
}

// ReorderingRescue demonstrates the paper's §4.3 remark on Chem97ZtZ: "An
// improvement for this case could potentially be obtained by reordering."
// In the natural ordering every off-diagonal entry sits ≥ n/3 from the
// diagonal, the block-local submatrices are diagonal, and async-(k)'s
// local sweeps buy nothing. RCM clusters each coupling group into adjacent
// rows, after which the local sweeps capture the whole coupling and
// async-(5) accelerates accordingly. Returns, for the original and the
// RCM-reordered system, the global iterations async-(1) and async-(5)
// need to reach relTol.
func ReorderingRescue(relTol float64, maxIters, blockSize int, seed int64) (Table, error) {
	tm, err := Matrix("Chem97ZtZ")
	if err != nil {
		return Table{}, err
	}
	perm, err := sparse.RCM(tm.A)
	if err != nil {
		return Table{}, err
	}
	reordered, err := sparse.PermuteSym(tm.A, perm)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   "Extension: RCM reordering restores local-iteration gains on Chem97ZtZ (paper §4.3)",
		Columns: []string{"ordering", "bandwidth", "async-(1) iters", "async-(5) iters", "gain"},
	}
	for _, c := range []struct {
		name string
		a    *sparse.CSR
	}{{"natural", tm.A}, {"RCM", reordered}} {
		b := OnesRHS(c.a)
		run := func(k int) (int, error) {
			res, err := core.Solve(c.a, b, core.Options{
				BlockSize:      blockSize,
				LocalIters:     k,
				MaxGlobalIters: maxIters,
				RecordHistory:  true,
				Seed:           seed,
			})
			if err != nil {
				return 0, err
			}
			return IterationsToReach(relativize(res.History, b), relTol), nil
		}
		i1, err := run(1)
		if err != nil {
			return Table{}, err
		}
		i5, err := run(5)
		if err != nil {
			return Table{}, err
		}
		gain := "n/a"
		if i5 > 0 && i1 > 0 {
			gain = fmt.Sprintf("%.2fx", float64(i1)/float64(i5))
		}
		t.Rows = append(t.Rows, []string{
			c.name, fmt.Sprintf("%d", sparse.Bandwidth(c.a)),
			fmt.Sprintf("%d", i1), fmt.Sprintf("%d", i5), gain,
		})
	}
	return t, nil
}

// meanOffBlock averages the per-block off-block fraction of the absolute
// off-diagonal mass for the given block size.
func meanOffBlock(a *sparse.CSR, bs int) float64 {
	part := sparse.NewBlockPartition(a.Rows, bs)
	fs := part.OffBlockFraction(a)
	var sum float64
	for _, f := range fs {
		sum += f
	}
	return sum / float64(len(fs))
}
