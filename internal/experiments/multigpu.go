package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/multigpu"
	"repro/internal/plot"
	"repro/internal/vecmath"
)

// Fig11Config configures the multi-GPU experiment of §4.6.
type Fig11Config struct {
	// Matrix defaults to Trefethen_20000, the paper's choice ("suitable
	// for the experiment due to its size and structure").
	Matrix string
	// Tolerance for the time-to-convergence measurement; default: relative
	// 1e-12 like the deep-convergence plots.
	RelTolerance float64
	BlockSize    int
	Seed         int64
}

func (c Fig11Config) withDefaults() Fig11Config {
	if c.Matrix == "" {
		c.Matrix = "Trefethen_20000"
	}
	if c.RelTolerance == 0 {
		c.RelTolerance = 1e-12
	}
	if c.BlockSize == 0 {
		c.BlockSize = 448
	}
	return c
}

// Fig11MultiGPU regenerates Figure 11: time-to-convergence of async-(5)
// under the AMC, DC and DK communication strategies on 1–4 GPUs
// (initialization overhead subtracted, as in the paper). Unsupported
// configurations (GPU-direct beyond one IOH) are reported as NA bars.
func Fig11MultiGPU(m gpusim.PerfModel, topo multigpu.Topology, cfg Fig11Config) ([]plot.Bar, error) {
	cfg = cfg.withDefaults()
	tm, err := Matrix(cfg.Matrix)
	if err != nil {
		return nil, err
	}
	a := tm.A
	b := OnesRHS(a)
	tol := cfg.RelTolerance * vecmath.Nrm2(b)

	// Convergence is a property of the algorithm, not of the device count
	// (the device layer adds no algorithmic difference, §3.4): solve once
	// to get the iteration count, then model each configuration's time.
	res, err := core.Solve(a, b, core.Options{
		BlockSize:      cfg.BlockSize,
		LocalIters:     5,
		MaxGlobalIters: 10000,
		Tolerance:      tol,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("experiments: fig11: %s did not converge to %g within 10000 iterations",
			cfg.Matrix, tol)
	}
	iters := float64(res.GlobalIterations)

	var bars []plot.Bar
	for _, strat := range []multigpu.Strategy{multigpu.AMC, multigpu.DC, multigpu.DK} {
		for g := 1; g <= topo.MaxGPUs; g++ {
			label := fmt.Sprintf("%d GPU", g)
			if g > 1 {
				label += "s"
			}
			it, err := multigpu.IterTime(m, topo, strat, g, a.Rows, a.NNZ(), 5)
			if errors.Is(err, multigpu.ErrUnsupported) {
				bars = append(bars, plot.Bar{Group: strat.String(), Label: label, NA: true})
				continue
			}
			if err != nil {
				return nil, err
			}
			bars = append(bars, plot.Bar{Group: strat.String(), Label: label, Value: it * iters})
		}
	}
	return bars, nil
}
