package experiments

import "testing"

func TestClusterDelaySweep(t *testing.T) {
	tab, err := ClusterDelaySweep("Trefethen_2000", 8, []int{1, 4, 16}, 1e-8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var t1, t16 float64
	if _, err := fmtSscan(tab.Rows[0][1], &t1); err != nil {
		t.Fatalf("row %v: %v", tab.Rows[0], err)
	}
	if _, err := fmtSscan(tab.Rows[2][1], &t16); err != nil {
		t.Fatalf("row %v: %v", tab.Rows[2], err)
	}
	if !(t1 > 0 && t16 >= t1) {
		t.Errorf("delay must slow convergence gracefully: %g vs %g ticks", t1, t16)
	}
}
