// Package stats provides the descriptive statistics the paper reports for
// its non-determinism study (§4.1, Tables 2 and 3, Figure 5): for each
// iteration checkpoint across many solver runs, the average / maximum /
// minimum residual, the absolute and relative variation, and the variance,
// standard deviation and standard error.
package stats
