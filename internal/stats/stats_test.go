package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	if s.AbsVariation != 3 {
		t.Errorf("AbsVariation = %g, want 3", s.AbsVariation)
	}
	if math.Abs(s.RelVariation-1.2) > 1e-15 {
		t.Errorf("RelVariation = %g, want 1.2", s.RelVariation)
	}
	// Sample variance of 1..4 is 5/3.
	if math.Abs(s.Variance-5.0/3.0) > 1e-15 {
		t.Errorf("Variance = %g, want 5/3", s.Variance)
	}
	if math.Abs(s.StdDev-math.Sqrt(5.0/3.0)) > 1e-15 {
		t.Errorf("StdDev = %g", s.StdDev)
	}
	if math.Abs(s.StdErr-s.StdDev/2) > 1e-15 {
		t.Errorf("StdErr = %g, want StdDev/2", s.StdErr)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Variance != 0 || s.StdDev != 0 || s.StdErr != 0 {
		t.Errorf("single-sample spread must be zero: %+v", s)
	}
	if s.Mean != 7 || s.AbsVariation != 0 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeZeroMean(t *testing.T) {
	s, err := Summarize([]float64{-1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.RelVariation != 0 {
		t.Errorf("RelVariation with zero mean should be 0, got %g", s.RelVariation)
	}
}

func TestRunMatrix(t *testing.T) {
	m := NewRunMatrix(3)
	if err := m.Add([]float64{1, 0.5, 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add([]float64{2, 1, 0.5}); err != nil {
		t.Fatal(err)
	}
	if m.NumRuns() != 2 {
		t.Fatalf("NumRuns = %d", m.NumRuns())
	}
	s, err := m.AtIteration(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 0.75 || s.Min != 0.5 || s.Max != 1 {
		t.Errorf("iteration 1 summary = %+v", s)
	}
	if err := m.Add([]float64{1, 2}); err == nil {
		t.Error("expected length error")
	}
	if _, err := m.AtIteration(5); err == nil {
		t.Error("expected range error")
	}
	if _, err := NewRunMatrix(2).AtIteration(0); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestCheckpoints(t *testing.T) {
	m := NewRunMatrix(10)
	h := make([]float64, 10)
	for i := range h {
		h[i] = float64(10 - i)
	}
	if err := m.Add(h); err != nil {
		t.Fatal(err)
	}
	cps, err := m.Checkpoints([]int{1, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if cps[0].Mean != 10 || cps[1].Mean != 6 || cps[2].Mean != 1 {
		t.Errorf("checkpoints = %+v", cps)
	}
	if _, err := m.Checkpoints([]int{11}); err == nil {
		t.Error("expected out-of-range checkpoint error")
	}
}

func TestPadHistory(t *testing.T) {
	got := PadHistory([]float64{3, 2}, 4)
	want := []float64{3, 2, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PadHistory = %v", got)
		}
	}
	if got := PadHistory([]float64{1, 2, 3}, 2); len(got) != 2 || got[1] != 2 {
		t.Errorf("truncation = %v", got)
	}
	if got := PadHistory(nil, 2); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty pad = %v", got)
	}
}

func TestNewRunMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRunMatrix(0)
}

// Property: Min ≤ Mean ≤ Max and nonnegative spread measures.
func TestPropertySummaryOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean+1e-12 && s.Mean <= s.Max+1e-12 &&
			s.Variance >= 0 && s.StdDev >= 0 && s.StdErr >= 0 &&
			s.AbsVariation >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestPropertyVarianceScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		c := rng.NormFloat64()
		k := 1 + rng.Float64()*3
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = k*xs[i] + c
		}
		sx, _ := Summarize(xs)
		sy, _ := Summarize(ys)
		return math.Abs(sy.Variance-k*k*sx.Variance) <= 1e-9*(1+sy.Variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
