package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmpty is returned when a summary of no samples is requested.
var ErrEmpty = errors.New("stats: no samples")

// Summary holds the descriptive statistics of one sample set — one row of
// the paper's Tables 2/3 for a fixed iteration count.
type Summary struct {
	N        int
	Mean     float64
	Min, Max float64
	// AbsVariation is max − min, the paper's "abs. var." column.
	AbsVariation float64
	// RelVariation is (max − min)/mean, the paper's "rel. var." column.
	RelVariation float64
	// Variance is the unbiased sample variance (divisor N−1; 0 for N=1).
	Variance float64
	// StdDev is sqrt(Variance).
	StdDev float64
	// StdErr is StdDev/sqrt(N).
	StdErr float64
}

// Summarize computes the Summary of the samples.
func Summarize(samples []float64) (Summary, error) {
	n := len(samples)
	if n == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: n, Min: samples[0], Max: samples[0]}
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(n)
	s.AbsVariation = s.Max - s.Min
	if s.Mean != 0 {
		s.RelVariation = s.AbsVariation / s.Mean
	}
	if n > 1 {
		var ss float64
		for _, v := range samples {
			d := v - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(n-1)
		s.StdDev = math.Sqrt(s.Variance)
		s.StdErr = s.StdDev / math.Sqrt(float64(n))
	}
	return s, nil
}

// RunMatrix aggregates residual histories of repeated solver runs. Row r is
// the per-iteration residual history of run r; all rows must have equal
// length (pad with the final residual for early-converged runs before
// adding, if needed).
type RunMatrix struct {
	iters int
	runs  [][]float64
}

// NewRunMatrix creates an aggregator for histories of the given length.
func NewRunMatrix(iters int) *RunMatrix {
	if iters <= 0 {
		panic(fmt.Sprintf("stats: NewRunMatrix(%d): length must be positive", iters))
	}
	return &RunMatrix{iters: iters}
}

// Add appends one run's residual history.
func (m *RunMatrix) Add(history []float64) error {
	if len(history) != m.iters {
		return fmt.Errorf("stats: history length %d, want %d", len(history), m.iters)
	}
	m.runs = append(m.runs, append([]float64(nil), history...))
	return nil
}

// NumRuns returns the number of runs added.
func (m *RunMatrix) NumRuns() int { return len(m.runs) }

// AtIteration returns the Summary across runs at iteration index i
// (0-based).
func (m *RunMatrix) AtIteration(i int) (Summary, error) {
	if i < 0 || i >= m.iters {
		return Summary{}, fmt.Errorf("stats: iteration %d out of range [0,%d)", i, m.iters)
	}
	if len(m.runs) == 0 {
		return Summary{}, ErrEmpty
	}
	col := make([]float64, len(m.runs))
	for r, run := range m.runs {
		col[r] = run[i]
	}
	return Summarize(col)
}

// Checkpoints returns Summaries at the given 1-based iteration counts —
// the rows of the paper's Tables 2 and 3 (e.g. 10, 20, ..., 150).
func (m *RunMatrix) Checkpoints(iters []int) ([]Summary, error) {
	out := make([]Summary, 0, len(iters))
	for _, it := range iters {
		s, err := m.AtIteration(it - 1)
		if err != nil {
			return nil, fmt.Errorf("stats: checkpoint %d: %w", it, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// PadHistory extends history to length iters by repeating its last value —
// the convention for runs that converge (and stop) early.
func PadHistory(history []float64, iters int) []float64 {
	if len(history) >= iters {
		return history[:iters]
	}
	out := make([]float64, iters)
	copy(out, history)
	last := 0.0
	if len(history) > 0 {
		last = history[len(history)-1]
	}
	for i := len(history); i < iters; i++ {
		out[i] = last
	}
	return out
}
