package vecmath

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// minParallel is the vector length below which parallel variants fall back
// to the serial kernel; below this the goroutine fan-out costs more than the
// arithmetic.
const minParallel = 1 << 14

// Dot returns xᵀy. It panics if the lengths differ.
func Dot(x, y []float64) float64 {
	checkLen("Dot", x, y)
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Nrm2 returns the Euclidean norm ‖x‖₂ computed with scaling to avoid
// overflow/underflow for extreme magnitudes.
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// NrmInf returns the maximum-magnitude entry ‖x‖∞.
func NrmInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	checkLen("Axpy", x, y)
	for i, v := range x {
		y[i] += a * v
	}
}

// Axpby computes y = a*x + b*y in place.
func Axpby(a float64, x []float64, b float64, y []float64) {
	checkLen("Axpby", x, y)
	for i, v := range x {
		y[i] = a*v + b*y[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Copy copies src into dst. It panics if the lengths differ, unlike the
// builtin copy, because a silent partial copy is always a solver bug here.
func Copy(dst, src []float64) {
	checkLen("Copy", dst, src)
	copy(dst, src)
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sub computes dst = x − y.
func Sub(dst, x, y []float64) {
	checkLen("Sub", x, y)
	checkLen("Sub", dst, x)
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Ones returns a length-n vector of ones (the paper's canonical exact
// solution: b = A·1).
func Ones(n int) []float64 {
	x := make([]float64, n)
	Fill(x, 1)
	return x
}

// ParallelDot is Dot split across worker goroutines. Exact summation order
// differs from Dot, so results may differ by rounding.
func ParallelDot(x, y []float64) float64 {
	checkLen("ParallelDot", x, y)
	n := len(x)
	if n < minParallel {
		return Dot(x, y)
	}
	w := runtime.GOMAXPROCS(0)
	partial := make([]float64, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := chunk(n, w, k)
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += x[i] * y[i]
			}
			partial[k] = s
		}(k, lo, hi)
	}
	wg.Wait()
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}

// ParallelAxpy is Axpy split across worker goroutines.
func ParallelAxpy(a float64, x, y []float64) {
	checkLen("ParallelAxpy", x, y)
	n := len(x)
	if n < minParallel {
		Axpy(a, x, y)
		return
	}
	w := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := chunk(n, w, k)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				y[i] += a * x[i]
			}
		}(lo, hi)
	}
	wg.Wait()
}

// chunk returns the [lo,hi) bounds of the k-th of w near-equal chunks of n.
func chunk(n, w, k int) (int, int) {
	lo := k * n / w
	hi := (k + 1) * n / w
	return lo, hi
}

func checkLen(op string, a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: %s length mismatch %d vs %d", op, len(a), len(b)))
	}
}
