package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)) }

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 12 {
		t.Errorf("Dot = %g, want 12", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNrm2(t *testing.T) {
	if got := Nrm2([]float64{3, 4}); got != 5 {
		t.Errorf("Nrm2 = %g, want 5", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Errorf("Nrm2(nil) = %g, want 0", got)
	}
	if got := Nrm2([]float64{0, 0}); got != 0 {
		t.Errorf("Nrm2(zeros) = %g, want 0", got)
	}
}

func TestNrm2Extreme(t *testing.T) {
	// Naive sum of squares would overflow; the scaled algorithm must not.
	big := 1e200
	if got := Nrm2([]float64{big, big}); math.IsInf(got, 0) || !almostEq(got, big*math.Sqrt2, 1e-14) {
		t.Errorf("Nrm2 overflow handling: got %g", got)
	}
	small := 1e-200
	if got := Nrm2([]float64{small, small}); got == 0 || !almostEq(got, small*math.Sqrt2, 1e-14) {
		t.Errorf("Nrm2 underflow handling: got %g", got)
	}
}

func TestNrmInf(t *testing.T) {
	if got := NrmInf([]float64{1, -7, 3}); got != 7 {
		t.Errorf("NrmInf = %g, want 7", got)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestAxpby(t *testing.T) {
	y := []float64{1, 2}
	Axpby(2, []float64{10, 20}, 3, y)
	if y[0] != 23 || y[1] != 46 {
		t.Errorf("Axpby got %v, want [23 46]", y)
	}
}

func TestScaleFillCopySub(t *testing.T) {
	x := []float64{1, 2}
	Scale(3, x)
	if x[0] != 3 || x[1] != 6 {
		t.Errorf("Scale got %v", x)
	}
	Fill(x, 9)
	if x[0] != 9 || x[1] != 9 {
		t.Errorf("Fill got %v", x)
	}
	dst := make([]float64, 2)
	Copy(dst, x)
	if dst[0] != 9 {
		t.Errorf("Copy got %v", dst)
	}
	Sub(dst, []float64{5, 5}, []float64{2, 3})
	if dst[0] != 3 || dst[1] != 2 {
		t.Errorf("Sub got %v", dst)
	}
}

func TestOnes(t *testing.T) {
	x := Ones(4)
	for _, v := range x {
		if v != 1 {
			t.Fatalf("Ones produced %v", x)
		}
	}
}

func TestParallelDotMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 100, minParallel - 1, minParallel, 3*minParallel + 17} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		s := Dot(x, y)
		p := ParallelDot(x, y)
		if !almostEq(s, p, 1e-10) {
			t.Errorf("n=%d: serial %g vs parallel %g", n, s, p)
		}
	}
}

func TestParallelAxpyMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 2*minParallel + 11
	x := make([]float64, n)
	y1 := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y1[i] = rng.NormFloat64()
	}
	y2 := append([]float64(nil), y1...)
	Axpy(1.5, x, y1)
	ParallelAxpy(1.5, x, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("mismatch at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
}

// Property: Cauchy-Schwarz |xᵀy| ≤ ‖x‖‖y‖.
func TestPropertyCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		return math.Abs(Dot(x, y)) <= Nrm2(x)*Nrm2(y)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality ‖x+y‖ ≤ ‖x‖+‖y‖.
func TestPropertyTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		x := make([]float64, n)
		s := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
			s[i] = x[i] + y[i]
		}
		return Nrm2(s) <= Nrm2(x)+Nrm2(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDotSerial(b *testing.B) {
	x := make([]float64, 1<<16)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, x)
	}
}

func BenchmarkDotParallel(b *testing.B) {
	x := make([]float64, 1<<16)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ParallelDot(x, x)
	}
}
