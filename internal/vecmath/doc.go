// Package vecmath provides the dense BLAS-1 style vector kernels used by
// every solver in the library: axpy, dot products, norms, and their
// goroutine-parallel variants for large vectors.
//
// All serial kernels are plain loops the compiler vectorizes well; the
// parallel variants split work across GOMAXPROCS-sized chunks and are worth
// using above roughly 1e5 elements (see BenchmarkParallelCrossover).
package vecmath
